package cdagio

// The benchmarks in this file regenerate every table, figure and in-text
// analysis number of the paper's evaluation (Section 5) plus the Section 3
// composite example.  Each benchmark reports the reproduced quantities via
// b.ReportMetric so that `go test -bench=. -benchmem` produces the numbers
// recorded in EXPERIMENTS.md:
//
//	Table 1   -> BenchmarkTable1MachineBalance
//	Figure 1  -> BenchmarkFig1HierarchyModel
//	Figure 2  -> BenchmarkFig2HeatDiscretization
//	Figure 3  -> BenchmarkFig3CGSolver
//	Figure 4  -> BenchmarkFig4GMRESSolver
//	Section 3 -> BenchmarkSec3CompositeExample
//	Thm 8 / §5.2.3 -> BenchmarkCGBalanceAnalysis
//	Thm 9 / §5.3.3 -> BenchmarkGMRESBalanceAnalysis
//	Thm 10 / §5.4.3 -> BenchmarkJacobiBalanceAnalysis, BenchmarkJacobiTightness
//	§2/§3 matmul baseline -> BenchmarkMatMulIOBound
//	Thms 5-7 -> BenchmarkParallelBoundScaling

import (
	"context"
	"math"
	"testing"

	"cdagio/internal/linalg"
	"cdagio/internal/memsim"
	"cdagio/internal/prbw"
	"cdagio/internal/solvers"
)

// BenchmarkTable1MachineBalance reproduces Table 1: the vertical and
// horizontal machine-balance parameters of the IBM BG/Q and Cray XT5.
func BenchmarkTable1MachineBalance(b *testing.B) {
	var sink float64
	for i := 0; i < b.N; i++ {
		for _, m := range Table1Machines() {
			vb, err := m.VerticalBalance()
			if err != nil {
				b.Fatal(err)
			}
			hb, err := m.HorizontalBalance()
			if err != nil {
				b.Fatal(err)
			}
			sink += vb + hb
		}
	}
	bgq := IBMBGQ()
	xt5 := CrayXT5()
	vb1, _ := bgq.VerticalBalance()
	hb1, _ := bgq.HorizontalBalance()
	vb2, _ := xt5.VerticalBalance()
	hb2, _ := xt5.HorizontalBalance()
	b.ReportMetric(vb1, "BGQ-vert-w/F")
	b.ReportMetric(hb1, "BGQ-horiz-w/F")
	b.ReportMetric(vb2, "XT5-vert-w/F")
	b.ReportMetric(hb2, "XT5-horiz-w/F")
	_ = sink
}

// BenchmarkFig1HierarchyModel exercises the Figure-1 machine model: a
// multi-node, multi-level storage hierarchy on which the P-RBW game runs.
func BenchmarkFig1HierarchyModel(b *testing.B) {
	jr := Jacobi(1, 48, 6, StencilStar)
	g := jr.Graph
	topo := Distributed(2, 2, 8, 96, 1<<18)
	owner := BlockPartitionGrid(jr, 2)
	// Spread each node's vertices over its two processors.
	procOwner := make([]int, len(owner))
	for v, nd := range owner {
		procOwner[v] = nd*2 + v%2
	}
	asg := prbw.OwnerCompute(g, procOwner)
	var stats *ParallelStats
	for i := 0; i < b.N; i++ {
		var err error
		stats, err = PlayParallel(g, topo, asg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(stats.VerticalTraffic(2)), "cache-mem-words")
	b.ReportMetric(float64(stats.HorizontalTraffic()), "remote-get-words")
	b.ReportMetric(float64(stats.TotalComputes()), "computes")
}

// BenchmarkFig2HeatDiscretization runs the Section 5.1 / Figure 2 workload:
// the Crank–Nicolson discretized 1-D heat equation, both as a real solve and
// as a CDAG whose data movement the pebble game measures.
func BenchmarkFig2HeatDiscretization(b *testing.B) {
	n := 256
	u0 := linalg.NewVector(n)
	for i := range u0 {
		u0[i] = math.Sin(math.Pi * float64(i+1) / float64(n+1))
	}
	var flops int64
	for i := 0; i < b.N; i++ {
		_, stats, err := solvers.HeatEquation1D(u0, 0.4, 64)
		if err != nil {
			b.Fatal(err)
		}
		flops = stats.Flops
	}
	b.StopTimer()
	heat := HeatEquation1DGraph(64, 8)
	res, err := PlayTopological(heat.Graph, RBW, 16, Belady)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(flops), "flops/solve")
	b.ReportMetric(float64(res.IO()), "CDAG-IO(n=64,T=8,S=16)")
	b.ReportMetric(float64(heat.Graph.CriticalPathLength()), "CDAG-critical-path")
}

// BenchmarkFig3CGSolver runs the Figure-3 CG pseudocode as a real solver and
// checks the CDAG work against the paper's 20·n^d·T operation-count model.
func BenchmarkFig3CGSolver(b *testing.B) {
	grid := linalg.NewGrid(2, 24)
	a := grid.Laplacian()
	f := linalg.NewVector(grid.Points())
	for i := range f {
		f[i] = math.Sin(float64(i + 1))
	}
	var iters int
	for i := 0; i < b.N; i++ {
		_, stats, err := solvers.CG(solvers.CSROperator{M: a}, f, solvers.CGOptions{Tolerance: 1e-8})
		if err != nil {
			b.Fatal(err)
		}
		iters = stats.Iterations
	}
	b.StopTimer()
	cg := CG(2, 8, 2)
	perIterVertices := float64(cg.Graph.NumOperations()) / 2
	model := float64((4*2 + 8) * 8 * 8) // (4d+8)·n^d per iteration
	b.ReportMetric(float64(iters), "solver-iterations")
	b.ReportMetric(perIterVertices/model, "CDAG-work/model-work")
}

// BenchmarkFig4GMRESSolver runs the Figure-4 GMRES pseudocode as a real
// solver and reports the growth of the per-iteration CDAG work with the
// Krylov dimension.
func BenchmarkFig4GMRESSolver(b *testing.B) {
	n := 60
	builder := linalg.NewCSRBuilder(n, n)
	for i := 0; i < n; i++ {
		builder.Add(i, i, 4)
		if i+1 < n {
			builder.Add(i, i+1, -1.6)
		}
		if i > 0 {
			builder.Add(i, i-1, -0.4)
		}
	}
	a := builder.Build()
	rhs := linalg.NewVector(n).Fill(1)
	var iters int
	for i := 0; i < b.N; i++ {
		_, stats, err := solvers.GMRES(solvers.CSROperator{M: a}, rhs, solvers.GMRESOptions{Tolerance: 1e-9, Restart: 30})
		if err != nil {
			b.Fatal(err)
		}
		iters = stats.Iterations
	}
	b.StopTimer()
	gm := GMRES(2, 6, 4)
	growth := float64(gm.IterationVertices[3].Len()) / float64(gm.IterationVertices[0].Len())
	b.ReportMetric(float64(iters), "solver-iterations")
	b.ReportMetric(growth, "iter4/iter1-CDAG-work")
}

// BenchmarkSec3CompositeExample replays the Section-3 recomputation strategy:
// the composite CDAG completes with 4n+1 I/O, far below both the naive
// per-step composition and the matmul-alone lower bound.
func BenchmarkSec3CompositeExample(b *testing.B) {
	const n = 48
	var ev *CompositeEvaluationResult
	for i := 0; i < b.N; i++ {
		e, err := EvaluateComposite(n)
		if err != nil {
			b.Fatal(err)
		}
		ev = e
	}
	b.ReportMetric(float64(ev.StrategyIO), "strategy-IO")
	b.ReportMetric(float64(4*n+1), "paper-4n+1")
	b.ReportMetric(ev.MatMulAloneLower, "matmul-alone-LB")
	b.ReportMetric(ev.PerStepSum, "naive-per-step-sum")
}

// BenchmarkCGBalanceAnalysis reproduces Section 5.2.3: the vertical
// bound-per-FLOP of 0.3 words/FLOP for 3-D CG (above every Table-1 balance)
// and the much smaller horizontal upper bound.
func BenchmarkCGBalanceAnalysis(b *testing.B) {
	bgq := IBMBGQ()
	p := CGParams{Dim: 3, N: 1000, Iterations: 100,
		Processors: bgq.Nodes * bgq.CoresPerNode, Nodes: bgq.Nodes}
	var ev *CGEvaluationResult
	for i := 0; i < b.N; i++ {
		e, err := EvaluateCG(p, Table1Machines())
		if err != nil {
			b.Fatal(err)
		}
		ev = e
	}
	bound := 0
	for _, r := range ev.VerticalRows {
		if r.Verdict.String() == "bandwidth bound" {
			bound++
		}
	}
	b.ReportMetric(ev.VerticalPerFlop, "LBvert-per-flop(paper:0.3)")
	b.ReportMetric(ev.HorizPerFlop, "UBhoriz-per-flop")
	b.ReportMetric(float64(bound), "machines-vertically-bound")
}

// BenchmarkGMRESBalanceAnalysis reproduces Section 5.3.3: the 6/(m+20)
// vertical bound per FLOP across a restart sweep and the m value at which the
// bound drops below the BG/Q balance.
func BenchmarkGMRESBalanceAnalysis(b *testing.B) {
	bgq := IBMBGQ()
	sweep := []int{1, 5, 10, 50, 100, 500, 1000}
	var ev *GMRESEvaluationResult
	for i := 0; i < b.N; i++ {
		e, err := EvaluateGMRES(3, 1000, bgq.Nodes*bgq.CoresPerNode, bgq.Nodes, sweep, Table1Machines())
		if err != nil {
			b.Fatal(err)
		}
		ev = e
	}
	beta, _ := bgq.VerticalBalance()
	crossover := math.Ceil(6/beta - 20) // smallest m with 6/(m+20) <= balance
	b.ReportMetric(ev.VerticalPerFlop[0], "m=1-LB-per-flop(paper:6/21)")
	b.ReportMetric(ev.VerticalPerFlop[len(sweep)-1], "m=1000-LB-per-flop")
	b.ReportMetric(crossover, "BGQ-crossover-m")
}

// BenchmarkJacobiBalanceAnalysis reproduces Section 5.4.3: the per-dimension
// balance criterion 1/(4·(2S)^{1/d}) on the BG/Q main-memory/L2 boundary and
// the threshold dimension beyond which stencils become bandwidth bound.
func BenchmarkJacobiBalanceAnalysis(b *testing.B) {
	var ev *JacobiEvaluationResult
	for i := 0; i < b.N; i++ {
		e, err := EvaluateJacobi(IBMBGQ(), 8)
		if err != nil {
			b.Fatal(err)
		}
		ev = e
	}
	b.ReportMetric(ev.PerFlopByDim[2], "d2-traffic-per-flop")
	b.ReportMetric(ev.PerFlopByDim[5], "d5-traffic-per-flop")
	b.ReportMetric(ev.ThresholdDim, "threshold-dim(paper:4.83)")
}

// BenchmarkJacobiTightness checks the tightness remark of Section 5.4.1: the
// measured I/O of a skewed time-tiled 2-D Jacobi schedule (tile ≈ √(S/2))
// tracks the Theorem 10 lower bound — both the constant-factor gap and the
// ~1/√S scaling of traffic with the fast-memory size.
func BenchmarkJacobiTightness(b *testing.B) {
	const (
		n     = 48
		steps = 24
	)
	jr := Jacobi(2, n, steps, StencilBox)
	g := jr.Graph
	sizes := []int{32, 128}
	measured := make([]float64, len(sizes))
	lower := make([]float64, len(sizes))
	// The per-S simulations are independent: build the tiled schedules, then
	// fan the memory simulations out over the bounded worker pool.  The sweep
	// results are identical to the serial per-S loop.  Schedule construction
	// stays inside the timed loop so the recorded numbers remain comparable
	// with the serial BENCH_1 workload.
	for i := 0; i < b.N; i++ {
		jobs := make([]MemorySweepJob, len(sizes))
		for si, s := range sizes {
			tile := int(math.Sqrt(float64(s) / 2))
			if tile < 2 {
				tile = 2
			}
			jobs[si] = MemorySweepJob{
				Cfg:   memsim.Config{Nodes: 1, FastWords: s, Policy: memsim.Belady},
				Order: StencilSkewed(jr, tile),
			}
		}
		stats, err := SimulateMemorySweep(g, jobs, 0)
		if err != nil {
			b.Fatal(err)
		}
		for si, s := range sizes {
			measured[si] = float64(stats[si].VerticalTotal())
			lower[si] = JacobiLower(JacobiParams{Dim: 2, N: n, Steps: steps, Processors: 1, Nodes: 1}, int64(s)).Value
		}
	}
	// Scaling exponent of measured traffic vs S (theory: −1/2).
	scaling := math.Log(measured[1]/measured[0]) / math.Log(float64(sizes[1])/float64(sizes[0]))
	b.ReportMetric(measured[0]/lower[0], "S32-measured/LB")
	b.ReportMetric(measured[1]/lower[1], "S128-measured/LB")
	b.ReportMetric(scaling, "traffic-vs-S-exponent(theory:-0.5)")
}

// BenchmarkMatMulIOBound reproduces the Section 2/3 matmul baseline: measured
// I/O of naive and blocked schedules against the n³/(2√(2S)) lower bound,
// including the ~1/√S scaling of the blocked schedule's traffic.
func BenchmarkMatMulIOBound(b *testing.B) {
	const n = 20
	r := MatMul(n)
	g := r.Graph
	sizes := []int{32, 128}
	blockedTraffic := make([]float64, len(sizes))
	var naiveRatio, blockedRatio float64
	// Per-S blocked runs plus the naive baseline are independent simulations:
	// build the schedules, then fan out over the worker pool (jobs 0..1 are
	// the blocked sweep, job 2 the naive baseline at the smallest S).
	// Blocked-schedule construction stays inside the timed loop — and the
	// naive order outside it — exactly as in the serial BENCH_1 workload, so
	// the recorded numbers remain comparable.
	naiveOrder := TopologicalSchedule(g)
	for i := 0; i < b.N; i++ {
		jobs := make([]MemorySweepJob, 0, len(sizes)+1)
		for _, s := range sizes {
			block := int(math.Sqrt(float64(s) / 3))
			if block < 2 {
				block = 2
			}
			jobs = append(jobs, MemorySweepJob{
				Cfg:   memsim.Config{Nodes: 1, FastWords: s, Policy: memsim.Belady},
				Order: MatMulBlocked(r, block),
			})
		}
		jobs = append(jobs, MemorySweepJob{
			Cfg:   memsim.Config{Nodes: 1, FastWords: sizes[0], Policy: memsim.Belady},
			Order: naiveOrder,
		})
		stats, err := SimulateMemorySweep(g, jobs, 0)
		if err != nil {
			b.Fatal(err)
		}
		for si, s := range sizes {
			lb := MatMulLower(n, s)
			blockedTraffic[si] = float64(stats[si].VerticalTotal())
			blockedRatio = float64(stats[si].VerticalTotal()) / lb.Value
			if si == 0 {
				naiveRatio = float64(stats[len(sizes)].VerticalTotal()) / lb.Value
			}
		}
	}
	scaling := math.Log(blockedTraffic[1]/blockedTraffic[0]) / math.Log(float64(sizes[1])/float64(sizes[0]))
	b.ReportMetric(naiveRatio, "naive/LB-ratio-S32")
	b.ReportMetric(blockedRatio, "blocked/LB-ratio-S128")
	b.ReportMetric(scaling, "blocked-traffic-vs-S-exponent(theory:-0.5)")
}

// BenchmarkParallelBoundScaling exercises Theorems 5–7: as the same CDAG and
// block partition are spread over more nodes, the busiest node's vertical
// traffic shrinks roughly like 1/N_nodes while the per-node horizontal
// traffic stays bounded by the ghost-cell volume.
func BenchmarkParallelBoundScaling(b *testing.B) {
	jr := Jacobi(1, 128, 8, StencilStar)
	g := jr.Graph
	order := TopologicalSchedule(g)
	var vert1, vert4, horiz4 float64
	for i := 0; i < b.N; i++ {
		for _, nodes := range []int{1, 4} {
			owner := BlockPartitionGrid(jr, nodes)
			stats, err := SimulateMemory(g, memsim.Config{Nodes: nodes, FastWords: 48, Policy: memsim.Belady}, order, owner)
			if err != nil {
				b.Fatal(err)
			}
			if nodes == 1 {
				vert1 = float64(stats.MaxNodeVertical())
			} else {
				vert4 = float64(stats.MaxNodeVertical())
				horiz4 = float64(stats.MaxNodeHorizontal())
			}
		}
	}
	b.ReportMetric(vert1/vert4, "vertical-speedup-4nodes")
	b.ReportMetric(horiz4, "ghost-words-per-node")
}

// BenchmarkWorkspaceReuse measures the payoff of the Workspace handle: the
// same analysis repeated on one reused handle ("reused") versus repeated
// cold free-function calls ("cold"), each of which opens a single-use
// Workspace and re-derives all per-graph state.  The reused handle amortizes
// the memoized topological schedule, the degree-ranked candidate sample and
// the pooled cut-solver networks, so it must be strictly cheaper in both
// ns/op and allocs/op; the pair of sub-benchmarks records that margin in the
// BENCH_<n>.json trajectory.
func BenchmarkWorkspaceReuse(b *testing.B) {
	g := CG(2, 6, 2).Graph
	g.Materialize()
	opts := AnalyzeOptions{FastMemory: 64, Concurrency: 1}
	ctx := context.Background()
	b.Run("reused", func(b *testing.B) {
		ws := Open(g)
		// Warm the handle once so the steady state — the serving loop the
		// handle exists for — is what gets measured.
		if _, err := ws.Analyze(ctx, opts); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := ws.Analyze(ctx, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := Analyze(g, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
}
