// Matrix-multiplication and composite-CDAG study: the Section 2/3 material —
//
//  1. the classical matmul I/O lower bound n³/(2√(2S)) versus the measured
//     cost of naive and blocked schedules across cache sizes,
//  2. the Section-3 composite example, where recomputation lets the whole
//     computation move less data than its matmul step analyzed in isolation —
//     the motivation for the RBW game and the decomposition theorems,
//  3. the same matmul executed through a two-level storage hierarchy with the
//     parallel P-RBW game.
//
// Run with:
//
//	go run ./examples/matmul_hierarchy
package main

import (
	"fmt"
	"log"

	"cdagio"
	"cdagio/internal/prbw"
)

func main() {
	// --- 1. Matmul: lower bound vs naive and blocked schedules. --------------
	const n = 16
	r := cdagio.MatMul(n)
	fmt.Println("matrix multiplication CDAG:", r.Graph)
	fmt.Printf("%6s %12s %12s %12s\n", "S", "lower bound", "naive I/O", "blocked I/O")
	for _, s := range []int{16, 32, 64, 128} {
		lb := cdagio.MatMulLower(n, s)
		naive, err := cdagio.PlayTopological(r.Graph, cdagio.RBW, s, cdagio.Belady)
		if err != nil {
			log.Fatal(err)
		}
		block := 2
		for (block+1)*(block+1)*3 <= s {
			block++
		}
		blocked, err := cdagio.PlaySchedule(r.Graph, cdagio.RBW, s,
			cdagio.MatMulBlocked(r, block), cdagio.Belady, false)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%6d %12.0f %12d %12d\n", s, lb.Value, naive.IO(), blocked.IO())
	}

	// --- 2. The composite example (Section 3). --------------------------------
	ev, err := cdagio.EvaluateComposite(32)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(ev.Report())
	fmt.Println("the composite moves less data than its matmul step analyzed alone, so per-step")
	fmt.Println("bounds cannot be summed naively — the RBW game's decomposition theorem fixes this.")

	// --- 3. Matmul through a hierarchy with the P-RBW game. -------------------
	topo := prbw.Distributed(1, 4, 8, 64, 1<<20)
	asg := prbw.RoundRobin(r.Graph, 4, 0)
	stats, err := cdagio.PlayParallel(r.Graph, topo, asg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Println("P-RBW game: 1 node x 4 cores, 8-word registers, 64-word shared cache:")
	fmt.Print(stats)
}
