// GMRES analysis: reproduce the Section 5.3 study —
//
//  1. solve a non-symmetric system with the real restarted GMRES solver
//     (Figure 4, modified Gram–Schmidt with Givens rotations),
//  2. build the GMRES iteration CDAG and inspect how the per-iteration work
//     and wavefronts grow with the Krylov dimension,
//  3. sweep the restart length m through the Section 5.3.3 balance analysis,
//     showing the 6/(m+20) vertical bound and the crossover where the
//     computation stops being provably bandwidth bound.
//
// Run with:
//
//	go run ./examples/gmres_krylov
package main

import (
	"fmt"
	"log"
	"math"

	"cdagio"
	"cdagio/internal/linalg"
	"cdagio/internal/solvers"
)

func main() {
	// --- 1. Solve a non-symmetric convection-diffusion-like system. ----------
	const dim = 40
	b := linalg.NewCSRBuilder(dim, dim)
	for i := 0; i < dim; i++ {
		b.Add(i, i, 4)
		if i+1 < dim {
			b.Add(i, i+1, -1.8)
		}
		if i > 0 {
			b.Add(i, i-1, -0.2)
		}
	}
	a := b.Build()
	rhs := linalg.NewVector(dim)
	for i := range rhs {
		rhs[i] = math.Cos(float64(i))
	}
	x, stats, err := solvers.GMRES(solvers.CSROperator{M: a}, rhs, solvers.GMRESOptions{
		Tolerance: 1e-10, Restart: 20,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("GMRES solved a %d-unknown non-symmetric system in %d Arnoldi steps (residual %.2e)\n",
		dim, stats.Iterations, rhs.Sub(a.MulVec(x)).Norm2())

	// --- 2. The GMRES CDAG: growing iterations, growing wavefronts. ----------
	gm := cdagio.GMRES(2, 10, 4)
	fmt.Println("GMRES iteration CDAG:", gm.Graph)
	for i, set := range gm.IterationVertices {
		w := cdagio.WavefrontAt(gm.Graph, gm.LastDotVertex[i])
		fmt.Printf("  iteration %d: %5d vertices, wavefront at h_{%d,%d} >= %d\n",
			i, set.Len(), i, i, w)
	}

	// --- 3. The balance sweep of Section 5.3.3. --------------------------------
	bgq := cdagio.IBMBGQ()
	ev, err := cdagio.EvaluateGMRES(3, 1000, bgq.Nodes*bgq.CoresPerNode, bgq.Nodes,
		[]int{1, 5, 10, 50, 100, 500, 1000}, cdagio.Table1Machines())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(ev.Report())
	fmt.Println("conclusion: for small restart lengths GMRES is memory-bandwidth bound like CG;")
	fmt.Println("as m grows the O(m²) orthogonalization work dominates and the bound no longer bites.")
}
