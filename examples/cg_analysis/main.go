// CG analysis: reproduce the paper's Section 5.2 study of the Conjugate
// Gradient method end to end —
//
//  1. solve a Poisson problem with the real CG solver (Figure 3),
//  2. build the CG iteration CDAG and verify the wavefront structure that
//     Theorem 8's lower bound rests on,
//  3. evaluate the machine-balance conditions (Equations 9 and 10) against
//     the Table-1 machines, reproducing the headline value
//     LB_vert·N_nodes/|V| = 0.3.
//
// Run with:
//
//	go run ./examples/cg_analysis
package main

import (
	"fmt"
	"log"
	"math"

	"cdagio"
	"cdagio/internal/linalg"
	"cdagio/internal/solvers"
)

func main() {
	// --- 1. Solve a small Poisson problem with CG. ---------------------------
	grid := linalg.NewGrid(2, 24)
	a := grid.Laplacian()
	f := linalg.NewVector(grid.Points())
	for i := range f {
		f[i] = math.Sin(float64(i + 1))
	}
	x, stats, err := solvers.CG(solvers.CSROperator{M: a}, f, solvers.CGOptions{Tolerance: 1e-8})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CG solved a %d-unknown Poisson system in %d iterations (residual %.2e, %d FLOPs, |x|_inf %.4f)\n",
		grid.Points(), stats.Iterations, stats.Residual, stats.Flops, x.NormInf())

	// --- 2. The CG CDAG and its wavefronts (Theorem 8). ----------------------
	const (
		dim   = 2
		n     = 12
		iters = 3
	)
	cg := cdagio.CG(dim, n, iters)
	points := 1
	for i := 0; i < dim; i++ {
		points *= n
	}
	fmt.Println("CG iteration CDAG:", cg.Graph)
	for t := 0; t < iters; t++ {
		w := cdagio.WavefrontAt(cg.Graph, cg.AlphaVertex[t])
		fmt.Printf("  iteration %d: wavefront at alpha >= %d (theory: 2·n^d = %d)\n",
			t, w, 2*points)
	}

	// --- 3. The balance analysis of Section 5.2.3. ---------------------------
	bgq := cdagio.IBMBGQ()
	params := cdagio.CGParams{
		Dim: 3, N: 1000, Iterations: 100,
		Processors: bgq.Nodes * bgq.CoresPerNode,
		Nodes:      bgq.Nodes,
	}
	ev, err := cdagio.EvaluateCG(params, cdagio.Table1Machines())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(ev.Report())
	fmt.Println("conclusion: CG is unavoidably bound by main-memory bandwidth on every")
	fmt.Println("Table-1 machine, while the interconnect is never the bottleneck.")
}
