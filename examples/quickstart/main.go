// Quickstart: build a CDAG, play the red-blue-white pebble game on it, and
// compare the measured data movement against the library's lower bounds.
//
// The example walks through the 1-D heat-equation workload of Section 5.1:
// it solves the discretized equation numerically, builds the CDAG of the
// corresponding Jacobi-style sweep, and analyzes that CDAG's data-movement
// complexity for a small fast memory.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math"

	"cdagio"
	"cdagio/internal/linalg"
	"cdagio/internal/solvers"
)

func main() {
	// --- 1. A real computation: the 1-D heat equation (Section 5.1). --------
	const n = 64
	u0 := linalg.NewVector(n)
	for i := range u0 {
		u0[i] = math.Sin(math.Pi * float64(i+1) / float64(n+1))
	}
	u, stats, err := solvers.HeatEquation1D(u0, 0.4, 16)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("heat equation: %d steps, %d FLOPs, peak temperature %.4f -> %.4f\n",
		stats.Iterations, stats.Flops, u0.NormInf(), u.NormInf())

	// --- 2. The CDAG of the corresponding stencil sweep. --------------------
	jr := cdagio.Jacobi(1, n, 16, cdagio.StencilStar)
	g := jr.Graph
	fmt.Println("stencil CDAG:", g)

	// --- 3. Play the pebble game: how much data moves with S words of cache?
	const fastMemory = 24
	res, err := cdagio.PlayTopological(g, cdagio.RBW, fastMemory, cdagio.Belady)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pebble game with S=%d: %d loads + %d stores = %d I/O\n",
		fastMemory, res.Loads, res.Stores, res.IO())

	// --- 4. Lower bounds and the gap. ----------------------------------------
	analysis, err := cdagio.Analyze(g, cdagio.AnalyzeOptions{FastMemory: fastMemory})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(analysis.Report())

	// --- 5. A better schedule narrows the gap: skewed time tiles. ------------
	tiled, err := cdagio.PlaySchedule(g, cdagio.RBW, fastMemory,
		cdagio.StencilSkewed(jr, 8), cdagio.Belady, false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("skewed-tile schedule: %d I/O (naive topological: %d, Theorem 10 bound: %.0f)\n",
		tiled.IO(), res.IO(),
		cdagio.JacobiLower(cdagio.JacobiParams{Dim: 1, N: n, Steps: 16, Processors: 1, Nodes: 1},
			fastMemory).Value)
}
