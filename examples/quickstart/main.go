// Quickstart: build a CDAG, open a Workspace on it, and compare the measured
// data movement of pebble-game schedules against the library's lower bounds.
//
// The example walks through the 1-D heat-equation workload of Section 5.1:
// it solves the discretized equation numerically, builds the CDAG of the
// corresponding Jacobi-style sweep, then analyzes that CDAG's data-movement
// complexity through a single cdagio.Workspace — the per-graph handle that
// owns all derived analysis state (compiled adjacency, cached min-cut
// networks, memoized schedules) and threads a context.Context through every
// engine, so repeated analyses are cheap and long ones are cancellable.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"time"

	"cdagio"
	"cdagio/internal/linalg"
	"cdagio/internal/solvers"
)

func main() {
	// --- 1. A real computation: the 1-D heat equation (Section 5.1). --------
	const n = 64
	u0 := linalg.NewVector(n)
	for i := range u0 {
		u0[i] = math.Sin(math.Pi * float64(i+1) / float64(n+1))
	}
	u, stats, err := solvers.HeatEquation1D(u0, 0.4, 16)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("heat equation: %d steps, %d FLOPs, peak temperature %.4f -> %.4f\n",
		stats.Iterations, stats.Flops, u0.NormInf(), u.NormInf())

	// --- 2. The CDAG of the corresponding stencil sweep, and its Workspace. --
	// Open once, analyze many times: the handle owns the compiled adjacency,
	// the cached cut networks and the memoized schedules, so every call below
	// after the first reuses them.  A real service would keep one Workspace
	// per live CDAG and pass each request's context; here a deadline stands in
	// for that.
	jr := cdagio.Jacobi(1, n, 16, cdagio.StencilStar)
	g := jr.Graph
	fmt.Println("stencil CDAG:", g)
	ws := cdagio.Open(g)
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	// --- 3. Play the pebble game: how much data moves with S words of cache?
	// A nil order plays the workspace's memoized topological schedule.
	const fastMemory = 24
	res, err := ws.Play(cdagio.RBW, fastMemory, nil, cdagio.Belady, false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pebble game with S=%d: %d loads + %d stores = %d I/O\n",
		fastMemory, res.Loads, res.Stores, res.IO())

	// --- 4. Lower bounds and the gap. ----------------------------------------
	analysis, err := ws.Analyze(ctx, cdagio.AnalyzeOptions{FastMemory: fastMemory})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(analysis.Report())

	// --- 5. A better schedule narrows the gap: skewed time tiles. ------------
	tiled, err := ws.Play(cdagio.RBW, fastMemory,
		cdagio.StencilSkewed(jr, 8), cdagio.Belady, false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("skewed-tile schedule: %d I/O (naive topological: %d, Theorem 10 bound: %.0f)\n",
		tiled.IO(), res.IO(),
		cdagio.JacobiLower(cdagio.JacobiParams{Dim: 1, N: n, Steps: 16, Processors: 1, Nodes: 1},
			fastMemory).Value)

	// --- 6. The same handle answers point queries cheaply. -------------------
	// The w^max search below reuses the solver networks the Analyze call
	// already built; a cancelled context would stop it mid-scan instead.
	w, at, err := ws.WMax(ctx, nil, cdagio.WMaxOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("w^max = %d (witness vertex %d): Lemma 2 gives I/O >= %d\n",
		w, at, 2*(w-fastMemory))
}
