// Jacobi stencil analysis: reproduce the Section 5.4 study —
//
//  1. relax a Poisson problem with the real Jacobi smoother,
//  2. build the 9-point stencil CDAG and measure the data movement of a
//     naive schedule versus a skewed time-tiled schedule, showing that the
//     tiled cost tracks the Theorem 10 lower bound (the bound is tight),
//  3. partition the grid across nodes and measure the ghost-cell
//     (horizontal) traffic with the P-RBW game,
//  4. evaluate the Section 5.4.3 balance criterion per stencil dimension.
//
// Run with:
//
//	go run ./examples/jacobi_stencil
package main

import (
	"fmt"
	"log"

	"cdagio"
	"cdagio/internal/linalg"
	"cdagio/internal/memsim"
	"cdagio/internal/prbw"
	"cdagio/internal/solvers"
)

func main() {
	// --- 1. A real Jacobi relaxation. ----------------------------------------
	grid := linalg.NewGrid(2, 32)
	f := linalg.NewVector(grid.Points()).Fill(1)
	u0 := linalg.NewVector(grid.Points())
	_, stats, err := solvers.JacobiPoisson(grid, f, u0, solvers.JacobiOptions{Steps: 20})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Jacobi relaxation: %d sweeps over %d points, %d FLOPs\n",
		stats.Iterations, grid.Points(), stats.Flops)

	// --- 2. Data movement of the stencil CDAG: naive vs time-tiled. ----------
	const (
		n     = 24
		steps = 12
		s     = 96 // fast-memory words
	)
	jr := cdagio.Jacobi(2, n, steps, cdagio.StencilBox)
	naive, err := cdagio.PlayTopological(jr.Graph, cdagio.RBW, s, cdagio.Belady)
	if err != nil {
		log.Fatal(err)
	}
	tiled, err := cdagio.PlaySchedule(jr.Graph, cdagio.RBW, s,
		cdagio.StencilSkewed(jr, 8), cdagio.Belady, false)
	if err != nil {
		log.Fatal(err)
	}
	lower := cdagio.JacobiLower(cdagio.JacobiParams{Dim: 2, N: n, Steps: steps, Processors: 1, Nodes: 1}, s)
	fmt.Printf("9-point Jacobi CDAG (%d vertices), S=%d words:\n", jr.Graph.NumVertices(), s)
	fmt.Printf("  naive sweep order:   %6d I/O\n", naive.IO())
	fmt.Printf("  skewed time tiles:   %6d I/O\n", tiled.IO())
	fmt.Printf("  Theorem 10 bound:    %6.0f I/O (tight up to a constant)\n", lower.Value)

	// --- 3. Distributed execution: ghost cells are the horizontal traffic. ---
	owner := cdagio.BlockPartitionGrid(jr, 4)
	simStats, err := cdagio.SimulateMemory(jr.Graph,
		memsim.Config{Nodes: 4, FastWords: s, Policy: memsim.Belady},
		cdagio.TopologicalSchedule(jr.Graph), owner)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("block partition over 4 nodes: vertical %d words, horizontal (ghost) %d words\n",
		simStats.VerticalTotal(), simStats.HorizontalTotal())

	topo := prbw.Distributed(2, 1, 16, s, 1<<20)
	asg := prbw.OwnerCompute(jr.Graph, cdagio.BlockPartitionGrid(jr, 2))
	pstats, err := cdagio.PlayParallel(jr.Graph, topo, asg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("P-RBW game on 2 nodes: %d remote gets, %d cache<->memory words\n",
		pstats.HorizontalTraffic(), pstats.VerticalTraffic(2))

	// --- 4. The Section 5.4.3 balance criterion. ------------------------------
	ev, err := cdagio.EvaluateJacobi(cdagio.IBMBGQ(), 6)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(ev.Report())
}
