// Package cdagio characterizes the data-movement complexity of computational
// DAGs (CDAGs) for sequential and parallel execution, reproducing the
// framework of Elango, Rastello, Pouchet, Ramanujam and Sadayappan,
// "On Characterizing the Data Movement Complexity of Computational DAGs for
// Parallel Execution" (SPAA 2014 / Inria RR-8522).
//
// The package is a thin facade over the implementation packages under
// internal/.  Its primary entry point is the Workspace handle: Open(g)
// returns a per-graph handle that owns all derived analysis state — compiled
// CSR adjacency, cached min-cut networks, pooled solvers, memoized schedules
// and candidate samples — and exposes every engine as a context-first method:
//
//	ws := cdagio.Open(g)
//	analysis, err := ws.Analyze(ctx, cdagio.AnalyzeOptions{FastMemory: 64})
//	w, at, err := ws.WMax(ctx, nil, cdagio.WMaxOptions{})
//
// Repeated analyses of one CDAG through one Workspace amortize all of that
// state, and cancelling the context (a deadline, a dropped request, a signal)
// stops the long-running engines promptly.  The engines cover:
//
//   - CDAG construction: generators for the kernels the paper analyzes
//     (matrix multiplication, the Section-3 composite, FFT, Jacobi stencils,
//     CG, GMRES, ...) and a Tracer that records arbitrary scalar
//     computations as CDAGs;
//   - pebble games: the sequential red-blue and red-blue-white games with
//     rule checking, schedule players and an exact optimal solver, plus the
//     parallel P-RBW game over a storage hierarchy;
//   - lower bounds: 2S-partitioning, min-cut wavefronts, decomposition and
//     tagging, the parallel vertical/horizontal conversions, and the paper's
//     closed forms for CG, GMRES, Jacobi and matmul;
//   - machine models and balance analysis: the Table-1 machines and the
//     Equation 7–10 bandwidth-bound verdicts;
//   - the unified analyzer (Workspace.Analyze) combining all of the above
//     into reports.
//
// The pre-Workspace free functions (Analyze, WMax, OptimalIO, PlayParallel,
// SimulateMemory, ...) remain as deprecated wrappers that open a single-use
// Workspace under context.Background(); their results are bit-identical to
// the corresponding Workspace methods.
//
// The runnable entry points live under cmd/ (iolb, pebblesim, balance,
// cdaggen) and examples/.
package cdagio

import (
	"cdagio/internal/balance"
	"cdagio/internal/bounds"
	"cdagio/internal/cdag"
	"cdagio/internal/core"
	"cdagio/internal/gen"
	"cdagio/internal/machine"
	"cdagio/internal/memsim"
	"cdagio/internal/pebble"
	"cdagio/internal/prbw"
	"cdagio/internal/sched"
	"cdagio/internal/trace"
	"cdagio/internal/wavefront"
)

// --- CDAG construction -------------------------------------------------------

// Graph is a computational DAG: vertices are scalar operations, edges are
// value flows, and input/output tags mark the values that must start and end
// in slow memory.
type Graph = cdag.Graph

// VertexID identifies a vertex of a Graph.
type VertexID = cdag.VertexID

// VertexSet is a set of vertices of a Graph.
type VertexSet = cdag.VertexSet

// NewGraph returns an empty CDAG.
func NewGraph(name string, hint int) *Graph { return cdag.NewGraph(name, hint) }

// NewTracer returns a Tracer that records a scalar computation as a CDAG.
func NewTracer(name string) *trace.Tracer { return trace.New(name) }

// Generators for the CDAG families analyzed in the paper.
var (
	// MatMul builds the classical n×n×n matrix-multiplication CDAG.
	MatMul = gen.MatMul
	// Composite builds the Section-3 composite example sum((p·qᵀ)(r·sᵀ)).
	Composite = gen.Composite
	// FFT builds the n-point radix-2 butterfly CDAG.
	FFT = gen.FFT
	// Jacobi builds a d-dimensional stencil sweep CDAG over T time steps.
	Jacobi = gen.Jacobi
	// CG builds the Conjugate Gradient iteration CDAG (Figure 3).
	CG = gen.CG
	// GMRES builds the GMRES iteration CDAG (Figure 4).
	GMRES = gen.GMRES
	// HeatEquation1DGraph builds the CDAG of the implicit (Thomas-algorithm)
	// heat-equation time-stepper of Section 5.1, and SpMV the CDAG of a
	// sparse matrix-vector product given the matrix's row structure.
	HeatEquation1DGraph = gen.HeatEquation1D
	SpMV                = gen.SpMV
	// OuterProduct, DotProduct, Saxpy, Chain, ReductionTree, Pyramid and
	// BinomialTree build the smaller calibration kernels.
	OuterProduct  = gen.OuterProduct
	DotProduct    = gen.DotProduct
	Saxpy         = gen.Saxpy
	Chain         = gen.Chain
	ReductionTree = gen.ReductionTree
	Pyramid       = gen.Pyramid
	BinomialTree  = gen.BinomialTree
)

// Stencil kinds accepted by Jacobi.
const (
	StencilStar = gen.StencilStar
	StencilBox  = gen.StencilBox
)

// --- Sequential pebble games -------------------------------------------------

// Game is a rule-checking sequential pebble game (red-blue or red-blue-white).
type Game = pebble.Game

// GameResult summarizes a completed sequential game.
type GameResult = pebble.Result

// Pebble-game variants and eviction policies.
const (
	HongKung = pebble.HongKung
	RBW      = pebble.RBW
	Belady   = pebble.Belady
	LRU      = pebble.LRU
)

// NewGame starts a sequential pebble game on g with S red pebbles.  The
// graph's structure must stay fixed while the game is played: NewGame
// compiles and caches its adjacency.
func NewGame(g *Graph, variant pebble.Variant, s int, record bool) *Game {
	return pebble.NewGame(g, variant, s, record)
}

// PlaySchedule executes a vertex schedule as a complete sequential game.
//
// Deprecated: use Open(g).Play(variant, s, order, policy, record), which
// reuses the graph's derived state across plays.  Results are bit-identical.
func PlaySchedule(g *Graph, variant pebble.Variant, s int, order []VertexID,
	policy pebble.EvictionPolicy, record bool) (GameResult, error) {
	ws, _ := openBackground(g)
	return ws.Play(variant, s, order, policy, record)
}

// PlayTopological executes the topological schedule of g.
//
// Deprecated: use Open(g).Play(variant, s, nil, policy, false) — a nil order
// selects the workspace's memoized topological schedule.  Results are
// bit-identical.
func PlayTopological(g *Graph, variant pebble.Variant, s int, policy pebble.EvictionPolicy) (GameResult, error) {
	ws, _ := openBackground(g)
	return ws.Play(variant, s, nil, policy, false)
}

// OptimalIO computes the exact minimum I/O of small CDAGs by state-space
// search.
//
// Deprecated: use Open(g).OptimalIO(ctx, variant, s, opts), which bounds the
// exponential search with a cancellable context.  Results under
// context.Background() are bit-identical.
func OptimalIO(g *Graph, variant pebble.Variant, s int, opts pebble.OptimalOptions) (int, error) {
	ws, ctx := openBackground(g)
	return ws.OptimalIO(ctx, variant, s, opts)
}

// --- Parallel pebble game and simulators -------------------------------------

// Topology describes a parallel machine's storage hierarchy for the P-RBW game.
type Topology = prbw.Topology

// ParallelStats reports the data movement of a P-RBW game.
type ParallelStats = prbw.Stats

// Assignment maps a schedule onto processors.
type Assignment = prbw.Assignment

// TwoLevel, Distributed and TopologyFromMachine build P-RBW topologies.
var (
	TwoLevel            = prbw.TwoLevel
	Distributed         = prbw.Distributed
	TopologyFromMachine = prbw.FromMachine
)

// PlayParallel executes an assignment as a complete P-RBW game.
//
// Deprecated: use Open(g).PlayParallel(ctx, topo, asg), which makes long
// games cancellable.  Results under context.Background() are bit-identical.
func PlayParallel(g *Graph, topo Topology, asg Assignment) (*ParallelStats, error) {
	ws, ctx := openBackground(g)
	return ws.PlayParallel(ctx, topo, asg)
}

// MemSimConfig describes the machine simulated by the lightweight
// distributed cache simulator (nodes, per-node fast-memory words, policy).
type MemSimConfig = memsim.Config

// MemSimStats reports the simulator's measured data movement.
type MemSimStats = memsim.Stats

// Replacement policies of the simulated fast memory.
const (
	MemSimBelady = memsim.Belady
	MemSimLRU    = memsim.LRU
)

// SimulateMemory runs the lightweight distributed cache simulator.
//
// Deprecated: use Open(g).Simulate(ctx, cfg, order, owner).  Results are
// bit-identical.
func SimulateMemory(g *Graph, cfg MemSimConfig, order []VertexID, owner []int) (*MemSimStats, error) {
	ws, ctx := openBackground(g)
	return ws.Simulate(ctx, cfg, order, owner)
}

// MemorySweepJob is one simulation of a sweep: a machine configuration, a
// schedule and an optional vertex→node assignment against a shared graph.
type MemorySweepJob = memsim.Job

// SimulateMemorySweep runs the jobs over a bounded worker pool (workers ≤ 0
// selects GOMAXPROCS) and returns one Stats per job, in job order.  The
// results are deterministically identical to calling SimulateMemory on each
// job serially, for every worker count.  The per-S tightness sweeps and
// per-schedule ablations of Section 5.4 run on this engine.
//
// Deprecated: use Open(g).SimulateSweep(ctx, jobs, workers), which makes the
// sweep cancellable between jobs.  Results under context.Background() are
// bit-identical at every worker count.
func SimulateMemorySweep(g *Graph, jobs []MemorySweepJob, workers int) ([]*memsim.Stats, error) {
	ws, ctx := openBackground(g)
	return ws.SimulateSweep(ctx, jobs, workers)
}

// --- Schedules ----------------------------------------------------------------

// Scheduling helpers.
var (
	TopologicalSchedule = sched.Topological
	MatMulBlocked       = sched.MatMulBlocked
	StencilSkewed       = sched.StencilSkewed
	BlockPartitionGrid  = sched.BlockPartitionGrid
)

// --- Lower bounds -------------------------------------------------------------

// Bound is a data-movement bound with provenance.
type Bound = bounds.Bound

// Closed-form bounds and parameter types for the paper's algorithms.
type (
	// CGParams parameterizes the CG bounds of Theorem 8 / Section 5.2.
	CGParams = bounds.CGParams
	// GMRESParams parameterizes the GMRES bounds of Theorem 9 / Section 5.3.
	GMRESParams = bounds.GMRESParams
	// JacobiParams parameterizes the Jacobi bounds of Theorem 10 / Section 5.4.
	JacobiParams = bounds.JacobiParams
)

// Closed-form bound constructors.
var (
	MatMulLower          = bounds.MatMulLower
	FFTLower             = bounds.FFTLower
	CGVerticalLower      = bounds.CGVerticalLower
	CGHorizontalUpper    = bounds.CGHorizontalUpper
	GMRESVerticalLower   = bounds.GMRESVerticalLower
	GMRESHorizontalUpper = bounds.GMRESHorizontalUpper
	JacobiLower          = bounds.JacobiLower
	JacobiHorizontal     = bounds.JacobiHorizontalUpper
)

// WavefrontAt returns the min-cut wavefront lower bound induced by a vertex.
//
// Deprecated: use Open(g).WavefrontAt(ctx, x), whose pooled solvers live as
// long as the handle.  Values are bit-identical.  (This wrapper stays on the
// process-wide solver pool rather than a single-use Workspace so existing
// per-piece query loops keep their warm-scratch behavior.)
func WavefrontAt(g *Graph, x VertexID) int { return wavefront.MinWavefrontAt(g, x) }

// WMax returns the maximum min-cut wavefront bound over the candidates,
// computed by the parallel pruned search engine with default options.
//
// Deprecated: use Open(g).WMax(ctx, candidates, WMaxOptions{}), which is
// cancellable and reuses the workspace's solver pool.  The bound and witness
// under context.Background() are bit-identical.
func WMax(g *Graph, candidates []VertexID) (int, VertexID) {
	ws, ctx := openBackground(g)
	w, at, _ := ws.WMax(ctx, candidates, WMaxOptions{})
	return w, at
}

// WMaxOptions configures the w^max candidate search (Workspace.WMax and the
// deprecated WMaxWithOptions): the worker-pool width and whether upper-bound
// pruning is applied.
type WMaxOptions = wavefront.WMaxOptions

// WMaxWithOptions is WMax with an explicit worker-pool width and pruning
// control.  The result (bound and witness vertex) always equals the serial
// all-candidates scan, independent of worker count.
//
// Deprecated: use Open(g).WMax(ctx, candidates, opts).  The bound and witness
// under context.Background() are bit-identical at every worker count.
func WMaxWithOptions(g *Graph, candidates []VertexID, opts WMaxOptions) (int, VertexID) {
	ws, ctx := openBackground(g)
	w, at, _ := ws.WMax(ctx, candidates, opts)
	return w, at
}

// --- Machines and balance ------------------------------------------------------

// Machine describes a parallel computer and its balance parameters.
type Machine = machine.Machine

// BalanceRow is one line of a balance-analysis table.
type BalanceRow = balance.Row

// Machine catalog (Table 1) and helpers.
var (
	IBMBGQ         = machine.IBMBGQ
	CrayXT5        = machine.CrayXT5
	Table1Machines = machine.Table1
	GenericMachine = machine.Generic
	LookupMachine  = machine.Lookup
)

// --- Unified analyzer -----------------------------------------------------------

// AnalyzeOptions configures the sequential analyzer.
type AnalyzeOptions = core.Options

// Analysis is the sequential analyzer's result.
type Analysis = core.Analysis

// Analyze computes lower bounds with every applicable technique and a
// measured upper bound for the CDAG.
//
// Deprecated: use Open(g).Analyze(ctx, opts), which is cancellable and
// amortizes the graph's derived state across repeated analyses.  Results
// under context.Background() are bit-identical.
func Analyze(g *Graph, opts AnalyzeOptions) (*Analysis, error) {
	ws, ctx := openBackground(g)
	return ws.Analyze(ctx, opts)
}

// Evaluation results for the paper's Section 5 analyses.
type (
	// CGEvaluationResult is the Section 5.2.3 CG balance analysis.
	CGEvaluationResult = core.CGEvaluation
	// GMRESEvaluationResult is the Section 5.3.3 GMRES balance analysis.
	GMRESEvaluationResult = core.GMRESEvaluation
	// JacobiEvaluationResult is the Section 5.4.3 Jacobi balance analysis.
	JacobiEvaluationResult = core.JacobiEvaluation
	// CompositeEvaluationResult is the Section 3 composite-example study.
	CompositeEvaluationResult = core.CompositeEvaluation
)

// Evaluation entry points reproducing the paper's Section 5 analyses.
var (
	EvaluateCG        = core.EvaluateCG
	EvaluateGMRES     = core.EvaluateGMRES
	EvaluateJacobi    = core.EvaluateJacobi
	EvaluateComposite = core.EvaluateComposite
	Table1Report      = core.Table1Report
)

// Executable per-iteration forms of the Theorem 8 and Theorem 9 bounds: they
// decompose a generated CG/GMRES CDAG iteration by iteration, measure the
// min-cut wavefronts at the designated scalar vertices, and sum the Lemma 2
// contributions.
var (
	CGMinCutBound    = core.CGMinCutBound
	GMRESMinCutBound = core.GMRESMinCutBound
)
