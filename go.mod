module cdagio

go 1.21
