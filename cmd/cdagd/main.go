// Command cdagd serves the analysis engines over HTTP/JSON: a crash-safe
// daemon that ingests CDAGs (inline JSON or generator specs), caches live
// Workspaces in a byte-budgeted LRU keyed by content hash, and runs the
// engines — w^max scans, full analyses, exact searches, pebble-game players
// and cache simulators — with panic isolation, per-request deadlines,
// bounded admission queues and request-hash memoization.
//
// Usage:
//
//	cdagd -addr 127.0.0.1:8080 -cache-mb 256 -drain 10s
//
// Endpoints:
//
//	GET  /healthz                  liveness + queue/cache metrics (always 200)
//	GET  /readyz                   readiness (503 while draining)
//	POST /v1/graphs                ingest {"graph": {...}} or {"gen": {...}}
//	GET  /v1/graphs/{id}           metadata of a cached graph
//	POST /v1/graphs/{id}/{engine}  run an engine (?deadline_ms= caps it)
//
// SIGINT/SIGTERM starts a graceful drain: the listener closes, in-flight
// requests get -drain to finish, stragglers are force-cancelled through
// their contexts, and the process exits 0 on a clean drain.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"cdagio/internal/cdag"
	"cdagio/internal/serve"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:8080", "TCP listen address")
		cacheMB  = flag.Int64("cache-mb", 256, "workspace-cache budget in MiB")
		maxVerts = flag.Int("max-vertices", 2<<20, "largest accepted uploaded graph, in vertices")
		maxEdges = flag.Int("max-edges", 16<<20, "largest accepted uploaded graph, in edges")
		solvers  = flag.Int("solvers", 0, "cut solvers outstanding per workspace (0 = GOMAXPROCS)")
		heavy    = flag.Int("heavy", 2, "in-flight cap for the expensive engines (analyze, wmax, optimal)")
		light    = flag.Int("light", 16, "in-flight cap for the cheap engines")
		deadline = flag.Duration("deadline", 30*time.Second, "default per-request deadline")
		maxDl    = flag.Duration("max-deadline", 2*time.Minute, "hard cap on any request deadline")
		drain    = flag.Duration("drain", 10*time.Second, "graceful-shutdown drain timeout")
	)
	flag.Parse()

	s := serve.New(serve.Config{
		Addr:            *addr,
		CacheBudget:     *cacheMB << 20,
		JSONLimits:      cdag.JSONLimits{MaxVertices: *maxVerts, MaxEdges: *maxEdges, MaxLabelBytes: 16 << 20},
		SolverLimit:     *solvers,
		HeavyInFlight:   *heavy,
		LightInFlight:   *light,
		DefaultDeadline: *deadline,
		MaxDeadline:     *maxDl,
		DrainTimeout:    *drain,
	})

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	err := s.Run(ctx, func(a net.Addr) {
		fmt.Printf("cdagd: listening on http://%s\n", a)
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "cdagd: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("cdagd: drained cleanly")
}
