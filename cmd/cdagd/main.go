// Command cdagd serves the analysis engines over HTTP/JSON: a crash-safe
// daemon that ingests CDAGs (inline JSON or generator specs), caches live
// Workspaces in a byte-budgeted LRU keyed by content hash, and runs the
// engines — w^max scans, full analyses, exact searches, pebble-game players
// and cache simulators — with panic isolation, per-request deadlines,
// bounded admission queues and request-hash memoization.
//
// Usage:
//
//	cdagd -addr 127.0.0.1:8080 -cache-mb 256 -drain 10s
//
// Endpoints:
//
//	GET  /healthz                  liveness + queue/cache metrics (always 200)
//	GET  /readyz                   readiness (503 while draining)
//	POST /v1/graphs                ingest {"graph": {...}} or {"gen": {...}}
//	GET  /v1/graphs/{id}           metadata of a cached graph
//	POST /v1/graphs/{id}/{engine}  run an engine (?deadline_ms= caps it)
//
// With -store-dir the daemon is additionally crash-safe across restarts:
// accepted graphs and memoized responses are journaled to an append-only
// checksummed log before they are acknowledged, and a restart on the same
// directory replays them (recovery truncates torn tails and skips corrupt
// records with counters on /healthz; /readyz gates until replay finishes).
//
// SIGINT/SIGTERM starts a graceful drain: the listener closes, in-flight
// requests get -drain to finish, stragglers are force-cancelled through
// their contexts, and the process exits 0 on a clean drain.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"cdagio/internal/cdag"
	"cdagio/internal/serve"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:8080", "TCP listen address")
		cacheMB  = flag.Int64("cache-mb", 256, "workspace-cache budget in MiB")
		maxVerts = flag.Int("max-vertices", 2<<20, "largest accepted uploaded graph, in vertices")
		maxEdges = flag.Int("max-edges", 16<<20, "largest accepted uploaded graph, in edges")
		solvers  = flag.Int("solvers", 0, "cut solvers outstanding per workspace (0 = GOMAXPROCS)")
		heavy    = flag.Int("heavy", 2, "in-flight cap for the expensive engines (analyze, wmax, optimal)")
		light    = flag.Int("light", 16, "in-flight cap for the cheap engines")
		deadline = flag.Duration("deadline", 30*time.Second, "default per-request deadline")
		maxDl    = flag.Duration("max-deadline", 2*time.Minute, "hard cap on any request deadline")
		drain    = flag.Duration("drain", 10*time.Second, "graceful-shutdown drain timeout")
		storeDir = flag.String("store-dir", "", "directory for the crash-safe journal (empty = pure in-memory)")
		fsync    = flag.Bool("fsync", true, "fsync journal appends (with -store-dir; false trades power-loss safety for speed)")
		compact  = flag.Int64("compact-threshold", 64, "journal size in MiB beyond which background compaction runs")
		memoMax  = flag.Int64("max-memo-bytes", 1<<20, "largest response body memoized (and journaled), in bytes")
	)
	flag.Parse()

	if *memoMax <= 0 {
		fmt.Fprintf(os.Stderr, "cdagd: -max-memo-bytes must be positive, got %d\n", *memoMax)
		os.Exit(2)
	}
	if *memoMax > *cacheMB<<20 {
		fmt.Fprintf(os.Stderr, "cdagd: -max-memo-bytes %d exceeds the cache budget %d\n", *memoMax, *cacheMB<<20)
		os.Exit(2)
	}
	if *compact <= 0 {
		fmt.Fprintf(os.Stderr, "cdagd: -compact-threshold must be positive MiB, got %d\n", *compact)
		os.Exit(2)
	}

	s, err := serve.New(serve.Config{
		Addr:             *addr,
		CacheBudget:      *cacheMB << 20,
		JSONLimits:       cdag.JSONLimits{MaxVertices: *maxVerts, MaxEdges: *maxEdges, MaxLabelBytes: 16 << 20},
		SolverLimit:      *solvers,
		HeavyInFlight:    *heavy,
		LightInFlight:    *light,
		DefaultDeadline:  *deadline,
		MaxDeadline:      *maxDl,
		DrainTimeout:     *drain,
		MaxMemoEntry:     *memoMax,
		StoreDir:         *storeDir,
		NoFsync:          !*fsync,
		CompactThreshold: *compact << 20,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "cdagd: %v\n", err)
		os.Exit(1)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	err = s.Run(ctx, func(a net.Addr) {
		fmt.Printf("cdagd: listening on http://%s\n", a)
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "cdagd: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("cdagd: drained cleanly")
}
