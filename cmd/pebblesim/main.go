// Command pebblesim plays pebble games on generated CDAGs and reports their
// data movement: the sequential red-blue / red-blue-white games with a chosen
// fast-memory capacity and eviction policy, or the parallel P-RBW game on a
// distributed storage hierarchy.
//
// Usage:
//
//	pebblesim -kernel fft -n 64 -S 16                      # sequential RBW game
//	pebblesim -kernel matmul -n 12 -S 48 -variant hk       # allow recomputation
//	pebblesim -kernel jacobi -dim 1 -n 64 -steps 8 \
//	          -parallel -nodes 2 -procs 2 -cache 128       # P-RBW game
//
// The games run on a single cdagio.Workspace under a cancellable context:
// -timeout bounds the wall-clock, and an interrupt (Ctrl-C / SIGTERM) stops
// the w^max search and the P-RBW player at their next cancellation point.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"cdagio"
	"cdagio/internal/pebble"
	"cdagio/internal/prbw"
)

func main() {
	var (
		kernel  = flag.String("kernel", "fft", "kernel: matmul | composite | fft | jacobi | cg | gmres | dot | outer | chain | pyramid")
		n       = flag.Int("n", 16, "problem size per dimension")
		dim     = flag.Int("dim", 2, "grid dimensionality (jacobi, cg, gmres)")
		steps   = flag.Int("steps", 4, "time steps (jacobi)")
		iters   = flag.Int("iters", 2, "outer iterations (cg, gmres)")
		s       = flag.Int("S", 32, "fast-memory capacity in words (sequential game)")
		variant = flag.String("variant", "rbw", "sequential game variant: rbw | hk")
		policy  = flag.String("policy", "belady", "eviction policy: belady | lru")

		parallel = flag.Bool("parallel", false, "play the parallel P-RBW game instead")
		nodes    = flag.Int("nodes", 2, "number of nodes (parallel)")
		procs    = flag.Int("procs", 2, "processors per node (parallel)")
		regs     = flag.Int("regs", 8, "registers per processor (parallel)")
		cache    = flag.Int("cache", 256, "shared cache words per node (parallel)")
		mem      = flag.Int("mem", 1<<20, "main-memory words per node (parallel)")
		grain    = flag.Int("grain", 0, "block-cyclic assignment grain (0 = one block per processor)")

		wmax = flag.Bool("wmax", false, "also report the w^max min-cut wavefront lower bound")
		jobs = flag.Int("j", 0, "worker goroutines for the w^max search (0 = GOMAXPROCS)")

		timeout = flag.Duration("timeout", 0, "abort after this long (0 = no deadline); Ctrl-C cancels too")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	g, err := buildKernel(*kernel, *n, *dim, *steps, *iters)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pebblesim:", err)
		os.Exit(1)
	}
	fmt.Println(g)
	ws := cdagio.Open(g)

	if *wmax {
		w, at, err := ws.WMax(ctx, nil, cdagio.WMaxOptions{Concurrency: *jobs})
		exitOn(err)
		fmt.Printf("w^max >= %d (at vertex %d, all candidates)\n", w, at)
	}

	if *parallel {
		topo := prbw.Distributed(*nodes, *procs, *regs, *cache, *mem)
		asg := prbw.RoundRobin(g, topo.Processors(), *grain)
		stats, err := ws.PlayParallel(ctx, topo, asg)
		exitOn(err)
		fmt.Print(stats)
		return
	}

	v := pebble.RBW
	if *variant == "hk" {
		v = pebble.HongKung
	}
	p := pebble.Belady
	if *policy == "lru" {
		p = pebble.LRU
	}
	// A nil order plays the workspace's memoized topological schedule.
	res, err := ws.Play(v, *s, nil, p, false)
	exitOn(err)
	fmt.Println(res)
}

func exitOn(err error) {
	if err == nil {
		return
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(os.Stderr, "pebblesim: cancelled:", err)
	} else {
		fmt.Fprintln(os.Stderr, "pebblesim:", err)
	}
	os.Exit(1)
}

func buildKernel(kernel string, n, dim, steps, iters int) (*cdagio.Graph, error) {
	switch kernel {
	case "matmul":
		return cdagio.MatMul(n).Graph, nil
	case "composite":
		return cdagio.Composite(n).Graph, nil
	case "fft":
		return cdagio.FFT(n), nil
	case "jacobi":
		return cdagio.Jacobi(dim, n, steps, cdagio.StencilBox).Graph, nil
	case "cg":
		return cdagio.CG(dim, n, iters).Graph, nil
	case "gmres":
		return cdagio.GMRES(dim, n, iters).Graph, nil
	case "dot":
		return cdagio.DotProduct(n), nil
	case "outer":
		return cdagio.OuterProduct(n), nil
	case "chain":
		return cdagio.Chain(n), nil
	case "pyramid":
		return cdagio.Pyramid(n), nil
	default:
		return nil, fmt.Errorf("unknown kernel %q", kernel)
	}
}
