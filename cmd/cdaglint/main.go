// Command cdaglint is the repository's multichecker: it runs the cdaglint
// analyzer suite (hotloop, determinism, ctxflow, faultpoint, errtaxonomy)
// over the requested packages and fails if any invariant is broken.
//
// Usage:
//
//	go run ./cmd/cdaglint ./...
//
// Exit status: 0 when clean, 1 when findings were reported, 2 on an
// operational error (a package that does not build, a go list failure).
//
// Intentional exceptions are annotated in place:
//
//	//cdaglint:allow <analyzer> <reason>
//
// The reason is mandatory — a bare allow is itself a finding.
package main

import (
	"flag"
	"fmt"
	"os"

	"cdagio/internal/lint"
	"cdagio/internal/lint/driver"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: cdaglint [packages]\n\nruns the cdaglint analyzer suite; see internal/lint for the invariants.\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	dir, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "cdaglint:", err)
		os.Exit(2)
	}
	findings, err := driver.Main(os.Stdout, dir, flag.Args(), lint.Analyzers())
	if err != nil {
		fmt.Fprintln(os.Stderr, "cdaglint:", err)
		os.Exit(2)
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "cdaglint: %d finding(s)\n", findings)
		os.Exit(1)
	}
}
