// Command balance reproduces the machine-balance analysis of the paper's
// evaluation section: Table 1 (machine specifications and balance
// parameters), the CG analysis of Section 5.2.3, the GMRES analysis of
// Section 5.3.3 and the Jacobi analysis of Section 5.4.3.
//
// Usage:
//
//	balance -all
//	balance -table1
//	balance -cg -n 1000
//	balance -gmres -m 1,10,100,1000
//	balance -jacobi -maxdim 6
//	balance -composite -n 64
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"cdagio"
)

func main() {
	var (
		all       = flag.Bool("all", false, "run every analysis")
		table1    = flag.Bool("table1", false, "print Table 1 (machine specifications)")
		cg        = flag.Bool("cg", false, "run the CG balance analysis (Section 5.2.3)")
		gmres     = flag.Bool("gmres", false, "run the GMRES balance analysis (Section 5.3.3)")
		jacobi    = flag.Bool("jacobi", false, "run the Jacobi balance analysis (Section 5.4.3)")
		composite = flag.Bool("composite", false, "run the Section-3 composite example")
		n         = flag.Int("n", 1000, "grid points per dimension (CG/GMRES)")
		mList     = flag.String("m", "1,5,10,100,1000", "comma-separated GMRES restart values")
		maxDim    = flag.Int("maxdim", 6, "largest stencil dimension for the Jacobi analysis")
		compN     = flag.Int("compn", 64, "vector length for the composite example")
	)
	flag.Parse()
	if !*all && !*table1 && !*cg && !*gmres && !*jacobi && !*composite {
		*all = true
	}
	machines := cdagio.Table1Machines()
	bgq := cdagio.IBMBGQ()

	if *all || *table1 {
		fmt.Println("== Table 1: machine specifications ==")
		fmt.Print(cdagio.Table1Report())
		fmt.Println()
	}
	if *all || *cg {
		p := cdagio.CGParams{Dim: 3, N: *n, Iterations: 100,
			Processors: bgq.Nodes * bgq.CoresPerNode, Nodes: bgq.Nodes}
		ev, err := cdagio.EvaluateCG(p, machines)
		exitOn(err)
		fmt.Println("== Conjugate Gradient (Section 5.2.3) ==")
		fmt.Print(ev.Report())
		fmt.Println()
	}
	if *all || *gmres {
		ms, err := parseInts(*mList)
		exitOn(err)
		ev, err := cdagio.EvaluateGMRES(3, *n, bgq.Nodes*bgq.CoresPerNode, bgq.Nodes, ms, machines)
		exitOn(err)
		fmt.Println("== GMRES (Section 5.3.3) ==")
		fmt.Print(ev.Report())
		fmt.Println()
	}
	if *all || *jacobi {
		fmt.Println("== Jacobi stencils (Section 5.4.3) ==")
		for _, m := range machines {
			ev, err := cdagio.EvaluateJacobi(m, *maxDim)
			exitOn(err)
			fmt.Print(ev.Report())
		}
		fmt.Println()
	}
	if *all || *composite {
		ev, err := cdagio.EvaluateComposite(*compN)
		exitOn(err)
		fmt.Println("== Composite example (Section 3) ==")
		fmt.Print(ev.Report())
	}
}

func parseInts(list string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(list, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("invalid integer %q", part)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty integer list")
	}
	return out, nil
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "balance:", err)
		os.Exit(1)
	}
}
