// Command balance reproduces the machine-balance analysis of the paper's
// evaluation section: Table 1 (machine specifications and balance
// parameters), the CG analysis of Section 5.2.3, the GMRES analysis of
// Section 5.3.3 and the Jacobi analysis of Section 5.4.3.
//
// Usage:
//
//	balance -all
//	balance -table1
//	balance -cg -n 1000
//	balance -gmres -m 1,10,100,1000
//	balance -jacobi -maxdim 6
//	balance -composite -n 64
//	balance -all -sim -S 32,64,128 -j 8
//
// With -sim the Section 5.2–5.4 analyses additionally run empirical
// per-S memory-simulation sweeps on small generated CDAGs; each sweep runs
// on its graph's cdagio.Workspace, its independent simulations fanning out
// over the sweep worker pool, bounded by -j exactly like the iolb and
// pebblesim commands bound their wavefront searches.  -timeout bounds the
// whole run, and an interrupt (Ctrl-C / SIGTERM) cancels the sweeps between
// simulations.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"cdagio"
)

func main() {
	var (
		all       = flag.Bool("all", false, "run every analysis")
		table1    = flag.Bool("table1", false, "print Table 1 (machine specifications)")
		cg        = flag.Bool("cg", false, "run the CG balance analysis (Section 5.2.3)")
		gmres     = flag.Bool("gmres", false, "run the GMRES balance analysis (Section 5.3.3)")
		jacobi    = flag.Bool("jacobi", false, "run the Jacobi balance analysis (Section 5.4.3)")
		composite = flag.Bool("composite", false, "run the Section-3 composite example")
		n         = flag.Int("n", 1000, "grid points per dimension (CG/GMRES)")
		mList     = flag.String("m", "1,5,10,100,1000", "comma-separated GMRES restart values")
		maxDim    = flag.Int("maxdim", 6, "largest stencil dimension for the Jacobi analysis")
		compN     = flag.Int("compn", 64, "vector length for the composite example")

		sim      = flag.Bool("sim", false, "also run empirical memory-simulation sweeps for Sections 5.2-5.4")
		sList    = flag.String("S", "32,64,128,256", "comma-separated fast-memory capacities for -sim sweeps")
		simN     = flag.Int("simn", 8, "grid points per dimension of the simulated CDAGs (-sim)")
		simNodes = flag.Int("nodes", 2, "nodes of the simulated machine for the Jacobi -sim sweep")
		jobs     = flag.Int("j", 0, "worker goroutines for the -sim sweeps (0 = GOMAXPROCS)")
		timeout  = flag.Duration("timeout", 0, "abort after this long (0 = no deadline); Ctrl-C cancels too")
	)
	flag.Parse()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	if !*all && !*table1 && !*cg && !*gmres && !*jacobi && !*composite {
		*all = true
	}
	machines := cdagio.Table1Machines()
	bgq := cdagio.IBMBGQ()

	if *all || *table1 {
		fmt.Println("== Table 1: machine specifications ==")
		fmt.Print(cdagio.Table1Report())
		fmt.Println()
	}
	var sweepS []int
	if *sim {
		var err error
		sweepS, err = parseInts(*sList)
		exitOn(err)
	}

	if *all || *cg {
		p := cdagio.CGParams{Dim: 3, N: *n, Iterations: 100,
			Processors: bgq.Nodes * bgq.CoresPerNode, Nodes: bgq.Nodes}
		ev, err := cdagio.EvaluateCG(p, machines)
		exitOn(err)
		fmt.Println("== Conjugate Gradient (Section 5.2.3) ==")
		fmt.Print(ev.Report())
		if *sim {
			g := cdagio.CG(2, *simN, 2).Graph
			exitOn(simSweep(ctx, "CG", g, cdagio.TopologicalSchedule(g), nil, 1, sweepS, *jobs))
		}
		fmt.Println()
	}
	if *all || *gmres {
		ms, err := parseInts(*mList)
		exitOn(err)
		ev, err := cdagio.EvaluateGMRES(3, *n, bgq.Nodes*bgq.CoresPerNode, bgq.Nodes, ms, machines)
		exitOn(err)
		fmt.Println("== GMRES (Section 5.3.3) ==")
		fmt.Print(ev.Report())
		if *sim {
			g := cdagio.GMRES(2, *simN, 2).Graph
			exitOn(simSweep(ctx, "GMRES", g, cdagio.TopologicalSchedule(g), nil, 1, sweepS, *jobs))
		}
		fmt.Println()
	}
	if *all || *jacobi {
		fmt.Println("== Jacobi stencils (Section 5.4.3) ==")
		for _, m := range machines {
			ev, err := cdagio.EvaluateJacobi(m, *maxDim)
			exitOn(err)
			fmt.Print(ev.Report())
		}
		if *sim {
			r := cdagio.Jacobi(2, 4**simN, *simN, cdagio.StencilBox)
			owner := cdagio.BlockPartitionGrid(r, *simNodes)
			exitOn(simSweep(ctx, "Jacobi (skewed)", r.Graph, cdagio.StencilSkewed(r, 4),
				owner, *simNodes, sweepS, *jobs))
		}
		fmt.Println()
	}
	if *all || *composite {
		ev, err := cdagio.EvaluateComposite(*compN)
		exitOn(err)
		fmt.Println("== Composite example (Section 3) ==")
		fmt.Print(ev.Report())
	}
}

// simSweep runs one empirical per-S memory-simulation sweep: one simulation
// job per fast-memory capacity, all against the shared graph's Workspace,
// fanned out over the sweep worker pool (workers = the -j flag; ≤ 0 selects
// GOMAXPROCS) under ctx.  Capacities too small to hold a vertex together
// with its predecessors are reported and skipped.
func simSweep(ctx context.Context, name string, g *cdagio.Graph, order []cdagio.VertexID, owner []int,
	nodes int, sweepS []int, workers int) error {

	minWords := 1
	for v := 0; v < g.NumVertices(); v++ {
		if d := g.InDegree(cdagio.VertexID(v)); d+1 > minWords {
			minWords = d + 1
		}
	}
	var jobs []cdagio.MemorySweepJob
	var kept []int
	for _, s := range sweepS {
		if s < minWords {
			fmt.Printf("  %s sweep: S=%d skipped (max in-degree needs >= %d words)\n", name, s, minWords)
			continue
		}
		jobs = append(jobs, cdagio.MemorySweepJob{
			Cfg:   cdagio.MemSimConfig{Nodes: nodes, FastWords: s, Policy: cdagio.MemSimBelady},
			Order: order,
			Owner: owner,
		})
		kept = append(kept, s)
	}
	if len(jobs) == 0 {
		return nil
	}
	stats, err := cdagio.Open(g).SimulateSweep(ctx, jobs, workers)
	if err != nil {
		return err
	}
	fmt.Printf("  %s memory-simulation sweep (%s, %d node(s), Belady):\n", name, g, nodes)
	fmt.Printf("    %8s %14s %14s %14s %14s\n", "S", "vertical", "max/node", "horizontal", "max/node")
	for i, s := range kept {
		fmt.Printf("    %8d %14d %14d %14d %14d\n", s,
			stats[i].VerticalTotal(), stats[i].MaxNodeVertical(),
			stats[i].HorizontalTotal(), stats[i].MaxNodeHorizontal())
	}
	return nil
}

func parseInts(list string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(list, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("invalid integer %q", part)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty integer list")
	}
	return out, nil
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "balance:", err)
		os.Exit(1)
	}
}
