// Command cdaggen generates the CDAG of a chosen kernel and exports it as
// Graphviz DOT or JSON, along with a structural summary (vertex and edge
// counts, depth, width, degree statistics).
//
// Usage:
//
//	cdaggen -kernel fft -n 16 -format dot -o fft16.dot
//	cdaggen -kernel cg -dim 2 -n 8 -iters 2 -format json -o cg.json
//	cdaggen -kernel jacobi -dim 2 -n 6 -steps 3 -stats
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"cdagio"
	"cdagio/internal/cdag"
)

func main() {
	var (
		kernel = flag.String("kernel", "fft", "kernel: matmul | composite | fft | jacobi | cg | gmres | dot | outer | chain | pyramid | binomial")
		n      = flag.Int("n", 8, "problem size per dimension")
		dim    = flag.Int("dim", 2, "grid dimensionality (jacobi, cg, gmres)")
		steps  = flag.Int("steps", 3, "time steps (jacobi)")
		iters  = flag.Int("iters", 2, "outer iterations (cg, gmres)")
		format = flag.String("format", "dot", "output format: dot | json | none")
		out    = flag.String("o", "", "output file (default stdout)")
		stats  = flag.Bool("stats", true, "print structural statistics to stderr")
		limit  = flag.Int("limit", 2000, "maximum vertices to include in DOT output (0 = no limit)")
	)
	flag.Parse()

	g, err := buildKernel(*kernel, *n, *dim, *steps, *iters)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cdaggen:", err)
		os.Exit(1)
	}
	if *stats {
		fmt.Fprintln(os.Stderr, g)
		fmt.Fprintln(os.Stderr, cdag.ComputeStats(g))
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cdaggen:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	switch *format {
	case "dot":
		err = g.WriteDOT(w, cdag.DOTOptions{RankLevels: true, MaxVertices: *limit})
	case "json":
		err = g.WriteJSON(w)
	case "none":
	default:
		err = fmt.Errorf("unknown format %q", *format)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "cdaggen:", err)
		os.Exit(1)
	}
}

func buildKernel(kernel string, n, dim, steps, iters int) (*cdagio.Graph, error) {
	switch kernel {
	case "matmul":
		return cdagio.MatMul(n).Graph, nil
	case "composite":
		return cdagio.Composite(n).Graph, nil
	case "fft":
		return cdagio.FFT(n), nil
	case "jacobi":
		return cdagio.Jacobi(dim, n, steps, cdagio.StencilBox).Graph, nil
	case "cg":
		return cdagio.CG(dim, n, iters).Graph, nil
	case "gmres":
		return cdagio.GMRES(dim, n, iters).Graph, nil
	case "dot":
		return cdagio.DotProduct(n), nil
	case "outer":
		return cdagio.OuterProduct(n), nil
	case "chain":
		return cdagio.Chain(n), nil
	case "pyramid":
		return cdagio.Pyramid(n), nil
	case "binomial":
		return cdagio.BinomialTree(n), nil
	default:
		return nil, fmt.Errorf("unknown kernel %q", kernel)
	}
}
