// Command iolb computes data-movement (I/O) lower bounds and measured upper
// bounds for the CDAG of a chosen kernel.
//
// Usage:
//
//	iolb -kernel matmul -n 16 -S 64
//	iolb -kernel jacobi -dim 2 -n 32 -steps 8 -S 128
//	iolb -kernel cg -dim 2 -n 16 -iters 3 -S 256 -candidates 64
//	iolb -kernel jacobi -n 100 -steps 10 -candidates -1 -timeout 30s
//	iolb -kernel jacobi -n 512 -steps 3 -candidates -1 -twophase=false
//
// The report lists every lower-bound technique that applied (compulsory I/O,
// min-cut wavefront, 2S-partition, exact search on tiny CDAGs), the measured
// I/O of a Belady-evicted schedule, and the resulting gap.
//
// The wavefront search runs two-phase by default: a degree-ranked seed sample
// (-seed-sample vertices, default 32) is solved exactly first so the broad
// candidate scan starts with the incumbent already at (or near) the final
// maximum and prunes the tail cheaply.  -twophase=false disables the seeding
// pass; neither flag changes the reported bound or witness, only the time a
// full -candidates -1 scan takes.
//
// The analysis runs on a single cdagio.Workspace under a cancellable context:
// -timeout bounds the wall-clock, and an interrupt (Ctrl-C / SIGTERM) stops
// the engines at their next cancellation point instead of killing the
// process mid-solve.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"cdagio"
)

func main() {
	var (
		kernel     = flag.String("kernel", "matmul", "kernel: matmul | composite | fft | jacobi | cg | gmres | dot | outer | chain | pyramid")
		n          = flag.Int("n", 8, "problem size per dimension")
		dim        = flag.Int("dim", 2, "grid dimensionality (jacobi, cg, gmres)")
		steps      = flag.Int("steps", 4, "time steps (jacobi)")
		iters      = flag.Int("iters", 2, "outer iterations (cg, gmres)")
		s          = flag.Int("S", 64, "fast-memory capacity in words")
		candidates = flag.Int("candidates", 0, "wavefront candidate vertices (0 = degree-ranked sample of 32, -1 = all)")
		jobs       = flag.Int("j", 0, "worker goroutines for the wavefront search (0 = GOMAXPROCS)")
		twoPhase   = flag.Bool("twophase", true, "seed the wavefront search with a solved degree-ranked sample before the broad scan")
		seedSample = flag.Int("seed-sample", 0, "two-phase seed sample size (0 = 32, -1 = no sample)")
		exact      = flag.Int("exact", 0, "run the exact optimal search on CDAGs up to this many vertices")
		blocked    = flag.Bool("blocked", false, "use the blocked/skewed schedule instead of the topological one where available")
		timeout    = flag.Duration("timeout", 0, "abort the analysis after this long (0 = no deadline); Ctrl-C cancels too")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	g, schedule, err := buildKernel(*kernel, *n, *dim, *steps, *iters, *blocked)
	if err != nil {
		fmt.Fprintln(os.Stderr, "iolb:", err)
		os.Exit(1)
	}
	ws := cdagio.Open(g)
	start := time.Now()
	analysis, err := ws.Analyze(ctx, cdagio.AnalyzeOptions{
		FastMemory:          *s,
		WavefrontCandidates: *candidates,
		Concurrency:         *jobs,
		DisableTwoPhase:     !*twoPhase,
		SeedSample:          *seedSample,
		ExactOptimalLimit:   *exact,
		Schedule:            schedule,
	})
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			fmt.Fprintf(os.Stderr, "iolb: analysis cancelled after %v: %v\n", time.Since(start).Round(time.Millisecond), err)
		} else {
			fmt.Fprintln(os.Stderr, "iolb:", err)
		}
		os.Exit(1)
	}
	fmt.Print(analysis.Report())
}

// buildKernel constructs the requested CDAG and, when -blocked is set, a
// locality-optimized schedule for it.
func buildKernel(kernel string, n, dim, steps, iters int, blocked bool) (*cdagio.Graph, []cdagio.VertexID, error) {
	switch kernel {
	case "matmul":
		r := cdagio.MatMul(n)
		if blocked {
			block := 2
			for block*block*3 < n { // crude S-oblivious choice
				block++
			}
			return r.Graph, cdagio.MatMulBlocked(r, block), nil
		}
		return r.Graph, nil, nil
	case "composite":
		return cdagio.Composite(n).Graph, nil, nil
	case "fft":
		return cdagio.FFT(n), nil, nil
	case "jacobi":
		r := cdagio.Jacobi(dim, n, steps, cdagio.StencilBox)
		if blocked {
			return r.Graph, cdagio.StencilSkewed(r, 4), nil
		}
		return r.Graph, nil, nil
	case "cg":
		return cdagio.CG(dim, n, iters).Graph, nil, nil
	case "gmres":
		return cdagio.GMRES(dim, n, iters).Graph, nil, nil
	case "dot":
		return cdagio.DotProduct(n), nil, nil
	case "outer":
		return cdagio.OuterProduct(n), nil, nil
	case "chain":
		return cdagio.Chain(n), nil, nil
	case "pyramid":
		return cdagio.Pyramid(n), nil, nil
	default:
		return nil, nil, fmt.Errorf("unknown kernel %q", kernel)
	}
}
