// Command cdagx compiles a declarative experiment spec into a job DAG and
// executes it: graph builds, per-engine analysis cells, and derived tables.
// Results are content-addressed and journaled, so an unchanged spec re-runs
// as pure cache hits and regenerates byte-identical artifacts without
// executing a single cell.
//
// Usage:
//
//	cdagx run [flags] SPEC     execute a spec and write artifacts
//	cdagx plan SPEC            print the compiled job DAG without running it
//	cdagx clean [flags]        delete the result journal
//
// Flags for run:
//
//	-j N            worker pool size (default 4)
//	-remote URL     dispatch engine cells to a running cdagd
//	-cache-dir DIR  result journal directory (default .cdagx)
//	-no-cache       run without a journal (compute everything, persist nothing)
//	-out DIR        artifact directory (default exp-out)
//	-short          skip heavy cells that are not already cached
//	-timeout D      overall deadline (default none)
//	-summary FILE   write a JSON execution summary
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"cdagio/internal/exp/cache"
	"cdagio/internal/exp/plan"
	"cdagio/internal/exp/run"
	"cdagio/internal/exp/spec"
	"cdagio/internal/serve"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "run":
		err = cmdRun(os.Args[2:])
	case "plan":
		err = cmdPlan(os.Args[2:])
	case "clean":
		err = cmdClean(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "cdagx: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "cdagx: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, "usage: cdagx run|plan|clean [flags] [SPEC]\n")
}

func compileSpec(path string) (*spec.IR, error) {
	s, err := spec.Load(path)
	if err != nil {
		return nil, err
	}
	return spec.Compile(s, spec.Options{})
}

func cmdPlan(args []string) error {
	fs := flag.NewFlagSet("plan", flag.ExitOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("plan: expected exactly one SPEC argument")
	}
	ir, err := compileSpec(fs.Arg(0))
	if err != nil {
		return err
	}
	pl := plan.New(ir)
	for _, j := range pl.Jobs {
		fmt.Printf("%4d %-6s %s", j.ID, j.Kind, j.Label)
		if len(j.Deps) > 0 {
			fmt.Printf("  deps=%v", j.Deps)
		}
		if j.Cell != nil {
			if j.Cell.Engine != "" {
				fmt.Printf("  engine=%s", j.Cell.Engine)
			}
			fmt.Printf("  key=%s", j.Cell.Key[:12])
		}
		fmt.Println()
	}
	fmt.Printf("%d jobs (%d cells) over %d workloads\n", len(pl.Jobs), len(pl.CellJobs), len(pl.BuildJob))
	return nil
}

func cmdClean(args []string) error {
	fs := flag.NewFlagSet("clean", flag.ExitOnError)
	cacheDir := fs.String("cache-dir", ".cdagx", "result journal directory")
	if err := fs.Parse(args); err != nil {
		return err
	}
	removed := false
	for _, name := range []string{"log.bin", "log.tmp"} {
		p := filepath.Join(*cacheDir, name)
		err := os.Remove(p)
		switch {
		case err == nil:
			removed = true
		case !os.IsNotExist(err):
			return err
		}
	}
	if removed {
		fmt.Printf("cleaned %s\n", *cacheDir)
	}
	return nil
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	workers := fs.Int("j", 4, "worker pool size")
	remote := fs.String("remote", "", "base URL of a running cdagd to dispatch engine cells to")
	cacheDir := fs.String("cache-dir", ".cdagx", "result journal directory")
	noCache := fs.Bool("no-cache", false, "run without a journal")
	outDir := fs.String("out", "exp-out", "artifact output directory")
	short := fs.Bool("short", false, "skip heavy cells that are not already cached")
	timeout := fs.Duration("timeout", 0, "overall deadline (0 = none)")
	summaryPath := fs.String("summary", "", "write a JSON execution summary to FILE")
	quiet := fs.Bool("q", false, "suppress progress output")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("run: expected exactly one SPEC argument")
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	ir, err := compileSpec(fs.Arg(0))
	if err != nil {
		return err
	}
	pl := plan.New(ir)

	opts := run.Options{Workers: *workers, Short: *short}
	if !*quiet {
		opts.Log = func(format string, a ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", a...)
		}
	}
	if !*noCache {
		c, err := cache.Open(*cacheDir)
		if err != nil {
			return err
		}
		defer c.Close()
		if opts.Log != nil && (c.Recovery.CorruptRecords > 0 || c.Recovery.TruncatedBytes > 0) {
			opts.Log("journal recovery: %d records kept, %d corrupt, %d bytes truncated",
				c.Recovery.Records, c.Recovery.CorruptRecords, c.Recovery.TruncatedBytes)
		}
		opts.Cache = c
	}
	if *remote != "" {
		opts.Remote = &serve.Client{Base: *remote}
	}

	start := time.Now()
	res, err := run.Execute(ctx, pl, opts)
	if err != nil {
		return err
	}
	wallMS := time.Since(start).Milliseconds()

	if err := os.MkdirAll(*outDir, 0o777); err != nil {
		return err
	}
	for _, f := range []struct {
		name string
		body []byte
	}{
		{"EXPERIMENTS.gen.md", res.Outputs.Markdown},
		{"results.csv", res.Outputs.CSV},
		{"results.json", res.Outputs.JSON},
	} {
		if err := os.WriteFile(filepath.Join(*outDir, f.name), f.body, 0o666); err != nil {
			return err
		}
	}

	s := res.Summary
	fmt.Printf("%s: %d cells, %d executed (%d remote), %d cache hits, %d skipped, %d ms\n",
		ir.Name, s.Cells, s.Executed, s.Remote, s.CacheHits, s.Skipped, wallMS)

	if *summaryPath != "" {
		doc := struct {
			run.Summary
			Spec   string `json:"spec"`
			WallMS int64  `json:"wall_ms"`
		}{s, fs.Arg(0), wallMS}
		body, err := json.MarshalIndent(&doc, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*summaryPath, append(body, '\n'), 0o666); err != nil {
			return err
		}
	}
	return nil
}
