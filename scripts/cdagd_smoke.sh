#!/usr/bin/env bash
# End-to-end smoke of the cdagd daemon: build it, start it, upload a graph,
# run an analysis against it, then SIGTERM it and require a clean drain with
# exit status 0.  This is the CI gate for the serving layer's lifecycle —
# the in-process tests cover the hard cases (fault injection, backpressure),
# this proves the shipped binary actually boots, serves and dies gracefully.
set -euo pipefail

cd "$(dirname "$0")/.."

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

go build -o "$workdir/cdagd" ./cmd/cdagd

"$workdir/cdagd" -addr 127.0.0.1:0 >"$workdir/out.log" 2>&1 &
pid=$!

# The daemon prints "cdagd: listening on http://HOST:PORT" once bound.
base=""
for _ in $(seq 1 100); do
    base="$(sed -n 's#^cdagd: listening on \(http://[0-9.:]*\)$#\1#p' "$workdir/out.log" || true)"
    [ -n "$base" ] && break
    kill -0 "$pid" 2>/dev/null || { echo "cdagd died on startup:"; cat "$workdir/out.log"; exit 1; }
    sleep 0.1
done
[ -n "$base" ] || { echo "cdagd never reported its address:"; cat "$workdir/out.log"; exit 1; }
echo "daemon at $base"

fail() { echo "$1"; kill "$pid" 2>/dev/null || true; exit 1; }

curl -sf "$base/healthz" >/dev/null || fail "healthz unreachable"
curl -sf "$base/readyz" >/dev/null || fail "readyz not ready"

# Upload a generator graph and pull its content-hash ID out of the response.
id="$(curl -sf -X POST "$base/v1/graphs" -d '{"gen":{"kind":"tree","n":64}}' \
    | sed -n 's/.*"id":"\(sha256:[0-9a-f]*\)".*/\1/p')"
[ -n "$id" ] || fail "upload returned no graph ID"
echo "graph $id"

# Run a full analysis and check it reports a measured I/O.
analysis="$(curl -sf -X POST "$base/v1/graphs/$id/analyze" -d '{"s":4}')" \
    || fail "analyze request failed"
echo "$analysis" | grep -q '"measured_io"' || fail "analysis has no measured_io: $analysis"

# A malformed request must be a structured 400, not a crash.
status="$(curl -s -o /dev/null -w '%{http_code}' -X POST "$base/v1/graphs/$id/wavefront" -d '{"vertex":-5}')"
[ "$status" = "400" ] || fail "bad request returned $status, want 400"
curl -sf "$base/healthz" >/dev/null || fail "daemon unhealthy after bad request"

# Graceful shutdown: SIGTERM must drain and exit 0.
kill -TERM "$pid"
if ! wait "$pid"; then
    echo "cdagd exited non-zero after SIGTERM:"; cat "$workdir/out.log"; exit 1
fi
grep -q "drained cleanly" "$workdir/out.log" || { echo "no clean-drain message:"; cat "$workdir/out.log"; exit 1; }
echo "cdagd smoke OK"

# ---- Persistence leg: kill -9, restart on the same journal, replay ----------
# A daemon with -store-dir journals every upload and memoized response.  After
# a hard kill (no drain, no chance to flush anything beyond what Append
# already fsynced), a restart on the same directory must replay the analysis
# acknowledged before the kill byte-for-byte, as a memo hit.

storedir="$workdir/store"
"$workdir/cdagd" -addr 127.0.0.1:0 -store-dir "$storedir" >"$workdir/out2.log" 2>&1 &
pid=$!

base=""
for _ in $(seq 1 100); do
    base="$(sed -n 's#^cdagd: listening on \(http://[0-9.:]*\)$#\1#p' "$workdir/out2.log" || true)"
    [ -n "$base" ] && break
    kill -0 "$pid" 2>/dev/null || { echo "cdagd (store) died on startup:"; cat "$workdir/out2.log"; exit 1; }
    sleep 0.1
done
[ -n "$base" ] || { echo "cdagd (store) never reported its address:"; cat "$workdir/out2.log"; exit 1; }
echo "persistent daemon at $base (journal in $storedir)"

# Wait out warm-restart recovery (trivially fast on an empty journal).
for _ in $(seq 1 100); do
    curl -sf "$base/readyz" >/dev/null && break
    sleep 0.1
done
curl -sf "$base/readyz" >/dev/null || fail "persistent daemon never became ready"

id="$(curl -sf -X POST "$base/v1/graphs" -d '{"gen":{"kind":"tree","n":64}}' \
    | sed -n 's/.*"id":"\(sha256:[0-9a-f]*\)".*/\1/p')"
[ -n "$id" ] || fail "upload (store) returned no graph ID"
analysis="$(curl -sf -X POST "$base/v1/graphs/$id/analyze" -d '{"s":4}')" \
    || fail "analyze (store) request failed"
echo "$analysis" | grep -q '"measured_io"' || fail "analysis (store) has no measured_io: $analysis"

# Hard kill: SIGKILL, no drain, no goodbye.
kill -9 "$pid"
wait "$pid" 2>/dev/null || true
[ -s "$storedir/log.bin" ] || { echo "journal is empty after kill -9"; exit 1; }

# Restart on the same journal.
"$workdir/cdagd" -addr 127.0.0.1:0 -store-dir "$storedir" >"$workdir/out3.log" 2>&1 &
pid=$!
base=""
for _ in $(seq 1 100); do
    base="$(sed -n 's#^cdagd: listening on \(http://[0-9.:]*\)$#\1#p' "$workdir/out3.log" || true)"
    [ -n "$base" ] && break
    kill -0 "$pid" 2>/dev/null || { echo "cdagd (restart) died on startup:"; cat "$workdir/out3.log"; exit 1; }
    sleep 0.1
done
[ -n "$base" ] || { echo "cdagd (restart) never reported its address:"; cat "$workdir/out3.log"; exit 1; }
for _ in $(seq 1 100); do
    curl -sf "$base/readyz" >/dev/null && break
    sleep 0.1
done
curl -sf "$base/readyz" >/dev/null || fail "restarted daemon never became ready"

# The identical request must replay from the journal-warmed memo, bit-identically.
replay_headers="$workdir/replay_headers"
replay="$(curl -sf -D "$replay_headers" -X POST "$base/v1/graphs/$id/analyze" -d '{"s":4}')" \
    || fail "replay analyze failed after restart"
grep -qi '^X-Cdagd-Memo: hit' "$replay_headers" || fail "replay was not a memo hit"
[ "$replay" = "$analysis" ] || fail "replay differs from pre-kill analysis:
  pre-kill:  $analysis
  post-kill: $replay"
echo "kill -9 replay OK (memo hit, bit-identical)"

# And the persistent daemon still drains cleanly.
kill -TERM "$pid"
if ! wait "$pid"; then
    echo "restarted cdagd exited non-zero after SIGTERM:"; cat "$workdir/out3.log"; exit 1
fi
grep -q "drained cleanly" "$workdir/out3.log" || { echo "no clean-drain message:"; cat "$workdir/out3.log"; exit 1; }
echo "cdagd persistence smoke OK"
