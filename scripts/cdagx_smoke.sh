#!/usr/bin/env bash
# End-to-end smoke of the cdagx orchestrator: compile the checked-in paper
# spec, run it against a fresh journal, then run it again and require the
# caching contract to hold — the second run must execute zero cells and
# regenerate byte-identical artifacts.  Extra flags (e.g. -short) are passed
# through to both runs.
set -euo pipefail

cd "$(dirname "$0")/.."

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

go build -o "$workdir/cdagx" ./cmd/cdagx

extra=("$@")

"$workdir/cdagx" run -q -cache-dir "$workdir/journal" -out "$workdir/out1" \
    -summary "$workdir/sum1.json" "${extra[@]}" specs/paper.yaml
"$workdir/cdagx" run -q -cache-dir "$workdir/journal" -out "$workdir/out2" \
    -summary "$workdir/sum2.json" "${extra[@]}" specs/paper.yaml

executed() { sed -n 's/.*"executed": *\([0-9]*\).*/\1/p' "$1" | head -1; }

first="$(executed "$workdir/sum1.json")"
second="$(executed "$workdir/sum2.json")"
echo "first run executed $first cells; second run executed $second"

[ "$first" -gt 0 ] || { echo "first run executed nothing"; exit 1; }
[ "$second" -eq 0 ] || { echo "second run executed $second cells, want 0 (cache must hit)"; exit 1; }

diff -r "$workdir/out1" "$workdir/out2" \
    || { echo "artifacts differ between runs (must be byte-identical)"; exit 1; }

grep -q "Table 1" "$workdir/out1/EXPERIMENTS.gen.md" \
    || { echo "generated markdown is missing the Table 1 section"; exit 1; }

echo "cdagx smoke OK: $first cells computed once, re-run was pure cache hits, artifacts byte-identical"
