#!/usr/bin/env sh
# Run the full benchmark suite once and record the results as BENCH_<n>.json
# in the repo root, so the performance trajectory of the project is tracked
# PR by PR.  The per-benchmark iteration budget defaults to 1x; override it
# with `scripts/bench.sh --benchtime 5x`.
#
# After writing the new file, a per-benchmark delta table of ns/op against
# the latest prior BENCH_*.json is printed, so regressions are visible at a
# glance.
set -eu

cd "$(dirname "$0")/.."

n=1
while [ -e "BENCH_${n}.json" ]; do
	n=$((n + 1))
done
out="BENCH_${n}.json"
prev=""
if [ "$n" -gt 1 ]; then
	prev="BENCH_$((n - 1)).json"
fi

benchtime="1x"
if [ "${1:-}" = "--benchtime" ] && [ -n "${2:-}" ]; then
	benchtime="$2"
fi

raw="$(mktemp)"
expdir="$(mktemp -d)"
trap 'rm -f "$raw"; rm -rf "$expdir"' EXIT

go test -run '^$' -bench . -benchtime "$benchtime" -benchmem ./... | tee "$raw"

# Snapshot a cold-cache cdagx run of the checked-in paper spec: push-button
# regeneration of the paper numbers is part of the tracked surface, and its
# wall time rides along in the recording's "exp" section.
go build -o "$expdir/cdagx" ./cmd/cdagx
"$expdir/cdagx" run -q -cache-dir "$expdir/journal" -out "$expdir/out" \
	-summary "$expdir/summary.json" specs/paper.yaml

# Emit one JSON object: metadata plus every benchmark line parsed into
# {name, iterations, ns_per_op, extra metrics}.
{
	printf '{\n'
	printf '  "date": "%s",\n' "$(date -u +%Y-%m-%dT%H:%M:%SZ)"
	printf '  "go": "%s",\n' "$(go version | sed 's/"/\\"/g')"
	printf '  "benchtime": "%s",\n' "$benchtime"
	printf '  "exp": '
	tr -d '\n' <"$expdir/summary.json" | sed 's/  */ /g'
	printf ',\n'
	printf '  "benchmarks": [\n'
	awk '
		/^Benchmark/ {
			name = $1
			iters = $2
			ns = ""
			metrics = ""
			for (i = 3; i < NF; i += 2) {
				val = $i
				unit = $(i + 1)
				if (unit == "ns/op") { ns = val; continue }
				gsub(/"/, "", unit)
				metrics = metrics sprintf("%s\"%s\": %s", (metrics == "" ? "" : ", "), unit, val)
			}
			line = sprintf("    {\"name\": \"%s\", \"iterations\": %s", name, iters)
			if (ns != "") line = line sprintf(", \"ns_per_op\": %s", ns)
			if (metrics != "") line = line sprintf(", \"metrics\": {%s}", metrics)
			line = line "}"
			lines[++count] = line
		}
		END {
			for (i = 1; i <= count; i++)
				printf "%s%s\n", lines[i], (i < count ? "," : "")
		}
	' "$raw"
	printf '  ]\n'
	printf '}\n'
} > "$out"

echo "wrote $out"

# Delta table against the latest prior recording.  Both files are produced by
# this script, so each benchmark sits on its own line and a regex pull of the
# name/ns_per_op/allocs fields is reliable.
if [ -n "$prev" ]; then
	echo ""
	echo "delta vs $prev (negative = faster/leaner):"
	awk -v FS='"' '
		function num(line, key,   m) {
			m = line
			if (!sub(".*\"" key "\": *", "", m)) return ""
			sub("[,}].*", "", m)
			return m
		}
		/"name":/ {
			name = $4
			ns = num($0, "ns_per_op")
			al = num($0, "allocs/op")
			if (FNR == NR) {
				prev_ns[name] = ns
				prev_al[name] = al
				next
			}
			order[++count] = name
			cur_ns[name] = ns
			cur_al[name] = al
		}
		END {
			printf "  %-38s %14s %14s %9s %9s\n", "benchmark", "ns/op", "prev", "dns", "dallocs"
			for (i = 1; i <= count; i++) {
				name = order[i]
				short = name
				sub("^Benchmark", "", short)
				if (!(name in prev_ns) || prev_ns[name] == "" || cur_ns[name] == "") {
					printf "  %-38s %14s %14s %9s %9s\n", short, cur_ns[name], "-", "new", "-"
					continue
				}
				dns = (cur_ns[name] - prev_ns[name]) / prev_ns[name] * 100
				dal = "-"
				if (prev_al[name] != "" && cur_al[name] != "" && prev_al[name] + 0 > 0)
					dal = sprintf("%+.1f%%", (cur_al[name] - prev_al[name]) / prev_al[name] * 100)
				printf "  %-38s %14s %14s %+8.1f%% %9s\n", short, cur_ns[name], prev_ns[name], dns, dal
			}
		}
	' "$prev" "$out"
fi
