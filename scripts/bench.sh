#!/usr/bin/env sh
# Run the full benchmark suite once and record the results as BENCH_<n>.json
# in the repo root, so the performance trajectory of the project is tracked
# PR by PR.  The per-benchmark iteration budget defaults to 1x; override it
# with `scripts/bench.sh --benchtime 5x`.
set -eu

cd "$(dirname "$0")/.."

n=1
while [ -e "BENCH_${n}.json" ]; do
	n=$((n + 1))
done
out="BENCH_${n}.json"

benchtime="1x"
if [ "${1:-}" = "--benchtime" ] && [ -n "${2:-}" ]; then
	benchtime="$2"
fi

raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

go test -run '^$' -bench . -benchtime "$benchtime" -benchmem ./... | tee "$raw"

# Emit one JSON object: metadata plus every benchmark line parsed into
# {name, iterations, ns_per_op, extra metrics}.
{
	printf '{\n'
	printf '  "date": "%s",\n' "$(date -u +%Y-%m-%dT%H:%M:%SZ)"
	printf '  "go": "%s",\n' "$(go version | sed 's/"/\\"/g')"
	printf '  "benchtime": "%s",\n' "$benchtime"
	printf '  "benchmarks": [\n'
	awk '
		/^Benchmark/ {
			name = $1
			iters = $2
			ns = ""
			metrics = ""
			for (i = 3; i < NF; i += 2) {
				val = $i
				unit = $(i + 1)
				if (unit == "ns/op") { ns = val; continue }
				gsub(/"/, "", unit)
				metrics = metrics sprintf("%s\"%s\": %s", (metrics == "" ? "" : ", "), unit, val)
			}
			line = sprintf("    {\"name\": \"%s\", \"iterations\": %s", name, iters)
			if (ns != "") line = line sprintf(", \"ns_per_op\": %s", ns)
			if (metrics != "") line = line sprintf(", \"metrics\": {%s}", metrics)
			line = line "}"
			lines[++count] = line
		}
		END {
			for (i = 1; i <= count; i++)
				printf "%s%s\n", lines[i], (i < count ? "," : "")
		}
	' "$raw"
	printf '  ]\n'
	printf '}\n'
} > "$out"

echo "wrote $out"
