// Package solvers implements the numerical algorithms whose CDAGs the paper
// analyzes — Conjugate Gradient (Figure 3), GMRES with modified Gram–Schmidt
// (Figure 4), Jacobi relaxation (Section 5.4) and the 1-D heat equation
// time-stepper of Section 5.1 — together with dense matrix multiplication.
//
// The solvers operate on the structures of package linalg and count their
// floating-point operations, so examples and benchmarks can relate measured
// work to the operation counts used in the balance analysis.
package solvers

import (
	"errors"
	"fmt"
	"math"

	"cdagio/internal/linalg"
)

// Stats reports what a solver run did.
type Stats struct {
	// Iterations is the number of outer iterations executed.
	Iterations int
	// Residual is the final residual norm ‖b − A·x‖₂ (or the update norm for
	// stationary methods).
	Residual float64
	// Flops is the number of floating-point operations performed.
	Flops int64
	// Converged reports whether the tolerance was reached before the
	// iteration limit.
	Converged bool
}

// ErrNotConverged is returned when an iterative solver hits its iteration
// limit before reaching the requested tolerance.
var ErrNotConverged = errors.New("solvers: iteration limit reached before convergence")

// Operator is a linear operator y = A·x; both CSR and tridiagonal matrices
// satisfy it, as do matrix-free grid stencils.
type Operator interface {
	MulVec(x linalg.Vector) linalg.Vector
	Dim() int
}

// CSROperator adapts a CSR matrix to the Operator interface.
type CSROperator struct{ M *linalg.CSR }

// MulVec applies the matrix.
func (o CSROperator) MulVec(x linalg.Vector) linalg.Vector { return o.M.MulVec(x) }

// Dim returns the number of rows.
func (o CSROperator) Dim() int { return o.M.Rows }

// TridiagonalOperator adapts a tridiagonal matrix to the Operator interface.
type TridiagonalOperator struct{ M linalg.Tridiagonal }

// MulVec applies the matrix.
func (o TridiagonalOperator) MulVec(x linalg.Vector) linalg.Vector { return o.M.MulVec(x) }

// Dim returns the matrix dimension.
func (o TridiagonalOperator) Dim() int { return o.M.N }

// CGOptions configures the Conjugate Gradient solver.
type CGOptions struct {
	// Tolerance is the convergence threshold on ‖r‖₂.  Zero selects 1e-10.
	Tolerance float64
	// MaxIterations caps the outer loop.  Zero selects 10·dim.
	MaxIterations int
}

// CG solves A·x = b for symmetric positive-definite A with the Conjugate
// Gradient method of Figure 3.  It returns the solution, run statistics and
// ErrNotConverged if the iteration limit was reached.
func CG(a Operator, b linalg.Vector, opts CGOptions) (linalg.Vector, Stats, error) {
	n := a.Dim()
	if len(b) != n {
		return nil, Stats{}, fmt.Errorf("solvers: CG dimension mismatch %d vs %d", n, len(b))
	}
	tol := opts.Tolerance
	if tol <= 0 {
		tol = 1e-10
	}
	maxIter := opts.MaxIterations
	if maxIter <= 0 {
		maxIter = 10 * n
	}
	var flops int64
	x := linalg.NewVector(n)
	r := b.Clone() // r = b - A·x with x = 0
	p := r.Clone()
	rr := r.Dot(r)
	flops += int64(2 * n)
	stats := Stats{}
	for it := 0; it < maxIter; it++ {
		if math.Sqrt(rr) <= tol {
			stats.Converged = true
			break
		}
		v := a.MulVec(p)
		pv := p.Dot(v)
		flops += int64(4 * n) // SpMV counted separately below; dot here
		if pv == 0 {
			return x, stats, fmt.Errorf("solvers: CG breakdown, <p, Ap> = 0 at iteration %d", it)
		}
		alpha := rr / pv
		x.Axpy(alpha, p)
		r.Axpy(-alpha, v)
		rrNew := r.Dot(r)
		flops += int64(6 * n)
		gamma := rrNew / rr
		// p = r + gamma·p
		for i := range p {
			p[i] = r[i] + gamma*p[i]
		}
		flops += int64(2 * n)
		rr = rrNew
		stats.Iterations++
	}
	if math.Sqrt(rr) <= tol {
		stats.Converged = true
	}
	stats.Residual = math.Sqrt(rr)
	stats.Flops = flops
	if !stats.Converged {
		return x, stats, ErrNotConverged
	}
	return x, stats, nil
}

// GMRESOptions configures the GMRES solver.
type GMRESOptions struct {
	// Tolerance is the convergence threshold on the residual norm.
	// Zero selects 1e-10.
	Tolerance float64
	// Restart is the Krylov subspace dimension m.  Zero selects min(dim, 50).
	Restart int
	// MaxOuter caps the number of restart cycles.  Zero selects 20.
	MaxOuter int
}

// GMRES solves A·x = b for a general (possibly non-symmetric) matrix with the
// restarted GMRES method of Figure 4 (modified Gram–Schmidt with Givens
// rotations).
func GMRES(a Operator, b linalg.Vector, opts GMRESOptions) (linalg.Vector, Stats, error) {
	n := a.Dim()
	if len(b) != n {
		return nil, Stats{}, fmt.Errorf("solvers: GMRES dimension mismatch %d vs %d", n, len(b))
	}
	tol := opts.Tolerance
	if tol <= 0 {
		tol = 1e-10
	}
	m := opts.Restart
	if m <= 0 {
		m = 50
	}
	if m > n {
		m = n
	}
	maxOuter := opts.MaxOuter
	if maxOuter <= 0 {
		maxOuter = 20
	}
	var flops int64
	x := linalg.NewVector(n)
	stats := Stats{}
	for outer := 0; outer < maxOuter; outer++ {
		r := b.Sub(a.MulVec(x))
		flops += int64(2 * n)
		beta := r.Norm2()
		flops += int64(2 * n)
		stats.Residual = beta
		if beta <= tol {
			stats.Converged = true
			stats.Flops = flops
			return x, stats, nil
		}
		// Arnoldi with modified Gram-Schmidt.
		v := make([]linalg.Vector, m+1)
		v[0] = r.Clone().Scale(1 / beta)
		h := linalg.NewDense(m+1, m)
		cs := linalg.NewVector(m)
		sn := linalg.NewVector(m)
		g := linalg.NewVector(m + 1)
		g[0] = beta
		k := 0
		for ; k < m; k++ {
			stats.Iterations++
			w := a.MulVec(v[k])
			for j := 0; j <= k; j++ {
				hjk := w.Dot(v[j])
				h.Set(j, k, hjk)
				w.Axpy(-hjk, v[j])
				flops += int64(4 * n)
			}
			hk1k := w.Norm2()
			flops += int64(2 * n)
			h.Set(k+1, k, hk1k)
			// Apply previous Givens rotations to the new column.
			for j := 0; j < k; j++ {
				t1 := cs[j]*h.At(j, k) + sn[j]*h.At(j+1, k)
				t2 := -sn[j]*h.At(j, k) + cs[j]*h.At(j+1, k)
				h.Set(j, k, t1)
				h.Set(j+1, k, t2)
			}
			// New rotation to annihilate h[k+1][k].
			denom := math.Hypot(h.At(k, k), hk1k)
			if denom == 0 {
				cs[k], sn[k] = 1, 0
			} else {
				cs[k] = h.At(k, k) / denom
				sn[k] = hk1k / denom
			}
			h.Set(k, k, cs[k]*h.At(k, k)+sn[k]*hk1k)
			h.Set(k+1, k, 0)
			g[k+1] = -sn[k] * g[k]
			g[k] = cs[k] * g[k]
			stats.Residual = math.Abs(g[k+1])
			if hk1k == 0 || stats.Residual <= tol {
				k++
				break
			}
			v[k+1] = w.Scale(1 / hk1k)
		}
		// Solve the k×k upper-triangular system H·y = g.
		y := linalg.NewVector(k)
		for i := k - 1; i >= 0; i-- {
			sum := g[i]
			for j := i + 1; j < k; j++ {
				sum -= h.At(i, j) * y[j]
			}
			y[i] = sum / h.At(i, i)
		}
		for j := 0; j < k; j++ {
			x.Axpy(y[j], v[j])
			flops += int64(2 * n)
		}
		if stats.Residual <= tol {
			stats.Converged = true
			stats.Flops = flops
			return x, stats, nil
		}
	}
	stats.Flops = flops
	return x, stats, ErrNotConverged
}

// JacobiOptions configures the Jacobi relaxation sweep.
type JacobiOptions struct {
	// Steps is the number of sweeps to perform.
	Steps int
	// Weight is the relaxation weight (0 selects 0.8, a common damped value).
	Weight float64
}

// JacobiPoisson performs weighted-Jacobi relaxation sweeps for the Poisson
// problem A·u = f on a d-dimensional grid Laplacian, starting from u0, and
// returns the relaxed vector plus statistics.  This is the iterative kernel
// whose CDAG Theorem 10 analyzes.
func JacobiPoisson(grid linalg.Grid, f, u0 linalg.Vector, opts JacobiOptions) (linalg.Vector, Stats, error) {
	np := grid.Points()
	if len(f) != np || len(u0) != np {
		return nil, Stats{}, fmt.Errorf("solvers: Jacobi dimension mismatch: grid %d, f %d, u0 %d", np, len(f), len(u0))
	}
	if opts.Steps < 1 {
		return nil, Stats{}, fmt.Errorf("solvers: Jacobi needs at least one step")
	}
	w := opts.Weight
	if w <= 0 {
		w = 0.8
	}
	diag := float64(2 * grid.Dim)
	u := u0.Clone()
	next := linalg.NewVector(np)
	var flops int64
	var lastUpdate float64
	for s := 0; s < opts.Steps; s++ {
		lastUpdate = 0
		for i := 0; i < np; i++ {
			sum := f[i]
			for _, j := range grid.Neighbors(i) {
				sum += u[j]
				flops++
			}
			val := (1-w)*u[i] + w*sum/diag
			flops += 4
			if d := math.Abs(val - u[i]); d > lastUpdate {
				lastUpdate = d
			}
			next[i] = val
		}
		u, next = next, u
	}
	return u, Stats{Iterations: opts.Steps, Residual: lastUpdate, Flops: flops, Converged: true}, nil
}

// HeatEquation1D advances the 1-D heat equation of Section 5.1 on an n-point
// grid for the given number of time steps using the Crank–Nicolson scheme
// (Equation 11): at each step a tridiagonal system is solved with the Thomas
// algorithm.  It returns the final temperature profile.
func HeatEquation1D(u0 linalg.Vector, alpha float64, steps int) (linalg.Vector, Stats, error) {
	n := len(u0)
	if n < 2 {
		return nil, Stats{}, fmt.Errorf("solvers: heat equation needs at least 2 grid points")
	}
	if steps < 1 {
		return nil, Stats{}, fmt.Errorf("solvers: heat equation needs at least one step")
	}
	if alpha <= 0 {
		return nil, Stats{}, fmt.Errorf("solvers: diffusion parameter must be positive")
	}
	lhs := linalg.HeatEquationMatrix(n, alpha)
	rhs := linalg.HeatEquationRHSMatrix(n, alpha)
	u := u0.Clone()
	var flops int64
	for s := 0; s < steps; s++ {
		b := rhs.MulVec(u)
		u = lhs.Solve(b)
		flops += int64(5*n) + int64(8*n)
	}
	return u, Stats{Iterations: steps, Flops: flops, Converged: true}, nil
}

// MatMul multiplies two dense matrices with the classical triple loop and
// returns the product with an operation count (2·n³ for square n×n inputs).
func MatMul(a, b *linalg.Dense) (*linalg.Dense, Stats) {
	c := a.Mul(b)
	return c, Stats{Flops: int64(2) * int64(a.Rows) * int64(a.Cols) * int64(b.Cols), Converged: true}
}
