package solvers

import (
	"errors"
	"math"
	"testing"

	"cdagio/internal/linalg"
)

// poissonProblem builds A·u = f on a d-dimensional grid Laplacian with a
// known random-ish right-hand side.
func poissonProblem(dim, n int) (linalg.Grid, *linalg.CSR, linalg.Vector) {
	grid := linalg.NewGrid(dim, n)
	a := grid.Laplacian()
	f := linalg.NewVector(grid.Points())
	for i := range f {
		f[i] = math.Sin(float64(i + 1)) // deterministic, nonzero
	}
	return grid, a, f
}

func TestCGSolvesPoisson(t *testing.T) {
	_, a, f := poissonProblem(2, 10)
	x, stats, err := CG(CSROperator{a}, f, CGOptions{Tolerance: 1e-9})
	if err != nil {
		t.Fatalf("CG: %v (stats %+v)", err, stats)
	}
	if !stats.Converged || stats.Iterations == 0 {
		t.Fatalf("CG did not converge: %+v", stats)
	}
	res := f.Sub(a.MulVec(x)).Norm2()
	if res > 1e-7 {
		t.Errorf("CG residual %g too large", res)
	}
	if stats.Flops <= 0 {
		t.Errorf("CG flop count not recorded")
	}
}

func TestCGTridiagonal(t *testing.T) {
	tri := linalg.HeatEquationMatrix(50, 0.5)
	b := linalg.NewVector(50).Fill(1)
	x, stats, err := CG(TridiagonalOperator{tri}, b, CGOptions{})
	if err != nil {
		t.Fatalf("CG: %v", err)
	}
	if !stats.Converged {
		t.Fatalf("CG did not converge")
	}
	if res := b.Sub(tri.MulVec(x)).Norm2(); res > 1e-7 {
		t.Errorf("residual %g too large", res)
	}
}

func TestCGErrors(t *testing.T) {
	_, a, _ := poissonProblem(1, 5)
	if _, _, err := CG(CSROperator{a}, linalg.NewVector(3), CGOptions{}); err == nil {
		t.Errorf("expected dimension error")
	}
	// Too few iterations to converge.
	_, _, err := CG(CSROperator{a}, linalg.NewVector(5).Fill(1), CGOptions{MaxIterations: 1, Tolerance: 1e-14})
	if !errors.Is(err, ErrNotConverged) {
		t.Errorf("expected ErrNotConverged, got %v", err)
	}
}

func TestGMRESSolvesNonSymmetric(t *testing.T) {
	// Build a non-symmetric diagonally dominant matrix.
	n := 40
	b := linalg.NewCSRBuilder(n, n)
	for i := 0; i < n; i++ {
		b.Add(i, i, 4)
		if i+1 < n {
			b.Add(i, i+1, -1.5)
		}
		if i > 0 {
			b.Add(i, i-1, -0.5)
		}
	}
	a := b.Build()
	if a.IsSymmetric(1e-12) {
		t.Fatalf("test matrix unexpectedly symmetric")
	}
	rhs := linalg.NewVector(n)
	for i := range rhs {
		rhs[i] = math.Cos(float64(i))
	}
	x, stats, err := GMRES(CSROperator{a}, rhs, GMRESOptions{Tolerance: 1e-10, Restart: 20})
	if err != nil {
		t.Fatalf("GMRES: %v (stats %+v)", err, stats)
	}
	res := rhs.Sub(a.MulVec(x)).Norm2()
	if res > 1e-7 {
		t.Errorf("GMRES residual %g too large", res)
	}
	if stats.Iterations == 0 || stats.Flops == 0 {
		t.Errorf("GMRES stats not recorded: %+v", stats)
	}
}

func TestGMRESSolvesPoisson(t *testing.T) {
	_, a, f := poissonProblem(2, 8)
	x, stats, err := GMRES(CSROperator{a}, f, GMRESOptions{Tolerance: 1e-9, Restart: 30, MaxOuter: 50})
	if err != nil {
		t.Fatalf("GMRES: %v (stats %+v)", err, stats)
	}
	if res := f.Sub(a.MulVec(x)).Norm2(); res > 1e-6 {
		t.Errorf("residual %g too large", res)
	}
}

func TestGMRESErrors(t *testing.T) {
	_, a, _ := poissonProblem(1, 5)
	if _, _, err := GMRES(CSROperator{a}, linalg.NewVector(3), GMRESOptions{}); err == nil {
		t.Errorf("expected dimension error")
	}
	_, _, err := GMRES(CSROperator{a}, linalg.NewVector(5).Fill(1), GMRESOptions{Restart: 1, MaxOuter: 1, Tolerance: 1e-15})
	if !errors.Is(err, ErrNotConverged) {
		t.Errorf("expected ErrNotConverged, got %v", err)
	}
}

func TestJacobiReducesResidual(t *testing.T) {
	grid, a, f := poissonProblem(2, 12)
	u0 := linalg.NewVector(grid.Points())
	residual := func(u linalg.Vector) float64 { return f.Sub(a.MulVec(u)).Norm2() }
	u5, s5, err := JacobiPoisson(grid, f, u0, JacobiOptions{Steps: 5})
	if err != nil {
		t.Fatalf("Jacobi: %v", err)
	}
	u50, s50, err := JacobiPoisson(grid, f, u0, JacobiOptions{Steps: 50})
	if err != nil {
		t.Fatalf("Jacobi: %v", err)
	}
	if residual(u50) >= residual(u5) {
		t.Errorf("more Jacobi sweeps should reduce the residual: %g vs %g", residual(u50), residual(u5))
	}
	if residual(u5) >= residual(u0) {
		t.Errorf("Jacobi sweeps should reduce the residual below the initial %g", residual(u0))
	}
	if s5.Flops >= s50.Flops {
		t.Errorf("flop counts inconsistent: %d vs %d", s5.Flops, s50.Flops)
	}
}

func TestJacobiErrors(t *testing.T) {
	grid := linalg.NewGrid(1, 4)
	f := linalg.NewVector(4)
	if _, _, err := JacobiPoisson(grid, f, linalg.NewVector(3), JacobiOptions{Steps: 1}); err == nil {
		t.Errorf("expected dimension error")
	}
	if _, _, err := JacobiPoisson(grid, f, f.Clone(), JacobiOptions{Steps: 0}); err == nil {
		t.Errorf("expected step-count error")
	}
}

func TestHeatEquation1D(t *testing.T) {
	n := 64
	u0 := linalg.NewVector(n)
	for i := range u0 {
		u0[i] = math.Sin(math.Pi * float64(i+1) / float64(n+1))
	}
	u, stats, err := HeatEquation1D(u0, 0.4, 50)
	if err != nil {
		t.Fatalf("HeatEquation1D: %v", err)
	}
	if stats.Iterations != 50 || stats.Flops <= 0 {
		t.Errorf("stats wrong: %+v", stats)
	}
	// Diffusion with zero boundaries decays the temperature everywhere and
	// keeps it non-negative (up to numerical noise).
	for i := range u {
		if u[i] > u0[i]+1e-9 || u[i] < -1e-9 {
			t.Fatalf("heat profile not decaying at %d: %g -> %g", i, u0[i], u[i])
		}
	}
	// Symmetry of the initial condition is preserved.
	for i := 0; i < n/2; i++ {
		if math.Abs(u[i]-u[n-1-i]) > 1e-9 {
			t.Fatalf("heat profile lost symmetry at %d", i)
		}
	}
	// Error paths.
	if _, _, err := HeatEquation1D(linalg.NewVector(1), 0.4, 5); err == nil {
		t.Errorf("expected size error")
	}
	if _, _, err := HeatEquation1D(u0, 0.4, 0); err == nil {
		t.Errorf("expected step error")
	}
	if _, _, err := HeatEquation1D(u0, -1, 5); err == nil {
		t.Errorf("expected alpha error")
	}
}

func TestMatMul(t *testing.T) {
	a := linalg.NewDense(3, 3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			a.Set(i, j, float64(i*3+j+1))
		}
	}
	c, stats := MatMul(a, linalg.Identity(3))
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if c.At(i, j) != a.At(i, j) {
				t.Fatalf("A·I != A at (%d,%d)", i, j)
			}
		}
	}
	if stats.Flops != 2*27 {
		t.Errorf("flops = %d, want 54", stats.Flops)
	}
}

func TestCGAndGMRESAgree(t *testing.T) {
	// On a symmetric positive-definite system both solvers find the same
	// solution.
	_, a, f := poissonProblem(2, 6)
	xc, _, err := CG(CSROperator{a}, f, CGOptions{Tolerance: 1e-11})
	if err != nil {
		t.Fatalf("CG: %v", err)
	}
	xg, _, err := GMRES(CSROperator{a}, f, GMRESOptions{Tolerance: 1e-11, Restart: 36, MaxOuter: 20})
	if err != nil {
		t.Fatalf("GMRES: %v", err)
	}
	if !xc.Equalish(xg, 1e-6) {
		t.Errorf("CG and GMRES disagree")
	}
}
