package trace

import (
	"math"
	"testing"

	"cdagio/internal/cdag"
	"cdagio/internal/gen"
	"cdagio/internal/pebble"
)

func TestTracerBasicOps(t *testing.T) {
	tr := New("basic")
	a := tr.Input("a", 3)
	b := tr.Input("b", 4)
	sum := tr.Add(a, b)
	diff := tr.Sub(a, b)
	prod := tr.Mul(a, b)
	quot := tr.Div(a, b)
	fma := tr.MulAdd(a, b, sum)
	tr.OutputAll([]Value{sum, diff, prod, quot, fma})

	if sum.Float() != 7 || diff.Float() != -1 || prod.Float() != 12 || quot.Float() != 0.75 || fma.Float() != 19 {
		t.Errorf("traced arithmetic wrong: %v %v %v %v %v",
			sum.Float(), diff.Float(), prod.Float(), quot.Float(), fma.Float())
	}
	g := tr.Graph()
	if err := g.Validate(cdag.ValidateRBW); err != nil {
		t.Fatalf("traced graph invalid: %v", err)
	}
	if g.NumInputs() != 2 || g.NumOutputs() != 5 || g.NumVertices() != 7 {
		t.Errorf("traced graph shape wrong: %v", g)
	}
	if g.InDegree(fma.Vertex()) != 3 {
		t.Errorf("fma in-degree = %d, want 3", g.InDegree(fma.Vertex()))
	}
	// A constant is a source but not an input.
	c := tr.Constant("two", 2)
	if g.IsInput(c.Vertex()) {
		t.Errorf("constant tagged as input")
	}
}

func TestTracedDotMatchesGenerator(t *testing.T) {
	// The traced dot product must have the same shape as the generator's CDAG
	// and produce the right numerical result.
	n := 8
	xs := make([]float64, n)
	ys := make([]float64, n)
	want := 0.0
	for i := range xs {
		xs[i] = float64(i + 1)
		ys[i] = float64(2 * i)
		want += xs[i] * ys[i]
	}
	tr := New("dot")
	xv := tr.InputVector("x", xs)
	yv := tr.InputVector("y", ys)
	d := tr.Dot(xv, yv)
	tr.Output(d)
	if math.Abs(d.Float()-want) > 1e-12 {
		t.Errorf("traced dot = %v, want %v", d.Float(), want)
	}
	traced := tr.Graph()
	generated := gen.DotProduct(n)
	if traced.NumVertices() != generated.NumVertices() ||
		traced.NumEdges() != generated.NumEdges() ||
		traced.NumInputs() != generated.NumInputs() ||
		traced.NumOutputs() != generated.NumOutputs() {
		t.Errorf("traced dot CDAG (%v) differs from generated (%v)", traced, generated)
	}
}

func TestTracedAxpyAndMatVec(t *testing.T) {
	tr := New("blas")
	alpha := tr.Input("alpha", 2)
	x := tr.InputVector("x", []float64{1, 2, 3})
	y := tr.InputVector("y", []float64{10, 20, 30})
	out := tr.Axpy(alpha, x, y)
	for i, want := range []float64{12, 24, 36} {
		if out[i].Float() != want {
			t.Errorf("axpy[%d] = %v, want %v", i, out[i].Float(), want)
		}
	}
	// 2x2 matrix-vector product.
	a := [][]Value{
		tr.InputVector("a0", []float64{1, 2}),
		tr.InputVector("a1", []float64{3, 4}),
	}
	v := tr.InputVector("v", []float64{5, 6})
	mv := tr.MatVec(a, v)
	if mv[0].Float() != 17 || mv[1].Float() != 39 {
		t.Errorf("matvec = %v, %v; want 17, 39", mv[0].Float(), mv[1].Float())
	}
	tr.OutputAll(mv)
	if err := tr.Graph().Validate(cdag.ValidateRBW); err != nil {
		t.Fatalf("traced graph invalid: %v", err)
	}
}

func TestTracerPanics(t *testing.T) {
	tr := New("panics")
	a := tr.InputVector("a", []float64{1, 2})
	b := tr.InputVector("b", []float64{1})
	for name, f := range map[string]func(){
		"dot":    func() { tr.Dot(a, b) },
		"axpy":   func() { tr.Axpy(tr.Input("s", 1), a, b) },
		"matvec": func() { tr.MatVec([][]Value{a}, b) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic on length mismatch", name)
				}
			}()
			f()
		}()
	}
}

func TestTracedGraphIsPebbleable(t *testing.T) {
	// A traced computation is a normal CDAG: the RBW schedule player can run
	// it and report its I/O.
	tr := New("pebbleable")
	x := tr.InputVector("x", []float64{1, 2, 3, 4})
	y := tr.InputVector("y", []float64{4, 3, 2, 1})
	d := tr.Dot(x, y)
	tr.Output(d)
	res, err := pebble.PlayTopological(tr.Graph(), pebble.RBW, 4, pebble.Belady)
	if err != nil {
		t.Fatalf("PlayTopological: %v", err)
	}
	if res.IO() < tr.Graph().NumInputs()+tr.Graph().NumOutputs() {
		t.Errorf("I/O %d below compulsory minimum", res.IO())
	}
	// Empty dot product degenerates to a constant.
	tr2 := New("empty")
	z := tr2.Dot(nil, nil)
	if z.Float() != 0 {
		t.Errorf("empty dot = %v", z.Float())
	}
}
