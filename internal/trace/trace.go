// Package trace builds CDAGs from actual scalar computations: a Tracer
// records every operation applied to its Value handles as a vertex and every
// data dependence as an edge.  Tracing a solver run produces the CDAG that
// execution actually induced, which the test suite uses to cross-check the
// closed-form generators of package gen and which lets the analyzer examine
// computations that have no generator.
package trace

import (
	"fmt"
	"strconv"

	"cdagio/internal/cdag"
)

// Tracer records a scalar computation as a CDAG.
type Tracer struct {
	graph *cdag.Graph
}

// Value is a handle to a traced scalar: the vertex that produced it plus its
// current numerical value, so traced code computes real results while being
// recorded.
type Value struct {
	vertex cdag.VertexID
	num    float64
}

// Vertex returns the CDAG vertex holding the value.
func (v Value) Vertex() cdag.VertexID { return v.vertex }

// Float returns the numerical value.
func (v Value) Float() float64 { return v.num }

// New returns an empty tracer.
func New(name string) *Tracer {
	return &Tracer{graph: cdag.NewGraph(name, 0)}
}

// Graph returns the CDAG recorded so far.  The graph remains owned by the
// tracer; callers should Clone it if they intend to keep mutating the tracer.
func (t *Tracer) Graph() *cdag.Graph { return t.graph }

// Input records an input value.
func (t *Tracer) Input(label string, x float64) Value {
	v := t.graph.AddInput(label)
	return Value{vertex: v, num: x}
}

// InputVector records a vector of inputs labelled label[i].  The labels are
// formatted into one reusable byte buffer and staged through the graph's
// flat label storage, so tracing a length-n vector costs O(1) allocations
// instead of one string per element.
func (t *Tracer) InputVector(label string, xs []float64) []Value {
	out := make([]Value, len(xs))
	buf := make([]byte, 0, len(label)+16)
	for i, x := range xs {
		buf = append(buf[:0], label...)
		buf = append(buf, '[')
		buf = strconv.AppendInt(buf, int64(i), 10)
		buf = append(buf, ']')
		out[i] = Value{vertex: t.graph.AddInputBytes(buf), num: x}
	}
	return out
}

// Constant records a constant: a source vertex that is not tagged as an
// input (it needs no load in the RBW game, matching how the paper treats
// embedded coefficients such as the tridiagonal matrix entries).
func (t *Tracer) Constant(label string, x float64) Value {
	v := t.graph.AddVertex(label)
	return Value{vertex: v, num: x}
}

// Op records an n-ary operation producing result; operands become
// predecessors of the new vertex.
func (t *Tracer) Op(label string, result float64, operands ...Value) Value {
	v := t.graph.AddVertex(label)
	for _, o := range operands {
		t.graph.AddEdge(o.vertex, v)
	}
	return Value{vertex: v, num: result}
}

// Add records a + b.
func (t *Tracer) Add(a, b Value) Value { return t.Op("+", a.num+b.num, a, b) }

// Sub records a − b.
func (t *Tracer) Sub(a, b Value) Value { return t.Op("-", a.num-b.num, a, b) }

// Mul records a · b.
func (t *Tracer) Mul(a, b Value) Value { return t.Op("*", a.num*b.num, a, b) }

// Div records a / b.
func (t *Tracer) Div(a, b Value) Value { return t.Op("/", a.num/b.num, a, b) }

// MulAdd records a·b + c as a single fused vertex.
func (t *Tracer) MulAdd(a, b, c Value) Value { return t.Op("fma", a.num*b.num+c.num, a, b, c) }

// Output tags the vertex of v as an output of the computation.
func (t *Tracer) Output(v Value) { t.graph.TagOutput(v.vertex) }

// OutputAll tags every value in vs as an output.
func (t *Tracer) OutputAll(vs []Value) {
	for _, v := range vs {
		t.Output(v)
	}
}

// Dot records the inner product of two traced vectors as a multiply per
// element followed by a balanced reduction, returning the scalar value.
func (t *Tracer) Dot(a, b []Value) Value {
	if len(a) != len(b) {
		panic(fmt.Sprintf("trace: dot length mismatch %d vs %d", len(a), len(b)))
	}
	if len(a) == 0 {
		return t.Constant("0", 0)
	}
	terms := make([]Value, len(a))
	for i := range a {
		terms[i] = t.Mul(a[i], b[i])
	}
	// Halve the term list in place: the Add vertices are recorded in exactly
	// the order the per-round append built them, without a fresh slice per
	// reduction round.
	for len(terms) > 1 {
		half := 0
		for i := 0; i < len(terms); i += 2 {
			if i+1 == len(terms) {
				terms[half] = terms[i]
			} else {
				terms[half] = t.Add(terms[i], terms[i+1])
			}
			half++
		}
		terms = terms[:half]
	}
	return terms[0]
}

// Axpy records y ← y + alpha·x element-wise and returns the new y values.
func (t *Tracer) Axpy(alpha Value, x, y []Value) []Value {
	if len(x) != len(y) {
		panic(fmt.Sprintf("trace: axpy length mismatch %d vs %d", len(x), len(y)))
	}
	out := make([]Value, len(y))
	for i := range y {
		out[i] = t.MulAdd(alpha, x[i], y[i])
	}
	return out
}

// MatVec records a dense matrix-vector product y = A·x where the matrix rows
// are traced values.
func (t *Tracer) MatVec(a [][]Value, x []Value) []Value {
	out := make([]Value, len(a))
	for i, row := range a {
		if len(row) != len(x) {
			panic(fmt.Sprintf("trace: matvec row %d length mismatch", i))
		}
		out[i] = t.Dot(row, x)
	}
	return out
}
