package trace

import "testing"

// BenchmarkTraceDot measures the tracer's hot construction loops: recording
// two length-n input vectors (flat-label staging) and their inner product
// (multiply layer plus balanced in-place reduction).
func BenchmarkTraceDot(b *testing.B) {
	const n = 4096
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = float64(i + 1)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := New("dot")
		a := t.InputVector("a", xs)
		c := t.InputVector("b", xs)
		t.Output(t.Dot(a, c))
	}
}
