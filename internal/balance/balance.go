// Package balance implements the machine-balance analysis of Section 5:
// given per-FLOP data-movement bounds of an algorithm and the balance
// parameters of a machine, it decides whether the algorithm is necessarily
// bandwidth bound (Equation 7/9) or definitely not communication bound
// (Equation 8/10) at each level, and renders the comparison tables the
// evaluation section reports.
package balance

import (
	"fmt"
	"strings"

	"cdagio/internal/machine"
)

// Verdict is the outcome of comparing a bound against a machine balance.
type Verdict int

const (
	// BandwidthBound: the lower bound per FLOP exceeds the machine balance,
	// so no implementation can avoid being limited by that bandwidth
	// (Equation 7 violated).
	BandwidthBound Verdict = iota
	// NotBound: the upper bound per FLOP is below the machine balance, so at
	// least one execution order is not limited by that bandwidth
	// (Equation 8 violated).
	NotBound
	// Inconclusive: the lower bound is below the balance but the upper bound
	// is above it (or one of the two is unknown), so the analysis cannot
	// decide.
	Inconclusive
)

// String returns a human-readable verdict.
func (v Verdict) String() string {
	switch v {
	case BandwidthBound:
		return "bandwidth bound"
	case NotBound:
		return "not bandwidth bound"
	default:
		return "inconclusive"
	}
}

// Check compares an algorithm's per-FLOP data movement against a machine
// balance value (both in words/FLOP).  lowerPerFlop is the lower bound on the
// algorithm's traffic per FLOP (use 0 when unknown); upperPerFlop is the
// upper bound (use negative when unknown).
func Check(lowerPerFlop, upperPerFlop, machineBalance float64) Verdict {
	if machineBalance <= 0 {
		return Inconclusive
	}
	if lowerPerFlop > machineBalance {
		return BandwidthBound
	}
	if upperPerFlop >= 0 && upperPerFlop <= machineBalance {
		return NotBound
	}
	return Inconclusive
}

// Row is one line of a balance-analysis table: an algorithm/level pair
// evaluated against one machine.
type Row struct {
	Algorithm    string
	Direction    string // "vertical" or "horizontal"
	Machine      string
	LowerPerFlop float64 // words/FLOP, 0 when unknown
	UpperPerFlop float64 // words/FLOP, negative when unknown
	Balance      float64 // machine balance in words/FLOP
	Verdict      Verdict
}

// Evaluate builds a Row for an algorithm bound against one machine balance.
func Evaluate(algorithm, direction, machineName string, lowerPerFlop, upperPerFlop, bal float64) Row {
	return Row{
		Algorithm:    algorithm,
		Direction:    direction,
		Machine:      machineName,
		LowerPerFlop: lowerPerFlop,
		UpperPerFlop: upperPerFlop,
		Balance:      bal,
		Verdict:      Check(lowerPerFlop, upperPerFlop, bal),
	}
}

// EvaluateVertical builds the vertical-balance rows (Equation 9) of an
// algorithm across the given machines.
func EvaluateVertical(algorithm string, lowerPerFlop, upperPerFlop float64, machines []machine.Machine) ([]Row, error) {
	rows := make([]Row, 0, len(machines))
	for _, m := range machines {
		b, err := m.VerticalBalance()
		if err != nil {
			return nil, err
		}
		rows = append(rows, Evaluate(algorithm, "vertical", m.Name, lowerPerFlop, upperPerFlop, b))
	}
	return rows, nil
}

// EvaluateHorizontal builds the horizontal-balance rows (Equation 10).
func EvaluateHorizontal(algorithm string, lowerPerFlop, upperPerFlop float64, machines []machine.Machine) ([]Row, error) {
	rows := make([]Row, 0, len(machines))
	for _, m := range machines {
		b, err := m.HorizontalBalance()
		if err != nil {
			return nil, err
		}
		rows = append(rows, Evaluate(algorithm, "horizontal", m.Name, lowerPerFlop, upperPerFlop, b))
	}
	return rows, nil
}

// FormatTable renders rows as an aligned text table.
func FormatTable(rows []Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-22s %-11s %-12s %14s %14s %12s  %s\n",
		"algorithm", "direction", "machine", "LB (w/FLOP)", "UB (w/FLOP)", "balance", "verdict")
	for _, r := range rows {
		ub := "-"
		if r.UpperPerFlop >= 0 {
			ub = fmt.Sprintf("%.6g", r.UpperPerFlop)
		}
		lb := "-"
		if r.LowerPerFlop > 0 {
			lb = fmt.Sprintf("%.6g", r.LowerPerFlop)
		}
		fmt.Fprintf(&b, "%-22s %-11s %-12s %14s %14s %12.6g  %s\n",
			r.Algorithm, r.Direction, r.Machine, lb, ub, r.Balance, r.Verdict)
	}
	return b.String()
}

// Table1 renders the machine-specification table of the paper (Table 1).
func Table1(machines []machine.Machine) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %8s %10s %14s %18s %18s\n",
		"machine", "nodes", "mem (GB)", "L2/L3 (MB)", "vert. balance", "horiz. balance")
	for _, m := range machines {
		vb, _ := m.VerticalBalance()
		hb, _ := m.HorizontalBalance()
		fmt.Fprintf(&b, "%-12s %8d %10.0f %14.0f %18.4g %18.4g\n",
			m.Name, m.Nodes,
			float64(m.MainMemoryWords)*8/1e9,
			float64(m.CacheCapacityWords())*8/1e6,
			vb, hb)
	}
	return b.String()
}
