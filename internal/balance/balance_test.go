package balance

import (
	"strings"
	"testing"

	"cdagio/internal/bounds"
	"cdagio/internal/machine"
)

func TestCheckVerdicts(t *testing.T) {
	// Lower bound above the balance: bandwidth bound.
	if v := Check(0.3, -1, 0.052); v != BandwidthBound {
		t.Errorf("verdict = %v, want bandwidth bound", v)
	}
	// Upper bound below the balance: not bound.
	if v := Check(0, 0.001, 0.052); v != NotBound {
		t.Errorf("verdict = %v, want not bound", v)
	}
	// Lower below, upper above: inconclusive.
	if v := Check(0.01, 0.5, 0.052); v != Inconclusive {
		t.Errorf("verdict = %v, want inconclusive", v)
	}
	// Unknown upper bound and low lower bound: inconclusive.
	if v := Check(0.01, -1, 0.052); v != Inconclusive {
		t.Errorf("verdict = %v, want inconclusive", v)
	}
	// Unknown balance: inconclusive.
	if v := Check(0.3, 0.001, 0); v != Inconclusive {
		t.Errorf("verdict = %v, want inconclusive", v)
	}
	for _, v := range []Verdict{BandwidthBound, NotBound, Inconclusive} {
		if v.String() == "" {
			t.Errorf("empty verdict string")
		}
	}
}

func TestCGReproducesPaperConclusion(t *testing.T) {
	// Section 5.2.3: CG's vertical bound per FLOP (0.3) exceeds the balance
	// of every Table-1 machine, so CG is vertically bandwidth bound
	// everywhere; its horizontal upper bound per FLOP falls below every
	// machine's horizontal balance, so the network is not the bottleneck.
	p := bounds.CGParams{Dim: 3, N: 1000, Iterations: 100, Processors: 2048 * 16, Nodes: 2048}
	vert := bounds.CGVerticalPerFlop(p)
	horiz := bounds.CGHorizontalPerFlop(p)

	vrows, err := EvaluateVertical("CG", vert, -1, machine.Table1())
	if err != nil {
		t.Fatalf("EvaluateVertical: %v", err)
	}
	for _, r := range vrows {
		if r.Verdict != BandwidthBound {
			t.Errorf("CG on %s: vertical verdict %v, want bandwidth bound", r.Machine, r.Verdict)
		}
	}
	hrows, err := EvaluateHorizontal("CG", 0, horiz, machine.Table1())
	if err != nil {
		t.Fatalf("EvaluateHorizontal: %v", err)
	}
	for _, r := range hrows {
		if r.Verdict != NotBound {
			t.Errorf("CG on %s: horizontal verdict %v, want not bound", r.Machine, r.Verdict)
		}
	}
	table := FormatTable(append(vrows, hrows...))
	for _, want := range []string{"CG", "IBM BG/Q", "Cray XT5", "bandwidth bound", "not bandwidth bound"} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q:\n%s", want, table)
		}
	}
}

func TestGMRESCrossover(t *testing.T) {
	// Section 5.3.3: for small m GMRES stays vertically bandwidth bound
	// (6/(m+20) > balance); for very large m the computation dominates and
	// the lower-bound criterion no longer proves it bandwidth bound.
	machines := machine.Table1()
	small := bounds.GMRESParams{Dim: 3, N: 1000, Iterations: 5, Processors: 2048 * 16, Nodes: 2048}
	rows, err := EvaluateVertical("GMRES m=5", bounds.GMRESVerticalPerFlop(small), -1, machines)
	if err != nil {
		t.Fatalf("EvaluateVertical: %v", err)
	}
	for _, r := range rows {
		if r.Verdict != BandwidthBound {
			t.Errorf("GMRES m=5 on %s: %v, want bandwidth bound", r.Machine, r.Verdict)
		}
	}
	big := bounds.GMRESParams{Dim: 3, N: 1000, Iterations: 500, Processors: 2048 * 16, Nodes: 2048}
	rowsBig, err := EvaluateVertical("GMRES m=500", bounds.GMRESVerticalPerFlop(big), -1, machines)
	if err != nil {
		t.Fatalf("EvaluateVertical: %v", err)
	}
	for _, r := range rowsBig {
		if r.Verdict == BandwidthBound {
			t.Errorf("GMRES m=500 on %s should no longer be provably bandwidth bound", r.Machine)
		}
	}
}

func TestJacobiBalanceCriterion(t *testing.T) {
	// Section 5.4.3: common low-dimensional stencils are not vertically
	// bandwidth bound at the main-memory/L2 boundary of BG/Q (the Theorem 10
	// bound is tight, so the per-FLOP traffic is also an upper bound).
	bgq := machine.IBMBGQ()
	beta, err := bgq.VerticalBalance()
	if err != nil {
		t.Fatalf("VerticalBalance: %v", err)
	}
	s := bgq.CacheCapacityWords()
	for _, d := range []int{1, 2, 3, 4} {
		perFlop := bounds.JacobiVerticalPerFlop(d, s)
		row := Evaluate("Jacobi", "vertical", bgq.Name, perFlop, perFlop, beta)
		if row.Verdict != NotBound {
			t.Errorf("d=%d: verdict %v, want not bound (perFlop=%v, balance=%v)",
				d, row.Verdict, perFlop, beta)
		}
	}
	// The threshold dimension reported by the bound is finite: high enough
	// dimensional stencils do become bandwidth bound.
	dMax := bounds.JacobiMaxUnboundDimension(beta, s)
	tooHigh := int(dMax) + 1
	perFlop := bounds.JacobiVerticalPerFlop(tooHigh, s)
	row := Evaluate("Jacobi", "vertical", bgq.Name, perFlop, perFlop, beta)
	if row.Verdict != BandwidthBound {
		t.Errorf("d=%d (beyond threshold %.2f): verdict %v, want bandwidth bound",
			tooHigh, dMax, row.Verdict)
	}
}

func TestEvaluateErrors(t *testing.T) {
	broken := machine.Machine{Name: "broken", Nodes: 1, CoresPerNode: 1, FlopsPerCore: 1, MainMemoryWords: 1}
	if _, err := EvaluateVertical("x", 1, 1, []machine.Machine{broken}); err == nil {
		t.Errorf("expected vertical balance error")
	}
	if _, err := EvaluateHorizontal("x", 1, 1, []machine.Machine{broken}); err == nil {
		t.Errorf("expected horizontal balance error")
	}
}

func TestTable1Rendering(t *testing.T) {
	out := Table1(machine.Table1())
	for _, want := range []string{"IBM BG/Q", "Cray XT5", "2048", "9408", "0.052", "0.0256"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table1 output missing %q:\n%s", want, out)
		}
	}
}

func TestFormatTableUnknowns(t *testing.T) {
	rows := []Row{
		{Algorithm: "x", Direction: "vertical", Machine: "m", LowerPerFlop: 0, UpperPerFlop: -1, Balance: 0.1, Verdict: Inconclusive},
	}
	out := FormatTable(rows)
	if !strings.Contains(out, "-") {
		t.Errorf("unknown bounds should render as '-':\n%s", out)
	}
}
