package pebble

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"cdagio/internal/cdag"
	"cdagio/internal/gen"
)

// mustApply applies a move the test believes legal, failing the test (not
// panicking the process) if the game disagrees.
func mustApply(t *testing.T, game *Game, m Move) {
	t.Helper()
	if err := game.Apply(m); err != nil {
		t.Fatalf("Apply(%v): %v", m, err)
	}
}

func TestGameRulesChain(t *testing.T) {
	g := gen.Chain(3) // x0 -> x1 -> x2
	game := NewGame(g, RBW, 2, true)
	if game.Variant() != RBW || game.RedPebbles() != 2 || game.Graph() != g {
		t.Fatalf("game accessors wrong")
	}
	// Loading a non-blue vertex fails.
	if err := game.Apply(Move{Load, 1}); err == nil {
		t.Fatalf("expected load failure on non-blue vertex")
	}
	// Computing with missing predecessor pebbles fails.
	if err := game.Apply(Move{Compute, 1}); err == nil {
		t.Fatalf("expected compute failure without predecessors")
	}
	// Computing an input fails.
	if err := game.Apply(Move{Compute, 0}); err == nil {
		t.Fatalf("expected compute failure on input")
	}
	mustApply(t, game, Move{Load, 0})
	if !game.HasRed(0) || !game.HasWhite(0) {
		t.Fatalf("load did not place red+white pebbles")
	}
	// Loading again fails (already red).
	if err := game.Apply(Move{Load, 0}); err == nil {
		t.Fatalf("expected duplicate load failure")
	}
	mustApply(t, game, Move{Compute, 1})
	// Fast memory is now full (S=2): another compute must fail.
	if err := game.Apply(Move{Compute, 2}); err == nil {
		t.Fatalf("expected compute failure with no free red pebble")
	}
	mustApply(t, game, Move{Delete, 0})
	// Recomputation is forbidden in RBW.
	if err := game.Apply(Move{Compute, 1}); err == nil {
		t.Fatalf("expected recomputation failure in RBW")
	}
	mustApply(t, game, Move{Compute, 2})
	if game.IsComplete() {
		t.Fatalf("game should not be complete before the output store")
	}
	if msg := game.Incomplete(); !strings.Contains(msg, "output") {
		t.Fatalf("Incomplete = %q", msg)
	}
	mustApply(t, game, Move{Store, 2})
	if !game.IsComplete() {
		t.Fatalf("game should be complete, still missing: %s", game.Incomplete())
	}
	if game.IO() != 2 || game.Loads() != 1 || game.Stores() != 1 {
		t.Fatalf("IO accounting wrong: %d loads, %d stores", game.Loads(), game.Stores())
	}
	if len(game.Trace()) == 0 {
		t.Fatalf("trace not recorded")
	}
	// Deleting a pebble that is not there fails.
	if err := game.Apply(Move{Delete, 0}); err == nil {
		t.Fatalf("expected delete failure")
	}
	// Storing from a vertex without a red pebble fails.
	if err := game.Apply(Move{Store, 0}); err == nil {
		t.Fatalf("expected store failure")
	}
	// Out-of-range vertex.
	if err := game.Apply(Move{Load, 99}); err == nil {
		t.Fatalf("expected out-of-range failure")
	}
	// Unknown move kind.
	if err := game.Apply(Move{MoveKind(42), 0}); err == nil {
		t.Fatalf("expected unknown-kind failure")
	}
	var illegal *IllegalMoveError
	if err := game.Apply(Move{Delete, 0}); !errors.As(err, &illegal) {
		t.Fatalf("error type = %T, want *IllegalMoveError", err)
	}
}

func TestHongKungAllowsRecomputation(t *testing.T) {
	g := gen.Chain(3)
	game := NewGame(g, HongKung, 2, false)
	mustApply(t, game, Move{Load, 0})
	mustApply(t, game, Move{Compute, 1})
	mustApply(t, game, Move{Delete, 1})
	// Recompute the same vertex: legal in the Hong-Kung variant.
	if err := game.Apply(Move{Compute, 1}); err != nil {
		t.Fatalf("recompute should be legal in Hong-Kung: %v", err)
	}
}

func TestApplyIllegalMoveLeavesStateUnchanged(t *testing.T) {
	g := gen.Chain(2)
	game := NewGame(g, RBW, 1, false)
	var illegal *IllegalMoveError
	if err := game.Apply(Move{Compute, 0}); !errors.As(err, &illegal) {
		t.Fatalf("computing an input: error type = %T, want *IllegalMoveError", err)
	}
	if game.RedInUse() != 0 || game.IO() != 0 {
		t.Fatalf("failed move mutated game state")
	}
}

func TestStringers(t *testing.T) {
	if HongKung.String() == "" || RBW.String() == "" || Variant(9).String() == "" {
		t.Errorf("variant strings empty")
	}
	for _, k := range []MoveKind{Load, Store, Compute, Delete, MoveKind(9)} {
		if k.String() == "" {
			t.Errorf("move kind string empty")
		}
	}
	if (Move{Load, 3}).String() != "load(3)" {
		t.Errorf("move string = %q", Move{Load, 3}.String())
	}
	for _, p := range []EvictionPolicy{Belady, LRU, EvictionPolicy(9)} {
		if p.String() == "" {
			t.Errorf("policy string empty")
		}
	}
	r := Result{Variant: RBW, S: 4, Loads: 2, Stores: 1}
	if r.IO() != 3 || !strings.Contains(r.String(), "S=4") {
		t.Errorf("result summary wrong: %v", r)
	}
}

func TestNewGamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic for S=0")
		}
	}()
	NewGame(gen.Chain(2), RBW, 0, false)
}

func TestPlayScheduleChain(t *testing.T) {
	g := gen.Chain(10)
	res, err := PlayTopological(g, RBW, 2, Belady)
	if err != nil {
		t.Fatalf("PlayTopological: %v", err)
	}
	// One load of the input, one store of the output.
	if res.IO() != 2 {
		t.Fatalf("chain I/O = %d, want 2", res.IO())
	}
}

func TestPlayScheduleOuterProduct(t *testing.T) {
	n := 6
	g := gen.OuterProduct(n)
	// With ample fast memory the cost is exactly 2n loads + n² stores.
	res, err := PlayTopological(g, RBW, 2*n+n*n+4, Belady)
	if err != nil {
		t.Fatalf("PlayTopological: %v", err)
	}
	if res.Loads != 2*n || res.Stores != n*n {
		t.Fatalf("outer product I/O = %d loads + %d stores, want %d + %d",
			res.Loads, res.Stores, 2*n, n*n)
	}
	// With minimal fast memory the cost cannot drop below 2n + n².
	resSmall, err := PlayTopological(g, RBW, 3, Belady)
	if err != nil {
		t.Fatalf("PlayTopological small: %v", err)
	}
	if resSmall.IO() < 2*n+n*n {
		t.Fatalf("outer product small-S I/O = %d below the unconditional minimum %d",
			resSmall.IO(), 2*n+n*n)
	}
}

func TestPlayScheduleMatMul(t *testing.T) {
	n := 4
	r := gen.MatMul(n)
	g := r.Graph
	// Large S: every value fits, so I/O = 2n² loads + n² stores.
	big, err := PlayTopological(g, RBW, g.NumVertices()+1, Belady)
	if err != nil {
		t.Fatalf("PlayTopological big: %v", err)
	}
	if big.Loads != 2*n*n || big.Stores != n*n {
		t.Fatalf("matmul big-S I/O = %d + %d, want %d + %d", big.Loads, big.Stores, 2*n*n, n*n)
	}
	// Small S forces extra traffic.
	small, err := PlayTopological(g, RBW, 8, Belady)
	if err != nil {
		t.Fatalf("PlayTopological small: %v", err)
	}
	if small.IO() <= big.IO() {
		t.Fatalf("small-S I/O %d not larger than big-S I/O %d", small.IO(), big.IO())
	}
}

func TestPlayScheduleBeladyVsLRU(t *testing.T) {
	g := gen.FFT(16)
	belady, err := PlayTopological(g, RBW, 8, Belady)
	if err != nil {
		t.Fatalf("belady: %v", err)
	}
	lru, err := PlayTopological(g, RBW, 8, LRU)
	if err != nil {
		t.Fatalf("lru: %v", err)
	}
	if belady.IO() > lru.IO() {
		t.Fatalf("Belady (%d) should not lose to LRU (%d) on the same schedule", belady.IO(), lru.IO())
	}
	// More fast memory never hurts for the same schedule and policy.
	bigger, err := PlayTopological(g, RBW, 16, Belady)
	if err != nil {
		t.Fatalf("bigger: %v", err)
	}
	if bigger.IO() > belady.IO() {
		t.Fatalf("more red pebbles increased I/O: %d vs %d", bigger.IO(), belady.IO())
	}
}

func TestPlayScheduleErrors(t *testing.T) {
	g := gen.Chain(4) // vertices 0(in),1,2,3(out)
	// Input scheduled.
	if _, err := PlaySchedule(g, RBW, 2, []cdag.VertexID{0, 1, 2, 3}, Belady, false); err == nil {
		t.Errorf("expected error for scheduled input")
	}
	// Duplicate vertex.
	if _, err := PlaySchedule(g, RBW, 2, []cdag.VertexID{1, 1, 2, 3}, Belady, false); err == nil {
		t.Errorf("expected error for duplicate vertex")
	}
	// Missing vertex.
	if _, err := PlaySchedule(g, RBW, 2, []cdag.VertexID{1, 2}, Belady, false); err == nil {
		t.Errorf("expected error for missing vertex")
	}
	// Dependence violated.
	if _, err := PlaySchedule(g, RBW, 2, []cdag.VertexID{2, 1, 3}, Belady, false); err == nil {
		t.Errorf("expected error for out-of-order schedule")
	}
	// Out of range vertex.
	if _, err := PlaySchedule(g, RBW, 2, []cdag.VertexID{1, 2, 99}, Belady, false); err == nil {
		t.Errorf("expected error for out-of-range vertex")
	}
	// S too small for the in-degree.
	d := gen.DotProduct(4)
	if _, err := PlayTopological(d, RBW, 2, Belady); err == nil {
		t.Errorf("expected error for S below in-degree+1")
	}
	var se *ScheduleError
	_, err := PlayTopological(d, RBW, 2, Belady)
	if !errors.As(err, &se) {
		t.Errorf("error type = %T, want *ScheduleError", err)
	}
}

func TestOptimalIOChain(t *testing.T) {
	g := gen.Chain(5)
	io, err := OptimalIO(g, RBW, 2, OptimalOptions{})
	if err != nil {
		t.Fatalf("OptimalIO: %v", err)
	}
	if io != 2 {
		t.Fatalf("optimal chain I/O = %d, want 2", io)
	}
	// The Hong-Kung variant can do no better on a chain.
	ioHK, err := OptimalIO(g, HongKung, 2, OptimalOptions{})
	if err != nil {
		t.Fatalf("OptimalIO HK: %v", err)
	}
	if ioHK != 2 {
		t.Fatalf("optimal HK chain I/O = %d, want 2", ioHK)
	}
}

func TestOptimalIODiamond(t *testing.T) {
	g := cdag.NewGraph("diamond", 4)
	a := g.AddInput("a")
	b := g.AddVertex("b")
	c := g.AddVertex("c")
	d := g.AddOutput("d")
	g.AddEdge(a, b)
	g.AddEdge(a, c)
	g.AddEdge(b, d)
	g.AddEdge(c, d)
	io, err := OptimalIO(g, RBW, 3, OptimalOptions{})
	if err != nil {
		t.Fatalf("OptimalIO: %v", err)
	}
	if io != 2 {
		t.Fatalf("optimal diamond I/O = %d, want 2", io)
	}
	// With only 2 red pebbles no complete game exists (computing d requires
	// both predecessors plus d itself to hold red pebbles).
	if _, err := OptimalIO(g, RBW, 2, OptimalOptions{}); err == nil {
		t.Fatalf("expected no complete game with S=2 on the diamond")
	}
}

func TestOptimalIOForcedSpill(t *testing.T) {
	// a, b inputs; c = f(a,b); d = f(a,c); e = f(b,c); out = f(d,e).
	// All in-degrees are 2, so S=3 admits a complete game, but only 3 values
	// fit in fast memory at once, forcing spills: optimal I/O exceeds
	// |I| + |O| = 3.
	g := cdag.NewGraph("spill", 6)
	a := g.AddInput("a")
	b := g.AddInput("b")
	c := g.AddVertex("c")
	d := g.AddVertex("d")
	e := g.AddVertex("e")
	out := g.AddOutput("out")
	g.AddEdge(a, c)
	g.AddEdge(b, c)
	g.AddEdge(a, d)
	g.AddEdge(c, d)
	g.AddEdge(b, e)
	g.AddEdge(c, e)
	g.AddEdge(d, out)
	g.AddEdge(e, out)
	opt, err := OptimalIO(g, RBW, 3, OptimalOptions{})
	if err != nil {
		t.Fatalf("OptimalIO: %v", err)
	}
	if opt <= 3 {
		t.Fatalf("optimal I/O = %d, want > 3 (forced spill)", opt)
	}
	// With S=6 everything fits: exactly 2 loads + 1 store.
	roomy, err := OptimalIO(g, RBW, 6, OptimalOptions{})
	if err != nil {
		t.Fatalf("OptimalIO roomy: %v", err)
	}
	if roomy != 3 {
		t.Fatalf("roomy optimal = %d, want 3", roomy)
	}
	// The schedule player must reproduce the roomy optimum and stay legal in
	// the tight case.
	sched, err := PlayTopological(g, RBW, 3, Belady)
	if err != nil {
		t.Fatalf("PlayTopological: %v", err)
	}
	if sched.IO() < opt {
		t.Fatalf("scheduled I/O %d below optimum %d", sched.IO(), opt)
	}
}

func TestOptimalIOSTooSmall(t *testing.T) {
	g := gen.DotProduct(2) // has a vertex with in-degree 2, needs S >= 3
	if _, err := OptimalIO(g, RBW, 2, OptimalOptions{MaxStates: 100000}); err == nil {
		t.Fatalf("expected failure when no complete game exists")
	}
}

func TestOptimalIOErrors(t *testing.T) {
	big := gen.Jacobi(2, 6, 2, gen.StencilStar).Graph // 108 vertices > 64
	if _, err := OptimalIO(big, RBW, 4, OptimalOptions{}); !errors.Is(err, ErrTooLarge) {
		t.Errorf("expected ErrTooLarge, got %v", err)
	}
	g := gen.FFT(8)
	if _, err := OptimalIO(g, RBW, 4, OptimalOptions{MaxStates: 10}); !errors.Is(err, ErrSearchBudget) {
		t.Errorf("expected ErrSearchBudget, got %v", err)
	}
	if _, err := OptimalIO(gen.Chain(2), RBW, 0, OptimalOptions{}); err == nil {
		t.Errorf("expected error for S=0")
	}
}

func TestScheduledNeverBeatsOptimal(t *testing.T) {
	cases := []*cdag.Graph{
		gen.Chain(6),
		gen.DotProduct(3),
		gen.ReductionTree(6),
		gen.Pyramid(3),
	}
	for _, g := range cases {
		s := 0
		for _, v := range g.Vertices() {
			if g.InDegree(v)+1 > s {
				s = g.InDegree(v) + 1
			}
		}
		s++ // a little slack
		opt, err := OptimalIO(g, RBW, s, OptimalOptions{})
		if err != nil {
			t.Fatalf("%s: OptimalIO: %v", g.Name(), err)
		}
		sched, err := PlayTopological(g, RBW, s, Belady)
		if err != nil {
			t.Fatalf("%s: PlayTopological: %v", g.Name(), err)
		}
		if sched.IO() < opt {
			t.Errorf("%s: scheduled I/O %d below proven optimum %d", g.Name(), sched.IO(), opt)
		}
		// A minimum amount of I/O is unavoidable: every input load and output
		// store is an I/O in the RBW game.
		if opt < g.NumInputs()+g.NumOutputs() && g.NumInputs() > 0 {
			t.Errorf("%s: optimal %d below |I|+|O| = %d", g.Name(), opt, g.NumInputs()+g.NumOutputs())
		}
	}
}

func TestHongKungNeverWorseThanRBW(t *testing.T) {
	// Every complete RBW game is a complete Hong-Kung game, so the optimal
	// Hong-Kung I/O can never exceed the optimal RBW I/O.
	f := func(edgesRaw []uint16, nRaw, sRaw uint8) bool {
		n := int(nRaw%6) + 2
		g := cdag.NewGraph("rand", n)
		g.AddVertices(n)
		for _, e := range edgesRaw {
			u := int(e) % n
			v := int(e>>8) % n
			if u >= v {
				continue
			}
			g.AddEdge(cdag.VertexID(u), cdag.VertexID(v))
		}
		g.TagHongKung()
		maxIn := 0
		for _, v := range g.Vertices() {
			if g.InDegree(v) > maxIn {
				maxIn = g.InDegree(v)
			}
		}
		s := maxIn + 1 + int(sRaw%3)
		hk, err1 := OptimalIO(g, HongKung, s, OptimalOptions{MaxStates: 300000})
		rbw, err2 := OptimalIO(g, RBW, s, OptimalOptions{MaxStates: 300000})
		if err1 != nil || err2 != nil {
			return true // skip searches that blow the budget
		}
		return hk <= rbw
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPlayScheduleMatchesOptimalOnTrees(t *testing.T) {
	// For a reduction tree over 8 inputs with S=5 the greedy player reaches
	// the optimum exactly: load each input once, store the single output.
	g := gen.ReductionTree(8)
	opt, err := OptimalIO(g, RBW, 5, OptimalOptions{})
	if err != nil {
		t.Fatalf("OptimalIO: %v", err)
	}
	if opt != 9 {
		t.Errorf("optimal reduction-tree I/O (S=5) = %d, want 9 (8 loads + 1 store)", opt)
	}
	// A depth-first (post-order) schedule lets the greedy player reach the
	// optimum; the breadth-first topological order does not (it keeps all
	// partial sums live at once and is forced to spill).
	postOrder := []cdag.VertexID{8, 9, 12, 10, 11, 13, 14}
	dfs, err := PlaySchedule(g, RBW, 5, postOrder, Belady, false)
	if err != nil {
		t.Fatalf("PlaySchedule post-order: %v", err)
	}
	if dfs.IO() != opt {
		t.Errorf("post-order scheduled I/O %d != optimal %d", dfs.IO(), opt)
	}
	bfs, err := PlayTopological(g, RBW, 5, Belady)
	if err != nil {
		t.Fatalf("PlayTopological: %v", err)
	}
	if bfs.IO() < opt {
		t.Errorf("breadth-first scheduled I/O %d below optimum %d", bfs.IO(), opt)
	}
	// With S=4 one partial result must spill and be reloaded: the proven
	// optimum rises to 11 (9 loads + 2 stores).
	tight, err := OptimalIO(g, RBW, 4, OptimalOptions{})
	if err != nil {
		t.Fatalf("OptimalIO tight: %v", err)
	}
	if tight != 11 {
		t.Errorf("optimal reduction-tree I/O (S=4) = %d, want 11", tight)
	}
}

func TestUnconsumedInputIsStillLoadedInRBW(t *testing.T) {
	// An input with no successors must still receive a white pebble (i.e., be
	// loaded once) for the RBW game to be complete.
	g := cdag.NewGraph("dangling", 3)
	a := g.AddInput("a")
	b := g.AddInput("unused")
	c := g.AddOutput("c")
	g.AddEdge(a, c)
	_ = b
	res, err := PlayTopological(g, RBW, 2, Belady)
	if err != nil {
		t.Fatalf("PlayTopological: %v", err)
	}
	if res.Loads != 2 {
		t.Fatalf("loads = %d, want 2 (both inputs touched)", res.Loads)
	}
}
