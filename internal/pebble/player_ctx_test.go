package pebble

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"cdagio/internal/cdag"
	"cdagio/internal/gen"
)

// trippingCtx is a context whose Err starts reporting cancellation after a
// fixed number of calls, so tests can hit the player's in-loop check
// deterministically (a timer-based cancel would race the play).
type trippingCtx struct {
	context.Context
	calls, after int
}

func (c *trippingCtx) Err() error {
	c.calls++
	if c.calls > c.after {
		return context.Canceled
	}
	return nil
}

func nonInputTopo(g *cdag.Graph) []cdag.VertexID {
	order := make([]cdag.VertexID, 0, g.NumOperations())
	for _, v := range g.MustTopoOrder() {
		if !g.IsInput(v) {
			order = append(order, v)
		}
	}
	return order
}

func TestPlayScheduleCtxCancellation(t *testing.T) {
	g := gen.Chain(64)
	order := nonInputTopo(g)

	// An already-cancelled context returns before any validation or play.
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := PlayScheduleCtx(cancelled, g, RBW, 2, order, Belady, false); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled: err %v, want context.Canceled", err)
	}

	// A context that trips right after the entry check stops the play at the
	// first in-loop step check instead of running to completion.
	tc := &trippingCtx{Context: context.Background(), after: 1}
	if _, err := PlayScheduleCtx(tc, g, RBW, 2, order, Belady, false); !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-run cancel: err %v, want context.Canceled", err)
	}
	if tc.calls < 2 {
		t.Fatalf("mid-run cancel: only %d Err checks, want the entry check plus an in-loop check", tc.calls)
	}

	// Under a live context the ctx variant is bit-identical to PlaySchedule.
	want, err := PlaySchedule(g, RBW, 2, order, Belady, false)
	if err != nil {
		t.Fatalf("PlaySchedule: %v", err)
	}
	got, err := PlayScheduleCtx(context.Background(), g, RBW, 2, order, Belady, false)
	if err != nil || !reflect.DeepEqual(got, want) {
		t.Fatalf("PlayScheduleCtx diverges: (%+v, %v) vs %+v", got, err, want)
	}
}
