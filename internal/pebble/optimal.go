package pebble

import (
	"context"
	"errors"
	"fmt"
	"math/bits"

	"cdagio/internal/cdag"
	"cdagio/internal/iheap"
)

// ErrTooLarge is returned by OptimalIO when the CDAG exceeds the size the
// exact solver supports.
var ErrTooLarge = errors.New("pebble: CDAG too large for exact optimal search")

// ErrSearchBudget is returned when the state-space search exceeds the
// configured budget before proving optimality.
var ErrSearchBudget = errors.New("pebble: optimal search exceeded its state budget")

// OptimalOptions configures the exact search.
type OptimalOptions struct {
	// MaxStates bounds the number of distinct states settled by the search.
	// Zero selects a default of 2,000,000.
	MaxStates int
}

// gameState is a compact encoding of a pebble-game configuration for graphs
// with at most 64 vertices.
type gameState struct {
	red   uint64
	white uint64
	blue  uint64
}

// stateQueue is the Dijkstra frontier over game states: an arena of the
// states behind a shared min-cost heap of (cost, arena index) pairs
// (internal/iheap.CostHeap, the concrete heap also backing the memsim and
// P-RBW players).  Pushes append a 24-byte state to the arena and two words
// to the heap — no per-state boxing through container/heap interfaces —
// and pops are deterministic (cost ties broken by insertion order).
type stateQueue struct {
	arena []gameState
	heap  iheap.CostHeap
}

func (q *stateQueue) push(st gameState, cost int) {
	q.arena = append(q.arena, st)
	q.heap.Push(int64(cost), int32(len(q.arena)-1))
}

func (q *stateQueue) pop() (gameState, int, bool) {
	cost, idx, ok := q.heap.PopMin()
	if !ok {
		return gameState{}, 0, false
	}
	return q.arena[idx], int(cost), true
}

// OptimalIO computes the exact minimum number of I/O operations of a complete
// pebble game on g with s red pebbles, by Dijkstra search over the game's
// state space (loads and stores cost 1, computes and deletes cost 0).
//
// The search is exponential in general; it is intended for the small CDAGs
// (≲ 20 vertices) used to validate the lower-bound machinery.  Graphs with
// more than 64 vertices are rejected with ErrTooLarge, and searches that
// exceed opts.MaxStates settled states fail with ErrSearchBudget.
func OptimalIO(g *cdag.Graph, variant Variant, s int, opts OptimalOptions) (int, error) {
	// context.Background() is never cancelled, so OptimalIOCtx degenerates to
	// the historical behavior.
	//cdaglint:allow ctxflow deprecated no-ctx entry point; documented as a never-cancelled run
	return OptimalIOCtx(context.Background(), g, variant, s, opts)
}

// OptimalIOCtx is OptimalIO under a context: the state-space search checks
// ctx every 1024 settled states (individual state expansions stay atomic) and
// returns ctx.Err() promptly once the context is cancelled.  Under a
// never-cancelled context the search — settle order, cost, error — is
// bit-identical to OptimalIO.
func OptimalIOCtx(ctx context.Context, g *cdag.Graph, variant Variant, s int, opts OptimalOptions) (int, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	n := g.NumVertices()
	if n > 64 {
		return 0, fmt.Errorf("%w: %d vertices (max 64)", ErrTooLarge, n)
	}
	if s < 1 {
		return 0, errors.New("pebble: need at least one red pebble")
	}
	maxStates := opts.MaxStates
	if maxStates <= 0 {
		maxStates = 2_000_000
	}

	var inputMask, outputMask, allMask uint64
	preds := make([]uint64, n)
	hasSucc := make([]bool, n)
	succOff, _, predOff, predVal := g.AdjacencyCSR()
	for v := 0; v < n; v++ {
		id := cdag.VertexID(v)
		allMask |= 1 << uint(v)
		if g.IsInput(id) {
			inputMask |= 1 << uint(v)
		}
		if g.IsOutput(id) {
			outputMask |= 1 << uint(v)
		}
		for _, p := range predVal[predOff[v]:predOff[v+1]] {
			preds[v] |= 1 << uint(p)
		}
		hasSucc[v] = succOff[v+1] > succOff[v]
	}

	isGoal := func(st gameState) bool {
		if st.blue&outputMask != outputMask {
			return false
		}
		if variant == RBW {
			return st.white == allMask
		}
		// Hong-Kung: every non-input vertex must have fired at least once.
		return st.white&^inputMask == allMask&^inputMask
	}

	start := gameState{blue: inputMask}
	dist := map[gameState]int{start: 0}
	pq := &stateQueue{}
	pq.push(start, 0)
	settled := 0

	for {
		st, cost, ok := pq.pop()
		if !ok {
			break
		}
		if d, ok := dist[st]; ok && cost > d {
			continue
		}
		if isGoal(st) {
			return cost, nil
		}
		settled++
		if settled > maxStates {
			return 0, fmt.Errorf("%w: settled %d states", ErrSearchBudget, settled)
		}
		if settled&1023 == 0 {
			if err := ctx.Err(); err != nil {
				return 0, err
			}
		}

		relax := func(next gameState, c int) {
			if d, ok := dist[next]; !ok || c < d {
				dist[next] = c
				pq.push(next, c)
			}
		}

		redCount := bits.OnesCount64(st.red)
		for v := 0; v < n; v++ {
			bit := uint64(1) << uint(v)
			hasRed := st.red&bit != 0
			// Load.
			if !hasRed && st.blue&bit != 0 && redCount < s {
				next := st
				next.red |= bit
				if variant == RBW {
					next.white |= bit
				}
				relax(next, cost+1)
			}
			// Store (skip when already blue: it would never help).
			if hasRed && st.blue&bit == 0 {
				next := st
				next.blue |= bit
				relax(next, cost+1)
			}
			// Compute.
			if !hasRed && inputMask&bit == 0 && redCount < s &&
				st.red&preds[v] == preds[v] &&
				!(variant == RBW && st.white&bit != 0) {
				next := st
				next.red |= bit
				next.white |= bit
				relax(next, cost)
			}
			// Delete.
			if hasRed {
				next := st
				next.red &^= bit
				relax(next, cost)
			}
		}
	}
	return 0, errors.New("pebble: no complete game exists (is S large enough for every in-degree?)")
}
