// Package pebble implements the sequential pebble games of the paper: the
// original Hong–Kung red-blue pebble game (Definition 2) and the
// Red-Blue-White game (Definition 4) that forbids recomputation and allows
// flexible input/output tagging.
//
// The package provides three layers:
//
//   - Game: a rule-checking state machine.  Every move is validated against
//     the game definition, so any sequence of successful Apply calls is a
//     legal (partial) game and the I/O count it reports is trustworthy.
//   - PlaySchedule: a deterministic player that executes a given vertex
//     schedule with S red pebbles and a Belady or LRU eviction policy,
//     producing a complete legal game.  Its I/O count is an upper bound on
//     the CDAG's I/O complexity.
//   - OptimalIO: an exact solver (Dijkstra over game states) for small CDAGs,
//     used to validate the lower-bound machinery end to end.
package pebble

import (
	"fmt"

	"cdagio/internal/cdag"
)

// Variant selects which pebble-game rule set a Game enforces.
type Variant int

const (
	// HongKung is the original red-blue pebble game: recomputation of a
	// vertex is allowed and completion requires blue pebbles on all outputs.
	HongKung Variant = iota
	// RBW is the Red-Blue-White game: each vertex may be computed only once
	// (white pebbles record firing), and completion requires white pebbles on
	// all vertices plus blue pebbles on all outputs.
	RBW
)

// String returns the variant name.
func (v Variant) String() string {
	switch v {
	case HongKung:
		return "red-blue (Hong-Kung)"
	case RBW:
		return "red-blue-white"
	default:
		return fmt.Sprintf("Variant(%d)", int(v))
	}
}

// MoveKind identifies a pebble-game rule.
type MoveKind int

const (
	// Load places a red pebble on a vertex holding a blue pebble (rule R1).
	Load MoveKind = iota
	// Store places a blue pebble on a vertex holding a red pebble (rule R2).
	Store
	// Compute fires a vertex whose predecessors all hold red pebbles (rule R3).
	Compute
	// Delete removes a red pebble (rule R4).
	Delete
)

// String returns the move-kind name.
func (k MoveKind) String() string {
	switch k {
	case Load:
		return "load"
	case Store:
		return "store"
	case Compute:
		return "compute"
	case Delete:
		return "delete"
	default:
		return fmt.Sprintf("MoveKind(%d)", int(k))
	}
}

// Move is one step of a pebble game.
type Move struct {
	Kind MoveKind
	V    cdag.VertexID
}

// String renders the move.
func (m Move) String() string { return fmt.Sprintf("%s(%d)", m.Kind, m.V) }

// Game is a rule-checking pebble-game state machine on a fixed CDAG.
type Game struct {
	graph   *cdag.Graph
	variant Variant
	s       int

	// Hoisted predecessor CSR of graph: the R3 rule check runs once per
	// Compute move, so it reads the flat row directly instead of calling
	// graph.Pred per move.  Valid because the graph's structure is fixed for
	// the lifetime of a game (NewGame materializes it).
	predOff []int64
	predVal []cdag.VertexID

	red   *cdag.VertexSet
	blue  *cdag.VertexSet
	white *cdag.VertexSet

	loads  int
	stores int

	record bool
	trace  []Move
}

// NewGame returns a fresh game on g with S red pebbles.  Blue pebbles are
// placed on all input-tagged vertices.  When record is true the full move
// trace is retained (useful for small games and debugging; large simulations
// should leave it off).  The graph's structure must stay fixed while the
// game is played: NewGame compiles and caches its adjacency.
func NewGame(g *cdag.Graph, variant Variant, s int, record bool) *Game {
	if s < 1 {
		panic("pebble: need at least one red pebble")
	}
	game := &Game{
		graph:   g,
		variant: variant,
		s:       s,
		red:     cdag.NewVertexSet(g.NumVertices()),
		blue:    cdag.NewVertexSet(g.NumVertices()),
		white:   cdag.NewVertexSet(g.NumVertices()),
		record:  record,
	}
	game.predOff, game.predVal = g.PredecessorCSR()
	for _, v := range g.Inputs() {
		game.blue.Add(v)
	}
	return game
}

// Graph returns the CDAG the game is played on.
func (game *Game) Graph() *cdag.Graph { return game.graph }

// Variant returns the rule set in force.
func (game *Game) Variant() Variant { return game.variant }

// RedPebbles returns the number of red pebbles available (S).
func (game *Game) RedPebbles() int { return game.s }

// RedInUse returns the number of vertices currently holding a red pebble.
func (game *Game) RedInUse() int { return game.red.Len() }

// HasRed reports whether v currently holds a red pebble.
func (game *Game) HasRed(v cdag.VertexID) bool { return game.red.Contains(v) }

// HasBlue reports whether v currently holds a blue pebble.
func (game *Game) HasBlue(v cdag.VertexID) bool { return game.blue.Contains(v) }

// HasWhite reports whether v has been fired (holds a white pebble).
func (game *Game) HasWhite(v cdag.VertexID) bool { return game.white.Contains(v) }

// Loads returns the number of R1 moves applied so far.
func (game *Game) Loads() int { return game.loads }

// Stores returns the number of R2 moves applied so far.
func (game *Game) Stores() int { return game.stores }

// IO returns the total number of I/O moves (loads + stores) so far.
func (game *Game) IO() int { return game.loads + game.stores }

// Trace returns the recorded moves (nil unless recording was requested).
func (game *Game) Trace() []Move { return game.trace }

// IllegalMoveError reports a move that violates the game rules.
type IllegalMoveError struct {
	Move   Move
	Reason string
}

func (e *IllegalMoveError) Error() string {
	return fmt.Sprintf("pebble: illegal move %v: %s", e.Move, e.Reason)
}

func (game *Game) illegal(m Move, reason string) error {
	return &IllegalMoveError{Move: m, Reason: reason}
}

// Apply validates and applies one move.  On error the game state is
// unchanged.
func (game *Game) Apply(m Move) error {
	if !game.graph.ValidVertex(m.V) {
		return game.illegal(m, "vertex out of range")
	}
	switch m.Kind {
	case Load:
		if !game.blue.Contains(m.V) {
			return game.illegal(m, "no blue pebble to load from")
		}
		if game.red.Contains(m.V) {
			return game.illegal(m, "vertex already holds a red pebble")
		}
		if game.red.Len() >= game.s {
			return game.illegal(m, "no free red pebble")
		}
		game.red.Add(m.V)
		if game.variant == RBW {
			game.white.Add(m.V)
		}
		game.loads++
	case Store:
		if !game.red.Contains(m.V) {
			return game.illegal(m, "no red pebble to store from")
		}
		game.blue.Add(m.V)
		game.stores++
	case Compute:
		if game.graph.IsInput(m.V) {
			return game.illegal(m, "input vertices cannot be computed")
		}
		if game.variant == RBW && game.white.Contains(m.V) {
			return game.illegal(m, "vertex already fired (recomputation forbidden in RBW)")
		}
		if game.red.Contains(m.V) {
			return game.illegal(m, "vertex already holds a red pebble")
		}
		for _, p := range game.predVal[game.predOff[m.V]:game.predOff[m.V+1]] {
			if !game.red.Contains(p) {
				return game.illegal(m, fmt.Sprintf("predecessor %d lacks a red pebble", p))
			}
		}
		if game.red.Len() >= game.s {
			return game.illegal(m, "no free red pebble")
		}
		game.red.Add(m.V)
		game.white.Add(m.V)
	case Delete:
		if !game.red.Contains(m.V) {
			return game.illegal(m, "no red pebble to delete")
		}
		game.red.Remove(m.V)
	default:
		return game.illegal(m, "unknown move kind")
	}
	if game.record {
		game.trace = append(game.trace, m)
	}
	return nil
}

// IsComplete reports whether the game has reached a final state:
//
//   - Hong–Kung: every output-tagged vertex holds a blue pebble and every
//     non-input vertex has been fired at least once;
//   - RBW: every vertex holds a white pebble and every output-tagged vertex
//     holds a blue pebble.
func (game *Game) IsComplete() bool {
	for _, v := range game.graph.Outputs() {
		if !game.blue.Contains(v) {
			return false
		}
	}
	switch game.variant {
	case RBW:
		return game.white.Len() == game.graph.NumVertices()
	default:
		for v := 0; v < game.graph.NumVertices(); v++ {
			id := cdag.VertexID(v)
			if !game.graph.IsInput(id) && !game.white.Contains(id) {
				return false
			}
		}
		return true
	}
}

// Incomplete explains why the game is not complete, or returns "" when it is.
func (game *Game) Incomplete() string {
	for _, v := range game.graph.Outputs() {
		if !game.blue.Contains(v) {
			return fmt.Sprintf("output %d has no blue pebble", v)
		}
	}
	if game.variant == RBW {
		if game.white.Len() != game.graph.NumVertices() {
			return fmt.Sprintf("%d vertices not fired", game.graph.NumVertices()-game.white.Len())
		}
		return ""
	}
	for v := 0; v < game.graph.NumVertices(); v++ {
		id := cdag.VertexID(v)
		if !game.graph.IsInput(id) && !game.white.Contains(id) {
			return fmt.Sprintf("vertex %d never fired", id)
		}
	}
	return ""
}

// Result summarizes a completed game.
type Result struct {
	Variant Variant
	S       int
	Loads   int
	Stores  int
	Moves   int
	Trace   []Move
}

// IO returns the total I/O count of the result.
func (r Result) IO() int { return r.Loads + r.Stores }

// String renders a short summary.
func (r Result) String() string {
	return fmt.Sprintf("%s game, S=%d: %d loads + %d stores = %d I/O",
		r.Variant, r.S, r.Loads, r.Stores, r.IO())
}

// result builds a Result snapshot from the game.
func (game *Game) result(moves int) Result {
	return Result{
		Variant: game.variant,
		S:       game.s,
		Loads:   game.loads,
		Stores:  game.stores,
		Moves:   moves,
		Trace:   game.trace,
	}
}
