package pebble

import (
	"context"
	"fmt"

	"cdagio/internal/cdag"
)

// EvictionPolicy selects how the schedule player chooses a red pebble to
// free when the fast memory is full.
type EvictionPolicy int

const (
	// Belady evicts the vertex whose next use lies farthest in the future
	// (the offline-optimal replacement policy for a fixed schedule).
	Belady EvictionPolicy = iota
	// LRU evicts the least recently used vertex.
	LRU
)

// String returns the policy name.
func (p EvictionPolicy) String() string {
	switch p {
	case Belady:
		return "belady"
	case LRU:
		return "lru"
	default:
		return fmt.Sprintf("EvictionPolicy(%d)", int(p))
	}
}

// ScheduleError reports a schedule the player cannot execute.
type ScheduleError struct{ Reason string }

func (e *ScheduleError) Error() string { return "pebble: invalid schedule: " + e.Reason }

// PlaySchedule executes the given vertex schedule on g as a complete pebble
// game with s red pebbles and returns the resulting I/O counts.  The schedule
// must list every non-input vertex exactly once, in an order compatible with
// the CDAG's edges (a topological order of the non-input vertices).  Input
// vertices are loaded on demand.
//
// The returned I/O count is the cost of a legal game, hence an upper bound on
// the I/O complexity of g for the given S.  With the Belady policy the count
// is optimal for the fixed schedule up to the store-on-evict heuristic.
//
// PlaySchedule fails if s is smaller than the largest in-degree plus one
// (a vertex and all its predecessors must hold red pebbles simultaneously).
//
// The player allocates only run-constant state: use lists are a flat CSR
// table, pinned sets are epoch stamps, and the red-pebble set is mirrored in
// a dense list so evictions scan occupancy instead of the whole vertex range.
func PlaySchedule(g *cdag.Graph, variant Variant, s int, order []cdag.VertexID,
	policy EvictionPolicy, record bool) (Result, error) {
	//cdaglint:allow ctxflow deprecated no-ctx entry point; documented as a never-cancelled run
	return PlayScheduleCtx(context.Background(), g, variant, s, order, policy, record)
}

// PlayScheduleCtx is PlaySchedule bounded by ctx: the player checks the
// context on entry and every 4096 schedule steps (like prbw.PlayCtx and
// memsim.RunCtx) and returns ctx.Err() once it is cancelled, so a serving
// layer's deadlines and forced drain reach long plays on large graphs.
func PlayScheduleCtx(ctx context.Context, g *cdag.Graph, variant Variant, s int, order []cdag.VertexID,
	policy EvictionPolicy, record bool) (Result, error) {

	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	// s reaches NewGame below, which treats a non-positive pebble budget as a
	// programmer error and panics; on this path s is caller (request) data,
	// so it must fail as an input error instead.
	if s < 1 {
		return Result{}, &ScheduleError{Reason: fmt.Sprintf("S=%d: need at least one red pebble", s)}
	}
	n := g.NumVertices()
	// Every traversal below replays predecessor rows, so hoist the flat CSR
	// arrays once: the rows are identical to g.Pred(v) in content and order,
	// without the per-call facade overhead.
	predOff, predVal := g.PredecessorCSR()
	// Validate the schedule: every non-input exactly once, dependencies first.
	position := make([]int, n)
	for i := range position {
		position[i] = -1
	}
	for i, v := range order {
		if !g.ValidVertex(v) {
			return Result{}, &ScheduleError{Reason: fmt.Sprintf("vertex %d out of range", v)}
		}
		if g.IsInput(v) {
			return Result{}, &ScheduleError{Reason: fmt.Sprintf("input vertex %d scheduled for compute", v)}
		}
		if position[v] >= 0 {
			return Result{}, &ScheduleError{Reason: fmt.Sprintf("vertex %d scheduled twice", v)}
		}
		position[v] = i
	}
	scheduled := 0
	for v := 0; v < n; v++ {
		id := cdag.VertexID(v)
		if g.IsInput(id) {
			continue
		}
		if position[v] < 0 {
			return Result{}, &ScheduleError{Reason: fmt.Sprintf("vertex %d missing from schedule", v)}
		}
		scheduled++
		for _, p := range predVal[predOff[v]:predOff[v+1]] {
			if !g.IsInput(p) && position[p] > position[v] {
				return Result{}, &ScheduleError{
					Reason: fmt.Sprintf("vertex %d scheduled before its predecessor %d", v, p)}
			}
		}
		if indeg := int(predOff[v+1] - predOff[v]); indeg+1 > s {
			return Result{}, &ScheduleError{
				Reason: fmt.Sprintf("S=%d too small: vertex %d has in-degree %d", s, v, indeg)}
		}
	}
	if scheduled != len(order) {
		return Result{}, &ScheduleError{Reason: "schedule length does not match non-input vertex count"}
	}

	// uses lists the schedule positions consuming each vertex, in increasing
	// order, as one flat CSR table (useList[useStart[v]:useStart[v+1]]).
	useStart := make([]int32, n+1)
	for _, v := range order {
		for _, p := range predVal[predOff[v]:predOff[v+1]] {
			useStart[p+1]++
		}
	}
	for v := 0; v < n; v++ {
		useStart[v+1] += useStart[v]
	}
	useList := make([]int32, useStart[n])
	fill := make([]int32, n)
	for i, v := range order {
		for _, p := range predVal[predOff[v]:predOff[v+1]] {
			useList[useStart[p]+fill[p]] = int32(i)
			fill[p]++
		}
	}
	usePtr := fill // reuse as cursors, reset to zero
	for v := range usePtr {
		usePtr[v] = 0
	}
	lastUse := make([]int, n)

	// The red set mirrored as a dense list, so evictions scan the values
	// actually resident instead of the whole vertex bitmap.
	redList := make([]cdag.VertexID, 0, s+1)
	redPos := make([]int32, n)
	for v := range redPos {
		redPos[v] = -1
	}
	redAdd := func(v cdag.VertexID) {
		redPos[v] = int32(len(redList))
		redList = append(redList, v)
	}
	redRemove := func(v cdag.VertexID) {
		i := redPos[v]
		last := len(redList) - 1
		redList[i] = redList[last]
		redPos[redList[i]] = i
		redList = redList[:last]
		redPos[v] = -1
	}

	// Pinned sets as epoch stamps over a shared scratch array.
	pinStamp := make([]int32, n)
	pinEpoch := int32(0)

	game := NewGame(g, variant, s, record)
	clock := 0

	// nextUse returns the next schedule position that consumes v strictly
	// after position i, or a sentinel when v is no longer needed.
	const never = int(^uint(0) >> 1)
	nextUse := func(v cdag.VertexID, i int) int {
		for usePtr[v] < useStart[v+1]-useStart[v] && int(useList[useStart[v]+usePtr[v]]) <= i {
			usePtr[v]++
		}
		if usePtr[v] < useStart[v+1]-useStart[v] {
			return int(useList[useStart[v]+usePtr[v]])
		}
		return never
	}
	needsPreserve := func(v cdag.VertexID, i int) bool {
		if nextUse(v, i) != never {
			return true
		}
		return g.IsOutput(v) && !game.HasBlue(v)
	}

	// evictOne frees a red pebble, avoiding pinned vertices.  It stores the
	// victim first when its value would otherwise be lost.  Ties in the
	// eviction score resolve to the smallest vertex ID, exactly like the
	// original increasing-order scan of the red bitmap.
	evictOne := func(i int) error {
		var victim cdag.VertexID = cdag.InvalidVertex
		victimScore := -1
		victimFree := false
		for _, v := range redList {
			if pinStamp[v] == pinEpoch {
				continue
			}
			free := !needsPreserve(v, i)
			var score int
			if free {
				score = never
			} else {
				switch policy {
				case LRU:
					score = clock - lastUse[v]
				default: // Belady
					score = nextUse(v, i)
					if g.IsOutput(v) && !game.HasBlue(v) && score == never {
						// Output needed only for the final store: cheapest to
						// evict among preserved vertices.
						score = never - 1
					}
				}
			}
			if free && !victimFree {
				victim, victimScore, victimFree = v, score, true
				continue
			}
			if free == victimFree && (score > victimScore || (score == victimScore && v < victim)) {
				victim, victimScore = v, score
			}
		}
		if victim == cdag.InvalidVertex {
			return &ScheduleError{Reason: fmt.Sprintf("S=%d too small at schedule position %d: all red pebbles pinned", s, i)}
		}
		if !victimFree && !game.HasBlue(victim) {
			if err := game.Apply(Move{Store, victim}); err != nil {
				return err
			}
		}
		if err := game.Apply(Move{Delete, victim}); err != nil {
			return err
		}
		redRemove(victim)
		return nil
	}
	ensureRoom := func(i int) error {
		for game.RedInUse() >= s {
			if err := evictOne(i); err != nil {
				return err
			}
		}
		return nil
	}

	moves := 0
	for i, v := range order {
		if i&4095 == 0 {
			if err := ctx.Err(); err != nil {
				return Result{}, err
			}
		}
		// One row slice serves the pinning, fetching and dead-drop passes of
		// this step — no repeated Pred calls inside the step.
		preds := predVal[predOff[v]:predOff[v+1]]
		pinEpoch++
		for _, p := range preds {
			pinStamp[p] = pinEpoch
		}
		// Bring all predecessors into fast memory.
		for _, p := range preds {
			if game.HasRed(p) {
				lastUse[p] = clock
				continue
			}
			if !game.HasBlue(p) {
				return Result{}, &ScheduleError{
					Reason: fmt.Sprintf("value of vertex %d lost before use by %d", p, v)}
			}
			if err := ensureRoom(i); err != nil {
				return Result{}, err
			}
			if err := game.Apply(Move{Load, p}); err != nil {
				return Result{}, err
			}
			redAdd(p)
			lastUse[p] = clock
			moves++
		}
		// Fire v.
		if err := ensureRoom(i); err != nil {
			return Result{}, err
		}
		if err := game.Apply(Move{Compute, v}); err != nil {
			return Result{}, err
		}
		redAdd(v)
		lastUse[v] = clock
		moves++
		clock++
		// Drop values that are dead from here on (free, no I/O).
		for _, p := range preds {
			if game.HasRed(p) && !needsPreserve(p, i) {
				if err := game.Apply(Move{Delete, p}); err != nil {
					return Result{}, err
				}
				redRemove(p)
			}
		}
		if game.HasRed(v) && !needsPreserve(v, i) {
			if err := game.Apply(Move{Delete, v}); err != nil {
				return Result{}, err
			}
			redRemove(v)
		}
	}

	// Store outputs that still live only in fast memory, and make sure every
	// input was touched at least once (RBW completion requires white pebbles
	// everywhere, including on inputs that no scheduled vertex consumed).
	for _, v := range g.Outputs() {
		if !game.HasBlue(v) {
			if !game.HasRed(v) {
				return Result{}, &ScheduleError{Reason: fmt.Sprintf("output %d lost before final store", v)}
			}
			if err := game.Apply(Move{Store, v}); err != nil {
				return Result{}, err
			}
			moves++
		}
	}
	if variant == RBW {
		for i, v := range g.Inputs() {
			if i&4095 == 0 {
				if err := ctx.Err(); err != nil {
					return Result{}, err
				}
			}
			if game.HasWhite(v) {
				continue
			}
			pinEpoch++ // nothing pinned during the final input touches
			if err := ensureRoom(len(order)); err != nil {
				return Result{}, err
			}
			if err := game.Apply(Move{Load, v}); err != nil {
				return Result{}, err
			}
			moves++
			if err := game.Apply(Move{Delete, v}); err != nil {
				return Result{}, err
			}
		}
	}
	if !game.IsComplete() {
		return Result{}, &ScheduleError{Reason: "game incomplete after schedule: " + game.Incomplete()}
	}
	return game.result(moves), nil
}

// PlayTopological runs PlaySchedule on the default topological order of the
// non-input vertices of g.
func PlayTopological(g *cdag.Graph, variant Variant, s int, policy EvictionPolicy) (Result, error) {
	order := make([]cdag.VertexID, 0, g.NumOperations())
	for _, v := range g.MustTopoOrder() {
		if !g.IsInput(v) {
			order = append(order, v)
		}
	}
	return PlaySchedule(g, variant, s, order, policy, false)
}
