package pebble

import (
	"testing"

	"cdagio/internal/gen"
)

// TestPlayScheduleGolden pins the loads/stores of topological playback under
// both eviction policies to the numbers the original map-and-bitmap player
// produced, so the allocation-lean rewrite (CSR use lists, epoch-stamped
// pins, dense red-set mirror) can never silently change eviction decisions.
func TestPlayScheduleGolden(t *testing.T) {
	cases := []struct {
		name          string
		s             int
		policy        EvictionPolicy
		loads, stores int
	}{
		{"matmul", 24, Belady, 328, 292},
		{"jacobi", 16, Belady, 380, 256},
		{"cg", 20, Belady, 537, 269},
		{"fft", 8, Belady, 46, 46},
		{"dot", 4, Belady, 40, 17},
		{"matmul", 24, LRU, 432, 396},
		{"jacobi", 16, LRU, 589, 256},
		{"cg", 20, LRU, 719, 342},
		{"fft", 8, LRU, 64, 64},
		{"dot", 4, LRU, 43, 20},
	}
	for _, tc := range cases {
		g := gen.MatMul(6).Graph
		switch tc.name {
		case "jacobi":
			g = gen.Jacobi(2, 8, 4, gen.StencilBox).Graph
		case "cg":
			g = gen.CG(2, 5, 2).Graph
		case "fft":
			g = gen.FFT(16)
		case "dot":
			g = gen.DotProduct(12)
		}
		res, err := PlayTopological(g, RBW, tc.s, tc.policy)
		if err != nil {
			t.Fatalf("%s/%v: %v", tc.name, tc.policy, err)
		}
		if res.Loads != tc.loads || res.Stores != tc.stores {
			t.Errorf("%s/%v: loads=%d stores=%d, original player produced loads=%d stores=%d",
				tc.name, tc.policy, res.Loads, res.Stores, tc.loads, tc.stores)
		}
	}
}
