// Package cache content-addresses experiment-cell results through
// internal/store's crash-safe journal.  Keys are the cells' spec-computed
// content addresses (graph hash × engine kind × canonical params), so a
// re-run of an unchanged spec hits on every cell, an edited spec recomputes
// only the edited delta, and a corrupt or torn journal record costs exactly
// the affected cells — recovery resynchronizes past it and every other cell
// still hits.
package cache

import (
	"fmt"
	"sync"

	"cdagio/internal/store"
)

// Cache is a journal-backed result cache, safe for concurrent use.
type Cache struct {
	mu  sync.Mutex
	st  *store.Store
	mem map[string][]byte

	// Recovery is the journal recovery outcome of Open; CorruptRecords > 0
	// means some previously cached cells were lost and will recompute.
	Recovery store.RecoverStats
}

// Open opens (or creates) the result journal in dir and replays it.
func Open(dir string) (*Cache, error) {
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		return nil, fmt.Errorf("exp cache: %w", err)
	}
	c := &Cache{st: st, mem: map[string][]byte{}}
	stats, err := st.Recover(func(rec store.Record) {
		if rec.Kind == store.KindExpResult {
			c.mem[rec.Key] = rec.Value
		}
	})
	if err != nil {
		st.Close()
		return nil, fmt.Errorf("exp cache: recover: %w", err)
	}
	c.Recovery = stats
	return c, nil
}

// Get returns the cached result body for key, if present.
func (c *Cache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.mem[key]
	return v, ok
}

// Len returns the number of cached results.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.mem)
}

// Put journals the result body under key — durability first, visibility
// after: the in-memory entry appears only once the record is appended, so a
// hit can never name a result the journal does not hold.
func (c *Cache) Put(key string, body []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.mem[key]; ok {
		return nil
	}
	err := c.st.Append(store.Record{Kind: store.KindExpResult, Key: key, Value: body})
	if err != nil {
		return fmt.Errorf("exp cache: append: %w", err)
	}
	c.mem[key] = append([]byte(nil), body...)
	return nil
}

// Close flushes and closes the journal.
func (c *Cache) Close() error {
	return c.st.Close()
}
