package cache

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRoundTripAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if err := c.Put("k1", []byte(`{"a":1}`)); err != nil {
		t.Fatalf("Put: %v", err)
	}
	// Duplicate puts are no-ops, not journal growth.
	if err := c.Put("k1", []byte(`{"a":2}`)); err != nil {
		t.Fatalf("Put dup: %v", err)
	}
	if v, ok := c.Get("k1"); !ok || string(v) != `{"a":1}` {
		t.Fatalf("Get before reopen = %q, %v", v, ok)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	c2, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer c2.Close()
	if c2.Recovery.CorruptRecords != 0 {
		t.Errorf("clean reopen reports %d corrupt records", c2.Recovery.CorruptRecords)
	}
	if v, ok := c2.Get("k1"); !ok || string(v) != `{"a":1}` {
		t.Fatalf("Get after reopen = %q, %v (first write must win)", v, ok)
	}
	if c2.Len() != 1 {
		t.Errorf("Len = %d, want 1", c2.Len())
	}
}

// writeThree opens a fresh cache in dir and journals three results.
func writeThree(t *testing.T, dir string) {
	t.Helper()
	c, err := Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for _, k := range []string{"alpha", "beta", "gamma"} {
		if err := c.Put(k, []byte(`{"cell":"`+k+`"}`)); err != nil {
			t.Fatalf("Put %s: %v", k, err)
		}
	}
	if err := c.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// A flipped byte inside one record must cost exactly the affected cell:
// recovery resynchronizes past the bad frame and the other cells still hit.
func TestCorruptRecordCostsOnlyItsCell(t *testing.T) {
	dir := t.TempDir()
	writeThree(t, dir)

	log := filepath.Join(dir, "log.bin")
	buf, err := os.ReadFile(log)
	if err != nil {
		t.Fatalf("read journal: %v", err)
	}
	// Flip a payload byte in the middle record (the journal is three
	// equal-length frames; offset len/2 lands inside the second).
	buf[len(buf)/2] ^= 0xff
	if err := os.WriteFile(log, buf, 0o644); err != nil {
		t.Fatalf("rewrite journal: %v", err)
	}

	c, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen corrupt: %v", err)
	}
	defer c.Close()
	if c.Recovery.CorruptRecords == 0 {
		t.Fatalf("recovery saw no corruption after byte flip")
	}
	hits := 0
	for _, k := range []string{"alpha", "beta", "gamma"} {
		if _, ok := c.Get(k); ok {
			hits++
		}
	}
	if hits != 2 {
		t.Errorf("%d of 3 cells survive one corrupt record, want 2", hits)
	}
	// The lost cell is recomputable: a fresh Put must restore it.
	if err := c.Put("beta", []byte(`{"cell":"beta"}`)); err != nil {
		t.Fatalf("re-Put: %v", err)
	}
	if _, ok := c.Get("beta"); !ok {
		t.Errorf("re-Put cell still missing")
	}
}

// A torn tail (partial final record after a crash) must cost only the final
// cell; recovery truncates it and earlier cells hit.
func TestTornTailCostsOnlyLastCell(t *testing.T) {
	dir := t.TempDir()
	writeThree(t, dir)

	log := filepath.Join(dir, "log.bin")
	buf, err := os.ReadFile(log)
	if err != nil {
		t.Fatalf("read journal: %v", err)
	}
	if err := os.WriteFile(log, buf[:len(buf)-5], 0o644); err != nil {
		t.Fatalf("tear journal: %v", err)
	}

	c, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen torn: %v", err)
	}
	defer c.Close()
	if c.Recovery.TruncatedBytes == 0 {
		t.Errorf("recovery reports no truncation after torn tail")
	}
	if _, ok := c.Get("alpha"); !ok {
		t.Errorf("alpha lost to an unrelated torn tail")
	}
	if _, ok := c.Get("beta"); !ok {
		t.Errorf("beta lost to an unrelated torn tail")
	}
	if _, ok := c.Get("gamma"); ok {
		t.Errorf("torn final record still served")
	}
	// The journal stays appendable after recovery.
	if err := c.Put("gamma", []byte(`{"cell":"gamma"}`)); err != nil {
		t.Fatalf("Put after torn recovery: %v", err)
	}
}
