package spec

// A minimal YAML-subset parser, just enough for experiment specs without a
// dependency: block mappings and sequences by indentation, "- " list items
// with inline first entries, flow sequences of scalars ("[a, b]"), single-
// and double-quoted strings, '#' comments, and bool/int/float/null scalar
// typing.  Anchors, multi-document streams, flow mappings, tags and
// multiline strings are out of scope and reported as errors where they
// would change meaning.  The parse result is a JSON-marshalable tree
// (map[string]any / []any / scalars) that Parse round-trips through
// encoding/json into the typed Spec with DisallowUnknownFields, so typos in
// keys fail loudly instead of being dropped.

import (
	"fmt"
	"strconv"
	"strings"
)

type yamlLine struct {
	indent int
	text   string // content with indentation and comments stripped
	n      int    // 1-based source line
}

type yamlParser struct {
	lines []yamlLine
	pos   int
}

func parseYAML(data []byte) (any, error) {
	raw := strings.Split(string(data), "\n")
	lines := make([]yamlLine, 0, len(raw))
	for i, l := range raw {
		if strings.Contains(l, "\t") && strings.TrimLeft(l, " \t") != "" &&
			strings.IndexByte(l, '\t') < len(l)-len(strings.TrimLeft(l, " \t")) {
			return nil, fmt.Errorf("yaml line %d: tab in indentation", i+1)
		}
		text := stripComment(l)
		trimmed := strings.TrimRight(text, " \t")
		content := strings.TrimLeft(trimmed, " ")
		if content == "" || content == "---" {
			continue
		}
		lines = append(lines, yamlLine{indent: len(trimmed) - len(content), text: content, n: i + 1})
	}
	if len(lines) == 0 {
		return map[string]any{}, nil
	}
	p := &yamlParser{lines: lines}
	v, err := p.parseNode(lines[0].indent)
	if err != nil {
		return nil, err
	}
	if p.pos != len(p.lines) {
		l := p.lines[p.pos]
		return nil, fmt.Errorf("yaml line %d: unexpected content %q (bad indentation?)", l.n, l.text)
	}
	return v, nil
}

// stripComment removes a trailing '# ...' comment, respecting quotes: a '#'
// inside a quoted string is content, and per YAML a comment '#' must follow
// whitespace (or start the line).
func stripComment(l string) string {
	inSingle, inDouble := false, false
	for i := 0; i < len(l); i++ {
		switch c := l[i]; {
		case c == '\'' && !inDouble:
			inSingle = !inSingle
		case c == '"' && !inSingle:
			if !inDouble || i == 0 || l[i-1] != '\\' {
				inDouble = !inDouble
			}
		case c == '#' && !inSingle && !inDouble:
			if i == 0 || l[i-1] == ' ' || l[i-1] == '\t' {
				return l[:i]
			}
		}
	}
	return l
}

func (p *yamlParser) cur() (yamlLine, bool) {
	if p.pos >= len(p.lines) {
		return yamlLine{}, false
	}
	return p.lines[p.pos], true
}

// parseNode parses the block node whose lines sit at exactly indent.
func (p *yamlParser) parseNode(indent int) (any, error) {
	l, ok := p.cur()
	if !ok || l.indent != indent {
		return nil, nil
	}
	if l.text == "-" || strings.HasPrefix(l.text, "- ") {
		return p.parseSequence(indent)
	}
	return p.parseMapping(indent)
}

func (p *yamlParser) parseSequence(indent int) (any, error) {
	var out []any
	for {
		l, ok := p.cur()
		if !ok || l.indent != indent || (l.text != "-" && !strings.HasPrefix(l.text, "- ")) {
			return out, nil
		}
		rest := strings.TrimSpace(strings.TrimPrefix(l.text, "-"))
		if rest == "" {
			p.pos++
			next, ok := p.cur()
			if !ok || next.indent <= indent {
				out = append(out, nil)
				continue
			}
			v, err := p.parseNode(next.indent)
			if err != nil {
				return nil, err
			}
			out = append(out, v)
			continue
		}
		if key, _, isMap := splitKey(rest); isMap && key != "" {
			// "- key: value" starts an inline mapping whose further entries
			// are indented to the column where the key begins.
			inner := l.indent + (len(l.text) - len(rest))
			p.lines[p.pos] = yamlLine{indent: inner, text: rest, n: l.n}
			v, err := p.parseMapping(inner)
			if err != nil {
				return nil, err
			}
			out = append(out, v)
			continue
		}
		v, err := parseScalar(rest, l.n)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
		p.pos++
	}
}

func (p *yamlParser) parseMapping(indent int) (any, error) {
	out := map[string]any{}
	for {
		l, ok := p.cur()
		if !ok || l.indent != indent {
			return out, nil
		}
		if l.text == "-" || strings.HasPrefix(l.text, "- ") {
			return nil, fmt.Errorf("yaml line %d: sequence item inside mapping", l.n)
		}
		key, val, isMap := splitKey(l.text)
		if !isMap {
			return nil, fmt.Errorf("yaml line %d: expected 'key: value', got %q", l.n, l.text)
		}
		key = unquoteKey(key)
		if _, dup := out[key]; dup {
			return nil, fmt.Errorf("yaml line %d: duplicate key %q", l.n, key)
		}
		p.pos++
		if val == "" {
			next, ok := p.cur()
			if ok && next.indent > indent {
				v, err := p.parseNode(next.indent)
				if err != nil {
					return nil, err
				}
				out[key] = v
			} else {
				out[key] = nil
			}
			continue
		}
		v, err := parseScalar(val, l.n)
		if err != nil {
			return nil, err
		}
		out[key] = v
	}
}

// splitKey finds the top-level "key: value" split of a line: the first ':'
// outside quotes that ends the line or is followed by a space.
func splitKey(s string) (key, val string, ok bool) {
	inSingle, inDouble := false, false
	for i := 0; i < len(s); i++ {
		switch c := s[i]; {
		case c == '\'' && !inDouble:
			inSingle = !inSingle
		case c == '"' && !inSingle:
			if !inDouble || i == 0 || s[i-1] != '\\' {
				inDouble = !inDouble
			}
		case c == ':' && !inSingle && !inDouble:
			if i == len(s)-1 {
				return strings.TrimSpace(s[:i]), "", true
			}
			if s[i+1] == ' ' {
				return strings.TrimSpace(s[:i]), strings.TrimSpace(s[i+1:]), true
			}
		}
	}
	return "", "", false
}

func unquoteKey(k string) string {
	if len(k) >= 2 {
		if (k[0] == '"' && k[len(k)-1] == '"') || (k[0] == '\'' && k[len(k)-1] == '\'') {
			if v, err := parseScalar(k, 0); err == nil {
				if s, ok := v.(string); ok {
					return s
				}
			}
		}
	}
	return k
}

func parseScalar(s string, line int) (any, error) {
	s = strings.TrimSpace(s)
	switch {
	case s == "":
		return nil, nil
	case s[0] == '[':
		return parseFlowSeq(s, line)
	case s[0] == '{':
		return nil, fmt.Errorf("yaml line %d: flow mappings are not supported", line)
	case s[0] == '&' || s[0] == '*' || s[0] == '|' || s[0] == '>':
		return nil, fmt.Errorf("yaml line %d: anchors/aliases/block scalars are not supported", line)
	case s[0] == '"':
		if len(s) < 2 || s[len(s)-1] != '"' {
			return nil, fmt.Errorf("yaml line %d: unterminated double-quoted string", line)
		}
		return strconv.Unquote(s)
	case s[0] == '\'':
		if len(s) < 2 || s[len(s)-1] != '\'' {
			return nil, fmt.Errorf("yaml line %d: unterminated single-quoted string", line)
		}
		return strings.ReplaceAll(s[1:len(s)-1], "''", "'"), nil
	}
	switch s {
	case "true", "True":
		return true, nil
	case "false", "False":
		return false, nil
	case "null", "Null", "~":
		return nil, nil
	}
	if i, err := strconv.ParseInt(s, 0, 64); err == nil {
		return i, nil
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return f, nil
	}
	return s, nil
}

func parseFlowSeq(s string, line int) (any, error) {
	if s[len(s)-1] != ']' {
		return nil, fmt.Errorf("yaml line %d: unterminated flow sequence %q", line, s)
	}
	inner := strings.TrimSpace(s[1 : len(s)-1])
	out := []any{}
	if inner == "" {
		return out, nil
	}
	start, depth := 0, 0
	inSingle, inDouble := false, false
	emit := func(end int) error {
		item := strings.TrimSpace(inner[start:end])
		if item == "" {
			return fmt.Errorf("yaml line %d: empty item in flow sequence", line)
		}
		v, err := parseScalar(item, line)
		if err != nil {
			return err
		}
		out = append(out, v)
		start = end + 1
		return nil
	}
	for i := 0; i < len(inner); i++ {
		switch c := inner[i]; {
		case c == '\'' && !inDouble:
			inSingle = !inSingle
		case c == '"' && !inSingle:
			if !inDouble || i == 0 || inner[i-1] != '\\' {
				inDouble = !inDouble
			}
		case inSingle || inDouble:
		case c == '[':
			depth++
		case c == ']':
			depth--
		case c == ',' && depth == 0:
			if err := emit(i); err != nil {
				return nil, err
			}
		}
	}
	if err := emit(len(inner)); err != nil {
		return nil, err
	}
	return out, nil
}
