// Package spec defines the declarative experiment specification of cdagx —
// what to measure, over which workloads, on which machine catalog entries —
// and compiles it into a validated intermediate representation of
// content-addressed experiment cells.  The spec names intent; the
// deterministic engines behind the Workspace seam define execution; the
// runner (internal/exp/run) only ever computes the delta.
package spec

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"

	"cdagio/internal/serve"
)

// Spec is the top-level experiment specification, decodable from strict
// JSON or from the YAML subset of yaml.go.
type Spec struct {
	// Name identifies the spec in outputs.
	Name string `json:"name"`
	// Machines names catalog machines (internal/machine) the machine-
	// dependent experiments evaluate against, in report order.  Aliases
	// ("bgq", "xt5") are accepted.
	Machines []string `json:"machines,omitempty"`
	// Workloads declares the named generator graphs the experiments run on.
	Workloads []Workload `json:"workloads,omitempty"`
	// Experiments is the measurement matrix.
	Experiments []Experiment `json:"experiments"`
}

// Workload is a named generator spec.  The generator fields are serve's
// GenSpec verbatim, so a workload admits, builds and content-hashes exactly
// like a daemon upload of the same spec.
type Workload struct {
	Name string `json:"name"`
	serve.GenSpec
}

// Experiment is one named measurement over an optional workload.  Slice
// fields (S, Policies, Schedules, Nodes) are matrix axes — the compiler
// expands their cross product into cells; scalar fields parameterize every
// cell of the experiment.
type Experiment struct {
	Name     string `json:"name"`
	Title    string `json:"title,omitempty"`
	Kind     string `json:"kind"`
	Workload string `json:"workload,omitempty"`
	// Heavy marks the experiment skippable under `cdagx run -short`.
	Heavy bool `json:"heavy,omitempty"`

	// Matrix axes.
	S         []int    `json:"s,omitempty"`
	Policies  []string `json:"policies,omitempty"`
	Schedules []string `json:"schedules,omitempty"`
	Nodes     []int    `json:"nodes,omitempty"`

	// Engine parameters.
	Candidates int    `json:"candidates,omitempty"`
	Variant    string `json:"variant,omitempty"`
	MaxStates  int    `json:"max_states,omitempty"`
	Owner      string `json:"owner,omitempty"`
	Bound      string `json:"bound,omitempty"`

	// P-RBW topology parameters.
	Assignment   string `json:"assignment,omitempty"`
	Grain        int    `json:"grain,omitempty"`
	P            int    `json:"p,omitempty"`
	S1           int    `json:"s1,omitempty"`
	SL           int    `json:"sl,omitempty"`
	ProcsPerNode int    `json:"procs_per_node,omitempty"`
	RegWords     int    `json:"reg_words,omitempty"`
	CacheWords   int    `json:"cache_words,omitempty"`
	MemWords     int    `json:"mem_words,omitempty"`

	// Balance / solver / graphstat parameters.
	Family       string  `json:"family,omitempty"`
	Machine      string  `json:"machine,omitempty"`
	Dim          int     `json:"dim,omitempty"`
	N            int     `json:"n,omitempty"`
	Steps        int     `json:"steps,omitempty"`
	Iterations   int     `json:"iterations,omitempty"`
	MSweep       []int   `json:"m_sweep,omitempty"`
	MaxDim       int     `json:"max_dim,omitempty"`
	Tolerance    float64 `json:"tolerance,omitempty"`
	Restart      int     `json:"restart,omitempty"`
	Alpha        float64 `json:"alpha,omitempty"`
	CriticalPath bool    `json:"critical_path,omitempty"`
}

// Parse decodes a spec from JSON (if the document starts with '{') or the
// YAML subset otherwise.  Unknown fields are boundary errors either way.
func Parse(data []byte) (*Spec, error) {
	trimmed := bytes.TrimSpace(data)
	var doc []byte
	if len(trimmed) > 0 && trimmed[0] == '{' {
		doc = trimmed
	} else {
		tree, err := parseYAML(data)
		if err != nil {
			return nil, err
		}
		doc, err = json.Marshal(tree)
		if err != nil {
			return nil, fmt.Errorf("spec: canonicalize yaml: %w", err)
		}
	}
	dec := json.NewDecoder(bytes.NewReader(doc))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("spec: %w", err)
	}
	return &s, nil
}

// Load reads and parses a spec file.
func Load(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("spec: %w", err)
	}
	s, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}
