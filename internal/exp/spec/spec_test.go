package spec

import (
	"strings"
	"testing"
)

const yamlSpec = `
# a comment
name: demo
machines: [bgq, xt5]
workloads:
  - name: heat
    kind: heat
    n: 16
    steps: 4
experiments:
  - name: t1
    kind: table1
  - name: heat-play
    kind: play
    workload: heat
    s: [4, 8]
    policies: [belady, lru]
`

const jsonSpec = `{
  "name": "demo",
  "machines": ["bgq", "xt5"],
  "workloads": [{"name": "heat", "kind": "heat", "n": 16, "steps": 4}],
  "experiments": [
    {"name": "t1", "kind": "table1"},
    {"name": "heat-play", "kind": "play", "workload": "heat",
     "s": [4, 8], "policies": ["belady", "lru"]}
  ]
}`

func compileText(t *testing.T, text string) *IR {
	t.Helper()
	s, err := Parse([]byte(text))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	ir, err := Compile(s, Options{})
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return ir
}

// The YAML and JSON forms of the same spec must compile to identical cells —
// same count, same keys, same canonical bodies — since the key is the cache
// identity.
func TestYAMLAndJSONCompileIdentically(t *testing.T) {
	y := compileText(t, yamlSpec)
	j := compileText(t, jsonSpec)
	if len(y.Cells) != len(j.Cells) {
		t.Fatalf("cell counts differ: yaml %d, json %d", len(y.Cells), len(j.Cells))
	}
	if len(y.Cells) != 5 { // 1 table1 + 2 S × 2 policies
		t.Fatalf("got %d cells, want 5", len(y.Cells))
	}
	for i := range y.Cells {
		if y.Cells[i].Key != j.Cells[i].Key {
			t.Errorf("cell %d: keys differ:\n  yaml %s\n  json %s", i, y.Cells[i].Key, j.Cells[i].Key)
		}
		if string(y.Cells[i].Body) != string(j.Cells[i].Body) {
			t.Errorf("cell %d: bodies differ: %q vs %q", i, y.Cells[i].Body, j.Cells[i].Body)
		}
	}
}

// Reformatting a spec (comments, quoting, flow vs block sequences) must not
// move any cell key.
func TestKeysSurviveReformatting(t *testing.T) {
	reformatted := `
name: demo
machines:
  - "bgq"
  - 'xt5'
workloads:
  - name: heat
    kind: "heat"
    n: 16
    steps: 4
experiments:
  - name: t1
    kind: table1
  - name: heat-play
    kind: play
    workload: heat
    s:
      - 4
      - 8
    policies:
      - BELADY
      - LRU
`
	a := compileText(t, yamlSpec)
	b := compileText(t, reformatted)
	if len(a.Cells) != len(b.Cells) {
		t.Fatalf("cell counts differ: %d vs %d", len(a.Cells), len(b.Cells))
	}
	for i := range a.Cells {
		if a.Cells[i].Key != b.Cells[i].Key {
			t.Errorf("cell %d: key moved under reformatting", i)
		}
	}
}

func TestCompileBoundaryErrors(t *testing.T) {
	cases := []struct {
		name, text, want string
	}{
		{"unknown gen kind", `
name: x
workloads:
  - name: w
    kind: quicksort
    n: 4
experiments:
  - name: e
    kind: graphstat
    workload: w
`, "unknown generator kind"},
		{"unknown machine", `
name: x
machines: [cray-3]
experiments:
  - name: e
    kind: table1
`, "spec machines"},
		{"unknown experiment kind", `
name: x
experiments:
  - name: e
    kind: frobnicate
`, "unknown experiment kind"},
		{"unknown workload reference", `
name: x
experiments:
  - name: e
    kind: wmax
    workload: nope
`, "unknown workload"},
		{"duplicate workload", `
name: x
workloads:
  - name: w
    kind: chain
    n: 4
  - name: w
    kind: chain
    n: 5
experiments:
  - name: e
    kind: graphstat
    workload: w
`, "duplicate name"},
		{"out of domain s", `
name: x
workloads:
  - name: w
    kind: chain
    n: 4
experiments:
  - name: e
    kind: play
    workload: w
    s: [0]
`, "out of domain"},
		{"oversized workload", `
name: x
workloads:
  - name: w
    kind: jacobi
    dim: 3
    n: 2000
    steps: 2000
experiments:
  - name: e
    kind: graphstat
    workload: w
`, ""},
		{"blockgrid on non-jacobi", `
name: x
workloads:
  - name: w
    kind: matmul
    n: 4
experiments:
  - name: e
    kind: prbw
    workload: w
    assignment: blockgrid
    nodes: [2]
    procs_per_node: 2
    reg_words: 8
    cache_words: 96
    mem_words: 1024
`, "needs a jacobi workload"},
		{"unknown spec field", `
name: x
frobs: 3
experiments:
  - name: e
    kind: table1
`, "unknown field"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, err := Parse([]byte(tc.text))
			if err == nil {
				_, err = Compile(s, Options{})
			}
			if err == nil {
				t.Fatalf("compiled without error, want one containing %q", tc.want)
			}
			if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

func TestYAMLParserRejects(t *testing.T) {
	for _, text := range []string{
		"name: a\nname: b\nexperiments:\n  - name: e\n    kind: table1\n", // duplicate key
		"\tname: x\n",                           // tab indentation
		"name: x\nexperiments: {inline: map}\n", // flow mapping
	} {
		if _, err := Parse([]byte(text)); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", text)
		}
	}
}

// Engine-expressible cells carry canonical daemon request bodies.
func TestEngineCellBodies(t *testing.T) {
	ir := compileText(t, `
name: x
workloads:
  - name: w
    kind: heat
    n: 16
    steps: 4
experiments:
  - name: sim
    kind: sweep
    workload: w
    s: [8]
  - name: an
    kind: analyze
    workload: w
    s: [8]
`)
	if len(ir.Cells) != 2 {
		t.Fatalf("got %d cells, want 2", len(ir.Cells))
	}
	if ir.Cells[0].Engine != "simulate" {
		t.Errorf("sweep cell engine = %q, want simulate (topo/1-node/no-owner lowers to one request)", ir.Cells[0].Engine)
	}
	if got, want := string(ir.Cells[0].Body), `{"nodes":1,"fast_words":8,"policy":"belady"}`; got != want {
		t.Errorf("simulate body = %s, want %s", got, want)
	}
	if ir.Cells[1].Engine != "analyze" {
		t.Errorf("analyze cell engine = %q", ir.Cells[1].Engine)
	}
	if got, want := string(ir.Cells[1].Body), `{"s":8}`; got != want {
		t.Errorf("analyze body = %s, want %s", got, want)
	}
}
