package spec

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"cdagio/internal/cdag"
	"cdagio/internal/machine"
	"cdagio/internal/serve"
)

// Options configures compilation.  The zero value admits workloads under the
// same ceilings a default cdagd applies at upload time, so a spec that
// compiles here will not be rejected by a daemon in -remote mode.
type Options struct {
	// Limits bounds workload graph sizes; zero means serve's defaults.
	Limits cdag.JSONLimits
	// SolverLimit is the solver count assumed by the footprint estimate;
	// zero means 1.
	SolverLimit int
	// Budget bounds the estimated per-workload Workspace footprint in
	// bytes; zero means serve.DefaultCacheBudget.
	Budget int64
}

// Params is the canonical parameter record of one cell.  Its JSON form —
// fixed field order, zero values omitted — is part of the cell's content
// address, so two spec files describing the same measurement share a cache
// entry regardless of formatting.
type Params struct {
	S            int     `json:"s,omitempty"`
	Policy       string  `json:"policy,omitempty"`
	Schedule     string  `json:"schedule,omitempty"`
	Nodes        int     `json:"nodes,omitempty"`
	Owner        string  `json:"owner,omitempty"`
	Candidates   int     `json:"candidates,omitempty"`
	Variant      string  `json:"variant,omitempty"`
	MaxStates    int     `json:"max_states,omitempty"`
	Bound        string  `json:"bound,omitempty"`
	Assignment   string  `json:"assignment,omitempty"`
	Grain        int     `json:"grain,omitempty"`
	P            int     `json:"p,omitempty"`
	S1           int     `json:"s1,omitempty"`
	SL           int     `json:"sl,omitempty"`
	ProcsPerNode int     `json:"procs_per_node,omitempty"`
	RegWords     int     `json:"reg_words,omitempty"`
	CacheWords   int     `json:"cache_words,omitempty"`
	MemWords     int     `json:"mem_words,omitempty"`
	Family       string  `json:"family,omitempty"`
	Machine      string  `json:"machine,omitempty"`
	Dim          int     `json:"dim,omitempty"`
	N            int     `json:"n,omitempty"`
	Steps        int     `json:"steps,omitempty"`
	Iterations   int     `json:"iterations,omitempty"`
	MSweep       []int   `json:"m_sweep,omitempty"`
	MaxDim       int     `json:"max_dim,omitempty"`
	Tolerance    float64 `json:"tolerance,omitempty"`
	Restart      int     `json:"restart,omitempty"`
	Alpha        float64 `json:"alpha,omitempty"`
	CriticalPath bool    `json:"critical_path,omitempty"`
}

// Cell is one compiled analysis job: a kind, its canonical parameters, and
// a content-address key.  Cells whose Engine is non-empty carry a canonical
// daemon request body and can be dispatched to a remote cdagd verbatim;
// local execution feeds the identical body through serve.RunEngine, so the
// result bytes agree either way.
type Cell struct {
	// Exp and ExpIndex locate the owning experiment; Index is the cell's
	// position within it.
	Exp      string
	ExpIndex int
	Index    int
	// Kind is the operation ("table1", "balance", "solver", "graphstat",
	// "analyze", "wmax", "optimal", "play", "prbw", "sweep").
	Kind string
	// Workload names the generator graph, empty for graph-free kinds.
	Workload string
	// GraphID is the serve-compatible content hash of the workload graph,
	// empty for graph-free kinds.
	GraphID string
	// Engine is the daemon engine name when the cell is expressible as one
	// daemon request; empty means local-only execution.
	Engine string
	// Body is the canonical engine request body when Engine is non-empty.
	Body []byte
	// Params is the canonical parameter record.
	Params Params
	// Key is the cell's content address: a hash over the graph ID, kind,
	// canonical parameters and (for machine-dependent kinds) the resolved
	// machine fingerprints.
	Key string
	// Heavy marks the cell skippable under -short runs.
	Heavy bool
}

// Label renders a short display name for the cell.
func (c *Cell) Label() string {
	return fmt.Sprintf("%s/%d", c.Exp, c.Index)
}

// IR is a validated, normalized spec: resolved machines, admitted
// workloads, and the expanded cell list in deterministic order.
type IR struct {
	Name        string
	Machines    []machine.Machine
	Workloads   []Workload
	Experiments []Experiment
	Cells       []Cell

	workloadIdx map[string]int
}

// WorkloadByName returns the named workload.
func (ir *IR) WorkloadByName(name string) (*Workload, bool) {
	i, ok := ir.workloadIdx[name]
	if !ok {
		return nil, false
	}
	return &ir.Workloads[i], true
}

// CellsOf returns the cells of experiment index e, in order.
func (ir *IR) CellsOf(e int) []*Cell {
	var out []*Cell
	for i := range ir.Cells {
		if ir.Cells[i].ExpIndex == e {
			out = append(out, &ir.Cells[i])
		}
	}
	return out
}

// Compile validates the spec and lowers it into an IR.  All validation is
// boundary-time: unknown kinds, unknown machines, out-of-domain or oversized
// workloads (via serve's admission estimates) and malformed experiment
// matrices fail here, before any graph is built.
func Compile(s *Spec, opts Options) (*IR, error) {
	if opts.Limits == (cdag.JSONLimits{}) {
		opts.Limits = serve.DefaultJSONLimits()
	}
	if opts.SolverLimit <= 0 {
		opts.SolverLimit = 1
	}
	if opts.Budget <= 0 {
		opts.Budget = serve.DefaultCacheBudget
	}
	ir := &IR{Name: s.Name, workloadIdx: map[string]int{}}
	if ir.Name == "" {
		ir.Name = "experiments"
	}

	for _, name := range s.Machines {
		m, err := machine.Lookup(name)
		if err != nil {
			return nil, fmt.Errorf("spec machines: %w", err)
		}
		ir.Machines = append(ir.Machines, m)
	}

	for _, w := range s.Workloads {
		if w.Name == "" {
			return nil, fmt.Errorf("workload with kind %q: missing name", w.Kind)
		}
		if _, dup := ir.workloadIdx[w.Name]; dup {
			return nil, fmt.Errorf("workload %q: duplicate name", w.Name)
		}
		if !serve.KnownGenKind(w.Kind) {
			return nil, fmt.Errorf("workload %q: unknown generator kind %q (known: %s)",
				w.Name, w.Kind, strings.Join(serve.GenKinds(), ", "))
		}
		if v, _ := serve.GenEstimate(&w.GenSpec); v <= 0 {
			return nil, fmt.Errorf("workload %q: generator %q parameters out of domain", w.Name, w.Kind)
		}
		if err := serve.AdmitGenSpec(&w.GenSpec, opts.Limits, opts.SolverLimit, opts.Budget); err != nil {
			return nil, fmt.Errorf("workload %q: %w", w.Name, err)
		}
		ir.workloadIdx[w.Name] = len(ir.Workloads)
		ir.Workloads = append(ir.Workloads, w)
	}

	if len(s.Experiments) == 0 {
		return nil, fmt.Errorf("spec %q: no experiments", ir.Name)
	}
	seen := map[string]bool{}
	for ei := range s.Experiments {
		e := &s.Experiments[ei]
		if e.Name == "" {
			return nil, fmt.Errorf("experiment %d: missing name", ei)
		}
		if seen[e.Name] {
			return nil, fmt.Errorf("experiment %q: duplicate name", e.Name)
		}
		seen[e.Name] = true
		cells, err := compileExperiment(ir, ei, e)
		if err != nil {
			return nil, fmt.Errorf("experiment %q: %w", e.Name, err)
		}
		ir.Experiments = append(ir.Experiments, *e)
		ir.Cells = append(ir.Cells, cells...)
	}
	return ir, nil
}

// graphCellKinds require a workload; graph-free kinds must not name one.
var graphCellKinds = map[string]bool{
	"graphstat": true, "analyze": true, "wmax": true, "optimal": true,
	"play": true, "prbw": true, "sweep": true,
}

var expKinds = []string{
	"analyze", "balance", "graphstat", "optimal", "play", "prbw",
	"solver", "sweep", "table1", "wmax",
}

func compileExperiment(ir *IR, ei int, e *Experiment) ([]Cell, error) {
	known := false
	for _, k := range expKinds {
		if e.Kind == k {
			known = true
		}
	}
	if !known {
		return nil, fmt.Errorf("unknown experiment kind %q (known: %s)", e.Kind, strings.Join(expKinds, ", "))
	}

	var w *Workload
	if graphCellKinds[e.Kind] {
		if e.Workload == "" {
			return nil, fmt.Errorf("kind %q needs a workload", e.Kind)
		}
		var ok bool
		if w, ok = ir.WorkloadByName(e.Workload); !ok {
			return nil, fmt.Errorf("unknown workload %q", e.Workload)
		}
	} else if e.Workload != "" {
		return nil, fmt.Errorf("kind %q does not take a workload", e.Kind)
	}

	graphID := ""
	if w != nil {
		graphID = serve.HashID([]byte(serve.GenKey(&w.GenSpec)))
	}

	var cells []Cell
	add := func(params Params, engine string, body []byte, machines []machine.Machine) {
		c := Cell{
			Exp: e.Name, ExpIndex: ei, Index: len(cells),
			Kind: e.Kind, Workload: e.Workload, GraphID: graphID,
			Engine: engine, Body: body, Params: params, Heavy: e.Heavy,
		}
		c.Key = cellKey(graphID, e.Kind, params, machines)
		cells = append(cells, c)
	}

	marshal := func(v any) []byte {
		b, err := json.Marshal(v)
		if err != nil {
			panic(fmt.Sprintf("exp/spec: marshal request body: %v", err))
		}
		return b
	}

	switch e.Kind {
	case "table1":
		if len(ir.Machines) == 0 {
			return nil, fmt.Errorf("table1 needs a non-empty machines list")
		}
		add(Params{}, "", nil, ir.Machines)

	case "balance":
		switch e.Family {
		case "cg", "gmres":
			ref, err := refMachine(e)
			if err != nil {
				return nil, err
			}
			_ = ref
			if len(ir.Machines) == 0 {
				return nil, fmt.Errorf("balance family %q needs a non-empty machines list", e.Family)
			}
			if e.Dim <= 0 || e.N <= 0 {
				return nil, fmt.Errorf("balance family %q needs dim > 0 and n > 0", e.Family)
			}
			p := Params{Family: e.Family, Machine: e.Machine, Dim: e.Dim, N: e.N}
			if e.Family == "cg" {
				if e.Iterations <= 0 {
					return nil, fmt.Errorf("balance family cg needs iterations > 0")
				}
				p.Iterations = e.Iterations
			} else {
				if len(e.MSweep) == 0 {
					return nil, fmt.Errorf("balance family gmres needs a non-empty m_sweep")
				}
				p.MSweep = e.MSweep
			}
			ms, err := balanceMachines(ir, e)
			if err != nil {
				return nil, err
			}
			add(p, "", nil, ms)
		case "jacobi":
			if _, err := refMachine(e); err != nil {
				return nil, err
			}
			if e.MaxDim <= 0 {
				return nil, fmt.Errorf("balance family jacobi needs max_dim > 0")
			}
			ms, err := balanceMachines(ir, e)
			if err != nil {
				return nil, err
			}
			add(Params{Family: e.Family, Machine: e.Machine, MaxDim: e.MaxDim}, "", nil, ms)
		case "composite":
			if e.N <= 0 {
				return nil, fmt.Errorf("balance family composite needs n > 0")
			}
			add(Params{Family: e.Family, N: e.N}, "", nil, nil)
		default:
			return nil, fmt.Errorf("unknown balance family %q (want cg, gmres, jacobi or composite)", e.Family)
		}

	case "solver":
		switch e.Family {
		case "heat":
			if e.N <= 0 || e.Steps <= 0 {
				return nil, fmt.Errorf("solver family heat needs n > 0 and steps > 0")
			}
			alpha := e.Alpha
			if alpha == 0 {
				alpha = 0.4
			}
			add(Params{Family: e.Family, N: e.N, Steps: e.Steps, Alpha: alpha}, "", nil, nil)
		case "cg":
			if e.Dim <= 0 || e.N <= 0 || e.Tolerance <= 0 {
				return nil, fmt.Errorf("solver family cg needs dim > 0, n > 0 and tolerance > 0")
			}
			add(Params{Family: e.Family, Dim: e.Dim, N: e.N, Tolerance: e.Tolerance}, "", nil, nil)
		case "gmres":
			if e.N <= 0 || e.Tolerance <= 0 || e.Restart <= 0 {
				return nil, fmt.Errorf("solver family gmres needs n > 0, tolerance > 0 and restart > 0")
			}
			add(Params{Family: e.Family, N: e.N, Tolerance: e.Tolerance, Restart: e.Restart}, "", nil, nil)
		default:
			return nil, fmt.Errorf("unknown solver family %q (want heat, cg or gmres)", e.Family)
		}

	case "graphstat":
		add(Params{CriticalPath: e.CriticalPath}, "", nil, nil)

	case "wmax":
		body := marshal(struct {
			Candidates int `json:"candidates,omitempty"`
		}{e.Candidates})
		add(Params{Candidates: e.Candidates}, "wmax", body, nil)

	case "analyze":
		if len(e.S) == 0 {
			return nil, fmt.Errorf("analyze needs a non-empty s list")
		}
		for _, s := range e.S {
			if s < 1 {
				return nil, fmt.Errorf("analyze: s = %d out of domain", s)
			}
			body := marshal(struct {
				S          int `json:"s"`
				Candidates int `json:"candidates,omitempty"`
			}{s, e.Candidates})
			add(Params{S: s, Candidates: e.Candidates}, "analyze", body, nil)
		}

	case "optimal":
		if len(e.S) == 0 {
			return nil, fmt.Errorf("optimal needs a non-empty s list")
		}
		variant, err := normVariant(e.Variant)
		if err != nil {
			return nil, err
		}
		for _, s := range e.S {
			if s < 1 {
				return nil, fmt.Errorf("optimal: s = %d out of domain", s)
			}
			body := marshal(struct {
				Variant   string `json:"variant,omitempty"`
				S         int    `json:"s"`
				MaxStates int    `json:"max_states,omitempty"`
			}{variant, s, e.MaxStates})
			add(Params{S: s, Variant: variant, MaxStates: e.MaxStates}, "optimal", body, nil)
		}

	case "play":
		if len(e.S) == 0 {
			return nil, fmt.Errorf("play needs a non-empty s list")
		}
		variant, err := normVariant(e.Variant)
		if err != nil {
			return nil, err
		}
		policies, err := normPolicies(e.Policies)
		if err != nil {
			return nil, err
		}
		for _, s := range e.S {
			if s < 1 {
				return nil, fmt.Errorf("play: s = %d out of domain", s)
			}
			for _, pol := range policies {
				body := marshal(struct {
					Variant string `json:"variant,omitempty"`
					S       int    `json:"s"`
					Policy  string `json:"policy,omitempty"`
				}{variant, s, pol})
				add(Params{S: s, Variant: variant, Policy: pol}, "play", body, nil)
			}
		}

	case "prbw":
		switch e.Assignment {
		case "", "single", "roundrobin":
			asg := e.Assignment
			if asg == "" {
				asg = "single"
			}
			if e.P < 1 || e.S1 < 1 || e.SL < 1 {
				return nil, fmt.Errorf("prbw assignment %q needs p, s1, sl > 0", asg)
			}
			body := marshal(struct {
				P          int    `json:"p"`
				S1         int    `json:"s1"`
				SL         int    `json:"sl"`
				Assignment string `json:"assignment,omitempty"`
				Grain      int    `json:"grain,omitempty"`
			}{e.P, e.S1, e.SL, asg, e.Grain})
			add(Params{P: e.P, S1: e.S1, SL: e.SL, Assignment: asg, Grain: e.Grain}, "prbw", body, nil)
		case "blockgrid":
			if !strings.EqualFold(w.Kind, "jacobi") {
				return nil, fmt.Errorf("prbw assignment blockgrid needs a jacobi workload, got %q", w.Kind)
			}
			if e.ProcsPerNode < 1 || e.RegWords < 1 || e.CacheWords < 1 || e.MemWords < 1 {
				return nil, fmt.Errorf("prbw assignment blockgrid needs procs_per_node, reg_words, cache_words, mem_words > 0")
			}
			nodes := e.Nodes
			if len(nodes) == 0 {
				return nil, fmt.Errorf("prbw assignment blockgrid needs a non-empty nodes list")
			}
			for _, nd := range nodes {
				if nd < 1 {
					return nil, fmt.Errorf("prbw: nodes = %d out of domain", nd)
				}
				add(Params{
					Assignment: "blockgrid", Nodes: nd, ProcsPerNode: e.ProcsPerNode,
					RegWords: e.RegWords, CacheWords: e.CacheWords, MemWords: e.MemWords,
				}, "", nil, nil)
			}
		default:
			return nil, fmt.Errorf("unknown prbw assignment %q (want single, roundrobin or blockgrid)", e.Assignment)
		}

	case "sweep":
		if len(e.S) == 0 {
			return nil, fmt.Errorf("sweep needs a non-empty s list")
		}
		policies, err := normPolicies(e.Policies)
		if err != nil {
			return nil, err
		}
		schedules := e.Schedules
		if len(schedules) == 0 {
			schedules = []string{"topo"}
		}
		nodes := e.Nodes
		if len(nodes) == 0 {
			nodes = []int{1}
		}
		switch e.Owner {
		case "":
		case "blockgrid":
			if !strings.EqualFold(w.Kind, "jacobi") {
				return nil, fmt.Errorf("sweep owner blockgrid needs a jacobi workload, got %q", w.Kind)
			}
		default:
			return nil, fmt.Errorf("unknown sweep owner %q (want blockgrid)", e.Owner)
		}
		switch e.Bound {
		case "":
		case "jacobi":
			if !strings.EqualFold(w.Kind, "jacobi") {
				return nil, fmt.Errorf("sweep bound jacobi needs a jacobi workload, got %q", w.Kind)
			}
		case "matmul":
			if !strings.EqualFold(w.Kind, "matmul") {
				return nil, fmt.Errorf("sweep bound matmul needs a matmul workload, got %q", w.Kind)
			}
		default:
			return nil, fmt.Errorf("unknown sweep bound %q (want jacobi or matmul)", e.Bound)
		}
		for _, sched := range schedules {
			switch sched {
			case "topo":
			case "skewed":
				if !strings.EqualFold(w.Kind, "jacobi") {
					return nil, fmt.Errorf("sweep schedule skewed needs a jacobi workload, got %q", w.Kind)
				}
			case "blocked":
				if !strings.EqualFold(w.Kind, "matmul") {
					return nil, fmt.Errorf("sweep schedule blocked needs a matmul workload, got %q", w.Kind)
				}
			default:
				return nil, fmt.Errorf("unknown sweep schedule %q (want topo, skewed or blocked)", sched)
			}
		}
		for _, s := range e.S {
			if s < 1 {
				return nil, fmt.Errorf("sweep: s = %d out of domain", s)
			}
			for _, pol := range policies {
				for _, sched := range schedules {
					for _, nd := range nodes {
						if nd < 1 {
							return nil, fmt.Errorf("sweep: nodes = %d out of domain", nd)
						}
						params := Params{S: s, Policy: pol, Schedule: sched, Nodes: nd, Owner: e.Owner, Bound: e.Bound}
						if sched == "topo" && e.Owner == "" && nd == 1 {
							// Expressible as one daemon simulate request.
							body := marshal(struct {
								Nodes     int    `json:"nodes"`
								FastWords int    `json:"fast_words"`
								Policy    string `json:"policy,omitempty"`
							}{nd, s, pol})
							add(params, "simulate", body, nil)
						} else {
							add(params, "", nil, nil)
						}
					}
				}
			}
		}
	}
	if len(cells) == 0 {
		return nil, fmt.Errorf("kind %q compiled to zero cells", e.Kind)
	}
	return cells, nil
}

// refMachine resolves the experiment's reference machine, required for
// balance families that derive processor counts from it.
func refMachine(e *Experiment) (machine.Machine, error) {
	if e.Machine == "" {
		return machine.Machine{}, fmt.Errorf("balance family %q needs a machine", e.Family)
	}
	m, err := machine.Lookup(e.Machine)
	if err != nil {
		return machine.Machine{}, err
	}
	return m, nil
}

// balanceMachines returns the machines a balance cell's result depends on:
// the spec's machine list plus the reference machine.
func balanceMachines(ir *IR, e *Experiment) ([]machine.Machine, error) {
	ms := append([]machine.Machine(nil), ir.Machines...)
	if e.Machine != "" {
		m, err := machine.Lookup(e.Machine)
		if err != nil {
			return nil, err
		}
		ms = append(ms, m)
	}
	return ms, nil
}

func normVariant(v string) (string, error) {
	switch strings.ToLower(v) {
	case "", "rbw":
		return "rbw", nil
	case "hongkung", "hk", "redblue":
		return "hongkung", nil
	default:
		return "", fmt.Errorf("unknown game variant %q (want rbw or hongkung)", v)
	}
}

func normPolicies(ps []string) ([]string, error) {
	if len(ps) == 0 {
		return []string{"belady"}, nil
	}
	out := make([]string, len(ps))
	for i, p := range ps {
		switch strings.ToLower(p) {
		case "belady":
			out[i] = "belady"
		case "lru":
			out[i] = "lru"
		default:
			return nil, fmt.Errorf("unknown eviction policy %q (want belady or lru)", p)
		}
	}
	return out, nil
}

// cellKey computes the content address of a cell.  Machine fingerprints are
// included only for machine-dependent kinds, so editing the catalog cannot
// serve stale balance rows while leaving graph-engine results cached.
func cellKey(graphID, kind string, params Params, machines []machine.Machine) string {
	h := sha256.New()
	io.WriteString(h, "cdagx/result/v1\x00")
	io.WriteString(h, graphID)
	h.Write([]byte{0})
	io.WriteString(h, kind)
	h.Write([]byte{0})
	pj, err := json.Marshal(params)
	if err != nil {
		panic(fmt.Sprintf("exp/spec: marshal params: %v", err))
	}
	h.Write(pj)
	for _, m := range machines {
		vb, _ := m.VerticalBalance()
		hb, _ := m.HorizontalBalance()
		fmt.Fprintf(h, "\x00%s|%d|%d|%g|%g|%g|%d", m.Name, m.Nodes, m.CoresPerNode,
			m.FlopsPerCore, vb, hb, m.CacheCapacityWords())
	}
	return hex.EncodeToString(h.Sum(nil))
}
