package plan

import (
	"testing"

	"cdagio/internal/exp/spec"
)

func TestPlanShape(t *testing.T) {
	s, err := spec.Parse([]byte(`
name: x
workloads:
  - name: used
    kind: heat
    n: 16
    steps: 4
  - name: unused
    kind: chain
    n: 8
experiments:
  - name: stats
    kind: graphstat
    workload: used
  - name: t1
    kind: table1
machines: [bgq]
`))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	ir, err := spec.Compile(s, spec.Options{})
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	p := New(ir)

	// Only referenced workloads get build jobs.
	if len(p.BuildJob) != 1 {
		t.Fatalf("got %d build jobs, want 1 (unused workloads are not built)", len(p.BuildJob))
	}
	buildID, ok := p.BuildJob["used"]
	if !ok {
		t.Fatalf("no build job for workload used")
	}

	if len(p.CellJobs) != 2 {
		t.Fatalf("got %d cell jobs, want 2", len(p.CellJobs))
	}
	// The graphstat cell depends on its build; the table1 cell on nothing.
	for _, id := range p.CellJobs {
		j := p.Jobs[id]
		switch j.Cell.Kind {
		case "graphstat":
			if len(j.Deps) != 1 || j.Deps[0] != buildID {
				t.Errorf("graphstat deps = %v, want [%d]", j.Deps, buildID)
			}
		case "table1":
			if len(j.Deps) != 0 {
				t.Errorf("table1 deps = %v, want none", j.Deps)
			}
		}
	}

	// One derive job per experiment, depending on exactly its cells, and the
	// whole job list is topologically ordered (deps precede dependents).
	derives := 0
	for _, j := range p.Jobs {
		if j.Kind == Derive {
			derives++
			if len(j.Deps) != 1 {
				t.Errorf("derive %q deps = %v, want one cell", j.Label, j.Deps)
			}
		}
		for _, d := range j.Deps {
			if d >= j.ID {
				t.Errorf("job %d (%s) depends on later job %d", j.ID, j.Label, d)
			}
		}
	}
	if derives != 2 {
		t.Errorf("got %d derive jobs, want 2", derives)
	}
}
