// Package plan lowers a compiled experiment IR into an explicit job DAG:
// one build job per referenced workload, one cell job per compiled cell
// depending on its build, and one derive job per experiment depending on its
// cells.  The DAG is purely declarative — the executor (internal/exp/run)
// walks it with a bounded worker pool and skips any cell job whose content
// address is already journaled.
package plan

import (
	"fmt"

	"cdagio/internal/exp/spec"
)

// JobKind classifies plan jobs.
type JobKind int

const (
	// Build materializes a workload graph and wraps it in a Workspace.
	Build JobKind = iota
	// CellJob runs one analysis cell against its built workload (or no
	// workload for graph-free kinds).
	CellJob
	// Derive renders one experiment's emitted tables and derived metrics
	// from its cell results.
	Derive
)

func (k JobKind) String() string {
	switch k {
	case Build:
		return "build"
	case CellJob:
		return "cell"
	case Derive:
		return "derive"
	default:
		return fmt.Sprintf("JobKind(%d)", int(k))
	}
}

// Job is one node of the DAG.
type Job struct {
	ID    int
	Kind  JobKind
	Label string
	// Workload names the generator graph (Build and workload-bearing
	// CellJob jobs).
	Workload string
	// Cell is the compiled cell (CellJob jobs).
	Cell *spec.Cell
	// Exp is the experiment index (Derive jobs).
	Exp int
	// Deps lists job IDs that must complete first.
	Deps []int
}

// Plan is the lowered DAG, jobs in a valid topological order.
type Plan struct {
	IR   *spec.IR
	Jobs []Job
	// BuildJob maps workload name to its Build job ID, for workloads
	// referenced by at least one cell.
	BuildJob map[string]int
	// CellJobs lists the IDs of all CellJob jobs, in cell order.
	CellJobs []int
}

// New lowers ir into its job DAG.  Ordering is deterministic: builds in
// workload declaration order (referenced ones only), then cells in compiled
// order, then one derive job per experiment.
func New(ir *spec.IR) *Plan {
	p := &Plan{IR: ir, BuildJob: map[string]int{}}

	referenced := map[string]bool{}
	for i := range ir.Cells {
		if ir.Cells[i].Workload != "" {
			referenced[ir.Cells[i].Workload] = true
		}
	}
	for i := range ir.Workloads {
		w := &ir.Workloads[i]
		if !referenced[w.Name] {
			continue
		}
		id := len(p.Jobs)
		p.BuildJob[w.Name] = id
		p.Jobs = append(p.Jobs, Job{
			ID: id, Kind: Build, Label: "build:" + w.Name, Workload: w.Name,
		})
	}

	cellsOf := make([][]int, len(ir.Experiments))
	for i := range ir.Cells {
		c := &ir.Cells[i]
		id := len(p.Jobs)
		job := Job{ID: id, Kind: CellJob, Label: c.Kind + ":" + c.Label(), Workload: c.Workload, Cell: c}
		if c.Workload != "" {
			job.Deps = []int{p.BuildJob[c.Workload]}
		}
		p.Jobs = append(p.Jobs, job)
		p.CellJobs = append(p.CellJobs, id)
		cellsOf[c.ExpIndex] = append(cellsOf[c.ExpIndex], id)
	}

	for ei := range ir.Experiments {
		id := len(p.Jobs)
		p.Jobs = append(p.Jobs, Job{
			ID: id, Kind: Derive, Label: "derive:" + ir.Experiments[ei].Name,
			Exp: ei, Deps: cellsOf[ei],
		})
	}
	return p
}
