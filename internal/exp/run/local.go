package run

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"strconv"
	"strings"

	"cdagio/internal/bounds"
	"cdagio/internal/cdag"
	"cdagio/internal/core"
	"cdagio/internal/exp/spec"
	"cdagio/internal/gen"
	"cdagio/internal/linalg"
	"cdagio/internal/machine"
	"cdagio/internal/memsim"
	"cdagio/internal/prbw"
	"cdagio/internal/sched"
	"cdagio/internal/serve"
	"cdagio/internal/solvers"
)

// built is a materialized workload: the graph, its workspace, and the typed
// generator result when a cell kind needs generator structure (grid layers
// for skewed schedules and block partitions, operand grids for blocked
// matmul, iteration sets for Krylov growth curves).
type built struct {
	g      *cdag.Graph
	ws     *core.Workspace
	jacobi *gen.JacobiResult
	matmul *gen.MatMulResult
	cg     *gen.CGResult
	gmres  *gen.GMRESResult
}

// buildWorkload materializes a workload graph.  Kinds whose cells need typed
// generator results are built directly; everything else goes through serve's
// BuildGen so local builds hash and behave exactly like daemon uploads.
func buildWorkload(w *spec.Workload) (b *built, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("generator %q: %v", w.Kind, r)
		}
	}()
	b = &built{}
	switch strings.ToLower(w.Kind) {
	case "jacobi":
		kind := gen.StencilStar
		if strings.EqualFold(w.Stencil, "box") {
			kind = gen.StencilBox
		}
		b.jacobi = gen.Jacobi(w.Dim, w.N, w.Steps, kind)
		b.g = b.jacobi.Graph
	case "matmul":
		b.matmul = gen.MatMul(w.N)
		b.g = b.matmul.Graph
	case "cg":
		b.cg = gen.CG(w.Dim, w.N, w.Iterations)
		b.g = b.cg.Graph
	case "gmres":
		b.gmres = gen.GMRES(w.Dim, w.N, w.Iterations)
		b.g = b.gmres.Graph
	default:
		b.g, err = serve.BuildGen(&w.GenSpec)
		if err != nil {
			return nil, err
		}
	}
	b.ws = core.NewWorkspace(b.g)
	return b, nil
}

// localCell evaluates the cell kinds that are not expressible as one daemon
// engine request.  Each returns a deterministic JSON body (struct marshaling
// or sorted map keys only).
func localCell(ctx context.Context, ir *spec.IR, c *spec.Cell, b *built) ([]byte, error) {
	switch c.Kind {
	case "table1":
		return table1Cell(ir)
	case "balance":
		return balanceCell(ir, c)
	case "solver":
		return solverCell(c)
	case "graphstat":
		return graphstatCell(c, b)
	case "prbw":
		return prbwBlockGridCell(ctx, c, b)
	case "sweep":
		return sweepCell(ctx, c, b)
	}
	return nil, fmt.Errorf("no local evaluator for kind %q", c.Kind)
}

func table1Cell(ir *spec.IR) ([]byte, error) {
	type row struct {
		Machine    string  `json:"machine"`
		Vertical   float64 `json:"vertical"`
		Horizontal float64 `json:"horizontal"`
	}
	var rows []row
	for _, m := range ir.Machines {
		vb, err := m.VerticalBalance()
		if err != nil {
			return nil, err
		}
		hb, err := m.HorizontalBalance()
		if err != nil {
			return nil, err
		}
		rows = append(rows, row{Machine: m.Name, Vertical: vb, Horizontal: hb})
	}
	return json.Marshal(map[string]any{"rows": rows})
}

func balanceCell(ir *spec.IR, c *spec.Cell) ([]byte, error) {
	p := c.Params
	switch p.Family {
	case "cg":
		ref, err := machine.Lookup(p.Machine)
		if err != nil {
			return nil, err
		}
		ev, err := core.EvaluateCG(bounds.CGParams{
			Dim: p.Dim, N: p.N, Iterations: p.Iterations,
			Processors: ref.TotalCores(), Nodes: ref.Nodes,
		}, ir.Machines)
		if err != nil {
			return nil, err
		}
		bound := 0
		for _, r := range ev.VerticalRows {
			if r.Verdict.String() == "bandwidth bound" {
				bound++
			}
		}
		return json.Marshal(struct {
			VerticalPerFlop   float64 `json:"vertical_per_flop"`
			HorizontalPerFlop float64 `json:"horizontal_per_flop"`
			VerticallyBound   int     `json:"vertically_bound_machines"`
		}{ev.VerticalPerFlop, ev.HorizPerFlop, bound})

	case "gmres":
		ref, err := machine.Lookup(p.Machine)
		if err != nil {
			return nil, err
		}
		ev, err := core.EvaluateGMRES(p.Dim, p.N, ref.TotalCores(), ref.Nodes, p.MSweep, ir.Machines)
		if err != nil {
			return nil, err
		}
		beta, err := ref.VerticalBalance()
		if err != nil {
			return nil, err
		}
		// The restart where GMRES stops being vertically bandwidth bound on
		// the reference machine: 6/(m+20) <= beta.
		crossover := int(math.Ceil(6/beta - 20))
		return json.Marshal(struct {
			MSweep            []int     `json:"m_sweep"`
			VerticalPerFlop   []float64 `json:"vertical_per_flop"`
			HorizontalPerFlop []float64 `json:"horizontal_per_flop"`
			CrossoverM        int       `json:"crossover_m"`
		}{ev.MSweep, ev.VerticalPerFlop, ev.HorizPerFlop, crossover})

	case "jacobi":
		ref, err := machine.Lookup(p.Machine)
		if err != nil {
			return nil, err
		}
		ev, err := core.EvaluateJacobi(ref, p.MaxDim)
		if err != nil {
			return nil, err
		}
		perDim := map[string]float64{}
		verdicts := map[string]string{}
		for d := 1; d <= p.MaxDim; d++ {
			if v, ok := ev.PerFlopByDim[d]; ok {
				key := strconv.Itoa(d)
				perDim[key] = v
				verdicts[key] = ev.VerdictByDim[d].String()
			}
		}
		return json.Marshal(struct {
			CacheWords    int64              `json:"cache_words"`
			Balance       float64            `json:"balance"`
			PerFlopByDim  map[string]float64 `json:"per_flop_by_dim"`
			VerdictByDim  map[string]string  `json:"verdict_by_dim"`
			ThresholdDim  float64            `json:"threshold_dim"`
			PaperLimitDim float64            `json:"paper_limit_dim"`
		}{ev.CacheWords, ev.Balance, perDim, verdicts, ev.ThresholdDim, ev.PaperLimitDim})

	case "composite":
		ev, err := core.EvaluateComposite(p.N)
		if err != nil {
			return nil, err
		}
		return json.Marshal(struct {
			StrategyIO       int     `json:"strategy_io"`
			MatMulAloneLower float64 `json:"matmul_alone_lower"`
			NaivePerStepSum  float64 `json:"naive_per_step_sum"`
			FastMemory       int     `json:"fast_memory"`
		}{ev.StrategyIO, ev.MatMulAloneLower, ev.PerStepSum, ev.FastMemory})
	}
	return nil, fmt.Errorf("no evaluator for balance family %q", p.Family)
}

// solverCell runs the numerical solver recipes of Section 5 and reports
// iteration counts, flop counts and residuals.
func solverCell(c *spec.Cell) ([]byte, error) {
	p := c.Params
	var st solvers.Stats
	var err error
	switch p.Family {
	case "heat":
		u0 := linalg.NewVector(p.N)
		for i := range u0 {
			u0[i] = math.Sin(math.Pi * float64(i+1) / float64(p.N+1))
		}
		_, st, err = solvers.HeatEquation1D(u0, p.Alpha, p.Steps)
	case "cg":
		grid := linalg.NewGrid(p.Dim, p.N)
		a := grid.Laplacian()
		f := linalg.NewVector(grid.Points())
		for i := range f {
			f[i] = math.Sin(float64(i + 1))
		}
		_, st, err = solvers.CG(solvers.CSROperator{M: a}, f, solvers.CGOptions{Tolerance: p.Tolerance})
	case "gmres":
		builder := linalg.NewCSRBuilder(p.N, p.N)
		for i := 0; i < p.N; i++ {
			builder.Add(i, i, 4)
			if i+1 < p.N {
				builder.Add(i, i+1, -1.6)
				builder.Add(i+1, i, -0.4)
			}
		}
		a := builder.Build()
		rhs := linalg.NewVector(p.N).Fill(1)
		_, st, err = solvers.GMRES(solvers.CSROperator{M: a}, rhs,
			solvers.GMRESOptions{Tolerance: p.Tolerance, Restart: p.Restart})
	default:
		return nil, fmt.Errorf("no evaluator for solver family %q", p.Family)
	}
	if err != nil {
		return nil, err
	}
	return json.Marshal(struct {
		Iterations int     `json:"iterations"`
		Flops      int64   `json:"flops"`
		Residual   float64 `json:"residual"`
		Converged  bool    `json:"converged"`
	}{st.Iterations, st.Flops, st.Residual, st.Converged})
}

func graphstatCell(c *spec.Cell, b *built) ([]byte, error) {
	out := map[string]any{
		"vertices":       b.g.NumVertices(),
		"edges":          b.g.NumEdges(),
		"inputs":         b.g.NumInputs(),
		"outputs":        b.g.NumOutputs(),
		"num_operations": b.g.NumOperations(),
	}
	if c.Params.CriticalPath {
		out["critical_path"] = b.g.CriticalPathLength()
	}
	var iters []*cdag.VertexSet
	switch {
	case b.cg != nil:
		iters = b.cg.IterationVertices
	case b.gmres != nil:
		iters = b.gmres.IterationVertices
	}
	if len(iters) > 0 {
		sizes := make([]int, len(iters))
		for i, s := range iters {
			sizes[i] = s.Len()
		}
		out["iteration_vertices"] = sizes
	}
	return json.Marshal(out)
}

// prbwBlockGridCell reproduces the Figure 1 measurement: a block-partitioned
// Jacobi grid over a distributed register/cache/memory topology under the
// owner-computes P-RBW game.
func prbwBlockGridCell(ctx context.Context, c *spec.Cell, b *built) ([]byte, error) {
	p := c.Params
	topo := prbw.Distributed(p.Nodes, p.ProcsPerNode, p.RegWords, p.CacheWords, p.MemWords)
	owner := sched.BlockPartitionGrid(b.jacobi, p.Nodes)
	procOwner := make([]int, len(owner))
	for v := range owner {
		procOwner[v] = owner[v]*p.ProcsPerNode + v%p.ProcsPerNode
	}
	asg := prbw.OwnerCompute(b.g, procOwner)
	st, err := b.ws.PlayParallel(ctx, topo, asg)
	if err != nil {
		return nil, err
	}
	return json.Marshal(struct {
		CacheMemWords  int64 `json:"cache_mem_words"`
		RemoteGetWords int64 `json:"remote_get_words"`
		Computes       int64 `json:"computes"`
	}{st.VerticalTraffic(2), st.HorizontalTraffic(), st.TotalComputes()})
}

// sweepCell runs a memory-hierarchy simulation with a non-trivial schedule
// or ownership map — the configurations a single daemon simulate request
// cannot express.  The result shape matches serve's simulate response so the
// emitters treat both paths uniformly.
func sweepCell(ctx context.Context, c *spec.Cell, b *built) ([]byte, error) {
	p := c.Params
	var order []cdag.VertexID
	switch p.Schedule {
	case "topo":
		order = sched.Topological(b.g)
	case "skewed":
		// Tile edge from the fast-memory budget: two time layers of a tile
		// must fit (Section 5.4's skewed tiling).
		tile := int(math.Sqrt(float64(p.S) / 2))
		if tile < 2 {
			tile = 2
		}
		order = sched.StencilSkewed(b.jacobi, tile)
	case "blocked":
		// Three operand blocks per tile step.
		block := int(math.Sqrt(float64(p.S) / 3))
		if block < 2 {
			block = 2
		}
		order = sched.MatMulBlocked(b.matmul, block)
	default:
		return nil, fmt.Errorf("no local schedule %q", p.Schedule)
	}
	var owner []int
	if p.Owner == "blockgrid" {
		owner = sched.BlockPartitionGrid(b.jacobi, p.Nodes)
	}
	policy := memsim.Belady
	if p.Policy == "lru" {
		policy = memsim.LRU
	}
	st, err := b.ws.Simulate(ctx, memsim.Config{Nodes: p.Nodes, FastWords: p.S, Policy: policy}, order, owner)
	if err != nil {
		return nil, err
	}
	return json.Marshal(serve.SimStatsJSON(st))
}
