package run

import (
	"os"
	"path/filepath"
	"testing"
)

// corruptJournal flips one byte in the middle of the journal, inside some
// interior record.
func corruptJournal(t *testing.T, dir string) {
	t.Helper()
	log := filepath.Join(dir, "log.bin")
	buf, err := os.ReadFile(log)
	if err != nil {
		t.Fatalf("read journal: %v", err)
	}
	buf[len(buf)/2] ^= 0xff
	if err := os.WriteFile(log, buf, 0o644); err != nil {
		t.Fatalf("rewrite journal: %v", err)
	}
}
