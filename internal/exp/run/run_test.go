package run

import (
	"bytes"
	"context"
	"net/http/httptest"
	"testing"

	"cdagio/internal/exp/cache"
	"cdagio/internal/exp/plan"
	"cdagio/internal/exp/spec"
	"cdagio/internal/serve"
)

const testSpec = `
name: runner-test
machines: [bgq, xt5]
workloads:
  - name: heat
    kind: heat
    n: 16
    steps: 4
experiments:
  - name: t1
    kind: table1
  - name: stats
    kind: graphstat
    workload: heat
    critical_path: true
  - name: play
    kind: play
    workload: heat
    s: [4, 8]
  - name: sim
    kind: sweep
    workload: heat
    s: [8]
  - name: deep
    kind: analyze
    workload: heat
    heavy: true
    s: [8]
`

func compilePlan(t *testing.T, text string) *plan.Plan {
	t.Helper()
	s, err := spec.Parse([]byte(text))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	ir, err := spec.Compile(s, spec.Options{})
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return plan.New(ir)
}

// Running the same spec twice against one journal must execute every cell
// exactly once and render byte-identical artifacts the second time.
func TestSecondRunIsAllCacheHits(t *testing.T) {
	dir := t.TempDir()
	pl := compilePlan(t, testSpec)

	c1, err := cache.Open(dir)
	if err != nil {
		t.Fatalf("cache.Open: %v", err)
	}
	res1, err := Execute(context.Background(), pl, Options{Cache: c1})
	if err != nil {
		t.Fatalf("first Execute: %v", err)
	}
	c1.Close()
	if res1.Summary.Executed != res1.Summary.Cells || res1.Summary.CacheHits != 0 {
		t.Fatalf("first run: %+v, want all %d cells executed", res1.Summary, res1.Summary.Cells)
	}

	// Recompile from scratch — keys, not object identity, must carry the
	// hits — and run with a different worker count.
	pl2 := compilePlan(t, testSpec)
	c2, err := cache.Open(dir)
	if err != nil {
		t.Fatalf("cache reopen: %v", err)
	}
	defer c2.Close()
	res2, err := Execute(context.Background(), pl2, Options{Cache: c2, Workers: 1})
	if err != nil {
		t.Fatalf("second Execute: %v", err)
	}
	if res2.Summary.Executed != 0 {
		t.Errorf("second run executed %d cells, want 0", res2.Summary.Executed)
	}
	if res2.Summary.CacheHits != res2.Summary.Cells {
		t.Errorf("second run: %d hits of %d cells", res2.Summary.CacheHits, res2.Summary.Cells)
	}
	if !bytes.Equal(res1.Outputs.Markdown, res2.Outputs.Markdown) {
		t.Errorf("markdown differs between runs")
	}
	if !bytes.Equal(res1.Outputs.CSV, res2.Outputs.CSV) {
		t.Errorf("csv differs between runs")
	}
	if !bytes.Equal(res1.Outputs.JSON, res2.Outputs.JSON) {
		t.Errorf("json differs between runs")
	}
}

// -short skips heavy cache-missed cells but serves heavy cells that are
// already journaled.
func TestShortSkipsOnlyUncachedHeavyCells(t *testing.T) {
	dir := t.TempDir()
	pl := compilePlan(t, testSpec)
	c, err := cache.Open(dir)
	if err != nil {
		t.Fatalf("cache.Open: %v", err)
	}
	res, err := Execute(context.Background(), pl, Options{Cache: c, Short: true})
	if err != nil {
		t.Fatalf("short Execute: %v", err)
	}
	if res.Summary.Skipped != 1 {
		t.Fatalf("short run skipped %d cells, want 1 (the heavy analyze)", res.Summary.Skipped)
	}
	if !bytes.Contains(res.Outputs.Markdown, []byte("skipped under -short")) {
		t.Errorf("markdown does not mark the skipped experiment")
	}
	c.Close()

	// Fill the cache with a full run, then -short again: nothing skipped.
	c2, _ := cache.Open(dir)
	if _, err := Execute(context.Background(), pl, Options{Cache: c2}); err != nil {
		t.Fatalf("full Execute: %v", err)
	}
	c2.Close()
	c3, _ := cache.Open(dir)
	defer c3.Close()
	res3, err := Execute(context.Background(), pl, Options{Cache: c3, Short: true})
	if err != nil {
		t.Fatalf("short Execute after fill: %v", err)
	}
	if res3.Summary.Skipped != 0 || res3.Summary.Executed != 0 {
		t.Errorf("warm short run: %+v, want all hits", res3.Summary)
	}
}

// Engine cells dispatched to a live cdagd must cache the same bytes as local
// execution, so local and remote runs share journal entries.
func TestRemoteMatchesLocalByteForByte(t *testing.T) {
	pl := compilePlan(t, testSpec)

	local, err := Execute(context.Background(), pl, Options{})
	if err != nil {
		t.Fatalf("local Execute: %v", err)
	}

	srv, err := serve.New(serve.Config{})
	if err != nil {
		t.Fatalf("serve.New: %v", err)
	}
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	remote, err := Execute(context.Background(), pl, Options{Remote: &serve.Client{Base: hs.URL}})
	if err != nil {
		t.Fatalf("remote Execute: %v", err)
	}
	if remote.Summary.Remote == 0 {
		t.Fatalf("remote run dispatched no cells")
	}
	if !bytes.Equal(local.Outputs.Markdown, remote.Outputs.Markdown) {
		t.Errorf("markdown differs between local and remote execution")
	}
	if !bytes.Equal(local.Outputs.CSV, remote.Outputs.CSV) {
		t.Errorf("csv differs between local and remote execution")
	}
	if !bytes.Equal(local.Outputs.JSON, remote.Outputs.JSON) {
		t.Errorf("json differs between local and remote execution")
	}
}

// A corrupt journal record costs exactly its cell: the next run recomputes
// it, hits on everything else, and renders identical artifacts.
func TestCorruptJournalRecomputesOnlyAffectedCells(t *testing.T) {
	dir := t.TempDir()
	pl := compilePlan(t, testSpec)
	c, err := cache.Open(dir)
	if err != nil {
		t.Fatalf("cache.Open: %v", err)
	}
	res1, err := Execute(context.Background(), pl, Options{Cache: c})
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	c.Close()

	corruptJournal(t, dir)

	c2, err := cache.Open(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer c2.Close()
	if c2.Recovery.CorruptRecords == 0 {
		t.Fatalf("journal corruption not detected")
	}
	res2, err := Execute(context.Background(), pl, Options{Cache: c2})
	if err != nil {
		t.Fatalf("Execute after corruption: %v", err)
	}
	if res2.Summary.Executed == 0 {
		t.Errorf("no cells recomputed after journal corruption")
	}
	if res2.Summary.Executed == res2.Summary.Cells {
		t.Errorf("all %d cells recomputed; corruption must cost only the affected records", res2.Summary.Cells)
	}
	if !bytes.Equal(res1.Outputs.Markdown, res2.Outputs.Markdown) {
		t.Errorf("markdown differs after partial recompute")
	}
}
