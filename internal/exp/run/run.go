// Package run executes compiled experiment plans: it probes the result
// cache, builds only the workloads that cache-missed cells still need, runs
// the missed cells over a bounded worker pool — locally through
// serve.RunEngine and the Workspace seam, or against a remote cdagd — and
// renders the emitted artifacts.  Execution is deterministic at every worker
// count: the journal append order and the rendered bytes depend only on the
// spec and the engines, never on scheduling.
package run

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"

	"cdagio/internal/exp/cache"
	"cdagio/internal/exp/emit"
	"cdagio/internal/exp/plan"
	"cdagio/internal/exp/spec"
	"cdagio/internal/serve"
)

// Options configures an execution.
type Options struct {
	// Workers bounds the cell worker pool; <= 0 selects 4.
	Workers int
	// Cache, when non-nil, serves previously journaled cells and absorbs
	// newly computed ones.
	Cache *cache.Cache
	// Remote, when non-nil, dispatches engine-expressible cells to a running
	// cdagd instead of executing them in process.  Local-only cells (table1,
	// balance, solver, and matrix cells needing typed generator results)
	// always run in process.
	Remote *serve.Client
	// Short skips heavy cells that are not already cached.
	Short bool
	// Log, when non-nil, receives one-line progress messages.
	Log func(format string, args ...any)
}

// CellOutcome records how one cell's result was obtained.
type CellOutcome struct {
	Key     string
	Cached  bool
	Skipped bool
	Remote  bool
}

// Summary aggregates the execution.
type Summary struct {
	Cells     int `json:"cells"`
	Executed  int `json:"executed"`
	CacheHits int `json:"cache_hits"`
	Skipped   int `json:"skipped"`
	Remote    int `json:"remote"`
}

// Result is the outcome of Execute.
type Result struct {
	Outcomes []CellOutcome
	Outputs  emit.Outputs
	Summary  Summary
}

// Execute runs the plan.
func Execute(ctx context.Context, pl *plan.Plan, opts Options) (*Result, error) {
	ir := pl.IR
	workers := opts.Workers
	if workers <= 0 {
		workers = 4
	}
	logf := opts.Log
	if logf == nil {
		logf = func(string, ...any) {}
	}

	n := len(ir.Cells)
	results := make(map[string][]byte, n)
	skipped := map[string]bool{}
	outcomes := make([]CellOutcome, n)
	var sum Summary
	sum.Cells = n

	// Probe the cache: every hit is final, every miss is a candidate job.
	var missed []int
	for i := range ir.Cells {
		c := &ir.Cells[i]
		outcomes[i].Key = c.Key
		if opts.Cache != nil {
			if body, ok := opts.Cache.Get(c.Key); ok {
				results[c.Key] = body
				outcomes[i].Cached = true
				sum.CacheHits++
				continue
			}
		}
		if opts.Short && c.Heavy {
			skipped[c.Key] = true
			outcomes[i].Skipped = true
			sum.Skipped++
			continue
		}
		missed = append(missed, i)
	}
	logf("%d cells: %d cached, %d to run, %d skipped", n, sum.CacheHits, len(missed), sum.Skipped)

	// Build the workloads that missed cells still reference (the Build layer
	// of the plan); fully cached workloads are never materialized.
	builds := map[string]*built{}
	for _, i := range missed {
		w := ir.Cells[i].Workload
		if w == "" || builds[w] != nil {
			continue
		}
		wl, _ := ir.WorkloadByName(w)
		b, err := buildWorkload(wl)
		if err != nil {
			return nil, fmt.Errorf("build %q: %w", w, err)
		}
		builds[w] = b
		if opts.Remote != nil {
			id, err := opts.Remote.UploadGen(ctx, &wl.GenSpec)
			if err != nil {
				return nil, fmt.Errorf("upload %q: %w", w, err)
			}
			if want := serve.HashID([]byte(serve.GenKey(&wl.GenSpec))); id != want {
				return nil, fmt.Errorf("upload %q: daemon graph id %s, expected %s", w, id, want)
			}
		}
		logf("built %s (%d vertices)", w, b.g.NumVertices())
	}

	// Run missed cells over the pool.  Workers claim cells through an atomic
	// cursor; each result lands in its own slot, so the output is identical
	// at every worker count and the first error (in cell order) wins.
	bodies := make([][]byte, len(missed))
	errs := make([]error, len(missed))
	remote := make([]bool, len(missed))
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				slot := int(cursor.Add(1)) - 1
				if slot >= len(missed) || ctx.Err() != nil {
					return
				}
				c := &ir.Cells[missed[slot]]
				body, wasRemote, err := runCell(ctx, ir, c, builds[c.Workload], opts.Remote)
				bodies[slot], remote[slot], errs[slot] = body, wasRemote, err
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for slot, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("cell %s: %w", ir.Cells[missed[slot]].Label(), err)
		}
	}

	// Journal in cell order — deterministic journal bytes for a given miss
	// set — then mark outcomes.
	for slot, i := range missed {
		c := &ir.Cells[i]
		if opts.Cache != nil {
			if err := opts.Cache.Put(c.Key, bodies[slot]); err != nil {
				return nil, err
			}
		}
		results[c.Key] = bodies[slot]
		outcomes[i].Remote = remote[slot]
		if remote[slot] {
			sum.Remote++
		}
		sum.Executed++
	}

	outputs, err := emit.Render(ir, results, skipped)
	if err != nil {
		return nil, err
	}
	logf("executed %d cells (%d remote), emitted %d experiments", sum.Executed, sum.Remote, len(ir.Experiments))
	return &Result{Outcomes: outcomes, Outputs: outputs, Summary: sum}, nil
}

// runCell computes one cell body.  Engine-expressible cells go to the daemon
// when a remote client is configured; everything else — and every local-only
// kind — runs in process.  Both paths marshal the same response values, so
// the cached bytes agree regardless of dispatch.
func runCell(ctx context.Context, ir *spec.IR, c *spec.Cell, b *built, remote *serve.Client) ([]byte, bool, error) {
	if c.Engine != "" {
		if remote != nil {
			body, err := remote.Engine(ctx, c.GraphID, c.Engine, c.Body)
			return body, true, err
		}
		out, err := serve.RunEngine(ctx, b.ws, c.Engine, c.Body, serve.EngineLimits{})
		if err != nil {
			return nil, false, err
		}
		body, err := json.Marshal(out)
		return body, false, err
	}
	body, err := localCell(ctx, ir, c, b)
	return body, false, err
}
