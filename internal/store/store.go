// Package store is the daemon's durable, crash-safe, content-addressed
// record store: an append-only log of length-prefixed, CRC32C-checksummed
// frames holding uploaded canonical graph bytes and memoized response
// bodies, keyed by the serving layer's sha256 content / request hashes.
//
// Durability contract: Append returns only after the record's frame has been
// written and (unless fsync is disabled) fsynced — concurrent appends are
// group-committed, so a burst of requests shares one fsync.  Recovery scans
// the log, verifies every checksum, truncates a torn tail, and skips corrupt
// interior records with a counter instead of refusing to boot.  Compaction
// streams the live subset of the log into a temp file and atomically renames
// it over the old log, so a crash at any point leaves either the old or the
// new log intact — never a mix.
//
// Fault-injection points (internal/fault): "store.append.torn" forces a
// short write of the current frame, "store.append.fsync" forces the batch
// fsync to fail, and "store.compact.rename" crashes compaction between
// writing the temp file and renaming it.
package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"cdagio/internal/fault"
)

const (
	logName = "log.bin"
	tmpName = "log.tmp"
)

// ErrClosed reports an operation on a closed (or abandoned) store.
var ErrClosed = errors.New("store: closed")

// Options tunes a Store.  The zero value is valid: fsync on every commit
// batch, 1 GiB record cap, 256 queued appends.
type Options struct {
	// NoFsync skips the per-batch fsync.  Appends then survive process
	// crashes (the write itself still lands in the OS page cache) but not
	// power loss; tests and throwaway deployments use it for speed.
	NoFsync bool
	// MaxRecordBytes caps a single record payload, on append and on
	// recovery (a corrupt length field must not allocate gigabytes).
	// Default 1 GiB.
	MaxRecordBytes int
	// QueueDepth bounds appends waiting for the writer goroutine
	// (default 256).
	QueueDepth int
}

func (o Options) withDefaults() Options {
	if o.MaxRecordBytes <= 0 {
		o.MaxRecordBytes = 1 << 30
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 256
	}
	return o
}

// RecoverStats summarizes one recovery pass for the daemon's health surface.
type RecoverStats struct {
	// Records is the number of checksum-valid records replayed.
	Records int
	// CorruptRecords counts interior corruption events: gaps where one or
	// more frames failed their checksum but a later valid frame existed to
	// resynchronize on.
	CorruptRecords int
	// TruncatedBytes is the torn tail dropped from the end of the log — the
	// residue of a crash mid-append.
	TruncatedBytes int64
	// LogBytes is the log size after truncation.
	LogBytes int64
}

// appendReq is one record waiting for the writer goroutine; done receives
// exactly one error (nil = durable).
type appendReq struct {
	frame []byte
	done  chan error
}

// Store is the append-only record log.  Open it, Recover it exactly once,
// then Append/Compact freely from any goroutine.
type Store struct {
	dir string
	opt Options

	// mu guards the log file handle and size against the writer goroutine,
	// compaction's file swap, and recovery's truncation.
	mu   sync.Mutex
	f    *os.File
	size int64

	recoverCalled atomic.Bool // Recover invoked (guards double recovery)
	recovered     atomic.Bool // Recover succeeded; writer running, appends allowed
	closed        atomic.Bool

	appendCh chan *appendReq
	quit     chan struct{} // closed by Close/Abandon; writer drains and exits
	writerWG sync.WaitGroup
}

// Open opens (creating if needed) the record log in dir.  A leftover temp
// file from a compaction that crashed before its rename is deleted — the old
// log is still the authoritative state.  Open does not scan the log; call
// Recover before the first Append.
func Open(dir string, opt Options) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: create dir: %w", err)
	}
	// A crashed compaction can leave a temp file behind; it was never
	// renamed, so it is dead weight.
	_ = os.Remove(filepath.Join(dir, tmpName))
	f, err := os.OpenFile(filepath.Join(dir, logName), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: open log: %w", err)
	}
	opt = opt.withDefaults()
	return &Store{
		dir:      dir,
		opt:      opt,
		f:        f,
		appendCh: make(chan *appendReq, opt.QueueDepth),
		quit:     make(chan struct{}),
	}, nil
}

// Recover scans the log once: every checksum-valid record is passed to apply
// in append order, a torn tail is truncated off the file, and corrupt
// interior regions are skipped (counted in the returned stats).  It must be
// called exactly once, before the first Append; it also starts the writer
// goroutine, so a store that is never Recovered never accepts appends.
func (s *Store) Recover(apply func(Record)) (RecoverStats, error) {
	fault.Inject(fault.PointStoreRecover)
	if s.recoverCalled.Swap(true) {
		return RecoverStats{}, errors.New("store: Recover called twice")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	buf, err := os.ReadFile(filepath.Join(s.dir, logName))
	if err != nil {
		return RecoverStats{}, fmt.Errorf("store: read log: %w", err)
	}
	sc := scanLog(buf, s.opt.MaxRecordBytes, apply)
	if sc.goodEnd < int64(len(buf)) {
		if err := s.f.Truncate(sc.goodEnd); err != nil {
			return RecoverStats{}, fmt.Errorf("store: truncate torn tail: %w", err)
		}
	}
	if _, err := s.f.Seek(sc.goodEnd, 0); err != nil {
		return RecoverStats{}, fmt.Errorf("store: seek: %w", err)
	}
	s.size = sc.goodEnd
	s.recovered.Store(true)
	s.writerWG.Add(1)
	go s.writer()
	return RecoverStats{
		Records:        sc.records,
		CorruptRecords: sc.corrupt,
		TruncatedBytes: sc.truncated,
		LogBytes:       sc.goodEnd,
	}, nil
}

// Append journals one record and returns once it is durable (written, and
// fsynced unless NoFsync).  Concurrent appends are batched behind one fsync.
// An error means the record may or may not survive a crash — the caller must
// not acknowledge whatever the record was protecting.
func (s *Store) Append(rec Record) error {
	frame := encodeFrame(rec)
	if len(frame)-frameHeaderSize > s.opt.MaxRecordBytes {
		return fmt.Errorf("store: record payload %d bytes exceeds cap %d",
			len(frame)-frameHeaderSize, s.opt.MaxRecordBytes)
	}
	if !s.recovered.Load() {
		return errors.New("store: Append before Recover")
	}
	req := &appendReq{frame: frame, done: make(chan error, 1)}
	select {
	case s.appendCh <- req:
	case <-s.quit:
		return ErrClosed
	}
	select {
	case err := <-req.done:
		return err
	case <-s.quit:
		// The writer drains the queue on shutdown and answers every pending
		// request, so this only races a concurrent Close; prefer the real
		// answer when it is already there.
		select {
		case err := <-req.done:
			return err
		default:
			return ErrClosed
		}
	}
}

// writer is the single goroutine that owns log writes: it drains whatever
// appends are pending, writes their frames, fsyncs once for the whole batch
// (group commit), and only then completes them.  One fsync per burst is what
// keeps durable acknowledgment off the request hot path's critical section.
func (s *Store) writer() {
	defer s.writerWG.Done()
	for {
		var first *appendReq
		select {
		case first = <-s.appendCh:
		case <-s.quit:
			s.drainPending(ErrClosed)
			return
		}
		batch := []*appendReq{first}
	drain:
		for len(batch) < 64 {
			select {
			case r := <-s.appendCh:
				batch = append(batch, r)
			default:
				break drain
			}
		}
		s.commit(batch)
	}
}

// commit writes and fsyncs one batch.  A write failure (including an
// injected torn write) fails only that record — later frames still land, and
// recovery's resynchronization skips the torn one.  An fsync failure fails
// the whole batch: every frame was written, but none is provably durable.
func (s *Store) commit(batch []*appendReq) {
	s.mu.Lock()
	errs := make([]error, len(batch))
	wrote := false
	for i, r := range batch {
		errs[i] = s.writeFrame(r.frame)
		wrote = wrote || errs[i] == nil
	}
	var syncErr error
	if wrote {
		syncErr = s.syncLocked()
	}
	s.mu.Unlock()
	for i, r := range batch {
		if errs[i] == nil {
			errs[i] = syncErr
		}
		r.done <- errs[i]
	}
}

// writeFrame appends one frame to the log.  Caller holds s.mu.
func (s *Store) writeFrame(frame []byte) error {
	if err := fault.InjectErr(fault.PointStoreAppendTorn); err != nil {
		// Simulate a crash mid-write: half the frame lands, the rest never
		// does.  The log now ends (or continues) with a torn frame, exactly
		// what a SIGKILL between two write(2) calls would leave behind.
		n, _ := s.f.Write(frame[:len(frame)/2])
		s.size += int64(n)
		return err
	}
	n, err := s.f.Write(frame)
	s.size += int64(n)
	if err != nil {
		return fmt.Errorf("store: append: %w", err)
	}
	return nil
}

// syncLocked makes the written frames durable.  Caller holds s.mu.
func (s *Store) syncLocked() error {
	if err := fault.InjectErr(fault.PointStoreAppendFsync); err != nil {
		return err
	}
	if s.opt.NoFsync {
		return nil
	}
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("store: fsync: %w", err)
	}
	return nil
}

// drainPending answers every queued append after quit, so no caller blocks
// forever on a closed store.
func (s *Store) drainPending(err error) {
	for {
		select {
		case r := <-s.appendCh:
			r.done <- err
		default:
			return
		}
	}
}

// Size returns the current log size in bytes.
func (s *Store) Size() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.size
}

// Compact rewrites the log down to the records keep accepts, dropping
// everything else (evicted graphs, orphaned memos, duplicate appends — only
// the first occurrence of a (Kind, Key, Sub) is offered to keep).  The new
// log is written to a temp file, fsynced, and atomically renamed over the
// old one; a crash before the rename leaves the old log authoritative (Open
// deletes the orphan temp file), a crash after leaves the new one.  Appends
// block for the duration.
func (s *Store) Compact(keep func(Record) bool) error {
	if s.closed.Load() {
		return ErrClosed
	}
	s.mu.Lock()
	defer s.mu.Unlock()

	buf, err := os.ReadFile(filepath.Join(s.dir, logName))
	if err != nil {
		return fmt.Errorf("store: compact read: %w", err)
	}
	tmpPath := filepath.Join(s.dir, tmpName)
	tmp, err := os.OpenFile(tmpPath, os.O_CREATE|os.O_TRUNC|os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("store: compact temp: %w", err)
	}
	var newSize int64
	seen := map[string]struct{}{}
	var werr error
	scanLog(buf, s.opt.MaxRecordBytes, func(rec Record) {
		if werr != nil {
			return
		}
		dedup := string([]byte{byte(rec.Kind)}) + rec.Key + "\x00" + rec.Sub
		if _, dup := seen[dedup]; dup {
			return
		}
		seen[dedup] = struct{}{}
		if !keep(rec) {
			return
		}
		n, err := tmp.Write(encodeFrame(rec))
		newSize += int64(n)
		werr = err
	})
	if werr == nil && !s.opt.NoFsync {
		werr = tmp.Sync()
	}
	if werr == nil {
		werr = fault.InjectErr(fault.PointStoreCompactRename)
	}
	if werr != nil {
		tmp.Close()
		os.Remove(tmpPath)
		return fmt.Errorf("store: compact: %w", werr)
	}
	if err := os.Rename(tmpPath, filepath.Join(s.dir, logName)); err != nil {
		tmp.Close()
		os.Remove(tmpPath)
		return fmt.Errorf("store: compact rename: %w", err)
	}
	// The rename is the commit point.  tmp's descriptor now names the live
	// log file; swap it in and retire the old handle.
	if _, err := tmp.Seek(newSize, 0); err != nil {
		tmp.Close()
		return fmt.Errorf("store: compact seek: %w", err)
	}
	s.fsyncDir()
	old := s.f
	s.f = tmp
	s.size = newSize
	old.Close()
	return nil
}

// fsyncDir flushes the directory entry after a rename, so the compacted log
// name itself survives power loss.  Best-effort: some filesystems reject
// directory fsync, and the data frames are already durable either way.
func (s *Store) fsyncDir() {
	if s.opt.NoFsync {
		return
	}
	if d, err := os.Open(s.dir); err == nil {
		d.Sync()
		d.Close()
	}
}

// Close stops the writer, fsyncs, and closes the log.  Pending appends that
// the writer has not yet committed fail with ErrClosed.
func (s *Store) Close() error {
	return s.shutdown(true)
}

// Abandon closes the store without the final fsync — the in-process stand-in
// for SIGKILL.  Every frame already handed to write(2) stays visible to a
// reopening store (the OS page cache survives process death); anything still
// queued is lost, exactly as a kill would lose it.  Tests use this to build
// kill-restart scenarios without leaving the process.
func (s *Store) Abandon() error {
	return s.shutdown(false)
}

func (s *Store) shutdown(sync bool) error {
	if s.closed.Swap(true) {
		return ErrClosed
	}
	close(s.quit)
	if s.recovered.Load() {
		s.writerWG.Wait()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if sync && !s.opt.NoFsync {
		s.f.Sync()
	}
	return s.f.Close()
}
