package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Kind tags what a record holds.  The store treats kinds opaquely — they
// exist so the serving layer can route records on recovery and so compaction
// filters can tell a graph from a memo without parsing values.
type Kind uint8

const (
	// KindGraphJSON holds the canonical cdag JSON bytes of an uploaded
	// graph; Key is the graph's content-hash ID.
	KindGraphJSON Kind = 1
	// KindGraphSpec holds the canonical generator-spec JSON of a generated
	// graph; Key is the graph's content-hash ID.  Specs are journaled
	// instead of the materialized graph because rebuilding a stencil from
	// its spec is cheaper than parsing a million-vertex JSON dump.
	KindGraphSpec Kind = 2
	// KindMemo holds one memoized engine response body; Key is the graph ID
	// it belongs to and Sub the request hash.
	KindMemo Kind = 3
	// KindExpResult holds one cdagx experiment-cell result body; Key is the
	// content-address of the cell — a hash over (graph ID, engine kind,
	// canonical parameters) — so re-running a spec skips every cell whose
	// result is already journaled.
	KindExpResult Kind = 4
)

// Record is one durable entry: a kind, up to two string keys, and the value
// bytes.  Records are content-addressed by their keys — appending the same
// (Kind, Key, Sub) twice is harmless (the values are identical by
// construction) and compaction keeps only the first occurrence.
type Record struct {
	Kind  Kind
	Key   string
	Sub   string
	Value []byte
}

// The on-disk frame format, all integers little-endian:
//
//	[0:4)  magic 0xcd 0xa6 0x0d 0x17
//	[4:8)  payload length (uint32)
//	[8:12) CRC32C (Castagnoli) of the payload
//	[12:)  payload
//
// and the payload encodes the record as
//
//	[kind:1][uvarint len(Key)][Key][uvarint len(Sub)][Sub][Value...]
//
// The magic exists purely for recovery: after a checksum failure the scanner
// can hunt forward for the next plausible frame boundary and resynchronize,
// so one corrupt interior record costs one record, not the rest of the log.
var frameMagic = [4]byte{0xcd, 0xa6, 0x0d, 0x17}

const frameHeaderSize = 12

// crcTable is the Castagnoli polynomial table; CRC32C has hardware support
// on every platform this runs on, so checksumming is nearly free next to the
// write itself.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrCorruptRecord reports a payload that passed framing but does not decode
// as a record.  Recovery counts these as corruption and keeps scanning.
var ErrCorruptRecord = errors.New("store: corrupt record payload")

// encodeRecord renders the record payload (the checksummed part of a frame).
func encodeRecord(rec Record) []byte {
	var lenBuf [binary.MaxVarintLen64]byte
	payload := make([]byte, 0, 1+2*binary.MaxVarintLen64+len(rec.Key)+len(rec.Sub)+len(rec.Value))
	payload = append(payload, byte(rec.Kind))
	n := binary.PutUvarint(lenBuf[:], uint64(len(rec.Key)))
	payload = append(payload, lenBuf[:n]...)
	payload = append(payload, rec.Key...)
	n = binary.PutUvarint(lenBuf[:], uint64(len(rec.Sub)))
	payload = append(payload, lenBuf[:n]...)
	payload = append(payload, rec.Sub...)
	payload = append(payload, rec.Value...)
	return payload
}

// uvarintLen is the length of the minimal uvarint encoding of v.
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// decodeRecord parses a frame payload back into a Record.  It must be total:
// recovery feeds it arbitrary bytes that happened to pass the checksum of a
// hostile or corrupted log, so every length is validated before any slice.
// Non-minimal varints are rejected — the store only reads what it wrote, so
// decode∘encode is an exact fixed point on every accepted payload.
func decodeRecord(payload []byte) (Record, error) {
	if len(payload) < 1 {
		return Record{}, fmt.Errorf("%w: empty payload", ErrCorruptRecord)
	}
	kind := Kind(payload[0])
	rest := payload[1:]
	keyLen, n := binary.Uvarint(rest)
	if n <= 0 || n != uvarintLen(keyLen) || keyLen > uint64(len(rest)-n) {
		return Record{}, fmt.Errorf("%w: bad key length", ErrCorruptRecord)
	}
	rest = rest[n:]
	subLen, n := binary.Uvarint(rest[keyLen:])
	if n <= 0 || n != uvarintLen(subLen) || subLen > uint64(len(rest))-keyLen-uint64(n) {
		return Record{}, fmt.Errorf("%w: bad sub length", ErrCorruptRecord)
	}
	key := string(rest[:keyLen])
	rest = rest[keyLen+uint64(n):]
	sub := string(rest[:subLen])
	value := append([]byte(nil), rest[subLen:]...)
	return Record{Kind: kind, Key: key, Sub: sub, Value: value}, nil
}

// encodeFrame renders a complete frame: header plus payload.
func encodeFrame(rec Record) []byte {
	payload := encodeRecord(rec)
	frame := make([]byte, frameHeaderSize+len(payload))
	copy(frame, frameMagic[:])
	binary.LittleEndian.PutUint32(frame[4:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[8:], crc32.Checksum(payload, crcTable))
	copy(frame[frameHeaderSize:], payload)
	return frame
}

// frameAt validates the frame starting at buf[off]: magic, a length that fits
// in the remaining bytes and under maxPayload, and the checksum.  On success
// it returns the payload and the offset one past the frame.
func frameAt(buf []byte, off int, maxPayload int) (payload []byte, next int, ok bool) {
	if len(buf)-off < frameHeaderSize {
		return nil, 0, false
	}
	if [4]byte(buf[off:off+4]) != frameMagic {
		return nil, 0, false
	}
	plen := int(binary.LittleEndian.Uint32(buf[off+4:]))
	if plen > maxPayload || plen > len(buf)-off-frameHeaderSize {
		return nil, 0, false
	}
	payload = buf[off+frameHeaderSize : off+frameHeaderSize+plen]
	if crc32.Checksum(payload, crcTable) != binary.LittleEndian.Uint32(buf[off+8:]) {
		return nil, 0, false
	}
	return payload, off + frameHeaderSize + plen, true
}

// nextFrame scans forward from buf[from] for the next offset holding a fully
// valid frame — the resynchronization step after a checksum failure.  A
// magic match alone is not enough (graph bytes can contain the magic by
// chance), so candidates must also pass length and checksum validation.
// Returns -1 if no valid frame exists in the rest of buf.
func nextFrame(buf []byte, from int, maxPayload int) int {
	for off := from; off+frameHeaderSize <= len(buf); off++ {
		if buf[off] != frameMagic[0] {
			continue
		}
		if _, _, ok := frameAt(buf, off, maxPayload); ok {
			return off
		}
	}
	return -1
}

// scanStats summarizes one pass of scanLog over a log image.
type scanStats struct {
	records   int   // frames that decoded into records
	corrupt   int   // corruption events skipped by resynchronization
	truncated int64 // torn-tail bytes past the last valid frame
	goodEnd   int64 // offset one past the last valid frame
}

// scanLog walks a log image frame by frame, yielding every record that
// passes its checksum.  A frame that fails validation triggers a forward
// resynchronization scan: if a later valid frame exists the gap counts as
// one corruption event and scanning continues there; if not, the remainder
// is a torn tail and scanning stops (goodEnd marks where to truncate).
func scanLog(buf []byte, maxPayload int, yield func(Record)) scanStats {
	var st scanStats
	off := 0
	for off < len(buf) {
		payload, next, ok := frameAt(buf, off, maxPayload)
		if !ok {
			resync := nextFrame(buf, off+1, maxPayload)
			if resync < 0 {
				st.truncated = int64(len(buf) - off)
				break
			}
			st.corrupt++
			off = resync
			continue
		}
		rec, err := decodeRecord(payload)
		if err != nil {
			// Well-framed but undecodable: checksum-valid garbage (only
			// reachable through a hostile log).  Count it and move on.
			st.corrupt++
			off = next
			continue
		}
		st.records++
		if yield != nil {
			yield(rec)
		}
		off = next
	}
	st.goodEnd = int64(len(buf)) - st.truncated
	return st
}
