package store

import (
	"bytes"
	"testing"
)

// FuzzRecordCodec is the adversarial-input gate for the on-disk format: the
// decoder and the log scanner both consume bytes that survived a crash (or an
// attacker with the disk), so arbitrary input must never panic, and whatever
// does decode must re-encode to the identical payload (the store's replay
// guarantee is bit-stability).
func FuzzRecordCodec(f *testing.F) {
	f.Add(encodeRecord(Record{Kind: KindGraphJSON, Key: "sha256:ab", Value: []byte(`{"vertices":3}`)}))
	f.Add(encodeRecord(Record{Kind: KindMemo, Key: "sha256:ab", Sub: "ffff", Value: []byte(`{"wmax":2}`)}))
	f.Add(encodeFrame(Record{Kind: KindGraphSpec, Key: "sha256:cd", Value: []byte(`{"kind":"tree","n":8}`)}))
	f.Add([]byte{})
	f.Add([]byte{0xcd, 0xa6, 0x0d, 0x17, 0xff, 0xff, 0xff, 0x7f})
	f.Fuzz(func(t *testing.T, data []byte) {
		// Payload decoder: total on arbitrary bytes, and exact on re-encode.
		if rec, err := decodeRecord(data); err == nil {
			if !bytes.Equal(encodeRecord(rec), data) {
				t.Fatalf("decode/encode not a fixed point for %d payload bytes", len(data))
			}
		}
		// Log scanner: arbitrary log images must scan to a terminating,
		// internally consistent result — records plus corruption plus a torn
		// tail that ends exactly at the image size.
		n := 0
		st := scanLog(data, 1<<20, func(Record) { n++ })
		if n != st.records {
			t.Fatalf("scanner yielded %d records but counted %d", n, st.records)
		}
		if st.goodEnd+st.truncated != int64(len(data)) && st.truncated != 0 {
			t.Fatalf("scan accounting broken: end %d + torn %d != %d", st.goodEnd, st.truncated, len(data))
		}
	})
}
