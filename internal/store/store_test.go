package store

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"cdagio/internal/fault"
)

// openStore opens and recovers a store in dir, failing the test on error.
func openStore(t *testing.T, dir string, opt Options, apply func(Record)) (*Store, RecoverStats) {
	t.Helper()
	st, err := Open(dir, opt)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	stats, err := st.Recover(apply)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	return st, stats
}

// collect recovers a fresh store over dir and returns its records and stats.
func collect(t *testing.T, dir string, opt Options) ([]Record, RecoverStats) {
	t.Helper()
	var recs []Record
	st, stats := openStore(t, dir, opt, func(r Record) { recs = append(recs, r) })
	if err := st.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return recs, stats
}

func sampleRecords(n int) []Record {
	recs := make([]Record, n)
	for i := range recs {
		switch i % 3 {
		case 0:
			recs[i] = Record{Kind: KindGraphJSON, Key: fmt.Sprintf("sha256:%04x", i),
				Value: []byte(fmt.Sprintf(`{"vertices":%d}`, i))}
		case 1:
			recs[i] = Record{Kind: KindGraphSpec, Key: fmt.Sprintf("sha256:%04x", i),
				Value: []byte(fmt.Sprintf(`{"kind":"chain","n":%d}`, i))}
		default:
			recs[i] = Record{Kind: KindMemo, Key: fmt.Sprintf("sha256:%04x", i-2),
				Sub: fmt.Sprintf("req%04x", i), Value: []byte(fmt.Sprintf(`{"wmax":%d}`, i))}
		}
	}
	return recs
}

func sameRecords(a, b []Record) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Kind != b[i].Kind || a[i].Key != b[i].Key || a[i].Sub != b[i].Sub ||
			!bytes.Equal(a[i].Value, b[i].Value) {
			return false
		}
	}
	return true
}

func TestAppendRecoverRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st, stats := openStore(t, dir, Options{}, nil)
	if stats.Records != 0 || stats.CorruptRecords != 0 || stats.TruncatedBytes != 0 {
		t.Fatalf("fresh store recovered %+v, want zeros", stats)
	}
	want := sampleRecords(30)
	for _, r := range want {
		if err := st.Append(r); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if st.Size() == 0 {
		t.Fatal("Size reports an empty log after appends")
	}
	if err := st.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	got, stats := collect(t, dir, Options{})
	if !sameRecords(got, want) {
		t.Fatalf("recovered %d records, want %d, or contents differ", len(got), len(want))
	}
	if stats.Records != 30 || stats.CorruptRecords != 0 || stats.TruncatedBytes != 0 {
		t.Fatalf("recover stats %+v, want 30 clean records", stats)
	}
}

func TestRecoverTruncatesTornTail(t *testing.T) {
	dir := t.TempDir()
	st, _ := openStore(t, dir, Options{}, nil)
	want := sampleRecords(5)
	for _, r := range want {
		if err := st.Append(r); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := st.Abandon(); err != nil {
		t.Fatalf("Abandon: %v", err)
	}
	// A crash mid-append leaves a partial frame at the end of the log.
	torn := encodeFrame(Record{Kind: KindMemo, Key: "k", Sub: "s", Value: []byte("lost")})
	logPath := filepath.Join(dir, logName)
	f, err := os.OpenFile(logPath, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatalf("open log: %v", err)
	}
	if _, err := f.Write(torn[:len(torn)-3]); err != nil {
		t.Fatalf("write torn tail: %v", err)
	}
	f.Close()

	got, stats := collect(t, dir, Options{})
	if !sameRecords(got, want) {
		t.Fatalf("recovered records differ after torn tail")
	}
	if stats.TruncatedBytes != int64(len(torn)-3) || stats.CorruptRecords != 0 {
		t.Fatalf("stats %+v, want %d truncated bytes and no interior corruption",
			stats, len(torn)-3)
	}
	// The truncation is physical: the file ends exactly at the last frame.
	if fi, _ := os.Stat(logPath); fi.Size() != stats.LogBytes {
		t.Fatalf("log is %d bytes on disk, stats say %d", fi.Size(), stats.LogBytes)
	}
	// And the truncated store keeps accepting appends that survive reopen.
	st2, _ := openStore(t, dir, Options{}, nil)
	extra := Record{Kind: KindMemo, Key: "sha256:0000", Sub: "later", Value: []byte("ok")}
	if err := st2.Append(extra); err != nil {
		t.Fatalf("Append after truncation: %v", err)
	}
	st2.Close()
	got, _ = collect(t, dir, Options{})
	if !sameRecords(got, append(append([]Record{}, want...), extra)) {
		t.Fatalf("post-truncation append did not survive reopen")
	}
}

func TestRecoverSkipsCorruptInterior(t *testing.T) {
	dir := t.TempDir()
	want := sampleRecords(7)
	// Build the log by hand so the corrupted record's offset is known.
	var log []byte
	var offsets []int
	for _, r := range want {
		offsets = append(offsets, len(log))
		log = append(log, encodeFrame(r)...)
	}
	// Flip one payload byte of the third record: its checksum now fails, the
	// frames around it stay valid.
	log[offsets[2]+frameHeaderSize+4] ^= 0xff
	if err := os.WriteFile(filepath.Join(dir, logName), log, 0o644); err != nil {
		t.Fatalf("write log: %v", err)
	}

	got, stats := collect(t, dir, Options{})
	wantLeft := append(append([]Record{}, want[:2]...), want[3:]...)
	if !sameRecords(got, wantLeft) {
		t.Fatalf("recovered %d records, want the 6 intact ones", len(got))
	}
	if stats.CorruptRecords != 1 || stats.TruncatedBytes != 0 {
		t.Fatalf("stats %+v, want exactly one interior corruption and no torn tail", stats)
	}
}

func TestGroupCommitConcurrentAppends(t *testing.T) {
	dir := t.TempDir()
	st, _ := openStore(t, dir, Options{}, nil)
	const workers, per = 8, 40
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				rec := Record{Kind: KindMemo, Key: fmt.Sprintf("g%d", w),
					Sub: fmt.Sprintf("r%d", i), Value: []byte(fmt.Sprintf("%d/%d", w, i))}
				if err := st.Append(rec); err != nil {
					t.Errorf("worker %d append %d: %v", w, i, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := st.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	got, stats := collect(t, dir, Options{})
	if len(got) != workers*per || stats.CorruptRecords != 0 || stats.TruncatedBytes != 0 {
		t.Fatalf("recovered %d records (stats %+v), want %d clean", len(got), stats, workers*per)
	}
	// Every (key, sub) pair must be present exactly once with its value.
	seen := map[string]string{}
	for _, r := range got {
		seen[r.Key+"/"+r.Sub] = string(r.Value)
	}
	for w := 0; w < workers; w++ {
		for i := 0; i < per; i++ {
			if seen[fmt.Sprintf("g%d/r%d", w, i)] != fmt.Sprintf("%d/%d", w, i) {
				t.Fatalf("record g%d/r%d missing or wrong", w, i)
			}
		}
	}
}

func TestCompactKeepsLiveDropsDeadAndDups(t *testing.T) {
	dir := t.TempDir()
	st, _ := openStore(t, dir, Options{}, nil)
	recs := sampleRecords(12)
	for _, r := range recs {
		if err := st.Append(r); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	// Duplicate append of an early record: compaction must keep one copy.
	if err := st.Append(recs[0]); err != nil {
		t.Fatalf("Append dup: %v", err)
	}
	before := st.Size()
	live := func(r Record) bool { return r.Key != "sha256:0003" && r.Sub != "req0005" }
	if err := st.Compact(live); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if st.Size() >= before {
		t.Fatalf("compaction did not shrink the log: %d -> %d", before, st.Size())
	}
	// Appends keep working on the swapped file handle.
	extra := Record{Kind: KindMemo, Key: "sha256:0000", Sub: "post-compact", Value: []byte("x")}
	if err := st.Append(extra); err != nil {
		t.Fatalf("Append after compact: %v", err)
	}
	st.Close()

	got, stats := collect(t, dir, Options{})
	if stats.CorruptRecords != 0 || stats.TruncatedBytes != 0 {
		t.Fatalf("compacted log recovered dirty: %+v", stats)
	}
	var want []Record
	for _, r := range recs {
		if live(r) {
			want = append(want, r)
		}
	}
	want = append(want, extra)
	if !sameRecords(got, want) {
		t.Fatalf("compacted log holds %d records, want %d (live + post-compact)", len(got), len(want))
	}
}

func TestCompactRenameCrashLeavesOldLog(t *testing.T) {
	dir := t.TempDir()
	st, _ := openStore(t, dir, Options{}, nil)
	want := sampleRecords(6)
	for _, r := range want {
		if err := st.Append(r); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	restore := fault.SetHook(func(point string) {
		if point == fault.PointStoreCompactRename {
			panic("injected crash before rename")
		}
	})
	err := st.Compact(func(Record) bool { return false })
	restore()
	if err == nil || !strings.Contains(err.Error(), fault.PointStoreCompactRename) {
		t.Fatalf("Compact with rename fault: err %v, want injected failure", err)
	}
	if _, serr := os.Stat(filepath.Join(dir, tmpName)); !os.IsNotExist(serr) {
		t.Fatalf("failed compaction left a temp file behind")
	}
	// The old log is untouched and still serves appends...
	if err := st.Append(want[0]); err != nil {
		t.Fatalf("Append after failed compact: %v", err)
	}
	// ...and a later, healthy compaction succeeds.
	if err := st.Compact(func(Record) bool { return true }); err != nil {
		t.Fatalf("Compact retry: %v", err)
	}
	st.Close()
	got, _ := collect(t, dir, Options{})
	if !sameRecords(got, want) { // the dup append is folded by compaction
		t.Fatalf("log after failed-then-retried compaction holds %d records, want %d", len(got), len(want))
	}
}

func TestFsyncFaultFailsAppendWithoutPoisoning(t *testing.T) {
	dir := t.TempDir()
	st, _ := openStore(t, dir, Options{}, nil)
	rec := Record{Kind: KindGraphJSON, Key: "sha256:aa", Value: []byte("{}")}
	restore := fault.SetHook(func(point string) {
		if point == fault.PointStoreAppendFsync {
			panic("injected fsync failure")
		}
	})
	err := st.Append(rec)
	restore()
	if err == nil || !strings.Contains(err.Error(), fault.PointStoreAppendFsync) {
		t.Fatalf("Append under fsync fault: err %v, want injected failure", err)
	}
	// The store recovers the moment fsync works again.
	if err := st.Append(rec); err != nil {
		t.Fatalf("Append after fault cleared: %v", err)
	}
	st.Close()
	got, stats := collect(t, dir, Options{})
	// Both the failed-fsync frame (written, just not provably durable) and
	// the retry may be present; what matters is the retried record is there
	// and the log is structurally clean.
	if len(got) == 0 || stats.CorruptRecords != 0 || stats.TruncatedBytes != 0 {
		t.Fatalf("recovered %d records, stats %+v; want the retried record in a clean log", len(got), stats)
	}
}

func TestTornWriteFaultIsSkippedOnRecovery(t *testing.T) {
	dir := t.TempDir()
	st, _ := openStore(t, dir, Options{}, nil)
	pre := sampleRecords(4)
	for _, r := range pre {
		if err := st.Append(r); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	// Tear exactly one append, then write more records over the wreckage.
	tear := true
	restore := fault.SetHook(func(point string) {
		if point == fault.PointStoreAppendTorn && tear {
			tear = false
			panic("injected torn write")
		}
	})
	tornRec := Record{Kind: KindMemo, Key: "sha256:0000", Sub: "torn", Value: []byte(strings.Repeat("x", 256))}
	err := st.Append(tornRec)
	restore()
	if err == nil || !strings.Contains(err.Error(), fault.PointStoreAppendTorn) {
		t.Fatalf("torn append: err %v, want injected failure", err)
	}
	post := Record{Kind: KindMemo, Key: "sha256:0000", Sub: "after-torn", Value: []byte("ok")}
	if err := st.Append(post); err != nil {
		t.Fatalf("Append after torn write: %v", err)
	}
	st.Close()

	got, stats := collect(t, dir, Options{})
	if !sameRecords(got, append(append([]Record{}, pre...), post)) {
		t.Fatalf("recovery did not resynchronize past the torn frame: got %d records", len(got))
	}
	if stats.CorruptRecords != 1 {
		t.Fatalf("stats %+v, want exactly one corruption event for the torn frame", stats)
	}
}

func TestLifecycleErrors(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if err := st.Append(Record{Kind: KindMemo, Key: "k"}); err == nil {
		t.Fatal("Append before Recover succeeded")
	}
	if _, err := st.Recover(nil); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if _, err := st.Recover(nil); err == nil {
		t.Fatal("second Recover succeeded")
	}
	if err := st.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := st.Append(Record{Kind: KindMemo, Key: "k"}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Append after Close: %v, want ErrClosed", err)
	}
	if err := st.Compact(func(Record) bool { return true }); !errors.Is(err, ErrClosed) {
		t.Fatalf("Compact after Close: %v, want ErrClosed", err)
	}
	if err := st.Close(); !errors.Is(err, ErrClosed) {
		t.Fatalf("double Close: %v, want ErrClosed", err)
	}
}

func TestOversizedRecordRejected(t *testing.T) {
	dir := t.TempDir()
	st, _ := openStore(t, dir, Options{MaxRecordBytes: 128}, nil)
	defer st.Close()
	if err := st.Append(Record{Kind: KindMemo, Key: "k", Value: make([]byte, 256)}); err == nil {
		t.Fatal("oversized record accepted")
	}
	if err := st.Append(Record{Kind: KindMemo, Key: "k", Value: make([]byte, 32)}); err != nil {
		t.Fatalf("small record rejected: %v", err)
	}
}

func TestRecordCodecRoundTrip(t *testing.T) {
	cases := []Record{
		{Kind: KindGraphJSON, Key: "sha256:ab", Value: []byte(`{"vertices":3}`)},
		{Kind: KindGraphSpec, Key: "sha256:cd", Value: []byte(`{"kind":"tree","n":64}`)},
		{Kind: KindMemo, Key: "sha256:ab", Sub: strings.Repeat("f", 64), Value: nil},
		{Kind: KindMemo, Key: "", Sub: "", Value: []byte{0, 1, 2, 0xcd, 0xa6, 0x0d, 0x17}},
	}
	for i, want := range cases {
		got, err := decodeRecord(encodeRecord(want))
		if err != nil {
			t.Fatalf("case %d: decode: %v", i, err)
		}
		if got.Kind != want.Kind || got.Key != want.Key || got.Sub != want.Sub ||
			!bytes.Equal(got.Value, want.Value) {
			t.Fatalf("case %d: round trip %+v -> %+v", i, want, got)
		}
	}
	if _, err := decodeRecord(nil); err == nil {
		t.Fatal("empty payload decoded")
	}
	if _, err := decodeRecord([]byte{byte(KindMemo), 0xff}); err == nil {
		t.Fatal("truncated varint decoded")
	}
	if _, err := decodeRecord([]byte{byte(KindMemo), 200, 0}); err == nil {
		t.Fatal("key length past payload decoded")
	}
}
