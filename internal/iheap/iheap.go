// Package iheap provides concrete indexed binary heaps over dense vertex IDs.
// Both heaps keep a position index per vertex, so membership tests, targeted
// removals and priority updates are O(1)/O(log n) without the interface
// boxing and interface{} round-trips of container/heap: the eviction paths of
// the schedule players and simulators call these operations once per load and
// once per evict, which makes the dispatch overhead measurable.
//
// EvictHeap is the storage-unit victim heap of the P-RBW schedule player
// (ordered by an external deadness flag, then recency, then vertex ID).
// PriorityHeap is a max-first heap over explicit int64 priorities used by the
// memsim cache policies, with ties broken deterministically by smallest
// vertex ID.
package iheap

import "cdagio/internal/cdag"

// EvictHeap is an indexed min-heap over the values resident in one storage
// unit, ordered by the eviction preference of the schedule player: dead values
// first (values whose loss costs nothing — a copy exists elsewhere, a blue
// pebble backs them, or no later compute step needs them), then the least
// recently touched, with ties broken by smallest vertex ID.  This is exactly
// the victim order the map-based reference player computes by scanning the
// whole unit; the heap delivers it in O(log capacity) per operation.
//
// Deadness is shared state owned by the player (one flag per vertex, the same
// for every unit holding the vertex) and passed into every operation; the
// player re-sifts the affected entries whenever a flag flips.
type EvictHeap struct {
	verts []cdag.VertexID
	touch []int64
	// pos[v] is the heap position of v, or -1 when absent.  Allocated lazily
	// on the unit's first placement, so untouched units of large topologies
	// cost nothing.
	pos []int32
	n   int
}

// Init sets the vertex universe size.  It must be called before the first
// Update.
func (h *EvictHeap) Init(n int) { h.n = n }

// Size returns the number of entries currently in the heap.
func (h *EvictHeap) Size() int { return len(h.verts) }

// Contains reports whether v is in the heap.
func (h *EvictHeap) Contains(v cdag.VertexID) bool {
	return h.pos != nil && h.pos[v] >= 0
}

func (h *EvictHeap) ensurePos() {
	if h.pos == nil {
		h.pos = make([]int32, h.n)
		for i := range h.pos {
			h.pos[i] = -1
		}
	}
}

// less orders entries by (dead first, oldest touch, smallest vertex).
func (h *EvictHeap) less(i, j int, dead []bool) bool {
	vi, vj := h.verts[i], h.verts[j]
	if dead[vi] != dead[vj] {
		return dead[vi]
	}
	if h.touch[i] != h.touch[j] {
		return h.touch[i] < h.touch[j]
	}
	return vi < vj
}

func (h *EvictHeap) swap(i, j int) {
	h.verts[i], h.verts[j] = h.verts[j], h.verts[i]
	h.touch[i], h.touch[j] = h.touch[j], h.touch[i]
	h.pos[h.verts[i]] = int32(i)
	h.pos[h.verts[j]] = int32(j)
}

func (h *EvictHeap) siftUp(i int, dead []bool) int {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent, dead) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
	return i
}

func (h *EvictHeap) siftDown(i int, dead []bool) {
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(h.verts) && h.less(l, smallest, dead) {
			smallest = l
		}
		if r < len(h.verts) && h.less(r, smallest, dead) {
			smallest = r
		}
		if smallest == i {
			return
		}
		h.swap(i, smallest)
		i = smallest
	}
}

// Update records a touch of v at the given clock, inserting it if absent.
func (h *EvictHeap) Update(v cdag.VertexID, clock int64, dead []bool) {
	h.ensurePos()
	if i := h.pos[v]; i >= 0 {
		h.touch[i] = clock
		h.siftDown(h.siftUp(int(i), dead), dead)
		return
	}
	h.verts = append(h.verts, v)
	h.touch = append(h.touch, clock)
	h.pos[v] = int32(len(h.verts) - 1)
	h.siftUp(len(h.verts)-1, dead)
}

// Remove deletes v from the heap; it is a no-op when v is absent.
func (h *EvictHeap) Remove(v cdag.VertexID, dead []bool) {
	if h.pos == nil || h.pos[v] < 0 {
		return
	}
	i := int(h.pos[v])
	last := len(h.verts) - 1
	if i != last {
		h.swap(i, last)
	}
	h.verts = h.verts[:last]
	h.touch = h.touch[:last]
	h.pos[v] = -1
	if i < last {
		h.siftDown(h.siftUp(i, dead), dead)
	}
}

// Fix restores the heap order around v after its dead flag flipped; it is a
// no-op when v is absent.
func (h *EvictHeap) Fix(v cdag.VertexID, dead []bool) {
	if h.pos == nil || h.pos[v] < 0 {
		return
	}
	h.siftDown(h.siftUp(int(h.pos[v]), dead), dead)
}

// PeekMin returns the current victim-preference minimum without removing it.
func (h *EvictHeap) PeekMin() (cdag.VertexID, bool) {
	if len(h.verts) == 0 {
		return cdag.InvalidVertex, false
	}
	return h.verts[0], true
}

// PopMin removes and returns the minimum entry together with its touch clock.
func (h *EvictHeap) PopMin(dead []bool) (cdag.VertexID, int64) {
	v, t := h.verts[0], h.touch[0]
	h.Remove(v, dead)
	return v, t
}

// CostHeap is a plain (non-indexed) binary min-heap over (cost, item) pairs:
// the root is the entry with the smallest cost, ties broken by smallest item
// id — a deterministic total order, unlike container/heap's tie behavior.
// Items are caller-managed int32 handles (indexes into an arena, dense ids),
// so pushes append into two flat slices instead of boxing a per-entry struct
// through an interface.  The exact pebble-game search uses it as the Dijkstra
// frontier over game states: duplicates are allowed, staleness is the
// caller's concern (the usual dist-map check on pop).
type CostHeap struct {
	cost []int64
	item []int32
}

// Len returns the number of entries currently in the heap.
func (h *CostHeap) Len() int { return len(h.cost) }

// Reset empties the heap, keeping its storage.
func (h *CostHeap) Reset() {
	h.cost = h.cost[:0]
	h.item = h.item[:0]
}

// first orders entries root-first: smaller cost, ties by smaller item id.
func (h *CostHeap) first(i, j int) bool {
	if h.cost[i] != h.cost[j] {
		return h.cost[i] < h.cost[j]
	}
	return h.item[i] < h.item[j]
}

func (h *CostHeap) swap(i, j int) {
	h.cost[i], h.cost[j] = h.cost[j], h.cost[i]
	h.item[i], h.item[j] = h.item[j], h.item[i]
}

// Push inserts an entry.
func (h *CostHeap) Push(cost int64, item int32) {
	h.cost = append(h.cost, cost)
	h.item = append(h.item, item)
	i := len(h.cost) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.first(i, parent) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

// PopMin removes and returns the minimum entry; ok is false when the heap is
// empty.
func (h *CostHeap) PopMin() (cost int64, item int32, ok bool) {
	if len(h.cost) == 0 {
		return 0, 0, false
	}
	cost, item = h.cost[0], h.item[0]
	last := len(h.cost) - 1
	h.swap(0, last)
	h.cost = h.cost[:last]
	h.item = h.item[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < last && h.first(l, min) {
			min = l
		}
		if r < last && h.first(r, min) {
			min = r
		}
		if min == i {
			break
		}
		h.swap(i, min)
		i = min
	}
	return cost, item, true
}

// PriorityHeap is an indexed binary heap over dense vertex IDs with explicit
// int64 priorities: the root is the entry with the LARGEST priority, ties
// broken by smallest vertex ID (a deterministic total order, unlike the
// container/heap tie behavior it replaces).
type PriorityHeap struct {
	verts []cdag.VertexID
	prio  []int64
	pos   []int32
	n     int
}

// Init sets the vertex universe size.  It must be called before the first
// Update.
func (h *PriorityHeap) Init(n int) { h.n = n }

// Len returns the number of entries currently in the heap.
func (h *PriorityHeap) Len() int { return len(h.verts) }

// Contains reports whether v is in the heap.
func (h *PriorityHeap) Contains(v cdag.VertexID) bool {
	return h.pos != nil && h.pos[v] >= 0
}

func (h *PriorityHeap) ensurePos() {
	if h.pos == nil {
		h.pos = make([]int32, h.n)
		for i := range h.pos {
			h.pos[i] = -1
		}
	}
}

// first orders entries root-first: larger priority, ties by smaller vertex.
func (h *PriorityHeap) first(i, j int) bool {
	if h.prio[i] != h.prio[j] {
		return h.prio[i] > h.prio[j]
	}
	return h.verts[i] < h.verts[j]
}

func (h *PriorityHeap) swap(i, j int) {
	h.verts[i], h.verts[j] = h.verts[j], h.verts[i]
	h.prio[i], h.prio[j] = h.prio[j], h.prio[i]
	h.pos[h.verts[i]] = int32(i)
	h.pos[h.verts[j]] = int32(j)
}

func (h *PriorityHeap) siftUp(i int) int {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.first(i, parent) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
	return i
}

func (h *PriorityHeap) siftDown(i int) {
	for {
		l, r := 2*i+1, 2*i+2
		top := i
		if l < len(h.verts) && h.first(l, top) {
			top = l
		}
		if r < len(h.verts) && h.first(r, top) {
			top = r
		}
		if top == i {
			return
		}
		h.swap(i, top)
		i = top
	}
}

// Update sets the priority of v, inserting it if absent.
func (h *PriorityHeap) Update(v cdag.VertexID, prio int64) {
	h.ensurePos()
	if i := h.pos[v]; i >= 0 {
		h.prio[i] = prio
		h.siftDown(h.siftUp(int(i)))
		return
	}
	h.verts = append(h.verts, v)
	h.prio = append(h.prio, prio)
	h.pos[v] = int32(len(h.verts) - 1)
	h.siftUp(len(h.verts) - 1)
}

// Remove deletes v from the heap; it is a no-op when v is absent.
func (h *PriorityHeap) Remove(v cdag.VertexID) {
	if h.pos == nil || h.pos[v] < 0 {
		return
	}
	i := int(h.pos[v])
	last := len(h.verts) - 1
	if i != last {
		h.swap(i, last)
	}
	h.verts = h.verts[:last]
	h.prio = h.prio[:last]
	h.pos[v] = -1
	if i < last {
		h.siftDown(h.siftUp(i))
	}
}

// PeekMax returns the entry with the largest priority without removing it.
func (h *PriorityHeap) PeekMax() (cdag.VertexID, int64, bool) {
	if len(h.verts) == 0 {
		return cdag.InvalidVertex, 0, false
	}
	return h.verts[0], h.prio[0], true
}

// PopMax removes and returns the entry with the largest priority.
func (h *PriorityHeap) PopMax() (cdag.VertexID, int64, bool) {
	if len(h.verts) == 0 {
		return cdag.InvalidVertex, 0, false
	}
	v, p := h.verts[0], h.prio[0]
	h.Remove(v)
	return v, p, true
}
