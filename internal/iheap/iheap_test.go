package iheap

import (
	"math/rand"
	"sort"
	"testing"

	"cdagio/internal/cdag"
)

// TestPriorityHeapOrder drives the heap with random updates and removals and
// checks that PopMax drains entries in (priority descending, vertex
// ascending) order — the deterministic victim order the memsim caches rely
// on.
func TestPriorityHeapOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 25; trial++ {
		n := 1 + rng.Intn(50)
		var h PriorityHeap
		h.Init(n)
		want := make(map[cdag.VertexID]int64)
		ops := 5 * n
		for o := 0; o < ops; o++ {
			v := cdag.VertexID(rng.Intn(n))
			switch rng.Intn(3) {
			case 0, 1:
				p := int64(rng.Intn(10)) // small range to force ties
				h.Update(v, p)
				want[v] = p
			case 2:
				h.Remove(v)
				delete(want, v)
			}
			if h.Len() != len(want) {
				t.Fatalf("Len = %d, want %d", h.Len(), len(want))
			}
		}
		type entry struct {
			v cdag.VertexID
			p int64
		}
		expect := make([]entry, 0, len(want))
		for v, p := range want {
			if !h.Contains(v) {
				t.Fatalf("Contains(%d) = false for resident vertex", v)
			}
			expect = append(expect, entry{v, p})
		}
		sort.Slice(expect, func(i, j int) bool {
			if expect[i].p != expect[j].p {
				return expect[i].p > expect[j].p
			}
			return expect[i].v < expect[j].v
		})
		if v, p, ok := h.PeekMax(); len(expect) > 0 && (!ok || v != expect[0].v || p != expect[0].p) {
			t.Fatalf("PeekMax = (%d,%d,%v), want (%d,%d)", v, p, ok, expect[0].v, expect[0].p)
		}
		for i, e := range expect {
			v, p, ok := h.PopMax()
			if !ok || v != e.v || p != e.p {
				t.Fatalf("trial %d pop %d: got (%d,%d,%v), want (%d,%d)", trial, i, v, p, ok, e.v, e.p)
			}
		}
		if _, _, ok := h.PopMax(); ok {
			t.Fatalf("PopMax on empty heap reported ok")
		}
	}
}

// TestEvictHeapDeadFirst checks the EvictHeap victim order: dead entries
// before live ones, then oldest touch, then smallest vertex, with Fix
// re-ranking after a deadness flip.
func TestEvictHeapDeadFirst(t *testing.T) {
	var h EvictHeap
	h.Init(4)
	dead := make([]bool, 4)
	h.Update(2, 10, dead)
	h.Update(0, 5, dead)
	h.Update(1, 5, dead)
	if v, _ := h.PeekMin(); v != 0 {
		t.Fatalf("min = %d, want 0 (oldest touch, smallest id)", v)
	}
	dead[2] = true
	h.Fix(2, dead)
	if v, _ := h.PeekMin(); v != 2 {
		t.Fatalf("min = %d, want dead vertex 2", v)
	}
	h.Remove(2, dead)
	if h.Size() != 2 || h.Contains(2) {
		t.Fatalf("remove failed: size=%d contains=%v", h.Size(), h.Contains(2))
	}
	v, clock := h.PopMin(dead)
	if v != 0 || clock != 5 {
		t.Fatalf("PopMin = (%d,%d), want (0,5)", v, clock)
	}
}

// TestCostHeapOrdering drives CostHeap against a sorted reference: pops must
// come out in (cost asc, item asc) order regardless of push order, including
// duplicate items and interleaved push/pop.
func TestCostHeapOrdering(t *testing.T) {
	var h CostHeap
	pushes := []struct {
		cost int64
		item int32
	}{
		{5, 2}, {1, 9}, {5, 0}, {3, 3}, {1, 1}, {3, 3}, {0, 7}, {5, 1},
	}
	for _, p := range pushes {
		h.Push(p.cost, p.item)
	}
	want := []struct {
		cost int64
		item int32
	}{
		{0, 7}, {1, 1}, {1, 9}, {3, 3}, {3, 3}, {5, 0}, {5, 1}, {5, 2},
	}
	for i, w := range want {
		c, it, ok := h.PopMin()
		if !ok || c != w.cost || it != w.item {
			t.Fatalf("pop %d = (%d, %d, %v), want (%d, %d, true)", i, c, it, ok, w.cost, w.item)
		}
	}
	if _, _, ok := h.PopMin(); ok {
		t.Fatal("pop from empty heap succeeded")
	}
	// Interleaved: push after draining reuses storage.
	h.Push(2, 4)
	h.Push(1, 5)
	if c, it, _ := h.PopMin(); c != 1 || it != 5 {
		t.Fatalf("interleaved pop = (%d, %d)", c, it)
	}
	h.Reset()
	if h.Len() != 0 {
		t.Fatal("Reset left entries")
	}
}
