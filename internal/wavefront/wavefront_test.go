package wavefront

import (
	"math/rand"
	"sort"
	"testing"

	"cdagio/internal/cdag"
	"cdagio/internal/gen"
	"cdagio/internal/pebble"
)

func TestScheduleWavefrontsChain(t *testing.T) {
	g := gen.Chain(5)
	order := g.MustTopoOrder()
	sizes, err := ScheduleWavefronts(g, order)
	if err != nil {
		t.Fatalf("ScheduleWavefronts: %v", err)
	}
	// On a chain the wavefront is always exactly one vertex.
	for i, s := range sizes {
		if s != 1 {
			t.Errorf("wavefront[%d] = %d, want 1", i, s)
		}
	}
	max, err := MaxScheduleWavefront(g, order)
	if err != nil || max != 1 {
		t.Errorf("max wavefront = %d (%v), want 1", max, err)
	}
}

func TestScheduleWavefrontsDiamond(t *testing.T) {
	g := cdag.NewGraph("diamond", 4)
	a := g.AddInput("a")
	b := g.AddVertex("b")
	c := g.AddVertex("c")
	d := g.AddOutput("d")
	g.AddEdge(a, b)
	g.AddEdge(a, c)
	g.AddEdge(b, d)
	g.AddEdge(c, d)
	sizes, err := ScheduleWavefronts(g, []cdag.VertexID{a, b, c, d})
	if err != nil {
		t.Fatalf("ScheduleWavefronts: %v", err)
	}
	// After firing b: a (successor c unfired) and b (successor d unfired)
	// are both live -> wavefront 2.  After firing c: b and c live -> 2.
	want := []int{1, 2, 2, 1}
	for i := range want {
		if sizes[i] != want[i] {
			t.Errorf("wavefront[%d] = %d, want %d (all: %v)", i, sizes[i], want[i], sizes)
		}
	}
}

func TestScheduleWavefrontsErrors(t *testing.T) {
	g := gen.Chain(3)
	if _, err := ScheduleWavefronts(g, []cdag.VertexID{0, 1}); err == nil {
		t.Errorf("expected length error")
	}
	if _, err := ScheduleWavefronts(g, []cdag.VertexID{0, 1, 1}); err == nil {
		t.Errorf("expected duplicate error")
	}
	if _, err := ScheduleWavefronts(g, []cdag.VertexID{1, 0, 2}); err == nil {
		t.Errorf("expected dependence error")
	}
	if _, err := ScheduleWavefronts(g, []cdag.VertexID{0, 1, 99}); err == nil {
		t.Errorf("expected range error")
	}
}

func TestWavefrontIsScheduleFootprintLowerBound(t *testing.T) {
	// For any schedule, the maximum wavefront is at most the number of red
	// pebbles needed to run it plus the I/O... more directly: the Lemma 2
	// bound 2(wmax − S) must never exceed the I/O of an actual game with S
	// pebbles.
	cases := []struct {
		name string
		g    *cdag.Graph
		s    int
	}{
		{"fft16", gen.FFT(16), 6},
		{"pyramid8", gen.Pyramid(8), 4},
		{"dot8", gen.DotProduct(8), 4},
		{"jacobi", gen.Jacobi(1, 10, 4, gen.StencilStar).Graph, 5},
	}
	for _, tc := range cases {
		wmax, at := WMax(tc.g, nil)
		if wmax < 1 || at == cdag.InvalidVertex {
			t.Fatalf("%s: WMax = %d", tc.name, wmax)
		}
		lb := Lemma2Bound(wmax, tc.s)
		res, err := pebble.PlayTopological(tc.g, pebble.RBW, tc.s, pebble.Belady)
		if err != nil {
			t.Fatalf("%s: PlayTopological: %v", tc.name, err)
		}
		if int64(res.IO()) < lb {
			t.Errorf("%s: measured I/O %d below Lemma 2 bound %d (wmax=%d)",
				tc.name, res.IO(), lb, wmax)
		}
	}
}

func TestLemma2Bound(t *testing.T) {
	if Lemma2Bound(10, 4) != 12 {
		t.Errorf("Lemma2Bound(10,4) = %d, want 12", Lemma2Bound(10, 4))
	}
	if Lemma2Bound(3, 8) != 0 {
		t.Errorf("Lemma2Bound should clamp at 0")
	}
}

func TestMinWavefrontAtReduction(t *testing.T) {
	// The CG-style reduction structure: the alpha vertex of iteration 0 in a
	// 1-D CG CDAG has a wavefront of at least 2n (vectors p and v are live).
	n := 8
	cg := gen.CG(1, n, 2)
	w := MinWavefrontAt(cg.Graph, cg.AlphaVertex[0])
	if w < 2*n {
		t.Errorf("CG alpha wavefront = %d, want >= %d", w, 2*n)
	}
	// The gamma vertex keeps at least the new residual vector live.
	wg := MinWavefrontAt(cg.Graph, cg.GammaVertex[0])
	if wg < n {
		t.Errorf("CG gamma wavefront = %d, want >= %d", wg, n)
	}
}

func TestNonDisjointBound(t *testing.T) {
	// Two sub-CDAGs with wavefronts 10 and 6, S = 4: 2(10-4) + 2(6-4) = 16.
	if got := NonDisjointBound([]int{10, 6}, 4); got != 16 {
		t.Errorf("NonDisjointBound = %d, want 16", got)
	}
	if got := NonDisjointBound(nil, 4); got != 0 {
		t.Errorf("empty NonDisjointBound = %d, want 0", got)
	}
}

func TestTopCandidates(t *testing.T) {
	g := gen.DotProduct(8)
	top := TopCandidates(g, 5)
	if len(top) != 5 {
		t.Fatalf("TopCandidates returned %d vertices", len(top))
	}
	// The highest-degree vertices should not be inputs (inputs have degree 1
	// in a dot product, multiply/add vertices have degree >= 2).
	if g.IsInput(top[0]) {
		t.Errorf("top candidate is an input vertex")
	}
	// Requesting more candidates than vertices returns all of them.
	all := TopCandidates(g, g.NumVertices()+10)
	if len(all) != g.NumVertices() {
		t.Errorf("TopCandidates overflow = %d", len(all))
	}
}

func TestWMaxCandidatesRestriction(t *testing.T) {
	// A dot product can be reduced as it goes, so its minimum wavefronts are
	// tiny; a 1-D CG iteration in contrast must keep whole vectors live.
	g := gen.DotProduct(6)
	full, _ := WMax(g, nil)
	restricted, _ := WMax(g, TopCandidates(g, 3))
	if restricted > full {
		t.Errorf("restricted WMax %d exceeds full WMax %d", restricted, full)
	}
	if full < 1 {
		t.Errorf("dot product WMax = %d, want >= 1", full)
	}
	cg := gen.CG(1, 6, 1)
	wcg, _ := WMax(cg.Graph, []cdag.VertexID{cg.AlphaVertex[0], cg.GammaVertex[0]})
	if wcg < 2*6 {
		t.Errorf("CG WMax = %d, want >= 12 (two live vectors)", wcg)
	}
}

// TestTopCandidatesMatchesFullSort checks the partial-selection heap against
// a full sort of all ranked vertices, over randomized DAGs and a range of k,
// including order (degree descending, ties by increasing vertex ID).
func TestTopCandidatesMatchesFullSort(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(40)
		g := cdag.NewGraph("rank", n)
		g.AddVertices(n)
		for e := 0; e < 3*n; e++ {
			u := rng.Intn(n - 1)
			v := u + 1 + rng.Intn(n-u-1)
			g.AddEdge(cdag.VertexID(u), cdag.VertexID(v))
		}
		type ranked struct {
			v      cdag.VertexID
			degree int
		}
		all := make([]ranked, 0, n)
		for _, v := range g.Vertices() {
			all = append(all, ranked{v: v, degree: g.InDegree(v) + g.OutDegree(v)})
		}
		sort.Slice(all, func(i, j int) bool {
			if all[i].degree != all[j].degree {
				return all[i].degree > all[j].degree
			}
			return all[i].v < all[j].v
		})
		for _, k := range []int{0, 1, 2, n / 2, n - 1, n, n + 5} {
			got := TopCandidates(g, k)
			want := k
			if want > n {
				want = n
			}
			if len(got) != want {
				t.Fatalf("trial %d k=%d: len=%d want %d", trial, k, len(got), want)
			}
			for i := range got {
				if got[i] != all[i].v {
					t.Fatalf("trial %d k=%d: got[%d]=%d want %d", trial, k, i, got[i], all[i].v)
				}
			}
		}
	}
}
