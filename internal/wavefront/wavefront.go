// Package wavefront implements the min-cut based lower-bound technique of
// Section 3.3: schedule wavefronts, minimum-cardinality wavefronts obtained
// from vertex min-cuts, the w^max quantity, and the Lemma 2 I/O lower bound
// 2·(w^max − S).
//
// The bounds computed here remain valid for CDAGs with tagged inputs because
// untagging inputs can only decrease the I/O complexity (Theorem 3), and the
// wavefront computation itself never looks at input/output tags.
package wavefront

import (
	"context"
	"fmt"

	"cdagio/internal/cdag"
	"cdagio/internal/graphalg"
)

// ScheduleWavefronts returns, for a complete firing order of all vertices of
// g (inputs included), the size of the wavefront after each firing: the
// number of already-fired vertices (including the one just fired) that still
// have an unfired successor, plus the vertex itself.  The maximum over the
// schedule is a lower bound on the fast-memory footprint of that schedule.
func ScheduleWavefronts(g *cdag.Graph, order []cdag.VertexID) ([]int, error) {
	n := g.NumVertices()
	if len(order) != n {
		return nil, fmt.Errorf("wavefront: order has %d vertices, graph has %d", len(order), n)
	}
	fired := make([]bool, n)
	position := make([]int, n)
	for i := range position {
		position[i] = -1
	}
	for i, v := range order {
		if !g.ValidVertex(v) {
			return nil, fmt.Errorf("wavefront: vertex %d out of range", v)
		}
		if position[v] >= 0 {
			return nil, fmt.Errorf("wavefront: vertex %d fired twice", v)
		}
		position[v] = i
	}
	// remaining[v] counts unfired successors of v.
	remaining := make([]int, n)
	for v := 0; v < n; v++ {
		remaining[v] = g.OutDegree(cdag.VertexID(v))
	}
	// live counts fired vertices that still have unfired successors.
	live := 0
	sizes := make([]int, len(order))
	// One hoisted predecessor row serves both passes of each step.
	predOff, predVal := g.PredecessorCSR()
	for i, v := range order {
		preds := predVal[predOff[v]:predOff[v+1]]
		for _, p := range preds {
			if !fired[p] {
				return nil, fmt.Errorf("wavefront: vertex %d fired before its predecessor %d", v, p)
			}
		}
		fired[v] = true
		if remaining[v] > 0 {
			live++
		}
		for _, p := range preds {
			remaining[p]--
			if remaining[p] == 0 {
				live--
			}
		}
		// The wavefront contains v by definition even when v has no unfired
		// successors left.
		w := live
		if remaining[v] == 0 {
			w++
		}
		sizes[i] = w
	}
	return sizes, nil
}

// MaxScheduleWavefront returns the largest wavefront of the schedule.
func MaxScheduleWavefront(g *cdag.Graph, order []cdag.VertexID) (int, error) {
	sizes, err := ScheduleWavefronts(g, order)
	if err != nil {
		return 0, err
	}
	max := 0
	for _, s := range sizes {
		if s > max {
			max = s
		}
	}
	return max, nil
}

// MinWavefrontAt returns a lower bound on the minimum-cardinality wavefront
// induced by x (Section 3.3), computed as the maximum number of vertex-
// disjoint paths from {x} ∪ Anc(x) to Desc(x).  It runs on the pooled
// strip-local CutSolver engine: the ancestor and descendant cones are
// contracted into the flow terminals, so repeated queries (the per-piece
// wavefronts of the Theorem 8/9 decompositions) cost O(strip), not O(V), and
// allocate nothing after warm-up.  The value is identical to the reference
// graphalg.MinWavefrontLowerBound.
func MinWavefrontAt(g *cdag.Graph, x cdag.VertexID) int {
	return graphalg.MinWavefrontLowerBoundStrip(g, x)
}

// WMax returns a lower bound on w^max_G = max_x |W^min_G(x)| over the given
// candidate vertices (all vertices when candidates is nil), along with a
// vertex attaining it.  It runs on the parallel pruned search engine with
// default options; use WMaxOpts to control concurrency and pruning.
func WMax(g *cdag.Graph, candidates []cdag.VertexID) (int, cdag.VertexID) {
	return graphalg.MaxMinWavefrontLowerBound(g, candidates)
}

// WMaxOptions configures the WMaxOpts search engine: worker-pool width,
// pruning, two-phase incumbent seeding (Seeds/SeedSample), warm-started
// solves and the mid-solve level-cut abort.  Every knob is performance-only;
// bound and witness never change.
type WMaxOptions = graphalg.WMaxOptions

// WMaxOpts is WMax with explicit search options: a bounded worker pool over
// the candidates (Concurrency ≤ 0 selects GOMAXPROCS) with per-worker
// reusable max-flow scratch and cheap upper-bound pruning.  The result —
// bound value and witness vertex — is always identical to the serial
// all-candidates scan, independent of worker count.
func WMaxOpts(g *cdag.Graph, candidates []cdag.VertexID, opts WMaxOptions) (int, cdag.VertexID) {
	return graphalg.MaxMinWavefrontLowerBoundOpts(g, candidates, opts)
}

// WMaxCtx is WMaxOpts under a context: the candidate scan checks ctx at its
// pruning-tier boundaries and returns ctx.Err() promptly once the context is
// cancelled (individual Dinic solves stay atomic).  Under a never-cancelled
// context the result is bit-identical to WMaxOpts at every worker count.
// opts.Pool, when set, supplies the per-worker cut solvers — this is how a
// Workspace routes repeated searches through its own solver cache.
func WMaxCtx(ctx context.Context, g *cdag.Graph, candidates []cdag.VertexID, opts WMaxOptions) (int, cdag.VertexID, error) {
	return graphalg.MaxMinWavefrontLowerBoundCtx(ctx, g, candidates, opts)
}

// Lemma2Bound returns the I/O lower bound of Lemma 2: 2·(wmax − S), never
// negative.
func Lemma2Bound(wmax, s int) int64 {
	v := int64(2) * int64(wmax-s)
	if v < 0 {
		return 0
	}
	return v
}

// TopCandidates returns up to k vertices of g ordered by decreasing
// (in-degree + out-degree), with ties broken by increasing vertex ID — a
// cheap heuristic for where large wavefronts occur (reduction roots and
// broadcast sources).  It lets callers bound WMax computations on large
// CDAGs without scanning every vertex.
//
// The selection is partial: a size-k min-heap over the streamed degrees
// followed by an in-place heapsort, O(V log k) time with one allocation for
// the result (plus a k-sized degree mirror), instead of materializing and
// fully sorting all |V| ranked entries.
func TopCandidates(g *cdag.Graph, k int) []cdag.VertexID {
	n := g.NumVertices()
	if k > n {
		k = n
	}
	if k < 0 {
		k = 0
	}
	out := make([]cdag.VertexID, 0, k)
	if k == 0 {
		return out
	}
	// degs mirrors out: each kept vertex's degree is computed once on entry
	// into the heap, never re-derived inside comparisons.
	degs := make([]int32, 0, k)
	// weaker(i, j): entry i is evicted from the top-k before entry j.  The
	// heap root is the weakest kept candidate.
	weaker := func(i, j int) bool {
		if degs[i] != degs[j] {
			return degs[i] < degs[j]
		}
		return out[i] > out[j]
	}
	swap := func(i, j int) {
		out[i], out[j] = out[j], out[i]
		degs[i], degs[j] = degs[j], degs[i]
	}
	siftDown := func(i, size int) {
		for {
			l, r := 2*i+1, 2*i+2
			min := i
			if l < size && weaker(l, min) {
				min = l
			}
			if r < size && weaker(r, min) {
				min = r
			}
			if min == i {
				return
			}
			swap(i, min)
			i = min
		}
	}
	for v := cdag.VertexID(0); int(v) < n; v++ {
		d := int32(g.InDegree(v) + g.OutDegree(v))
		if len(out) < k {
			out = append(out, v)
			degs = append(degs, d)
			// Sift up.
			for i := len(out) - 1; i > 0; {
				parent := (i - 1) / 2
				if !weaker(i, parent) {
					break
				}
				swap(i, parent)
				i = parent
			}
			continue
		}
		if degs[0] < d || (degs[0] == d && out[0] > v) {
			out[0], degs[0] = v, d
			siftDown(0, k)
		}
	}
	// In-place heapsort: repeatedly move the weakest remaining entry to the
	// end, leaving the slice ordered strongest first (degree descending, ties
	// by increasing vertex ID) — exactly the order a full sort would produce.
	for end := len(out) - 1; end > 0; end-- {
		swap(0, end)
		siftDown(0, end)
	}
	return out
}

// NonDisjointBound composes per-sub-CDAG wavefront bounds according to the
// non-disjoint decomposition of Theorem 4 as it is used in Theorems 8 and 9:
// for each designated vertex x_i of a (possibly overlapping) sub-CDAG C_i,
// the I/O of the whole CDAG is at least the sum over i of
// 2·(|W^min_{C_i}(x_i)| − S).  wavefronts lists the |W^min| values.
func NonDisjointBound(wavefronts []int, s int) int64 {
	var total int64
	for _, w := range wavefronts {
		total += Lemma2Bound(w, s)
	}
	return total
}
