// Package wavefront implements the min-cut based lower-bound technique of
// Section 3.3: schedule wavefronts, minimum-cardinality wavefronts obtained
// from vertex min-cuts, the w^max quantity, and the Lemma 2 I/O lower bound
// 2·(w^max − S).
//
// The bounds computed here remain valid for CDAGs with tagged inputs because
// untagging inputs can only decrease the I/O complexity (Theorem 3), and the
// wavefront computation itself never looks at input/output tags.
package wavefront

import (
	"fmt"
	"sort"

	"cdagio/internal/cdag"
	"cdagio/internal/graphalg"
)

// ScheduleWavefronts returns, for a complete firing order of all vertices of
// g (inputs included), the size of the wavefront after each firing: the
// number of already-fired vertices (including the one just fired) that still
// have an unfired successor, plus the vertex itself.  The maximum over the
// schedule is a lower bound on the fast-memory footprint of that schedule.
func ScheduleWavefronts(g *cdag.Graph, order []cdag.VertexID) ([]int, error) {
	n := g.NumVertices()
	if len(order) != n {
		return nil, fmt.Errorf("wavefront: order has %d vertices, graph has %d", len(order), n)
	}
	fired := make([]bool, n)
	position := make([]int, n)
	for i := range position {
		position[i] = -1
	}
	for i, v := range order {
		if !g.ValidVertex(v) {
			return nil, fmt.Errorf("wavefront: vertex %d out of range", v)
		}
		if position[v] >= 0 {
			return nil, fmt.Errorf("wavefront: vertex %d fired twice", v)
		}
		position[v] = i
	}
	// remaining[v] counts unfired successors of v.
	remaining := make([]int, n)
	for v := 0; v < n; v++ {
		remaining[v] = g.OutDegree(cdag.VertexID(v))
	}
	// live counts fired vertices that still have unfired successors.
	live := 0
	sizes := make([]int, len(order))
	for i, v := range order {
		for _, p := range g.Predecessors(v) {
			if !fired[p] {
				return nil, fmt.Errorf("wavefront: vertex %d fired before its predecessor %d", v, p)
			}
		}
		fired[v] = true
		if remaining[v] > 0 {
			live++
		}
		for _, p := range g.Predecessors(v) {
			remaining[p]--
			if remaining[p] == 0 {
				live--
			}
		}
		// The wavefront contains v by definition even when v has no unfired
		// successors left.
		w := live
		if remaining[v] == 0 {
			w++
		}
		sizes[i] = w
	}
	return sizes, nil
}

// MaxScheduleWavefront returns the largest wavefront of the schedule.
func MaxScheduleWavefront(g *cdag.Graph, order []cdag.VertexID) (int, error) {
	sizes, err := ScheduleWavefronts(g, order)
	if err != nil {
		return 0, err
	}
	max := 0
	for _, s := range sizes {
		if s > max {
			max = s
		}
	}
	return max, nil
}

// MinWavefrontAt returns a lower bound on the minimum-cardinality wavefront
// induced by x (Section 3.3), computed as the maximum number of vertex-
// disjoint paths from {x} ∪ Anc(x) to Desc(x).
func MinWavefrontAt(g *cdag.Graph, x cdag.VertexID) int {
	return graphalg.MinWavefrontLowerBound(g, x)
}

// WMax returns a lower bound on w^max_G = max_x |W^min_G(x)| over the given
// candidate vertices (all vertices when candidates is nil), along with a
// vertex attaining it.  It runs on the parallel pruned search engine with
// default options; use WMaxOpts to control concurrency and pruning.
func WMax(g *cdag.Graph, candidates []cdag.VertexID) (int, cdag.VertexID) {
	return graphalg.MaxMinWavefrontLowerBound(g, candidates)
}

// WMaxOptions configures the WMaxOpts search engine.
type WMaxOptions = graphalg.WMaxOptions

// WMaxOpts is WMax with explicit search options: a bounded worker pool over
// the candidates (Concurrency ≤ 0 selects GOMAXPROCS) with per-worker
// reusable max-flow scratch and cheap upper-bound pruning.  The result —
// bound value and witness vertex — is always identical to the serial
// all-candidates scan, independent of worker count.
func WMaxOpts(g *cdag.Graph, candidates []cdag.VertexID, opts WMaxOptions) (int, cdag.VertexID) {
	return graphalg.MaxMinWavefrontLowerBoundOpts(g, candidates, opts)
}

// Lemma2Bound returns the I/O lower bound of Lemma 2: 2·(wmax − S), never
// negative.
func Lemma2Bound(wmax, s int) int64 {
	v := int64(2) * int64(wmax-s)
	if v < 0 {
		return 0
	}
	return v
}

// TopCandidates returns up to k vertices of g ordered by decreasing
// (in-degree + out-degree), a cheap heuristic for where large wavefronts
// occur (reduction roots and broadcast sources).  It lets callers bound WMax
// computations on large CDAGs without scanning every vertex.
func TopCandidates(g *cdag.Graph, k int) []cdag.VertexID {
	type ranked struct {
		v      cdag.VertexID
		degree int
	}
	all := make([]ranked, 0, g.NumVertices())
	for _, v := range g.Vertices() {
		all = append(all, ranked{v: v, degree: g.InDegree(v) + g.OutDegree(v)})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].degree != all[j].degree {
			return all[i].degree > all[j].degree
		}
		return all[i].v < all[j].v
	})
	if k > len(all) {
		k = len(all)
	}
	out := make([]cdag.VertexID, k)
	for i := 0; i < k; i++ {
		out[i] = all[i].v
	}
	return out
}

// NonDisjointBound composes per-sub-CDAG wavefront bounds according to the
// non-disjoint decomposition of Theorem 4 as it is used in Theorems 8 and 9:
// for each designated vertex x_i of a (possibly overlapping) sub-CDAG C_i,
// the I/O of the whole CDAG is at least the sum over i of
// 2·(|W^min_{C_i}(x_i)| − S).  wavefronts lists the |W^min| values.
func NonDisjointBound(wavefronts []int, s int) int64 {
	var total int64
	for _, w := range wavefronts {
		total += Lemma2Bound(w, s)
	}
	return total
}
