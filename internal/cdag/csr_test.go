package cdag

import (
	"math/rand"
	"testing"
)

// sliceGraph is a reference reimplementation of the seed's slice-of-slices
// adjacency: per-vertex append lists with a linear duplicate scan on insert.
// The equivalence tests below prove that the CSR core reproduces its
// observable behavior — adjacency content and order, degrees, edge counts and
// topological order — exactly, so every bound, witness and I/O statistic
// derived from traversal order is bit-identical across the representation
// change.
type sliceGraph struct {
	succ [][]VertexID
	pred [][]VertexID
	n    int
	ne   int
}

func newSliceGraph(n int) *sliceGraph {
	return &sliceGraph{succ: make([][]VertexID, n), pred: make([][]VertexID, n), n: n}
}

func (s *sliceGraph) addEdge(u, v VertexID) {
	for _, w := range s.succ[u] {
		if w == v {
			return
		}
	}
	s.succ[u] = append(s.succ[u], v)
	s.pred[v] = append(s.pred[v], u)
	s.ne++
}

// kahn reproduces the FIFO Kahn ordering of Graph.TopoOrder on the reference
// adjacency.
func (s *sliceGraph) kahn() []VertexID {
	indeg := make([]int, s.n)
	for v := 0; v < s.n; v++ {
		indeg[v] = len(s.pred[v])
	}
	queue := make([]VertexID, 0, s.n)
	for v := 0; v < s.n; v++ {
		if indeg[v] == 0 {
			queue = append(queue, VertexID(v))
		}
	}
	order := make([]VertexID, 0, s.n)
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		order = append(order, v)
		for _, w := range s.succ[v] {
			indeg[w]--
			if indeg[w] == 0 {
				queue = append(queue, w)
			}
		}
	}
	return order
}

func equalIDs(a, b []VertexID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestCSREquivalenceRandomDAGs drives the CSR graph and the reference
// slice-of-slices graph with identical randomized edge streams (including
// duplicate insertions) and checks that adjacency, degrees, edge counts and
// topological order agree exactly.
func TestCSREquivalenceRandomDAGs(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(60)
		g := NewGraph("csr", n)
		g.AddVertices(n)
		ref := newSliceGraph(n)
		edges := rng.Intn(4 * n)
		for e := 0; e < edges; e++ {
			u := rng.Intn(n - 1)
			v := u + 1 + rng.Intn(n-u-1)
			// Insert in a shuffled direction order and occasionally duplicate,
			// to exercise dedup and order preservation.
			g.AddEdge(VertexID(u), VertexID(v))
			ref.addEdge(VertexID(u), VertexID(v))
			if rng.Intn(4) == 0 {
				g.AddEdge(VertexID(u), VertexID(v)) // duplicate, must be dropped
			}
		}
		if trial%2 == 0 {
			g.Freeze() // half the trials query through the frozen fast path
		}
		if g.NumEdges() != ref.ne {
			t.Fatalf("trial %d: NumEdges = %d, want %d", trial, g.NumEdges(), ref.ne)
		}
		for v := 0; v < n; v++ {
			id := VertexID(v)
			if !equalIDs(g.Succ(id), ref.succ[v]) {
				t.Fatalf("trial %d: Succ(%d) = %v, want %v", trial, v, g.Succ(id), ref.succ[v])
			}
			if !equalIDs(g.Pred(id), ref.pred[v]) {
				t.Fatalf("trial %d: Pred(%d) = %v, want %v", trial, v, g.Pred(id), ref.pred[v])
			}
			if g.OutDegree(id) != len(ref.succ[v]) || g.InDegree(id) != len(ref.pred[v]) {
				t.Fatalf("trial %d: degrees of %d disagree", trial, v)
			}
		}
		order, err := g.TopoOrder()
		if err != nil {
			t.Fatalf("trial %d: TopoOrder: %v", trial, err)
		}
		if !equalIDs(order, ref.kahn()) {
			t.Fatalf("trial %d: topo order diverged from reference", trial)
		}
	}
}

// TestPredecessorCSREquivalenceRandomDAGs drives the same randomized
// generator set as TestCSREquivalenceRandomDAGs (random DAGs with duplicate
// insertions, half the trials frozen) and checks that the hoisted
// PredecessorCSR/SuccessorCSR rows are identical — content and order — to
// the per-call Pred/Succ slices and to the slice-of-slices reference, so the
// players' hoisted row reads are proven interchangeable with the facade.
func TestPredecessorCSREquivalenceRandomDAGs(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(60)
		g := NewGraph("predcsr", n)
		g.AddVertices(n)
		ref := newSliceGraph(n)
		edges := rng.Intn(4 * n)
		for e := 0; e < edges; e++ {
			u := rng.Intn(n - 1)
			v := u + 1 + rng.Intn(n-u-1)
			g.AddEdge(VertexID(u), VertexID(v))
			ref.addEdge(VertexID(u), VertexID(v))
			if rng.Intn(4) == 0 {
				g.AddEdge(VertexID(u), VertexID(v)) // duplicate, must be dropped
			}
		}
		if trial%2 == 0 {
			g.Freeze()
		}
		predOff, predVal := g.PredecessorCSR()
		succOff, succVal := g.SuccessorCSR()
		if len(predOff) != n+1 || len(succOff) != n+1 {
			t.Fatalf("trial %d: offset lengths %d/%d, want %d", trial, len(predOff), len(succOff), n+1)
		}
		if predOff[n] != int64(g.NumEdges()) || succOff[n] != int64(g.NumEdges()) {
			t.Fatalf("trial %d: row totals %d/%d, want |E|=%d", trial, predOff[n], succOff[n], g.NumEdges())
		}
		for v := 0; v < n; v++ {
			id := VertexID(v)
			pRow := predVal[predOff[v]:predOff[v+1]]
			if !equalIDs(pRow, g.Pred(id)) || !equalIDs(pRow, ref.pred[v]) {
				t.Fatalf("trial %d: PredecessorCSR row %d = %v, Pred = %v, ref = %v",
					trial, v, pRow, g.Pred(id), ref.pred[v])
			}
			sRow := succVal[succOff[v]:succOff[v+1]]
			if !equalIDs(sRow, g.Succ(id)) || !equalIDs(sRow, ref.succ[v]) {
				t.Fatalf("trial %d: SuccessorCSR row %d = %v, Succ = %v, ref = %v",
					trial, v, sRow, g.Succ(id), ref.succ[v])
			}
		}
	}
}

// TestPredecessorCSRFirstInsertionOrderGolden pins the row-order contract on
// a hand-built graph: after dedup, each predecessor row lists its sources in
// the order their edges were first staged — not sorted, not source-major —
// and the rows survive a materialize→mutate→requery cycle unchanged.
func TestPredecessorCSRFirstInsertionOrderGolden(t *testing.T) {
	g := NewGraph("golden", 0)
	g.AddVertices(6)
	// Interleave sources so first-insertion order differs from both sorted
	// and source-major order, and stage duplicates that must be dropped.
	g.AddEdge(3, 5)
	g.AddEdge(0, 4)
	g.AddEdge(2, 5)
	g.AddEdge(3, 5) // duplicate
	g.AddEdge(1, 4)
	g.AddEdge(0, 5)
	g.AddEdge(2, 4)
	g.AddEdge(0, 4) // duplicate

	want := map[VertexID][]VertexID{
		4: {0, 1, 2},
		5: {3, 2, 0},
	}
	check := func(stage string) {
		predOff, predVal := g.PredecessorCSR()
		for v, exp := range want {
			got := predVal[predOff[v]:predOff[v+1]]
			if !equalIDs(got, exp) {
				t.Fatalf("%s: PredecessorCSR row %d = %v, want first-insertion order %v", stage, v, got, exp)
			}
		}
		if predOff[len(predOff)-1] != 6 {
			t.Fatalf("%s: total kept edges = %d, want 6 (duplicates dropped)", stage, predOff[len(predOff)-1])
		}
	}
	check("fresh")
	g.AddVertex("late") // reconstitutes and recompiles the staging buffer
	check("after remutation")
	g.Freeze()
	check("frozen")
}

// TestCSRMutateAfterMaterialize checks the staged → compiled → staged
// lifecycle: queries compile the CSR arrays, later mutations reconstitute the
// staging buffer, and the recompiled adjacency reflects both generations of
// edges in insertion order.
func TestCSRMutateAfterMaterialize(t *testing.T) {
	g := NewGraph("remat", 0)
	g.AddVertices(4)
	g.AddEdge(0, 2)
	g.AddEdge(0, 1)
	if got := g.Succ(0); !equalIDs(got, []VertexID{2, 1}) { // materializes
		t.Fatalf("Succ(0) = %v, want [2 1]", got)
	}
	g.AddEdge(0, 3) // reconstitutes the buffer from the CSR arrays
	g.AddEdge(0, 2) // duplicate of a pre-materialization edge
	if got := g.Succ(0); !equalIDs(got, []VertexID{2, 1, 3}) {
		t.Fatalf("after remutation Succ(0) = %v, want [2 1 3]", got)
	}
	if g.NumEdges() != 3 {
		t.Fatalf("NumEdges = %d, want 3", g.NumEdges())
	}
	if got := g.Pred(2); !equalIDs(got, []VertexID{0}) {
		t.Fatalf("Pred(2) = %v, want [0]", got)
	}
}

// TestCSRReserveAfterMaterialize is a regression test: ReserveEdges on a
// compiled graph must reconstitute the released staging buffer before
// growing it, or the next mutation would recompile from only the new edges
// and silently drop everything already compiled.
func TestCSRReserveAfterMaterialize(t *testing.T) {
	g := NewGraph("reserve", 0)
	g.AddVertices(3)
	g.AddEdge(0, 1)
	g.Materialize()
	g.ReserveEdges(1)
	g.AddEdge(1, 2)
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 2) || g.NumEdges() != 2 {
		t.Fatalf("edges lost: 0->1=%v 1->2=%v |E|=%d", g.HasEdge(0, 1), g.HasEdge(1, 2), g.NumEdges())
	}
}

// TestCSRPredOrderSurvivesRemutation is a regression test: reconstituting
// the staging buffer from the CSR arrays must yield a sequence consistent
// with the predecessor-row order too, not just the successor rows — a plain
// source-major walk would flip Pred(5) below from [2 1] to [1 2] after a
// materialize→mutate→requery cycle.
func TestCSRPredOrderSurvivesRemutation(t *testing.T) {
	g := NewGraph("predorder", 0)
	g.AddVertices(6)
	g.AddEdge(2, 5)
	g.AddEdge(1, 5)
	if got := g.Pred(5); !equalIDs(got, []VertexID{2, 1}) { // materializes
		t.Fatalf("Pred(5) = %v, want [2 1]", got)
	}
	g.AddVertex("late") // reconstitutes the buffer
	if got := g.Pred(5); !equalIDs(got, []VertexID{2, 1}) {
		t.Fatalf("after remutation Pred(5) = %v, want [2 1]", got)
	}
}

// TestCSREquivalenceInterleavedCycles drives random materialize→mutate
// cycles against the reference graph: after every cycle both adjacency
// directions must still match in content and order.
func TestCSREquivalenceInterleavedCycles(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 30; trial++ {
		n := 4 + rng.Intn(40)
		g := NewGraph("cycles", n)
		g.AddVertices(n)
		ref := newSliceGraph(n)
		for cycle := 0; cycle < 4; cycle++ {
			for e := 0; e < n; e++ {
				u := rng.Intn(n - 1)
				v := u + 1 + rng.Intn(n-u-1)
				g.AddEdge(VertexID(u), VertexID(v))
				ref.addEdge(VertexID(u), VertexID(v))
			}
			g.Materialize() // compile, releasing the staging buffer
			for v := 0; v < n; v++ {
				id := VertexID(v)
				if !equalIDs(g.Succ(id), ref.succ[v]) || !equalIDs(g.Pred(id), ref.pred[v]) {
					t.Fatalf("trial %d cycle %d: adjacency of %d diverged (succ %v vs %v, pred %v vs %v)",
						trial, cycle, v, g.Succ(id), ref.succ[v], g.Pred(id), ref.pred[v])
				}
			}
		}
	}
}

// TestCSRCloneCarriesStagedEdges checks that Clone is deep in both states:
// staged edges and compiled arrays survive independently.
func TestCSRCloneCarriesStagedEdges(t *testing.T) {
	g := NewGraph("clone", 0)
	g.AddVertices(3)
	g.AddEdge(0, 1) // staged, not yet compiled
	c := g.Clone()
	c.AddEdge(1, 2)
	if g.NumEdges() != 1 || c.NumEdges() != 2 {
		t.Fatalf("edges: orig %d (want 1), clone %d (want 2)", g.NumEdges(), c.NumEdges())
	}
	g.Materialize()
	c2 := g.Clone() // clone of a compiled graph
	c2.AddEdge(0, 2)
	if g.NumEdges() != 1 || c2.NumEdges() != 2 {
		t.Fatalf("post-materialize clone not independent")
	}
}

// TestAddVertexBytes checks the flat label staging path used by the
// generators.
func TestAddVertexBytes(t *testing.T) {
	g := NewGraph("bytes", 2)
	buf := []byte("mul[3,4]")
	v := g.AddVertexBytes(buf)
	buf = append(buf[:0], "other"...) // the graph must have copied the bytes
	w := g.AddInputBytes(buf)
	if g.Label(v) != "mul[3,4]" {
		t.Fatalf("Label(v) = %q, want mul[3,4]", g.Label(v))
	}
	if g.Label(w) != "other" || !g.IsInput(w) {
		t.Fatalf("AddInputBytes wrong: %q input=%v", g.Label(w), g.IsInput(w))
	}
	g.SetLabel(v, "renamed")
	if g.Label(v) != "renamed" || g.Label(w) != "other" {
		t.Fatalf("SetLabel override wrong: %q / %q", g.Label(v), g.Label(w))
	}
}

// TestFrozenGraphAllowsTagRelabeling is a regression test: Freeze locks the
// structure, not the input/output tags — the tagging/untagging relabeling of
// Theorem 3 must keep working on generator-frozen graphs without a Clone.
func TestFrozenGraphAllowsTagRelabeling(t *testing.T) {
	g := NewGraph("tags", 0)
	a := g.AddInput("a")
	b := g.AddVertex("b")
	g.AddEdge(a, b)
	g.Freeze()
	g.UntagInput(a)
	g.TagOutput(b)
	if g.NumInputs() != 0 || g.NumOutputs() != 1 || g.IsInput(a) || !g.IsOutput(b) {
		t.Fatalf("tag relabeling on frozen graph failed: |I|=%d |O|=%d", g.NumInputs(), g.NumOutputs())
	}
	g.TagHongKung() // sources back to inputs, sinks to outputs
	if !g.IsInput(a) {
		t.Fatalf("TagHongKung on frozen graph failed")
	}
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic on structural mutation of frozen graph")
		}
	}()
	g.AddEdge(b, a)
}

// TestFreezeCompilesAndLocks checks that Freeze materializes and that
// ReserveEdges on a frozen graph panics like any other mutation.
func TestFreezeCompilesAndLocks(t *testing.T) {
	g := NewGraph("frozen", 0)
	g.AddVertices(2)
	g.AddEdge(0, 1)
	g.Freeze()
	if !g.Frozen() || g.NumEdges() != 1 {
		t.Fatalf("Freeze did not compile: frozen=%v edges=%d", g.Frozen(), g.NumEdges())
	}
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic on ReserveEdges of frozen graph")
		}
	}()
	g.ReserveEdges(10)
}
