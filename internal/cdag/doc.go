// Package cdag provides the computational directed acyclic graph (CDAG)
// representation used throughout the library.
//
// A CDAG follows the model of Hong & Kung and of Elango et al.: it is a
// 4-tuple (I, V, E, O) where V is the vertex set, E ⊆ V×V the edge set,
// I ⊆ V the set of vertices tagged as inputs and O ⊆ V the set of vertices
// tagged as outputs.  Vertices represent scalar computational operations and
// edges represent flow of values between operations.  Two properties of the
// representation matter for the data-movement analyses built on top of it:
//
//  1. No execution order is encoded: only the partial order induced by the
//     edges constrains scheduling.
//  2. No memory locations are associated with operands or results.
//
// Unlike the original Hong–Kung model, and following the Red-Blue-White
// pebble-game refinement (Elango et al., Section 3), the input/output tagging
// is flexible: a vertex without predecessors need not be tagged as an input
// and a vertex without successors need not be tagged as an output.  The
// tagging directly affects the pebble games and the derived bounds, so the
// package keeps it explicit and mutable (see Graph.TagInput, Graph.UntagInput
// and friends, which implement the relabeling used by the tagging/untagging
// theorem).
//
// Graphs are built either through the incremental Builder-style methods
// (NewGraph, AddVertex, AddEdge) or by the generators in package gen and the
// tracer in package trace.  Vertex identifiers are dense small integers,
// which keeps the pebble-game engines and graph algorithms allocation-light.
package cdag
