// Package cdag provides the computational directed acyclic graph (CDAG)
// representation used throughout the library.
//
// A CDAG follows the model of Hong & Kung and of Elango et al.: it is a
// 4-tuple (I, V, E, O) where V is the vertex set, E ⊆ V×V the edge set,
// I ⊆ V the set of vertices tagged as inputs and O ⊆ V the set of vertices
// tagged as outputs.  Vertices represent scalar computational operations and
// edges represent flow of values between operations.  Two properties of the
// representation matter for the data-movement analyses built on top of it:
//
//  1. No execution order is encoded: only the partial order induced by the
//     edges constrains scheduling.
//  2. No memory locations are associated with operands or results.
//
// Unlike the original Hong–Kung model, and following the Red-Blue-White
// pebble-game refinement (Elango et al., Section 3), the input/output tagging
// is flexible: a vertex without predecessors need not be tagged as an input
// and a vertex without successors need not be tagged as an output.  The
// tagging directly affects the pebble games and the derived bounds, so the
// package keeps it explicit and mutable (see Graph.TagInput, Graph.UntagInput
// and friends, which implement the relabeling used by the tagging/untagging
// theorem).
//
// # Staged-then-frozen lifecycle
//
// A Graph passes through two representations:
//
//   - While being built (NewGraph, AddVertex/AddVertices/AddVertexBytes,
//     AddEdge, the generators in package gen and the tracer in package
//     trace), edges live in a single append-only staging buffer.  AddEdge is
//     a constant-time append: no per-edge duplicate scan, no per-vertex
//     allocation.  ReserveEdges pre-sizes the buffer when the edge count is
//     known.
//   - The first adjacency query — or an explicit Freeze or Materialize call —
//     compiles the staged edges into compressed-sparse-row (CSR) form: four
//     flat arrays (successor offsets + values, predecessor offsets + values,
//     one backing allocation each), built in O(V+E) by a stable counting-sort
//     scatter with per-row dedup.  Succ(v) and Pred(v) return subslices of
//     the flat arrays, so traversal is cache-linear and allocation-free.
//
// Invariants of the compiled form: vertex identifiers are dense small
// integers 0..n-1 in insertion order; adjacency lists are duplicate-free and
// hold their targets in first-insertion order (exactly the order the
// historical slice-of-slices representation produced, so traversal-derived
// schedules, bounds and I/O statistics are bit-identical across the
// representations — see the equivalence tests in csr_test.go); SortAdjacency
// optionally normalizes the lists to increasing vertex order.
//
// Mutating a compiled graph is permitted while it is not frozen: the staging
// buffer is reconstituted from the CSR arrays and the next query recompiles.
// This keeps interleaved build/query code working, but costs O(V+E) per
// recompilation — batch mutations, or Freeze the graph to make accidental
// structural mutation a panic.  Generators hand out frozen graphs.  Freezing
// locks vertices, edges and labels only: input/output tag flips stay legal on
// frozen graphs, because the Theorem 3 relabeling operates on finished CDAGs
// and tags never enter the compiled adjacency.
//
// # Choosing an adjacency accessor
//
// Succ and Pred are the default: one call returns the row of a single vertex
// as a subslice of the flat arrays, with a bounds check and a lazy
// materialization check per call.  That is the right interface for
// occasional queries, validation code, and anything that may run against a
// graph still being mutated.  Hot traversal loops — code that visits the row
// of every vertex, or replays the same rows many times per simulation (the
// pebble/P-RBW schedule players, memsim's cache simulator, the w^max cone
// explorations) — should instead hoist SuccessorCSR/PredecessorCSR (or
// AdjacencyCSR for both directions) once before the loop and index
// val[off[v]:off[v+1]] directly: same rows, same first-insertion order, but
// zero per-visit call, check or materialization overhead.  The returned
// arrays are invalidated by the next structural mutation, so the hoisted
// form is only for code that treats the graph as immutable while it runs.
//
// Concurrency: a Graph is not safe for concurrent mutation, and the lazy
// compilation is not synchronized either — call Freeze or Materialize (or
// perform any adjacency query) after the last mutation before sharing a
// graph across goroutines.  The parallel engines (graphalg's w^max search,
// memsim's sweep pool) materialize up front for exactly this reason.
package cdag
