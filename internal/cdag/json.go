package cdag

import (
	"encoding/json"
	"fmt"
	"io"
)

// jsonGraph is the on-disk representation of a Graph.
type jsonGraph struct {
	Name     string     `json:"name"`
	Vertices int        `json:"vertices"`
	Labels   []string   `json:"labels,omitempty"`
	Edges    [][2]int32 `json:"edges"`
	Inputs   []int32    `json:"inputs"`
	Outputs  []int32    `json:"outputs"`
}

// MarshalJSON encodes the graph in a compact adjacency-list form.
func (g *Graph) MarshalJSON() ([]byte, error) {
	g.ensure()
	jg := jsonGraph{
		Name:     g.name,
		Vertices: g.NumVertices(),
		Edges:    make([][2]int32, 0, g.nEdges),
		Inputs:   make([]int32, 0, g.nInputs),
		Outputs:  make([]int32, 0, g.nOutputs),
	}
	hasLabels := len(g.labelBuf) > 0
	for _, l := range g.labelOverride {
		if l != "" {
			hasLabels = true
		}
	}
	if hasLabels {
		jg.Labels = make([]string, g.n)
		for v := 0; v < g.n; v++ {
			jg.Labels[v] = g.Label(VertexID(v))
		}
	}
	for v := 0; v < g.NumVertices(); v++ {
		for _, w := range g.Succ(VertexID(v)) {
			jg.Edges = append(jg.Edges, [2]int32{int32(v), int32(w)})
		}
		if g.input[v] {
			jg.Inputs = append(jg.Inputs, int32(v))
		}
		if g.output[v] {
			jg.Outputs = append(jg.Outputs, int32(v))
		}
	}
	return json.Marshal(jg)
}

// UnmarshalJSON decodes a graph previously produced by MarshalJSON.
func (g *Graph) UnmarshalJSON(data []byte) error {
	var jg jsonGraph
	if err := json.Unmarshal(data, &jg); err != nil {
		return err
	}
	if jg.Vertices < 0 {
		return fmt.Errorf("cdag: negative vertex count %d", jg.Vertices)
	}
	ng := NewGraph(jg.Name, jg.Vertices)
	for i := 0; i < jg.Vertices; i++ {
		label := ""
		if i < len(jg.Labels) {
			label = jg.Labels[i]
		}
		ng.AddVertex(label)
	}
	for _, e := range jg.Edges {
		u, v := VertexID(e[0]), VertexID(e[1])
		if !ng.ValidVertex(u) || !ng.ValidVertex(v) {
			return fmt.Errorf("cdag: edge (%d,%d) out of range", u, v)
		}
		ng.AddEdge(u, v)
	}
	for _, v := range jg.Inputs {
		if !ng.ValidVertex(VertexID(v)) {
			return fmt.Errorf("cdag: input vertex %d out of range", v)
		}
		ng.TagInput(VertexID(v))
	}
	for _, v := range jg.Outputs {
		if !ng.ValidVertex(VertexID(v)) {
			return fmt.Errorf("cdag: output vertex %d out of range", v)
		}
		ng.TagOutput(VertexID(v))
	}
	*g = *ng
	return nil
}

// WriteJSON writes the graph as JSON to w.
func (g *Graph) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(g)
}

// ReadJSON reads a graph in the format written by WriteJSON.
func ReadJSON(r io.Reader) (*Graph, error) {
	var g Graph
	dec := json.NewDecoder(r)
	if err := dec.Decode(&g); err != nil {
		return nil, err
	}
	return &g, nil
}
