package cdag

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// jsonGraph is the on-disk representation of a Graph.
type jsonGraph struct {
	Name     string     `json:"name"`
	Vertices int        `json:"vertices"`
	Labels   []string   `json:"labels,omitempty"`
	Edges    [][2]int32 `json:"edges"`
	Inputs   []int32    `json:"inputs"`
	Outputs  []int32    `json:"outputs"`
}

// ErrLimit is wrapped by every JSON-decoding error caused by an input
// exceeding a configured JSONLimits bound, so boundary code can map the whole
// family to a "resource limit" response with one errors.Is test.
var ErrLimit = errors.New("cdag: input exceeds limit")

// JSONLimits bounds what ReadJSONLimits accepts before any storage
// proportional to the declared sizes is allocated.  A zero field means
// "unlimited"; the zero value accepts everything UnmarshalJSON accepts.
// Limit violations wrap ErrLimit; structural violations (edges out of range,
// self-loops, more labels than vertices) are ordinary descriptive errors.
type JSONLimits struct {
	// MaxVertices caps the declared vertex count.
	MaxVertices int
	// MaxEdges caps the number of edge pairs.
	MaxEdges int
	// MaxLabelBytes caps the total bytes across all vertex labels.
	MaxLabelBytes int64
}

// MarshalJSON encodes the graph in a compact adjacency-list form.
func (g *Graph) MarshalJSON() ([]byte, error) {
	g.ensure()
	jg := jsonGraph{
		Name:     g.name,
		Vertices: g.NumVertices(),
		Edges:    make([][2]int32, 0, g.nEdges),
		Inputs:   make([]int32, 0, g.nInputs),
		Outputs:  make([]int32, 0, g.nOutputs),
	}
	hasLabels := len(g.labelBuf) > 0
	for _, l := range g.labelOverride {
		if l != "" {
			hasLabels = true
		}
	}
	if hasLabels {
		jg.Labels = make([]string, g.n)
		for v := 0; v < g.n; v++ {
			jg.Labels[v] = g.Label(VertexID(v))
		}
	}
	for v := 0; v < g.NumVertices(); v++ {
		for _, w := range g.Succ(VertexID(v)) {
			jg.Edges = append(jg.Edges, [2]int32{int32(v), int32(w)})
		}
		if g.input[v] {
			jg.Inputs = append(jg.Inputs, int32(v))
		}
		if g.output[v] {
			jg.Outputs = append(jg.Outputs, int32(v))
		}
	}
	return json.Marshal(jg)
}

// decodeGraph validates jg against the limits and builds the graph.  Every
// rejection is a descriptive error, never a panic: the decoder is the
// boundary adversarial input crosses, so out-of-range endpoints, self-loops
// and oversized declarations must all fail closed.  Limits are enforced
// before any allocation proportional to the declared sizes.
func decodeGraph(jg *jsonGraph, lim JSONLimits) (*Graph, error) {
	if jg.Vertices < 0 {
		return nil, fmt.Errorf("cdag: negative vertex count %d", jg.Vertices)
	}
	if lim.MaxVertices > 0 && jg.Vertices > lim.MaxVertices {
		return nil, fmt.Errorf("%w: %d vertices > max %d", ErrLimit, jg.Vertices, lim.MaxVertices)
	}
	if lim.MaxEdges > 0 && len(jg.Edges) > lim.MaxEdges {
		return nil, fmt.Errorf("%w: %d edges > max %d", ErrLimit, len(jg.Edges), lim.MaxEdges)
	}
	if len(jg.Labels) > jg.Vertices {
		return nil, fmt.Errorf("cdag: %d labels for %d vertices", len(jg.Labels), jg.Vertices)
	}
	var labelBytes int64
	for _, l := range jg.Labels {
		labelBytes += int64(len(l))
	}
	if lim.MaxLabelBytes > 0 && labelBytes > lim.MaxLabelBytes {
		return nil, fmt.Errorf("%w: %d label bytes > max %d", ErrLimit, labelBytes, lim.MaxLabelBytes)
	}
	ng := NewGraph(jg.Name, jg.Vertices)
	for i := 0; i < jg.Vertices; i++ {
		label := ""
		if i < len(jg.Labels) {
			label = jg.Labels[i]
		}
		ng.AddVertex(label)
	}
	ng.ReserveEdges(len(jg.Edges))
	for _, e := range jg.Edges {
		u, v := VertexID(e[0]), VertexID(e[1])
		if !ng.ValidVertex(u) || !ng.ValidVertex(v) {
			return nil, fmt.Errorf("cdag: edge (%d,%d) out of range [0,%d)", u, v, jg.Vertices)
		}
		if u == v {
			// AddEdge panics on self-loops (a programmer error for generator
			// code); on the decode path it must be an input error instead.
			return nil, fmt.Errorf("cdag: self-loop edge (%d,%d)", u, v)
		}
		ng.AddEdge(u, v)
	}
	for _, v := range jg.Inputs {
		if !ng.ValidVertex(VertexID(v)) {
			return nil, fmt.Errorf("cdag: input vertex %d out of range [0,%d)", v, jg.Vertices)
		}
		ng.TagInput(VertexID(v))
	}
	for _, v := range jg.Outputs {
		if !ng.ValidVertex(VertexID(v)) {
			return nil, fmt.Errorf("cdag: output vertex %d out of range [0,%d)", v, jg.Vertices)
		}
		ng.TagOutput(VertexID(v))
	}
	return ng, nil
}

// UnmarshalJSON decodes a graph previously produced by MarshalJSON.  Every
// malformed input — truncated payload, out-of-range endpoints, self-loops,
// label/vertex count mismatch — yields a descriptive error; no input can
// reach a panic.  Size limits are not applied here (a Graph value is a
// trusted in-process type); boundary code reading untrusted bytes should use
// ReadJSONLimits.
func (g *Graph) UnmarshalJSON(data []byte) error {
	var jg jsonGraph
	if err := json.Unmarshal(data, &jg); err != nil {
		return err
	}
	ng, err := decodeGraph(&jg, JSONLimits{})
	if err != nil {
		return err
	}
	*g = *ng
	return nil
}

// WriteJSON writes the graph as JSON to w.
func (g *Graph) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(g)
}

// ReadJSON reads a graph in the format written by WriteJSON, with no size
// limits.  Use ReadJSONLimits when r carries untrusted bytes.
func ReadJSON(r io.Reader) (*Graph, error) {
	return ReadJSONLimits(r, JSONLimits{})
}

// ReadJSONLimits reads a graph in the format written by WriteJSON, enforcing
// lim before any storage proportional to the declared sizes is allocated: a
// payload declaring a billion vertices is rejected by count, not by running
// out of memory.  Limit violations wrap ErrLimit; all other malformed inputs
// yield descriptive errors.
func ReadJSONLimits(r io.Reader, lim JSONLimits) (*Graph, error) {
	var jg jsonGraph
	dec := json.NewDecoder(r)
	if err := dec.Decode(&jg); err != nil {
		return nil, err
	}
	return decodeGraph(&jg, lim)
}
