package cdag

import "sort"

// VertexSet is a set of vertices of a particular graph, stored densely as a
// bitmap plus an element count.  It is the working currency of the
// partitioning, decomposition and wavefront machinery, where sets are built
// incrementally and queried heavily.
type VertexSet struct {
	member []bool
	count  int
}

// NewVertexSet returns an empty set able to hold vertices of a graph with n
// vertices.
func NewVertexSet(n int) *VertexSet {
	return &VertexSet{member: make([]bool, n)}
}

// NewVertexSetOf returns a set over a universe of n vertices containing vs.
func NewVertexSetOf(n int, vs ...VertexID) *VertexSet {
	s := NewVertexSet(n)
	for _, v := range vs {
		s.Add(v)
	}
	return s
}

// Universe returns the size of the vertex universe the set was created for.
func (s *VertexSet) Universe() int { return len(s.member) }

// Len returns the number of elements in the set.
func (s *VertexSet) Len() int { return s.count }

// Contains reports whether v is in the set.
func (s *VertexSet) Contains(v VertexID) bool {
	return v >= 0 && int(v) < len(s.member) && s.member[v]
}

// Add inserts v.  It reports whether v was newly inserted.
func (s *VertexSet) Add(v VertexID) bool {
	if s.member[v] {
		return false
	}
	s.member[v] = true
	s.count++
	return true
}

// Remove deletes v.  It reports whether v was present.
func (s *VertexSet) Remove(v VertexID) bool {
	if !s.member[v] {
		return false
	}
	s.member[v] = false
	s.count--
	return true
}

// AddAll inserts every vertex in vs.
func (s *VertexSet) AddAll(vs []VertexID) {
	for _, v := range vs {
		s.Add(v)
	}
}

// Elements returns the elements in increasing order.
func (s *VertexSet) Elements() []VertexID {
	out := make([]VertexID, 0, s.count)
	for v, in := range s.member {
		if in {
			out = append(out, VertexID(v))
		}
	}
	return out
}

// Bitmap returns the set's dense membership bitmap: Bitmap()[v] reports
// whether v is in the set, for v in [0, Universe()).  The slice is owned by
// the set and must not be modified; it is the zero-overhead form of Contains
// for bulk scans (the cut solver's uncuttable-capacity flips read it
// directly instead of paying a predicate call per vertex).
func (s *VertexSet) Bitmap() []bool { return s.member }

// Clone returns a copy of the set.
func (s *VertexSet) Clone() *VertexSet {
	return &VertexSet{member: append([]bool(nil), s.member...), count: s.count}
}

// Clear removes all elements.
func (s *VertexSet) Clear() {
	for i := range s.member {
		s.member[i] = false
	}
	s.count = 0
}

// Union adds all elements of t to s.
func (s *VertexSet) Union(t *VertexSet) {
	for v, in := range t.member {
		if in {
			s.Add(VertexID(v))
		}
	}
}

// Intersects reports whether s and t share at least one element.
func (s *VertexSet) Intersects(t *VertexSet) bool {
	n := len(s.member)
	if len(t.member) < n {
		n = len(t.member)
	}
	for v := 0; v < n; v++ {
		if s.member[v] && t.member[v] {
			return true
		}
	}
	return false
}

// Equal reports whether s and t contain exactly the same elements.
func (s *VertexSet) Equal(t *VertexSet) bool {
	if s.count != t.count {
		return false
	}
	for v, in := range s.member {
		if in && !t.Contains(VertexID(v)) {
			return false
		}
	}
	return true
}

// Complement returns the set of vertices in the universe not contained in s.
func (s *VertexSet) Complement() *VertexSet {
	c := NewVertexSet(len(s.member))
	for v, in := range s.member {
		if !in {
			c.Add(VertexID(v))
		}
	}
	return c
}

// SortVertices sorts a slice of vertex IDs in place (increasing) and returns it.
func SortVertices(vs []VertexID) []VertexID {
	sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
	return vs
}

// In returns In(S) for the vertex set S of graph g: the set of vertices of
// V \ S that have at least one successor in S (Definition 5, P3).
func In(g *Graph, s *VertexSet) *VertexSet {
	in := NewVertexSet(g.NumVertices())
	for _, v := range s.Elements() {
		for _, p := range g.Pred(v) {
			if !s.Contains(p) {
				in.Add(p)
			}
		}
	}
	return in
}

// Out returns Out(S) for the vertex set S of graph g: the set of vertices of
// S that are tagged as outputs of g or have at least one successor outside S
// (Definition 5, P4).
func Out(g *Graph, s *VertexSet) *VertexSet {
	out := NewVertexSet(g.NumVertices())
	for _, v := range s.Elements() {
		if g.IsOutput(v) {
			out.Add(v)
			continue
		}
		for _, w := range g.Succ(v) {
			if !s.Contains(w) {
				out.Add(v)
				break
			}
		}
	}
	return out
}

// MinSet returns Min(S): the set of vertices in S all of whose successors lie
// outside S (Definition 3, the Hong–Kung minimum set).  A vertex of S with no
// successors is in Min(S).
func MinSet(g *Graph, s *VertexSet) *VertexSet {
	out := NewVertexSet(g.NumVertices())
	for _, v := range s.Elements() {
		inMin := true
		for _, w := range g.Succ(v) {
			if s.Contains(w) {
				inMin = false
				break
			}
		}
		if inMin {
			out.Add(v)
		}
	}
	return out
}
