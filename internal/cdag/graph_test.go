package cdag

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"testing/quick"
)

// diamond builds the 4-vertex diamond a -> {b,c} -> d with a as input and d
// as output.
func diamond(t testing.TB) (*Graph, [4]VertexID) {
	t.Helper()
	g := NewGraph("diamond", 4)
	a := g.AddInput("a")
	b := g.AddVertex("b")
	c := g.AddVertex("c")
	d := g.AddOutput("d")
	g.AddEdge(a, b)
	g.AddEdge(a, c)
	g.AddEdge(b, d)
	g.AddEdge(c, d)
	return g, [4]VertexID{a, b, c, d}
}

func TestGraphBasics(t *testing.T) {
	g, v := diamond(t)
	if got := g.NumVertices(); got != 4 {
		t.Fatalf("NumVertices = %d, want 4", got)
	}
	if got := g.NumEdges(); got != 4 {
		t.Fatalf("NumEdges = %d, want 4", got)
	}
	if got := g.NumInputs(); got != 1 {
		t.Errorf("NumInputs = %d, want 1", got)
	}
	if got := g.NumOutputs(); got != 1 {
		t.Errorf("NumOutputs = %d, want 1", got)
	}
	if got := g.NumOperations(); got != 3 {
		t.Errorf("NumOperations = %d, want 3", got)
	}
	if !g.HasEdge(v[0], v[1]) || g.HasEdge(v[1], v[0]) {
		t.Errorf("edge presence wrong")
	}
	if g.InDegree(v[3]) != 2 || g.OutDegree(v[0]) != 2 {
		t.Errorf("degrees wrong: in(d)=%d out(a)=%d", g.InDegree(v[3]), g.OutDegree(v[0]))
	}
	if !g.IsInput(v[0]) || g.IsInput(v[1]) {
		t.Errorf("input tags wrong")
	}
	if !g.IsOutput(v[3]) || g.IsOutput(v[2]) {
		t.Errorf("output tags wrong")
	}
	if g.Label(v[1]) != "b" {
		t.Errorf("Label = %q, want b", g.Label(v[1]))
	}
}

func TestDuplicateEdgeIgnored(t *testing.T) {
	g := NewGraph("dup", 2)
	a := g.AddVertex("a")
	b := g.AddVertex("b")
	g.AddEdge(a, b)
	g.AddEdge(a, b)
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1 after duplicate insert", g.NumEdges())
	}
	if len(g.Successors(a)) != 1 || len(g.Predecessors(b)) != 1 {
		t.Fatalf("adjacency contains duplicates")
	}
}

func TestSelfLoopPanics(t *testing.T) {
	g := NewGraph("loop", 1)
	a := g.AddVertex("a")
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic on self-loop")
		}
	}()
	g.AddEdge(a, a)
}

func TestFrozenGraphPanics(t *testing.T) {
	g, _ := diamond(t)
	g.Freeze()
	if !g.Frozen() {
		t.Fatalf("Frozen() = false after Freeze")
	}
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic on mutation of frozen graph")
		}
	}()
	g.AddVertex("x")
}

func TestTagUntag(t *testing.T) {
	g := NewGraph("tags", 2)
	a := g.AddVertex("a")
	g.TagInput(a)
	g.TagInput(a) // idempotent
	if g.NumInputs() != 1 {
		t.Fatalf("NumInputs = %d, want 1", g.NumInputs())
	}
	g.UntagInput(a)
	g.UntagInput(a)
	if g.NumInputs() != 0 {
		t.Fatalf("NumInputs = %d, want 0", g.NumInputs())
	}
	g.TagOutput(a)
	if g.NumOutputs() != 1 || !g.IsOutput(a) {
		t.Fatalf("output tagging failed")
	}
	g.UntagOutput(a)
	if g.NumOutputs() != 0 {
		t.Fatalf("output untagging failed")
	}
}

func TestTopoOrder(t *testing.T) {
	g, v := diamond(t)
	order, err := g.TopoOrder()
	if err != nil {
		t.Fatalf("TopoOrder: %v", err)
	}
	pos := make(map[VertexID]int)
	for i, u := range order {
		pos[u] = i
	}
	for u := 0; u < g.NumVertices(); u++ {
		for _, w := range g.Successors(VertexID(u)) {
			if pos[VertexID(u)] >= pos[w] {
				t.Fatalf("topological order violated: %d before %d", w, u)
			}
		}
	}
	if pos[v[0]] != 0 || pos[v[3]] != 3 {
		t.Errorf("expected a first and d last, got order %v", order)
	}
}

func TestTopoOrderCyclic(t *testing.T) {
	g := NewGraph("cycle", 3)
	a := g.AddVertex("a")
	b := g.AddVertex("b")
	c := g.AddVertex("c")
	g.AddEdge(a, b)
	g.AddEdge(b, c)
	g.AddEdge(c, a)
	if _, err := g.TopoOrder(); err == nil {
		t.Fatalf("expected cycle error")
	}
	if g.IsAcyclic() {
		t.Fatalf("IsAcyclic = true for cyclic graph")
	}
	if err := g.Validate(ValidateRBW); err == nil {
		t.Fatalf("Validate accepted a cyclic graph")
	}
}

func TestLevels(t *testing.T) {
	g, v := diamond(t)
	level, maxLevel, err := g.Levels()
	if err != nil {
		t.Fatalf("Levels: %v", err)
	}
	if maxLevel != 2 {
		t.Fatalf("maxLevel = %d, want 2", maxLevel)
	}
	want := map[VertexID]int{v[0]: 0, v[1]: 1, v[2]: 1, v[3]: 2}
	for u, l := range want {
		if level[u] != l {
			t.Errorf("level[%d] = %d, want %d", u, level[u], l)
		}
	}
	if g.CriticalPathLength() != 3 {
		t.Errorf("CriticalPathLength = %d, want 3", g.CriticalPathLength())
	}
}

func TestValidate(t *testing.T) {
	g, _ := diamond(t)
	if err := g.Validate(ValidateRBW); err != nil {
		t.Errorf("RBW validate: %v", err)
	}
	if err := g.Validate(ValidateHongKung); err != nil {
		t.Errorf("HongKung validate: %v", err)
	}

	// Input with a predecessor is invalid in both modes.
	bad := NewGraph("bad", 2)
	a := bad.AddVertex("a")
	b := bad.AddInput("b")
	bad.AddEdge(a, b)
	if err := bad.Validate(ValidateRBW); err == nil {
		t.Errorf("expected error for input with predecessor")
	}

	// Source that is not an input: fine for RBW, invalid for Hong-Kung.
	g2 := NewGraph("untaggedsrc", 2)
	x := g2.AddVertex("x")
	y := g2.AddOutput("y")
	g2.AddEdge(x, y)
	if err := g2.Validate(ValidateRBW); err != nil {
		t.Errorf("RBW validate untagged source: %v", err)
	}
	if err := g2.Validate(ValidateHongKung); err == nil {
		t.Errorf("Hong-Kung validate accepted untagged source")
	}

	// Sink that is not an output: invalid for Hong-Kung.
	g3 := NewGraph("untaggedsink", 2)
	p := g3.AddInput("p")
	q := g3.AddVertex("q")
	g3.AddEdge(p, q)
	if err := g3.Validate(ValidateHongKung); err == nil {
		t.Errorf("Hong-Kung validate accepted untagged sink")
	}
}

func TestTagHongKung(t *testing.T) {
	g := NewGraph("hk", 3)
	a := g.AddVertex("a")
	b := g.AddVertex("b")
	c := g.AddVertex("c")
	g.AddEdge(a, b)
	g.AddEdge(b, c)
	g.TagHongKung()
	if !g.IsInput(a) || !g.IsOutput(c) || g.IsInput(b) || g.IsOutput(b) {
		t.Fatalf("TagHongKung tags wrong")
	}
	if err := g.Validate(ValidateHongKung); err != nil {
		t.Fatalf("Validate after TagHongKung: %v", err)
	}
}

func TestSourcesSinksVertices(t *testing.T) {
	g, v := diamond(t)
	if got := g.Sources(); len(got) != 1 || got[0] != v[0] {
		t.Errorf("Sources = %v", got)
	}
	if got := g.Sinks(); len(got) != 1 || got[0] != v[3] {
		t.Errorf("Sinks = %v", got)
	}
	if got := g.Vertices(); len(got) != 4 {
		t.Errorf("Vertices = %v", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	g, v := diamond(t)
	c := g.Clone()
	c.AddVertex("extra")
	c.AddEdge(v[3], VertexID(4))
	c.UntagInput(v[0])
	if g.NumVertices() != 4 || g.NumEdges() != 4 || g.NumInputs() != 1 {
		t.Fatalf("mutating clone affected original: %v", g)
	}
	if c.NumVertices() != 5 || c.NumEdges() != 5 || c.NumInputs() != 0 {
		t.Fatalf("clone mutation lost: %v", c)
	}
}

func TestAddVerticesBulk(t *testing.T) {
	g := NewGraph("bulk", 0)
	first := g.AddVertices(10)
	if first != 0 || g.NumVertices() != 10 {
		t.Fatalf("AddVertices: first=%d n=%d", first, g.NumVertices())
	}
	second := g.AddVertices(5)
	if second != 10 || g.NumVertices() != 15 {
		t.Fatalf("AddVertices second: first=%d n=%d", second, g.NumVertices())
	}
}

func TestInOutMinSets(t *testing.T) {
	g, v := diamond(t)
	// S = {b, d}
	s := NewVertexSetOf(g.NumVertices(), v[1], v[3])
	in := In(g, s)
	// Predecessors outside S with a successor in S: a (pred of b), c (pred of d).
	if in.Len() != 2 || !in.Contains(v[0]) || !in.Contains(v[2]) {
		t.Errorf("In = %v", in.Elements())
	}
	out := Out(g, s)
	// d is an output; b has successor d inside S so b is not in Out.
	if out.Len() != 1 || !out.Contains(v[3]) {
		t.Errorf("Out = %v", out.Elements())
	}
	min := MinSet(g, s)
	// Min(S): vertices with all successors outside S: d (no successors).
	if min.Len() != 1 || !min.Contains(v[3]) {
		t.Errorf("Min = %v", min.Elements())
	}
}

func TestVertexSetOperations(t *testing.T) {
	s := NewVertexSet(8)
	if s.Len() != 0 || s.Universe() != 8 {
		t.Fatalf("empty set wrong")
	}
	if !s.Add(3) || s.Add(3) {
		t.Fatalf("Add semantics wrong")
	}
	s.AddAll([]VertexID{1, 5})
	if s.Len() != 3 || !s.Contains(1) || !s.Contains(5) || s.Contains(2) {
		t.Fatalf("AddAll/Contains wrong: %v", s.Elements())
	}
	c := s.Clone()
	c.Remove(1)
	if s.Len() != 3 || c.Len() != 2 {
		t.Fatalf("Clone not independent")
	}
	if !s.Intersects(c) {
		t.Fatalf("Intersects false for overlapping sets")
	}
	comp := s.Complement()
	if comp.Len() != 5 || comp.Contains(3) {
		t.Fatalf("Complement wrong: %v", comp.Elements())
	}
	if s.Equal(c) {
		t.Fatalf("Equal true for different sets")
	}
	c.Add(1)
	if !s.Equal(c) {
		t.Fatalf("Equal false for identical sets")
	}
	u := NewVertexSet(8)
	u.Union(s)
	if !u.Equal(s) {
		t.Fatalf("Union failed")
	}
	s.Clear()
	if s.Len() != 0 {
		t.Fatalf("Clear failed")
	}
	if !s.Remove(1) == false {
		t.Fatalf("Remove on absent should report false")
	}
}

func TestInducedSubgraph(t *testing.T) {
	g, v := diamond(t)
	s := NewVertexSetOf(g.NumVertices(), v[0], v[1], v[3])
	sub, m := InducedSubgraph(g, s, "sub")
	if sub.NumVertices() != 3 {
		t.Fatalf("sub |V| = %d, want 3", sub.NumVertices())
	}
	// Edges a->b and b->d survive; a->c and c->d are dropped.
	if sub.NumEdges() != 2 {
		t.Fatalf("sub |E| = %d, want 2", sub.NumEdges())
	}
	if sub.NumInputs() != 1 || sub.NumOutputs() != 1 {
		t.Fatalf("sub tags wrong: %v", sub)
	}
	if m.FromParent[v[2]] != InvalidVertex {
		t.Fatalf("mapping should exclude c")
	}
	for subV, parent := range m.ToParent {
		if m.FromParent[parent] != VertexID(subV) {
			t.Fatalf("mapping not inverse at %d", subV)
		}
	}
}

func TestPartitionStrict(t *testing.T) {
	g, v := diamond(t)
	p1 := NewVertexSetOf(4, v[0], v[1])
	p2 := NewVertexSetOf(4, v[2], v[3])
	subs, err := PartitionStrict(g, []*VertexSet{p1, p2}, []string{"left", "right"})
	if err != nil {
		t.Fatalf("PartitionStrict: %v", err)
	}
	if len(subs) != 2 || subs[0].NumVertices() != 2 || subs[1].NumVertices() != 2 {
		t.Fatalf("partition sizes wrong")
	}
	// Overlapping parts must fail.
	p3 := NewVertexSetOf(4, v[1], v[2], v[3])
	if _, err := PartitionStrict(g, []*VertexSet{p1, p3}, nil); err == nil {
		t.Fatalf("expected error for overlapping parts")
	}
	// Non-covering parts must fail.
	if _, err := PartitionStrict(g, []*VertexSet{p1}, nil); err == nil {
		t.Fatalf("expected error for non-covering parts")
	}
	// Partition (panicking wrapper) should succeed on the valid split.
	subs2 := Partition(g, []*VertexSet{p1, p2}, nil)
	if len(subs2) != 2 {
		t.Fatalf("Partition returned %d parts", len(subs2))
	}
}

func TestDeleteInputsOutputs(t *testing.T) {
	g, _ := diamond(t)
	reduced, dI, dO := DeleteInputsOutputs(g)
	if dI != 1 || dO != 1 {
		t.Fatalf("dI=%d dO=%d, want 1,1", dI, dO)
	}
	if reduced.NumVertices() != 2 || reduced.NumEdges() != 0 {
		t.Fatalf("reduced graph wrong: %v", reduced)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	g, _ := diamond(t)
	var buf bytes.Buffer
	if err := g.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatalf("ReadJSON: %v", err)
	}
	if back.NumVertices() != g.NumVertices() || back.NumEdges() != g.NumEdges() ||
		back.NumInputs() != g.NumInputs() || back.NumOutputs() != g.NumOutputs() {
		t.Fatalf("round trip mismatch: %v vs %v", back, g)
	}
	for v := 0; v < g.NumVertices(); v++ {
		id := VertexID(v)
		if back.Label(id) != g.Label(id) {
			t.Errorf("label mismatch at %d", v)
		}
		if len(back.Successors(id)) != len(g.Successors(id)) {
			t.Errorf("adjacency mismatch at %d", v)
		}
	}
}

func TestJSONErrors(t *testing.T) {
	cases := []string{
		`{"vertices":2,"edges":[[0,5]],"inputs":[],"outputs":[]}`,
		`{"vertices":1,"edges":[],"inputs":[7],"outputs":[]}`,
		`{"vertices":1,"edges":[],"inputs":[],"outputs":[9]}`,
		`{"vertices":-1,"edges":[],"inputs":[],"outputs":[]}`,
		`not json`,
	}
	for _, c := range cases {
		var g Graph
		if err := json.Unmarshal([]byte(c), &g); err == nil {
			t.Errorf("expected error decoding %q", c)
		}
	}
}

func TestWriteDOT(t *testing.T) {
	g, _ := diamond(t)
	var buf bytes.Buffer
	if err := g.WriteDOT(&buf, DOTOptions{RankLevels: true}); err != nil {
		t.Fatalf("WriteDOT: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"digraph", "n0 -> n1", "shape=box", "shape=doublecircle", "rank=same"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
	// Truncation.
	buf.Reset()
	if err := g.WriteDOT(&buf, DOTOptions{MaxVertices: 2}); err != nil {
		t.Fatalf("WriteDOT truncated: %v", err)
	}
	if !strings.Contains(buf.String(), "truncated") {
		t.Errorf("expected truncation comment")
	}
}

func TestComputeStats(t *testing.T) {
	g, _ := diamond(t)
	s := ComputeStats(g)
	if s.Vertices != 4 || s.Edges != 4 || s.Depth != 3 || s.MaxLevelSz != 2 ||
		s.Sources != 1 || s.Sinks != 1 || s.MaxInDeg != 2 || s.MaxOutDeg != 2 {
		t.Fatalf("stats wrong: %+v", s)
	}
	if s.String() == "" {
		t.Fatalf("empty stats string")
	}
}

func TestGraphString(t *testing.T) {
	g, _ := diamond(t)
	if !strings.Contains(g.String(), "diamond") {
		t.Errorf("String missing name: %s", g.String())
	}
}

// TestTopoOrderProperty checks, over randomly generated DAGs, that TopoOrder
// returns a permutation respecting all edges.
func TestTopoOrderProperty(t *testing.T) {
	f := func(seedEdges []uint16, nRaw uint8) bool {
		n := int(nRaw%30) + 2
		g := NewGraph("rand", n)
		g.AddVertices(n)
		// Interpret each seed value as an edge u->v with u<v to guarantee acyclicity.
		for _, s := range seedEdges {
			u := int(s) % n
			v := int(s>>8) % n
			if u == v {
				continue
			}
			if u > v {
				u, v = v, u
			}
			g.AddEdge(VertexID(u), VertexID(v))
		}
		order, err := g.TopoOrder()
		if err != nil || len(order) != n {
			return false
		}
		pos := make([]int, n)
		for i, v := range order {
			pos[v] = i
		}
		for u := 0; u < n; u++ {
			for _, w := range g.Successors(VertexID(u)) {
				if pos[u] >= pos[w] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestJSONRoundTripProperty checks JSON round-tripping over random DAGs.
func TestJSONRoundTripProperty(t *testing.T) {
	f := func(seedEdges []uint16, nRaw uint8) bool {
		n := int(nRaw%20) + 1
		g := NewGraph("rand", n)
		g.AddVertices(n)
		for _, s := range seedEdges {
			u := int(s) % n
			v := int(s>>8) % n
			if u >= v {
				continue
			}
			g.AddEdge(VertexID(u), VertexID(v))
		}
		g.TagHongKung()
		data, err := json.Marshal(g)
		if err != nil {
			return false
		}
		var back Graph
		if err := json.Unmarshal(data, &back); err != nil {
			return false
		}
		if back.NumVertices() != g.NumVertices() || back.NumEdges() != g.NumEdges() ||
			back.NumInputs() != g.NumInputs() || back.NumOutputs() != g.NumOutputs() {
			return false
		}
		for v := 0; v < n; v++ {
			id := VertexID(v)
			if back.IsInput(id) != g.IsInput(id) || back.IsOutput(id) != g.IsOutput(id) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSortAdjacency(t *testing.T) {
	g := NewGraph("sort", 4)
	a := g.AddVertex("a")
	b := g.AddVertex("b")
	c := g.AddVertex("c")
	d := g.AddVertex("d")
	g.AddEdge(a, d)
	g.AddEdge(a, b)
	g.AddEdge(a, c)
	g.SortAdjacency()
	succ := g.Successors(a)
	for i := 1; i < len(succ); i++ {
		if succ[i-1] > succ[i] {
			t.Fatalf("successors not sorted: %v", succ)
		}
	}
	_ = d
}

func TestValidVertexAndPanics(t *testing.T) {
	g, _ := diamond(t)
	if g.ValidVertex(-1) || g.ValidVertex(99) || !g.ValidVertex(0) {
		t.Fatalf("ValidVertex wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic for out-of-range vertex")
		}
	}()
	g.Successors(99)
}
