package cdag

import "fmt"

// TopoOrder returns the vertices of g in a topological order (Kahn's
// algorithm with a FIFO worklist, so the order is deterministic for a given
// construction order).  It returns ErrCyclic if the graph contains a cycle.
func (g *Graph) TopoOrder() ([]VertexID, error) {
	g.ensure()
	n := g.n
	indeg := make([]int32, n)
	for v := 0; v < n; v++ {
		indeg[v] = int32(g.predOff[v+1] - g.predOff[v])
	}
	queue := make([]VertexID, 0, n)
	for v := 0; v < n; v++ {
		if indeg[v] == 0 {
			queue = append(queue, VertexID(v))
		}
	}
	order := make([]VertexID, 0, n)
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		order = append(order, v)
		for _, w := range g.succVal[g.succOff[v]:g.succOff[v+1]] {
			indeg[w]--
			if indeg[w] == 0 {
				queue = append(queue, w)
			}
		}
	}
	if len(order) != n {
		return nil, fmt.Errorf("%w: %d of %d vertices unreachable from sources in Kahn ordering",
			ErrCyclic, n-len(order), n)
	}
	return order, nil
}

// MustTopoOrder is TopoOrder but panics on cyclic graphs.  Generators produce
// acyclic graphs by construction, so this is the common entry point inside
// the library.
func (g *Graph) MustTopoOrder() []VertexID {
	order, err := g.TopoOrder()
	if err != nil {
		panic(err)
	}
	return order
}

// IsAcyclic reports whether g contains no directed cycle.
func (g *Graph) IsAcyclic() bool {
	_, err := g.TopoOrder()
	return err == nil
}

// Levels assigns each vertex its longest-path depth from the sources
// (sources have level 0) and returns the per-vertex level along with the
// maximum level.  The level structure is the "layer" decomposition used by
// wavefront schedules and by several generators' self-checks.
func (g *Graph) Levels() (level []int, maxLevel int, err error) {
	order, err := g.TopoOrder()
	if err != nil {
		return nil, 0, err
	}
	level = make([]int, g.n)
	for _, v := range order {
		for _, p := range g.predVal[g.predOff[v]:g.predOff[v+1]] {
			if level[p]+1 > level[v] {
				level[v] = level[p] + 1
			}
		}
		if level[v] > maxLevel {
			maxLevel = level[v]
		}
	}
	return level, maxLevel, nil
}

// CriticalPathLength returns the number of vertices on a longest directed
// path in g (the depth of the computation, a lower bound on parallel steps).
func (g *Graph) CriticalPathLength() int {
	_, maxLevel, err := g.Levels()
	if err != nil {
		return 0
	}
	return maxLevel + 1
}
