package cdag

// FootprintBytes returns an estimate of the heap bytes the graph currently
// holds: label storage, tag arrays, the staged edge buffer and the compiled
// CSR arrays.  It is the admission currency of the serving layer's
// byte-budgeted Workspace cache, so it deliberately measures capacity (what
// the process has actually committed), not length.
func (g *Graph) FootprintBytes() int64 {
	b := int64(0)
	b += int64(cap(g.labelBuf))
	b += int64(cap(g.labelEnd)) * 4
	b += int64(cap(g.input)) + int64(cap(g.output))
	b += int64(cap(g.eu))*4 + int64(cap(g.ev))*4
	b += int64(cap(g.succOff))*8 + int64(cap(g.predOff))*8
	b += int64(cap(g.succVal))*4 + int64(cap(g.predVal))*4
	for _, l := range g.labelOverride {
		b += int64(len(l)) + 16
	}
	return b
}

// EstimateFootprintBytes predicts FootprintBytes for a materialized graph
// with the given vertex, edge and label-byte counts, without building it:
// the CSR form stores two offset arrays of (V+1) int64 and two value arrays
// of E int32, plus the tag and label-end arrays.  Boundary code uses this to
// reject an upload by its declared size before allocating anything.
func EstimateFootprintBytes(vertices, edges int, labelBytes int64) int64 {
	v, e := int64(vertices), int64(edges)
	return labelBytes + // labelBuf
		v*4 + // labelEnd
		v*2 + // input + output tags
		(v+1)*16 + // succOff + predOff
		e*8 // succVal + predVal
}
