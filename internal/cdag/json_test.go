package cdag

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

// mustJSON marshals a small graph built by fn, for seeding tests.
func mustJSON(t testing.TB, fn func(g *Graph)) []byte {
	t.Helper()
	g := NewGraph("t", 0)
	fn(g)
	data, err := json.Marshal(g)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return data
}

func TestReadJSONLimitsRejections(t *testing.T) {
	cases := []struct {
		name    string
		payload string
		lim     JSONLimits
		wantSub string
		isLimit bool
	}{
		{
			name:    "negative vertices",
			payload: `{"vertices": -1, "edges": []}`,
			wantSub: "negative vertex count",
		},
		{
			name:    "vertex limit",
			payload: `{"vertices": 1000000000, "edges": []}`,
			lim:     JSONLimits{MaxVertices: 1000},
			wantSub: "vertices > max",
			isLimit: true,
		},
		{
			name:    "edge limit",
			payload: `{"vertices": 3, "edges": [[0,1],[1,2],[0,2]]}`,
			lim:     JSONLimits{MaxEdges: 2},
			wantSub: "edges > max",
			isLimit: true,
		},
		{
			name:    "label bytes limit",
			payload: `{"vertices": 2, "labels": ["aaaaaaaa", "bbbbbbbb"], "edges": []}`,
			lim:     JSONLimits{MaxLabelBytes: 8},
			wantSub: "label bytes > max",
			isLimit: true,
		},
		{
			name:    "edge endpoint out of range",
			payload: `{"vertices": 2, "edges": [[0,5]]}`,
			wantSub: "out of range",
		},
		{
			name:    "negative edge endpoint",
			payload: `{"vertices": 2, "edges": [[-1,1]]}`,
			wantSub: "out of range",
		},
		{
			name:    "self-loop",
			payload: `{"vertices": 2, "edges": [[1,1]]}`,
			wantSub: "self-loop",
		},
		{
			name:    "input out of range",
			payload: `{"vertices": 2, "edges": [], "inputs": [7]}`,
			wantSub: "input vertex 7 out of range",
		},
		{
			name:    "output out of range",
			payload: `{"vertices": 2, "edges": [], "outputs": [-3]}`,
			wantSub: "output vertex -3 out of range",
		},
		{
			name:    "more labels than vertices",
			payload: `{"vertices": 1, "labels": ["a", "b"], "edges": []}`,
			wantSub: "2 labels for 1 vertices",
		},
		{
			name:    "truncated payload",
			payload: `{"vertices": 2, "edges": [[0,`,
			wantSub: "unexpected EOF",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadJSONLimits(strings.NewReader(tc.payload), tc.lim)
			if err == nil {
				t.Fatalf("ReadJSONLimits accepted %q", tc.payload)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not mention %q", err, tc.wantSub)
			}
			if got := errors.Is(err, ErrLimit); got != tc.isLimit {
				t.Fatalf("errors.Is(err, ErrLimit) = %v, want %v (err %q)", got, tc.isLimit, err)
			}
		})
	}
}

func TestReadJSONLimitsAcceptsWithinLimits(t *testing.T) {
	data := mustJSON(t, func(g *Graph) {
		a := g.AddInput("a")
		b := g.AddVertex("b")
		c := g.AddOutput("c")
		g.AddEdge(a, b)
		g.AddEdge(b, c)
	})
	g, err := ReadJSONLimits(bytes.NewReader(data), JSONLimits{MaxVertices: 10, MaxEdges: 10, MaxLabelBytes: 100})
	if err != nil {
		t.Fatalf("ReadJSONLimits: %v", err)
	}
	if g.NumVertices() != 3 || g.NumEdges() != 2 || g.NumInputs() != 1 || g.NumOutputs() != 1 {
		t.Fatalf("unexpected decoded graph %v", g)
	}
}

func TestEstimateFootprintTracksActual(t *testing.T) {
	g := NewGraph("fp", 0)
	var prev VertexID
	for i := 0; i < 1000; i++ {
		v := g.AddVertex("x")
		if i > 0 {
			g.AddEdge(prev, v)
		}
		prev = v
	}
	g.Materialize()
	actual := g.FootprintBytes()
	est := EstimateFootprintBytes(1000, 999, 1000)
	if actual <= 0 || est <= 0 {
		t.Fatalf("non-positive footprint: actual %d est %d", actual, est)
	}
	// The estimate predicts the materialized CSR layout; the actual value
	// also counts slice over-capacity, so agreement within 4x is what the
	// admission-control use needs.
	if actual > 4*est || est > 4*actual {
		t.Fatalf("estimate %d and actual %d diverge", est, actual)
	}
}

// FuzzReadJSON asserts the two ingestion guarantees the daemon relies on:
// no input can panic the decoder, and any accepted input round-trips stably
// (re-encoding and re-decoding yields a structurally identical graph).
func FuzzReadJSON(f *testing.F) {
	f.Add([]byte(`{"vertices":3,"edges":[[0,1],[1,2]],"inputs":[0],"outputs":[2]}`))
	f.Add([]byte(`{"vertices":2,"labels":["a","b"],"edges":[[0,1]],"inputs":[0],"outputs":[1]}`))
	f.Add([]byte(`{"vertices":0,"edges":[]}`))
	f.Add([]byte(`{"vertices":2,"edges":[[1,1]]}`))
	f.Add([]byte(`{"vertices":-5}`))
	f.Add([]byte(`{"vertices":4,"edges":[[0,3],[3,0]]}`))
	f.Add([]byte(`not json`))
	f.Fuzz(func(t *testing.T, data []byte) {
		lim := JSONLimits{MaxVertices: 1 << 12, MaxEdges: 1 << 14, MaxLabelBytes: 1 << 16}
		g, err := ReadJSONLimits(bytes.NewReader(data), lim)
		if err != nil {
			return
		}
		enc, err := json.Marshal(g)
		if err != nil {
			t.Fatalf("re-encode of accepted input failed: %v", err)
		}
		g2, err := ReadJSONLimits(bytes.NewReader(enc), lim)
		if err != nil {
			t.Fatalf("re-decode of re-encoded input failed: %v\nencoded: %s", err, enc)
		}
		if g.NumVertices() != g2.NumVertices() || g.NumEdges() != g2.NumEdges() ||
			g.NumInputs() != g2.NumInputs() || g.NumOutputs() != g2.NumOutputs() {
			t.Fatalf("round-trip changed shape: %v vs %v", g, g2)
		}
		for v := 0; v < g.NumVertices(); v++ {
			id := VertexID(v)
			if g.IsInput(id) != g2.IsInput(id) || g.IsOutput(id) != g2.IsOutput(id) {
				t.Fatalf("round-trip changed tags of vertex %d", v)
			}
			s1, s2 := g.Succ(id), g2.Succ(id)
			if len(s1) != len(s2) {
				t.Fatalf("round-trip changed out-degree of vertex %d: %d vs %d", v, len(s1), len(s2))
			}
			for i := range s1 {
				if s1[i] != s2[i] {
					t.Fatalf("round-trip changed successor order of vertex %d", v)
				}
			}
			if g.Label(id) != g2.Label(id) {
				t.Fatalf("round-trip changed label of vertex %d", v)
			}
		}
	})
}
