package cdag

import "fmt"

// Stats summarizes structural properties of a CDAG.
type Stats struct {
	Vertices   int
	Edges      int
	Inputs     int
	Outputs    int
	Sources    int
	Sinks      int
	MaxInDeg   int
	MaxOutDeg  int
	AvgInDeg   float64
	Depth      int // critical path length in vertices
	MaxLevelSz int // size of the widest level (a crude parallelism measure)
}

// ComputeStats gathers Stats for g.
func ComputeStats(g *Graph) Stats {
	s := Stats{
		Vertices: g.NumVertices(),
		Edges:    g.NumEdges(),
		Inputs:   g.NumInputs(),
		Outputs:  g.NumOutputs(),
	}
	for v := 0; v < g.NumVertices(); v++ {
		id := VertexID(v)
		in, out := g.InDegree(id), g.OutDegree(id)
		if in == 0 {
			s.Sources++
		}
		if out == 0 {
			s.Sinks++
		}
		if in > s.MaxInDeg {
			s.MaxInDeg = in
		}
		if out > s.MaxOutDeg {
			s.MaxOutDeg = out
		}
	}
	if s.Vertices > 0 {
		s.AvgInDeg = float64(s.Edges) / float64(s.Vertices)
	}
	if level, maxLevel, err := g.Levels(); err == nil {
		s.Depth = maxLevel + 1
		counts := make([]int, maxLevel+1)
		for _, l := range level {
			counts[l]++
		}
		for _, c := range counts {
			if c > s.MaxLevelSz {
				s.MaxLevelSz = c
			}
		}
	}
	return s
}

// String renders the statistics on one line.
func (s Stats) String() string {
	return fmt.Sprintf("|V|=%d |E|=%d |I|=%d |O|=%d sources=%d sinks=%d maxIn=%d maxOut=%d depth=%d width=%d",
		s.Vertices, s.Edges, s.Inputs, s.Outputs, s.Sources, s.Sinks,
		s.MaxInDeg, s.MaxOutDeg, s.Depth, s.MaxLevelSz)
}
