package cdag

import (
	"fmt"
	"io"
	"strings"
)

// DOTOptions controls DOT export.
type DOTOptions struct {
	// RankLevels places vertices of equal longest-path level on the same rank.
	RankLevels bool
	// MaxVertices truncates the export (a comment notes the truncation) so
	// that accidentally exporting a million-vertex CDAG stays cheap.  Zero
	// means no limit.
	MaxVertices int
}

// WriteDOT writes the graph in Graphviz DOT format.  Input vertices are drawn
// as boxes, outputs as double circles, and plain computation vertices as
// ellipses.
func (g *Graph) WriteDOT(w io.Writer, opt DOTOptions) error {
	n := g.NumVertices()
	limit := n
	if opt.MaxVertices > 0 && opt.MaxVertices < n {
		limit = opt.MaxVertices
	}
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", sanitizeDOTName(g.name))
	b.WriteString("  rankdir=TB;\n")
	if limit < n {
		fmt.Fprintf(&b, "  // truncated: showing %d of %d vertices\n", limit, n)
	}
	for v := 0; v < limit; v++ {
		id := VertexID(v)
		shape := "ellipse"
		switch {
		case g.IsInput(id) && g.IsOutput(id):
			shape = "Msquare"
		case g.IsInput(id):
			shape = "box"
		case g.IsOutput(id):
			shape = "doublecircle"
		}
		label := g.Label(id)
		if label == "" {
			label = fmt.Sprintf("v%d", v)
		}
		fmt.Fprintf(&b, "  n%d [label=%q, shape=%s];\n", v, label, shape)
	}
	for v := 0; v < limit; v++ {
		for _, w2 := range g.Succ(VertexID(v)) {
			if int(w2) < limit {
				fmt.Fprintf(&b, "  n%d -> n%d;\n", v, w2)
			}
		}
	}
	if opt.RankLevels {
		if level, maxLevel, err := g.Levels(); err == nil {
			for l := 0; l <= maxLevel; l++ {
				var same []string
				for v := 0; v < limit; v++ {
					if level[v] == l {
						same = append(same, fmt.Sprintf("n%d", v))
					}
				}
				if len(same) > 1 {
					fmt.Fprintf(&b, "  { rank=same; %s }\n", strings.Join(same, "; "))
				}
			}
		}
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func sanitizeDOTName(s string) string {
	if s == "" {
		return "cdag"
	}
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			return r
		default:
			return '_'
		}
	}, s)
}
