package cdag

// SubgraphMapping relates the vertices of an induced sub-CDAG to the vertices
// of its parent graph.
type SubgraphMapping struct {
	// ToParent[v] is the parent vertex that sub-vertex v was induced from.
	ToParent []VertexID
	// FromParent[p] is the sub-vertex induced from parent vertex p, or
	// InvalidVertex if p is not part of the subgraph.
	FromParent []VertexID
}

// InducedSubgraph returns the sub-CDAG of g induced by the vertex set s,
// together with the vertex mapping.  Following the decomposition theorem
// (Theorem 2), the induced sub-CDAG keeps exactly the edges internal to s and
// the input/output tags restricted to s: I_i = I ∩ V_i, O_i = O ∩ V_i.  No
// additional tags are introduced; callers that want boundary vertices to act
// as inputs/outputs of the piece should apply TagInput/TagOutput afterwards
// (and account for the tagging theorem when composing bounds).
func InducedSubgraph(g *Graph, s *VertexSet, name string) (*Graph, *SubgraphMapping) {
	n := g.NumVertices()
	m := &SubgraphMapping{
		ToParent:   make([]VertexID, 0, s.Len()),
		FromParent: make([]VertexID, n),
	}
	for i := range m.FromParent {
		m.FromParent[i] = InvalidVertex
	}
	sub := NewGraph(name, s.Len())
	for _, p := range s.Elements() {
		v := sub.AddVertex(g.Label(p))
		if g.IsInput(p) {
			sub.TagInput(v)
		}
		if g.IsOutput(p) {
			sub.TagOutput(v)
		}
		m.ToParent = append(m.ToParent, p)
		m.FromParent[p] = v
	}
	for _, p := range s.Elements() {
		u := m.FromParent[p]
		for _, q := range g.Succ(p) {
			if w := m.FromParent[q]; w != InvalidVertex {
				sub.AddEdge(u, w)
			}
		}
	}
	return sub, m
}

// Partition splits the vertices of g into the given disjoint vertex sets and
// returns the induced sub-CDAGs in order.  It panics if the sets are not
// disjoint or do not cover V; use PartitionStrict to get an error instead.
func Partition(g *Graph, parts []*VertexSet, names []string) []*Graph {
	subs, err := PartitionStrict(g, parts, names)
	if err != nil {
		panic(err)
	}
	return subs
}

// PartitionStrict is Partition with error reporting.
func PartitionStrict(g *Graph, parts []*VertexSet, names []string) ([]*Graph, error) {
	seen := NewVertexSet(g.NumVertices())
	total := 0
	for i, p := range parts {
		for _, v := range p.Elements() {
			if !seen.Add(v) {
				return nil, &PartitionError{Part: i, Vertex: v, Reason: "vertex appears in multiple parts"}
			}
			total++
		}
	}
	if total != g.NumVertices() {
		return nil, &PartitionError{Part: -1, Vertex: InvalidVertex,
			Reason: "parts do not cover all vertices"}
	}
	subs := make([]*Graph, len(parts))
	for i, p := range parts {
		name := ""
		if i < len(names) {
			name = names[i]
		}
		subs[i], _ = InducedSubgraph(g, p, name)
	}
	return subs, nil
}

// PartitionError reports a violation of the disjoint-cover requirement.
type PartitionError struct {
	Part   int
	Vertex VertexID
	Reason string
}

func (e *PartitionError) Error() string {
	return "cdag: invalid partition: " + e.Reason
}

// DeleteInputsOutputs returns a copy of g with all input-tagged and
// output-tagged vertices removed (Corollary 2, input/output deletion), along
// with the number of deleted inputs |dI| and outputs |dO|.  Edges incident to
// deleted vertices are dropped.  A vertex tagged both input and output counts
// once toward each total.
func DeleteInputsOutputs(g *Graph) (reduced *Graph, dI, dO int) {
	keep := NewVertexSet(g.NumVertices())
	for _, v := range g.Vertices() {
		if g.IsInput(v) {
			dI++
		}
		if g.IsOutput(v) {
			dO++
		}
		if !g.IsInput(v) && !g.IsOutput(v) {
			keep.Add(v)
		}
	}
	reduced, _ = InducedSubgraph(g, keep, g.Name()+"/inner")
	return reduced, dI, dO
}
