package cdag

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// VertexID identifies a vertex within a Graph.  IDs are dense: the vertices
// of a graph with n vertices are exactly 0..n-1, in insertion order.
type VertexID int32

// InvalidVertex is returned by lookups that fail to resolve a vertex.
const InvalidVertex VertexID = -1

// Graph is a computational DAG (CDAG).  The zero value is an empty graph
// ready for use; NewGraph is provided for symmetry and to pre-size storage.
//
// The graph has two internal states.  While being built it stages edges in a
// single append-only buffer, so AddEdge is a constant-time append with no
// duplicate scan.  The first adjacency query (or an explicit Materialize or
// Freeze call) compiles the staged edges into a compressed-sparse-row (CSR)
// form: four flat arrays (successor offsets and values, predecessor offsets
// and values), each one backing allocation, built in O(V+E) by a stable
// counting-sort scatter with per-row dedup.  Succ and Pred return subslices
// of the flat arrays, so traversal is cache-linear and allocation-free.
// Adjacency order is preserved exactly as with per-vertex append lists: each
// list holds the edge targets in first-insertion order with duplicates
// dropped, so schedules and bounds derived from traversal order are
// bit-identical to the historical slice-of-slices representation.
//
// Graph is not safe for concurrent mutation.  Concurrent read-only use is
// safe once the graph is materialized: call Freeze or Materialize (or any
// adjacency accessor) after the last mutation and before sharing the graph
// across goroutines.
type Graph struct {
	name string

	n int // |V|

	// Labels are stored flat: labelBuf holds the concatenated label bytes and
	// labelEnd[v] the end offset of v's label (its start is labelEnd[v-1]).
	// SetLabel rewrites go to the sparse override map so the flat buffer stays
	// append-only.
	labelBuf      []byte
	labelEnd      []int32
	labelOverride map[VertexID]string

	input  []bool // input tag per vertex
	output []bool // output tag per vertex

	nInputs  int
	nOutputs int

	// Staged edges, in AddEdge call order, possibly with duplicates.  The
	// buffer is released when the CSR form is materialized and reconstituted
	// from it if the graph is mutated again afterwards.
	eu, ev []VertexID

	// CSR adjacency, valid when dirty is false.  succOff and predOff have
	// n+1 entries; Succ(v) is succVal[succOff[v]:succOff[v+1]].
	succOff []int64
	succVal []VertexID
	predOff []int64
	predVal []VertexID
	nEdges  int

	dirty  bool // staged mutations not yet compiled into the CSR arrays
	frozen bool
}

// NewGraph returns an empty graph with the given name and storage pre-sized
// for hint vertices.  A hint of 0 is valid.
func NewGraph(name string, hint int) *Graph {
	g := &Graph{name: name}
	if hint > 0 {
		g.labelEnd = make([]int32, 0, hint)
		g.labelBuf = make([]byte, 0, 8*hint)
		g.input = make([]bool, 0, hint)
		g.output = make([]bool, 0, hint)
	}
	return g
}

// Name returns the graph's name.
func (g *Graph) Name() string { return g.name }

// SetName sets the graph's name.
func (g *Graph) SetName(name string) { g.name = name }

// NumVertices returns |V|.
func (g *Graph) NumVertices() int { return g.n }

// NumEdges returns |E| (duplicates staged by AddEdge count once).
func (g *Graph) NumEdges() int { g.ensure(); return g.nEdges }

// NumInputs returns |I|, the number of vertices tagged as inputs.
func (g *Graph) NumInputs() int { return g.nInputs }

// NumOutputs returns |O|, the number of vertices tagged as outputs.
func (g *Graph) NumOutputs() int { return g.nOutputs }

// NumOperations returns |V| − |I|, the number of compute (non-input) vertices.
func (g *Graph) NumOperations() int { return g.n - g.nInputs }

// Freeze compiles any staged edges into the CSR arrays and locks the
// graph's structure: subsequent vertex, edge or label mutations panic.
// Input/output tag flips (TagInput, UntagInput and friends) remain legal —
// the tagging/untagging relabeling of Theorem 3 operates on finished graphs
// and never affects the compiled adjacency.  Freezing is how the generators
// hand out finished graphs: a frozen graph is safe for concurrent read-only
// use and its adjacency can never be invalidated by accident.
func (g *Graph) Freeze() {
	g.ensure()
	g.frozen = true
}

// Frozen reports whether the graph has been frozen.
func (g *Graph) Frozen() bool { return g.frozen }

// Materialize compiles any staged edges into the CSR arrays without freezing
// the graph.  It is idempotent and cheap when nothing is staged.  Call it (or
// Freeze) before sharing a graph across goroutines, since the otherwise lazy
// compilation is not synchronized.
func (g *Graph) Materialize() { g.ensure() }

func (g *Graph) mutable() {
	if g.frozen {
		panic("cdag: mutation of frozen graph")
	}
}

// stage prepares the graph for a structural mutation: it marks the CSR arrays
// stale and, if the staging buffer was released by a previous
// materialization, rebuilds it from the CSR arrays.
func (g *Graph) stage() {
	g.reconstitute()
	g.dirty = true
}

// reconstitute rebuilds the staging buffer from the CSR arrays after it was
// released by a materialization.  The rebuilt sequence must project onto both
// the successor-row and predecessor-row orders (a plain source-major walk
// would preserve succ rows but reorder pred rows); any interleaving
// consistent with both is observationally equivalent to the original AddEdge
// sequence, and one always exists because the rows are projections of such a
// sequence.  The two-queue merge below finds one in O(V+E): an edge (u,w) is
// ready when it is at the front of both u's remaining succ row and w's
// remaining pred row, and emitting a ready edge can only unblock others.
func (g *Graph) reconstitute() {
	if g.dirty || g.eu != nil || g.nEdges == 0 {
		return
	}
	n := g.n
	g.eu = make([]VertexID, 0, g.nEdges)
	g.ev = make([]VertexID, 0, g.nEdges)
	sPtr := make([]int64, n)
	pPtr := make([]int64, n)
	copy(sPtr, g.succOff[:n])
	copy(pPtr, g.predOff[:n])
	work := make([]VertexID, 0, n)
	for u := n - 1; u >= 0; u-- {
		if g.succOff[u+1] > g.succOff[u] {
			work = append(work, VertexID(u))
		}
	}
	for len(work) > 0 {
		u := work[len(work)-1]
		work = work[:len(work)-1]
		for sPtr[u] < g.succOff[u+1] {
			w := g.succVal[sPtr[u]]
			if g.predVal[pPtr[w]] != u {
				// u's next edge is blocked behind another predecessor of w;
				// u is re-queued when it reaches the front of w's pred row.
				break
			}
			g.eu = append(g.eu, u)
			g.ev = append(g.ev, w)
			sPtr[u]++
			pPtr[w]++
			if pPtr[w] < g.predOff[w+1] {
				next := g.predVal[pPtr[w]]
				if next != u && sPtr[next] < g.succOff[next+1] && g.succVal[sPtr[next]] == w {
					work = append(work, next)
				}
			}
		}
	}
}

// ensure materializes the CSR arrays if staged mutations are pending.
func (g *Graph) ensure() {
	if g.dirty {
		g.materialize()
	}
}

// materialize compiles the staged edge buffer into the four flat CSR arrays:
// a counting sort by source vertex (stable, so each successor list keeps its
// first-insertion order), an O(V+E) per-row dedup, and a second stable
// counting sort of the kept edges by target vertex for the predecessor lists
// (iterated in original AddEdge order, so predecessor lists too match the
// historical append-list order exactly).  The staging buffer is released
// afterwards; a later mutation reconstitutes it from the CSR arrays.
func (g *Graph) materialize() {
	n := g.n
	ne := len(g.eu)
	if ne > math.MaxInt32 {
		// idxByU below indexes staged edges with int32; refuse loudly rather
		// than corrupt the scatter.  2^31 staged edges is ~17 GB of buffer,
		// far beyond the representation's design point.
		panic("cdag: more than 2^31-1 staged edges")
	}

	if cap(g.succOff) >= n+1 {
		g.succOff = g.succOff[:n+1]
		for i := range g.succOff {
			g.succOff[i] = 0
		}
	} else {
		g.succOff = make([]int64, n+1)
	}
	for _, u := range g.eu {
		g.succOff[u+1]++
	}
	for v := 0; v < n; v++ {
		g.succOff[v+1] += g.succOff[v]
	}

	// Stable scatter of the staged edge indices into per-source buckets.
	idxByU := make([]int32, ne)
	cursor := make([]int64, n)
	copy(cursor, g.succOff[:n])
	for i, u := range g.eu {
		idxByU[cursor[u]] = int32(i)
		cursor[u]++
	}

	// Per-row dedup, compacting the successor values in place.  stamp[w] == u
	// marks "w already seen as a successor of u" (rows are processed in
	// increasing u, so no reset is needed).  kept[i] records whether staged
	// edge i survived, for the predecessor pass below.
	stamp := make([]int32, n)
	for i := range stamp {
		stamp[i] = -1
	}
	var kept []bool
	if ne > 0 {
		kept = make([]bool, ne)
	}
	succVal := make([]VertexID, ne)
	written := int64(0)
	for u := 0; u < n; u++ {
		start := written
		for _, idx := range idxByU[g.succOff[u]:g.succOff[u+1]] {
			w := g.ev[idx]
			if stamp[w] == int32(u) {
				continue
			}
			stamp[w] = int32(u)
			kept[idx] = true
			succVal[written] = w
			written++
		}
		g.succOff[u] = start
	}
	if n > 0 {
		g.succOff[n] = written
	}
	g.succVal = succVal[:written]
	g.nEdges = int(written)

	// Predecessor CSR over the kept edges, scattered in AddEdge call order.
	if cap(g.predOff) >= n+1 {
		g.predOff = g.predOff[:n+1]
		for i := range g.predOff {
			g.predOff[i] = 0
		}
	} else {
		g.predOff = make([]int64, n+1)
	}
	for i, v := range g.ev {
		if kept[i] {
			g.predOff[v+1]++
		}
	}
	for v := 0; v < n; v++ {
		g.predOff[v+1] += g.predOff[v]
	}
	predVal := make([]VertexID, written)
	copy(cursor, g.predOff[:n])
	for i, v := range g.ev {
		if kept[i] {
			predVal[cursor[v]] = g.eu[i]
			cursor[v]++
		}
	}
	g.predVal = predVal

	g.eu, g.ev = nil, nil
	g.dirty = false
}

// ReserveEdges pre-sizes the staging buffer for m additional edges, so bulk
// generators can stage all edges with a single allocation.
func (g *Graph) ReserveEdges(m int) {
	g.mutable()
	if m <= 0 {
		return
	}
	// Rebuild the released buffer first: growing a fresh empty buffer here
	// would make it look live and the compiled edges would be lost.
	g.reconstitute()
	if need := len(g.eu) + m; cap(g.eu) < need {
		eu := make([]VertexID, len(g.eu), need)
		copy(eu, g.eu)
		g.eu = eu
		ev := make([]VertexID, len(g.ev), need)
		copy(ev, g.ev)
		g.ev = ev
	}
}

// addVertex is the shared vertex-append path behind AddVertex and
// AddVertexBytes; the label bytes are copied into the flat label storage.
func addVertex[L string | []byte](g *Graph, label L) VertexID {
	g.mutable()
	g.stage()
	if len(g.labelBuf)+len(label) > math.MaxInt32 {
		// labelEnd stores int32 offsets; refuse loudly rather than wrap.
		panic("cdag: flat label storage exceeds 2 GiB")
	}
	id := VertexID(g.n)
	g.n++
	g.labelBuf = append(g.labelBuf, label...)
	g.labelEnd = append(g.labelEnd, int32(len(g.labelBuf)))
	g.input = append(g.input, false)
	g.output = append(g.output, false)
	return id
}

// AddVertex appends a new vertex with the given label and returns its ID.
func (g *Graph) AddVertex(label string) VertexID { return addVertex(g, label) }

// AddVertexBytes is AddVertex for callers that format labels into a reusable
// byte buffer: the label bytes are copied into the graph's flat label storage
// without an intermediate string allocation.
func (g *Graph) AddVertexBytes(label []byte) VertexID { return addVertex(g, label) }

// AddInput appends a new vertex tagged as an input and returns its ID.
func (g *Graph) AddInput(label string) VertexID {
	v := g.AddVertex(label)
	g.TagInput(v)
	return v
}

// AddInputBytes is AddInput with the label passed as bytes (see AddVertexBytes).
func (g *Graph) AddInputBytes(label []byte) VertexID {
	v := g.AddVertexBytes(label)
	g.TagInput(v)
	return v
}

// AddOutput appends a new vertex tagged as an output and returns its ID.
func (g *Graph) AddOutput(label string) VertexID {
	v := g.AddVertex(label)
	g.TagOutput(v)
	return v
}

// AddVertices appends n unlabeled vertices and returns the ID of the first.
// The new vertices are first, first+1, ..., first+n-1.
func (g *Graph) AddVertices(n int) VertexID {
	g.mutable()
	g.stage()
	first := VertexID(g.n)
	end := int32(len(g.labelBuf))
	for i := 0; i < n; i++ {
		g.labelEnd = append(g.labelEnd, end)
	}
	g.input = append(g.input, make([]bool, n)...)
	g.output = append(g.output, make([]bool, n)...)
	g.n += n
	return first
}

// ValidVertex reports whether v names a vertex of g.
func (g *Graph) ValidVertex(v VertexID) bool {
	return v >= 0 && int(v) < g.n
}

func (g *Graph) checkVertex(v VertexID) {
	if !g.ValidVertex(v) {
		panic(fmt.Sprintf("cdag: vertex %d out of range [0,%d)", v, g.n))
	}
}

// AddEdge stages the directed edge u→v: a constant-time append to the edge
// buffer.  Duplicate edges are dropped when the graph is materialized (the
// CDAG model carries no multiplicity).  Self-loops are rejected with a panic
// since they would make the graph cyclic.
func (g *Graph) AddEdge(u, v VertexID) {
	g.mutable()
	g.checkVertex(u)
	g.checkVertex(v)
	if u == v {
		panic(fmt.Sprintf("cdag: self-loop on vertex %d", u))
	}
	g.stage()
	g.eu = append(g.eu, u)
	g.ev = append(g.ev, v)
}

// HasEdge reports whether the edge u→v is present.
func (g *Graph) HasEdge(u, v VertexID) bool {
	if !g.ValidVertex(u) || !g.ValidVertex(v) {
		return false
	}
	for _, w := range g.Succ(u) {
		if w == v {
			return true
		}
	}
	return false
}

// Succ returns the successors of v as a subslice of the graph's flat CSR
// array, in first-insertion order.  The returned slice is owned by the graph
// and must not be modified.
func (g *Graph) Succ(v VertexID) []VertexID {
	g.ensure()
	g.checkVertex(v)
	return g.succVal[g.succOff[v]:g.succOff[v+1]]
}

// Pred returns the predecessors of v as a subslice of the graph's flat CSR
// array, in first-insertion order.  The returned slice is owned by the graph
// and must not be modified.
func (g *Graph) Pred(v VertexID) []VertexID {
	g.ensure()
	g.checkVertex(v)
	return g.predVal[g.predOff[v]:g.predOff[v+1]]
}

// AdjacencyCSR materializes the graph and returns its compiled CSR adjacency
// arrays for read-only bulk traversal: Succ(v) is
// succVal[succOff[v]:succOff[v+1]] and Pred(v) is
// predVal[predOff[v]:predOff[v+1]].  The arrays are owned by the graph, must
// not be modified, and are invalidated by the next structural mutation.
// Hot analysis loops over millions of rows (the w^max cone explorations, the
// pebble-game players, the memsim traversals) use this to skip the per-call
// materialization and bounds checks of Succ/Pred.
func (g *Graph) AdjacencyCSR() (succOff []int64, succVal []VertexID, predOff []int64, predVal []VertexID) {
	g.ensure()
	return g.succOff, g.succVal, g.predOff, g.predVal
}

// SuccessorCSR materializes the graph and returns the successor half of the
// CSR adjacency: the successors of v are val[off[v]:off[v+1]], duplicate-free
// and in first-insertion order, exactly as Succ returns them.  The arrays are
// owned by the graph, must not be modified, and are invalidated by the next
// structural mutation.  Hoist this call out of a traversal loop and index the
// rows directly when the loop visits many vertices.
func (g *Graph) SuccessorCSR() (off []int64, val []VertexID) {
	g.ensure()
	return g.succOff, g.succVal
}

// PredecessorCSR is the symmetric counterpart of SuccessorCSR: the
// predecessors of v are val[off[v]:off[v+1]], duplicate-free and in
// first-insertion order, exactly as Pred returns them.  The arrays are owned
// by the graph, must not be modified, and are invalidated by the next
// structural mutation.  The schedule players and simulators hoist this call
// once per run and replay predecessor rows allocation- and call-free.
func (g *Graph) PredecessorCSR() (off []int64, val []VertexID) {
	g.ensure()
	return g.predOff, g.predVal
}

// Successors returns the successors of v.  Deprecated alias for Succ.
func (g *Graph) Successors(v VertexID) []VertexID { return g.Succ(v) }

// Predecessors returns the predecessors of v.  Deprecated alias for Pred.
func (g *Graph) Predecessors(v VertexID) []VertexID { return g.Pred(v) }

// OutDegree returns the number of successors of v.
func (g *Graph) OutDegree(v VertexID) int {
	g.ensure()
	g.checkVertex(v)
	return int(g.succOff[v+1] - g.succOff[v])
}

// InDegree returns the number of predecessors of v.
func (g *Graph) InDegree(v VertexID) int {
	g.ensure()
	g.checkVertex(v)
	return int(g.predOff[v+1] - g.predOff[v])
}

// Label returns the label of v (possibly empty).
func (g *Graph) Label(v VertexID) string {
	g.checkVertex(v)
	if l, ok := g.labelOverride[v]; ok {
		return l
	}
	start := int32(0)
	if v > 0 {
		start = g.labelEnd[v-1]
	}
	return string(g.labelBuf[start:g.labelEnd[v]])
}

// SetLabel sets the label of v.
func (g *Graph) SetLabel(v VertexID, label string) {
	g.mutable()
	g.checkVertex(v)
	if g.labelOverride == nil {
		g.labelOverride = make(map[VertexID]string)
	}
	g.labelOverride[v] = label
}

// IsInput reports whether v is tagged as an input vertex.
func (g *Graph) IsInput(v VertexID) bool { g.checkVertex(v); return g.input[v] }

// IsOutput reports whether v is tagged as an output vertex.
func (g *Graph) IsOutput(v VertexID) bool { g.checkVertex(v); return g.output[v] }

// TagInput tags v as an input vertex (idempotent).
func (g *Graph) TagInput(v VertexID) {
	g.checkVertex(v)
	if !g.input[v] {
		g.input[v] = true
		g.nInputs++
	}
}

// UntagInput removes the input tag from v (idempotent).  This implements the
// vertex relabeling used by the tagging/untagging theorem (Theorem 3).
func (g *Graph) UntagInput(v VertexID) {
	g.checkVertex(v)
	if g.input[v] {
		g.input[v] = false
		g.nInputs--
	}
}

// TagOutput tags v as an output vertex (idempotent).
func (g *Graph) TagOutput(v VertexID) {
	g.checkVertex(v)
	if !g.output[v] {
		g.output[v] = true
		g.nOutputs++
	}
}

// UntagOutput removes the output tag from v (idempotent).
func (g *Graph) UntagOutput(v VertexID) {
	g.checkVertex(v)
	if g.output[v] {
		g.output[v] = false
		g.nOutputs--
	}
}

// Inputs returns the IDs of all input-tagged vertices in increasing order.
func (g *Graph) Inputs() []VertexID {
	out := make([]VertexID, 0, g.nInputs)
	for v := range g.input {
		if g.input[v] {
			out = append(out, VertexID(v))
		}
	}
	return out
}

// Outputs returns the IDs of all output-tagged vertices in increasing order.
func (g *Graph) Outputs() []VertexID {
	out := make([]VertexID, 0, g.nOutputs)
	for v := range g.output {
		if g.output[v] {
			out = append(out, VertexID(v))
		}
	}
	return out
}

// Sources returns all vertices with no predecessors, in increasing order.
func (g *Graph) Sources() []VertexID {
	g.ensure()
	var out []VertexID
	for v := 0; v < g.n; v++ {
		if g.predOff[v+1] == g.predOff[v] {
			out = append(out, VertexID(v))
		}
	}
	return out
}

// Sinks returns all vertices with no successors, in increasing order.
func (g *Graph) Sinks() []VertexID {
	g.ensure()
	var out []VertexID
	for v := 0; v < g.n; v++ {
		if g.succOff[v+1] == g.succOff[v] {
			out = append(out, VertexID(v))
		}
	}
	return out
}

// Vertices returns all vertex IDs, 0..n-1.
func (g *Graph) Vertices() []VertexID {
	out := make([]VertexID, g.n)
	for i := range out {
		out[i] = VertexID(i)
	}
	return out
}

// TagHongKung applies the Hong–Kung convention: every source becomes an input
// and every sink becomes an output.  Useful when converting a generator graph
// to the classical red-blue game setting.
func (g *Graph) TagHongKung() {
	for _, v := range g.Sources() {
		g.TagInput(v)
	}
	for _, v := range g.Sinks() {
		g.TagOutput(v)
	}
}

// Clone returns a deep copy of the graph.  The clone is not frozen even if g
// is, so it can be relabeled or extended.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		name:     g.name,
		n:        g.n,
		labelBuf: append([]byte(nil), g.labelBuf...),
		labelEnd: append([]int32(nil), g.labelEnd...),
		input:    append([]bool(nil), g.input...),
		output:   append([]bool(nil), g.output...),
		nInputs:  g.nInputs,
		nOutputs: g.nOutputs,
		nEdges:   g.nEdges,
		dirty:    g.dirty,
	}
	if g.labelOverride != nil {
		c.labelOverride = make(map[VertexID]string, len(g.labelOverride))
		for v, l := range g.labelOverride {
			c.labelOverride[v] = l
		}
	}
	if g.eu != nil {
		c.eu = append([]VertexID(nil), g.eu...)
		c.ev = append([]VertexID(nil), g.ev...)
	}
	if g.succOff != nil {
		c.succOff = append([]int64(nil), g.succOff...)
		c.succVal = append([]VertexID(nil), g.succVal...)
		c.predOff = append([]int64(nil), g.predOff...)
		c.predVal = append([]VertexID(nil), g.predVal...)
	}
	return c
}

// Validation errors returned by Validate.
var (
	ErrCyclic          = errors.New("cdag: graph contains a cycle")
	ErrInputHasPred    = errors.New("cdag: input vertex has predecessors")
	ErrOperationNoPred = errors.New("cdag: strict Hong-Kung mode: non-input vertex has no predecessors")
	ErrSinkNotOutput   = errors.New("cdag: strict Hong-Kung mode: sink vertex not tagged as output")
)

// ValidateMode selects how strictly Validate checks input/output tagging.
type ValidateMode int

const (
	// ValidateRBW checks only the requirements of the Red-Blue-White model:
	// acyclicity, and that input vertices have no predecessors.
	ValidateRBW ValidateMode = iota
	// ValidateHongKung additionally requires every source to be an input and
	// every sink to be an output (Definition 1/2 of the paper).
	ValidateHongKung
)

// Validate checks structural invariants of the CDAG under the given mode and
// returns the first violation found, or nil.
func (g *Graph) Validate(mode ValidateMode) error {
	if _, err := g.TopoOrder(); err != nil {
		return err
	}
	for v := 0; v < g.n; v++ {
		id := VertexID(v)
		if g.input[v] && g.InDegree(id) > 0 {
			return fmt.Errorf("%w: vertex %d (%q)", ErrInputHasPred, id, g.Label(id))
		}
		if mode == ValidateHongKung {
			if !g.input[v] && g.InDegree(id) == 0 {
				return fmt.Errorf("%w: vertex %d (%q)", ErrOperationNoPred, id, g.Label(id))
			}
			if !g.output[v] && g.OutDegree(id) == 0 {
				return fmt.Errorf("%w: vertex %d (%q)", ErrSinkNotOutput, id, g.Label(id))
			}
		}
	}
	return nil
}

// String returns a short human-readable summary of the graph.
func (g *Graph) String() string {
	return fmt.Sprintf("CDAG %q: |V|=%d |E|=%d |I|=%d |O|=%d",
		g.name, g.NumVertices(), g.NumEdges(), g.nInputs, g.nOutputs)
}

// SortAdjacency sorts all adjacency lists in increasing vertex order.  The
// analyses do not require sorted adjacency, but sorting makes traversals and
// generated schedules independent of construction order, which keeps tests
// and benchmarks deterministic across generator refactorings.
func (g *Graph) SortAdjacency() {
	g.mutable()
	g.ensure()
	for v := 0; v < g.n; v++ {
		row := g.succVal[g.succOff[v]:g.succOff[v+1]]
		sort.Slice(row, func(i, j int) bool { return row[i] < row[j] })
		row = g.predVal[g.predOff[v]:g.predOff[v+1]]
		sort.Slice(row, func(i, j int) bool { return row[i] < row[j] })
	}
}
