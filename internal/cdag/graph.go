package cdag

import (
	"errors"
	"fmt"
	"sort"
)

// VertexID identifies a vertex within a Graph.  IDs are dense: the vertices
// of a graph with n vertices are exactly 0..n-1, in insertion order.
type VertexID int32

// InvalidVertex is returned by lookups that fail to resolve a vertex.
const InvalidVertex VertexID = -1

// Graph is a computational DAG (CDAG).  The zero value is an empty graph
// ready for use; NewGraph is provided for symmetry and to pre-size storage.
//
// Graph is not safe for concurrent mutation.  Concurrent read-only use is
// safe once construction is complete.
type Graph struct {
	name string

	succ [][]VertexID // succ[v] = successors of v, in insertion order
	pred [][]VertexID // pred[v] = predecessors of v, in insertion order

	label  []string // optional human-readable label per vertex
	input  []bool   // input tag per vertex
	output []bool   // output tag per vertex

	nInputs  int
	nOutputs int
	nEdges   int

	frozen bool
}

// NewGraph returns an empty graph with the given name and storage pre-sized
// for hint vertices.  A hint of 0 is valid.
func NewGraph(name string, hint int) *Graph {
	g := &Graph{name: name}
	if hint > 0 {
		g.succ = make([][]VertexID, 0, hint)
		g.pred = make([][]VertexID, 0, hint)
		g.label = make([]string, 0, hint)
		g.input = make([]bool, 0, hint)
		g.output = make([]bool, 0, hint)
	}
	return g
}

// Name returns the graph's name.
func (g *Graph) Name() string { return g.name }

// SetName sets the graph's name.
func (g *Graph) SetName(name string) { g.name = name }

// NumVertices returns |V|.
func (g *Graph) NumVertices() int { return len(g.succ) }

// NumEdges returns |E|.
func (g *Graph) NumEdges() int { return g.nEdges }

// NumInputs returns |I|, the number of vertices tagged as inputs.
func (g *Graph) NumInputs() int { return g.nInputs }

// NumOutputs returns |O|, the number of vertices tagged as outputs.
func (g *Graph) NumOutputs() int { return g.nOutputs }

// NumOperations returns |V| − |I|, the number of compute (non-input) vertices.
func (g *Graph) NumOperations() int { return g.NumVertices() - g.nInputs }

// Freeze marks the graph immutable.  Subsequent mutations panic.  Freezing is
// optional; it exists to catch accidental modification of shared graphs.
func (g *Graph) Freeze() { g.frozen = true }

// Frozen reports whether the graph has been frozen.
func (g *Graph) Frozen() bool { return g.frozen }

func (g *Graph) mutable() {
	if g.frozen {
		panic("cdag: mutation of frozen graph")
	}
}

// AddVertex appends a new vertex with the given label and returns its ID.
func (g *Graph) AddVertex(label string) VertexID {
	g.mutable()
	id := VertexID(len(g.succ))
	g.succ = append(g.succ, nil)
	g.pred = append(g.pred, nil)
	g.label = append(g.label, label)
	g.input = append(g.input, false)
	g.output = append(g.output, false)
	return id
}

// AddInput appends a new vertex tagged as an input and returns its ID.
func (g *Graph) AddInput(label string) VertexID {
	v := g.AddVertex(label)
	g.TagInput(v)
	return v
}

// AddOutput appends a new vertex tagged as an output and returns its ID.
func (g *Graph) AddOutput(label string) VertexID {
	v := g.AddVertex(label)
	g.TagOutput(v)
	return v
}

// AddVertices appends n unlabeled vertices and returns the ID of the first.
// The new vertices are first, first+1, ..., first+n-1.
func (g *Graph) AddVertices(n int) VertexID {
	g.mutable()
	first := VertexID(len(g.succ))
	for i := 0; i < n; i++ {
		g.AddVertex("")
	}
	return first
}

// ValidVertex reports whether v names a vertex of g.
func (g *Graph) ValidVertex(v VertexID) bool {
	return v >= 0 && int(v) < len(g.succ)
}

func (g *Graph) checkVertex(v VertexID) {
	if !g.ValidVertex(v) {
		panic(fmt.Sprintf("cdag: vertex %d out of range [0,%d)", v, len(g.succ)))
	}
}

// AddEdge adds the directed edge u→v.  Duplicate edges are ignored (the CDAG
// model carries no multiplicity).  Self-loops are rejected with a panic since
// they would make the graph cyclic.
func (g *Graph) AddEdge(u, v VertexID) {
	g.mutable()
	g.checkVertex(u)
	g.checkVertex(v)
	if u == v {
		panic(fmt.Sprintf("cdag: self-loop on vertex %d", u))
	}
	for _, w := range g.succ[u] {
		if w == v {
			return
		}
	}
	g.succ[u] = append(g.succ[u], v)
	g.pred[v] = append(g.pred[v], u)
	g.nEdges++
}

// HasEdge reports whether the edge u→v is present.
func (g *Graph) HasEdge(u, v VertexID) bool {
	if !g.ValidVertex(u) || !g.ValidVertex(v) {
		return false
	}
	for _, w := range g.succ[u] {
		if w == v {
			return true
		}
	}
	return false
}

// Successors returns the successors of v.  The returned slice is owned by the
// graph and must not be modified.
func (g *Graph) Successors(v VertexID) []VertexID {
	g.checkVertex(v)
	return g.succ[v]
}

// Predecessors returns the predecessors of v.  The returned slice is owned by
// the graph and must not be modified.
func (g *Graph) Predecessors(v VertexID) []VertexID {
	g.checkVertex(v)
	return g.pred[v]
}

// OutDegree returns the number of successors of v.
func (g *Graph) OutDegree(v VertexID) int { g.checkVertex(v); return len(g.succ[v]) }

// InDegree returns the number of predecessors of v.
func (g *Graph) InDegree(v VertexID) int { g.checkVertex(v); return len(g.pred[v]) }

// Label returns the label of v (possibly empty).
func (g *Graph) Label(v VertexID) string { g.checkVertex(v); return g.label[v] }

// SetLabel sets the label of v.
func (g *Graph) SetLabel(v VertexID, label string) {
	g.mutable()
	g.checkVertex(v)
	g.label[v] = label
}

// IsInput reports whether v is tagged as an input vertex.
func (g *Graph) IsInput(v VertexID) bool { g.checkVertex(v); return g.input[v] }

// IsOutput reports whether v is tagged as an output vertex.
func (g *Graph) IsOutput(v VertexID) bool { g.checkVertex(v); return g.output[v] }

// TagInput tags v as an input vertex (idempotent).
func (g *Graph) TagInput(v VertexID) {
	g.mutable()
	g.checkVertex(v)
	if !g.input[v] {
		g.input[v] = true
		g.nInputs++
	}
}

// UntagInput removes the input tag from v (idempotent).  This implements the
// vertex relabeling used by the tagging/untagging theorem (Theorem 3).
func (g *Graph) UntagInput(v VertexID) {
	g.mutable()
	g.checkVertex(v)
	if g.input[v] {
		g.input[v] = false
		g.nInputs--
	}
}

// TagOutput tags v as an output vertex (idempotent).
func (g *Graph) TagOutput(v VertexID) {
	g.mutable()
	g.checkVertex(v)
	if !g.output[v] {
		g.output[v] = true
		g.nOutputs++
	}
}

// UntagOutput removes the output tag from v (idempotent).
func (g *Graph) UntagOutput(v VertexID) {
	g.mutable()
	g.checkVertex(v)
	if g.output[v] {
		g.output[v] = false
		g.nOutputs--
	}
}

// Inputs returns the IDs of all input-tagged vertices in increasing order.
func (g *Graph) Inputs() []VertexID {
	out := make([]VertexID, 0, g.nInputs)
	for v := range g.input {
		if g.input[v] {
			out = append(out, VertexID(v))
		}
	}
	return out
}

// Outputs returns the IDs of all output-tagged vertices in increasing order.
func (g *Graph) Outputs() []VertexID {
	out := make([]VertexID, 0, g.nOutputs)
	for v := range g.output {
		if g.output[v] {
			out = append(out, VertexID(v))
		}
	}
	return out
}

// Sources returns all vertices with no predecessors, in increasing order.
func (g *Graph) Sources() []VertexID {
	var out []VertexID
	for v := range g.pred {
		if len(g.pred[v]) == 0 {
			out = append(out, VertexID(v))
		}
	}
	return out
}

// Sinks returns all vertices with no successors, in increasing order.
func (g *Graph) Sinks() []VertexID {
	var out []VertexID
	for v := range g.succ {
		if len(g.succ[v]) == 0 {
			out = append(out, VertexID(v))
		}
	}
	return out
}

// Vertices returns all vertex IDs, 0..n-1.
func (g *Graph) Vertices() []VertexID {
	out := make([]VertexID, g.NumVertices())
	for i := range out {
		out[i] = VertexID(i)
	}
	return out
}

// TagHongKung applies the Hong–Kung convention: every source becomes an input
// and every sink becomes an output.  Useful when converting a generator graph
// to the classical red-blue game setting.
func (g *Graph) TagHongKung() {
	for _, v := range g.Sources() {
		g.TagInput(v)
	}
	for _, v := range g.Sinks() {
		g.TagOutput(v)
	}
}

// Clone returns a deep copy of the graph.  The clone is not frozen even if g
// is, so it can be relabeled or extended.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		name:     g.name,
		succ:     make([][]VertexID, len(g.succ)),
		pred:     make([][]VertexID, len(g.pred)),
		label:    append([]string(nil), g.label...),
		input:    append([]bool(nil), g.input...),
		output:   append([]bool(nil), g.output...),
		nInputs:  g.nInputs,
		nOutputs: g.nOutputs,
		nEdges:   g.nEdges,
	}
	for v := range g.succ {
		if len(g.succ[v]) > 0 {
			c.succ[v] = append([]VertexID(nil), g.succ[v]...)
		}
		if len(g.pred[v]) > 0 {
			c.pred[v] = append([]VertexID(nil), g.pred[v]...)
		}
	}
	return c
}

// Validation errors returned by Validate.
var (
	ErrCyclic          = errors.New("cdag: graph contains a cycle")
	ErrInputHasPred    = errors.New("cdag: input vertex has predecessors")
	ErrOperationNoPred = errors.New("cdag: strict Hong-Kung mode: non-input vertex has no predecessors")
	ErrSinkNotOutput   = errors.New("cdag: strict Hong-Kung mode: sink vertex not tagged as output")
)

// ValidateMode selects how strictly Validate checks input/output tagging.
type ValidateMode int

const (
	// ValidateRBW checks only the requirements of the Red-Blue-White model:
	// acyclicity, and that input vertices have no predecessors.
	ValidateRBW ValidateMode = iota
	// ValidateHongKung additionally requires every source to be an input and
	// every sink to be an output (Definition 1/2 of the paper).
	ValidateHongKung
)

// Validate checks structural invariants of the CDAG under the given mode and
// returns the first violation found, or nil.
func (g *Graph) Validate(mode ValidateMode) error {
	if _, err := g.TopoOrder(); err != nil {
		return err
	}
	for v := 0; v < g.NumVertices(); v++ {
		id := VertexID(v)
		if g.input[v] && len(g.pred[v]) > 0 {
			return fmt.Errorf("%w: vertex %d (%q)", ErrInputHasPred, id, g.label[v])
		}
		if mode == ValidateHongKung {
			if !g.input[v] && len(g.pred[v]) == 0 {
				return fmt.Errorf("%w: vertex %d (%q)", ErrOperationNoPred, id, g.label[v])
			}
			if !g.output[v] && len(g.succ[v]) == 0 {
				return fmt.Errorf("%w: vertex %d (%q)", ErrSinkNotOutput, id, g.label[v])
			}
		}
	}
	return nil
}

// String returns a short human-readable summary of the graph.
func (g *Graph) String() string {
	return fmt.Sprintf("CDAG %q: |V|=%d |E|=%d |I|=%d |O|=%d",
		g.name, g.NumVertices(), g.NumEdges(), g.nInputs, g.nOutputs)
}

// SortAdjacency sorts all adjacency lists in increasing vertex order.  The
// analyses do not require sorted adjacency, but sorting makes traversals and
// generated schedules independent of construction order, which keeps tests
// and benchmarks deterministic across generator refactorings.
func (g *Graph) SortAdjacency() {
	g.mutable()
	for v := range g.succ {
		sort.Slice(g.succ[v], func(i, j int) bool { return g.succ[v][i] < g.succ[v][j] })
		sort.Slice(g.pred[v], func(i, j int) bool { return g.pred[v][i] < g.pred[v][j] })
	}
}
