package gen

import (
	"strconv"

	"cdagio/internal/linalg"
)

// lbuf is a reusable label-formatting buffer.  Generators format each vertex
// label into it and hand the bytes to Graph.AddVertexBytes, so label
// construction costs no per-vertex allocation: the bytes are copied straight
// into the graph's flat label storage.
type lbuf []byte

func (b *lbuf) reset(prefix string) *lbuf {
	*b = append((*b)[:0], prefix...)
	return b
}

func (b *lbuf) str(s string) *lbuf {
	*b = append(*b, s...)
	return b
}

func (b *lbuf) int(i int) *lbuf {
	*b = strconv.AppendInt(*b, int64(i), 10)
	return b
}

func (b *lbuf) sep(c byte) *lbuf {
	*b = append(*b, c)
	return b
}

// bytes returns the accumulated label bytes.
func (b *lbuf) bytes() []byte { return []byte(*b) }

// gridNeighborsFlat precomputes the face-neighbor lists of every point of the
// grid in one flat CSR-style pair (off, val): the neighbors of point c are
// val[off[c]:off[c+1]], in the same deterministic order as
// linalg.Grid.Neighbors (dimension ascending, −1 before +1).  Generators that
// stage one edge per stencil leg for every time step or iteration compute the
// lists once instead of allocating them per point per step.
func gridNeighborsFlat(grid linalg.Grid) (off []int32, val []int32) {
	np := grid.Points()
	dim := grid.Dim
	strides := make([]int, dim)
	s := 1
	for d := dim - 1; d >= 0; d-- {
		strides[d] = s
		s *= grid.N
	}
	off = make([]int32, np+1)
	val = make([]int32, 0, 2*dim*np)
	coords := make([]int, dim)
	for c := 0; c < np; c++ {
		for d := 0; d < dim; d++ {
			if coords[d] > 0 {
				val = append(val, int32(c-strides[d]))
			}
			if coords[d]+1 < grid.N {
				val = append(val, int32(c+strides[d]))
			}
		}
		off[c+1] = int32(len(val))
		// Advance the coordinate odometer (last dimension fastest, matching
		// the row-major linear index).
		for d := dim - 1; d >= 0; d-- {
			coords[d]++
			if coords[d] < grid.N {
				break
			}
			coords[d] = 0
		}
	}
	return off, val
}
