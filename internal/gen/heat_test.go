package gen

import (
	"testing"

	"cdagio/internal/cdag"
	"cdagio/internal/graphalg"
	"cdagio/internal/linalg"
)

func TestHeatEquation1DGraph(t *testing.T) {
	n, steps := 10, 3
	r := HeatEquation1D(n, steps)
	g := r.Graph
	if err := g.Validate(cdag.ValidateRBW); err != nil {
		t.Fatalf("invalid CDAG: %v", err)
	}
	if g.NumVertices() != n*(3*steps+1) {
		t.Fatalf("|V| = %d, want %d", g.NumVertices(), n*(3*steps+1))
	}
	if g.NumInputs() != n || g.NumOutputs() != n {
		t.Fatalf("tags wrong: %v", g)
	}
	// The Thomas algorithm is sequential: the critical path spans both the
	// forward and the backward chain of every step, so it grows like 2nT.
	if depth := g.CriticalPathLength(); depth < 2*n*steps {
		t.Fatalf("critical path %d, want >= %d", depth, 2*n*steps)
	}
	// The last grid point of the final step depends on every input (global
	// coupling of the implicit solve).
	anc := graphalg.Ancestors(g, r.U[steps][0])
	inputs := 0
	for _, v := range anc.Elements() {
		if g.IsInput(v) {
			inputs++
		}
	}
	if inputs != n {
		t.Fatalf("output depends on %d inputs, want %d", inputs, n)
	}
	// Structure handles are consistent.
	if len(r.RHS) != steps || len(r.Forward) != steps || len(r.U) != steps+1 {
		t.Fatalf("handles wrong")
	}
	// Interior RHS vertices have 3 predecessors; boundary ones have 2.
	if g.InDegree(r.RHS[0][n/2]) != 3 || g.InDegree(r.RHS[0][0]) != 2 {
		t.Fatalf("RHS in-degrees wrong")
	}
}

func TestHeatEquation1DPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"small n":    func() { HeatEquation1D(1, 3) },
		"zero steps": func() { HeatEquation1D(8, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestSpMVFromLaplacian(t *testing.T) {
	grid := linalg.NewGrid(2, 4)
	lap := grid.Laplacian()
	rowCols := make([][]int, lap.Rows)
	nnz := 0
	for i := 0; i < lap.Rows; i++ {
		cols, _ := lap.Row(i)
		rowCols[i] = cols
		nnz += len(cols)
	}
	r := SpMV(lap.Cols, rowCols)
	g := r.Graph
	if err := g.Validate(cdag.ValidateRBW); err != nil {
		t.Fatalf("invalid CDAG: %v", err)
	}
	if g.NumInputs() != 16 || g.NumOutputs() != 16 {
		t.Fatalf("tags wrong: %v", g)
	}
	// One product vertex per non-zero plus (row nnz − 1) accumulate vertices.
	want := 16 + nnz + (nnz - 16)
	if g.NumVertices() != want {
		t.Fatalf("|V| = %d, want %d", g.NumVertices(), want)
	}
	// Every output is reachable from the inputs of its stencil neighborhood.
	anc := graphalg.Ancestors(g, r.Y[5])
	if !anc.Contains(r.X[5]) {
		t.Fatalf("y[5] does not depend on x[5]")
	}
}

func TestSpMVEdgeCases(t *testing.T) {
	// An empty row yields a constant output with no predecessors.
	r := SpMV(3, [][]int{{0, 1}, {}, {2}})
	g := r.Graph
	if g.InDegree(r.Y[1]) != 0 {
		t.Fatalf("empty row output should have no predecessors")
	}
	if g.NumOutputs() != 3 {
		t.Fatalf("outputs = %d", g.NumOutputs())
	}
	// Errors.
	for name, f := range map[string]func(){
		"zero cols": func() { SpMV(0, [][]int{{0}}) },
		"col range": func() { SpMV(2, [][]int{{5}}) },
		"col neg":   func() { SpMV(2, [][]int{{-1}}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}
