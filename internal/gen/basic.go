package gen

import (
	"fmt"

	"cdagio/internal/cdag"
)

// Chain returns a path CDAG v0 → v1 → … → v_{n−1} with the first vertex
// tagged input and the last tagged output.  A chain is computable with 2 red
// pebbles and exactly 2 I/O operations in the RBW game, which makes it a
// useful calibration case.
func Chain(n int) *cdag.Graph {
	if n < 1 {
		panic("gen: Chain needs n >= 1")
	}
	g := cdag.NewGraph(fmt.Sprintf("chain-%d", n), n)
	g.ReserveEdges(n - 1)
	var lb lbuf
	prev := g.AddInput("x0")
	for i := 1; i < n; i++ {
		v := g.AddVertexBytes(lb.reset("x").int(i).bytes())
		g.AddEdge(prev, v)
		prev = v
	}
	g.TagOutput(prev)
	g.Freeze()
	return g
}

// IndependentChains returns k disjoint chains of length n each, all tagged
// Hong–Kung style.  Decomposition bounds (Theorem 2) are exercised on it.
func IndependentChains(k, n int) *cdag.Graph {
	if k < 1 || n < 1 {
		panic("gen: IndependentChains needs k, n >= 1")
	}
	g := cdag.NewGraph(fmt.Sprintf("chains-%dx%d", k, n), k*n)
	g.ReserveEdges(k * (n - 1))
	var lb lbuf
	for c := 0; c < k; c++ {
		prev := g.AddInputBytes(lb.reset("c").int(c).str(".x0").bytes())
		for i := 1; i < n; i++ {
			v := g.AddVertexBytes(lb.reset("c").int(c).str(".x").int(i).bytes())
			g.AddEdge(prev, v)
			prev = v
		}
		g.TagOutput(prev)
	}
	g.Freeze()
	return g
}

// ReductionTree returns a balanced binary reduction over n inputs (n ≥ 1):
// n input leaves combined pairwise until a single output root remains.
func ReductionTree(n int) *cdag.Graph {
	if n < 1 {
		panic("gen: ReductionTree needs n >= 1")
	}
	g := cdag.NewGraph(fmt.Sprintf("reduce-%d", n), 2*n)
	g.ReserveEdges(2 * (n - 1))
	var lb lbuf
	level := make([]cdag.VertexID, n)
	for i := range level {
		level[i] = g.AddInputBytes(lb.reset("in").int(i).bytes())
	}
	for len(level) > 1 {
		var next []cdag.VertexID
		for i := 0; i < len(level); i += 2 {
			if i+1 == len(level) {
				next = append(next, level[i])
				continue
			}
			v := g.AddVertex("add")
			g.AddEdge(level[i], v)
			g.AddEdge(level[i+1], v)
			next = append(next, v)
		}
		level = next
	}
	g.TagOutput(level[0])
	g.Freeze()
	return g
}

// DotProduct returns the CDAG of ⟨u, v⟩ for vectors of length n: 2n inputs,
// n multiply vertices, and a balanced reduction to one output.
func DotProduct(n int) *cdag.Graph {
	if n < 1 {
		panic("gen: DotProduct needs n >= 1")
	}
	g := cdag.NewGraph(fmt.Sprintf("dot-%d", n), 4*n)
	g.ReserveEdges(4*n - 2)
	var lb lbuf
	mults := make([]cdag.VertexID, n)
	for i := 0; i < n; i++ {
		u := g.AddInputBytes(lb.reset("u").int(i).bytes())
		v := g.AddInputBytes(lb.reset("v").int(i).bytes())
		m := g.AddVertexBytes(lb.reset("mul").int(i).bytes())
		g.AddEdge(u, m)
		g.AddEdge(v, m)
		mults[i] = m
	}
	level := mults
	for len(level) > 1 {
		var next []cdag.VertexID
		for i := 0; i < len(level); i += 2 {
			if i+1 == len(level) {
				next = append(next, level[i])
				continue
			}
			v := g.AddVertex("add")
			g.AddEdge(level[i], v)
			g.AddEdge(level[i+1], v)
			next = append(next, v)
		}
		level = next
	}
	g.TagOutput(level[0])
	g.Freeze()
	return g
}

// Saxpy returns the CDAG of y ← a·x + y for vectors of length n: 2n+1 inputs
// (x, y and the scalar a), n multiply and n add vertices, n outputs.
func Saxpy(n int) *cdag.Graph {
	if n < 1 {
		panic("gen: Saxpy needs n >= 1")
	}
	g := cdag.NewGraph(fmt.Sprintf("saxpy-%d", n), 4*n+1)
	g.ReserveEdges(4 * n)
	var lb lbuf
	a := g.AddInput("a")
	for i := 0; i < n; i++ {
		x := g.AddInputBytes(lb.reset("x").int(i).bytes())
		y := g.AddInputBytes(lb.reset("y").int(i).bytes())
		m := g.AddVertexBytes(lb.reset("mul").int(i).bytes())
		g.AddEdge(a, m)
		g.AddEdge(x, m)
		s := g.AddVertexBytes(lb.reset("out").int(i).bytes())
		g.TagOutput(s)
		g.AddEdge(m, s)
		g.AddEdge(y, s)
	}
	g.Freeze()
	return g
}

// OuterProduct returns the CDAG of the rank-1 update A = u·vᵀ for vectors of
// length n: 2n inputs and n² multiply vertices, all tagged as outputs.
// Its I/O cost is 2n + n² regardless of the fast-memory capacity
// (Section 3 of the paper).
func OuterProduct(n int) *cdag.Graph {
	if n < 1 {
		panic("gen: OuterProduct needs n >= 1")
	}
	g := cdag.NewGraph(fmt.Sprintf("outer-%d", n), 2*n+n*n)
	g.ReserveEdges(2 * n * n)
	var lb lbuf
	us := make([]cdag.VertexID, n)
	vs := make([]cdag.VertexID, n)
	for i := 0; i < n; i++ {
		us[i] = g.AddInputBytes(lb.reset("u").int(i).bytes())
	}
	for j := 0; j < n; j++ {
		vs[j] = g.AddInputBytes(lb.reset("v").int(j).bytes())
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a := g.AddVertexBytes(lb.reset("A[").int(i).sep(',').int(j).sep(']').bytes())
			g.TagOutput(a)
			g.AddEdge(us[i], a)
			g.AddEdge(vs[j], a)
		}
	}
	g.Freeze()
	return g
}
