package gen

import (
	"testing"

	"cdagio/internal/cdag"
	"cdagio/internal/graphalg"
)

// validateRBW checks the generated graph is a well-formed RBW CDAG.
func validateRBW(t *testing.T, g *cdag.Graph) {
	t.Helper()
	if err := g.Validate(cdag.ValidateRBW); err != nil {
		t.Fatalf("%s: invalid CDAG: %v", g.Name(), err)
	}
}

func TestChain(t *testing.T) {
	g := Chain(5)
	validateRBW(t, g)
	if g.NumVertices() != 5 || g.NumEdges() != 4 {
		t.Fatalf("chain sizes wrong: %v", g)
	}
	if g.NumInputs() != 1 || g.NumOutputs() != 1 {
		t.Fatalf("chain tags wrong: %v", g)
	}
	if g.CriticalPathLength() != 5 {
		t.Fatalf("chain depth = %d", g.CriticalPathLength())
	}
	if Chain(1).NumVertices() != 1 {
		t.Fatalf("singleton chain wrong")
	}
}

func TestIndependentChains(t *testing.T) {
	g := IndependentChains(3, 4)
	validateRBW(t, g)
	if g.NumVertices() != 12 || g.NumEdges() != 9 {
		t.Fatalf("sizes wrong: %v", g)
	}
	if g.NumInputs() != 3 || g.NumOutputs() != 3 {
		t.Fatalf("tags wrong: %v", g)
	}
}

func TestReductionTreeAndDot(t *testing.T) {
	g := ReductionTree(8)
	validateRBW(t, g)
	// 8 inputs + 7 internal adds.
	if g.NumVertices() != 15 || g.NumOutputs() != 1 {
		t.Fatalf("reduction tree sizes wrong: %v", g)
	}
	// Non-power-of-two size.
	g5 := ReductionTree(5)
	validateRBW(t, g5)
	if g5.NumVertices() != 5+4 || g5.NumOutputs() != 1 {
		t.Fatalf("reduction tree(5) sizes wrong: %v", g5)
	}

	d := DotProduct(6)
	validateRBW(t, d)
	// 12 inputs + 6 multiplies + 5 adds.
	if d.NumVertices() != 23 || d.NumInputs() != 12 || d.NumOutputs() != 1 {
		t.Fatalf("dot product sizes wrong: %v", d)
	}
}

func TestSaxpyAndOuterProduct(t *testing.T) {
	s := Saxpy(4)
	validateRBW(t, s)
	// 1 scalar + 8 vector inputs + 4 muls + 4 outputs.
	if s.NumVertices() != 17 || s.NumInputs() != 9 || s.NumOutputs() != 4 {
		t.Fatalf("saxpy sizes wrong: %v", s)
	}

	o := OuterProduct(3)
	validateRBW(t, o)
	if o.NumVertices() != 6+9 || o.NumInputs() != 6 || o.NumOutputs() != 9 {
		t.Fatalf("outer product sizes wrong: %v", o)
	}
	// Every output has exactly 2 predecessors (one u element, one v element).
	for _, v := range o.Outputs() {
		if o.InDegree(v) != 2 {
			t.Fatalf("outer product output in-degree %d", o.InDegree(v))
		}
	}
}

func TestMatMul(t *testing.T) {
	n := 4
	r := MatMul(n)
	g := r.Graph
	validateRBW(t, g)
	wantV := 2*n*n + n*n*n + n*n*(n-1)
	if g.NumVertices() != wantV {
		t.Fatalf("|V| = %d, want %d", g.NumVertices(), wantV)
	}
	if g.NumInputs() != 2*n*n || g.NumOutputs() != n*n {
		t.Fatalf("tags wrong: %v", g)
	}
	// Each output accumulation chain has depth n (muls) + n−1 (adds) ≥ via
	// critical path ≥ n.
	if g.CriticalPathLength() < n {
		t.Fatalf("critical path %d too short", g.CriticalPathLength())
	}
	// Handles are the right shape and outputs.
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if !g.IsOutput(r.C[i][j]) {
				t.Fatalf("C[%d][%d] not an output", i, j)
			}
		}
	}
	if !g.IsInput(r.A[0][0]) || !g.IsInput(r.B[n-1][n-1]) {
		t.Fatalf("A/B handles not inputs")
	}
}

func TestComposite(t *testing.T) {
	n := 4
	r := Composite(n)
	g := r.Graph
	validateRBW(t, g)
	if r.Sum == cdag.InvalidVertex || !g.IsOutput(r.Sum) {
		t.Fatalf("Sum handle wrong")
	}
	if len(r.P) != n || len(r.A) != n || len(r.Mul) != n || len(r.CAcc) != n {
		t.Fatalf("handles missing")
	}
	if g.NumInputs() != 4*n || g.NumOutputs() != 1 {
		t.Fatalf("composite tags wrong: %v", g)
	}
	// Vertex count: 4n inputs + 2n² rank-1 products + n³ muls + n²(n−1) adds
	// + n²−1 sum adds.
	want := 4*n + 2*n*n + n*n*n + n*n*(n-1) + n*n - 1
	if g.NumVertices() != want {
		t.Fatalf("|V| = %d, want %d", g.NumVertices(), want)
	}
	// The single output must depend (transitively) on every input.
	out := g.Outputs()[0]
	anc := graphalg.Ancestors(g, out)
	for _, in := range g.Inputs() {
		if !anc.Contains(in) {
			t.Fatalf("output does not depend on input %d", in)
		}
	}
}

func TestFFT(t *testing.T) {
	n := 8
	g := FFT(n)
	validateRBW(t, g)
	// log2(8)=3 stages of n vertices plus n inputs.
	if g.NumVertices() != n*4 {
		t.Fatalf("|V| = %d, want %d", g.NumVertices(), n*4)
	}
	if g.NumInputs() != n || g.NumOutputs() != n {
		t.Fatalf("FFT tags wrong: %v", g)
	}
	// Every non-input vertex has exactly 2 predecessors.
	for _, v := range g.Vertices() {
		if !g.IsInput(v) && g.InDegree(v) != 2 {
			t.Fatalf("FFT vertex %d has in-degree %d", v, g.InDegree(v))
		}
	}
	// Every output depends on every input (full butterfly connectivity).
	out0 := g.Outputs()[0]
	anc := graphalg.Ancestors(g, out0)
	for _, in := range g.Inputs() {
		if !anc.Contains(in) {
			t.Fatalf("output %d does not depend on input %d", out0, in)
		}
	}
	// Invalid sizes panic.
	for _, bad := range []int{0, 1, 3, 6} {
		func() {
			defer func() { _ = recover() }()
			FFT(bad)
			t.Fatalf("FFT(%d) did not panic", bad)
		}()
	}
}

func TestBinomialTree(t *testing.T) {
	g := BinomialTree(3)
	validateRBW(t, g)
	if g.NumVertices() != 8*4 {
		t.Fatalf("|V| = %d", g.NumVertices())
	}
	if g.NumInputs() != 8 || g.NumOutputs() != 8 {
		t.Fatalf("tags wrong: %v", g)
	}
	// The last element depends on all leaves; the first depends only on leaf 0.
	outs := g.Outputs()
	ancLast := graphalg.Ancestors(g, outs[len(outs)-1])
	if got := countInputs(g, ancLast); got != 8 {
		t.Fatalf("last output depends on %d inputs, want 8", got)
	}
	ancFirst := graphalg.Ancestors(g, outs[0])
	if got := countInputs(g, ancFirst); got != 1 {
		t.Fatalf("first output depends on %d inputs, want 1", got)
	}
}

func countInputs(g *cdag.Graph, s *cdag.VertexSet) int {
	n := 0
	for _, v := range s.Elements() {
		if g.IsInput(v) {
			n++
		}
	}
	return n
}

func TestPyramid(t *testing.T) {
	h := 4
	g := Pyramid(h)
	validateRBW(t, g)
	if g.NumVertices() != (h+1)*(h+2)/2 {
		t.Fatalf("|V| = %d", g.NumVertices())
	}
	if g.NumInputs() != h+1 || g.NumOutputs() != 1 {
		t.Fatalf("tags wrong: %v", g)
	}
	if g.CriticalPathLength() != h+1 {
		t.Fatalf("depth = %d, want %d", g.CriticalPathLength(), h+1)
	}
}

func TestJacobiStar(t *testing.T) {
	r := Jacobi(1, 6, 3, StencilStar)
	g := r.Graph
	validateRBW(t, g)
	if g.NumVertices() != 6*4 {
		t.Fatalf("|V| = %d, want 24", g.NumVertices())
	}
	if g.NumInputs() != 6 || g.NumOutputs() != 6 {
		t.Fatalf("tags wrong: %v", g)
	}
	// Interior vertex of a 1-D star stencil has 3 predecessors, boundary has 2.
	if g.InDegree(r.Layer[1][2]) != 3 {
		t.Fatalf("interior in-degree = %d", g.InDegree(r.Layer[1][2]))
	}
	if g.InDegree(r.Layer[1][0]) != 2 {
		t.Fatalf("boundary in-degree = %d", g.InDegree(r.Layer[1][0]))
	}
	if g.CriticalPathLength() != 4 {
		t.Fatalf("depth = %d, want T+1 = 4", g.CriticalPathLength())
	}
}

func TestJacobiBox2D(t *testing.T) {
	r := Jacobi(2, 5, 2, StencilBox)
	g := r.Graph
	validateRBW(t, g)
	if g.NumVertices() != 25*3 {
		t.Fatalf("|V| = %d", g.NumVertices())
	}
	// The 9-point stencil: interior vertices have 9 predecessors, corners 4.
	interior := r.Layer[1][r.Grid.Index([]int{2, 2})]
	if g.InDegree(interior) != 9 {
		t.Fatalf("interior in-degree = %d, want 9", g.InDegree(interior))
	}
	corner := r.Layer[1][r.Grid.Index([]int{0, 0})]
	if g.InDegree(corner) != 4 {
		t.Fatalf("corner in-degree = %d, want 4", g.InDegree(corner))
	}
	if StencilBox.String() != "box" || StencilStar.String() != "star" {
		t.Fatalf("stencil names wrong")
	}
}

func TestCGGraph(t *testing.T) {
	dim, n, iters := 2, 4, 3
	r := CG(dim, n, iters)
	g := r.Graph
	validateRBW(t, g)
	np := 16
	if g.NumInputs() != 3*np {
		t.Fatalf("CG inputs = %d, want %d", g.NumInputs(), 3*np)
	}
	if g.NumOutputs() != np {
		t.Fatalf("CG outputs = %d, want %d", g.NumOutputs(), np)
	}
	if len(r.AlphaVertex) != iters || len(r.GammaVertex) != iters || len(r.IterationVertices) != iters {
		t.Fatalf("per-iteration handles wrong: %d %d %d",
			len(r.AlphaVertex), len(r.GammaVertex), len(r.IterationVertices))
	}
	// Work per iteration is Θ(n^d): with the explicit reduction trees we
	// expect roughly 10·np vertices per iteration.
	perIter := (g.NumVertices() - 3*np) / iters
	if perIter < 8*np || perIter > 14*np {
		t.Fatalf("per-iteration vertex count %d outside [8np, 14np]", perIter)
	}
	// Iteration vertex sets are disjoint and cover all non-input vertices.
	total := 0
	for _, s := range r.IterationVertices {
		total += s.Len()
	}
	if total != g.NumVertices()-3*np {
		t.Fatalf("iteration sets cover %d vertices, want %d", total, g.NumVertices()-3*np)
	}
	// The alpha vertex of iteration 0 must depend on all of r0 and p0 and be
	// an ancestor of the outputs.
	anc := graphalg.Ancestors(g, r.AlphaVertex[0])
	if got := countInputs(g, anc); got < 2*np {
		t.Fatalf("alpha depends on %d inputs, want >= %d", got, 2*np)
	}
	desc := graphalg.Descendants(g, r.AlphaVertex[0])
	out := g.Outputs()[0]
	if !desc.Contains(out) {
		t.Fatalf("alpha does not reach the outputs")
	}
}

func TestGMRESGraph(t *testing.T) {
	dim, n, m := 2, 4, 3
	r := GMRES(dim, n, m)
	g := r.Graph
	validateRBW(t, g)
	np := 16
	if g.NumInputs() != np || g.NumOutputs() != np {
		t.Fatalf("GMRES tags wrong: %v", g)
	}
	if len(r.LastDotVertex) != m || len(r.NormVertex) != m || len(r.IterationVertices) != m {
		t.Fatalf("per-iteration handles wrong")
	}
	// Iteration i does i+1 inner products, so later iterations create more
	// vertices than earlier ones.
	if r.IterationVertices[m-1].Len() <= r.IterationVertices[0].Len() {
		t.Fatalf("iteration growth not visible: %d vs %d",
			r.IterationVertices[m-1].Len(), r.IterationVertices[0].Len())
	}
	// The final dot of iteration 0 depends on v0 and reaches the outputs.
	anc := graphalg.Ancestors(g, r.LastDotVertex[0])
	if got := countInputs(g, anc); got != np {
		t.Fatalf("h dot depends on %d inputs, want %d", got, np)
	}
	desc := graphalg.Descendants(g, r.LastDotVertex[0])
	if !desc.Contains(g.Outputs()[0]) {
		t.Fatalf("h dot does not reach outputs")
	}
}

func TestGeneratorPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"Chain":             func() { Chain(0) },
		"IndependentChains": func() { IndependentChains(0, 3) },
		"ReductionTree":     func() { ReductionTree(0) },
		"DotProduct":        func() { DotProduct(0) },
		"Saxpy":             func() { Saxpy(0) },
		"OuterProduct":      func() { OuterProduct(0) },
		"MatMul":            func() { MatMul(0) },
		"Composite":         func() { Composite(0) },
		"BinomialTree":      func() { BinomialTree(-1) },
		"Pyramid":           func() { Pyramid(-1) },
		"Jacobi":            func() { Jacobi(2, 4, 0, StencilStar) },
		"CG":                func() { CG(2, 4, 0) },
		"GMRES":             func() { GMRES(2, 4, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic on invalid parameters", name)
				}
			}()
			f()
		}()
	}
}

func TestDeterminism(t *testing.T) {
	a := CG(2, 3, 2).Graph
	b := CG(2, 3, 2).Graph
	if a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges() {
		t.Fatalf("CG generation not deterministic")
	}
	for v := 0; v < a.NumVertices(); v++ {
		id := cdag.VertexID(v)
		if a.Label(id) != b.Label(id) || a.InDegree(id) != b.InDegree(id) {
			t.Fatalf("CG generation differs at vertex %d", v)
		}
	}
}
