package gen

import "testing"

// TestJacobiMillionVertexScale builds a ≥1M-vertex 2-D box-stencil CDAG on
// the CSR core and checks its vertex and edge counts against the closed
// forms.  Skipped under -short (and in the race CI job): the full build runs
// in well under a second on the flat representation, but it allocates a
// couple hundred megabytes.
func TestJacobiMillionVertexScale(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping 1M-vertex scale test in -short mode")
	}
	const (
		n     = 512
		steps = 3
	)
	r := Jacobi(2, n, steps, StencilBox)
	g := r.Graph
	wantV := n * n * (steps + 1)
	if wantV < 1_000_000 {
		t.Fatalf("test misconfigured: %d vertices < 1M", wantV)
	}
	if g.NumVertices() != wantV {
		t.Fatalf("|V| = %d, want %d", g.NumVertices(), wantV)
	}
	// Box-stencil edge count per step: every (cell, offset) pair with the
	// probed cell in bounds, i.e. (number of in-range offsets per cell summed
	// over cells) = (3n-2)² for a 2-D grid of side n.
	wantE := steps * (3*n - 2) * (3*n - 2)
	if g.NumEdges() != wantE {
		t.Fatalf("|E| = %d, want %d", g.NumEdges(), wantE)
	}
	if !g.Frozen() {
		t.Fatalf("generator did not freeze the graph")
	}
	if g.NumInputs() != n*n || g.NumOutputs() != n*n {
		t.Fatalf("tags: %d inputs, %d outputs, want %d each", g.NumInputs(), g.NumOutputs(), n*n)
	}
	// Spot-check an interior vertex's stencil in-degree.
	interior := r.Layer[1][r.Grid.Index([]int{5, 5})]
	if g.InDegree(interior) != 9 {
		t.Fatalf("interior in-degree = %d, want 9", g.InDegree(interior))
	}
}
