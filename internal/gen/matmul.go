package gen

import (
	"fmt"

	"cdagio/internal/cdag"
)

// MatMulResult bundles the matrix-multiplication CDAG with handles to its
// structured vertex groups, so analyses can refer to "the A inputs" or "the
// C outputs" without re-deriving them from labels.
type MatMulResult struct {
	Graph *cdag.Graph
	N     int
	// A[i][k], B[k][j] are the input vertices.
	A, B [][]cdag.VertexID
	// C[i][j] is the final accumulation vertex of each output element.
	C [][]cdag.VertexID
	// Mul[i][j][k] is the multiply vertex A[i][k]·B[k][j]; Add[i][j][k] is the
	// accumulation vertex that folds Mul[i][j][k] into the running sum
	// (Add[i][j][0] is InvalidVertex because the first product needs no add).
	Mul, Add [][][]cdag.VertexID
}

// MatMul returns the CDAG of the classical O(n³) matrix multiplication
// C = A·B for n×n matrices: n² multiply vertices per output element, combined
// by a length-n accumulation chain.  Inputs are the 2n² matrix elements and
// outputs the n² final accumulations.
//
// The CDAG has n³ multiply vertices and n²(n−1) add vertices; its sequential
// I/O lower bound is n³/(2√(2S)) (Hong & Kung; Section 3 of the paper).
func MatMul(n int) *MatMulResult {
	if n < 1 {
		panic("gen: MatMul needs n >= 1")
	}
	g := cdag.NewGraph(fmt.Sprintf("matmul-%d", n), 2*n*n+2*n*n*n)
	g.ReserveEdges(2*n*n*n + 2*n*n*(n-1))
	res := &MatMulResult{Graph: g, N: n}
	var lb lbuf
	res.A = grid2(n, func(i, k int) cdag.VertexID {
		return g.AddInputBytes(lb.reset("A[").int(i).sep(',').int(k).sep(']').bytes())
	})
	res.B = grid2(n, func(k, j int) cdag.VertexID {
		return g.AddInputBytes(lb.reset("B[").int(k).sep(',').int(j).sep(']').bytes())
	})
	res.C = make([][]cdag.VertexID, n)
	res.Mul = make([][][]cdag.VertexID, n)
	res.Add = make([][][]cdag.VertexID, n)
	for i := 0; i < n; i++ {
		res.C[i] = make([]cdag.VertexID, n)
		res.Mul[i] = make([][]cdag.VertexID, n)
		res.Add[i] = make([][]cdag.VertexID, n)
		for j := 0; j < n; j++ {
			res.Mul[i][j] = make([]cdag.VertexID, n)
			res.Add[i][j] = make([]cdag.VertexID, n)
			var acc cdag.VertexID = cdag.InvalidVertex
			for k := 0; k < n; k++ {
				m := g.AddVertexBytes(lb.reset("mul[").int(i).sep(',').int(j).sep(',').int(k).sep(']').bytes())
				g.AddEdge(res.A[i][k], m)
				g.AddEdge(res.B[k][j], m)
				res.Mul[i][j][k] = m
				res.Add[i][j][k] = cdag.InvalidVertex
				if acc == cdag.InvalidVertex {
					acc = m
					continue
				}
				add := g.AddVertexBytes(lb.reset("add[").int(i).sep(',').int(j).sep(',').int(k).sep(']').bytes())
				g.AddEdge(acc, add)
				g.AddEdge(m, add)
				res.Add[i][j][k] = add
				acc = add
			}
			g.TagOutput(acc)
			res.C[i][j] = acc
		}
	}
	g.Freeze()
	return res
}

func grid2(n int, mk func(i, j int) cdag.VertexID) [][]cdag.VertexID {
	out := make([][]cdag.VertexID, n)
	for i := 0; i < n; i++ {
		out[i] = make([]cdag.VertexID, n)
		for j := 0; j < n; j++ {
			out[i][j] = mk(i, j)
		}
	}
	return out
}

// CompositeResult bundles the Section-3 composite CDAG with handles to its
// vertex groups, so the recomputation strategy of Section 3 can be replayed
// move by move on it.
type CompositeResult struct {
	Graph *cdag.Graph
	N     int
	// P, Q, R, S are the input vector vertices.
	P, Q, R, S []cdag.VertexID
	// A[i][k] and B[k][j] are the rank-1 product vertices.
	A, B [][]cdag.VertexID
	// Mul[i][j][k] and AddC[i][j][k] form the accumulation chain of C[i][j]
	// (AddC[i][j][0] is InvalidVertex); CAcc[i][j] is the chain's last vertex.
	Mul, AddC [][][]cdag.VertexID
	CAcc      [][]cdag.VertexID
	// AddS[i][j] folds C[i][j] into the running global sum
	// (AddS[0][0] is InvalidVertex); Sum is the final output vertex.
	AddS [][]cdag.VertexID
	Sum  cdag.VertexID
}

// Composite returns the CDAG of the Section-3 composite example:
//
//	A = p·qᵀ;  B = r·sᵀ;  C = A·B;  sum = Σᵢⱼ Cᵢⱼ
//
// for vectors p, q, r, s of length n.  Only the four vectors are inputs and
// only the final scalar is an output; all intermediate matrices are untagged,
// which is exactly what makes the composite's I/O complexity (≈ 4n+1 with
// Θ(n) words of fast memory, using recomputation) lower than the matmul step
// it contains.
func Composite(n int) *CompositeResult {
	if n < 1 {
		panic("gen: Composite needs n >= 1")
	}
	g := cdag.NewGraph(fmt.Sprintf("composite-%d", n), 4*n+2*n*n+2*n*n*n+n*n)
	g.ReserveEdges(4*n*n + 2*n*n*n + 2*n*n*(n-1) + 2*(n*n-1))
	res := &CompositeResult{Graph: g, N: n}
	res.P = make([]cdag.VertexID, n)
	res.Q = make([]cdag.VertexID, n)
	res.R = make([]cdag.VertexID, n)
	res.S = make([]cdag.VertexID, n)
	var lb lbuf
	for i := 0; i < n; i++ {
		res.P[i] = g.AddInputBytes(lb.reset("p").int(i).bytes())
		res.Q[i] = g.AddInputBytes(lb.reset("q").int(i).bytes())
		res.R[i] = g.AddInputBytes(lb.reset("r").int(i).bytes())
		res.S[i] = g.AddInputBytes(lb.reset("s").int(i).bytes())
	}
	// A[i][k] = p[i]*q[k], B[k][j] = r[k]*s[j].
	res.A = grid2(n, func(i, k int) cdag.VertexID {
		v := g.AddVertexBytes(lb.reset("A[").int(i).sep(',').int(k).sep(']').bytes())
		g.AddEdge(res.P[i], v)
		g.AddEdge(res.Q[k], v)
		return v
	})
	res.B = grid2(n, func(k, j int) cdag.VertexID {
		v := g.AddVertexBytes(lb.reset("B[").int(k).sep(',').int(j).sep(']').bytes())
		g.AddEdge(res.R[k], v)
		g.AddEdge(res.S[j], v)
		return v
	})
	// C[i][j] = Σ_k A[i][k]·B[k][j], then sum over all C entries.
	res.Mul = make([][][]cdag.VertexID, n)
	res.AddC = make([][][]cdag.VertexID, n)
	res.CAcc = make([][]cdag.VertexID, n)
	res.AddS = make([][]cdag.VertexID, n)
	var sumAcc cdag.VertexID = cdag.InvalidVertex
	for i := 0; i < n; i++ {
		res.Mul[i] = make([][]cdag.VertexID, n)
		res.AddC[i] = make([][]cdag.VertexID, n)
		res.CAcc[i] = make([]cdag.VertexID, n)
		res.AddS[i] = make([]cdag.VertexID, n)
		for j := 0; j < n; j++ {
			res.Mul[i][j] = make([]cdag.VertexID, n)
			res.AddC[i][j] = make([]cdag.VertexID, n)
			var acc cdag.VertexID = cdag.InvalidVertex
			for k := 0; k < n; k++ {
				m := g.AddVertexBytes(lb.reset("mul[").int(i).sep(',').int(j).sep(',').int(k).sep(']').bytes())
				g.AddEdge(res.A[i][k], m)
				g.AddEdge(res.B[k][j], m)
				res.Mul[i][j][k] = m
				res.AddC[i][j][k] = cdag.InvalidVertex
				if acc == cdag.InvalidVertex {
					acc = m
					continue
				}
				add := g.AddVertexBytes(lb.reset("addC[").int(i).sep(',').int(j).sep(',').int(k).sep(']').bytes())
				g.AddEdge(acc, add)
				g.AddEdge(m, add)
				res.AddC[i][j][k] = add
				acc = add
			}
			res.CAcc[i][j] = acc
			// Accumulate C[i][j] into the running global sum.
			res.AddS[i][j] = cdag.InvalidVertex
			if sumAcc == cdag.InvalidVertex {
				sumAcc = acc
				continue
			}
			add := g.AddVertexBytes(lb.reset("addS[").int(i).sep(',').int(j).sep(']').bytes())
			g.AddEdge(sumAcc, add)
			g.AddEdge(acc, add)
			res.AddS[i][j] = add
			sumAcc = add
		}
	}
	g.TagOutput(sumAcc)
	res.Sum = sumAcc
	g.Freeze()
	return res
}

// FFT returns the CDAG of an n-point radix-2 FFT butterfly network, n = 2^k:
// log₂ n stages of n vertices each; vertex (s, i) depends on (s−1, i) and
// (s−1, i xor 2^{s−1}).  Stage 0 holds the n inputs and the last stage the n
// outputs.  Its sequential I/O lower bound is Θ(n log n / log S).
func FFT(n int) *cdag.Graph {
	if n < 2 || n&(n-1) != 0 {
		panic("gen: FFT needs n to be a power of two >= 2")
	}
	stages := 0
	for s := n; s > 1; s >>= 1 {
		stages++
	}
	g := cdag.NewGraph(fmt.Sprintf("fft-%d", n), n*(stages+1))
	g.ReserveEdges(2 * n * stages)
	var lb lbuf
	prev := make([]cdag.VertexID, n)
	for i := 0; i < n; i++ {
		prev[i] = g.AddInputBytes(lb.reset("x").int(i).bytes())
	}
	for s := 1; s <= stages; s++ {
		cur := make([]cdag.VertexID, n)
		span := 1 << (s - 1)
		for i := 0; i < n; i++ {
			cur[i] = g.AddVertexBytes(lb.reset("s").int(s).sep('.').int(i).bytes())
			g.AddEdge(prev[i], cur[i])
			g.AddEdge(prev[i^span], cur[i])
		}
		prev = cur
	}
	for _, v := range prev {
		g.TagOutput(v)
	}
	g.Freeze()
	return g
}

// BinomialTree returns the CDAG of the binomial computation graph B_k used by
// Ranjan, Savage and Zubair: B_0 is a single vertex; B_k is two copies of
// B_{k−1} with an edge from the root of the first to every vertex of the
// second copy's root chain... Concretely we use the standard recursive
// doubling structure with 2^k leaves combining pairwise with carries, which
// has the binomial dependence pattern.  Sources are inputs, sinks outputs.
func BinomialTree(k int) *cdag.Graph {
	if k < 0 || k > 20 {
		panic("gen: BinomialTree needs 0 <= k <= 20")
	}
	n := 1 << k
	g := cdag.NewGraph(fmt.Sprintf("binomial-%d", k), n*(k+1))
	g.ReserveEdges(k * (n + n/2))
	var lb lbuf
	prev := make([]cdag.VertexID, n)
	for i := range prev {
		prev[i] = g.AddInputBytes(lb.reset("leaf").int(i).bytes())
	}
	for s := 1; s <= k; s++ {
		cur := make([]cdag.VertexID, n)
		span := 1 << (s - 1)
		for i := 0; i < n; i++ {
			cur[i] = g.AddVertexBytes(lb.reset("b").int(s).sep('.').int(i).bytes())
			g.AddEdge(prev[i], cur[i])
			// Combine with the partner block, binomial-style: only the upper
			// half of each 2^s block receives the carry from the lower half.
			if i&span != 0 {
				g.AddEdge(prev[i^span], cur[i])
			}
		}
		prev = cur
	}
	for _, v := range prev {
		g.TagOutput(v)
	}
	g.Freeze()
	return g
}

// Pyramid returns the CDAG of a 2-D r-pyramid of height h: row 0 has h+1
// input vertices and each row above combines adjacent pairs until a single
// apex output remains.  Pyramids are the canonical example where the min-cut
// wavefront technique beats 2S-partitioning.
func Pyramid(h int) *cdag.Graph {
	if h < 0 {
		panic("gen: Pyramid needs h >= 0")
	}
	g := cdag.NewGraph(fmt.Sprintf("pyramid-%d", h), (h+1)*(h+2)/2)
	g.ReserveEdges(h * (h + 1))
	var lb lbuf
	prev := make([]cdag.VertexID, h+1)
	for i := range prev {
		prev[i] = g.AddInputBytes(lb.reset("base").int(i).bytes())
	}
	for row := 1; row <= h; row++ {
		cur := make([]cdag.VertexID, h+1-row)
		for i := range cur {
			cur[i] = g.AddVertexBytes(lb.reset("p").int(row).sep('.').int(i).bytes())
			g.AddEdge(prev[i], cur[i])
			g.AddEdge(prev[i+1], cur[i])
		}
		prev = cur
	}
	g.TagOutput(prev[0])
	g.Freeze()
	return g
}
