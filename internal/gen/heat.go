package gen

import (
	"fmt"

	"cdagio/internal/cdag"
)

// HeatResult bundles the CDAG of the implicit 1-D heat-equation time-stepper
// (Section 5.1) with its per-time-step vertex groups.
type HeatResult struct {
	Graph *cdag.Graph
	N     int
	Steps int
	// U[t][i] is the temperature value at grid point i after t time steps
	// (U[0] holds the inputs, U[Steps] the outputs).
	U [][]cdag.VertexID
	// RHS[t][i], Forward[t][i] and the back-substituted U[t+1][i] are the
	// three stages of time step t (0-based): the right-hand-side assembly
	// b = B·u, the forward-elimination recurrence of the Thomas algorithm and
	// the back-substitution recurrence.
	RHS     [][]cdag.VertexID
	Forward [][]cdag.VertexID
}

// HeatEquation1D returns the CDAG of the Crank–Nicolson time-stepper of
// Section 5.1: at every time step the tridiagonal system of Equation (11) is
// solved with the Thomas algorithm.  The matrix coefficients are embedded
// constants (as the paper assumes), so the CDAG contains only the
// data-dependent values: per step, n right-hand-side vertices (each depending
// on up to three previous-step temperatures), a forward-elimination chain of
// n vertices and a back-substitution chain of n vertices.
//
// Unlike the Jacobi sweep, the two per-step chains make the computation
// deeply sequential: the critical path grows as 2·n·T, which is why implicit
// time-steppers trade parallelism for stability.
func HeatEquation1D(n, steps int) *HeatResult {
	if n < 2 {
		panic("gen: HeatEquation1D needs n >= 2")
	}
	if steps < 1 {
		panic("gen: HeatEquation1D needs steps >= 1")
	}
	g := cdag.NewGraph(fmt.Sprintf("heat1d-%d-T%d", n, steps), n*(3*steps+1))
	g.ReserveEdges(steps * (7*n - 4))
	res := &HeatResult{Graph: g, N: n, Steps: steps,
		U:       make([][]cdag.VertexID, steps+1),
		RHS:     make([][]cdag.VertexID, steps),
		Forward: make([][]cdag.VertexID, steps),
	}
	var lb lbuf
	res.U[0] = make([]cdag.VertexID, n)
	for i := 0; i < n; i++ {
		res.U[0][i] = g.AddInputBytes(lb.reset("u0[").int(i).sep(']').bytes())
	}
	for t := 0; t < steps; t++ {
		u := res.U[t]
		// Right-hand side b = B·u (tridiagonal stencil on the previous step).
		rhs := make([]cdag.VertexID, n)
		for i := 0; i < n; i++ {
			v := g.AddVertexBytes(lb.reset("b").int(t).sep('[').int(i).sep(']').bytes())
			if i > 0 {
				g.AddEdge(u[i-1], v)
			}
			g.AddEdge(u[i], v)
			if i+1 < n {
				g.AddEdge(u[i+1], v)
			}
			rhs[i] = v
		}
		res.RHS[t] = rhs
		// Forward elimination: dp[0] = b[0]/diag; dp[i] = f(b[i], dp[i-1]).
		fwd := make([]cdag.VertexID, n)
		for i := 0; i < n; i++ {
			v := g.AddVertexBytes(lb.reset("dp").int(t).sep('[').int(i).sep(']').bytes())
			g.AddEdge(rhs[i], v)
			if i > 0 {
				g.AddEdge(fwd[i-1], v)
			}
			fwd[i] = v
		}
		res.Forward[t] = fwd
		// Back substitution: x[n-1] = dp[n-1]; x[i] = f(dp[i], x[i+1]).
		next := make([]cdag.VertexID, n)
		for i := n - 1; i >= 0; i-- {
			v := g.AddVertexBytes(lb.reset("u").int(t + 1).sep('[').int(i).sep(']').bytes())
			g.AddEdge(fwd[i], v)
			if i+1 < n {
				g.AddEdge(next[i+1], v)
			}
			next[i] = v
		}
		res.U[t+1] = next
	}
	for _, v := range res.U[steps] {
		g.TagOutput(v)
	}
	g.Freeze()
	return res
}

// SpMVResult bundles a sparse matrix-vector product CDAG with its row-output
// handles.
type SpMVResult struct {
	Graph *cdag.Graph
	Rows  int
	// X[j] are the input-vector vertices and Y[i] the output vertices.
	X, Y []cdag.VertexID
}

// SpMV returns the CDAG of y = A·x for a sparse matrix given by its row
// adjacency (rowCols[i] lists the column indices of row i).  Matrix values
// are treated as embedded constants, as in the paper's discretized-operator
// setting: each product x[j]·a_ij is a vertex with the single predecessor
// x[j], and the products of a row are folded by an accumulation chain whose
// last vertex is the output y[i].  Empty rows produce a constant-zero output
// vertex with no predecessors.
func SpMV(cols int, rowCols [][]int) *SpMVResult {
	if cols < 1 {
		panic("gen: SpMV needs at least one column")
	}
	nnz := 0
	for _, row := range rowCols {
		nnz += len(row)
	}
	g := cdag.NewGraph(fmt.Sprintf("spmv-%dx%d", len(rowCols), cols), cols+2*nnz)
	g.ReserveEdges(3 * nnz)
	res := &SpMVResult{Graph: g, Rows: len(rowCols)}
	var lb lbuf
	res.X = make([]cdag.VertexID, cols)
	for j := 0; j < cols; j++ {
		res.X[j] = g.AddInputBytes(lb.reset("x[").int(j).sep(']').bytes())
	}
	res.Y = make([]cdag.VertexID, len(rowCols))
	for i, row := range rowCols {
		var acc cdag.VertexID = cdag.InvalidVertex
		for _, j := range row {
			if j < 0 || j >= cols {
				panic(fmt.Sprintf("gen: SpMV column %d out of range [0,%d)", j, cols))
			}
			m := g.AddVertexBytes(lb.reset("t[").int(i).sep(',').int(j).sep(']').bytes())
			g.AddEdge(res.X[j], m)
			if acc == cdag.InvalidVertex {
				acc = m
				continue
			}
			add := g.AddVertexBytes(lb.reset("acc[").int(i).sep(',').int(j).sep(']').bytes())
			g.AddEdge(acc, add)
			g.AddEdge(m, add)
			acc = add
		}
		if acc == cdag.InvalidVertex {
			acc = g.AddVertexBytes(lb.reset("zero[").int(i).sep(']').bytes())
		}
		g.TagOutput(acc)
		res.Y[i] = acc
	}
	g.Freeze()
	return res
}
