package gen

import (
	"fmt"

	"cdagio/internal/cdag"
	"cdagio/internal/linalg"
)

// CGResult bundles the Conjugate Gradient CDAG (Figure 3) with handles to the
// vertices the min-cut wavefront analysis of Theorem 8 refers to.
type CGResult struct {
	Graph      *cdag.Graph
	Grid       linalg.Grid
	Iterations int
	// AlphaVertex[t] is the vertex of the scalar a = ⟨r,r⟩/⟨p,v⟩ of outer
	// iteration t (the vertex υ_x of Theorem 8).
	AlphaVertex []cdag.VertexID
	// GammaVertex[t] is the vertex of the scalar g = ⟨r_new,r_new⟩/⟨r,r⟩ of
	// outer iteration t (the vertex υ_y of Theorem 8).
	GammaVertex []cdag.VertexID
	// IterationVertices[t] is the set of vertices created by outer iteration t
	// (used by the per-iteration decomposition of the lower-bound proof).
	IterationVertices []*cdag.VertexSet
}

// CG returns the CDAG of T iterations of the Conjugate Gradient method
// (Figure 3 of the paper) applied to the (2d+1)-point Laplacian of a
// d-dimensional grid with n points per dimension.  The state vectors x, r, p
// at iteration 0 are the inputs; the final x is the output.
//
// Scalar reductions (the dot products) are realized as balanced binary trees,
// and every vector update is an explicit per-element vertex, so |V| grows as
// Θ(n^d · T), matching the 20·n³·T operation count the paper uses for d = 3.
func CG(dim, n, iterations int) *CGResult {
	if iterations < 1 {
		panic("gen: CG needs iterations >= 1")
	}
	grid := linalg.NewGrid(dim, n)
	np := grid.Points()
	g := cdag.NewGraph(fmt.Sprintf("cg-%dd-%d-T%d", dim, n, iterations), 0)
	res := &CGResult{Graph: g, Grid: grid, Iterations: iterations}

	nbrOff, nbrVal := gridNeighborsFlat(grid)
	g.ReserveEdges(iterations * (20*np + len(nbrVal)))
	var lb lbuf
	x := make([]cdag.VertexID, np)
	r := make([]cdag.VertexID, np)
	p := make([]cdag.VertexID, np)
	for i := 0; i < np; i++ {
		x[i] = g.AddInputBytes(lb.reset("x0[").int(i).sep(']').bytes())
		r[i] = g.AddInputBytes(lb.reset("r0[").int(i).sep(']').bytes())
		p[i] = g.AddInputBytes(lb.reset("p0[").int(i).sep(']').bytes())
	}

	for t := 0; t < iterations; t++ {
		iterStart := cdag.VertexID(g.NumVertices())

		// v ← A·p (sparse matrix-vector product over the grid stencil).
		v := make([]cdag.VertexID, np)
		for i := 0; i < np; i++ {
			v[i] = g.AddVertexBytes(lb.reset("v").int(t).sep('[').int(i).sep(']').bytes())
			g.AddEdge(p[i], v[i])
			for _, jn := range nbrVal[nbrOff[i]:nbrOff[i+1]] {
				g.AddEdge(p[jn], v[i])
			}
		}
		// rr ← ⟨r, r⟩ and pv ← ⟨p, v⟩.
		rr := reduceTree(g, fmt.Sprintf("rr%d", t), squareTerms(g, t, "r2", r))
		pv := reduceTree(g, fmt.Sprintf("pv%d", t), pairTerms(g, t, "pv", p, v))
		// a ← rr / pv.
		alpha := g.AddVertex(fmt.Sprintf("alpha%d", t))
		g.AddEdge(rr, alpha)
		g.AddEdge(pv, alpha)
		res.AlphaVertex = append(res.AlphaVertex, alpha)
		// x ← x + a·p  and  r_new ← r − a·v.
		xNew := make([]cdag.VertexID, np)
		rNew := make([]cdag.VertexID, np)
		for i := 0; i < np; i++ {
			xNew[i] = g.AddVertexBytes(lb.reset("x").int(t + 1).sep('[').int(i).sep(']').bytes())
			g.AddEdge(x[i], xNew[i])
			g.AddEdge(alpha, xNew[i])
			g.AddEdge(p[i], xNew[i])
			rNew[i] = g.AddVertexBytes(lb.reset("r").int(t + 1).sep('[').int(i).sep(']').bytes())
			g.AddEdge(r[i], rNew[i])
			g.AddEdge(alpha, rNew[i])
			g.AddEdge(v[i], rNew[i])
		}
		// g ← ⟨r_new, r_new⟩ / ⟨r, r⟩.
		rnrn := reduceTree(g, fmt.Sprintf("rnrn%d", t), squareTerms(g, t, "rn2", rNew))
		gamma := g.AddVertexBytes(lb.reset("gamma").int(t).bytes())
		g.AddEdge(rnrn, gamma)
		g.AddEdge(rr, gamma)
		res.GammaVertex = append(res.GammaVertex, gamma)
		// p ← r_new + g·p.
		pNew := make([]cdag.VertexID, np)
		for i := 0; i < np; i++ {
			pNew[i] = g.AddVertexBytes(lb.reset("p").int(t + 1).sep('[').int(i).sep(']').bytes())
			g.AddEdge(rNew[i], pNew[i])
			g.AddEdge(gamma, pNew[i])
			g.AddEdge(p[i], pNew[i])
		}
		x, r, p = xNew, rNew, pNew

		iterSet := cdag.NewVertexSet(g.NumVertices())
		for v := iterStart; v < cdag.VertexID(g.NumVertices()); v++ {
			iterSet.Add(v)
		}
		res.IterationVertices = append(res.IterationVertices, iterSet)
	}
	for _, xi := range x {
		g.TagOutput(xi)
	}
	g.Freeze()
	return res
}

// squareTerms creates the element-wise product vertices r[i]·r[i] feeding a
// self inner product.
func squareTerms(g *cdag.Graph, t int, tag string, r []cdag.VertexID) []cdag.VertexID {
	var lb lbuf
	terms := make([]cdag.VertexID, len(r))
	for i := range r {
		terms[i] = g.AddVertexBytes(lb.reset(tag).int(t).sep('[').int(i).sep(']').bytes())
		g.AddEdge(r[i], terms[i])
	}
	return terms
}

// pairTerms creates the element-wise product vertices a[i]·b[i] feeding an
// inner product of two distinct vectors.
func pairTerms(g *cdag.Graph, t int, tag string, a, b []cdag.VertexID) []cdag.VertexID {
	var lb lbuf
	terms := make([]cdag.VertexID, len(a))
	for i := range a {
		terms[i] = g.AddVertexBytes(lb.reset(tag).int(t).sep('[').int(i).sep(']').bytes())
		g.AddEdge(a[i], terms[i])
		g.AddEdge(b[i], terms[i])
	}
	return terms
}

// reduceTree reduces the term vertices with a balanced binary adder tree and
// returns the root vertex.
func reduceTree(g *cdag.Graph, tag string, terms []cdag.VertexID) cdag.VertexID {
	var lb lbuf
	level := terms
	round := 0
	for len(level) > 1 {
		var next []cdag.VertexID
		for i := 0; i < len(level); i += 2 {
			if i+1 == len(level) {
				next = append(next, level[i])
				continue
			}
			v := g.AddVertexBytes(lb.reset(tag).str(".red").int(round).sep('.').int(i / 2).bytes())
			g.AddEdge(level[i], v)
			g.AddEdge(level[i+1], v)
			next = append(next, v)
		}
		level = next
		round++
	}
	return level[0]
}

// GMRESResult bundles the GMRES CDAG (Figure 4) with the per-iteration
// handles used by Theorem 9's wavefront analysis.
type GMRESResult struct {
	Graph      *cdag.Graph
	Grid       linalg.Grid
	Iterations int
	// LastDotVertex[i] is the vertex of h_{i,i} = ⟨w, v_i⟩ at outer iteration
	// i (the vertex υ_x of Theorem 9).
	LastDotVertex []cdag.VertexID
	// NormVertex[i] is the vertex of h_{i+1,i} = ‖v'_{i+1}‖ (υ_y of Thm 9).
	NormVertex []cdag.VertexID
	// IterationVertices[i] is the set of vertices created by outer iteration i.
	IterationVertices []*cdag.VertexSet
}

// GMRES returns the CDAG of m outer iterations of GMRES with modified
// Gram–Schmidt orthogonalization (Figure 4) on the (2d+1)-point Laplacian of
// an n^d grid.  The initial basis vector v₀ is the input; the Krylov basis
// update of the final iteration is the output.  Iteration i performs one
// SpMV, i+1 inner products and i AXPY updates, so the total vertex count
// grows as Θ(n^d·m²) for the orthogonalization plus Θ(n^d·m) for the SpMVs,
// matching the 20·n³·m + n³·m² operation count of Section 5.3.3.
func GMRES(dim, n, iterations int) *GMRESResult {
	if iterations < 1 {
		panic("gen: GMRES needs iterations >= 1")
	}
	grid := linalg.NewGrid(dim, n)
	np := grid.Points()
	g := cdag.NewGraph(fmt.Sprintf("gmres-%dd-%d-m%d", dim, n, iterations), 0)
	res := &GMRESResult{Graph: g, Grid: grid, Iterations: iterations}

	nbrOff, nbrVal := gridNeighborsFlat(grid)
	reserve := 0
	for it := 0; it < iterations; it++ {
		reserve += np + len(nbrVal) + (it+1)*4*np + np*(5+2*(it+1)) + 2*np
	}
	g.ReserveEdges(reserve)
	var lb lbuf
	v0 := make([]cdag.VertexID, np)
	for i := 0; i < np; i++ {
		v0[i] = g.AddInputBytes(lb.reset("v0[").int(i).sep(']').bytes())
	}
	basis := [][]cdag.VertexID{v0}

	for it := 0; it < iterations; it++ {
		iterStart := cdag.VertexID(g.NumVertices())
		vi := basis[len(basis)-1]

		// w ← A·v_i.
		w := make([]cdag.VertexID, np)
		for i := 0; i < np; i++ {
			w[i] = g.AddVertexBytes(lb.reset("w").int(it).sep('[').int(i).sep(']').bytes())
			g.AddEdge(vi[i], w[i])
			for _, jn := range nbrVal[nbrOff[i]:nbrOff[i+1]] {
				g.AddEdge(vi[jn], w[i])
			}
		}
		// Modified Gram–Schmidt: for j = 0..it, h_{j,it} = ⟨w, v_j⟩ then
		// w ← w − h_{j,it}·v_j (we keep the mathematically equivalent update
		// ordering of Figure 4: all dots first, then the combined AXPYs).
		hs := make([]cdag.VertexID, 0, it+1)
		for j := 0; j <= it && j < len(basis); j++ {
			h := reduceTree(g, fmt.Sprintf("h%d_%d", j, it), pairTerms(g, it*1000+j, "hw", w, basis[j]))
			hs = append(hs, h)
		}
		res.LastDotVertex = append(res.LastDotVertex, hs[len(hs)-1])
		// v' ← w − Σ_j h_{j,it}·v_j.
		vprime := make([]cdag.VertexID, np)
		for i := 0; i < np; i++ {
			vprime[i] = g.AddVertexBytes(lb.reset("vp").int(it).sep('[').int(i).sep(']').bytes())
			g.AddEdge(w[i], vprime[i])
			for j, h := range hs {
				g.AddEdge(h, vprime[i])
				g.AddEdge(basis[j][i], vprime[i])
			}
		}
		// h_{it+1,it} ← ‖v'‖₂ and v_{it+1} ← v'/h.
		norm := reduceTree(g, fmt.Sprintf("norm%d", it), squareTerms(g, it, "vp2", vprime))
		res.NormVertex = append(res.NormVertex, norm)
		vnext := make([]cdag.VertexID, np)
		for i := 0; i < np; i++ {
			vnext[i] = g.AddVertexBytes(lb.reset("v").int(it + 1).sep('[').int(i).sep(']').bytes())
			g.AddEdge(vprime[i], vnext[i])
			g.AddEdge(norm, vnext[i])
		}
		basis = append(basis, vnext)

		iterSet := cdag.NewVertexSet(g.NumVertices())
		for v := iterStart; v < cdag.VertexID(g.NumVertices()); v++ {
			iterSet.Add(v)
		}
		res.IterationVertices = append(res.IterationVertices, iterSet)
	}
	for _, vi := range basis[len(basis)-1] {
		g.TagOutput(vi)
	}
	g.Freeze()
	return res
}
