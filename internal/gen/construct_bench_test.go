package gen

import (
	"fmt"
	"testing"

	"cdagio/internal/cdag"
)

// seedSliceGraph replicates the seed's graph construction strategy — two
// append-grown adjacency slices per vertex, a linear duplicate scan per
// AddEdge, and fmt.Sprintf-built labels — so the construction benchmarks
// compare the CSR core against the exact builder the seed shipped with.
type seedSliceGraph struct {
	succ   [][]cdag.VertexID
	pred   [][]cdag.VertexID
	label  []string
	input  []bool
	output []bool
	nEdges int
}

func (s *seedSliceGraph) addVertex(label string) cdag.VertexID {
	id := cdag.VertexID(len(s.succ))
	s.succ = append(s.succ, nil)
	s.pred = append(s.pred, nil)
	s.label = append(s.label, label)
	s.input = append(s.input, false)
	s.output = append(s.output, false)
	return id
}

func (s *seedSliceGraph) addEdge(u, v cdag.VertexID) {
	for _, w := range s.succ[u] {
		if w == v {
			return
		}
	}
	s.succ[u] = append(s.succ[u], v)
	s.pred[v] = append(s.pred[v], u)
	s.nEdges++
}

// seedMatMul is the seed's MatMul builder verbatim, on the seed graph
// representation.
func seedMatMul(n int) *seedSliceGraph {
	g := &seedSliceGraph{}
	a := make([][]cdag.VertexID, n)
	b := make([][]cdag.VertexID, n)
	for i := 0; i < n; i++ {
		a[i] = make([]cdag.VertexID, n)
		b[i] = make([]cdag.VertexID, n)
		for j := 0; j < n; j++ {
			a[i][j] = g.addVertex(fmt.Sprintf("A[%d,%d]", i, j))
			g.input[a[i][j]] = true
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			b[i][j] = g.addVertex(fmt.Sprintf("B[%d,%d]", i, j))
			g.input[b[i][j]] = true
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var acc cdag.VertexID = cdag.InvalidVertex
			for k := 0; k < n; k++ {
				m := g.addVertex(fmt.Sprintf("mul[%d,%d,%d]", i, j, k))
				g.addEdge(a[i][k], m)
				g.addEdge(b[k][j], m)
				if acc == cdag.InvalidVertex {
					acc = m
					continue
				}
				add := g.addVertex(fmt.Sprintf("add[%d,%d,%d]", i, j, k))
				g.addEdge(acc, add)
				g.addEdge(m, add)
				acc = add
			}
			g.output[acc] = true
		}
	}
	return g
}

// BenchmarkConstructMatMul32CSR measures building the matmul n=32 CDAG
// (67,584 vertices, 129,024 edges) on the CSR core: bulk edge staging, flat
// label storage and a counting-sort compile.
func BenchmarkConstructMatMul32CSR(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := MatMul(32)
		if r.Graph.NumEdges() == 0 {
			b.Fatal("no edges")
		}
	}
}

// BenchmarkConstructMatMul32Seed measures the seed builder on the same CDAG:
// per-vertex adjacency slices, per-edge duplicate scans, fmt labels.
func BenchmarkConstructMatMul32Seed(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g := seedMatMul(32)
		if g.nEdges == 0 {
			b.Fatal("no edges")
		}
	}
}

// BenchmarkConstructJacobi2D measures building a 266k-edge 2-D box stencil
// sweep on the CSR core (the workload whose construction dominated the seed's
// tightness benchmarks).
func BenchmarkConstructJacobi2D(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := Jacobi(2, 64, 16, StencilBox)
		if r.Graph.NumEdges() == 0 {
			b.Fatal("no edges")
		}
	}
}

// BenchmarkConstructJacobi1M builds the ≥1M-vertex stencil CDAG of the scale
// test, demonstrating the ROADMAP's million-vertex construction target.
func BenchmarkConstructJacobi1M(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := Jacobi(2, 512, 3, StencilBox)
		if r.Graph.NumVertices() < 1_000_000 {
			b.Fatal("too small")
		}
	}
}
