// Package gen constructs the CDAGs of the computations analyzed in the paper
// and of the classical kernels used to validate the lower-bound machinery:
//
//   - dense matrix multiplication, vector outer products, dot products and
//     AXPY updates (the building blocks of Section 3's composite example);
//   - the Section-3 composite computation sum((p·qᵀ)(r·sᵀ));
//   - FFT butterfly graphs, binomial trees and r-pyramids (related-work
//     kernels with known I/O bounds, useful as cross-checks);
//   - d-dimensional Jacobi stencils over T time steps (Section 5.4);
//   - the per-iteration CDAGs of Conjugate Gradient (Figure 3, Section 5.2)
//     and GMRES (Figure 4, Section 5.3) on regular grids.
//
// All generators are deterministic: the same parameters always produce the
// same graph, with the same vertex numbering.
package gen
