package gen

import (
	"fmt"

	"cdagio/internal/cdag"
	"cdagio/internal/linalg"
)

// StencilKind selects the dependence pattern of a Jacobi-style stencil sweep.
type StencilKind int

const (
	// StencilStar is the (2d+1)-point von Neumann stencil: each point depends
	// on itself and its face neighbors (the 5-point stencil in 2-D).
	StencilStar StencilKind = iota
	// StencilBox is the 3^d-point Moore stencil: each point depends on the
	// full radius-1 box around it (the 9-point stencil in 2-D analyzed in
	// Theorem 10).
	StencilBox
)

// String returns the conventional name of the stencil.
func (k StencilKind) String() string {
	switch k {
	case StencilStar:
		return "star"
	case StencilBox:
		return "box"
	default:
		return fmt.Sprintf("StencilKind(%d)", int(k))
	}
}

// JacobiResult bundles the stencil CDAG with its time-slice vertex layers.
type JacobiResult struct {
	Graph *cdag.Graph
	Grid  linalg.Grid
	Steps int
	Kind  StencilKind
	// Layer[t][cell] is the vertex holding grid point cell at time t,
	// 0 ≤ t ≤ Steps.  Layer[0] holds the inputs, Layer[Steps] the outputs.
	Layer [][]cdag.VertexID
}

// Jacobi returns the CDAG of a d-dimensional Jacobi sweep on an n^d grid for
// the given number of time steps: vertex (t, cell) depends on (t−1, cell') for
// every cell' in the stencil neighborhood of cell.  Time-0 vertices are
// inputs and time-Steps vertices are outputs (Section 5.4).
//
// The per-cell stencil neighborhoods are computed once and replayed for every
// time step, and all edges are staged in bulk, so building a million-vertex
// sweep costs O(V+E) time and a handful of allocations beyond the vertex
// payload itself.
func Jacobi(dim, n, steps int, kind StencilKind) *JacobiResult {
	if steps < 1 {
		panic("gen: Jacobi needs steps >= 1")
	}
	grid := linalg.NewGrid(dim, n)
	np := grid.Points()
	g := cdag.NewGraph(fmt.Sprintf("jacobi-%dd-%d-T%d-%s", dim, n, steps, kind), np*(steps+1))
	res := &JacobiResult{Graph: g, Grid: grid, Steps: steps, Kind: kind,
		Layer: make([][]cdag.VertexID, steps+1)}

	nbrOff, nbrVal := stencilNeighborhoodsFlat(grid, kind)
	g.ReserveEdges(steps * len(nbrVal))

	var lb lbuf
	res.Layer[0] = make([]cdag.VertexID, np)
	for c := 0; c < np; c++ {
		res.Layer[0][c] = g.AddInputBytes(lb.reset("u0[").int(c).sep(']').bytes())
	}
	for t := 1; t <= steps; t++ {
		res.Layer[t] = make([]cdag.VertexID, np)
		prev := res.Layer[t-1]
		for c := 0; c < np; c++ {
			v := g.AddVertexBytes(lb.reset("u").int(t).sep('[').int(c).sep(']').bytes())
			res.Layer[t][c] = v
			for _, p := range nbrVal[nbrOff[c]:nbrOff[c+1]] {
				g.AddEdge(prev[p], v)
			}
		}
	}
	for _, v := range res.Layer[steps] {
		g.TagOutput(v)
	}
	g.Freeze()
	return res
}

// stencilNeighborhoodsFlat returns the dependence cells of every grid point
// (including the point itself) for the chosen stencil kind as one flat
// CSR-style pair: the neighborhood of cell c is val[off[c]:off[c+1]], in the
// same deterministic order as the historical per-cell computation (the cell
// first and then its face neighbors for the star stencil; odometer order over
// the {−1,0,1}^d offsets for the box stencil).
func stencilNeighborhoodsFlat(grid linalg.Grid, kind StencilKind) (off []int32, val []int32) {
	np := grid.Points()
	switch kind {
	case StencilStar:
		fOff, fVal := gridNeighborsFlat(grid)
		off = make([]int32, np+1)
		val = make([]int32, 0, np+len(fVal))
		for c := 0; c < np; c++ {
			val = append(val, int32(c))
			val = append(val, fVal[fOff[c]:fOff[c+1]]...)
			off[c+1] = int32(len(val))
		}
		return off, val
	case StencilBox:
		dim := grid.Dim
		strides := make([]int, dim)
		s := 1
		for d := dim - 1; d >= 0; d-- {
			strides[d] = s
			s *= grid.N
		}
		boxPoints := 1
		for d := 0; d < dim; d++ {
			boxPoints *= 3
		}
		off = make([]int32, np+1)
		val = make([]int32, 0, np*boxPoints)
		coords := make([]int, dim)
		offsets := make([]int, dim)
		for c := 0; c < np; c++ {
			for i := range offsets {
				offsets[i] = -1
			}
			for {
				ok := true
				probe := c
				for d := 0; d < dim; d++ {
					pc := coords[d] + offsets[d]
					if pc < 0 || pc >= grid.N {
						ok = false
						break
					}
					probe += offsets[d] * strides[d]
				}
				if ok {
					val = append(val, int32(probe))
				}
				// Advance the offset odometer over {-1,0,1}^d.
				d := dim - 1
				for d >= 0 {
					offsets[d]++
					if offsets[d] <= 1 {
						break
					}
					offsets[d] = -1
					d--
				}
				if d < 0 {
					break
				}
			}
			off[c+1] = int32(len(val))
			for d := dim - 1; d >= 0; d-- {
				coords[d]++
				if coords[d] < grid.N {
					break
				}
				coords[d] = 0
			}
		}
		return off, val
	default:
		panic(fmt.Sprintf("gen: unknown stencil kind %d", int(kind)))
	}
}
