package gen

import (
	"fmt"

	"cdagio/internal/cdag"
	"cdagio/internal/linalg"
)

// StencilKind selects the dependence pattern of a Jacobi-style stencil sweep.
type StencilKind int

const (
	// StencilStar is the (2d+1)-point von Neumann stencil: each point depends
	// on itself and its face neighbors (the 5-point stencil in 2-D).
	StencilStar StencilKind = iota
	// StencilBox is the 3^d-point Moore stencil: each point depends on the
	// full radius-1 box around it (the 9-point stencil in 2-D analyzed in
	// Theorem 10).
	StencilBox
)

// String returns the conventional name of the stencil.
func (k StencilKind) String() string {
	switch k {
	case StencilStar:
		return "star"
	case StencilBox:
		return "box"
	default:
		return fmt.Sprintf("StencilKind(%d)", int(k))
	}
}

// JacobiResult bundles the stencil CDAG with its time-slice vertex layers.
type JacobiResult struct {
	Graph *cdag.Graph
	Grid  linalg.Grid
	Steps int
	Kind  StencilKind
	// Layer[t][cell] is the vertex holding grid point cell at time t,
	// 0 ≤ t ≤ Steps.  Layer[0] holds the inputs, Layer[Steps] the outputs.
	Layer [][]cdag.VertexID
}

// Jacobi returns the CDAG of a d-dimensional Jacobi sweep on an n^d grid for
// the given number of time steps: vertex (t, cell) depends on (t−1, cell') for
// every cell' in the stencil neighborhood of cell.  Time-0 vertices are
// inputs and time-Steps vertices are outputs (Section 5.4).
func Jacobi(dim, n, steps int, kind StencilKind) *JacobiResult {
	if steps < 1 {
		panic("gen: Jacobi needs steps >= 1")
	}
	grid := linalg.NewGrid(dim, n)
	np := grid.Points()
	g := cdag.NewGraph(fmt.Sprintf("jacobi-%dd-%d-T%d-%s", dim, n, steps, kind), np*(steps+1))
	res := &JacobiResult{Graph: g, Grid: grid, Steps: steps, Kind: kind,
		Layer: make([][]cdag.VertexID, steps+1)}

	res.Layer[0] = make([]cdag.VertexID, np)
	for c := 0; c < np; c++ {
		res.Layer[0][c] = g.AddInput(fmt.Sprintf("u0[%d]", c))
	}
	for t := 1; t <= steps; t++ {
		res.Layer[t] = make([]cdag.VertexID, np)
		for c := 0; c < np; c++ {
			v := g.AddVertex(fmt.Sprintf("u%d[%d]", t, c))
			res.Layer[t][c] = v
			for _, p := range stencilNeighborhood(grid, c, kind) {
				g.AddEdge(res.Layer[t-1][p], v)
			}
		}
	}
	for _, v := range res.Layer[steps] {
		g.TagOutput(v)
	}
	return res
}

// stencilNeighborhood returns the dependence cells of cell c (including c
// itself) for the chosen stencil kind, in a deterministic order.
func stencilNeighborhood(grid linalg.Grid, c int, kind StencilKind) []int {
	switch kind {
	case StencilStar:
		out := []int{c}
		return append(out, grid.Neighbors(c)...)
	case StencilBox:
		coords := grid.Coords(c)
		cells := []int{}
		offsets := make([]int, grid.Dim)
		for i := range offsets {
			offsets[i] = -1
		}
		for {
			ok := true
			probe := make([]int, grid.Dim)
			for d := 0; d < grid.Dim; d++ {
				probe[d] = coords[d] + offsets[d]
				if probe[d] < 0 || probe[d] >= grid.N {
					ok = false
					break
				}
			}
			if ok {
				cells = append(cells, grid.Index(probe))
			}
			// Advance the offset odometer over {-1,0,1}^d.
			d := grid.Dim - 1
			for d >= 0 {
				offsets[d]++
				if offsets[d] <= 1 {
					break
				}
				offsets[d] = -1
				d--
			}
			if d < 0 {
				break
			}
		}
		return cells
	default:
		panic(fmt.Sprintf("gen: unknown stencil kind %d", int(kind)))
	}
}
