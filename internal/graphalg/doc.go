// Package graphalg provides the graph algorithms that underpin the
// data-movement lower-bound machinery: reachability (ancestor/descendant
// sets), maximum flow (Dinic over flat CSR arc arrays), vertex min-cuts via
// vertex splitting, minimum dominator sets, convex (S,T) cuts and
// vertex-disjoint path counts.
//
// All algorithms operate on *cdag.Graph values and treat them as read-only.
// Flow networks never mutate the input CDAG.
//
// # The strip-local min-cut engine
//
// The hot computation of the package is the Lemma 2 wavefront bound: for a
// candidate vertex x, the minimum vertex cut separating A = {x} ∪ Anc(x)
// from D = Desc(x) with D uncuttable.  Solved naively this is a max-flow on
// the full vertex-split network — 2|V|+2 nodes for every candidate, even
// though the cut itself can only fall in the thin "strip" between the two
// cones.  CutSolver therefore builds the flow instance strip-locally:
//
//   - A is closed under predecessors, so no edge enters A from outside and
//     every A→D path leaves A exactly once, through a boundary vertex b of A
//     (a vertex with a successor outside A).  The suffix of the path from b
//     onward visits only b, free strip vertices, and D.
//   - The interior of A needs no nodes.  A cut vertex v ∈ A that is not a
//     boundary vertex covers only paths that later pass through a boundary
//     vertex b — but the suffix starting at b is itself an A→D path (b ∈ A)
//     avoiding v, so it must independently be covered by a vertex of
//     {b} ∪ strip.  The vertices of any cut C that lie in boundary ∪ strip
//     therefore already cover every A→D path, and some minimum cut lies
//     entirely inside boundary ∪ strip.  Contracting A's interior into the
//     super source (attaching it to each boundary vertex's vIn, keeping the
//     boundary's unit split arcs) preserves the min-cut value exactly.
//   - D is successor-closed and uncuttable: once a path enters D it stays
//     there, and no cut vertex can be chosen inside it.  Every edge into D is
//     therefore contracted into a single infinite arc to the super sink and
//     D's interior needs no nodes either.
//
// The resulting network has 2·(|boundary| + |strip|) + 2 nodes, where the
// strip is discovered by a forward sweep from the boundary that stops at D —
// so per-candidate cost scales with the strip, not with |V|.  On top of the
// contraction, the flow core (flowCSR) keeps per-solve cost allocation-free:
// flat CSR arc storage, an iterative current-arc DFS (recursion on long-path
// CDAGs such as million-vertex stencil chains would reach O(V) depth),
// epoch-stamped BFS levels, and dirty-arc capacity restoration for networks
// cached across solves.
//
// MinVertexCut, MinDominatorSize, MaxVertexDisjointPaths and the wavefront
// facades all route through pooled CutSolvers; results — cut values, cut
// sets, bounds and witnesses — are bit-identical to the historical per-call
// slice-of-slices networks, which survive as the reference implementations
// (MinWavefrontLowerBound, MaxMinWavefrontLowerBoundSerial) that the
// equivalence tests compare against.
package graphalg
