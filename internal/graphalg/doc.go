// Package graphalg provides the graph algorithms that underpin the
// data-movement lower-bound machinery: reachability (ancestor/descendant
// sets), maximum flow (Dinic), vertex min-cuts via vertex splitting,
// minimum dominator sets, convex (S,T) cuts and vertex-disjoint path counts.
//
// All algorithms operate on *cdag.Graph values and treat them as read-only.
// The flow network used for vertex cuts is built on the fly; it never mutates
// the input CDAG.
package graphalg
