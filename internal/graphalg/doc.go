// Package graphalg provides the graph algorithms that underpin the
// data-movement lower-bound machinery: reachability (ancestor/descendant
// sets), maximum flow (Dinic over flat CSR arc arrays), vertex min-cuts via
// vertex splitting, minimum dominator sets, convex (S,T) cuts and
// vertex-disjoint path counts.
//
// All algorithms operate on *cdag.Graph values and treat them as read-only.
// Flow networks never mutate the input CDAG.
//
// # The strip-local min-cut engine
//
// The hot computation of the package is the Lemma 2 wavefront bound: for a
// candidate vertex x, the minimum vertex cut separating A = {x} ∪ Anc(x)
// from D = Desc(x) with D uncuttable.  Solved naively this is a max-flow on
// the full vertex-split network — 2|V|+2 nodes for every candidate, even
// though the cut itself can only fall in the thin "strip" between the two
// cones.  CutSolver therefore builds the flow instance strip-locally:
//
//   - A is closed under predecessors, so no edge enters A from outside and
//     every A→D path leaves A exactly once, through a boundary vertex b of A
//     (a vertex with a successor outside A).  The suffix of the path from b
//     onward visits only b, free strip vertices, and D.
//   - The interior of A needs no nodes.  A cut vertex v ∈ A that is not a
//     boundary vertex covers only paths that later pass through a boundary
//     vertex b — but the suffix starting at b is itself an A→D path (b ∈ A)
//     avoiding v, so it must independently be covered by a vertex of
//     {b} ∪ strip.  The vertices of any cut C that lie in boundary ∪ strip
//     therefore already cover every A→D path, and some minimum cut lies
//     entirely inside boundary ∪ strip.  Contracting A's interior into the
//     super source (attaching it to each boundary vertex's vIn, keeping the
//     boundary's unit split arcs) preserves the min-cut value exactly.
//   - D is successor-closed and uncuttable: once a path enters D it stays
//     there, and no cut vertex can be chosen inside it.  Every edge into D is
//     therefore contracted into a single infinite arc to the super sink and
//     D's interior needs no nodes either.
//
// The resulting network has 2·(|boundary| + |strip|) + 2 nodes, where the
// strip is discovered by a forward sweep from the boundary that stops at D —
// so per-candidate cost scales with the strip, not with |V|.  On top of the
// contraction, the flow core (flowCSR) keeps per-solve cost allocation-free:
// flat CSR arc storage, an iterative current-arc DFS (recursion on long-path
// CDAGs such as million-vertex stencil chains would reach O(V) depth),
// epoch-stamped BFS levels, and dirty-arc capacity restoration for networks
// cached across solves.
//
// MinVertexCut, MinDominatorSize, MaxVertexDisjointPaths and the wavefront
// facades all route through pooled CutSolvers; results — cut values, cut
// sets, bounds and witnesses — are bit-identical to the historical per-call
// slice-of-slices networks, which survive as the reference implementations
// (MinWavefrontLowerBound, MaxMinWavefrontLowerBoundSerial) that the
// equivalence tests compare against.
//
// # Incremental flow across candidates: warm starts
//
// Consecutive candidates of the w^max scan induce overlapping strip networks,
// and the search exploits that without giving up exactness.  Every
// materialized vertex of a strip network carries a unit split arc, so a
// maximum (indeed any feasible integral) flow decomposes into unit paths that
// are fully vertex-disjoint in graph space, each running from a boundary
// vertex of A through free strip vertices to a vertex feeding D.  After each
// solve the engine harvests that decomposition as plain vertex sequences
// (harvestPaths); before the next candidate's solve it re-seeds each path
// into the freshly built network (seedPath):
//
//   - A is predecessor-closed for the new candidate too, so a path's vertices
//     that lie in the new A form a prefix.  The segment from the last prefix
//     vertex b — seedable only if b is a materialized boundary vertex — to
//     the vertex before the path first enters the new D (or to its end, when
//     that end feeds D directly) is an s→t unit path of the new network.
//   - Vertex-disjointness of the harvested paths carries over to the trimmed
//     segments, so seeding them can never oversubscribe an arc: the seeded
//     flow is feasible by construction.
//   - Exactness needs nothing more: Dinic started from any feasible flow
//     still terminates at the maximum flow value (augmenting paths exist
//     until the max is reached, regardless of the starting flow).  And the
//     canonical cut read back from the residual graph (lastStripCut) is the
//     minimal source side shared by all minimum cuts — the residual-reachable
//     set of ANY maximum flow — so even the cut set is independent of the
//     warm start, which the warm/cold equivalence tests assert literally.
//
// # Incremental flow within a candidate: the level-cut abort
//
// Under the packed-maximum search, a candidate only matters if its bound
// reaches a threshold ("need") derived from the incumbent.  maxFlowBounded
// turns each Dinic BFS into an upper-bound certificate that can prove the
// threshold unreachable mid-solve: after a BFS from s that reaches t at level
// L, every residual arc leaving the set P_k = {v : level(v) ≤ k} (k < L) ends
// at level ≤ k+1, so the residual arcs crossing from level k to level k+1 are
// a complete s–t cut of the residual network.  The residual max-flow is
// therefore at most min over k < L of the crossing capacity (reverse arcs
// included uniformly — they are residual arcs like any other, and the sums
// saturate at flowInf so infinite-capacity crossings never overflow), and the
// final value is at most flow-so-far + that minimum.  When the bound falls
// below need the solve stops and reports an abort; the candidate provably
// cannot affect the scan's packed maximum, so skipping it is exact.  When no
// level cut proves that, the solve runs to completion and the value returned
// is the true maximum — the certificate only ever converts "cannot win" into
// an early exit.
package graphalg
