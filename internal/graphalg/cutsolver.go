package graphalg

import (
	"math"
	"sync"

	"cdagio/internal/cdag"
)

// CutSolver is the reusable scratch behind every vertex min-cut computation:
// cone-exploration marks, dense-ID remap tables, and two flowCSR max-flow
// networks.  A solver owns no goroutines and is not safe for concurrent use;
// create one per worker (the w^max search does) or use the package-level
// MinVertexCut / MinDominatorSize / MaxVertexDisjointPaths /
// MinWavefrontLowerBoundStrip wrappers, which draw solvers from an internal
// pool so repeated queries stop paying per-call network construction.
//
// Two solve paths share the scratch:
//
//   - MinVertexCut (and the dominator/disjoint-path wrappers) solve on the
//     full 2|V|+2-node vertex-split network.  The static part — split arcs
//     and CDAG edge arcs — is built once per graph and cached; each call
//     attaches the super source/sink through pre-reserved slack slots,
//     flips uncuttable split capacities, and afterwards restores exactly the
//     arcs the solve dirtied.
//   - MinWavefrontAt solves the Lemma 2 instance strip-locally: the ancestor
//     cone is contracted into the super source (keeping its boundary
//     vertices), the descendant cone into the super sink, and only the free
//     strip between the cones is materialized, so the network — and the
//     Dinic solve on it — scales with the strip instead of with |V|.  See
//     the package documentation for why the contraction is exact.
//
// Bound values, witnesses and returned cut sets are bit-identical to the
// historical per-call flow networks in every mode.
type CutSolver struct {
	g *cdag.Graph // graph the per-vertex scratch below is sized for
	n int
	m int // edge count the cached CSR view below was taken at

	// Cached CSR adjacency of g (read-only, owned by the graph).  Solvers
	// treat graphs as immutable while bound to them; the cache is refreshed
	// when the graph identity or its vertex/edge counts change.
	succOff, predOff []int64
	succVal, predVal []cdag.VertexID

	// Epoch-stamped per-vertex marks: valid iff the entry equals epoch.
	epoch    int32
	ancMark  []int32
	descMark []int32
	seenMark []int32
	coMark   []int32 // free vertex with a directed path into Desc(x)
	mapEp    []int32 // strip remap: localOf[v] valid iff mapEp[v] == epoch
	tEp      []int32 // v already has its contracted arc to the super sink
	localOf  []int32

	stack []cdag.VertexID
	anc   []cdag.VertexID
	desc  []cdag.VertexID

	// Strip-network reverse map: stripVerts[l] is the graph vertex behind
	// local id l of the current strip network (localOf's inverse).
	stripVerts []cdag.VertexID

	// Warm-start state: the flow paths of the previous minWavefront solve as
	// graph-vertex sequences (warmBuf holds them concatenated, warmOff the
	// boundaries), harvested from the residual network and re-seeded — after
	// trimming to the new candidate's cones — into the next solve's network.
	// Cleared when the solver rebinds to another graph.
	warmBuf  []cdag.VertexID
	warmOff  []int32
	seedArcs []int32 // per-path arc scratch of seedPath

	// strip hosts the per-candidate strip-local networks and the fresh-build
	// fallback of MinVertexCut; full hosts the cached static vertex-split
	// network.
	strip flowCSR
	full  flowCSR

	// Static-network cache state (full).
	staticG  *cdag.Graph
	staticN  int
	staticE  int
	splitArc []int32 // arc id of each vertex's vIn→vOut unit arc
	baseArcs int     // static arc count; per-call arcs live beyond it
	baseLen  []int32 // static row lengths (adjLen reset values)
	extRows  []int32 // rows whose adjLen grew this call
}

// NewCutSolver returns an empty solver; its scratch grows to fit the graphs
// it is given and is recycled across calls.
func NewCutSolver() *CutSolver { return &CutSolver{} }

// ensureGraph sizes the per-vertex scratch for g and materializes g's CSR
// arrays (the lazy compilation is not synchronized, and solvers are used from
// worker pools).
func (cs *CutSolver) ensureGraph(g *cdag.Graph) {
	g.Materialize()
	n, m := g.NumVertices(), g.NumEdges()
	if cs.g == g && cs.n == n && cs.m == m {
		return
	}
	cs.g = g
	cs.n = n
	cs.m = m
	cs.warmBuf = cs.warmBuf[:0]
	cs.warmOff = cs.warmOff[:0]
	cs.succOff, cs.succVal, cs.predOff, cs.predVal = g.AdjacencyCSR()
	cs.ancMark = growInt32(cs.ancMark, n)
	cs.descMark = growInt32(cs.descMark, n)
	cs.seenMark = growInt32(cs.seenMark, n)
	cs.coMark = growInt32(cs.coMark, n)
	cs.mapEp = growInt32(cs.mapEp, n)
	cs.tEp = growInt32(cs.tEp, n)
	cs.localOf = growInt32(cs.localOf, n)
}

// nextEpoch advances the mark epoch, clearing the stamp arrays on int32
// rollover so stale stamps can never collide with a future epoch.
func (cs *CutSolver) nextEpoch() int32 {
	cs.epoch++
	if cs.epoch == math.MaxInt32 {
		for _, s := range [][]int32{cs.ancMark, cs.descMark, cs.seenMark, cs.coMark, cs.mapEp, cs.tEp} {
			for i := range s {
				s[i] = 0
			}
		}
		cs.epoch = 1
	}
	return cs.epoch
}

// explore stamps the ancestor and descendant sets of x into the scratch marks
// and element lists for a fresh epoch.
func (cs *CutSolver) explore(x cdag.VertexID) {
	cs.exploreDesc(x)
	cs.exploreAnc(x)
}

// exploreDesc starts a fresh epoch and stamps Desc(x) into the descendant
// marks and list.  Vertices are marked before being pushed, so every CDAG
// edge is inspected once and the stack never holds duplicates — on the
// high-fan-in reduction vertices of Krylov CDAGs this halves the traversal's
// memory traffic.  The w^max search explores the descendant cone alone first:
// a candidate pruned by its late convex cut never pays for the ancestor cone.
func (cs *CutSolver) exploreDesc(x cdag.VertexID) {
	e := cs.nextEpoch()
	sOff, sVal := cs.succOff, cs.succVal

	cs.desc = cs.desc[:0]
	stack := cs.stack[:0]
	for _, w := range sVal[sOff[x]:sOff[x+1]] {
		if cs.descMark[w] != e {
			cs.descMark[w] = e
			cs.desc = append(cs.desc, w)
			stack = append(stack, w)
		}
	}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range sVal[sOff[u]:sOff[u+1]] {
			if cs.descMark[w] != e {
				cs.descMark[w] = e
				cs.desc = append(cs.desc, w)
				stack = append(stack, w)
			}
		}
	}
	cs.stack = stack[:0]
}

// exploreAnc stamps Anc(x) into the ancestor marks and list under the epoch
// opened by exploreDesc; it must follow an exploreDesc(x) call for the same
// candidate.
func (cs *CutSolver) exploreAnc(x cdag.VertexID) {
	e := cs.epoch
	pOff, pVal := cs.predOff, cs.predVal

	cs.anc = cs.anc[:0]
	stack := cs.stack[:0]
	for _, w := range pVal[pOff[x]:pOff[x+1]] {
		if cs.ancMark[w] != e {
			cs.ancMark[w] = e
			cs.anc = append(cs.anc, w)
			stack = append(stack, w)
		}
	}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range pVal[pOff[u]:pOff[u+1]] {
			if cs.ancMark[w] != e {
				cs.ancMark[w] = e
				cs.anc = append(cs.anc, w)
				stack = append(stack, w)
			}
		}
	}
	cs.stack = stack[:0]
}

// minWavefront computes MinWavefrontLowerBound(g, x) for the explored
// candidate on the strip-local network.
//
// Construction: let A = {x} ∪ Anc(x) and D = Desc(x).  A is closed under
// predecessors, so no edge enters A from outside and every A→D path leaves A
// exactly once, through a boundary vertex b (a vertex of A with a successor
// outside A).  The network therefore keeps only the boundary of A and the
// free strip reachable from it: super source → bIn for each boundary b, unit
// split arcs bIn→bOut and uIn→uOut for boundary and strip vertices, edge arcs
// into the strip, and every edge into D contracted to a single arc to the
// super sink (D is successor-closed and uncuttable, so its interior can carry
// no cut vertex and needs no nodes).  The minimum cut value is unchanged: any
// cut vertex inside A \ boundary covers only paths whose boundary-suffix — an
// A→D path itself — must independently be covered by boundary or strip
// vertices, so some minimum cut always lies inside boundary ∪ strip, which is
// exactly the vertex set this network can cut.
func (cs *CutSolver) minWavefront(x cdag.VertexID) int {
	w, _ := cs.minWavefrontRun(x, 0, false)
	return w
}

// minWavefrontRun is minWavefront with the PR-6 incremental-flow extensions,
// both individually optional and both value-exact:
//
//   - warm-start path reuse (warm): before solving, the flow paths harvested
//     from the previous solve on this solver are trimmed to the new
//     candidate's cones and re-seeded into the fresh network as an initial
//     feasible flow, and Dinic only augments the difference.  Afterwards the
//     new solve's paths are harvested for the next candidate.
//   - mid-solve abort (need > 0): the Dinic solve runs under the level-cut
//     certificate of maxFlowBounded and stops early when some BFS level cut
//     proves the final wavefront must stay below need.  The second return is
//     true for such an aborted candidate (its exact value is unknown but
//     provably < need); otherwise the returned value is exact.
func (cs *CutSolver) minWavefrontRun(x cdag.VertexID, need int, warm bool) (int, bool) {
	if len(cs.desc) == 0 {
		return 1, false
	}
	e := cs.epoch
	f := &cs.strip
	f.resetStage()
	sOff, sVal := cs.succOff, cs.succVal
	pOff, pVal := cs.predOff, cs.predVal

	// Backward sweep: mark the free vertices with a directed path into D,
	// discovered from D's in-boundary.  Only these can carry flow; dropping
	// the rest of the strip (no path to the sink) cannot change the min cut
	// and keeps the network tight even when the incomparable set is large
	// (shallow stencil sweeps, wide Krylov iterations).
	stack := cs.stack[:0]
	for _, d := range cs.desc {
		for _, p := range pVal[pOff[d]:pOff[d+1]] {
			if p == x || cs.ancMark[p] == e || cs.descMark[p] == e || cs.coMark[p] == e {
				continue
			}
			cs.coMark[p] = e
			stack = append(stack, p)
		}
	}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range pVal[pOff[u]:pOff[u+1]] {
			if p == x || cs.ancMark[p] == e || cs.descMark[p] == e || cs.coMark[p] == e {
				continue
			}
			cs.coMark[p] = e
			stack = append(stack, p)
		}
	}

	cnt := int32(0) // strip+boundary vertices materialized so far
	cs.stripVerts = cs.stripVerts[:0]
	// Node ids: super source 0, super sink 1, vIn = 2·local+2, vOut = 2·local+3.

	// Boundary pass over A = {x} ∪ Anc(x).  Successors of x are always
	// outside A (they are descendants), so the generic outside-A test
	// w != x && ancMark[w] != e covers x too.  A vertex of A only becomes a
	// network node when some successor is a descendant or live strip vertex —
	// boundary vertices feeding only dead strip carry no flow.
	for ai := -1; ai < len(cs.anc); ai++ {
		v := x
		if ai >= 0 {
			v = cs.anc[ai]
		}
		succ := sVal[sOff[v]:sOff[v+1]]
		boundary := false
		for _, w := range succ {
			if w != x && cs.ancMark[w] != e && (cs.descMark[w] == e || cs.coMark[w] == e) {
				boundary = true
				break
			}
		}
		if !boundary {
			continue
		}
		cs.mapEp[v] = e
		cs.localOf[v] = cnt
		cs.stripVerts = append(cs.stripVerts, v)
		out := 2*cnt + 3
		f.stageEdge(0, out-1, flowInf) // super source → vIn
		f.stageEdge(out-1, out, 1)     // unit split arc
		cnt++
		for _, w := range succ {
			if w == x || cs.ancMark[w] == e {
				continue
			}
			if cs.descMark[w] == e {
				if cs.tEp[v] != e {
					cs.tEp[v] = e
					f.stageEdge(out, 1, flowInf)
				}
				continue
			}
			if cs.coMark[w] != e {
				continue // dead strip: no path to D
			}
			wl, fresh := cs.stripLocal(w, e, cnt)
			if fresh {
				cnt++
				stack = append(stack, w)
			}
			f.stageEdge(out, 2*wl+2, flowInf)
		}
	}

	// Strip sweep: live strip vertices reachable from the boundary, stopping
	// at D.
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		out := 2*cs.localOf[u] + 3
		f.stageEdge(out-1, out, 1)
		for _, w := range sVal[sOff[u]:sOff[u+1]] {
			if cs.descMark[w] == e {
				if cs.tEp[u] != e {
					cs.tEp[u] = e
					f.stageEdge(out, 1, flowInf)
				}
				continue
			}
			// A is predecessor-closed, so w is free: strip if it reaches D.
			if cs.coMark[w] != e {
				continue
			}
			wl, fresh := cs.stripLocal(w, e, cnt)
			if fresh {
				cnt++
				stack = append(stack, w)
			}
			f.stageEdge(out, 2*wl+2, flowInf)
		}
	}
	cs.stack = stack[:0]

	f.buildFresh(int(2 + 2*cnt))

	// Warm start: re-seed the previous solve's surviving path segments as an
	// initial feasible flow.  Any feasible integral flow is a valid starting
	// point for Dinic — augmentation always reaches the (unique) maximum flow
	// value — so the bound is exact regardless of how many segments survive.
	var seeded int64
	if warm {
		for pi := 0; pi+1 < len(cs.warmOff); pi++ {
			seeded += cs.seedPath(x, cs.warmBuf[cs.warmOff[pi]:cs.warmOff[pi+1]], e)
		}
	}

	var w int
	pruned := false
	if lim := int64(need) - seeded; need > 0 && lim > 0 {
		flow, aborted := f.maxFlowBounded(0, 1, lim)
		if aborted {
			pruned = true
		} else {
			w = int(seeded + flow)
		}
	} else {
		w = int(seeded + f.maxFlow(0, 1))
	}
	if warm {
		cs.harvestPaths()
	}
	if pruned {
		return 0, true
	}
	if w < 1 {
		w = 1
	}
	return w, false
}

// seedPath re-seeds one harvested flow path into the current candidate's
// freshly built strip network, returning the units of flow added (0 or 1).
//
// The previous solve's paths are vertex-disjoint CDAG paths (every network
// vertex carries a unit split arc, so no two paths share any vertex).  For the
// new candidate x with A = {x} ∪ Anc(x) and D = Desc(x): A is closed under
// predecessors, so a path's A-vertices form a prefix; the segment from the
// prefix's last vertex b (which must be a materialized boundary vertex of A)
// to the last vertex before the path first enters D — or to the path's end,
// when that end feeds D directly — is an s→t unit path of the new network:
// s→bIn, the unit split arcs, the edge arcs between consecutive segment
// vertices, and the contracted vOut→t arc of the final vertex.  Vertex-
// disjointness of the original paths guarantees the seeded segments never
// share an arc, so capacities never go negative.  Paths whose segment leaves
// the materialized strip (dead strip for this candidate) or that never touch
// A or reach D are skipped.
func (cs *CutSolver) seedPath(x cdag.VertexID, vs []cdag.VertexID, e int32) int64 {
	f := &cs.strip
	li := -1
	for _, v := range vs {
		if v != x && cs.ancMark[v] != e {
			break
		}
		li++
	}
	if li < 0 || cs.mapEp[vs[li]] != e {
		return 0
	}
	end := -1
	for j := li + 1; j < len(vs); j++ {
		v := vs[j]
		if cs.descMark[v] == e {
			end = j - 1
			break
		}
		if cs.mapEp[v] != e {
			return 0
		}
	}
	if end < 0 {
		// The path never enters D; it is seedable only when its final vertex
		// has a successor in D (its contracted sink arc was staged).
		if cs.tEp[vs[len(vs)-1]] != e {
			return 0
		}
		end = len(vs) - 1
	}

	// Collect the segment's arcs before touching any capacity, so a
	// structurally impossible lookup (defensive: cannot happen for a
	// materialized segment) skips the path without a partial application.
	arcs := cs.seedArcs[:0]
	prevOut := int32(-1)
	for j := li; j <= end; j++ {
		l := cs.localOf[vs[j]]
		in, out := 2*l+2, 2*l+3
		sp := f.findFwdArc(in, out)
		if sp < 0 {
			cs.seedArcs = arcs[:0]
			return 0
		}
		if j == li {
			// The super-source arc s→bIn is staged immediately before b's
			// split arc, so its id is the split arc's minus one pair.
			arcs = append(arcs, sp-2)
		} else {
			ea := f.findFwdArc(prevOut, in)
			if ea < 0 {
				cs.seedArcs = arcs[:0]
				return 0
			}
			arcs = append(arcs, ea)
		}
		arcs = append(arcs, sp)
		prevOut = out
	}
	ta := f.findFwdArc(prevOut, 1)
	if ta < 0 {
		cs.seedArcs = arcs[:0]
		return 0
	}
	arcs = append(arcs, ta)
	for _, a := range arcs {
		f.cap[a]--
		f.cap[a^1]++
	}
	cs.seedArcs = arcs[:0]
	return 1
}

// harvestPaths decomposes the current strip network's flow into the
// vertex-disjoint unit paths it consists of, recorded as graph-vertex
// sequences for the next candidate's warm start.  Flow on a forward arc
// equals its reverse partner's capacity (reverse arcs start at zero), and
// every materialized vertex carries at most one unit through its split arc,
// so each unit walks a unique vertex sequence from a super-source arc to the
// super sink.  The walk only reads capacities; the residual network — and
// therefore the canonical cut recovered from it — is untouched.
func (cs *CutSolver) harvestPaths() {
	f := &cs.strip
	cs.warmBuf = cs.warmBuf[:0]
	cs.warmOff = append(cs.warmOff[:0], 0)
	base := f.adjOff[0]
	for _, ai := range f.adjArc[base : base+f.adjLen[0]] {
		if ai&1 != 0 || f.cap[ai^1] == 0 {
			continue
		}
		node := f.to[ai] // vIn of the path's first vertex
		for node > 1 {
			cs.warmBuf = append(cs.warmBuf, cs.stripVerts[(node-2)/2])
			out := node + 1
			next := int32(-1)
			ob := f.adjOff[out]
			for _, oa := range f.adjArc[ob : ob+f.adjLen[out]] {
				if oa&1 == 0 && f.cap[oa^1] > 0 {
					next = f.to[oa]
					break
				}
			}
			node = next
		}
		cs.warmOff = append(cs.warmOff, int32(len(cs.warmBuf)))
	}
}

// findFwdArc returns the id of the forward (even) arc u→v, or −1.  Rows of
// fresh-built networks interleave forward arcs with residual partners of
// incoming arcs; the parity check keeps the scan unambiguous.
func (f *flowCSR) findFwdArc(u, v int32) int32 {
	base := f.adjOff[u]
	for _, ai := range f.adjArc[base : base+f.adjLen[u]] {
		if ai&1 == 0 && f.to[ai] == v {
			return ai
		}
	}
	return -1
}

// lastStripCut returns the canonical minimum wavefront cut of the most recent
// completed (non-aborted) minWavefront solve on this solver: the materialized
// vertices whose vIn is residual-reachable from the super source while their
// vOut is not.  The residual-reachable set of a maximum flow is the minimal
// source side shared by all minimum cuts — independent of which maximum flow
// the solve arrived at — so the set is identical whether the solve was warm-
// started or cold; the warm/cold equivalence tests assert exactly that.
func (cs *CutSolver) lastStripCut(out []cdag.VertexID) []cdag.VertexID {
	f := &cs.strip
	f.residualReach(0)
	out = out[:0]
	for l, v := range cs.stripVerts {
		if f.reached(int32(2*l+2)) && !f.reached(int32(2*l+3)) {
			out = append(out, v)
		}
	}
	return out
}

// stripLocal returns w's dense network id, assigning next when w is seen for
// the first time this epoch.
func (cs *CutSolver) stripLocal(w cdag.VertexID, e, next int32) (int32, bool) {
	if cs.mapEp[w] == e {
		return cs.localOf[w], false
	}
	cs.mapEp[w] = e
	cs.localOf[w] = next
	cs.stripVerts = append(cs.stripVerts, w)
	return next, true
}

// MinWavefrontAt returns MinWavefrontLowerBound(g, x) computed on the
// strip-local engine: identical value, cost proportional to the candidate's
// cone boundary and free strip instead of the whole graph.
func (cs *CutSolver) MinWavefrontAt(g *cdag.Graph, x cdag.VertexID) int {
	cs.ensureGraph(g)
	cs.explore(x)
	return cs.minWavefront(x)
}

// ensureStatic builds (or revalidates) the cached static vertex-split network
// for g: unit split arcs vIn→vOut plus infinite-capacity edge arcs
// vOut→wIn, with slack reserved in every row for the per-call super
// source/sink attachments.  Node numbering matches the historical network:
// vIn = 2v, vOut = 2v+1, super source 2n, super sink 2n+1.
func (cs *CutSolver) ensureStatic(g *cdag.Graph) {
	n, e := g.NumVertices(), g.NumEdges()
	if cs.staticG == g && cs.staticN == n && cs.staticE == e {
		return
	}
	cs.staticG, cs.staticN, cs.staticE = g, n, e
	f := &cs.full
	nn := 2*n + 2
	f.ensureNodes(nn)
	f.trackDirty = true
	f.dirty = f.dirty[:0]
	cs.extRows = cs.extRows[:0]

	// Row capacities: static arc count plus slack — one slot per vIn row (the
	// residual of super-source→vIn), one per vOut row (vOut→super-sink), and
	// n each for the super source and sink rows.
	f.adjOff = growInt32(f.adjOff[:0], nn+1)
	f.adjLen = growInt32(f.adjLen[:0], nn)
	f.adjOff[0] = 0
	for v := 0; v < n; v++ {
		id := cdag.VertexID(v)
		f.adjOff[2*v+1] = f.adjOff[2*v] + int32(1+g.InDegree(id)) + 1
		f.adjOff[2*v+2] = f.adjOff[2*v+1] + int32(1+g.OutDegree(id)) + 1
	}
	f.adjOff[nn-1] = f.adjOff[nn-2] + int32(n)
	f.adjOff[nn] = f.adjOff[nn-1] + int32(n)

	na := 2 * (n + e)
	cs.baseArcs = na
	if cap(f.to) < na {
		f.to = make([]int32, na)
		f.cap = make([]int64, na)
	} else {
		f.to = f.to[:na]
		f.cap = f.cap[:na]
	}
	f.adjArc = growInt32(f.adjArc[:0], int(f.adjOff[nn]))
	cs.splitArc = growInt32(cs.splitArc[:0], n)
	for i := range f.adjLen {
		f.adjLen[i] = 0
	}
	place := func(u, a int32) {
		f.adjArc[f.adjOff[u]+f.adjLen[u]] = a
		f.adjLen[u]++
	}
	succOff, succVal := g.SuccessorCSR()
	arc := int32(0)
	for v := 0; v < n; v++ {
		vIn, vOut := int32(2*v), int32(2*v+1)
		cs.splitArc[v] = arc
		f.to[arc], f.cap[arc] = vOut, 1
		f.to[arc+1], f.cap[arc+1] = vIn, 0
		place(vIn, arc)
		place(vOut, arc+1)
		arc += 2
		for _, w := range succVal[succOff[v]:succOff[v+1]] {
			wIn := int32(2 * w)
			f.to[arc], f.cap[arc] = wIn, flowInf
			f.to[arc+1], f.cap[arc+1] = vOut, 0
			place(vOut, arc)
			place(wIn, arc+1)
			arc += 2
		}
	}
	f.cap0 = append(f.cap0[:0], f.cap[:na]...)
	cs.baseLen = append(cs.baseLen[:0], f.adjLen...)
}

// resetFull restores the cached static network to its pristine state:
// capacities of the arcs the previous solve dirtied, row lengths of the rows
// that grew extension arcs, and the arc arena truncated to the static part.
func (cs *CutSolver) resetFull() {
	f := &cs.full
	for _, ai := range f.dirty {
		if int(ai) < cs.baseArcs {
			f.cap[ai] = f.cap0[ai]
			f.cap[ai^1] = f.cap0[ai^1]
		}
	}
	f.dirty = f.dirty[:0]
	for _, u := range cs.extRows {
		f.adjLen[u] = cs.baseLen[u]
	}
	cs.extRows = cs.extRows[:0]
	f.to = f.to[:cs.baseArcs]
	f.cap = f.cap[:cs.baseArcs]
}

// addExt attaches a per-call infinite-capacity arc u→v into the slack slots
// of the cached static network.
func (cs *CutSolver) addExt(u, v int32) {
	f := &cs.full
	a := int32(len(f.to))
	f.to = append(f.to, v, u)
	f.cap = append(f.cap, flowInf, 0)
	f.adjArc[f.adjOff[u]+f.adjLen[u]] = a
	f.adjLen[u]++
	f.adjArc[f.adjOff[v]+f.adjLen[v]] = a + 1
	f.adjLen[v]++
	cs.extRows = append(cs.extRows, u, v)
}

// MinVertexCut is the reusable-scratch equivalent of the package-level
// MinVertexCut: same contract, same cut sets, no per-call network build on
// repeated queries against the same graph.
func (cs *CutSolver) MinVertexCut(g *cdag.Graph, sources, targets []cdag.VertexID, opts CutOptions) (int, []cdag.VertexID) {
	cs.ensureGraph(g)
	n := cs.n
	if n == 0 || len(sources) == 0 || len(targets) == 0 {
		return 0, nil
	}
	// Mark targets (for the degenerate-overlap check) and detect duplicate
	// endpoints, which the slack-slot fast path cannot host.
	te := cs.nextEpoch()
	dups := false
	for _, tgt := range targets {
		if cs.seenMark[tgt] == te {
			dups = true
		}
		cs.seenMark[tgt] = te
	}
	// A vertex that is both a source and a target makes separation impossible
	// unless it can be cut; handle the degenerate overlap up front.
	for _, s := range sources {
		if cs.seenMark[s] == te && opts.uncuttable(s) {
			return -1, nil
		}
	}
	se := cs.nextEpoch()
	for _, src := range sources {
		if cs.seenMark[src] == se {
			dups = true
		}
		cs.seenMark[src] = se
	}

	var f *flowCSR
	s, t := int32(2*n), int32(2*n+1)
	if dups {
		f = cs.freshVertexSplit(g, sources, targets, opts)
	} else {
		cs.ensureStatic(g)
		cs.resetFull()
		f = &cs.full
		// Flip the split-arc capacities of the uncuttable vertices.  The
		// precomputed-set path reads the bitmap directly — a branch per
		// vertex, no per-vertex predicate call (ROADMAP item d); the
		// predicate path is kept for callers without a materialized set.
		if set := opts.UncuttableSet; set != nil {
			bm := set.Bitmap()
			fn := opts.Uncuttable
			for v := 0; v < n; v++ {
				if (v < len(bm) && bm[v]) || (fn != nil && fn(cdag.VertexID(v))) {
					a := cs.splitArc[v]
					f.cap[a] = flowInf
					f.dirty = append(f.dirty, a)
				}
			}
		} else if opts.Uncuttable != nil {
			for v := 0; v < n; v++ {
				if opts.Uncuttable(cdag.VertexID(v)) {
					a := cs.splitArc[v]
					f.cap[a] = flowInf
					f.dirty = append(f.dirty, a)
				}
			}
		}
		for _, src := range sources {
			cs.addExt(s, int32(2*src))
		}
		for _, tgt := range targets {
			cs.addExt(int32(2*tgt)+1, t)
		}
	}
	flow := f.maxFlow(s, t)
	if flow >= flowInf {
		return -1, nil
	}
	// Recover the cut: a vertex v is a cut vertex when its vIn is reachable
	// from the source side of the residual graph but its vOut is not.
	f.residualReach(s)
	var cut []cdag.VertexID
	for v := 0; v < n; v++ {
		if f.reached(int32(2*v)) && !f.reached(int32(2*v+1)) {
			cut = append(cut, cdag.VertexID(v))
		}
	}
	return int(flow), cut
}

// freshVertexSplit builds a one-off vertex-split network in the strip scratch
// with exactly the historical arc emission order; it hosts the rare calls the
// cached network cannot (duplicate source/target entries).
func (cs *CutSolver) freshVertexSplit(g *cdag.Graph, sources, targets []cdag.VertexID, opts CutOptions) *flowCSR {
	n := cs.n
	f := &cs.strip
	f.resetStage()
	succOff, succVal := g.SuccessorCSR()
	for v := 0; v < n; v++ {
		id := cdag.VertexID(v)
		capV := int64(1)
		if opts.uncuttable(id) {
			capV = flowInf
		}
		f.stageEdge(int32(2*v), int32(2*v+1), capV)
		for _, w := range succVal[succOff[v]:succOff[v+1]] {
			f.stageEdge(int32(2*v+1), int32(2*w), flowInf)
		}
	}
	s, t := int32(2*n), int32(2*n+1)
	for _, src := range sources {
		f.stageEdge(s, int32(2*src), flowInf)
	}
	for _, tgt := range targets {
		f.stageEdge(int32(2*tgt)+1, t, flowInf)
	}
	f.buildFresh(2*n + 2)
	return f
}

// MaxVertexDisjointPaths is MaxVertexDisjointPaths on this solver's scratch.
func (cs *CutSolver) MaxVertexDisjointPaths(g *cdag.Graph, sources, targets []cdag.VertexID) int {
	k, _ := cs.MinVertexCut(g, sources, targets, CutOptions{})
	return k
}

// solverPool recycles CutSolvers behind the package-level wrappers, so
// repeated cut queries — the dominator sweeps of the 2S-partition bound, the
// per-piece wavefronts of the Theorem 8/9 decompositions — reuse networks and
// traversal scratch instead of rebuilding them per call.
var solverPool = sync.Pool{New: func() any { return NewCutSolver() }}

func acquireSolver() *CutSolver   { return solverPool.Get().(*CutSolver) }
func releaseSolver(cs *CutSolver) { solverPool.Put(cs) }

// MinWavefrontLowerBoundStrip returns MinWavefrontLowerBound(g, x) computed
// on the pooled strip-local engine.  The value is always identical to the
// reference full-network computation; only the cost differs.
func MinWavefrontLowerBoundStrip(g *cdag.Graph, x cdag.VertexID) int {
	cs := acquireSolver()
	defer releaseSolver(cs)
	return cs.MinWavefrontAt(g, x)
}
