package graphalg

import (
	"testing"

	"cdagio/internal/cdag"
	"cdagio/internal/gen"
)

// benchGraph returns the large w^max benchmark instance: a 2-D Jacobi sweep
// with 6480 vertices and ~45k edges, comfortably above the 5000-vertex bar
// the acceptance criteria set for the parallel search.
func benchGraph() *cdag.Graph {
	return gen.Jacobi(2, 36, 4, gen.StencilBox).Graph
}

// BenchmarkWMaxSerialAllCandidates is the baseline the tentpole is measured
// against: the all-candidates serial scan, one freshly allocated flow network
// and two fresh reachability traversals per candidate.
func BenchmarkWMaxSerialAllCandidates(b *testing.B) {
	g := benchGraph()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w, _ := MaxMinWavefrontLowerBoundSerial(g, nil)
		if w < 1 {
			b.Fatal("bogus bound")
		}
	}
}

// BenchmarkWMaxEngine is the full new engine: worker pool, per-worker
// reusable scratch, and upper-bound pruning.
func BenchmarkWMaxEngine(b *testing.B) {
	g := benchGraph()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w, _ := MaxMinWavefrontLowerBoundOpts(g, nil, WMaxOptions{})
		if w < 1 {
			b.Fatal("bogus bound")
		}
	}
}

// BenchmarkWMaxEngineNoPrune isolates the scratch-reuse contribution: every
// candidate is still solved with Dinic, but on the shared per-worker network
// instead of a fresh allocation.
func BenchmarkWMaxEngineNoPrune(b *testing.B) {
	g := benchGraph()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w, _ := MaxMinWavefrontLowerBoundOpts(g, nil, WMaxOptions{DisablePruning: true})
		if w < 1 {
			b.Fatal("bogus bound")
		}
	}
}

// BenchmarkWMaxEngineCG runs the engine on a Krylov-iteration CDAG, the
// second workload family Lemma 2 is applied to in the paper.
func BenchmarkWMaxEngineCG(b *testing.B) {
	g := gen.CG(2, 12, 3).Graph
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w, _ := MaxMinWavefrontLowerBoundOpts(g, nil, WMaxOptions{})
		if w < 1 {
			b.Fatal("bogus bound")
		}
	}
}

// BenchmarkWMaxScaleJacobi100k is the scale proof for the strip-local
// engine: the full all-candidates w^max search — every one of the 110,000
// vertices of a 100×100, T=10 Jacobi CDAG (888k edges) is a candidate.
// Infeasible before the strip-local rewrite (the full-network engine
// extrapolates to hours on this instance), it now completes in seconds on a
// single core and is part of the CI bench smoke.
func BenchmarkWMaxScaleJacobi100k(b *testing.B) {
	g := gen.Jacobi(2, 100, 10, gen.StencilBox).Graph
	g.Materialize()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w, _ := MaxMinWavefrontLowerBoundOpts(g, nil, WMaxOptions{})
		if w < 1 {
			b.Fatal("bogus bound")
		}
	}
}

// BenchmarkWMaxScaleJacobi1M is the million-vertex scale proof of the
// incremental-flow engine: the exact all-candidates w^max scan over every
// vertex of a 512×512, T=3 Jacobi CDAG (1,048,576 vertices, 7.06M edges).
// The counting-sorted candidate order, the two-phase incumbent seeding, the
// threshold-limited late bound and the warm-started, abortable solves
// together bring the full scan to low single-digit seconds on one core —
// bound and witness still bit-identical to the serial reference.  Short mode
// (the CI bench smoke) trims to a 128×128 instance with the same shape so
// the whole pipeline is still exercised in well under a second.
func BenchmarkWMaxScaleJacobi1M(b *testing.B) {
	n := 512
	if testing.Short() {
		n = 128
	}
	g := gen.Jacobi(2, n, 3, gen.StencilBox).Graph
	g.Materialize()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w, _ := MaxMinWavefrontLowerBoundOpts(g, nil, WMaxOptions{})
		if w < 1 {
			b.Fatal("bogus bound")
		}
	}
}

// BenchmarkMinWavefrontScratch measures the per-candidate cost of the
// strip-local path alone (explore + strip build + Dinic) on the large
// instance.
func BenchmarkMinWavefrontScratch(b *testing.B) {
	g := benchGraph()
	sc := NewCutSolver()
	sc.ensureGraph(g)
	vs := g.Vertices()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x := vs[i%len(vs)]
		sc.explore(x)
		if sc.minWavefront(x) < 1 {
			b.Fatal("bogus bound")
		}
	}
}
