package graphalg

import (
	"sync"

	"cdagio/internal/cdag"
)

// SolverPool is a per-graph free list of CutSolvers: every solver it hands out
// is already bound to the pool's graph, so repeated cut queries — the w^max
// candidate scans, the per-piece wavefronts of the Theorem 8/9 decompositions,
// dominator sweeps — reuse the cached static vertex-split network, the CSR
// hoists and the epoch-stamped traversal scratch instead of rebuilding them
// per call.  This is the solver cache a cdagio.Workspace owns; unlike the
// package-internal sync.Pool behind the free-function wrappers, a SolverPool's
// lifetime (and therefore the lifetime of the cached networks) is controlled
// by its owner, and its solvers never migrate to queries against other graphs.
//
// A SolverPool is safe for concurrent use; the individual CutSolvers it hands
// out are not (use one per goroutine, returning it with Put).
type SolverPool struct {
	g    *cdag.Graph
	mu   sync.Mutex
	free []*CutSolver
	sem  chan struct{} // nil = unlimited; else one slot per outstanding solver
}

// NewSolverPool returns an empty pool bound to g.  It materializes g's CSR
// arrays up front so concurrent Get calls never race on the graph's lazy
// compilation.
func NewSolverPool(g *cdag.Graph) *SolverPool {
	g.Materialize()
	return &SolverPool{g: g}
}

// Graph returns the graph the pool's solvers are bound to.
func (p *SolverPool) Graph() *cdag.Graph { return p.g }

// SetLimit caps the number of solvers outstanding from the pool at once:
// when n solvers are out, further Get calls block until one is returned with
// Put (or dropped with Discard).  This is the serving layer's global
// in-flight solver cap — it bounds the memory and CPU a Workspace's cut
// queries can hold regardless of how many requests race on it.  n <= 0
// removes the cap.  Call before the pool is shared; changing the limit while
// solvers are outstanding loses track of them.
func (p *SolverPool) SetLimit(n int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if n <= 0 {
		p.sem = nil
		return
	}
	p.sem = make(chan struct{}, n)
}

// Limit returns the current cap on outstanding solvers (0 = unlimited).
func (p *SolverPool) Limit() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return cap(p.sem)
}

// InUse returns the number of solvers currently outstanding.  Only meaningful
// under a SetLimit cap (0 otherwise); the serving layer reports it as a
// load metric.
func (p *SolverPool) InUse() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.sem)
}

// Get returns a solver bound to the pool's graph, reusing a previously
// returned one when available.  Under a SetLimit cap, Get blocks while the
// full complement of solvers is outstanding.
func (p *SolverPool) Get() *CutSolver {
	p.mu.Lock()
	sem := p.sem
	p.mu.Unlock()
	if sem != nil {
		sem <- struct{}{}
	}
	p.mu.Lock()
	if n := len(p.free); n > 0 {
		cs := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		p.mu.Unlock()
		return cs
	}
	p.mu.Unlock()
	cs := NewCutSolver()
	cs.ensureGraph(p.g)
	return cs
}

// Put returns a solver obtained from Get to the pool.
func (p *SolverPool) Put(cs *CutSolver) {
	if cs == nil {
		return
	}
	p.mu.Lock()
	p.free = append(p.free, cs)
	sem := p.sem
	p.mu.Unlock()
	if sem != nil {
		<-sem
	}
}

// Discard releases the capacity slot of a solver obtained from Get without
// returning the solver itself: the panic-isolation path drops a solver whose
// scratch may have been poisoned mid-solve rather than let a later query
// reuse it.  The solver is garbage collected; the pool replaces it lazily.
func (p *SolverPool) Discard(cs *CutSolver) {
	if cs == nil {
		return
	}
	p.mu.Lock()
	sem := p.sem
	p.mu.Unlock()
	if sem != nil {
		<-sem
	}
}

// EstimateSolverFootprint estimates the steady-state heap bytes one CutSolver
// holds once bound to g: the epoch-stamped per-vertex mark arrays, the cached
// static vertex-split flow network (2V+2 nodes, one split arc per vertex plus
// one arc pair per edge, with capacity and adjacency words), and traversal
// scratch.  The serving layer multiplies this by its solver cap to budget a
// Workspace's cache admission; it is a planning estimate, not an accounting
// of live allocations.
func EstimateSolverFootprint(g *cdag.Graph) int64 {
	return EstimateSolverFootprintCounts(int64(g.NumVertices()), int64(g.NumEdges()))
}

// EstimateSolverFootprintCounts is EstimateSolverFootprint for a graph that
// has not been built yet, from its declared vertex and edge counts.  The
// serving layer uses it to reject generator specs whose Workspace could
// never be admitted, before allocating anything.
func EstimateSolverFootprintCounts(v, e int64) int64 {
	return 60*v + 30*e + 4096
}

// MinWavefrontAt is MinWavefrontLowerBoundStrip on a pooled solver.
func (p *SolverPool) MinWavefrontAt(x cdag.VertexID) int {
	cs := p.Get()
	defer p.Put(cs)
	return cs.MinWavefrontAt(p.g, x)
}

// MinVertexCut is MinVertexCut on a pooled solver.
func (p *SolverPool) MinVertexCut(sources, targets []cdag.VertexID, opts CutOptions) (int, []cdag.VertexID) {
	cs := p.Get()
	defer p.Put(cs)
	return cs.MinVertexCut(p.g, sources, targets, opts)
}

// MaxVertexDisjointPaths is MaxVertexDisjointPaths on a pooled solver.
func (p *SolverPool) MaxVertexDisjointPaths(sources, targets []cdag.VertexID) int {
	cs := p.Get()
	defer p.Put(cs)
	return cs.MaxVertexDisjointPaths(p.g, sources, targets)
}

// MinDominatorSize is MinDominatorSize on a pooled solver.
func (p *SolverPool) MinDominatorSize(target *cdag.VertexSet) (int, []cdag.VertexID) {
	cs := p.Get()
	defer p.Put(cs)
	return cs.MinDominatorSize(p.g, target)
}
