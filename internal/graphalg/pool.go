package graphalg

import (
	"sync"

	"cdagio/internal/cdag"
)

// SolverPool is a per-graph free list of CutSolvers: every solver it hands out
// is already bound to the pool's graph, so repeated cut queries — the w^max
// candidate scans, the per-piece wavefronts of the Theorem 8/9 decompositions,
// dominator sweeps — reuse the cached static vertex-split network, the CSR
// hoists and the epoch-stamped traversal scratch instead of rebuilding them
// per call.  This is the solver cache a cdagio.Workspace owns; unlike the
// package-internal sync.Pool behind the free-function wrappers, a SolverPool's
// lifetime (and therefore the lifetime of the cached networks) is controlled
// by its owner, and its solvers never migrate to queries against other graphs.
//
// A SolverPool is safe for concurrent use; the individual CutSolvers it hands
// out are not (use one per goroutine, returning it with Put).
type SolverPool struct {
	g    *cdag.Graph
	mu   sync.Mutex
	free []*CutSolver
}

// NewSolverPool returns an empty pool bound to g.  It materializes g's CSR
// arrays up front so concurrent Get calls never race on the graph's lazy
// compilation.
func NewSolverPool(g *cdag.Graph) *SolverPool {
	g.Materialize()
	return &SolverPool{g: g}
}

// Graph returns the graph the pool's solvers are bound to.
func (p *SolverPool) Graph() *cdag.Graph { return p.g }

// Get returns a solver bound to the pool's graph, reusing a previously
// returned one when available.
func (p *SolverPool) Get() *CutSolver {
	p.mu.Lock()
	if n := len(p.free); n > 0 {
		cs := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		p.mu.Unlock()
		return cs
	}
	p.mu.Unlock()
	cs := NewCutSolver()
	cs.ensureGraph(p.g)
	return cs
}

// Put returns a solver obtained from Get to the pool.
func (p *SolverPool) Put(cs *CutSolver) {
	if cs == nil {
		return
	}
	p.mu.Lock()
	p.free = append(p.free, cs)
	p.mu.Unlock()
}

// MinWavefrontAt is MinWavefrontLowerBoundStrip on a pooled solver.
func (p *SolverPool) MinWavefrontAt(x cdag.VertexID) int {
	cs := p.Get()
	defer p.Put(cs)
	return cs.MinWavefrontAt(p.g, x)
}

// MinVertexCut is MinVertexCut on a pooled solver.
func (p *SolverPool) MinVertexCut(sources, targets []cdag.VertexID, opts CutOptions) (int, []cdag.VertexID) {
	cs := p.Get()
	defer p.Put(cs)
	return cs.MinVertexCut(p.g, sources, targets, opts)
}

// MaxVertexDisjointPaths is MaxVertexDisjointPaths on a pooled solver.
func (p *SolverPool) MaxVertexDisjointPaths(sources, targets []cdag.VertexID) int {
	cs := p.Get()
	defer p.Put(cs)
	return cs.MaxVertexDisjointPaths(p.g, sources, targets)
}

// MinDominatorSize is MinDominatorSize on a pooled solver.
func (p *SolverPool) MinDominatorSize(target *cdag.VertexSet) (int, []cdag.VertexID) {
	cs := p.Get()
	defer p.Put(cs)
	return cs.MinDominatorSize(p.g, target)
}
