package graphalg

import (
	"math/rand"
	"reflect"
	"testing"

	"cdagio/internal/cdag"
	"cdagio/internal/gen"
)

// randomDAG builds a seeded random DAG: n vertices, edges only from lower to
// higher IDs, so every instance is acyclic and the suite is reproducible.
func randomDAG(rng *rand.Rand, n, extraEdges int) *cdag.Graph {
	g := cdag.NewGraph("rand", n)
	g.AddVertices(n)
	// A sprinkling of chain edges keeps most vertices connected so the cones
	// are non-trivial.
	for v := 1; v < n; v++ {
		if rng.Intn(3) > 0 {
			g.AddEdge(cdag.VertexID(rng.Intn(v)), cdag.VertexID(v))
		}
	}
	for i := 0; i < extraEdges; i++ {
		u := rng.Intn(n - 1)
		v := u + 1 + rng.Intn(n-u-1)
		g.AddEdge(cdag.VertexID(u), cdag.VertexID(v))
	}
	return g
}

// TestStripEquivalenceRandomDAGs pins the strip-local engine against the
// full-network reference on randomized DAGs: per-vertex bound values
// (MinWavefrontLowerBoundStrip vs MinWavefrontLowerBound) and the complete
// search result — bound AND witness — against the serial all-candidates scan,
// across worker counts and pruning modes.
func TestStripEquivalenceRandomDAGs(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 40; trial++ {
		n := 8 + rng.Intn(40)
		g := randomDAG(rng, n, 2*n)
		for _, x := range g.Vertices() {
			want := MinWavefrontLowerBound(g, x)
			got := MinWavefrontLowerBoundStrip(g, x)
			if got != want {
				t.Fatalf("trial %d vertex %d: strip bound %d, reference %d", trial, x, got, want)
			}
		}
		wantW, wantV := MaxMinWavefrontLowerBoundSerial(g, nil)
		for _, conc := range []int{1, 3} {
			for _, noPrune := range []bool{false, true} {
				gotW, gotV := MaxMinWavefrontLowerBoundOpts(g, nil, WMaxOptions{
					Concurrency:    conc,
					DisablePruning: noPrune,
				})
				if gotW != wantW || gotV != wantV {
					t.Fatalf("trial %d (conc=%d noPrune=%v): (bound, witness) = (%d, %d), serial (%d, %d)",
						trial, conc, noPrune, gotW, gotV, wantW, wantV)
				}
			}
		}
	}
}

// TestCutSolverReuseAcrossGraphs drives one solver across alternating graphs
// and query kinds, checking every answer against a fresh computation: the
// epoch-stamped scratch and the cached static network must never leak state
// between graphs.
func TestCutSolverReuseAcrossGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	graphs := []*cdag.Graph{
		randomDAG(rng, 20, 40),
		randomDAG(rng, 35, 80),
		gen.Jacobi(1, 8, 3, gen.StencilStar).Graph,
	}
	cs := NewCutSolver()
	for round := 0; round < 3; round++ {
		for gi, g := range graphs {
			for _, x := range g.Vertices() {
				want := MinWavefrontLowerBound(g, x)
				if got := cs.MinWavefrontAt(g, x); got != want {
					t.Fatalf("round %d graph %d vertex %d: %d, want %d", round, gi, x, got, want)
				}
			}
			sources, sinks := g.Sources(), g.Sinks()
			if len(sources) == 0 || len(sinks) == 0 {
				continue
			}
			wantK, wantCut := func() (int, []cdag.VertexID) {
				fresh := NewCutSolver()
				return fresh.MinVertexCut(g, sources, sinks, CutOptions{})
			}()
			gotK, gotCut := cs.MinVertexCut(g, sources, sinks, CutOptions{})
			if gotK != wantK || !reflect.DeepEqual(gotCut, wantCut) {
				t.Fatalf("round %d graph %d: cut (%d, %v), want (%d, %v)", round, gi, gotK, gotCut, wantK, wantCut)
			}
		}
	}
}

// TestMinVertexCutDuplicateEndpoints exercises the fresh-build fallback: with
// duplicate source/target entries the cached slack slots cannot host the
// extension arcs, and the solver must fall back to a one-off network with the
// historical arc order — duplicates added the same arcs twice in the old
// engine, which never changed the cut.
func TestMinVertexCutDuplicateEndpoints(t *testing.T) {
	g, v := diamond()
	k, cut := MinVertexCut(g,
		[]cdag.VertexID{v[0], v[0], v[0]},
		[]cdag.VertexID{v[3], v[3]},
		CutOptions{})
	wantK, wantCut := MinVertexCut(g, []cdag.VertexID{v[0]}, []cdag.VertexID{v[3]}, CutOptions{})
	if k != wantK || !reflect.DeepEqual(cut, wantCut) {
		t.Fatalf("duplicate endpoints: (%d, %v), want (%d, %v)", k, cut, wantK, wantCut)
	}
}

// TestUncuttableSetMatchesPredicate drives the cached-static path with the
// predicate form, the precomputed-set form and the union of both on
// randomized DAGs, asserting identical cut values and cut sets.  The set form
// is what the wavefront instances use (ROADMAP item d); it must be a pure
// performance change.
func TestUncuttableSetMatchesPredicate(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 25; trial++ {
		n := 10 + rng.Intn(30)
		g := randomDAG(rng, n, 2*n)
		sources, sinks := g.Sources(), g.Sinks()
		if len(sources) == 0 || len(sinks) == 0 {
			continue
		}
		uncut := cdag.NewVertexSet(n)
		for v := 0; v < n; v++ {
			if rng.Intn(3) == 0 {
				uncut.Add(cdag.VertexID(v))
			}
		}
		wantK, wantCut := MinVertexCut(g, sources, sinks, CutOptions{Uncuttable: uncut.Contains})
		gotK, gotCut := MinVertexCut(g, sources, sinks, CutOptions{UncuttableSet: uncut})
		if gotK != wantK || !reflect.DeepEqual(gotCut, wantCut) {
			t.Fatalf("trial %d: set form (%d, %v), predicate form (%d, %v)",
				trial, gotK, gotCut, wantK, wantCut)
		}
		// Union semantics: splitting the same restriction across both fields
		// must change nothing.
		half := cdag.NewVertexSet(n)
		for _, v := range uncut.Elements() {
			if rng.Intn(2) == 0 {
				half.Add(v)
			}
		}
		bothK, bothCut := MinVertexCut(g, sources, sinks, CutOptions{
			UncuttableSet: half,
			Uncuttable:    uncut.Contains,
		})
		if bothK != wantK || !reflect.DeepEqual(bothCut, wantCut) {
			t.Fatalf("trial %d: union form (%d, %v), want (%d, %v)", trial, bothK, bothCut, wantK, wantCut)
		}
		// Duplicate endpoints route through the fresh-build fallback, which
		// must honor the set form too.
		dupSources := append([]cdag.VertexID{sources[0]}, sources...)
		wantK2, wantCut2 := MinVertexCut(g, dupSources, sinks, CutOptions{Uncuttable: uncut.Contains})
		gotK2, gotCut2 := MinVertexCut(g, dupSources, sinks, CutOptions{UncuttableSet: uncut})
		if gotK2 != wantK2 || !reflect.DeepEqual(gotCut2, wantCut2) {
			t.Fatalf("trial %d: fresh-build set form (%d, %v), predicate form (%d, %v)",
				trial, gotK2, gotCut2, wantK2, wantCut2)
		}
	}
}

// butterflyStackGraph is the layered benchmark instance whose cut set the
// goldens below pin.
func butterflyStackGraph() *cdag.Graph {
	const width, depth = 32, 5
	g := cdag.NewGraph("bench", width*(depth+1))
	layer := make([][]cdag.VertexID, depth+1)
	for l := 0; l <= depth; l++ {
		layer[l] = make([]cdag.VertexID, width)
		for i := 0; i < width; i++ {
			if l == 0 {
				layer[l][i] = g.AddInput("in")
			} else {
				layer[l][i] = g.AddVertex("op")
				stride := 1 << ((l - 1) % 5)
				g.AddEdge(layer[l-1][i], layer[l][i])
				g.AddEdge(layer[l-1][(i+stride)%width], layer[l][i])
			}
		}
	}
	for _, v := range layer[depth] {
		g.TagOutput(v)
	}
	return g
}

// TestMinVertexCutGoldenSets pins the exact cut-set CONTENTS — not just the
// sizes — returned by the engine on four structurally different instances.
// The expected sets were recorded from the historical slice-of-slices flow
// network; the CSR engine (cached-static path included) must reproduce them
// bit for bit, since downstream consumers report dominator sets and cut
// witnesses verbatim.
func TestMinVertexCutGoldenSets(t *testing.T) {
	ids := func(vs ...int32) []cdag.VertexID {
		out := make([]cdag.VertexID, len(vs))
		for i, v := range vs {
			out[i] = cdag.VertexID(v)
		}
		return out
	}

	t.Run("butterflyStack", func(t *testing.T) {
		g := butterflyStackGraph()
		k, cut := MinVertexCut(g, g.Inputs(), g.Outputs(), CutOptions{})
		want := ids(0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15,
			16, 17, 18, 19, 20, 21, 22, 23, 24, 25, 26, 27, 28, 29, 30, 31)
		if k != 32 || !reflect.DeepEqual(cut, want) {
			t.Fatalf("cut = (%d, %v), want (32, %v)", k, cut, want)
		}
	})

	t.Run("matmul4Dominator", func(t *testing.T) {
		g := gen.MatMul(4).Graph
		outs := cdag.NewVertexSet(g.NumVertices())
		outs.AddAll(g.Outputs())
		k, dom := MinDominatorSize(g, outs)
		want := ids(38, 45, 52, 59, 66, 73, 80, 87, 94, 101, 108, 115, 122, 129, 136, 143)
		if k != 16 || !reflect.DeepEqual(dom, want) {
			t.Fatalf("dominator = (%d, %v), want (16, %v)", k, dom, want)
		}
	})

	t.Run("jacobi2dUncuttable", func(t *testing.T) {
		g := gen.Jacobi(2, 6, 3, gen.StencilBox).Graph
		x := cdag.VertexID(g.NumVertices() / 2) // vertex 72
		desc := Descendants(g, x)
		anc := Ancestors(g, x)
		anc.Add(x)
		k, cut := MinVertexCut(g, anc.Elements(), desc.Elements(), CutOptions{Uncuttable: desc.Contains})
		want := ids(72, 73, 74, 78, 79, 80, 84, 85, 86)
		if k != 9 || !reflect.DeepEqual(cut, want) {
			t.Fatalf("cut = (%d, %v), want (9, %v)", k, cut, want)
		}
	})

	t.Run("jacobi2dUncuttableSet", func(t *testing.T) {
		// The precomputed-set form must reproduce the predicate golden above
		// bit for bit (same flip order, same cut set).
		g := gen.Jacobi(2, 6, 3, gen.StencilBox).Graph
		x := cdag.VertexID(g.NumVertices() / 2)
		desc := Descendants(g, x)
		anc := Ancestors(g, x)
		anc.Add(x)
		k, cut := MinVertexCut(g, anc.Elements(), desc.Elements(), CutOptions{UncuttableSet: desc})
		want := ids(72, 73, 74, 78, 79, 80, 84, 85, 86)
		if k != 9 || !reflect.DeepEqual(cut, want) {
			t.Fatalf("cut = (%d, %v), want (9, %v)", k, cut, want)
		}
	})

	t.Run("cgInputsToOutputs", func(t *testing.T) {
		g := gen.CG(2, 4, 2).Graph
		k, cut := MinVertexCut(g, g.Inputs(), g.Outputs(), CutOptions{})
		want := ids(286, 288, 290, 292, 294, 296, 298, 300, 302, 304, 306, 308, 310, 312, 314, 316)
		if k != 16 || !reflect.DeepEqual(cut, want) {
			t.Fatalf("cut = (%d, %v), want (16, %v)", k, cut, want)
		}
	})
}
