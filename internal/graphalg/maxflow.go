package graphalg

import "math"

// flowCSR is the max-flow core behind every vertex-cut computation in this
// package: a Dinic solver over a flat CSR arc array.  Arcs are stored in
// forward/reverse pairs (arc i and i^1), and each node's arc ids occupy one
// contiguous run of adjArc, so the hot BFS/DFS loops walk flat memory instead
// of chasing a slice-of-slices.
//
// The struct is a reusable scratch: every slice grows monotonically and is
// recycled across solves, so repeated solves (the w^max candidate search, the
// dominator sweeps) allocate nothing after warm-up.  Two reset disciplines
// keep the recycling cheap:
//
//   - BFS levels, DFS current-arc cursors and residual-reachability marks are
//     epoch-stamped: an entry is valid only when its stamp matches the current
//     epoch/phase counter, so starting a new solve is a counter increment, not
//     an O(nodes) clear.
//   - For networks that are cached across solves (the static vertex-split
//     network of CutSolver), the solver records every arc whose capacity an
//     augmenting path changed; restoring pristine capacities then touches only
//     those dirty arcs instead of copying the whole capacity array.
//
// Networks are built either freshly per solve from a staged edge list
// (buildFresh, used by the strip-local wavefront instances, whose shape
// changes with every candidate) or once per graph with per-row slack for
// per-solve extension arcs (CutSolver's static network).  In both cases each
// row's arcs appear in global insertion order — exactly the order the
// historical per-node append lists produced — so augmenting-path selection,
// residual graphs, and therefore returned cut sets are bit-identical to the
// previous slice-of-slices engine.
type flowCSR struct {
	n int // current node count

	// Arc arena: forward arc i and its residual i^1.
	to  []int32
	cap []int64

	// CSR adjacency: row u's arc ids are adjArc[adjOff[u] : adjOff[u]+adjLen[u]].
	// Cached static networks reserve slack beyond adjLen for per-solve
	// extension arcs (super source/sink attachments).
	adjOff []int32
	adjLen []int32
	adjArc []int32

	// Staged edges compiled by buildFresh.
	eu, ev []int32
	ecap   []int64

	// Epoch-stamped traversal scratch.  level/levelEp: BFS level graph,
	// valid when levelEp[u] == epoch.  iter/iterEp: DFS current-arc cursor,
	// valid when iterEp[u] == phase.  seenEp: residual reachability, valid
	// when seenEp[u] == epoch.
	epoch   int32
	phase   int32
	level   []int32
	levelEp []int32
	iter    []int32
	iterEp  []int32
	seenEp  []int32
	queue   []int32
	stack   []int32

	// Iterative augmenting-DFS path: the arc taken into each node and the
	// node it was taken from.
	pathArc  []int32
	pathNode []int32

	// Dirty-arc tracking for cached networks: forward arc ids whose capacity
	// the current solve changed.  Restoration from cap0 is idempotent, so the
	// list may contain duplicates.
	trackDirty bool
	dirty      []int32
	cap0       []int64

	// Per-BFS-level residual capacity sums, the scratch of the level-cut
	// upper-bound certificate of maxFlowBounded.
	cutSums []int64
}

const flowInf = int64(1) << 60

// ensureNodes grows the per-node scratch to cover n nodes and sets the
// network's node count.  Grown entries are zero, which can never equal a
// future epoch/phase stamp (the counters only move forward), so no clearing
// is needed.
func (f *flowCSR) ensureNodes(n int) {
	f.n = n
	f.level = growInt32(f.level, n)
	f.levelEp = growInt32(f.levelEp, n)
	f.iter = growInt32(f.iter, n)
	f.iterEp = growInt32(f.iterEp, n)
	f.seenEp = growInt32(f.seenEp, n)
}

// growInt32 returns s extended to length n, preserving existing entries and
// zero-filling the growth.
func growInt32(s []int32, n int) []int32 {
	if cap(s) >= n {
		old := len(s)
		s = s[:n]
		for i := old; i < n; i++ {
			s[i] = 0
		}
		return s
	}
	grown := make([]int32, n)
	copy(grown, s)
	return grown
}

// bumpEpoch advances the level/seen epoch, resetting the stamp arrays on the
// (practically unreachable) int32 rollover so stale stamps can never collide.
func (f *flowCSR) bumpEpoch() int32 {
	f.epoch++
	if f.epoch == math.MaxInt32 {
		for i := range f.levelEp {
			f.levelEp[i] = 0
		}
		for i := range f.seenEp {
			f.seenEp[i] = 0
		}
		f.epoch = 1
	}
	return f.epoch
}

// bumpPhase advances the DFS current-arc phase with the same rollover guard.
func (f *flowCSR) bumpPhase() int32 {
	f.phase++
	if f.phase == math.MaxInt32 {
		for i := range f.iterEp {
			f.iterEp[i] = 0
		}
		f.phase = 1
	}
	return f.phase
}

// resetStage empties the staged edge list for a fresh build.
func (f *flowCSR) resetStage() {
	f.eu = f.eu[:0]
	f.ev = f.ev[:0]
	f.ecap = f.ecap[:0]
}

// stageEdge stages the directed edge u→v with the given capacity; buildFresh
// compiles the staged list into the CSR arrays.
func (f *flowCSR) stageEdge(u, v int32, capacity int64) {
	f.eu = append(f.eu, u)
	f.ev = append(f.ev, v)
	f.ecap = append(f.ecap, capacity)
}

// buildFresh compiles the staged edges into a slack-free CSR network over n
// nodes via a two-pass counting sort.  Each row's arcs end up in global
// staging order, matching what per-node append lists would hold.
func (f *flowCSR) buildFresh(n int) {
	f.ensureNodes(n)
	f.trackDirty = false
	ne := len(f.eu)
	na := 2 * ne
	if cap(f.to) < na {
		f.to = make([]int32, na)
		f.cap = make([]int64, na)
		f.adjArc = make([]int32, na)
	} else {
		f.to = f.to[:na]
		f.cap = f.cap[:na]
		f.adjArc = f.adjArc[:na]
	}
	f.adjOff = growInt32(f.adjOff[:0], n+1)
	f.adjLen = growInt32(f.adjLen[:0], n)
	for i := range f.adjLen {
		f.adjLen[i] = 0
	}
	for i := 0; i < ne; i++ {
		f.adjLen[f.eu[i]]++
		f.adjLen[f.ev[i]]++
	}
	f.adjOff[0] = 0
	for u := 0; u < n; u++ {
		f.adjOff[u+1] = f.adjOff[u] + f.adjLen[u]
		f.adjLen[u] = 0
	}
	for i := 0; i < ne; i++ {
		u, v := f.eu[i], f.ev[i]
		a := int32(2 * i)
		f.to[a] = v
		f.cap[a] = f.ecap[i]
		f.to[a+1] = u
		f.cap[a+1] = 0
		f.adjArc[f.adjOff[u]+f.adjLen[u]] = a
		f.adjLen[u]++
		f.adjArc[f.adjOff[v]+f.adjLen[v]] = a + 1
		f.adjLen[v]++
	}
}

// maxFlow computes the maximum s→t flow with Dinic's algorithm: BFS level
// graphs with epoch-stamped levels, then blocking flows found by an iterative
// current-arc DFS.  The augmenting-path selection order is identical to the
// historical recursive implementation, so residual graphs (and the cuts
// recovered from them) are bit-for-bit reproducible.
func (f *flowCSR) maxFlow(s, t int32) int64 {
	if s == t {
		return flowInf
	}
	var total int64
	for {
		e := f.bumpEpoch()
		f.levelEp[s] = e
		f.level[s] = 0
		q := f.queue[:0]
		q = append(q, s)
		reachedT := false
		for qi := 0; qi < len(q); qi++ {
			u := q[qi]
			lu := f.level[u] + 1
			base := f.adjOff[u]
			for _, ai := range f.adjArc[base : base+f.adjLen[u]] {
				v := f.to[ai]
				if f.cap[ai] > 0 && f.levelEp[v] != e {
					f.levelEp[v] = e
					f.level[v] = lu
					if v == t {
						reachedT = true
					}
					q = append(q, v)
				}
			}
		}
		f.queue = q[:0]
		if !reachedT {
			return total
		}
		total += f.blockingFlow(s, t, e)
	}
}

// maxFlowBounded is maxFlow with a mid-solve abort: when lim > 0, each BFS
// phase additionally evaluates a residual level-cut certificate, and the solve
// stops as soon as the certificate proves the final max flow must stay below
// lim.  It returns (flow, false) with the exact max flow when no certificate
// fired — bit-identical to maxFlow, since the certificate pass only reads the
// network — or (ub, true) where ub is a proven upper bound on the max flow
// with ub < lim.
//
// The certificate: after a BFS from s assigns levels, every residual arc
// (cap > 0) out of a reached node leads to a reached node at most one level
// deeper.  For any k with 0 ≤ k < level(t), the prefix P_k = {v : level(v) ≤ k}
// contains s, excludes t, and the only residual arcs leaving it run from level
// k to level k+1 — an arc u→v with cap > 0 and level(v) ≤ level(u) stays
// inside or re-enters the prefix, and an arc into an unreached v would have
// made v reached.  Each P_k is therefore a valid s–t cut of the residual
// network, so the flow still to come is at most min_k Σ cap(k→k+1 arcs), and
// the final max flow is at most the flow already sent plus that minimum.
// Reverse arcs need no special accounting: a reverse arc holding residual
// capacity (undoing flow on its partner) is an ordinary capacity-bearing arc
// of the residual network and is summed like any other when it crosses a
// level; the bound stays exact because the cut argument only relies on every
// s→t residual path crossing each prefix once.  Sums saturate at flowInf (the
// infinite arcs of the vertex-split networks would otherwise overflow).
func (f *flowCSR) maxFlowBounded(s, t int32, lim int64) (int64, bool) {
	if s == t {
		return flowInf, false
	}
	var total int64
	for {
		e := f.bumpEpoch()
		f.levelEp[s] = e
		f.level[s] = 0
		q := f.queue[:0]
		q = append(q, s)
		reachedT := false
		for qi := 0; qi < len(q); qi++ {
			u := q[qi]
			lu := f.level[u] + 1
			base := f.adjOff[u]
			for _, ai := range f.adjArc[base : base+f.adjLen[u]] {
				v := f.to[ai]
				if f.cap[ai] > 0 && f.levelEp[v] != e {
					f.levelEp[v] = e
					f.level[v] = lu
					if v == t {
						reachedT = true
					}
					q = append(q, v)
				}
			}
		}
		if !reachedT {
			f.queue = q[:0]
			return total, false
		}
		if lim > 0 {
			lt := int(f.level[t])
			sums := f.cutSums
			if cap(sums) < lt {
				sums = make([]int64, lt)
			} else {
				sums = sums[:lt]
			}
			for k := range sums {
				sums[k] = 0
			}
			for _, u := range q {
				lu := f.level[u]
				if int(lu) >= lt {
					continue
				}
				base := f.adjOff[u]
				for _, ai := range f.adjArc[base : base+f.adjLen[u]] {
					if f.cap[ai] <= 0 {
						continue
					}
					v := f.to[ai]
					if f.levelEp[v] == e && f.level[v] == lu+1 {
						if sums[lu] += f.cap[ai]; sums[lu] > flowInf {
							sums[lu] = flowInf
						}
					}
				}
			}
			rem := flowInf
			for _, sum := range sums {
				if sum < rem {
					rem = sum
				}
			}
			f.cutSums = sums
			if total+rem < lim {
				f.queue = q[:0]
				return total + rem, true
			}
		}
		f.queue = q[:0]
		total += f.blockingFlow(s, t, e)
	}
}

// blockingFlow sends augmenting paths along the level graph of epoch e until
// none remain, emulating the classical recursive current-arc DFS with an
// explicit stack: recursion depth on long-path CDAGs (a million-vertex Jacobi
// chain) would otherwise be O(V).
func (f *flowCSR) blockingFlow(s, t, e int32) int64 {
	ph := f.bumpPhase()
	var total int64
	pathA := f.pathArc[:0]
	pathN := f.pathNode[:0]
	u := s
	for {
		if u == t {
			// Augment: the bottleneck equals what the recursive descent's
			// narrowing limit would have delivered at t.
			push := flowInf
			for _, ai := range pathA {
				if f.cap[ai] < push {
					push = f.cap[ai]
				}
			}
			for _, ai := range pathA {
				f.cap[ai] -= push
				f.cap[ai^1] += push
				if f.trackDirty {
					f.dirty = append(f.dirty, ai)
				}
			}
			total += push
			// Restart the descent from s with current-arc cursors preserved,
			// exactly as the recursive unwinding did.
			pathA = pathA[:0]
			pathN = pathN[:0]
			u = s
			continue
		}
		var it int32
		if f.iterEp[u] == ph {
			it = f.iter[u]
		}
		base := f.adjOff[u]
		rl := f.adjLen[u]
		advanced := false
		for ; it < rl; it++ {
			ai := f.adjArc[base+it]
			v := f.to[ai]
			if f.cap[ai] > 0 && f.levelEp[v] == e && f.level[v] == f.level[u]+1 {
				f.iter[u] = it
				f.iterEp[u] = ph
				pathA = append(pathA, ai)
				pathN = append(pathN, u)
				u = v
				advanced = true
				break
			}
		}
		if !advanced {
			f.iter[u] = it
			f.iterEp[u] = ph
			if u == s {
				break
			}
			// Dead end: retreat and move the parent's cursor past the arc
			// that led here (the recursive version's iter[u]++ on pushed==0).
			p := pathN[len(pathN)-1]
			pathN = pathN[:len(pathN)-1]
			pathA = pathA[:len(pathA)-1]
			f.iter[p]++
			u = p
		}
	}
	f.pathArc = pathA[:0]
	f.pathNode = pathN[:0]
	return total
}

// residualReach marks every node reachable from s in the residual network
// with a fresh epoch; query the marks with reached.  The traversal reuses the
// solver's stack and stamp arrays, so repeated cut recoveries (the dominator
// sweeps of the 2S-partition bound) allocate nothing.
func (f *flowCSR) residualReach(s int32) {
	e := f.bumpEpoch()
	st := f.stack[:0]
	f.seenEp[s] = e
	st = append(st, s)
	for len(st) > 0 {
		u := st[len(st)-1]
		st = st[:len(st)-1]
		base := f.adjOff[u]
		for _, ai := range f.adjArc[base : base+f.adjLen[u]] {
			v := f.to[ai]
			if f.cap[ai] > 0 && f.seenEp[v] != e {
				f.seenEp[v] = e
				st = append(st, v)
			}
		}
	}
	f.stack = st[:0]
}

// reached reports whether residualReach marked node u.
func (f *flowCSR) reached(u int32) bool { return f.seenEp[u] == f.epoch }
