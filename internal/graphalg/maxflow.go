package graphalg

// flowNetwork is a unit-friendly max-flow network solved with Dinic's
// algorithm.  Nodes are dense ints; edges carry integer capacities and are
// stored with their residuals in a single arena.
type flowNetwork struct {
	head [][]int32 // head[u] = indices into edges of arcs leaving u
	to   []int32
	cap  []int64
	n    int

	// BFS/DFS scratch, allocated once and reused across maxFlow calls so that
	// repeated solves on the same network (the w^max candidate search) do not
	// allocate.
	level []int32
	iter  []int32
	queue []int32
}

const flowInf = int64(1) << 60

func newFlowNetwork(n int) *flowNetwork {
	return &flowNetwork{
		head:  make([][]int32, n),
		n:     n,
		level: make([]int32, n),
		iter:  make([]int32, n),
		queue: make([]int32, 0, n),
	}
}

// addEdge adds a directed edge u→v with the given capacity and its reverse
// residual edge with capacity 0.
func (f *flowNetwork) addEdge(u, v int, capacity int64) {
	f.head[u] = append(f.head[u], int32(len(f.to)))
	f.to = append(f.to, int32(v))
	f.cap = append(f.cap, capacity)
	f.head[v] = append(f.head[v], int32(len(f.to)))
	f.to = append(f.to, int32(u))
	f.cap = append(f.cap, 0)
}

// maxFlow computes the maximum s→t flow with Dinic's algorithm.
func (f *flowNetwork) maxFlow(s, t int) int64 {
	if s == t {
		return flowInf
	}
	var total int64
	level, iter, queue := f.level, f.iter, f.queue
	for {
		// BFS to build the level graph.
		for i := range level {
			level[i] = -1
		}
		level[s] = 0
		queue = queue[:0]
		queue = append(queue, int32(s))
		for qi := 0; qi < len(queue); qi++ {
			u := queue[qi]
			for _, ei := range f.head[u] {
				v := f.to[ei]
				if f.cap[ei] > 0 && level[v] < 0 {
					level[v] = level[u] + 1
					queue = append(queue, v)
				}
			}
		}
		if level[t] < 0 {
			f.queue = queue[:0]
			return total
		}
		for i := range iter {
			iter[i] = 0
		}
		for {
			pushed := f.dfs(s, t, flowInf, level, iter)
			if pushed == 0 {
				break
			}
			total += pushed
		}
	}
}

func (f *flowNetwork) dfs(u, t int, limit int64, level, iter []int32) int64 {
	if u == t {
		return limit
	}
	for ; iter[u] < int32(len(f.head[u])); iter[u]++ {
		ei := f.head[u][iter[u]]
		v := int(f.to[ei])
		if f.cap[ei] <= 0 || level[v] != level[u]+1 {
			continue
		}
		avail := limit
		if f.cap[ei] < avail {
			avail = f.cap[ei]
		}
		pushed := f.dfs(v, t, avail, level, iter)
		if pushed > 0 {
			f.cap[ei] -= pushed
			f.cap[ei^1] += pushed
			return pushed
		}
	}
	return 0
}

// minCutSourceSide returns, after maxFlow has been run, the set of nodes
// reachable from s in the residual network.
func (f *flowNetwork) minCutSourceSide(s int) []bool {
	seen := make([]bool, f.n)
	stack := []int{s}
	seen[s] = true
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, ei := range f.head[u] {
			v := int(f.to[ei])
			if f.cap[ei] > 0 && !seen[v] {
				seen[v] = true
				stack = append(stack, v)
			}
		}
	}
	return seen
}
