package graphalg

import "cdagio/internal/cdag"

// CutOptions configures vertex-cut computations.
type CutOptions struct {
	// Uncuttable reports vertices that may not be chosen as cut vertices
	// (they are given infinite capacity in the flow network).  A nil function
	// means every vertex may be cut.
	Uncuttable func(cdag.VertexID) bool

	// UncuttableSet is the precomputed-set form of Uncuttable: every member
	// may not be chosen as a cut vertex.  Prefer it when the uncuttable
	// vertices are already materialized as a set (the wavefront instances
	// exclude Desc(x)): the solver reads the set's bitmap directly, so the
	// per-call capacity flips cost a branch per vertex instead of a dynamic
	// predicate call per vertex.  When both fields are set a vertex is
	// uncuttable if either reports it.
	UncuttableSet *cdag.VertexSet
}

// uncuttable reports whether v may not be chosen as a cut vertex under the
// options (the single-vertex form; bulk scans read the set bitmap directly).
func (o CutOptions) uncuttable(v cdag.VertexID) bool {
	if o.UncuttableSet != nil && o.UncuttableSet.Contains(v) {
		return true
	}
	return o.Uncuttable != nil && o.Uncuttable(v)
}

// MinVertexCut computes the minimum number of vertices whose removal
// disconnects every directed path from a source vertex to a target vertex.
// Cut vertices may coincide with sources or targets unless opts.Uncuttable
// excludes them.  By Menger's theorem the value equals the maximum number of
// fully vertex-disjoint source→target paths when all vertices are cuttable.
//
// The computation uses the standard vertex-splitting reduction to edge
// min-cut solved with Dinic's algorithm; its cost is O(E·√V) in practice for
// the unit-capacity networks that arise here.  It runs on a pooled CutSolver,
// so repeated calls against the same graph reuse the cached static network
// and traversal scratch; hold a CutSolver directly to make the reuse
// explicit.
//
// It returns the cut size and one minimum cut (the set of cut vertices).
// If a target is reachable from a source using only uncuttable vertices the
// cut is impossible; the function then returns (-1, nil).
func MinVertexCut(g *cdag.Graph, sources, targets []cdag.VertexID, opts CutOptions) (int, []cdag.VertexID) {
	cs := acquireSolver()
	defer releaseSolver(cs)
	return cs.MinVertexCut(g, sources, targets, opts)
}

// MaxVertexDisjointPaths returns the maximum number of fully vertex-disjoint
// directed paths from the source set to the target set (paths may not share
// any vertex, endpoints included).  By Menger's theorem this equals
// MinVertexCut with all vertices cuttable.
func MaxVertexDisjointPaths(g *cdag.Graph, sources, targets []cdag.VertexID) int {
	cs := acquireSolver()
	defer releaseSolver(cs)
	return cs.MaxVertexDisjointPaths(g, sources, targets)
}

// MinDominatorSize returns the size of a minimum dominator set of the vertex
// set target: the smallest set D of vertices such that every path from an
// input vertex of g to a vertex of target contains a vertex of D
// (Definition 3 of Hong & Kung).  Dominator vertices may be inputs or members
// of target.  Vertices of target with no path from any input are ignored (no
// path needs covering).  The companion minimum dominator set is returned too
// (sorted by vertex ID).
//
// The instance is solved strip-locally on a pooled CutSolver: only the
// vertices on some input→target path become flow-network nodes, so repeated
// dominator queries cost O(strip), not O(V+E).  The value is identical to the
// full-network reference MinDominatorSizeFull.
func MinDominatorSize(g *cdag.Graph, target *cdag.VertexSet) (int, []cdag.VertexID) {
	cs := acquireSolver()
	defer releaseSolver(cs)
	return cs.MinDominatorSize(g, target)
}
