package graphalg

import "cdagio/internal/cdag"

// CutOptions configures vertex-cut computations.
type CutOptions struct {
	// Uncuttable reports vertices that may not be chosen as cut vertices
	// (they are given infinite capacity in the flow network).  A nil function
	// means every vertex may be cut.
	Uncuttable func(cdag.VertexID) bool
}

// MinVertexCut computes the minimum number of vertices whose removal
// disconnects every directed path from a source vertex to a target vertex.
// Cut vertices may coincide with sources or targets unless opts.Uncuttable
// excludes them.  By Menger's theorem the value equals the maximum number of
// fully vertex-disjoint source→target paths when all vertices are cuttable.
//
// The computation uses the standard vertex-splitting reduction to edge
// min-cut solved with Dinic's algorithm; its cost is O(E·√V) in practice for
// the unit-capacity networks that arise here.
//
// It returns the cut size and one minimum cut (the set of cut vertices).
// If a target is reachable from a source using only uncuttable vertices the
// cut is impossible; the function then returns (-1, nil).
func MinVertexCut(g *cdag.Graph, sources, targets []cdag.VertexID, opts CutOptions) (int, []cdag.VertexID) {
	n := g.NumVertices()
	if n == 0 || len(sources) == 0 || len(targets) == 0 {
		return 0, nil
	}
	isTarget := cdag.NewVertexSet(n)
	isTarget.AddAll(targets)
	isSource := cdag.NewVertexSet(n)
	isSource.AddAll(sources)
	// A vertex that is both a source and a target makes separation impossible
	// unless it can be cut; handle the degenerate overlap up front.
	for _, s := range sources {
		if isTarget.Contains(s) && opts.Uncuttable != nil && opts.Uncuttable(s) {
			return -1, nil
		}
	}

	// Node numbering: vIn = 2v, vOut = 2v+1, super-source = 2n, super-sink = 2n+1.
	net := newFlowNetwork(2*n + 2)
	s, t := 2*n, 2*n+1
	for v := 0; v < n; v++ {
		id := cdag.VertexID(v)
		capV := int64(1)
		if opts.Uncuttable != nil && opts.Uncuttable(id) {
			capV = flowInf
		}
		net.addEdge(2*v, 2*v+1, capV)
		for _, w := range g.Succ(id) {
			net.addEdge(2*v+1, 2*int(w), flowInf)
		}
	}
	for _, src := range sources {
		net.addEdge(s, 2*int(src), flowInf)
	}
	for _, tgt := range targets {
		net.addEdge(2*int(tgt)+1, t, flowInf)
	}
	flow := net.maxFlow(s, t)
	if flow >= flowInf {
		return -1, nil
	}
	// Recover the cut: a vertex v is a cut vertex when its vIn is reachable
	// from the source side of the residual graph but its vOut is not.
	reach := net.minCutSourceSide(s)
	var cut []cdag.VertexID
	for v := 0; v < n; v++ {
		if reach[2*v] && !reach[2*v+1] {
			cut = append(cut, cdag.VertexID(v))
		}
	}
	return int(flow), cut
}

// MaxVertexDisjointPaths returns the maximum number of fully vertex-disjoint
// directed paths from the source set to the target set (paths may not share
// any vertex, endpoints included).  By Menger's theorem this equals
// MinVertexCut with all vertices cuttable.
func MaxVertexDisjointPaths(g *cdag.Graph, sources, targets []cdag.VertexID) int {
	k, _ := MinVertexCut(g, sources, targets, CutOptions{})
	return k
}

// MinDominatorSize returns the size of a minimum dominator set of the vertex
// set target: the smallest set D of vertices such that every path from an
// input vertex of g to a vertex of target contains a vertex of D
// (Definition 3 of Hong & Kung).  Dominator vertices may be inputs or members
// of target.  Vertices of target with no path from any input are ignored (no
// path needs covering).  The companion minimum dominator set is returned too.
func MinDominatorSize(g *cdag.Graph, target *cdag.VertexSet) (int, []cdag.VertexID) {
	inputs := g.Inputs()
	if len(inputs) == 0 || target.Len() == 0 {
		return 0, nil
	}
	k, cut := MinVertexCut(g, inputs, target.Elements(), CutOptions{})
	if k < 0 {
		// Cannot happen with all vertices cuttable, but keep the API total.
		return 0, nil
	}
	return k, cut
}
