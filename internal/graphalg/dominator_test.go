package graphalg

import (
	"math/rand"
	"sort"
	"testing"

	"cdagio/internal/cdag"
	"cdagio/internal/gen"
)

// dominates reports whether removing dom from g disconnects every path from a
// tagged input to the target set, checked by a plain forward traversal.
func dominates(g *cdag.Graph, dom []cdag.VertexID, target *cdag.VertexSet) bool {
	removed := cdag.NewVertexSet(g.NumVertices())
	removed.AddAll(dom)
	seen := cdag.NewVertexSet(g.NumVertices())
	var stack []cdag.VertexID
	for _, in := range g.Inputs() {
		if !removed.Contains(in) {
			stack = append(stack, in)
		}
	}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if !seen.Add(u) {
			continue
		}
		if target.Contains(u) {
			return false
		}
		for _, w := range g.Succ(u) {
			if !removed.Contains(w) && !seen.Contains(w) {
				stack = append(stack, w)
			}
		}
	}
	return true
}

// TestMinDominatorStripEquivalenceRandomDAGs pins the strip-local dominator
// engine against the historical full-network route on randomized DAGs: the
// bound values must be bit-identical, and the returned witness must be a
// genuine dominator of matching size, sorted by vertex ID.
func TestMinDominatorStripEquivalenceRandomDAGs(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 60; trial++ {
		n := 8 + rng.Intn(40)
		g := randomDAG(rng, n, 2*n)
		for v := 0; v < n; v++ {
			if g.InDegree(cdag.VertexID(v)) == 0 {
				g.TagInput(cdag.VertexID(v))
			}
		}
		target := cdag.NewVertexSet(n)
		for v := 0; v < n; v++ {
			if rng.Intn(4) == 0 {
				target.Add(cdag.VertexID(v))
			}
		}
		if target.Len() == 0 {
			target.Add(cdag.VertexID(n - 1))
		}
		wantK, wantDom := MinDominatorSizeFull(g, target)
		gotK, dom := MinDominatorSize(g, target)
		if gotK != wantK {
			t.Fatalf("trial %d: strip dominator size %d, full-network %d", trial, gotK, wantK)
		}
		if len(dom) != gotK {
			t.Fatalf("trial %d: witness has %d vertices, bound is %d", trial, len(dom), gotK)
		}
		if !sort.SliceIsSorted(dom, func(i, j int) bool { return dom[i] < dom[j] }) {
			t.Fatalf("trial %d: witness not sorted: %v", trial, dom)
		}
		if !dominates(g, dom, target) {
			t.Fatalf("trial %d: witness %v does not dominate %v", trial, dom, target.Elements())
		}
		if !dominates(g, wantDom, target) {
			t.Fatalf("trial %d: full-network witness %v does not dominate", trial, wantDom)
		}
	}
}

// TestMinDominatorStripPooledReuse drives repeated dominator queries with
// alternating targets through one pooled solver and a shared SolverPool,
// checking every answer against the full-network reference: the strip remap
// and co-reachability stamps must never leak between queries.
func TestMinDominatorStripPooledReuse(t *testing.T) {
	g := gen.MatMul(4).Graph
	pool := NewSolverPool(g)
	rng := rand.New(rand.NewSource(5))
	n := g.NumVertices()
	for trial := 0; trial < 30; trial++ {
		target := cdag.NewVertexSet(n)
		if trial%3 == 0 {
			target.AddAll(g.Outputs())
		} else {
			for i := 0; i < 1+rng.Intn(6); i++ {
				target.Add(cdag.VertexID(rng.Intn(n)))
			}
		}
		wantK, _ := MinDominatorSizeFull(g, target)
		gotK, dom := pool.MinDominatorSize(target)
		if gotK != wantK {
			t.Fatalf("trial %d: pooled strip size %d, full-network %d", trial, gotK, wantK)
		}
		if len(dom) != gotK || !dominates(g, dom, target) {
			t.Fatalf("trial %d: invalid witness %v for size %d", trial, dom, gotK)
		}
	}
}

// TestMinDominatorStripDegenerate covers the corner cases the strip builder
// short-circuits: empty targets, untagged graphs, targets unreachable from
// every input, and input vertices that are themselves targets.
func TestMinDominatorStripDegenerate(t *testing.T) {
	// Two disjoint chains, only one rooted at a tagged input.
	g := cdag.NewGraph("deg", 6)
	g.AddVertices(6)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(3, 4)
	g.AddEdge(4, 5)
	g.TagInput(0)

	if k, dom := MinDominatorSize(g, cdag.NewVertexSet(6)); k != 0 || dom != nil {
		t.Fatalf("empty target: (%d, %v), want (0, nil)", k, dom)
	}
	// Target on the chain with no tagged input: no path needs covering.
	if k, dom := MinDominatorSize(g, cdag.NewVertexSetOf(6, 5)); k != 0 || dom != nil {
		t.Fatalf("unreachable target: (%d, %v), want (0, nil)", k, dom)
	}
	// Target on the rooted chain: one vertex suffices.
	if k, _ := MinDominatorSize(g, cdag.NewVertexSetOf(6, 2)); k != 1 {
		t.Fatalf("chain target: size %d, want 1", k)
	}
	// An input that is itself the target must be its own dominator.
	if k, dom := MinDominatorSize(g, cdag.NewVertexSetOf(6, 0)); k != 1 || len(dom) != 1 || dom[0] != 0 {
		t.Fatalf("input target: (%d, %v), want (1, [0])", k, dom)
	}
}
