package graphalg

import (
	"fmt"

	"cdagio/internal/cdag"
)

// ConvexCut is a partition (S, T) of the vertices of a CDAG such that there
// is no edge from T to S (equivalently, S is closed under predecessors).  In
// the terminology of Elango et al. Section 3.3, a convex cut associated with
// a vertex x has S ⊇ {x} ∪ Anc(x) and T ⊇ Desc(x).
type ConvexCut struct {
	S *cdag.VertexSet
	T *cdag.VertexSet
}

// Validate checks the defining properties of the convex cut for graph g:
// S and T partition V and no edge runs from T to S.
func (c ConvexCut) Validate(g *cdag.Graph) error {
	n := g.NumVertices()
	if c.S.Universe() != n || c.T.Universe() != n {
		return fmt.Errorf("graphalg: cut universes %d/%d do not match |V|=%d",
			c.S.Universe(), c.T.Universe(), n)
	}
	if c.S.Len()+c.T.Len() != n || c.S.Intersects(c.T) {
		return fmt.Errorf("graphalg: S and T do not partition V (|S|=%d |T|=%d |V|=%d)",
			c.S.Len(), c.T.Len(), n)
	}
	succOff, succVal := g.SuccessorCSR()
	for _, v := range c.T.Elements() {
		for _, w := range succVal[succOff[v]:succOff[v+1]] {
			if c.S.Contains(w) {
				return fmt.Errorf("graphalg: edge %d->%d runs from T to S", v, w)
			}
		}
	}
	return nil
}

// Boundary returns the set of vertices of S that have at least one successor
// in T — the wavefront induced by the cut.
func (c ConvexCut) Boundary(g *cdag.Graph) *cdag.VertexSet {
	b := cdag.NewVertexSet(g.NumVertices())
	succOff, succVal := g.SuccessorCSR()
	for _, v := range c.S.Elements() {
		for _, w := range succVal[succOff[v]:succOff[v+1]] {
			if c.T.Contains(w) {
				b.Add(v)
				break
			}
		}
	}
	return b
}

// ConvexCutAround returns the "earliest" valid convex cut associated with
// vertex x: S = {x} ∪ Anc(x) and T = V \ S.  Because ancestor sets are closed
// under predecessors this is always a valid convex cut, and it is the one
// induced by a schedule that fires x as soon as all its ancestors have fired.
func ConvexCutAround(g *cdag.Graph, x cdag.VertexID) ConvexCut {
	s := Ancestors(g, x)
	s.Add(x)
	return ConvexCut{S: s, T: s.Complement()}
}

// LatestConvexCutAround returns the "latest" valid convex cut associated with
// vertex x: T = Desc(x) and S = V \ T.  It corresponds to a schedule that
// postpones x's descendants as long as possible.
func LatestConvexCutAround(g *cdag.Graph, x cdag.VertexID) ConvexCut {
	t := Descendants(g, x)
	return ConvexCut{S: t.Complement(), T: t}
}

// MinWavefrontLowerBound returns a lower bound on the size of the minimum
// cardinality wavefront induced by x (Section 3.3): the minimum vertex cut
// separating {x} ∪ Anc(x) from Desc(x) when no vertex of Desc(x) may be
// chosen as a cut vertex.  Every valid convex cut (S_x, T_x) has a boundary
// that lies inside S_x — hence outside Desc(x) ⊆ T_x — and that intersects
// every path from {x} ∪ Anc(x) to Desc(x), so its size is at least this cut
// value; and the wavefront always contains x, so the bound is never smaller
// than 1.
//
// This is the reference implementation: it materializes the ancestor and
// descendant sets and solves on the full 2|V|+2-node vertex-split network via
// MinVertexCut.  Production paths (the w^max engine, wavefront.MinWavefrontAt)
// use the strip-local CutSolver engine instead, which computes the identical
// value at a cost proportional to the cone boundary and free strip; tests pin
// the two against each other.
func MinWavefrontLowerBound(g *cdag.Graph, x cdag.VertexID) int {
	desc := Descendants(g, x)
	if desc.Len() == 0 {
		return 1
	}
	anc := Ancestors(g, x)
	anc.Add(x)
	k, _ := MinVertexCut(g, anc.Elements(), desc.Elements(), CutOptions{
		UncuttableSet: desc,
	})
	if k < 1 {
		k = 1
	}
	return k
}

// WavefrontUpperBound returns the size of the boundary of the earliest and
// latest convex cuts around x, whichever is smaller, always counting x itself
// as part of the wavefront.  This is an achievable wavefront size, hence an
// upper bound on the minimum wavefront.
func WavefrontUpperBound(g *cdag.Graph, x cdag.VertexID) int {
	best := -1
	for _, cut := range []ConvexCut{ConvexCutAround(g, x), LatestConvexCutAround(g, x)} {
		b := cut.Boundary(g)
		size := b.Len()
		if !b.Contains(x) && cut.S.Contains(x) {
			size++ // x is in the wavefront by definition even without successors in T
		}
		if best < 0 || size < best {
			best = size
		}
	}
	if best < 1 {
		best = 1
	}
	return best
}

// MaxMinWavefrontLowerBound returns max_x of MinWavefrontLowerBound(g, x)
// over the supplied candidate vertices (all vertices when candidates is nil).
// This is a lower bound on w^max_G from Section 3.3 and feeds Lemma 2.
// It also reports a vertex achieving the maximum.
//
// The search runs on the parallel pruned engine with default options; see
// MaxMinWavefrontLowerBoundOpts for knobs and the exact determinism contract,
// and MaxMinWavefrontLowerBoundSerial for the straightforward reference scan.
func MaxMinWavefrontLowerBound(g *cdag.Graph, candidates []cdag.VertexID) (int, cdag.VertexID) {
	return MaxMinWavefrontLowerBoundOpts(g, candidates, WMaxOptions{})
}

// MaxMinWavefrontLowerBoundSerial is the reference implementation of the
// w^max candidate search: a serial scan solving one fresh min-cut instance
// per candidate.  It returns the first candidate attaining the maximum.  Tests
// and benchmarks compare the parallel engine against it.
func MaxMinWavefrontLowerBoundSerial(g *cdag.Graph, candidates []cdag.VertexID) (int, cdag.VertexID) {
	if candidates == nil {
		candidates = g.Vertices()
	}
	best, bestV := 0, cdag.InvalidVertex
	for _, x := range candidates {
		if w := MinWavefrontLowerBound(g, x); w > best {
			best, bestV = w, x
		}
	}
	return best, bestV
}
