package graphalg

import (
	"testing"

	"cdagio/internal/cdag"
	"cdagio/internal/gen"
)

// generatorGraphs builds one modest instance of every CDAG family in
// internal/gen, exercising the search engine across the full range of graph
// shapes (chains, trees, grids, butterflies, Krylov iterations).
func generatorGraphs(t testing.TB) map[string]*cdag.Graph {
	t.Helper()
	return map[string]*cdag.Graph{
		"chain":       gen.Chain(30),
		"indepChains": gen.IndependentChains(3, 8),
		"reduction":   gen.ReductionTree(32),
		"dot":         gen.DotProduct(24),
		"saxpy":       gen.Saxpy(20),
		"outer":       gen.OuterProduct(8),
		"matmul":      gen.MatMul(5).Graph,
		"composite":   gen.Composite(6).Graph,
		"fft":         gen.FFT(16),
		"binomial":    gen.BinomialTree(4),
		"pyramid":     gen.Pyramid(6),
		"jacobi1d":    gen.Jacobi(1, 12, 4, gen.StencilStar).Graph,
		"jacobi2d":    gen.Jacobi(2, 6, 3, gen.StencilBox).Graph,
		"heat1d":      gen.HeatEquation1D(12, 3).Graph,
		"cg":          gen.CG(2, 4, 2).Graph,
		"gmres":       gen.GMRES(2, 4, 2).Graph,
		"spmv": gen.SpMV(4, [][]int{
			{0, 1}, {1, 2, 3}, {0, 3}, {2},
		}).Graph,
	}
}

// TestParallelWMaxMatchesSerial checks, for every generator family, that the
// parallel pruned engine returns exactly the serial all-candidates bound under
// every combination of worker count and pruning mode, and that the reported
// witness vertex attains the bound.
func TestParallelWMaxMatchesSerial(t *testing.T) {
	for name, g := range generatorGraphs(t) {
		wantW, wantV := MaxMinWavefrontLowerBoundSerial(g, nil)
		if wantV == cdag.InvalidVertex {
			t.Fatalf("%s: serial search found no witness", name)
		}
		for _, conc := range []int{1, 2, 4, 7} {
			for _, noPrune := range []bool{false, true} {
				gotW, gotV := MaxMinWavefrontLowerBoundOpts(g, nil, WMaxOptions{
					Concurrency:    conc,
					DisablePruning: noPrune,
				})
				if gotW != wantW {
					t.Errorf("%s (conc=%d, noPrune=%v): bound = %d, serial = %d",
						name, conc, noPrune, gotW, wantW)
				}
				if gotV != wantV {
					// Strict pruning never skips a candidate that could tie
					// the maximum, so the witness (earliest maximizer in
					// candidate order) must match the serial scan exactly in
					// every mode.
					t.Errorf("%s (conc=%d, noPrune=%v): witness = %d, serial = %d",
						name, conc, noPrune, gotV, wantV)
				}
			}
		}
	}
}

// TestParallelWMaxSubsetCandidates checks agreement on explicit candidate
// subsets, including single candidates and empty candidate lists.
func TestParallelWMaxSubsetCandidates(t *testing.T) {
	g := gen.Jacobi(1, 10, 3, gen.StencilStar).Graph
	all := g.Vertices()
	subsets := [][]cdag.VertexID{
		{all[0]},
		{all[len(all)-1]},
		all[:5],
		all[len(all)/2:],
		{all[3], all[17], all[9]},
	}
	for i, cs := range subsets {
		wantW, wantV := MaxMinWavefrontLowerBoundSerial(g, cs)
		gotW, gotV := MaxMinWavefrontLowerBoundOpts(g, cs, WMaxOptions{Concurrency: 3})
		if gotW != wantW || gotV != wantV {
			t.Errorf("subset %d: (bound, witness) = (%d, %d), want (%d, %d)", i, gotW, gotV, wantW, wantV)
		}
	}
	if w, v := MaxMinWavefrontLowerBoundOpts(g, []cdag.VertexID{}, WMaxOptions{}); w != 0 || v != cdag.InvalidVertex {
		t.Errorf("empty candidates: got (%d, %d), want (0, invalid)", w, v)
	}
}

// TestScratchUpperBoundMatches checks the epoch-stamped scratch reimplementation
// of WavefrontUpperBound against the set-based original on every generator, on
// every vertex.  The prune pass is only exact if this upper bound is.
func TestScratchUpperBoundMatches(t *testing.T) {
	for name, g := range generatorGraphs(t) {
		sc := NewCutSolver()
		sc.ensureGraph(g)
		for _, x := range g.Vertices() {
			sc.explore(x)
			got := sc.upperBound(x)
			want := WavefrontUpperBound(g, x)
			if got != want {
				t.Fatalf("%s vertex %d: scratch upper bound %d, reference %d", name, x, got, want)
			}
		}
	}
}

// TestScratchMinWavefrontMatches checks the strip-local flow path against the
// full-network reference MinWavefrontLowerBound vertex by vertex, including
// repeated reuse of the same solver across candidates (the reset path).
func TestScratchMinWavefrontMatches(t *testing.T) {
	for name, g := range generatorGraphs(t) {
		sc := NewCutSolver()
		sc.ensureGraph(g)
		for _, x := range g.Vertices() {
			sc.explore(x)
			got := sc.minWavefront(x)
			want := MinWavefrontLowerBound(g, x)
			if got != want {
				t.Fatalf("%s vertex %d: scratch min wavefront %d, reference %d", name, x, got, want)
			}
		}
	}
}
