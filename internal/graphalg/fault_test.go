package graphalg

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"cdagio/internal/fault"
	"cdagio/internal/gen"
)

// TestWMaxWorkerPanicIsIsolated forces a panic inside one w^max worker and
// requires that (a) the search returns a *fault.PanicError instead of
// crashing the process, and (b) a subsequent search on the same graph and
// pool is clean and bit-identical to an uninjected baseline — the poisoned
// solver must not have leaked back into the pool.
func TestWMaxWorkerPanicIsIsolated(t *testing.T) {
	g := gen.Jacobi(2, 10, 4, gen.StencilBox).Graph
	pool := NewSolverPool(g)

	wantW, wantAt := MaxMinWavefrontLowerBoundOpts(g, nil, WMaxOptions{Concurrency: 4})

	var fired atomic.Int64
	restore := fault.SetHook(func(point string) {
		if point == fault.PointWMaxWorker && fired.Add(1) == 3 {
			panic("injected wmax worker crash")
		}
	})
	_, _, err := MaxMinWavefrontLowerBoundCtx(context.Background(), g, nil,
		WMaxOptions{Concurrency: 4, Pool: pool})
	restore()
	var pe *fault.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("injected panic surfaced as %v, want *fault.PanicError", err)
	}
	if pe.Label != fault.PointWMaxWorker {
		t.Fatalf("PanicError label %q, want %q", pe.Label, fault.PointWMaxWorker)
	}

	for i := 0; i < 2; i++ {
		w, at, err := MaxMinWavefrontLowerBoundCtx(context.Background(), g, nil,
			WMaxOptions{Concurrency: 4, Pool: pool})
		if err != nil {
			t.Fatalf("post-crash search %d: %v", i, err)
		}
		if w != wantW || at != wantAt {
			t.Fatalf("post-crash search %d = (%d, %d), want (%d, %d)", i, w, at, wantW, wantAt)
		}
	}
}

// TestWMaxLegacyEntryPropagatesPanic pins the legacy (no-error) entry point's
// contract: a worker panic propagates instead of being swallowed into a
// zero bound.
func TestWMaxLegacyEntryPropagatesPanic(t *testing.T) {
	g := gen.Chain(16)
	restore := fault.SetHook(func(point string) {
		if point == fault.PointWMaxWorker {
			panic("injected")
		}
	})
	defer restore()
	defer func() {
		if recover() == nil {
			t.Fatalf("legacy entry point swallowed the worker panic")
		}
	}()
	MaxMinWavefrontLowerBoundOpts(g, nil, WMaxOptions{Concurrency: 2})
}

// TestSolverPoolLimit checks the in-flight cap: Get blocks at the limit until
// a Put or Discard frees a slot, and InUse tracks occupancy.
func TestSolverPoolLimit(t *testing.T) {
	g := gen.Chain(8)
	pool := NewSolverPool(g)
	pool.SetLimit(2)
	if pool.Limit() != 2 {
		t.Fatalf("Limit = %d, want 2", pool.Limit())
	}
	a, b := pool.Get(), pool.Get()
	if pool.InUse() != 2 {
		t.Fatalf("InUse = %d, want 2", pool.InUse())
	}
	acquired := make(chan *CutSolver)
	go func() { acquired <- pool.Get() }()
	select {
	case <-acquired:
		t.Fatalf("third Get did not block at limit 2")
	default:
	}
	pool.Put(a)
	c := <-acquired
	if pool.InUse() != 2 {
		t.Fatalf("InUse after handoff = %d, want 2", pool.InUse())
	}
	pool.Discard(b)
	pool.Put(c)
	if pool.InUse() != 0 {
		t.Fatalf("InUse after release = %d, want 0", pool.InUse())
	}
	// The capped pool still serves searches correctly even when the worker
	// count exceeds the cap (excess workers wait their turn).
	w1, at1 := MaxMinWavefrontLowerBoundOpts(g, nil, WMaxOptions{Concurrency: 4, Pool: pool})
	w2, at2 := MaxMinWavefrontLowerBoundOpts(g, nil, WMaxOptions{Concurrency: 1})
	if w1 != w2 || at1 != at2 {
		t.Fatalf("capped pool search = (%d,%d), want (%d,%d)", w1, at1, w2, at2)
	}
	if pool.InUse() != 0 {
		t.Fatalf("InUse after search = %d, want 0 (leaked slots)", pool.InUse())
	}
}
