package graphalg

import (
	"sort"

	"cdagio/internal/cdag"
)

// MinDominatorSize computes a minimum dominator of the target set on a
// strip-local flow network, the same contraction idea the Lemma 2 wavefront
// instances use: instead of materializing the full 2|V|+2-node vertex-split
// network, only the dominator strip — the vertices lying on some input→target
// path — becomes network nodes.
//
// Construction: a backward sweep from the target stamps the vertices with a
// directed path into it; a forward sweep from the inputs then walks only those
// vertices, assigning dense network ids as it goes.  The super source feeds
// every live input's vIn, every materialized vertex gets a unit split arc
// vIn→vOut (dominator vertices may be inputs or targets, so every strip
// vertex stays cuttable), target members get a vOut→sink arc, and CDAG edges
// between strip vertices become infinite arcs.  Exactness: every input→target
// path of g lies entirely inside the strip (each of its vertices is
// input-reachable and target-co-reachable), so the strip network carries
// exactly the paths the full network carries; vertices outside the strip can
// carry no flow in the full network and therefore never participate in a
// minimum cut that this instance cannot also express.  The bound value is
// identical to the full-network route (MinDominatorSizeFull); only the cost —
// O(strip) instead of O(V+E) per call — and, on graphs with several minimum
// dominators, the particular witness set may differ.
//
// The returned cut is sorted by vertex ID (a canonical representative,
// independent of traversal order).
func (cs *CutSolver) MinDominatorSize(g *cdag.Graph, target *cdag.VertexSet) (int, []cdag.VertexID) {
	cs.ensureGraph(g)
	inputs := g.Inputs()
	if len(inputs) == 0 || target.Len() == 0 {
		return 0, nil
	}
	e := cs.nextEpoch()
	sOff, sVal := cs.succOff, cs.succVal
	pOff, pVal := cs.predOff, cs.predVal

	// Backward sweep: coMark stamps the vertices with a directed path into the
	// target (members included); seenMark stamps target membership so the
	// forward sweep can attach sink arcs without set lookups.
	targets := target.Elements()
	stack := cs.stack[:0]
	for _, t := range targets {
		cs.seenMark[t] = e
		if cs.coMark[t] != e {
			cs.coMark[t] = e
			stack = append(stack, t)
		}
	}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range pVal[pOff[u]:pOff[u+1]] {
			if cs.coMark[p] != e {
				cs.coMark[p] = e
				stack = append(stack, p)
			}
		}
	}

	// Forward sweep from the live inputs, staging the strip network.
	// Node ids: super source 0, super sink 1, vIn = 2·local+2, vOut = 2·local+3.
	f := &cs.strip
	f.resetStage()
	cnt := int32(0)
	strip := cs.desc[:0] // local id → graph vertex, reusing the cone scratch
	for _, in := range inputs {
		if cs.coMark[in] != e || cs.mapEp[in] == e {
			continue // no path into the target, or an input listed twice
		}
		cs.mapEp[in] = e
		cs.localOf[in] = cnt
		strip = append(strip, in)
		f.stageEdge(0, 2*cnt+2, flowInf) // super source → inIn
		cnt++
		stack = append(stack, in)
	}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		out := 2*cs.localOf[u] + 3
		f.stageEdge(out-1, out, 1) // unit split arc: every strip vertex is cuttable
		if cs.seenMark[u] == e {
			f.stageEdge(out, 1, flowInf) // target member → super sink
		}
		for _, w := range sVal[sOff[u]:sOff[u+1]] {
			if cs.coMark[w] != e {
				continue // dead: no path into the target
			}
			wl, fresh := cs.stripLocal(w, e, cnt)
			if fresh {
				cnt++
				strip = append(strip, w)
				stack = append(stack, w)
			}
			f.stageEdge(out, 2*wl+2, flowInf)
		}
	}
	cs.desc, cs.stack = strip[:0], stack[:0]
	if cnt == 0 {
		// No input reaches the target: nothing to dominate.
		return 0, nil
	}
	f.buildFresh(int(2 + 2*cnt))
	flow := f.maxFlow(0, 1)
	// Every source→sink path crosses a unit split arc, so flow < flowInf.
	f.residualReach(0)
	var cut []cdag.VertexID
	for li, v := range strip {
		if f.reached(int32(2*li+2)) && !f.reached(int32(2*li+3)) {
			cut = append(cut, v)
		}
	}
	sort.Slice(cut, func(i, j int) bool { return cut[i] < cut[j] })
	return int(flow), cut
}

// MinDominatorSizeFull is the historical full-network route to the dominator
// bound: a MinVertexCut from the inputs to the target on the cached static
// vertex-split network.  It is retained as the reference the strip-local
// MinDominatorSize is tested against; the bound values are always identical.
func MinDominatorSizeFull(g *cdag.Graph, target *cdag.VertexSet) (int, []cdag.VertexID) {
	inputs := g.Inputs()
	if len(inputs) == 0 || target.Len() == 0 {
		return 0, nil
	}
	k, cut := MinVertexCut(g, inputs, target.Elements(), CutOptions{})
	if k < 0 {
		return 0, nil
	}
	return k, cut
}
