package graphalg

import (
	"testing"
	"testing/quick"

	"cdagio/internal/cdag"
)

// chain builds a path graph v0 -> v1 -> ... -> v_{n-1}.
func chain(n int) *cdag.Graph {
	g := cdag.NewGraph("chain", n)
	g.AddVertices(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(cdag.VertexID(i), cdag.VertexID(i+1))
	}
	return g
}

// diamond builds a -> {b,c} -> d.
func diamond() (*cdag.Graph, [4]cdag.VertexID) {
	g := cdag.NewGraph("diamond", 4)
	a := g.AddInput("a")
	b := g.AddVertex("b")
	c := g.AddVertex("c")
	d := g.AddOutput("d")
	g.AddEdge(a, b)
	g.AddEdge(a, c)
	g.AddEdge(b, d)
	g.AddEdge(c, d)
	return g, [4]cdag.VertexID{a, b, c, d}
}

// butterfly builds a 2-input, 2-output butterfly:
// in0,in1 -> m0,m1 (complete bipartite) -> out0,out1 (complete bipartite).
func butterfly() (*cdag.Graph, []cdag.VertexID) {
	g := cdag.NewGraph("butterfly", 6)
	in0 := g.AddInput("in0")
	in1 := g.AddInput("in1")
	m0 := g.AddVertex("m0")
	m1 := g.AddVertex("m1")
	out0 := g.AddOutput("out0")
	out1 := g.AddOutput("out1")
	for _, i := range []cdag.VertexID{in0, in1} {
		for _, m := range []cdag.VertexID{m0, m1} {
			g.AddEdge(i, m)
		}
	}
	for _, m := range []cdag.VertexID{m0, m1} {
		for _, o := range []cdag.VertexID{out0, out1} {
			g.AddEdge(m, o)
		}
	}
	return g, []cdag.VertexID{in0, in1, m0, m1, out0, out1}
}

func TestAncestorsDescendants(t *testing.T) {
	g, v := diamond()
	if d := Descendants(g, v[0]); d.Len() != 3 {
		t.Errorf("Descendants(a) = %v", d.Elements())
	}
	if d := Descendants(g, v[3]); d.Len() != 0 {
		t.Errorf("Descendants(d) = %v", d.Elements())
	}
	if a := Ancestors(g, v[3]); a.Len() != 3 {
		t.Errorf("Ancestors(d) = %v", a.Elements())
	}
	if a := Ancestors(g, v[1]); a.Len() != 1 || !a.Contains(v[0]) {
		t.Errorf("Ancestors(b) = %v", a.Elements())
	}
	if !HasPath(g, v[0], v[3]) || HasPath(g, v[1], v[2]) || HasPath(g, v[3], v[0]) {
		t.Errorf("HasPath wrong")
	}
	if HasPath(g, v[0], v[0]) {
		t.Errorf("HasPath(v,v) should be false (length >= 1 required)")
	}
}

func TestReachableFromCoReachable(t *testing.T) {
	g, v := diamond()
	r := ReachableFrom(g, []cdag.VertexID{v[1]})
	if r.Len() != 2 || !r.Contains(v[1]) || !r.Contains(v[3]) {
		t.Errorf("ReachableFrom(b) = %v", r.Elements())
	}
	c := CoReachableTo(g, []cdag.VertexID{v[2]})
	if c.Len() != 2 || !c.Contains(v[0]) || !c.Contains(v[2]) {
		t.Errorf("CoReachableTo(c) = %v", c.Elements())
	}
}

func TestTransitiveClosure(t *testing.T) {
	g, v := diamond()
	tc := TransitiveClosure(g)
	if tc[v[0]].Len() != 3 || tc[v[1]].Len() != 1 || tc[v[3]].Len() != 0 {
		t.Errorf("TransitiveClosure wrong: %v %v %v",
			tc[v[0]].Elements(), tc[v[1]].Elements(), tc[v[3]].Elements())
	}
	// Closure must agree with direct Descendants computation.
	for _, u := range g.Vertices() {
		if !tc[u].Equal(Descendants(g, u)) {
			t.Errorf("closure mismatch at %d", u)
		}
	}
}

func TestMinVertexCutDiamond(t *testing.T) {
	g, v := diamond()
	// Separating a from d requires either {a}, {d}, or {b,c}; minimum is 1.
	k, cut := MinVertexCut(g, []cdag.VertexID{v[0]}, []cdag.VertexID{v[3]}, CutOptions{})
	if k != 1 {
		t.Fatalf("min cut = %d, want 1", k)
	}
	if len(cut) != 1 {
		t.Fatalf("cut set = %v", cut)
	}
	// Forbid cutting a and d: the cut must be {b, c}.
	uncut := func(u cdag.VertexID) bool { return u == v[0] || u == v[3] }
	k2, cut2 := MinVertexCut(g, []cdag.VertexID{v[0]}, []cdag.VertexID{v[3]}, CutOptions{Uncuttable: uncut})
	if k2 != 2 || len(cut2) != 2 {
		t.Fatalf("restricted min cut = %d (%v), want 2", k2, cut2)
	}
}

func TestMinVertexCutImpossible(t *testing.T) {
	g := chain(2)
	all := func(cdag.VertexID) bool { return true }
	k, _ := MinVertexCut(g, []cdag.VertexID{0}, []cdag.VertexID{1}, CutOptions{Uncuttable: all})
	if k != -1 {
		t.Fatalf("expected impossible cut, got %d", k)
	}
	// Source equals target and is uncuttable.
	k2, _ := MinVertexCut(g, []cdag.VertexID{0}, []cdag.VertexID{0}, CutOptions{Uncuttable: all})
	if k2 != -1 {
		t.Fatalf("expected impossible overlap cut, got %d", k2)
	}
}

func TestMinVertexCutTrivial(t *testing.T) {
	g := chain(3)
	if k, _ := MinVertexCut(g, nil, []cdag.VertexID{2}, CutOptions{}); k != 0 {
		t.Errorf("empty sources should give 0, got %d", k)
	}
	if k, _ := MinVertexCut(g, []cdag.VertexID{0}, nil, CutOptions{}); k != 0 {
		t.Errorf("empty targets should give 0, got %d", k)
	}
	// Unreachable target: cut of size 0.
	g2 := cdag.NewGraph("two", 2)
	g2.AddVertices(2)
	if k, _ := MinVertexCut(g2, []cdag.VertexID{0}, []cdag.VertexID{1}, CutOptions{}); k != 0 {
		t.Errorf("unreachable target should give 0, got %d", k)
	}
}

func TestMaxVertexDisjointPathsButterfly(t *testing.T) {
	g, v := butterfly()
	// From the two inputs to the two outputs there are 2 vertex-disjoint paths
	// (limited by the 2 middle vertices).
	if k := MaxVertexDisjointPaths(g, []cdag.VertexID{v[0], v[1]}, []cdag.VertexID{v[4], v[5]}); k != 2 {
		t.Fatalf("disjoint paths = %d, want 2", k)
	}
	// From one input to the outputs only 1 fully disjoint path exists
	// (they'd share the input).
	if k := MaxVertexDisjointPaths(g, []cdag.VertexID{v[0]}, []cdag.VertexID{v[4], v[5]}); k != 1 {
		t.Fatalf("disjoint paths from single input = %d, want 1", k)
	}
}

func TestMinDominatorSize(t *testing.T) {
	g, v := butterfly()
	// Dominating the outputs: the 2 middle vertices suffice (or the 2 inputs).
	target := cdag.NewVertexSetOf(g.NumVertices(), v[4], v[5])
	k, dom := MinDominatorSize(g, target)
	if k != 2 || len(dom) != 2 {
		t.Fatalf("dominator size = %d (%v), want 2", k, dom)
	}
	// Dominating a single middle vertex: 1 (itself or one input? no — both
	// inputs reach it, so either {m0} or {in0,in1}; min is 1).
	target2 := cdag.NewVertexSetOf(g.NumVertices(), v[2])
	if k2, _ := MinDominatorSize(g, target2); k2 != 1 {
		t.Fatalf("dominator size = %d, want 1", k2)
	}
	// Empty target.
	if k3, _ := MinDominatorSize(g, cdag.NewVertexSet(g.NumVertices())); k3 != 0 {
		t.Fatalf("empty target dominator = %d, want 0", k3)
	}
	// Graph with no inputs.
	g2 := chain(3)
	if k4, _ := MinDominatorSize(g2, cdag.NewVertexSetOf(3, 2)); k4 != 0 {
		t.Fatalf("no-input dominator = %d, want 0", k4)
	}
}

func TestDominatorVerification(t *testing.T) {
	// Verify the returned dominator actually dominates: removing it must
	// disconnect all inputs from the target set.
	g, v := butterfly()
	target := cdag.NewVertexSetOf(g.NumVertices(), v[4], v[5])
	_, dom := MinDominatorSize(g, target)
	removed := cdag.NewVertexSet(g.NumVertices())
	removed.AddAll(dom)
	// BFS from inputs avoiding removed vertices must not reach the target.
	stack := []cdag.VertexID{}
	for _, in := range g.Inputs() {
		if !removed.Contains(in) {
			stack = append(stack, in)
		}
	}
	seen := cdag.NewVertexSet(g.NumVertices())
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if !seen.Add(u) {
			continue
		}
		if target.Contains(u) {
			t.Fatalf("dominator %v does not dominate: reached %d", dom, u)
		}
		for _, w := range g.Successors(u) {
			if !removed.Contains(w) {
				stack = append(stack, w)
			}
		}
	}
}

func TestConvexCutAround(t *testing.T) {
	g, v := diamond()
	cut := ConvexCutAround(g, v[1]) // S = {a, b}
	if err := cut.Validate(g); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if cut.S.Len() != 2 || !cut.S.Contains(v[0]) || !cut.S.Contains(v[1]) {
		t.Fatalf("S = %v", cut.S.Elements())
	}
	b := cut.Boundary(g)
	// Both a (edge to c) and b (edge to d) are boundary vertices.
	if b.Len() != 2 {
		t.Fatalf("boundary = %v", b.Elements())
	}

	late := LatestConvexCutAround(g, v[1]) // T = {d}, S = {a,b,c}
	if err := late.Validate(g); err != nil {
		t.Fatalf("Validate late: %v", err)
	}
	if late.T.Len() != 1 || !late.T.Contains(v[3]) {
		t.Fatalf("late T = %v", late.T.Elements())
	}
	lb := late.Boundary(g)
	if lb.Len() != 2 || !lb.Contains(v[1]) || !lb.Contains(v[2]) {
		t.Fatalf("late boundary = %v", lb.Elements())
	}
}

func TestConvexCutValidateErrors(t *testing.T) {
	g, v := diamond()
	// Non-partitioning sets.
	s := cdag.NewVertexSetOf(4, v[0])
	tt := cdag.NewVertexSetOf(4, v[0], v[1], v[2], v[3])
	if err := (ConvexCut{S: s, T: tt}).Validate(g); err == nil {
		t.Errorf("expected error for overlapping cut")
	}
	// Edge from T to S: S = {b, d}? d has no out-edges; use S = {d}, T = rest:
	// edges b->d and c->d run from T to S.
	s2 := cdag.NewVertexSetOf(4, v[3])
	t2 := s2.Complement()
	if err := (ConvexCut{S: s2, T: t2}).Validate(g); err == nil {
		t.Errorf("expected error for non-convex cut")
	}
	// Wrong universe.
	s3 := cdag.NewVertexSet(3)
	t3 := cdag.NewVertexSet(3)
	if err := (ConvexCut{S: s3, T: t3}).Validate(g); err == nil {
		t.Errorf("expected error for wrong universe")
	}
}

func TestMinWavefrontLowerBound(t *testing.T) {
	g, v := diamond()
	// Around a: Desc(a) = {b,c,d}; only 1 disjoint path can leave a.
	if w := MinWavefrontLowerBound(g, v[0]); w != 1 {
		t.Errorf("wavefront LB around a = %d, want 1", w)
	}
	// Around d: no descendants, wavefront is {d}.
	if w := MinWavefrontLowerBound(g, v[3]); w != 1 {
		t.Errorf("wavefront LB around d = %d, want 1", w)
	}

	// Reduction-style CDAG: two "vectors" of size k each feeding a dot product
	// vertex, and each vector element also feeding its own later consumer
	// (disjoint paths) — the structure behind the CG/GMRES wavefront argument.
	k := 5
	g2 := cdag.NewGraph("reduction", 0)
	dot := g2.AddVertex("dot")
	consumers := make([]cdag.VertexID, 0, 2*k)
	elems := make([]cdag.VertexID, 0, 2*k)
	for i := 0; i < 2*k; i++ {
		e := g2.AddInput("e")
		elems = append(elems, e)
		g2.AddEdge(e, dot)
		c := g2.AddOutput("c")
		consumers = append(consumers, c)
		g2.AddEdge(e, c)
		g2.AddEdge(dot, c) // consumer needs the reduction result too
	}
	// The wavefront induced by dot must hold all 2k vector elements (each has
	// a successor among dot's descendants) plus dot itself.
	if w := MinWavefrontLowerBound(g2, dot); w != 2*k+1 {
		t.Errorf("reduction wavefront LB = %d, want %d", w, 2*k+1)
	}
	if ub := WavefrontUpperBound(g2, dot); ub < 2*k+1 {
		t.Errorf("wavefront UB %d below LB %d", ub, 2*k+1)
	}
	_ = elems
	_ = consumers
}

func TestWavefrontUpperBoundAtLeastLower(t *testing.T) {
	g, _ := butterfly()
	for _, x := range g.Vertices() {
		lb := MinWavefrontLowerBound(g, x)
		ub := WavefrontUpperBound(g, x)
		if ub < lb {
			t.Errorf("vertex %d: UB %d < LB %d", x, ub, lb)
		}
	}
}

func TestMaxMinWavefrontLowerBound(t *testing.T) {
	g, v := butterfly()
	w, at := MaxMinWavefrontLowerBound(g, nil)
	if w < 2 {
		t.Errorf("max wavefront LB = %d, want >= 2", w)
	}
	if at == cdag.InvalidVertex {
		t.Errorf("no vertex reported")
	}
	// Restricting candidates to a sink yields 1.
	w2, _ := MaxMinWavefrontLowerBound(g, []cdag.VertexID{v[4]})
	if w2 != 1 {
		t.Errorf("sink wavefront LB = %d, want 1", w2)
	}
}

// Property: for random layered DAGs, MinVertexCut between sources and sinks
// never exceeds min(#sources-with-path, #sinks-with-path) and equals
// MaxVertexDisjointPaths by construction (same computation), and each
// reported cut disconnects the graph.
func TestMinVertexCutProperty(t *testing.T) {
	f := func(edgesRaw []uint16, nRaw uint8) bool {
		n := int(nRaw%12) + 4
		g := cdag.NewGraph("rand", n)
		g.AddVertices(n)
		for _, e := range edgesRaw {
			u := int(e) % n
			v := int(e>>8) % n
			if u >= v {
				continue
			}
			g.AddEdge(cdag.VertexID(u), cdag.VertexID(v))
		}
		sources := g.Sources()
		sinks := g.Sinks()
		if len(sources) == 0 || len(sinks) == 0 {
			return true
		}
		k, cut := MinVertexCut(g, sources, sinks, CutOptions{})
		if k < 0 || len(cut) != k {
			return false
		}
		// Removing the cut must disconnect sources from sinks... unless a
		// source IS a sink (isolated vertex) in which case it must be in the cut.
		removed := cdag.NewVertexSet(n)
		removed.AddAll(cut)
		seen := cdag.NewVertexSet(n)
		stack := []cdag.VertexID{}
		for _, s := range sources {
			if !removed.Contains(s) {
				stack = append(stack, s)
			}
		}
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if !seen.Add(u) {
				continue
			}
			for _, w := range g.Successors(u) {
				if !removed.Contains(w) {
					stack = append(stack, w)
				}
			}
		}
		for _, snk := range sinks {
			if seen.Contains(snk) && len(g.Predecessors(snk)) > 0 {
				// A reachable true sink (has predecessors) not cut: invalid cut.
				return false
			}
			if seen.Contains(snk) && len(g.Predecessors(snk)) == 0 {
				// Isolated vertex that is both source and sink: it can only be
				// "separated" by cutting it, so it must not be reachable here.
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: the wavefront lower bound never exceeds the achievable upper bound.
func TestWavefrontBoundsProperty(t *testing.T) {
	f := func(edgesRaw []uint16, nRaw uint8, xRaw uint8) bool {
		n := int(nRaw%15) + 2
		g := cdag.NewGraph("rand", n)
		g.AddVertices(n)
		for _, e := range edgesRaw {
			u := int(e) % n
			v := int(e>>8) % n
			if u >= v {
				continue
			}
			g.AddEdge(cdag.VertexID(u), cdag.VertexID(v))
		}
		x := cdag.VertexID(int(xRaw) % n)
		lb := MinWavefrontLowerBound(g, x)
		ub := WavefrontUpperBound(g, x)
		return lb >= 1 && ub >= lb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMinVertexCutButterflyStack(b *testing.B) {
	// A stack of butterflies: 64 inputs feeding log-depth all-to-all layers.
	const width, depth = 32, 5
	g := cdag.NewGraph("bench", width*(depth+1))
	layer := make([][]cdag.VertexID, depth+1)
	for l := 0; l <= depth; l++ {
		layer[l] = make([]cdag.VertexID, width)
		for i := 0; i < width; i++ {
			if l == 0 {
				layer[l][i] = g.AddInput("in")
			} else {
				layer[l][i] = g.AddVertex("op")
				stride := 1 << ((l - 1) % 5)
				g.AddEdge(layer[l-1][i], layer[l][i])
				g.AddEdge(layer[l-1][(i+stride)%width], layer[l][i])
			}
		}
	}
	for _, v := range layer[depth] {
		g.TagOutput(v)
	}
	sources := g.Inputs()
	sinks := g.Outputs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k, _ := MinVertexCut(g, sources, sinks, CutOptions{})
		if k <= 0 {
			b.Fatalf("unexpected cut %d", k)
		}
	}
}
