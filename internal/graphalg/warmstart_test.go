package graphalg

import (
	"context"
	"math/rand"
	"sort"
	"testing"
	"time"

	"cdagio/internal/cdag"
	"cdagio/internal/gen"
)

// sortedCut copies and sorts a cut set for order-insensitive comparison.
func sortedCut(cut []cdag.VertexID) []cdag.VertexID {
	out := append([]cdag.VertexID(nil), cut...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// TestWarmColdCutEquivalence drives a warm-started solver and a cold solver
// through identical random candidate sequences on every generator family and
// checks, candidate by candidate, that the bound values AND the canonical
// minimum cut sets agree exactly.  The cut-set comparison is the strong form
// of the warm-start exactness claim: the residual-reachable source side of a
// maximum flow is the minimal min-cut source side shared by every maximum
// flow, so it must not depend on the feasible flow Dinic started from.
func TestWarmColdCutEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for name, g := range generatorGraphs(t) {
		warm := NewCutSolver()
		warm.ensureGraph(g)
		cold := NewCutSolver()
		cold.ensureGraph(g)
		verts := g.Vertices()
		var wCut, cCut []cdag.VertexID
		for step := 0; step < 48; step++ {
			x := verts[rng.Intn(len(verts))]
			warm.explore(x)
			wv, wAborted := warm.minWavefrontRun(x, 0, true)
			cold.explore(x)
			cv, cAborted := cold.minWavefrontRun(x, 0, false)
			if wAborted || cAborted {
				t.Fatalf("%s step %d vertex %d: unbounded solve reported an abort", name, step, x)
			}
			if wv != cv {
				t.Fatalf("%s step %d vertex %d: warm bound %d, cold bound %d", name, step, x, wv, cv)
			}
			if len(warm.desc) == 0 {
				continue // no network was built; there is no cut to compare
			}
			wCut = warm.lastStripCut(wCut)
			cCut = cold.lastStripCut(cCut)
			ws, cs := sortedCut(wCut), sortedCut(cCut)
			if len(ws) != len(cs) {
				t.Fatalf("%s step %d vertex %d: warm cut size %d, cold cut size %d", name, step, x, len(ws), len(cs))
			}
			for i := range ws {
				if ws[i] != cs[i] {
					t.Fatalf("%s step %d vertex %d: warm cut %v, cold cut %v", name, step, x, ws, cs)
				}
			}
		}
	}
}

// TestWarmColdCutEquivalenceRandomDAGs is the randomized-topology counterpart
// of TestWarmColdCutEquivalence: seeded random DAGs, every vertex visited in a
// shuffled order so consecutive warm starts cross between unrelated cones.
func TestWarmColdCutEquivalenceRandomDAGs(t *testing.T) {
	rng := rand.New(rand.NewSource(977))
	for trial := 0; trial < 25; trial++ {
		n := 10 + rng.Intn(50)
		g := randomDAG(rng, n, 2*n)
		warm := NewCutSolver()
		warm.ensureGraph(g)
		cold := NewCutSolver()
		cold.ensureGraph(g)
		order := g.Vertices()
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		var wCut, cCut []cdag.VertexID
		for _, x := range order {
			warm.explore(x)
			wv, _ := warm.minWavefrontRun(x, 0, true)
			cold.explore(x)
			cv, _ := cold.minWavefrontRun(x, 0, false)
			if wv != cv {
				t.Fatalf("trial %d vertex %d: warm bound %d, cold bound %d", trial, x, wv, cv)
			}
			if len(warm.desc) == 0 {
				continue
			}
			wCut = warm.lastStripCut(wCut)
			cCut = cold.lastStripCut(cCut)
			ws, cs := sortedCut(wCut), sortedCut(cCut)
			if len(ws) != len(cs) {
				t.Fatalf("trial %d vertex %d: warm cut %v, cold cut %v", trial, x, ws, cs)
			}
			for i := range ws {
				if ws[i] != cs[i] {
					t.Fatalf("trial %d vertex %d: warm cut %v, cold cut %v", trial, x, ws, cs)
				}
			}
		}
	}
}

// TestAbortCertificateSound checks the level-cut abort against ground truth on
// every generator family: a solve bounded by need may only abort when the true
// wavefront is provably below need, and when it does not abort it must return
// the exact value.  need sweeps below, at, and above the true value, with and
// without warm-started initial flow (an abort's lim accounts for seeded units).
func TestAbortCertificateSound(t *testing.T) {
	for name, g := range generatorGraphs(t) {
		cs := NewCutSolver()
		cs.ensureGraph(g)
		for _, x := range g.Vertices() {
			cs.explore(x)
			want, _ := cs.minWavefrontRun(x, 0, false)
			for _, warm := range []bool{false, true} {
				for _, need := range []int{1, want - 1, want, want + 1, want + 5} {
					if need <= 0 {
						continue
					}
					cs.explore(x)
					got, aborted := cs.minWavefrontRun(x, need, warm)
					if aborted {
						if want >= need {
							t.Fatalf("%s vertex %d (need=%d warm=%v): aborted but true bound is %d",
								name, x, need, warm, want)
						}
						continue
					}
					if got != want {
						t.Fatalf("%s vertex %d (need=%d warm=%v): bound %d, want %d",
							name, x, need, warm, got, want)
					}
				}
			}
		}
	}
}

// TestIncrementalModesMatchSerial extends the serial-equivalence matrix to the
// PR-6 toggles: every combination of two-phase seeding, warm start and
// mid-solve abort — at one and at four workers — must reproduce the serial
// all-candidates bound and witness bit-for-bit on every generator family.
func TestIncrementalModesMatchSerial(t *testing.T) {
	for name, g := range generatorGraphs(t) {
		wantW, wantV := MaxMinWavefrontLowerBoundSerial(g, nil)
		for _, conc := range []int{1, 4} {
			for mode := 0; mode < 8; mode++ {
				opts := WMaxOptions{
					Concurrency:      conc,
					DisableTwoPhase:  mode&1 != 0,
					DisableWarmStart: mode&2 != 0,
					DisableAbort:     mode&4 != 0,
				}
				gotW, gotV := MaxMinWavefrontLowerBoundOpts(g, nil, opts)
				if gotW != wantW || gotV != wantV {
					t.Errorf("%s (conc=%d mode=%03b): (bound, witness) = (%d, %d), serial (%d, %d)",
						name, conc, mode, gotW, gotV, wantW, wantV)
				}
			}
		}
	}
}

// TestTwoPhaseSeedVariants checks the seeding controls: explicit Seeds
// (including repeats, vertices outside the candidate subset, and seeds
// covering every candidate), SeedSample overrides, and the disabled-sample
// setting all leave bound and witness identical to the serial scan.
func TestTwoPhaseSeedVariants(t *testing.T) {
	g := gen.Jacobi(2, 8, 3, gen.StencilBox).Graph
	all := g.Vertices()
	wantW, wantV := MaxMinWavefrontLowerBoundSerial(g, nil)
	seedSets := [][]cdag.VertexID{
		nil,
		{},
		{all[0], all[0], all[len(all)-1]},
		all[:40],
		all, // every candidate seeded: phase 2 must be skipped, not emptied
	}
	for i, seeds := range seedSets {
		gotW, gotV := MaxMinWavefrontLowerBoundOpts(g, nil, WMaxOptions{Concurrency: 2, Seeds: seeds})
		if gotW != wantW || gotV != wantV {
			t.Errorf("seed set %d: (bound, witness) = (%d, %d), serial (%d, %d)", i, gotW, gotV, wantW, wantV)
		}
	}
	for _, sample := range []int{-1, 1, 5, len(all) + 10} {
		gotW, gotV := MaxMinWavefrontLowerBoundOpts(g, nil, WMaxOptions{Concurrency: 2, SeedSample: sample})
		if gotW != wantW || gotV != wantV {
			t.Errorf("sample %d: (bound, witness) = (%d, %d), serial (%d, %d)", sample, gotW, gotV, wantW, wantV)
		}
	}
	// Candidate subset: explicit seeds outside the subset must be ignored.
	sub := all[len(all)/3 : 2*len(all)/3]
	wantW, wantV = MaxMinWavefrontLowerBoundSerial(g, sub)
	gotW, gotV := MaxMinWavefrontLowerBoundOpts(g, sub, WMaxOptions{Concurrency: 2, Seeds: []cdag.VertexID{all[0], sub[3], sub[0]}})
	if gotW != wantW || gotV != wantV {
		t.Errorf("subset with external seeds: (bound, witness) = (%d, %d), serial (%d, %d)", gotW, gotV, wantW, wantV)
	}
}

// TestCancelMidScanLarge cancels a full-candidate scan partway through on a
// large stencil CDAG and checks that the scan surfaces ctx.Err() promptly —
// the warm-start and abort machinery must not extend cancellation latency
// beyond the documented bound (workers × one candidate).  Short mode trims
// the instance so the race-enabled CI job exercises the same path cheaply.
func TestCancelMidScanLarge(t *testing.T) {
	n := 512 // 2·512² ≈ 1M vertices: the full-scale scan of the 1M benchmark
	delay := 300 * time.Millisecond
	if testing.Short() {
		n = 96
		delay = 20 * time.Millisecond
	}
	g := gen.Jacobi(2, n, 3, gen.StencilBox).Graph
	g.Materialize()
	ctx, cancel := context.WithTimeout(context.Background(), delay)
	defer cancel()
	start := time.Now()
	_, _, err := MaxMinWavefrontLowerBoundCtx(ctx, g, nil, WMaxOptions{Concurrency: 4})
	if err == nil {
		// The scan finished before the deadline; that is legal (and means the
		// machine is fast), but the test then says nothing — rerun tighter.
		ctx2, cancel2 := context.WithCancel(context.Background())
		cancel2()
		if _, _, err2 := MaxMinWavefrontLowerBoundCtx(ctx2, g, nil, WMaxOptions{Concurrency: 4}); err2 == nil {
			t.Fatal("scan under a cancelled context returned no error")
		}
		return
	}
	if err != context.DeadlineExceeded {
		t.Fatalf("scan returned %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > delay+5*time.Second {
		t.Fatalf("cancellation took %v after a %v deadline", elapsed, delay)
	}
}
