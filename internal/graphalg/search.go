package graphalg

import (
	"context"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"cdagio/internal/cdag"
	"cdagio/internal/fault"
)

// WMaxOptions configures the w^max candidate search of
// MaxMinWavefrontLowerBoundOpts.  Every knob is a performance toggle only:
// bound value and witness vertex are identical in every combination.
type WMaxOptions struct {
	// Concurrency is the number of worker goroutines scanning candidates.
	// Zero or negative selects runtime.GOMAXPROCS(0).
	Concurrency int
	// DisablePruning turns off the cheap upper-bound pre-pass that skips
	// candidates which cannot beat the best bound found so far.  Pruning
	// never changes the result — bound value and witness vertex are identical
	// in every mode — so disabling it is only useful for benchmarking the
	// unpruned search.  It also turns off the two-phase seeding pass and the
	// mid-solve abort, which exist to feed and exploit the pruning tiers.
	DisablePruning bool
	// Pool supplies the per-worker CutSolvers.  Workers of a search draw
	// their solver from it and return it afterwards, so searches sharing a
	// pool (repeated analyses through one cdagio.Workspace) amortize the
	// solvers' networks and scratch.  A nil pool allocates fresh solvers for
	// the search, matching the historical behavior.  The pool, when set, must
	// be bound to the searched graph.
	Pool *SolverPool
	// DisableTwoPhase turns off the two-phase incumbent seeding pass: by
	// default a small degree-ranked sample of the candidates (Seeds, or the
	// engine's own top-SeedSample selection) is solved exactly before the
	// main scan, so the best-so-far starts at (or near) the final maximum and
	// the pruning tiers kill the tail before any further flow is pushed.
	DisableTwoPhase bool
	// SeedSample is the size of the degree-ranked seed sample the two-phase
	// pass selects when Seeds is nil.  Zero selects the default (32);
	// negative disables the internal selection (then only explicit Seeds are
	// used).
	SeedSample int
	// Seeds supplies the seed vertices of the two-phase pass explicitly — a
	// Workspace passes its memoized wavefront.TopCandidates sample here.
	// Seeds that do not occur in the candidate list are ignored.
	Seeds []cdag.VertexID
	// DisableWarmStart turns off flow reuse across consecutive candidates of
	// a worker: by default each solved candidate's flow paths are harvested
	// and re-seeded — trimmed to the new cones — into the next candidate's
	// network, so Dinic augments from a feasible flow instead of from zero.
	DisableWarmStart bool
	// DisableAbort turns off the mid-solve level-cut abort: by default a
	// Dinic solve stops as soon as a BFS level cut proves the candidate
	// cannot beat the incumbent.
	DisableAbort bool
}

// packEntry encodes a (bound, candidate index) pair into one int64 so the
// search can maintain "largest bound, earliest candidate attaining it" with a
// single atomic CAS-max: the bound occupies the high 32 bits and the
// bit-inverted index the low 32, making the packed order exactly "larger
// bound first, then smaller index".  The same packing turns the prune test
// into one comparison: a candidate with upper bound u at index i is
// irrelevant — it can neither raise the bound nor steal the witness — exactly
// when packEntry(u, i) < best, which covers both u < bound and the tie
// u == bound at a later index.
func packEntry(bound int, idx int) int64 {
	return int64(bound)<<32 | int64(math.MaxInt32-int32(idx))
}

// unpackEntry inverts packEntry.
func unpackEntry(e int64) (bound int, idx int) {
	return int(e >> 32), int(math.MaxInt32 - int32(e&0xffffffff))
}

// needAgainst returns the smallest bound value candidate index i must attain
// to matter against the packed best entry: packEntry(v, i) >= best exactly
// when v >= needAgainst(best, i).  A candidate earlier than the incumbent
// witness survives a tie (it would steal the witness), a later one must
// strictly beat the bound.  Any solve whose value provably falls below this
// threshold can be aborted without affecting the packed maximum.
func needAgainst(best int64, i int) int {
	bound, idx := unpackEntry(best)
	if i <= idx {
		return bound
	}
	return bound + 1
}

// sortByBoundDesc permutes order into decreasing ub, ties by increasing
// candidate index — the exact order sort.Slice produced historically, built
// by a two-pass counting sort instead: bucket offsets laid out from the
// largest bound down, then a stable ascending-index scatter.  Schedule
// wavefront sizes are bounded by the vertex count, so this is O(n) where the
// comparison sort's O(n log n) was the dominant setup cost of million-vertex
// scans.
func sortByBoundDesc(order []int, ub []int32) {
	maxUB := int32(0)
	for _, u := range ub {
		if u > maxUB {
			maxUB = u
		}
	}
	offs := make([]int32, maxUB+1)
	for _, u := range ub {
		offs[u]++
	}
	pos := int32(0)
	for u := maxUB; u >= 0; u-- {
		c := offs[u]
		offs[u] = pos
		pos += c
	}
	for i, u := range ub {
		order[offs[u]] = i
		offs[u]++
	}
}

// seedIndices resolves the two-phase pass's seed set to candidate indices.
// Explicit Seeds win; vertices that do not occur in the candidate list are
// dropped, repeats keep their first occurrence, and — matching the scan's
// witness rule — a vertex appearing multiple times among the candidates maps
// to its earliest index.  Without explicit Seeds a degree-ranked top-k sample
// (k = SeedSample, default 32) is selected, mirroring wavefront.TopCandidates.
func seedIndices(g *cdag.Graph, candidates []cdag.VertexID, fullRange bool, opts WMaxOptions) []int {
	nc := len(candidates)
	if opts.Seeds != nil {
		var idxOf map[cdag.VertexID]int
		if !fullRange {
			idxOf = make(map[cdag.VertexID]int, nc)
			for i := nc - 1; i >= 0; i-- {
				idxOf[candidates[i]] = i
			}
		}
		seen := make(map[int]bool, len(opts.Seeds))
		idxs := make([]int, 0, len(opts.Seeds))
		for _, v := range opts.Seeds {
			i := -1
			if fullRange {
				// candidates is g.Vertices(): candidate index == vertex id.
				if int(v) < nc {
					i = int(v)
				}
			} else if j, ok := idxOf[v]; ok {
				i = j
			}
			if i >= 0 && !seen[i] {
				seen[i] = true
				idxs = append(idxs, i)
			}
		}
		return idxs
	}
	k := opts.SeedSample
	if k == 0 {
		k = defaultSeedSample
	}
	if k <= 0 {
		return nil
	}
	if k > nc {
		k = nc
	}
	// Bounded insertion sort keeps the k candidates of largest in+out degree,
	// ties by smaller candidate index — the same ranking TopCandidates uses.
	sOff, _, pOff, _ := g.AdjacencyCSR()
	type seed struct {
		deg int64
		idx int
	}
	seeds := make([]seed, 0, k)
	for i, x := range candidates {
		d := (sOff[x+1] - sOff[x]) + (pOff[x+1] - pOff[x])
		if len(seeds) == k && d <= seeds[len(seeds)-1].deg {
			continue
		}
		pos := len(seeds)
		if pos < k {
			seeds = append(seeds, seed{})
		} else {
			pos--
		}
		for pos > 0 && seeds[pos-1].deg < d {
			seeds[pos] = seeds[pos-1]
			pos--
		}
		seeds[pos] = seed{d, i}
	}
	idxs := make([]int, len(seeds))
	for j, s := range seeds {
		idxs[j] = s.idx
	}
	return idxs
}

// defaultSeedSample is the seed-sample size of the two-phase pass when the
// caller sets neither Seeds nor SeedSample.
const defaultSeedSample = 32

// MaxMinWavefrontLowerBoundOpts is the engine behind
// MaxMinWavefrontLowerBound: a parallel search over the candidate vertices
// with per-worker CutSolver scratch (strip-local min-cut networks, epoch-
// stamped vertex marks, reusable traversal stacks) and upper-bound pruning.
//
// The result is exactly that of MaxMinWavefrontLowerBoundSerial — the same
// bound value and the same witness vertex (the first candidate attaining the
// maximum), independent of worker count and timing.  Pruning compares packed
// (upper bound, candidate index) entries against the packed best-so-far (see
// packEntry): a candidate is skipped only when it provably cannot raise the
// bound AND cannot displace the witness — either its upper bound is strictly
// below the established best, or it could at most tie it at a later
// candidate index than a bound-attaining candidate already solved.  Skipped
// candidates therefore never affect the packed maximum the search returns.
func MaxMinWavefrontLowerBoundOpts(g *cdag.Graph, candidates []cdag.VertexID, opts WMaxOptions) (int, cdag.VertexID) {
	// context.Background() is never cancelled, so the only possible error is a
	// captured worker panic; this legacy entry point has no error return, so
	// the crash propagates as it always did instead of being silently
	// swallowed into a zero bound.
	//cdaglint:allow ctxflow deprecated no-ctx entry point; documented as a never-cancelled run
	w, at, err := MaxMinWavefrontLowerBoundCtx(context.Background(), g, candidates, opts)
	if err != nil {
		panic(err)
	}
	return w, at
}

// MaxMinWavefrontLowerBoundCtx is MaxMinWavefrontLowerBoundOpts under a
// context: the candidate scan checks ctx at its pruning-tier boundaries —
// before a candidate is claimed, and again between the descendant-cone and
// ancestor-cone explorations of candidates that survive the precomputed
// bound — and returns ctx.Err() promptly once the context is cancelled.
// Individual Dinic solves stay atomic: cancellation latency is bounded by the
// worker count times the cost of one candidate, never by the length of the
// candidate list.  Under a never-cancelled context (context.Background()) the
// scan is bit-identical to MaxMinWavefrontLowerBoundOpts — same bound, same
// witness — at every worker count.
func MaxMinWavefrontLowerBoundCtx(ctx context.Context, g *cdag.Graph, candidates []cdag.VertexID, opts WMaxOptions) (int, cdag.VertexID, error) {
	if err := ctx.Err(); err != nil {
		return 0, cdag.InvalidVertex, err
	}
	// Compile any staged edges into the CSR arrays before the workers start:
	// the lazy materialization is not synchronized.
	g.Materialize()
	// A pool bound to another graph would hand out solvers whose cached CSR
	// views index the wrong adjacency; ignore it rather than silently search
	// the wrong graph (fresh solvers are merely slower, never wrong).
	if opts.Pool != nil && opts.Pool.g != g {
		opts.Pool = nil
	}
	fullRange := candidates == nil
	if candidates == nil {
		candidates = g.Vertices()
	}
	if len(candidates) == 0 {
		return 0, cdag.InvalidVertex, nil
	}
	workers := opts.Concurrency
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(candidates) {
		workers = len(candidates)
	}

	nc := len(candidates)

	// Processing order: with pruning enabled, compute the schedule-wavefront
	// upper bound for every candidate — one O(V+E) sweep for all of them, no
	// per-candidate cone exploration — and scan in decreasing upper-bound
	// order.  The first few max-flow solves then establish a large best-so-far
	// that prunes the long tail of candidates outright: most are rejected on
	// the precomputed bound alone, the rest get two more chances to be
	// rejected on the tighter convex-cut bounds (descendant-side first, so a
	// candidate pruned by its late cut never explores its ancestor cone), and
	// only what survives all three tiers pays for a Dinic solve.
	order := make([]int, nc)
	for i := range order {
		order[i] = i
	}
	var ub []int32
	if !opts.DisablePruning {
		ub = scheduleWavefrontUB(g, candidates)
		sortByBoundDesc(order, ub)
		anchorSeeds(g, candidates, order)
	}

	// best holds packEntry(bound, index of the earliest candidate attaining
	// it) and only ever increases in packed order.  Pruning a candidate when
	// packEntry(itsUpperBound, itsIndex) < best is exact: the candidate's
	// true bound can neither exceed its upper bound nor — on a tie — displace
	// an earlier witness, so the final packed maximum is unchanged whether or
	// not it is solved.  That makes bound and witness independent of worker
	// count and timing even though the set of solved candidates is not.
	var best atomic.Int64
	record := func(w, i int) {
		e := packEntry(w, i)
		for {
			cur := best.Load()
			if e <= cur || best.CompareAndSwap(cur, e) {
				return
			}
		}
	}
	warm := !opts.DisableWarmStart
	abort := ub != nil && !opts.DisableAbort
	// scan runs the tiered treatment of candidate index i: precomputed bound,
	// then the descendant-side convex bound (with early exit at the survival
	// threshold), then the ancestor-side bound, then an exact strip-local
	// min-cut solve — warm-started from the worker's previous solve and
	// abortable by level-cut certificate once it provably cannot beat the
	// incumbent.  Every tier is exact (see the package comment), so the packed
	// maximum is independent of phase split, worker count and timing.
	scan := func(cs *CutSolver, i int) {
		x := candidates[i]
		if ub != nil && packEntry(int(ub[i]), i) < best.Load() {
			return
		}
		cs.exploreDesc(x)
		if len(cs.desc) == 0 {
			// No descendants: the wavefront is {x} and the bound is exactly 1.
			record(1, i)
			return
		}
		if ub != nil {
			need := needAgainst(best.Load(), i)
			if cs.lateBound(need) < need {
				return
			}
			// Tier boundary: the descendant cone is explored, the ancestor
			// cone is not yet paid for — the one spot inside a candidate
			// where bailing out early saves real work.
			if ctx.Err() != nil {
				return
			}
			cs.exploreAnc(x)
			if packEntry(cs.earlyBound(x), i) < best.Load() {
				return
			}
		} else {
			cs.exploreAnc(x)
		}
		need := 0
		if abort {
			need = needAgainst(best.Load(), i)
		}
		w, pruned := cs.minWavefrontRun(x, need, warm)
		if !pruned {
			record(w, i)
		}
	}

	// Phase 1 — incumbent seeding: solve a small degree-ranked sample of the
	// candidates to completion before the broad scan, so the best-so-far
	// starts at (or near) the final maximum and tier 1 kills the tail of the
	// upper-bound-sorted order without any cone exploration.  Seeds record
	// their exact bound at their true candidate index and are skipped by the
	// main scan, so the phase split cannot change the result.
	var isSeeded []bool
	if ub != nil && !opts.DisableTwoPhase {
		seedIdx := seedIndices(g, candidates, fullRange, opts)
		if len(seedIdx) > 0 && len(seedIdx) < nc {
			isSeeded = make([]bool, nc)
			for _, i := range seedIdx {
				isSeeded[i] = true
			}
			sw := workers
			if sw > len(seedIdx) {
				sw = len(seedIdx)
			}
			if err := parallelFor(ctx, opts.Pool, g, sw, len(seedIdx), func(cs *CutSolver, k int) {
				scan(cs, seedIdx[k])
			}); err != nil {
				return 0, cdag.InvalidVertex, err
			}
		}
	}

	// Phase 2 — the full candidate scan in decreasing upper-bound order.
	if err := parallelFor(ctx, opts.Pool, g, workers, nc, func(cs *CutSolver, k int) {
		i := order[k]
		if isSeeded != nil && isSeeded[i] {
			return
		}
		scan(cs, i)
	}); err != nil {
		return 0, cdag.InvalidVertex, err
	}
	if err := ctx.Err(); err != nil {
		return 0, cdag.InvalidVertex, err
	}

	bound, idx := unpackEntry(best.Load())
	if bound == 0 {
		// Unreachable: at least one candidate is always solved.
		return 0, cdag.InvalidVertex, nil
	}
	return bound, candidates[idx], nil
}

// parallelFor runs body(i) for i in [0, n) over the given number of worker
// goroutines, each with its own CutSolver bound to g — drawn from pool when
// one is supplied, freshly allocated otherwise.  Workers re-check ctx before
// claiming each index and stop claiming once it is cancelled; in-flight body
// calls run to completion (the caller surfaces ctx.Err()).
//
// Every body call runs under fault.Capture: a panic inside a worker — from
// the engine itself or injected at the fault.PointWMaxWorker point — is
// converted
// into a *fault.PanicError, the remaining workers stop claiming, and
// parallelFor returns the error instead of crashing the process.  A solver
// that was solving when its body panicked is discarded, never returned to
// the pool, since its scratch may be mid-mutation.
func parallelFor(ctx context.Context, pool *SolverPool, g *cdag.Graph, workers, n int, body func(*CutSolver, int)) error {
	acquire := func() *CutSolver {
		if pool != nil {
			return pool.Get()
		}
		cs := NewCutSolver()
		cs.ensureGraph(g)
		return cs
	}
	release := func(cs *CutSolver) {
		if pool != nil {
			pool.Put(cs)
		}
	}
	discard := func(cs *CutSolver) {
		if pool != nil {
			pool.Discard(cs)
		}
	}
	runBody := func(cs *CutSolver, i int) error {
		return fault.Capture(fault.PointWMaxWorker, func() {
			fault.Inject(fault.PointWMaxWorker)
			body(cs, i)
		})
	}
	var failed atomic.Bool
	var errMu sync.Mutex
	var firstErr error
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
		failed.Store(true)
	}
	if workers <= 1 {
		cs := acquire()
		for i := 0; i < n; i++ {
			if ctx.Err() != nil {
				break
			}
			if err := runBody(cs, i); err != nil {
				discard(cs)
				return err
			}
		}
		release(cs)
		return nil
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			cs := acquire()
			for {
				if ctx.Err() != nil || failed.Load() {
					break
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					break
				}
				if err := runBody(cs, i); err != nil {
					fail(err)
					discard(cs)
					return
				}
			}
			release(cs)
		}()
	}
	wg.Wait()
	errMu.Lock()
	defer errMu.Unlock()
	return firstErr
}

// lateBound returns the boundary size of the latest convex cut around the
// explored candidate (T = Desc(x)): the distinct non-descendant predecessors
// of descendants.  x is always among them — every successor of x is a
// descendant — so the value needs no explicit max with 1.  It only requires
// the descendant cone (exploreDesc), which is what lets the search prune on
// it before paying for the ancestor cone.
//
// The count stops at limit: the caller prunes on lateBound(need) < need, and
// once the running count reaches need the candidate survives this tier no
// matter how much larger the true boundary is, so the rest of the — often
// enormous — descendant cone is never walked.  Pass math.MaxInt for the full
// boundary size.  Early exit leaves seenMark partially stamped for the
// current epoch; no later consumer reads seenMark within an epoch, so this is
// safe.
func (cs *CutSolver) lateBound(limit int) int {
	e := cs.epoch
	pOff, pVal := cs.predOff, cs.predVal
	late := 0
	if limit <= 0 {
		return 0
	}
	for _, d := range cs.desc {
		for _, p := range pVal[pOff[d]:pOff[d+1]] {
			if cs.descMark[p] != e && cs.seenMark[p] != e {
				cs.seenMark[p] = e
				late++
				if late >= limit {
					return late
				}
			}
		}
	}
	return late
}

// earlyBound returns the boundary size of the earliest convex cut around the
// explored candidate (S = {x} ∪ Anc(x)): the vertices of S with a successor
// outside S, always counting x itself.  Requires both cones' marks.
func (cs *CutSolver) earlyBound(x cdag.VertexID) int {
	e := cs.epoch
	sOff, sVal := cs.succOff, cs.succVal
	early := 0
	xInBoundary := false
	for _, w := range sVal[sOff[x]:sOff[x+1]] {
		if w != x && cs.ancMark[w] != e {
			early++
			xInBoundary = true
			break
		}
	}
	for _, v := range cs.anc {
		for _, w := range sVal[sOff[v]:sOff[v+1]] {
			if w != x && cs.ancMark[w] != e {
				early++
				break
			}
		}
	}
	if !xInBoundary {
		early++ // x belongs to the wavefront by definition
	}
	return early
}

// upperBound computes WavefrontUpperBound(g, x) from the current epoch's
// marks: the smaller boundary of the earliest and latest convex cuts around x,
// always counting x itself.
func (cs *CutSolver) upperBound(x cdag.VertexID) int {
	if len(cs.desc) == 0 {
		// With no descendants the latest cut has boundary {x}.
		return 1
	}
	best := cs.earlyBound(x)
	if late := cs.lateBound(math.MaxInt); late < best {
		best = late
	}
	if best < 1 {
		best = 1
	}
	return best
}

// anchorSeeds moves a small degree-ranked seed set to the front of the
// processing order: the candidates with the largest in+out degree (ties by
// smaller index), solved first so the best-so-far jumps to (or near) the
// final maximum immediately.  On the paper's workloads the maximum wavefront
// sits at reduction roots whose schedule wavefront is unremarkable but whose
// degree is extreme — without the anchor, the broad crowd of mid-bound
// candidates is processed before the true maximum is known and cannot be
// pruned.  The order is purely a performance heuristic: the packed-maximum
// search returns an identical bound and witness under any processing order.
func anchorSeeds(g *cdag.Graph, candidates []cdag.VertexID, order []int) {
	const seedCount = 16
	if len(order) <= seedCount {
		return
	}
	sOff, _, pOff, _ := g.AdjacencyCSR()
	type seed struct {
		deg int64
		idx int
	}
	var seeds []seed
	for i, x := range candidates {
		d := (sOff[x+1] - sOff[x]) + (pOff[x+1] - pOff[x])
		if len(seeds) == seedCount && d <= seeds[len(seeds)-1].deg {
			continue
		}
		pos := len(seeds)
		if pos < seedCount {
			seeds = append(seeds, seed{})
		} else {
			pos--
		}
		for pos > 0 && seeds[pos-1].deg < d {
			seeds[pos] = seeds[pos-1]
			pos--
		}
		seeds[pos] = seed{d, i}
	}
	isSeed := make(map[int]bool, len(seeds))
	for _, s := range seeds {
		isSeed[s.idx] = true
	}
	reordered := make([]int, 0, len(order))
	for _, s := range seeds {
		reordered = append(reordered, s.idx)
	}
	for _, o := range order {
		if !isSeed[o] {
			reordered = append(reordered, o)
		}
	}
	copy(order, reordered)
}

// scheduleWavefrontUB returns, for every candidate x, the wavefront size of a
// fixed topological schedule of g at the moment x fires.  The fired prefix
// S_x is predecessor-closed and contains {x} ∪ Anc(x), its complement
// contains Desc(x), so (S_x, V∖S_x) is a valid convex cut around x and its
// wavefront — the fired vertices with unfired successors, plus x itself — is
// achievable: its size upper-bounds |W^min(x)| and hence the min-cut lower
// bound.  One O(V+E) sweep covers every candidate, which is what lets the
// w^max search reject most candidates without ever exploring their cones.
func scheduleWavefrontUB(g *cdag.Graph, candidates []cdag.VertexID) []int32 {
	n := g.NumVertices()
	order := g.MustTopoOrder()
	sOff, _, pOff, pVal := g.AdjacencyCSR()
	remaining := make([]int32, n) // unfired successors of each fired vertex
	wfAt := make([]int32, n)
	live := 0
	for _, v := range order {
		remaining[v] = int32(sOff[v+1] - sOff[v])
		if remaining[v] > 0 {
			live++
		}
		for _, p := range pVal[pOff[v]:pOff[v+1]] {
			remaining[p]--
			if remaining[p] == 0 {
				live--
			}
		}
		w := live
		if remaining[v] == 0 {
			w++ // v is in its wavefront even with no unfired successors
		}
		wfAt[v] = int32(w)
	}
	ub := make([]int32, len(candidates))
	for i, x := range candidates {
		ub[i] = wfAt[x]
	}
	return ub
}
