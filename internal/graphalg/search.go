package graphalg

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"cdagio/internal/cdag"
)

// WMaxOptions configures the w^max candidate search of
// MaxMinWavefrontLowerBoundOpts.
type WMaxOptions struct {
	// Concurrency is the number of worker goroutines scanning candidates.
	// Zero or negative selects runtime.GOMAXPROCS(0).
	Concurrency int
	// DisablePruning turns off the cheap upper-bound pre-pass that skips
	// candidates which cannot beat the best bound found so far.  Pruning
	// never changes the result — bound value and witness vertex are identical
	// in every mode — so disabling it is only useful for benchmarking the
	// unpruned search.
	DisablePruning bool
}

// prunedMark flags a candidate skipped by the upper-bound prune.  It can never
// collide with a real bound, which is at least 1.
const prunedMark = int32(-1)

// MaxMinWavefrontLowerBoundOpts is the engine behind
// MaxMinWavefrontLowerBound: a parallel search over the candidate vertices
// with per-worker reusable scratch (flow network, traversal stacks, epoch-
// stamped vertex marks) and upper-bound pruning.
//
// The result is exactly that of MaxMinWavefrontLowerBoundSerial — the same
// bound value and the same witness vertex (the first candidate attaining the
// maximum), independent of worker count and timing: pruning only skips
// candidates whose cheap upper bound is strictly below the best value already
// established, and such candidates can neither raise the bound nor tie it.
func MaxMinWavefrontLowerBoundOpts(g *cdag.Graph, candidates []cdag.VertexID, opts WMaxOptions) (int, cdag.VertexID) {
	// Compile any staged edges into the CSR arrays before the workers start:
	// the lazy materialization is not synchronized.
	g.Materialize()
	if candidates == nil {
		candidates = g.Vertices()
	}
	if len(candidates) == 0 {
		return 0, cdag.InvalidVertex
	}
	workers := opts.Concurrency
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(candidates) {
		workers = len(candidates)
	}

	nc := len(candidates)
	lb := make([]int32, nc)

	// Processing order: with pruning enabled, first compute a cheap achievable
	// wavefront size for every candidate and scan in decreasing upper-bound
	// order.  The first few max-flow solves then establish a large best-so-far
	// that prunes the long tail of candidates outright, and the search can
	// stop paying for Dinic runs as soon as the remaining upper bounds drop
	// below it.
	order := make([]int, nc)
	for i := range order {
		order[i] = i
	}
	var ub []int32
	if !opts.DisablePruning {
		ub = make([]int32, nc)
		parallelFor(workers, nc, func(sc *wmaxScratch, i int) {
			sc.explore(candidates[i])
			ub[i] = int32(sc.upperBound(candidates[i]))
		}, func() *wmaxScratch { return newWMaxScratch(g) })
		sort.Slice(order, func(a, b int) bool {
			if ub[order[a]] != ub[order[b]] {
				return ub[order[a]] > ub[order[b]]
			}
			return order[a] < order[b]
		})
	}

	var best atomic.Int64
	parallelFor(workers, nc, func(sc *wmaxScratch, k int) {
		i := order[k]
		x := candidates[i]
		if ub != nil && int64(ub[i]) < best.Load() {
			// lb(x) <= ub(x) < best: x cannot attain the final bound, so
			// skipping it changes neither the value nor the witness.  The
			// strict comparison is what makes the witness deterministic:
			// candidates that could tie the maximum are always solved, so the
			// final first-in-candidate-order scan is timing-independent.
			lb[i] = prunedMark
			return
		}
		sc.explore(x)
		w := int32(sc.minWavefront(x))
		lb[i] = w
		for {
			cur := best.Load()
			if int64(w) <= cur || best.CompareAndSwap(cur, int64(w)) {
				break
			}
		}
	}, func() *wmaxScratch { return newWMaxScratch(g) })

	bestW := int32(best.Load())
	for i := range candidates {
		if lb[i] == bestW {
			return int(bestW), candidates[i]
		}
	}
	// Unreachable: at least one candidate is always computed.
	return int(bestW), cdag.InvalidVertex
}

// parallelFor runs body(i) for i in [0, n) over the given number of worker
// goroutines, each with its own scratch instance.
func parallelFor(workers, n int, body func(*wmaxScratch, int), mkScratch func() *wmaxScratch) {
	if workers <= 1 {
		sc := mkScratch()
		for i := 0; i < n; i++ {
			body(sc, i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			sc := mkScratch()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				body(sc, i)
			}
		}()
	}
	wg.Wait()
}

// wmaxScratch is the per-worker reusable state of the w^max search: epoch-
// stamped ancestor/descendant marks, traversal stacks, and a Dinic flow
// network whose static part (vertex-splitting arcs and CDAG edge arcs) is
// built once and reset in O(E) per candidate instead of reallocated.
type wmaxScratch struct {
	g *cdag.Graph
	n int

	epoch    int32
	ancMark  []int32
	descMark []int32
	seenMark []int32
	stack    []cdag.VertexID
	anc      []cdag.VertexID
	desc     []cdag.VertexID

	net      *flowNetwork
	cap0     []int64 // pristine capacities of the static arcs
	splitArc []int32 // arc index of each vertex's vIn->vOut edge
	baseArcs int
	baseHead []int32 // static head[] lengths
	extNodes []int32 // nodes whose head[] grew this candidate
}

func newWMaxScratch(g *cdag.Graph) *wmaxScratch {
	n := g.NumVertices()
	return &wmaxScratch{
		g:        g,
		n:        n,
		ancMark:  make([]int32, n),
		descMark: make([]int32, n),
		seenMark: make([]int32, n),
	}
}

// explore stamps the ancestor and descendant sets of x into the scratch marks
// and element lists for the current epoch.
func (sc *wmaxScratch) explore(x cdag.VertexID) {
	sc.epoch++
	e := sc.epoch
	g := sc.g

	sc.desc = sc.desc[:0]
	sc.stack = append(sc.stack[:0], g.Succ(x)...)
	for len(sc.stack) > 0 {
		u := sc.stack[len(sc.stack)-1]
		sc.stack = sc.stack[:len(sc.stack)-1]
		if sc.descMark[u] == e {
			continue
		}
		sc.descMark[u] = e
		sc.desc = append(sc.desc, u)
		sc.stack = append(sc.stack, g.Succ(u)...)
	}

	sc.anc = sc.anc[:0]
	sc.stack = append(sc.stack[:0], g.Pred(x)...)
	for len(sc.stack) > 0 {
		u := sc.stack[len(sc.stack)-1]
		sc.stack = sc.stack[:len(sc.stack)-1]
		if sc.ancMark[u] == e {
			continue
		}
		sc.ancMark[u] = e
		sc.anc = append(sc.anc, u)
		sc.stack = append(sc.stack, g.Pred(u)...)
	}
}

// upperBound computes WavefrontUpperBound(g, x) from the current epoch's
// marks: the smaller boundary of the earliest and latest convex cuts around x,
// always counting x itself.
func (sc *wmaxScratch) upperBound(x cdag.VertexID) int {
	e := sc.epoch
	g := sc.g

	// Earliest cut: S = {x} ∪ Anc(x).  Boundary = vertices of S with a
	// successor outside S.
	early := 0
	xInBoundary := false
	for _, w := range g.Succ(x) {
		if w != x && sc.ancMark[w] != e {
			early++
			xInBoundary = true
			break
		}
	}
	for _, v := range sc.anc {
		for _, w := range g.Succ(v) {
			if w != x && sc.ancMark[w] != e {
				early++
				break
			}
		}
	}
	if !xInBoundary {
		early++ // x belongs to the wavefront by definition
	}

	best := early
	if len(sc.desc) > 0 {
		// Latest cut: T = Desc(x).  Boundary = distinct non-descendant
		// predecessors of descendants; x is always among them because every
		// successor of x is a descendant.
		late := 0
		for _, d := range sc.desc {
			for _, p := range g.Pred(d) {
				if sc.descMark[p] != e && sc.seenMark[p] != e {
					sc.seenMark[p] = e
					late++
				}
			}
		}
		if late < best {
			best = late
		}
	} else if 1 < best {
		// With no descendants the latest cut has boundary {x}.
		best = 1
	}
	if best < 1 {
		best = 1
	}
	return best
}

// minWavefront computes MinWavefrontLowerBound(g, x) for the explored
// candidate by resetting the shared flow network and running Dinic on the
// vertex-split min-cut instance with Desc(x) uncuttable.
func (sc *wmaxScratch) minWavefront(x cdag.VertexID) int {
	if len(sc.desc) == 0 {
		return 1
	}
	sc.ensureNet()
	net := sc.net

	// Reset to the static network: truncate per-candidate arcs, restore
	// pristine capacities.
	net.to = net.to[:sc.baseArcs]
	net.cap = net.cap[:sc.baseArcs]
	copy(net.cap, sc.cap0)
	for _, u := range sc.extNodes {
		net.head[u] = net.head[u][:sc.baseHead[u]]
	}
	sc.extNodes = sc.extNodes[:0]

	// Descendants may not be cut: infinite capacity on their split arc.
	for _, d := range sc.desc {
		net.cap[sc.splitArc[d]] = flowInf
	}

	// Super source to {x} ∪ Anc(x), descendants to super sink.
	s, t := 2*sc.n, 2*sc.n+1
	sc.addExtEdge(s, 2*int(x))
	for _, a := range sc.anc {
		sc.addExtEdge(s, 2*int(a))
	}
	for _, d := range sc.desc {
		sc.addExtEdge(2*int(d)+1, t)
	}

	flow := net.maxFlow(s, t)
	w := int(flow)
	if w < 1 {
		w = 1
	}
	return w
}

// ensureNet builds the static part of the vertex-split flow network on first
// use: vIn->vOut split arcs with unit capacity and vOut->wIn arcs with
// infinite capacity for every CDAG edge.  Node numbering matches MinVertexCut:
// vIn = 2v, vOut = 2v+1, super source 2n, super sink 2n+1.
func (sc *wmaxScratch) ensureNet() {
	if sc.net != nil {
		return
	}
	n := sc.n
	net := newFlowNetwork(2*n + 2)
	sc.splitArc = make([]int32, n)
	for v := 0; v < n; v++ {
		sc.splitArc[v] = int32(len(net.to))
		net.addEdge(2*v, 2*v+1, 1)
		for _, w := range sc.g.Succ(cdag.VertexID(v)) {
			net.addEdge(2*v+1, 2*int(w), flowInf)
		}
	}
	sc.baseArcs = len(net.to)
	sc.cap0 = append([]int64(nil), net.cap...)
	sc.baseHead = make([]int32, net.n)
	for u := range net.head {
		sc.baseHead[u] = int32(len(net.head[u]))
	}
	sc.net = net
}

// addExtEdge adds a per-candidate infinite-capacity arc, recording both
// endpoints so the reset can truncate their adjacency back to the static
// network.
func (sc *wmaxScratch) addExtEdge(u, v int) {
	sc.extNodes = append(sc.extNodes, int32(u), int32(v))
	sc.net.addEdge(u, v, flowInf)
}
