package graphalg

import "cdagio/internal/cdag"

// Descendants returns the set of vertices reachable from v by directed paths
// of length ≥ 1 (v itself is excluded).
func Descendants(g *cdag.Graph, v cdag.VertexID) *cdag.VertexSet {
	off, val := g.SuccessorCSR()
	return reach(g, v, off, val)
}

// Ancestors returns the set of vertices from which v is reachable by directed
// paths of length ≥ 1 (v itself is excluded).
func Ancestors(g *cdag.Graph, v cdag.VertexID) *cdag.VertexSet {
	off, val := g.PredecessorCSR()
	return reach(g, v, off, val)
}

// reach sweeps the hoisted CSR rows (successor rows for Descendants,
// predecessor rows for Ancestors) from v.
func reach(g *cdag.Graph, v cdag.VertexID, off []int64, val []cdag.VertexID) *cdag.VertexSet {
	seen := cdag.NewVertexSet(g.NumVertices())
	var stack []cdag.VertexID
	for _, w := range val[off[v]:off[v+1]] {
		if seen.Add(w) {
			stack = append(stack, w)
		}
	}
	// Mark before pushing (as the CutSolver cone sweeps do): every edge is
	// inspected once and the stack never holds duplicates.
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range val[off[u]:off[u+1]] {
			if seen.Add(w) {
				stack = append(stack, w)
			}
		}
	}
	return seen
}

// ReachableFrom returns the set of vertices reachable from any vertex in the
// given source set, including the sources themselves.
func ReachableFrom(g *cdag.Graph, sources []cdag.VertexID) *cdag.VertexSet {
	off, val := g.SuccessorCSR()
	seen := cdag.NewVertexSet(g.NumVertices())
	stack := append([]cdag.VertexID(nil), sources...)
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if !seen.Add(u) {
			continue
		}
		stack = append(stack, val[off[u]:off[u+1]]...)
	}
	return seen
}

// CoReachableTo returns the set of vertices from which some vertex in the
// target set is reachable, including the targets themselves.
func CoReachableTo(g *cdag.Graph, targets []cdag.VertexID) *cdag.VertexSet {
	off, val := g.PredecessorCSR()
	seen := cdag.NewVertexSet(g.NumVertices())
	stack := append([]cdag.VertexID(nil), targets...)
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if !seen.Add(u) {
			continue
		}
		stack = append(stack, val[off[u]:off[u+1]]...)
	}
	return seen
}

// HasPath reports whether there is a directed path (length ≥ 1) from u to v.
func HasPath(g *cdag.Graph, u, v cdag.VertexID) bool {
	if u == v {
		return false
	}
	return Descendants(g, u).Contains(v)
}

// TransitiveClosure returns, for each vertex, its descendant set.  Intended
// for small graphs (quadratic memory); larger analyses should use targeted
// Descendants calls.
func TransitiveClosure(g *cdag.Graph) []*cdag.VertexSet {
	n := g.NumVertices()
	succOff, succVal := g.SuccessorCSR()
	closure := make([]*cdag.VertexSet, n)
	order := g.MustTopoOrder()
	// Process in reverse topological order so successors are already done.
	for i := n - 1; i >= 0; i-- {
		v := order[i]
		set := cdag.NewVertexSet(n)
		for _, w := range succVal[succOff[v]:succOff[v+1]] {
			set.Add(w)
			set.Union(closure[w])
		}
		closure[v] = set
	}
	return closure
}
