package memsim

import (
	"context"
	"errors"
	"reflect"
	"sync/atomic"
	"testing"

	"cdagio/internal/fault"
	"cdagio/internal/gen"
	"cdagio/internal/sched"
)

// TestSweepWorkerPanicIsIsolated forces a panic inside one sweep worker and
// requires the sweep to fail with a *fault.PanicError — not crash — and a
// clean re-run to match the serial baseline exactly.
func TestSweepWorkerPanicIsIsolated(t *testing.T) {
	g := gen.Jacobi(2, 10, 4, gen.StencilBox).Graph
	topo := sched.Topological(g)
	jobs := []Job{
		{Cfg: Config{Nodes: 1, FastWords: 16, Policy: Belady}, Order: topo},
		{Cfg: Config{Nodes: 1, FastWords: 32, Policy: Belady}, Order: topo},
		{Cfg: Config{Nodes: 1, FastWords: 16, Policy: LRU}, Order: topo},
		{Cfg: Config{Nodes: 1, FastWords: 64, Policy: LRU}, Order: topo},
	}
	want, err := Sweep(g, jobs, 2)
	if err != nil {
		t.Fatalf("baseline sweep: %v", err)
	}

	var fired atomic.Int64
	restore := fault.SetHook(func(point string) {
		if point == fault.PointMemsimSweepWorker && fired.Add(1) == 2 {
			panic("injected sweep worker crash")
		}
	})
	_, err = SweepCtx(context.Background(), g, jobs, 2)
	restore()
	var pe *fault.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("injected panic surfaced as %v, want *fault.PanicError", err)
	}

	got, err := Sweep(g, jobs, 2)
	if err != nil {
		t.Fatalf("post-crash sweep: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("post-crash sweep results differ from baseline")
	}
}
