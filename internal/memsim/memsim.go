// Package memsim is a lightweight data-movement simulator for CDAG schedules
// on a distributed machine with one level of fast memory per node.  Unlike
// package prbw it does not construct a legal pebble game move by move;
// instead it directly simulates, for a given vertex schedule and vertex→node
// assignment, the traffic between each node's fast memory (capacity S values)
// and its main memory, and the inter-node traffic needed to fetch values
// produced on other nodes.
//
// The resulting counts are achievable by a legal P-RBW game (each fast-memory
// miss corresponds to a load/move-up, each write-back to a store/move-down,
// and each remote value fetch to a remote get), so they serve as empirical
// upper bounds to compare against the lower bounds of packages partition,
// wavefront and bounds — this is how the tightness claims of Section 5.4 are
// checked.
package memsim

import (
	"context"
	"fmt"

	"cdagio/internal/cdag"
	"cdagio/internal/iheap"
)

// Config describes the simulated machine.
type Config struct {
	// Nodes is the number of nodes.
	Nodes int
	// FastWords is the capacity of each node's fast memory, in values.
	FastWords int
	// Policy selects the replacement policy of the fast memory.
	Policy Policy
}

// Policy is a fast-memory replacement policy.
type Policy int

const (
	// Belady evicts the value whose next use on the node lies farthest in the
	// future (offline optimal for a fixed schedule).
	Belady Policy = iota
	// LRU evicts the least recently used value.
	LRU
)

// String returns the policy name.
func (p Policy) String() string {
	switch p {
	case Belady:
		return "belady"
	case LRU:
		return "lru"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Stats reports the simulated data movement.
type Stats struct {
	// LoadsPerNode[n] counts values brought into node n's fast memory from
	// its own main memory (vertical traffic, inbound).
	LoadsPerNode []int64
	// StoresPerNode[n] counts values written back from node n's fast memory
	// to its main memory (vertical traffic, outbound).
	StoresPerNode []int64
	// RemoteGetsPerNode[n] counts values fetched by node n from another
	// node's memory (horizontal traffic).
	RemoteGetsPerNode []int64
	// ComputesPerNode[n] counts vertices fired on node n.
	ComputesPerNode []int64
}

// VerticalTotal returns total loads+stores across all nodes.
func (s *Stats) VerticalTotal() int64 {
	var t int64
	for i := range s.LoadsPerNode {
		t += s.LoadsPerNode[i] + s.StoresPerNode[i]
	}
	return t
}

// MaxNodeVertical returns the largest per-node loads+stores count.
func (s *Stats) MaxNodeVertical() int64 {
	var m int64
	for i := range s.LoadsPerNode {
		if v := s.LoadsPerNode[i] + s.StoresPerNode[i]; v > m {
			m = v
		}
	}
	return m
}

// HorizontalTotal returns the total number of remote fetches.
func (s *Stats) HorizontalTotal() int64 {
	var t int64
	for _, v := range s.RemoteGetsPerNode {
		t += v
	}
	return t
}

// MaxNodeHorizontal returns the largest per-node remote-fetch count.
func (s *Stats) MaxNodeHorizontal() int64 {
	var m int64
	for _, v := range s.RemoteGetsPerNode {
		if v > m {
			m = v
		}
	}
	return m
}

// String summarizes the statistics.
func (s *Stats) String() string {
	return fmt.Sprintf("memsim: vertical %d (max/node %d), horizontal %d (max/node %d)",
		s.VerticalTotal(), s.MaxNodeVertical(), s.HorizontalTotal(), s.MaxNodeHorizontal())
}

// Run simulates the schedule on the configured machine.
//
// order lists the non-input vertices in execution order; owner[v] gives the
// node that computes v (and that owns input v's initial copy).  A vertex with
// owner out of range is assigned to node 0.
//
// The simulation charges:
//   - one load to node n when a value it needs is not in its fast memory but
//     is available in its own main memory (inputs it owns, values it computed
//     and wrote back, or remote values fetched earlier and since evicted);
//   - one remote get (plus the load implicit in it) when the value lives on
//     another node;
//   - one store when a value still needed later (or tagged as an output) is
//     evicted from fast memory without a durable copy.
func Run(g *cdag.Graph, cfg Config, order []cdag.VertexID, owner []int) (*Stats, error) {
	// context.Background() is never cancelled, so RunCtx degenerates to the
	// historical behavior.
	//cdaglint:allow ctxflow deprecated no-ctx entry point; documented as a never-cancelled run
	return RunCtx(context.Background(), g, cfg, order, owner)
}

// RunCtx is Run under a context: the simulation loop checks ctx every 4096
// schedule steps (individual steps stay atomic) and returns ctx.Err()
// promptly once the context is cancelled.  Under a never-cancelled context
// the simulation — every charge, every statistic — is bit-identical to Run.
func RunCtx(ctx context.Context, g *cdag.Graph, cfg Config, order []cdag.VertexID, owner []int) (*Stats, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if cfg.Nodes < 1 {
		return nil, fmt.Errorf("memsim: need at least one node")
	}
	if cfg.FastWords < 1 {
		return nil, fmt.Errorf("memsim: need at least one fast-memory word")
	}
	n := g.NumVertices()
	// Every pass below sweeps predecessor rows, so hoist the flat CSR arrays
	// once: the rows are identical to g.Pred(v) in content and order.
	predOff, predVal := g.PredecessorCSR()
	nodeOf := func(v cdag.VertexID) int {
		if int(v) < len(owner) && owner[v] >= 0 && owner[v] < cfg.Nodes {
			return owner[v]
		}
		return 0
	}

	// Validate the schedule and record positions.
	position := make([]int, n)
	for i := range position {
		position[i] = -1
	}
	for i, v := range order {
		if !g.ValidVertex(v) {
			return nil, fmt.Errorf("memsim: vertex %d out of range", v)
		}
		if g.IsInput(v) {
			return nil, fmt.Errorf("memsim: input vertex %d scheduled", v)
		}
		if position[v] >= 0 {
			return nil, fmt.Errorf("memsim: vertex %d scheduled twice", v)
		}
		position[v] = i
	}
	for v := 0; v < n; v++ {
		id := cdag.VertexID(v)
		if g.IsInput(id) {
			continue
		}
		if position[v] < 0 {
			return nil, fmt.Errorf("memsim: vertex %d missing from schedule", v)
		}
		for _, p := range predVal[predOff[v]:predOff[v+1]] {
			if !g.IsInput(p) && position[p] > position[v] {
				return nil, fmt.Errorf("memsim: vertex %d scheduled before predecessor %d", v, p)
			}
		}
		if indeg := int(predOff[v+1] - predOff[v]); indeg+1 > cfg.FastWords {
			return nil, fmt.Errorf("memsim: fast memory %d too small for in-degree %d", cfg.FastWords, indeg)
		}
	}

	// The uses of v — the schedule positions at which some node consumes v,
	// with the consuming node — are stored flat in one CSR-style pair: the
	// uses of v are usePos/useNode[useOff[v]:useOff[v+1]], in increasing
	// position order (a stable counting-sort scatter over the schedule).  Used
	// by the Belady policy and by the write-back decision.
	useOff := make([]int64, n+1)
	for _, v := range order {
		for _, p := range predVal[predOff[v]:predOff[v+1]] {
			useOff[p+1]++
		}
	}
	for v := 0; v < n; v++ {
		useOff[v+1] += useOff[v]
	}
	totalUses := useOff[n]
	usePos := make([]int32, totalUses)
	useNode := make([]int32, totalUses)
	useCursor := make([]int64, n)
	copy(useCursor, useOff[:n])
	for i, v := range order {
		nd := nodeOf(v)
		for _, p := range predVal[predOff[v]:predOff[v+1]] {
			usePos[useCursor[p]] = int32(i)
			useNode[useCursor[p]] = int32(nd)
			useCursor[p]++
		}
	}
	// usePtr[v] indexes the first use of v not yet in the past (monotone).
	usePtr := useCursor
	copy(usePtr, useOff[:n])

	stats := &Stats{
		LoadsPerNode:      make([]int64, cfg.Nodes),
		StoresPerNode:     make([]int64, cfg.Nodes),
		RemoteGetsPerNode: make([]int64, cfg.Nodes),
		ComputesPerNode:   make([]int64, cfg.Nodes),
	}

	caches := make([]*cache, cfg.Nodes)
	for i := range caches {
		caches[i] = newCache(n, cfg.Policy)
	}
	// durable[v] records whether v has a copy in some node's main memory (and
	// on which node it landed first); inputs start durable on their owner.
	durable := make([]int, n)
	for i := range durable {
		durable[i] = -1
	}
	for _, v := range g.Inputs() {
		durable[v] = nodeOf(v)
	}

	const never = int(^uint(0) >> 1)
	nextUseOnNode := func(v cdag.VertexID, after, node int) int {
		// Linear scan from the shared pointer; uses are consumed in order.
		for usePtr[v] < useOff[v+1] && int(usePos[usePtr[v]]) <= after {
			usePtr[v]++
		}
		for k := usePtr[v]; k < useOff[v+1]; k++ {
			if int(useNode[k]) == node {
				return int(usePos[k])
			}
		}
		return never
	}
	neededLater := func(v cdag.VertexID, after int) bool {
		for k := usePtr[v]; k < useOff[v+1]; k++ {
			if int(usePos[k]) > after {
				return true
			}
		}
		return g.IsOutput(v)
	}

	// pinStamp[v] == step marks v as pinned (an operand of the vertex firing
	// at that step), replacing a per-step map allocation.
	pinStamp := make([]int32, n)
	for i := range pinStamp {
		pinStamp[i] = -1
	}

	evict := func(node, pos int) error {
		victim, ok := caches[node].chooseVictim(pinStamp, int32(pos))
		if !ok {
			return fmt.Errorf("memsim: fast memory of node %d full of pinned values at step %d", node, pos)
		}
		if durable[victim] < 0 && neededLater(victim, pos) {
			stats.StoresPerNode[node]++
			durable[victim] = node
		}
		caches[node].remove(victim)
		return nil
	}
	ensureRoom := func(node, pos int) error {
		for caches[node].len() >= cfg.FastWords {
			if err := evict(node, pos); err != nil {
				return err
			}
		}
		return nil
	}

	for i, v := range order {
		if i&4095 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		node := nodeOf(v)
		// One row slice serves both the pinning and the fetch pass.
		preds := predVal[predOff[v]:predOff[v+1]]
		for _, p := range preds {
			pinStamp[p] = int32(i)
		}
		for _, p := range preds {
			if caches[node].contains(p) {
				caches[node].touch(p, i, nextUseOnNode(p, i, node))
				continue
			}
			if err := ensureRoom(node, i); err != nil {
				return nil, err
			}
			if durable[p] < 0 {
				// The value only lives in another node's fast memory: it must
				// first be written back there before this node can fetch it.
				src := -1
				for nd := range caches {
					if nd != node && caches[nd].contains(p) {
						src = nd
						break
					}
				}
				if src < 0 {
					return nil, fmt.Errorf("memsim: value of vertex %d lost before use by %d", p, v)
				}
				stats.StoresPerNode[src]++
				durable[p] = src
			}
			if durable[p] != node {
				stats.RemoteGetsPerNode[node]++
			} else {
				stats.LoadsPerNode[node]++
			}
			caches[node].insert(p, i, nextUseOnNode(p, i, node))
		}
		if err := ensureRoom(node, i); err != nil {
			return nil, err
		}
		caches[node].insert(v, i, nextUseOnNode(v, i, node))
		stats.ComputesPerNode[node]++
	}

	// Final write-back of outputs still only in fast memory.
	for _, v := range g.Outputs() {
		if durable[v] >= 0 {
			continue
		}
		node := nodeOf(v)
		if !caches[node].contains(v) {
			return nil, fmt.Errorf("memsim: output %d lost before final store", v)
		}
		stats.StoresPerNode[node]++
		durable[v] = node
	}
	return stats, nil
}

// cache is a fixed-capacity value cache with Belady or LRU replacement,
// built on the concrete indexed priority heap of package iheap: membership,
// touches, removals and victim selection all run on flat arrays without the
// interface boxing of container/heap, and victim ties (values whose next use
// coincides, or that are never used again) are broken deterministically by
// smallest vertex ID.  The heap's position index costs one lazily-allocated
// int32 per graph vertex per active node — proportionate for the simulator's
// design point of single-digit node counts against multi-megabyte CSR
// graphs; a many-hundred-node simulation would want a capacity-bounded index
// instead.
type cache struct {
	policy Policy
	h      iheap.PriorityHeap
	clock  int64

	// scratch for chooseVictim's pinned-entry skip.
	skipV []cdag.VertexID
	skipP []int64
}

func newCache(universe int, policy Policy) *cache {
	c := &cache{policy: policy}
	c.h.Init(universe)
	return c
}

func (c *cache) len() int                      { return c.h.Len() }
func (c *cache) contains(v cdag.VertexID) bool { return c.h.Contains(v) }

func (c *cache) priorityFor(pos, nextUse int) int64 {
	c.clock++
	if c.policy == LRU {
		return -c.clock // least recently touched = highest priority to evict
	}
	if nextUse == int(^uint(0)>>1) {
		return int64(1) << 62
	}
	return int64(nextUse)
}

func (c *cache) insert(v cdag.VertexID, pos, nextUse int) {
	c.h.Update(v, c.priorityFor(pos, nextUse))
}

func (c *cache) touch(v cdag.VertexID, pos, nextUse int) {
	if c.h.Contains(v) {
		c.h.Update(v, c.priorityFor(pos, nextUse))
	}
}

func (c *cache) remove(v cdag.VertexID) {
	c.h.Remove(v)
}

// chooseVictim returns the entry with the highest eviction priority that is
// not pinned (pinStamp[v] == step marks v pinned).  It reports false when
// every entry is pinned.
func (c *cache) chooseVictim(pinStamp []int32, step int32) (cdag.VertexID, bool) {
	// Pop until an unpinned entry surfaces, then reinsert everything popped
	// (the caller's remove() does the actual deletion of the victim).
	c.skipV, c.skipP = c.skipV[:0], c.skipP[:0]
	victim, found := cdag.InvalidVertex, false
	for {
		v, p, ok := c.h.PopMax()
		if !ok {
			break
		}
		c.skipV = append(c.skipV, v)
		c.skipP = append(c.skipP, p)
		if pinStamp[v] != step {
			victim, found = v, true
			break
		}
	}
	for i, v := range c.skipV {
		c.h.Update(v, c.skipP[i])
	}
	if !found {
		return 0, false
	}
	return victim, true
}
