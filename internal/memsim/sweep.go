package memsim

import (
	"runtime"
	"sync"
	"sync/atomic"

	"cdagio/internal/cdag"
)

// Job is one simulation of a sweep: a machine configuration, a schedule and
// an optional vertex→node assignment, all against a shared graph.
type Job struct {
	Cfg   Config
	Order []cdag.VertexID
	Owner []int
}

// Sweep runs the jobs over a bounded worker pool and returns one Stats per
// job, in job order.  Each job is an independent Run against the shared
// (read-only) graph, so the results — including the error, which is the one
// the lowest-indexed failing job produced — are deterministically identical
// to running the jobs serially, for every worker count.  workers ≤ 0 selects
// runtime.GOMAXPROCS(0).
//
// This is the engine behind the per-S tightness sweeps and per-schedule
// ablations of Section 5.4: the schedules are precomputed and the memory
// simulations, which dominate the sweep, fan out.
func Sweep(g *cdag.Graph, jobs []Job, workers int) ([]*Stats, error) {
	// Compile any staged edges before the workers start: the lazy CSR
	// materialization is not synchronized.
	g.Materialize()
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	out := make([]*Stats, len(jobs))
	errs := make([]error, len(jobs))
	if workers <= 1 {
		for i, j := range jobs {
			out[i], errs[i] = Run(g, j.Cfg, j.Order, j.Owner)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(jobs) {
						return
					}
					out[i], errs[i] = Run(g, jobs[i].Cfg, jobs[i].Order, jobs[i].Owner)
				}
			}()
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
