package memsim

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"cdagio/internal/cdag"
	"cdagio/internal/fault"
)

// runJob executes one job under the worker recover wrapper: a panic inside
// the simulator (or injected at fault.PointMemsimSweepWorker) becomes that
// job's error instead of killing the worker goroutine and the process with
// it.
func runJob(ctx context.Context, g *cdag.Graph, job Job) (stats *Stats, err error) {
	if perr := fault.Capture(fault.PointMemsimSweepWorker, func() {
		fault.Inject(fault.PointMemsimSweepWorker)
		stats, err = RunCtx(ctx, g, job.Cfg, job.Order, job.Owner)
	}); perr != nil {
		return nil, perr
	}
	return stats, err
}

// Job is one simulation of a sweep: a machine configuration, a schedule and
// an optional vertex→node assignment, all against a shared graph.
type Job struct {
	Cfg   Config
	Order []cdag.VertexID
	Owner []int
}

// Sweep runs the jobs over a bounded worker pool and returns one Stats per
// job, in job order.  Each job is an independent Run against the shared
// (read-only) graph, so the results — including the error, which is the one
// the lowest-indexed failing job produced — are deterministically identical
// to running the jobs serially, for every worker count.  workers ≤ 0 selects
// runtime.GOMAXPROCS(0).
//
// This is the engine behind the per-S tightness sweeps and per-schedule
// ablations of Section 5.4: the schedules are precomputed and the memory
// simulations, which dominate the sweep, fan out.
func Sweep(g *cdag.Graph, jobs []Job, workers int) ([]*Stats, error) {
	// context.Background() is never cancelled, so SweepCtx degenerates to the
	// historical behavior.
	//cdaglint:allow ctxflow deprecated no-ctx entry point; documented as a never-cancelled run
	return SweepCtx(context.Background(), g, jobs, workers)
}

// SweepCtx is Sweep under a context: workers re-check ctx before claiming
// each job, and the jobs themselves run under ctx (RunCtx checks it every
// 4096 schedule steps), so cancellation latency is bounded by a few thousand
// simulation steps per in-flight worker — never by the length of the job
// list or the size of one job.  A cancelled sweep returns (nil, ctx.Err());
// partial results are discarded.  Under a never-cancelled context the results
// are bit-identical to Sweep at every worker count.
func SweepCtx(ctx context.Context, g *cdag.Graph, jobs []Job, workers int) ([]*Stats, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// Compile any staged edges before the workers start: the lazy CSR
	// materialization is not synchronized.
	g.Materialize()
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	out := make([]*Stats, len(jobs))
	errs := make([]error, len(jobs))
	if workers <= 1 {
		for i, j := range jobs {
			if ctx.Err() != nil {
				break
			}
			out[i], errs[i] = runJob(ctx, g, j)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for {
					if ctx.Err() != nil {
						return
					}
					i := int(next.Add(1)) - 1
					if i >= len(jobs) {
						return
					}
					out[i], errs[i] = runJob(ctx, g, jobs[i])
				}
			}()
		}
		wg.Wait()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// The error reported is the one the lowest-indexed failing job produced,
	// matching a serial run.
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
