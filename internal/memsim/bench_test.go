package memsim

import (
	"testing"

	"cdagio/internal/gen"
	"cdagio/internal/sched"
)

// benchInstance builds the shared benchmark workload outside the timed loop:
// a 2-D Jacobi CDAG with its topological schedule and a two-node block
// partition.  The graph construction and scheduling are measured by the gen
// and root-package benchmarks; these benchmarks isolate the simulator itself.
func benchInstance(b *testing.B) (*gen.JacobiResult, []int) {
	b.Helper()
	jr := gen.Jacobi(2, 24, 8, gen.StencilBox)
	owner := sched.BlockPartitionGrid(jr, 2)
	return jr, owner
}

// BenchmarkMemsimRunBelady measures one Belady-policy simulation on a
// two-node machine: the per-visit cost of the predecessor-row replay, the
// use-list construction and the indexed eviction heap.
func BenchmarkMemsimRunBelady(b *testing.B) {
	jr, owner := benchInstance(b)
	order := sched.Topological(jr.Graph)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(jr.Graph, Config{Nodes: 2, FastWords: 64, Policy: Belady}, order, owner); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMemsimRunLRU is BenchmarkMemsimRunBelady under the LRU policy,
// whose victim selection skips the next-use scan.
func BenchmarkMemsimRunLRU(b *testing.B) {
	jr, owner := benchInstance(b)
	order := sched.Topological(jr.Graph)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(jr.Graph, Config{Nodes: 2, FastWords: 64, Policy: LRU}, order, owner); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMemsimSweep measures the worker-pool sweep over a per-S job list —
// the engine behind the Section 5.4 tightness sweeps — at GOMAXPROCS workers.
func BenchmarkMemsimSweep(b *testing.B) {
	jr, owner := benchInstance(b)
	topo := sched.Topological(jr.Graph)
	skewed := sched.StencilSkewed(jr, 4)
	var jobs []Job
	for _, s := range []int{16, 32, 64, 128, 256} {
		jobs = append(jobs,
			Job{Cfg: Config{Nodes: 1, FastWords: s, Policy: Belady}, Order: topo},
			Job{Cfg: Config{Nodes: 2, FastWords: s, Policy: Belady}, Order: skewed, Owner: owner},
		)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Sweep(jr.Graph, jobs, 0); err != nil {
			b.Fatal(err)
		}
	}
}
