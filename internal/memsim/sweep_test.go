package memsim

import (
	"reflect"
	"testing"

	"cdagio/internal/gen"
	"cdagio/internal/sched"
)

// TestSweepDeterministicAcrossWorkerCounts runs a mixed sweep (policies,
// fast-memory sizes and multi-node configurations over two graphs' schedules)
// serially and at several worker counts, and requires exactly identical
// per-job statistics every time.
func TestSweepDeterministicAcrossWorkerCounts(t *testing.T) {
	jr := gen.Jacobi(2, 12, 6, gen.StencilBox)
	g := jr.Graph
	topo := sched.Topological(g)
	owner := sched.BlockPartitionGrid(jr, 2)
	jobs := []Job{
		{Cfg: Config{Nodes: 1, FastWords: 16, Policy: Belady}, Order: topo},
		{Cfg: Config{Nodes: 1, FastWords: 32, Policy: Belady}, Order: sched.StencilSkewed(jr, 4)},
		{Cfg: Config{Nodes: 1, FastWords: 16, Policy: LRU}, Order: topo},
		{Cfg: Config{Nodes: 2, FastWords: 64, Policy: Belady}, Order: topo, Owner: owner},
		{Cfg: Config{Nodes: 1, FastWords: 128, Policy: Belady}, Order: topo},
		{Cfg: Config{Nodes: 2, FastWords: 64, Policy: LRU}, Order: topo, Owner: owner},
	}

	// Serial reference: one Run per job.
	want := make([]*Stats, len(jobs))
	for i, j := range jobs {
		s, err := Run(g, j.Cfg, j.Order, j.Owner)
		if err != nil {
			t.Fatalf("serial job %d: %v", i, err)
		}
		want[i] = s
	}

	for _, workers := range []int{1, 2, 3, 4, 8, 0} {
		got, err := Sweep(g, jobs, workers)
		if err != nil {
			t.Fatalf("Sweep(workers=%d): %v", workers, err)
		}
		for i := range jobs {
			if !reflect.DeepEqual(got[i], want[i]) {
				t.Fatalf("Sweep(workers=%d) job %d = %+v, want %+v", workers, i, got[i], want[i])
			}
		}
	}
}

// TestSweepErrorDeterministic checks that the reported error is the
// lowest-indexed failing job's, independent of worker count.
func TestSweepErrorDeterministic(t *testing.T) {
	g := gen.Chain(6)
	topo := sched.Topological(g)
	jobs := []Job{
		{Cfg: Config{Nodes: 1, FastWords: 4, Policy: Belady}, Order: topo},
		{Cfg: Config{Nodes: 0, FastWords: 4, Policy: Belady}, Order: topo}, // invalid: zero nodes
		{Cfg: Config{Nodes: 1, FastWords: 0, Policy: Belady}, Order: topo}, // invalid: zero words
		{Cfg: Config{Nodes: 1, FastWords: 4, Policy: Belady}, Order: topo},
	}
	var wantErr string
	for i, workers := range []int{1, 2, 4, 0} {
		_, err := Sweep(g, jobs, workers)
		if err == nil {
			t.Fatalf("Sweep(workers=%d): expected error", workers)
		}
		if i == 0 {
			wantErr = err.Error()
			continue
		}
		if err.Error() != wantErr {
			t.Fatalf("Sweep(workers=%d) error %q, want %q", workers, err, wantErr)
		}
	}
}
