package memsim

import (
	"strings"
	"testing"

	"cdagio/internal/cdag"
	"cdagio/internal/gen"
	"cdagio/internal/sched"
)

func TestRunChain(t *testing.T) {
	g := gen.Chain(20)
	stats, err := Run(g, Config{Nodes: 1, FastWords: 2, Policy: Belady}, sched.Topological(g), nil)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// One load of the input, one store of the output.
	if stats.LoadsPerNode[0] != 1 || stats.StoresPerNode[0] != 1 {
		t.Fatalf("chain I/O = %d loads, %d stores; want 1, 1",
			stats.LoadsPerNode[0], stats.StoresPerNode[0])
	}
	if stats.HorizontalTotal() != 0 {
		t.Fatalf("single node has no horizontal traffic")
	}
	if stats.ComputesPerNode[0] != int64(g.NumOperations()) {
		t.Fatalf("computes = %d", stats.ComputesPerNode[0])
	}
	if !strings.Contains(stats.String(), "vertical") {
		t.Fatalf("String = %q", stats.String())
	}
}

func TestRunMatMulCacheSizes(t *testing.T) {
	r := gen.MatMul(8)
	g := r.Graph
	order := sched.Topological(g)
	var prev int64 = -1
	// Shrinking the cache must not decrease vertical traffic.
	for _, s := range []int{4096, 64, 16} {
		stats, err := Run(g, Config{Nodes: 1, FastWords: s, Policy: Belady}, order, nil)
		if err != nil {
			t.Fatalf("Run S=%d: %v", s, err)
		}
		v := stats.VerticalTotal()
		if prev >= 0 && v < prev {
			t.Errorf("S=%d vertical %d below larger-cache value %d", s, v, prev)
		}
		prev = v
	}
	// With an ample cache the traffic is exactly the compulsory 2n²+n².
	stats, err := Run(g, Config{Nodes: 1, FastWords: 1 << 20, Policy: Belady}, order, nil)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got, want := stats.VerticalTotal(), int64(3*8*8); got != want {
		t.Errorf("compulsory traffic = %d, want %d", got, want)
	}
}

func TestRunBlockedBeatsNaiveMatMul(t *testing.T) {
	r := gen.MatMul(12)
	g := r.Graph
	s := 40 // fast memory of 40 values: blocked reuse should pay off
	naive, err := Run(g, Config{Nodes: 1, FastWords: s, Policy: Belady}, sched.Topological(g), nil)
	if err != nil {
		t.Fatalf("naive: %v", err)
	}
	blocked, err := Run(g, Config{Nodes: 1, FastWords: s, Policy: Belady}, sched.MatMulBlocked(r, 3), nil)
	if err != nil {
		t.Fatalf("blocked: %v", err)
	}
	if blocked.VerticalTotal() >= naive.VerticalTotal() {
		t.Errorf("blocked schedule (%d) not better than naive (%d)",
			blocked.VerticalTotal(), naive.VerticalTotal())
	}
}

func TestRunTwoNodesGhostExchange(t *testing.T) {
	jr := gen.Jacobi(1, 64, 8, gen.StencilStar)
	g := jr.Graph
	owner := sched.BlockPartitionGrid(jr, 2)
	stats, err := Run(g, Config{Nodes: 2, FastWords: 256, Policy: Belady}, sched.Topological(g), owner)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if stats.HorizontalTotal() == 0 {
		t.Errorf("expected ghost-cell remote fetches across the partition boundary")
	}
	// One ghost value per time step per direction: 2 per step.
	if stats.HorizontalTotal() > int64(2*jr.Steps) {
		t.Errorf("horizontal traffic %d exceeds the ghost-cell volume %d",
			stats.HorizontalTotal(), 2*jr.Steps)
	}
	if stats.ComputesPerNode[0] == 0 || stats.ComputesPerNode[1] == 0 {
		t.Errorf("work not distributed: %v", stats.ComputesPerNode)
	}
	if stats.MaxNodeHorizontal() == 0 || stats.MaxNodeVertical() == 0 {
		t.Errorf("per-node maxima not reported")
	}
}

func TestRunPolicies(t *testing.T) {
	g := gen.FFT(32)
	order := sched.Topological(g)
	belady, err := Run(g, Config{Nodes: 1, FastWords: 12, Policy: Belady}, order, nil)
	if err != nil {
		t.Fatalf("belady: %v", err)
	}
	lru, err := Run(g, Config{Nodes: 1, FastWords: 12, Policy: LRU}, order, nil)
	if err != nil {
		t.Fatalf("lru: %v", err)
	}
	if belady.VerticalTotal() > lru.VerticalTotal() {
		t.Errorf("Belady (%d) should not lose to LRU (%d)", belady.VerticalTotal(), lru.VerticalTotal())
	}
	if Belady.String() == "" || LRU.String() == "" || Policy(7).String() == "" {
		t.Errorf("policy names empty")
	}
}

func TestRunErrors(t *testing.T) {
	g := gen.Chain(4)
	order := sched.Topological(g)
	if _, err := Run(g, Config{Nodes: 0, FastWords: 4}, order, nil); err == nil {
		t.Errorf("expected error for zero nodes")
	}
	if _, err := Run(g, Config{Nodes: 1, FastWords: 0}, order, nil); err == nil {
		t.Errorf("expected error for zero fast memory")
	}
	if _, err := Run(g, Config{Nodes: 1, FastWords: 4}, []cdag.VertexID{0, 1, 2, 3}, nil); err == nil {
		t.Errorf("expected error for scheduled input")
	}
	if _, err := Run(g, Config{Nodes: 1, FastWords: 4}, []cdag.VertexID{1, 1, 2, 3}, nil); err == nil {
		t.Errorf("expected error for duplicate vertex")
	}
	if _, err := Run(g, Config{Nodes: 1, FastWords: 4}, []cdag.VertexID{1, 2}, nil); err == nil {
		t.Errorf("expected error for missing vertex")
	}
	if _, err := Run(g, Config{Nodes: 1, FastWords: 4}, []cdag.VertexID{2, 1, 3}, nil); err == nil {
		t.Errorf("expected error for out-of-order schedule")
	}
	if _, err := Run(g, Config{Nodes: 1, FastWords: 4}, []cdag.VertexID{1, 2, 99}, nil); err == nil {
		t.Errorf("expected error for out-of-range vertex")
	}
	d := gen.DotProduct(4)
	if _, err := Run(d, Config{Nodes: 1, FastWords: 2}, sched.Topological(d), nil); err == nil {
		t.Errorf("expected error for fast memory below in-degree+1")
	}
}

func TestRunAgreesWithPebblePlayerOnOuterProduct(t *testing.T) {
	// The single-node simulator and the RBW schedule player model the same
	// two-level machine, so on a simple CDAG with an ample cache they must
	// agree exactly: compulsory loads of the inputs plus stores of the
	// outputs.
	n := 5
	g := gen.OuterProduct(n)
	stats, err := Run(g, Config{Nodes: 1, FastWords: 1024, Policy: Belady}, sched.Topological(g), nil)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if stats.LoadsPerNode[0] != int64(2*n) || stats.StoresPerNode[0] != int64(n*n) {
		t.Errorf("outer product I/O = %d + %d, want %d + %d",
			stats.LoadsPerNode[0], stats.StoresPerNode[0], 2*n, n*n)
	}
}
