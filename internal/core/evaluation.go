package core

import (
	"fmt"
	"strings"

	"cdagio/internal/balance"
	"cdagio/internal/bounds"
	"cdagio/internal/cdag"
	"cdagio/internal/gen"
	"cdagio/internal/machine"
	"cdagio/internal/pebble"
)

// EvaluationRow pairs the paper's reported quantity with the value this
// library computes for it, for the EXPERIMENTS.md style comparisons.
type EvaluationRow struct {
	Experiment string
	Quantity   string
	Paper      float64
	Measured   float64
}

// CGEvaluation reproduces the Section 5.2.3 analysis: the vertical
// bound-per-FLOP (0.3 for d = 3), the horizontal upper bound per FLOP, and
// the bandwidth-bound verdicts against the given machines.
type CGEvaluation struct {
	Params          bounds.CGParams
	VerticalPerFlop float64
	HorizPerFlop    float64
	VerticalRows    []balance.Row
	HorizontalRows  []balance.Row
}

// EvaluateCG runs the CG balance analysis of Section 5.2.3.
func EvaluateCG(p bounds.CGParams, machines []machine.Machine) (*CGEvaluation, error) {
	ev := &CGEvaluation{
		Params:          p,
		VerticalPerFlop: bounds.CGVerticalPerFlop(p),
		HorizPerFlop:    bounds.CGHorizontalPerFlop(p),
	}
	var err error
	ev.VerticalRows, err = balance.EvaluateVertical("CG", ev.VerticalPerFlop, -1, machines)
	if err != nil {
		return nil, err
	}
	ev.HorizontalRows, err = balance.EvaluateHorizontal("CG", 0, ev.HorizPerFlop, machines)
	if err != nil {
		return nil, err
	}
	return ev, nil
}

// Report renders the CG evaluation.
func (ev *CGEvaluation) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "CG balance analysis (Section 5.2.3): d=%d, n=%d, T=%d, P=%d, nodes=%d\n",
		ev.Params.Dim, ev.Params.N, ev.Params.Iterations, ev.Params.Processors, ev.Params.Nodes)
	fmt.Fprintf(&b, "  LB_vert x N_nodes / |V| = %.4g (paper: 0.3 for d=3)\n", ev.VerticalPerFlop)
	fmt.Fprintf(&b, "  UB_horiz x N_nodes / |V| = %.4g\n", ev.HorizPerFlop)
	b.WriteString(balance.FormatTable(append(append([]balance.Row{}, ev.VerticalRows...), ev.HorizontalRows...)))
	return b.String()
}

// GMRESEvaluation reproduces the Section 5.3.3 analysis for a sweep of
// restart values m.
type GMRESEvaluation struct {
	Dim, N     int
	Processors int
	Nodes      int
	MSweep     []int
	// VerticalPerFlop[i] is 6/(m+20) for MSweep[i]; HorizPerFlop likewise.
	VerticalPerFlop []float64
	HorizPerFlop    []float64
	Rows            []balance.Row
}

// EvaluateGMRES runs the GMRES balance analysis over the restart sweep.
func EvaluateGMRES(dim, n, processors, nodes int, mSweep []int, machines []machine.Machine) (*GMRESEvaluation, error) {
	ev := &GMRESEvaluation{Dim: dim, N: n, Processors: processors, Nodes: nodes, MSweep: mSweep}
	for _, m := range mSweep {
		p := bounds.GMRESParams{Dim: dim, N: n, Iterations: m, Processors: processors, Nodes: nodes}
		v := bounds.GMRESVerticalPerFlop(p)
		h := bounds.GMRESHorizontalPerFlop(p)
		ev.VerticalPerFlop = append(ev.VerticalPerFlop, v)
		ev.HorizPerFlop = append(ev.HorizPerFlop, h)
		rows, err := balance.EvaluateVertical(fmt.Sprintf("GMRES m=%d", m), v, -1, machines)
		if err != nil {
			return nil, err
		}
		ev.Rows = append(ev.Rows, rows...)
		hrows, err := balance.EvaluateHorizontal(fmt.Sprintf("GMRES m=%d", m), 0, h, machines)
		if err != nil {
			return nil, err
		}
		ev.Rows = append(ev.Rows, hrows...)
	}
	return ev, nil
}

// Report renders the GMRES evaluation.
func (ev *GMRESEvaluation) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "GMRES balance analysis (Section 5.3.3): d=%d, n=%d\n", ev.Dim, ev.N)
	for i, m := range ev.MSweep {
		fmt.Fprintf(&b, "  m=%-5d LB_vert/FLOP = %.4g (paper: 6/(m+20) = %.4g)   UB_horiz/FLOP = %.4g\n",
			m, ev.VerticalPerFlop[i], 6.0/(float64(m)+20), ev.HorizPerFlop[i])
	}
	b.WriteString(balance.FormatTable(ev.Rows))
	return b.String()
}

// JacobiEvaluation reproduces the Section 5.4.3 analysis: the balance
// criterion per dimension and the threshold dimension for a machine level.
type JacobiEvaluation struct {
	Machine       machine.Machine
	CacheWords    int64
	Balance       float64
	PerFlopByDim  map[int]float64
	VerdictByDim  map[int]balance.Verdict
	ThresholdDim  float64
	PaperLimitDim float64 // the paper's reported 4.83 for BG/Q
}

// EvaluateJacobi runs the Jacobi balance analysis for dimensions 1..maxDim on
// the machine's main-memory/cache boundary.
func EvaluateJacobi(m machine.Machine, maxDim int) (*JacobiEvaluation, error) {
	beta, err := m.VerticalBalance()
	if err != nil {
		return nil, err
	}
	s := m.CacheCapacityWords()
	ev := &JacobiEvaluation{
		Machine:       m,
		CacheWords:    s,
		Balance:       beta,
		PerFlopByDim:  map[int]float64{},
		VerdictByDim:  map[int]balance.Verdict{},
		ThresholdDim:  bounds.JacobiMaxUnboundDimension(beta, s),
		PaperLimitDim: 4.83,
	}
	for d := 1; d <= maxDim; d++ {
		perFlop := bounds.JacobiVerticalPerFlop(d, s)
		ev.PerFlopByDim[d] = perFlop
		// Theorem 10 is tight (the skewed-tiled schedule matches it), so the
		// same value serves as the upper bound per FLOP.
		ev.VerdictByDim[d] = balance.Check(perFlop, perFlop, beta)
	}
	return ev, nil
}

// Report renders the Jacobi evaluation.
func (ev *JacobiEvaluation) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Jacobi balance analysis (Section 5.4.3) on %s: S = %d words, balance = %.4g\n",
		ev.Machine.Name, ev.CacheWords, ev.Balance)
	for d := 1; d <= len(ev.PerFlopByDim); d++ {
		if v, ok := ev.PerFlopByDim[d]; ok {
			fmt.Fprintf(&b, "  d=%d: traffic/FLOP = 1/(4(2S)^(1/d)) = %.4g -> %s\n", d, v, ev.VerdictByDim[d])
		}
	}
	fmt.Fprintf(&b, "  threshold dimension (this library): %.2f; paper reports %.2f\n",
		ev.ThresholdDim, ev.PaperLimitDim)
	return b.String()
}

// CompositeEvaluation reproduces the Section 3 composite example: the
// recomputation strategy's 4n+1 I/O versus the naive sum of per-step bounds.
type CompositeEvaluation struct {
	N int
	// StrategyIO is the I/O of the explicit Hong-Kung game played by
	// PlayCompositeStrategy (4n+1).
	StrategyIO int
	// MatMulAloneLower is the lower bound of the embedded matrix
	// multiplication analyzed in isolation with the same fast memory.
	MatMulAloneLower float64
	// PerStepSum is the sum of the individual steps' compulsory I/O costs
	// (what naive composition would predict).
	PerStepSum float64
	FastMemory int
}

// EvaluateComposite plays the Section-3 strategy and gathers the comparison.
func EvaluateComposite(n int) (*CompositeEvaluation, error) {
	res, s, err := PlayCompositeStrategy(n)
	if err != nil {
		return nil, err
	}
	matmul := bounds.MatMulLower(n, s)
	perStep := 2*bounds.OuterProductIO(n).Value + // A and B rank-1 products
		matmul.Value + // C = A·B
		float64(n*n+1) // final sum reads n² values, writes 1
	return &CompositeEvaluation{
		N:                n,
		StrategyIO:       res.IO(),
		MatMulAloneLower: matmul.Value,
		PerStepSum:       perStep,
		FastMemory:       s,
	}, nil
}

// Report renders the composite evaluation.
func (ev *CompositeEvaluation) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Composite example (Section 3), n = %d, S = %d:\n", ev.N, ev.FastMemory)
	fmt.Fprintf(&b, "  recomputation strategy I/O: %d (paper: 4n+1 = %d)\n", ev.StrategyIO, 4*ev.N+1)
	fmt.Fprintf(&b, "  matmul step analyzed alone: >= %.4g\n", ev.MatMulAloneLower)
	fmt.Fprintf(&b, "  naive per-step composition: %.4g\n", ev.PerStepSum)
	return b.String()
}

// PlayCompositeStrategy plays, move by move, the Section-3 strategy on the
// composite CDAG under the Hong–Kung game: load the four input vectors once
// (4n loads), recompute the rank-1 products A[i][k] and B[k][j] on the fly
// for every element of C, accumulate the global sum in a register, and store
// the single output (1 store).  It returns the completed game's result and
// the number of red pebbles used (4n + 6).
func PlayCompositeStrategy(n int) (pebble.Result, int, error) {
	comp := gen.Composite(n)
	g := comp.Graph
	s := 4*n + 6
	game := pebble.NewGame(g, pebble.HongKung, s, false)

	apply := func(kind pebble.MoveKind, v cdag.VertexID) error {
		return game.Apply(pebble.Move{Kind: kind, V: v})
	}
	// Load the four input vectors (4n loads).
	for i := 0; i < n; i++ {
		for _, v := range []cdag.VertexID{comp.P[i], comp.Q[i], comp.R[i], comp.S[i]} {
			if err := apply(pebble.Load, v); err != nil {
				return pebble.Result{}, s, err
			}
		}
	}
	var sumAcc cdag.VertexID = cdag.InvalidVertex
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var acc cdag.VertexID = cdag.InvalidVertex
			for k := 0; k < n; k++ {
				// Recompute A[i][k] and B[k][j] from the resident vectors.
				steps := []cdag.VertexID{comp.A[i][k], comp.B[k][j], comp.Mul[i][j][k]}
				for _, v := range steps {
					if err := apply(pebble.Compute, v); err != nil {
						return pebble.Result{}, s, err
					}
				}
				// The rank-1 values are no longer needed once multiplied.
				if err := apply(pebble.Delete, comp.A[i][k]); err != nil {
					return pebble.Result{}, s, err
				}
				if err := apply(pebble.Delete, comp.B[k][j]); err != nil {
					return pebble.Result{}, s, err
				}
				m := comp.Mul[i][j][k]
				if acc == cdag.InvalidVertex {
					acc = m
					continue
				}
				add := comp.AddC[i][j][k]
				if err := apply(pebble.Compute, add); err != nil {
					return pebble.Result{}, s, err
				}
				if err := apply(pebble.Delete, acc); err != nil {
					return pebble.Result{}, s, err
				}
				if err := apply(pebble.Delete, m); err != nil {
					return pebble.Result{}, s, err
				}
				acc = add
			}
			// Fold C[i][j] into the running sum.
			if sumAcc == cdag.InvalidVertex {
				sumAcc = acc
				continue
			}
			add := comp.AddS[i][j]
			if err := apply(pebble.Compute, add); err != nil {
				return pebble.Result{}, s, err
			}
			if err := apply(pebble.Delete, sumAcc); err != nil {
				return pebble.Result{}, s, err
			}
			if err := apply(pebble.Delete, acc); err != nil {
				return pebble.Result{}, s, err
			}
			sumAcc = add
		}
	}
	if err := apply(pebble.Store, sumAcc); err != nil {
		return pebble.Result{}, s, err
	}
	if !game.IsComplete() {
		return pebble.Result{}, s, fmt.Errorf("core: composite strategy left the game incomplete: %s", game.Incomplete())
	}
	return pebble.Result{
		Variant: pebble.HongKung,
		S:       s,
		Loads:   game.Loads(),
		Stores:  game.Stores(),
	}, s, nil
}

// Table1Report renders the paper's Table 1 from the machine catalog.
func Table1Report() string {
	return balance.Table1(machine.Table1())
}
