package core

import (
	"math"
	"strings"
	"testing"

	"cdagio/internal/bounds"
	"cdagio/internal/gen"
	"cdagio/internal/machine"
	"cdagio/internal/prbw"
	"cdagio/internal/sched"
)

func TestAnalyzeSmallGraphs(t *testing.T) {
	for _, tc := range []struct {
		name string
		run  func(t *testing.T)
	}{
		{"fft4", func(t *testing.T) {
			g := gen.FFT(4)
			a, err := Analyze(g, Options{FastMemory: 3, ExactOptimalLimit: 16, WavefrontCandidates: -1})
			if err != nil {
				t.Fatalf("Analyze: %v", err)
			}
			best := a.BestLower()
			if best.Value <= 0 {
				t.Fatalf("no nontrivial lower bound: %+v", a.LowerBounds)
			}
			if a.Upper.Value < best.Value {
				t.Fatalf("upper bound %v below lower bound %v", a.Upper.Value, best.Value)
			}
			if a.ExactOptimal == nil {
				t.Fatalf("exact optimal expected for 12-vertex graph")
			}
			if a.Upper.Value < a.ExactOptimal.Value {
				t.Fatalf("measured I/O below exact optimum")
			}
			if !strings.Contains(a.Report(), "lower bound") {
				t.Errorf("report missing content")
			}
		}},
		{"jacobi", func(t *testing.T) {
			jr := gen.Jacobi(1, 16, 4, gen.StencilStar)
			a, err := Analyze(jr.Graph, Options{FastMemory: 6})
			if err != nil {
				t.Fatalf("Analyze: %v", err)
			}
			if a.BestLower().Value < float64(jr.Graph.NumInputs()+jr.Graph.NumOutputs()) {
				t.Fatalf("lower bound below compulsory I/O")
			}
			if a.Gap() < 1 {
				t.Fatalf("gap below 1: %v", a.Gap())
			}
		}},
		{"cg-wavefront", func(t *testing.T) {
			cg := gen.CG(1, 8, 1)
			a, err := Analyze(cg.Graph, Options{FastMemory: 4, WavefrontCandidates: 64})
			if err != nil {
				t.Fatalf("Analyze: %v", err)
			}
			// The wavefront bound should see at least one live vector (n=8).
			if a.WMax < 8 {
				t.Errorf("CG wmax = %d, want >= 8", a.WMax)
			}
		}},
	} {
		t.Run(tc.name, tc.run)
	}
}

func TestAnalyzeCustomScheduleAndErrors(t *testing.T) {
	r := gen.MatMul(4)
	blocked := sched.MatMulBlocked(r, 2)
	a, err := Analyze(r.Graph, Options{FastMemory: 20, Schedule: blocked})
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if a.ScheduleUsed != "caller-supplied" {
		t.Errorf("schedule label = %q", a.ScheduleUsed)
	}
	naive, err := Analyze(r.Graph, Options{FastMemory: 20})
	if err != nil {
		t.Fatalf("Analyze naive: %v", err)
	}
	if a.MeasuredIO > naive.MeasuredIO {
		t.Errorf("blocked schedule I/O %d worse than naive %d", a.MeasuredIO, naive.MeasuredIO)
	}
	if _, err := Analyze(r.Graph, Options{FastMemory: 0}); err == nil {
		t.Errorf("expected error for S=0")
	}
	if _, err := Analyze(gen.DotProduct(8), Options{FastMemory: 2}); err == nil {
		t.Errorf("expected error for S below in-degree")
	}
}

func TestAnalyzeParallel(t *testing.T) {
	g := gen.DotProduct(16)
	topo := prbw.Distributed(2, 1, 4, 32, 4096)
	pa, err := AnalyzeParallel(g, ParallelOptions{
		Topology:        topo,
		Assignment:      prbw.RoundRobin(g, 2, 8),
		SequentialLower: 34,
	})
	if err != nil {
		t.Fatalf("AnalyzeParallel: %v", err)
	}
	if pa.Stats.TotalComputes() != int64(g.NumOperations()) {
		t.Errorf("computes = %d", pa.Stats.TotalComputes())
	}
	if pa.VerticalLower.Value != 17 {
		t.Errorf("Theorem 5 conversion = %v, want 17", pa.VerticalLower.Value)
	}
	// Default assignment (single processor) also works.
	pa2, err := AnalyzeParallel(g, ParallelOptions{Topology: prbw.TwoLevel(1, 4, 1024)})
	if err != nil {
		t.Fatalf("AnalyzeParallel default: %v", err)
	}
	if pa2.Stats.HorizontalTraffic() != 0 {
		t.Errorf("single node should have no horizontal traffic")
	}
}

func TestMemsimUpperBoundHelper(t *testing.T) {
	jr := gen.Jacobi(1, 32, 4, gen.StencilStar)
	stats, err := MemsimUpperBound(jr.Graph, 2, 64, sched.Topological(jr.Graph), sched.BlockPartitionGrid(jr, 2))
	if err != nil {
		t.Fatalf("MemsimUpperBound: %v", err)
	}
	if stats.VerticalTotal() <= 0 {
		t.Errorf("no vertical traffic measured")
	}
}

func TestDominatorLowerBound(t *testing.T) {
	g := gen.FFT(8)
	k, dom := DominatorLowerBound(g)
	if k != 8 || len(dom) != 8 {
		t.Errorf("FFT dominator = %d (%v), want 8", k, dom)
	}
}

func TestEvaluateCGMatchesPaper(t *testing.T) {
	p := bounds.CGParams{Dim: 3, N: 1000, Iterations: 100, Processors: 2048 * 16, Nodes: 2048}
	ev, err := EvaluateCG(p, machine.Table1())
	if err != nil {
		t.Fatalf("EvaluateCG: %v", err)
	}
	if math.Abs(ev.VerticalPerFlop-0.3) > 1e-9 {
		t.Errorf("vertical per FLOP = %v, want 0.3", ev.VerticalPerFlop)
	}
	for _, r := range ev.VerticalRows {
		if r.Verdict.String() != "bandwidth bound" {
			t.Errorf("CG vertical on %s: %v", r.Machine, r.Verdict)
		}
	}
	for _, r := range ev.HorizontalRows {
		if r.Verdict.String() != "not bandwidth bound" {
			t.Errorf("CG horizontal on %s: %v", r.Machine, r.Verdict)
		}
	}
	if !strings.Contains(ev.Report(), "0.3") {
		t.Errorf("report missing headline value:\n%s", ev.Report())
	}
}

func TestEvaluateGMRESSweep(t *testing.T) {
	ev, err := EvaluateGMRES(3, 1000, 2048*16, 2048, []int{1, 10, 100, 1000}, machine.Table1())
	if err != nil {
		t.Fatalf("EvaluateGMRES: %v", err)
	}
	if len(ev.VerticalPerFlop) != 4 {
		t.Fatalf("sweep length wrong")
	}
	// 6/(m+20) decreases with m.
	for i := 1; i < len(ev.VerticalPerFlop); i++ {
		if ev.VerticalPerFlop[i] >= ev.VerticalPerFlop[i-1] {
			t.Errorf("vertical per FLOP not decreasing at %d", i)
		}
	}
	// m=1: 6/21; m=1000: 6/1020.
	if math.Abs(ev.VerticalPerFlop[0]-6.0/21) > 1e-9 || math.Abs(ev.VerticalPerFlop[3]-6.0/1020) > 1e-9 {
		t.Errorf("sweep endpoints wrong: %v", ev.VerticalPerFlop)
	}
	if !strings.Contains(ev.Report(), "GMRES") {
		t.Errorf("report missing content")
	}
}

func TestEvaluateJacobi(t *testing.T) {
	ev, err := EvaluateJacobi(machine.IBMBGQ(), 6)
	if err != nil {
		t.Fatalf("EvaluateJacobi: %v", err)
	}
	// Common dimensions are not bandwidth bound; the threshold is finite.
	for d := 1; d <= 3; d++ {
		if ev.VerdictByDim[d].String() != "not bandwidth bound" {
			t.Errorf("d=%d verdict = %v", d, ev.VerdictByDim[d])
		}
	}
	if math.IsInf(ev.ThresholdDim, 1) || ev.ThresholdDim < 4 {
		t.Errorf("threshold dimension = %v", ev.ThresholdDim)
	}
	if !strings.Contains(ev.Report(), "threshold") {
		t.Errorf("report missing threshold")
	}
	// A machine without balance data fails cleanly.
	if _, err := EvaluateJacobi(machine.Machine{Name: "x", Nodes: 1, CoresPerNode: 1, FlopsPerCore: 1, MainMemoryWords: 1}, 3); err == nil {
		t.Errorf("expected error for machine without balance")
	}
}

func TestCompositeStrategyMatchesPaper(t *testing.T) {
	for _, n := range []int{2, 4, 8} {
		ev, err := EvaluateComposite(n)
		if err != nil {
			t.Fatalf("n=%d: EvaluateComposite: %v", n, err)
		}
		if ev.StrategyIO != 4*n+1 {
			t.Errorf("n=%d: strategy I/O = %d, want %d", n, ev.StrategyIO, 4*n+1)
		}
		// The composite's achievable I/O sits below the naive per-step sum —
		// the motivation for the decomposition machinery.
		if float64(ev.StrategyIO) >= ev.PerStepSum {
			t.Errorf("n=%d: strategy I/O %d not below per-step sum %v", n, ev.StrategyIO, ev.PerStepSum)
		}
		if !strings.Contains(ev.Report(), "recomputation") {
			t.Errorf("report missing content")
		}
	}
	// For larger n the strategy even beats the matmul-alone lower bound,
	// illustrating that sub-computation bounds cannot simply be reused.
	ev, err := EvaluateComposite(64)
	if err != nil {
		t.Fatalf("EvaluateComposite(64): %v", err)
	}
	if float64(ev.StrategyIO) >= ev.MatMulAloneLower {
		t.Errorf("strategy I/O %d should undercut the matmul-alone bound %v for n=64",
			ev.StrategyIO, ev.MatMulAloneLower)
	}
}

func TestTable1Report(t *testing.T) {
	out := Table1Report()
	for _, want := range []string{"IBM BG/Q", "Cray XT5", "0.052", "0.058"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table1Report missing %q", want)
		}
	}
}
