// Package core ties the library together: it is the unified analyzer that,
// given a CDAG (or one of the paper's algorithm families) and a machine
// description, computes data-movement lower bounds with every applicable
// technique, measures the data movement of explicit schedules as upper
// bounds, and renders the comparison reports of the paper's evaluation
// section.
package core

import (
	"fmt"
	"strings"

	"cdagio/internal/bounds"
	"cdagio/internal/cdag"
	"cdagio/internal/graphalg"
	"cdagio/internal/memsim"
	"cdagio/internal/partition"
	"cdagio/internal/pebble"
	"cdagio/internal/prbw"
	"cdagio/internal/sched"
	"cdagio/internal/wavefront"
)

// Options configures a sequential CDAG analysis.
type Options struct {
	// FastMemory is the fast-memory capacity S, in values.
	FastMemory int
	// WavefrontCandidates caps how many vertices the min-cut wavefront bound
	// examines (0 selects a degree-ranked sample of 32; negative examines
	// every vertex, which is expensive on large CDAGs).
	WavefrontCandidates int
	// Concurrency bounds the worker pool of the min-cut wavefront search
	// (≤ 0 selects GOMAXPROCS).
	Concurrency int
	// ExactPartitionLimit is the largest operation count for which the exact
	// U(2S) search (and with it the Corollary 1 bound) runs.  Zero selects 20.
	ExactPartitionLimit int
	// ExactOptimalLimit is the largest vertex count for which the exact
	// optimal pebble-game search runs.  Zero disables it.
	ExactOptimalLimit int
	// Schedule supplies the schedule whose measured I/O becomes the upper
	// bound; nil selects the topological order.
	Schedule []cdag.VertexID
}

// Analysis is the result of a sequential CDAG analysis.
type Analysis struct {
	Graph      *cdag.Graph
	FastMemory int

	// LowerBounds lists every lower bound that was computed (trivial
	// compulsory I/O, Lemma 2 wavefront, Corollary 1 partition, exact search).
	LowerBounds []bounds.Bound
	// Upper is the measured I/O of the analyzed schedule.
	Upper bounds.Bound
	// ExactOptimal is the exact optimum when the exact search ran (else nil).
	ExactOptimal *bounds.Bound
	// WMax is the wavefront lower bound value used by Lemma 2 and the vertex
	// attaining it.
	WMax         int
	WMaxAt       cdag.VertexID
	MeasuredIO   int64
	ScheduleUsed string
}

// BestLower returns the largest lower bound.
func (a *Analysis) BestLower() bounds.Bound {
	best := bounds.Bound{Kind: bounds.Lower, Technique: "none"}
	for _, b := range a.LowerBounds {
		if b.Value > best.Value {
			best = b
		}
	}
	return best
}

// Gap returns the ratio of the measured upper bound to the best lower bound
// (infinity when the lower bound is zero).
func (a *Analysis) Gap() float64 {
	lb := a.BestLower().Value
	if lb <= 0 {
		return -1
	}
	return a.Upper.Value / lb
}

// Analyze performs a sequential data-movement analysis of g with S words of
// fast memory: every applicable lower-bound technique plus a measured
// schedule as the upper bound.
func Analyze(g *cdag.Graph, opts Options) (*Analysis, error) {
	if opts.FastMemory < 1 {
		return nil, fmt.Errorf("core: fast memory must be at least 1 word")
	}
	s := opts.FastMemory
	a := &Analysis{Graph: g, FastMemory: s}

	// Trivial compulsory bound: every input is loaded and every output stored
	// at least once in the RBW game.
	a.LowerBounds = append(a.LowerBounds, bounds.Bound{
		Value:     float64(g.NumInputs() + g.NumOutputs()),
		Kind:      bounds.Lower,
		Technique: "compulsory |I| + |O|",
	})

	// Min-cut wavefront bound (Lemma 2).
	candidates := opts.WavefrontCandidates
	var candidateSet []cdag.VertexID
	switch {
	case candidates < 0:
		candidateSet = nil // all vertices
	case candidates == 0:
		candidateSet = wavefront.TopCandidates(g, 32)
	default:
		candidateSet = wavefront.TopCandidates(g, candidates)
	}
	a.WMax, a.WMaxAt = wavefront.WMaxOpts(g, candidateSet, wavefront.WMaxOptions{Concurrency: opts.Concurrency})
	a.LowerBounds = append(a.LowerBounds, bounds.Bound{
		Value:       float64(wavefront.Lemma2Bound(a.WMax, s)),
		Kind:        bounds.Lower,
		Technique:   "min-cut wavefront (Lemma 2)",
		Assumptions: fmt.Sprintf("wmax >= %d at vertex %d", a.WMax, a.WMaxAt),
	})

	// 2S-partition bound (Corollary 1) via the exact U(2S) search on small
	// CDAGs.
	exactLimit := opts.ExactPartitionLimit
	if exactLimit == 0 {
		exactLimit = 20
	}
	if g.NumOperations() <= exactLimit {
		if u, err := partition.MaxVertexSetSizeExact(g, 2*s, exactLimit); err == nil && u > 0 {
			a.LowerBounds = append(a.LowerBounds, bounds.Bound{
				Value:       float64(partition.Corollary1Bound(s, g.NumOperations(), u)),
				Kind:        bounds.Lower,
				Technique:   "2S-partition (Corollary 1)",
				Assumptions: fmt.Sprintf("exact U(2S) = %d", u),
			})
		}
	}

	// Exact optimal search on very small CDAGs.
	if opts.ExactOptimalLimit > 0 && g.NumVertices() <= opts.ExactOptimalLimit {
		if opt, err := pebble.OptimalIO(g, pebble.RBW, s, pebble.OptimalOptions{}); err == nil {
			b := bounds.Bound{
				Value:     float64(opt),
				Kind:      bounds.Lower,
				Technique: "exact optimal game (Dijkstra search)",
			}
			a.ExactOptimal = &b
			a.LowerBounds = append(a.LowerBounds, b)
		}
	}

	// Measured upper bound.
	order := opts.Schedule
	scheduleName := "topological"
	if order == nil {
		order = sched.Topological(g)
	} else {
		scheduleName = "caller-supplied"
	}
	res, err := pebble.PlaySchedule(g, pebble.RBW, s, order, pebble.Belady, false)
	if err != nil {
		return nil, fmt.Errorf("core: schedule playback failed: %w", err)
	}
	a.MeasuredIO = int64(res.IO())
	a.ScheduleUsed = scheduleName
	a.Upper = bounds.Bound{
		Value:       float64(res.IO()),
		Kind:        bounds.Upper,
		Technique:   fmt.Sprintf("RBW schedule player (%s order, Belady eviction)", scheduleName),
		Assumptions: fmt.Sprintf("S=%d", s),
	}
	return a, nil
}

// Report renders the analysis as a human-readable block.
func (a *Analysis) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Data-movement analysis of %s with S = %d\n", a.Graph, a.FastMemory)
	for _, lb := range a.LowerBounds {
		fmt.Fprintf(&b, "  %s\n", lb)
	}
	fmt.Fprintf(&b, "  %s\n", a.Upper)
	best := a.BestLower()
	fmt.Fprintf(&b, "  best lower bound: %.6g [%s]\n", best.Value, best.Technique)
	if gap := a.Gap(); gap > 0 {
		fmt.Fprintf(&b, "  upper/lower gap: %.3g\n", gap)
	}
	return b.String()
}

// ParallelOptions configures a parallel analysis.
type ParallelOptions struct {
	// Topology is the storage hierarchy to simulate.
	Topology prbw.Topology
	// Assignment maps the schedule onto processors; the zero value selects a
	// single-processor run.
	Assignment prbw.Assignment
	// SequentialLower, when positive, is a sequential I/O lower bound for the
	// CDAG with fast memory S_{L−1}·N_{L−1}/N_L per node, used by the
	// Theorem 5 conversion.
	SequentialLower float64
}

// ParallelAnalysis reports the parallel data movement of a CDAG.
type ParallelAnalysis struct {
	Stats *prbw.Stats
	// VerticalLower and HorizontalLower are the Theorem 5/7 conversions when
	// enough information was supplied (zero otherwise).
	VerticalLower   bounds.Bound
	HorizontalLower bounds.Bound
}

// AnalyzeParallel plays the assignment on the topology with the P-RBW game
// and derives the parallel bounds.
func AnalyzeParallel(g *cdag.Graph, opts ParallelOptions) (*ParallelAnalysis, error) {
	asg := opts.Assignment
	if len(asg.Order) == 0 {
		asg = prbw.SingleProcessor(g)
	}
	stats, err := prbw.Play(g, opts.Topology, asg)
	if err != nil {
		return nil, err
	}
	pa := &ParallelAnalysis{Stats: stats}
	L := opts.Topology.NumLevels()
	if opts.SequentialLower > 0 {
		pa.VerticalLower = bounds.VerticalFromSequential(bounds.Bound{
			Value: opts.SequentialLower, Kind: bounds.Lower, Technique: "sequential bound",
		}, opts.Topology.Units(L))
	}
	return pa, nil
}

// MemsimUpperBound runs the lightweight simulator on the schedule/partition
// and returns the measured vertical and horizontal traffic, which serve as
// upper bounds for the corresponding lower bounds.
func MemsimUpperBound(g *cdag.Graph, nodes, fastWords int, order []cdag.VertexID, owner []int) (*memsim.Stats, error) {
	return memsim.Run(g, memsim.Config{Nodes: nodes, FastWords: fastWords, Policy: memsim.Belady}, order, owner)
}

// DominatorLowerBound returns the Hong–Kung style bound obtained from the
// minimum dominator of the output set: every path from the inputs to the
// outputs crosses the dominator, and each dominator vertex must pass through
// fast memory, so the I/O is at least max(0, |Dom| − S) ... reported here
// simply as the dominator size for diagnostic purposes.
func DominatorLowerBound(g *cdag.Graph) (int, []cdag.VertexID) {
	outs := cdag.NewVertexSet(g.NumVertices())
	outs.AddAll(g.Outputs())
	return graphalg.MinDominatorSize(g, outs)
}
