// Package core ties the library together: it is the unified analyzer that,
// given a CDAG (or one of the paper's algorithm families) and a machine
// description, computes data-movement lower bounds with every applicable
// technique, measures the data movement of explicit schedules as upper
// bounds, and renders the comparison reports of the paper's evaluation
// section.
package core

import (
	"context"
	"fmt"
	"strings"

	"cdagio/internal/bounds"
	"cdagio/internal/cdag"
	"cdagio/internal/graphalg"
	"cdagio/internal/memsim"
	"cdagio/internal/prbw"
)

// Options configures a sequential CDAG analysis.
type Options struct {
	// FastMemory is the fast-memory capacity S, in values.
	FastMemory int
	// WavefrontCandidates caps how many vertices the min-cut wavefront bound
	// examines (0 selects a degree-ranked sample of 32; negative examines
	// every vertex, which is expensive on large CDAGs).
	WavefrontCandidates int
	// Concurrency bounds the worker pool of the min-cut wavefront search
	// (≤ 0 selects GOMAXPROCS).
	Concurrency int
	// DisableTwoPhase turns off the wavefront search's two-phase incumbent
	// seeding (solving a degree-ranked seed sample before the broad candidate
	// scan).  Purely a performance toggle: the bound and witness are
	// identical either way.
	DisableTwoPhase bool
	// SeedSample overrides the size of the two-phase seed sample (0 selects
	// 32, negative disables the sample so only engine-internal selection
	// applies).  Ignored when DisableTwoPhase is set.
	SeedSample int
	// ExactPartitionLimit is the largest operation count for which the exact
	// U(2S) search (and with it the Corollary 1 bound) runs.  Zero selects 20.
	ExactPartitionLimit int
	// ExactOptimalLimit is the largest vertex count for which the exact
	// optimal pebble-game search runs.  Zero disables it.
	ExactOptimalLimit int
	// Schedule supplies the schedule whose measured I/O becomes the upper
	// bound; nil selects the topological order.
	Schedule []cdag.VertexID
}

// Analysis is the result of a sequential CDAG analysis.
type Analysis struct {
	Graph      *cdag.Graph
	FastMemory int

	// LowerBounds lists every lower bound that was computed (trivial
	// compulsory I/O, Lemma 2 wavefront, Corollary 1 partition, exact search).
	LowerBounds []bounds.Bound
	// Upper is the measured I/O of the analyzed schedule.
	Upper bounds.Bound
	// ExactOptimal is the exact optimum when the exact search ran (else nil).
	ExactOptimal *bounds.Bound
	// WMax is the wavefront lower bound value used by Lemma 2 and the vertex
	// attaining it.
	WMax         int
	WMaxAt       cdag.VertexID
	MeasuredIO   int64
	ScheduleUsed string
}

// BestLower returns the largest lower bound.
func (a *Analysis) BestLower() bounds.Bound {
	best := bounds.Bound{Kind: bounds.Lower, Technique: "none"}
	for _, b := range a.LowerBounds {
		if b.Value > best.Value {
			best = b
		}
	}
	return best
}

// Gap returns the ratio of the measured upper bound to the best lower bound
// (infinity when the lower bound is zero).
func (a *Analysis) Gap() float64 {
	lb := a.BestLower().Value
	if lb <= 0 {
		return -1
	}
	return a.Upper.Value / lb
}

// Analyze performs a sequential data-movement analysis of g with S words of
// fast memory: every applicable lower-bound technique plus a measured
// schedule as the upper bound.
//
// Deprecated: Analyze opens a fresh Workspace per call, re-deriving the
// per-graph state (schedules, candidate samples, solver networks) every time
// and offering no cancellation.  Use NewWorkspace(g).Analyze(ctx, opts) —
// cdagio.Open at the facade — and reuse the handle across analyses of the
// same graph.  The results are bit-identical.
func Analyze(g *cdag.Graph, opts Options) (*Analysis, error) {
	//cdaglint:allow ctxflow deprecated pre-PR-5 entry point; contract is a never-cancelled run
	return NewWorkspace(g).Analyze(context.Background(), opts)
}

// Report renders the analysis as a human-readable block.
func (a *Analysis) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Data-movement analysis of %s with S = %d\n", a.Graph, a.FastMemory)
	for _, lb := range a.LowerBounds {
		fmt.Fprintf(&b, "  %s\n", lb)
	}
	fmt.Fprintf(&b, "  %s\n", a.Upper)
	best := a.BestLower()
	fmt.Fprintf(&b, "  best lower bound: %.6g [%s]\n", best.Value, best.Technique)
	if gap := a.Gap(); gap > 0 {
		fmt.Fprintf(&b, "  upper/lower gap: %.3g\n", gap)
	}
	return b.String()
}

// ParallelOptions configures a parallel analysis.
type ParallelOptions struct {
	// Topology is the storage hierarchy to simulate.
	Topology prbw.Topology
	// Assignment maps the schedule onto processors; the zero value selects a
	// single-processor run.
	Assignment prbw.Assignment
	// SequentialLower, when positive, is a sequential I/O lower bound for the
	// CDAG with fast memory S_{L−1}·N_{L−1}/N_L per node, used by the
	// Theorem 5 conversion.
	SequentialLower float64
}

// ParallelAnalysis reports the parallel data movement of a CDAG.
type ParallelAnalysis struct {
	Stats *prbw.Stats
	// VerticalLower and HorizontalLower are the Theorem 5/7 conversions when
	// enough information was supplied (zero otherwise).
	VerticalLower   bounds.Bound
	HorizontalLower bounds.Bound
}

// AnalyzeParallel plays the assignment on the topology with the P-RBW game
// and derives the parallel bounds.
func AnalyzeParallel(g *cdag.Graph, opts ParallelOptions) (*ParallelAnalysis, error) {
	asg := opts.Assignment
	if len(asg.Order) == 0 {
		asg = prbw.SingleProcessor(g)
	}
	stats, err := prbw.Play(g, opts.Topology, asg)
	if err != nil {
		return nil, err
	}
	pa := &ParallelAnalysis{Stats: stats}
	L := opts.Topology.NumLevels()
	if opts.SequentialLower > 0 {
		pa.VerticalLower = bounds.VerticalFromSequential(bounds.Bound{
			Value: opts.SequentialLower, Kind: bounds.Lower, Technique: "sequential bound",
		}, opts.Topology.Units(L))
	}
	return pa, nil
}

// MemsimUpperBound runs the lightweight simulator on the schedule/partition
// and returns the measured vertical and horizontal traffic, which serve as
// upper bounds for the corresponding lower bounds.
func MemsimUpperBound(g *cdag.Graph, nodes, fastWords int, order []cdag.VertexID, owner []int) (*memsim.Stats, error) {
	return memsim.Run(g, memsim.Config{Nodes: nodes, FastWords: fastWords, Policy: memsim.Belady}, order, owner)
}

// DominatorLowerBound returns the Hong–Kung style bound obtained from the
// minimum dominator of the output set: every path from the inputs to the
// outputs crosses the dominator, and each dominator vertex must pass through
// fast memory, so the I/O is at least max(0, |Dom| − S) ... reported here
// simply as the dominator size for diagnostic purposes.
func DominatorLowerBound(g *cdag.Graph) (int, []cdag.VertexID) {
	outs := cdag.NewVertexSet(g.NumVertices())
	outs.AddAll(g.Outputs())
	return graphalg.MinDominatorSize(g, outs)
}
