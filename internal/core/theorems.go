package core

import (
	"cdagio/internal/bounds"
	"cdagio/internal/cdag"
	"cdagio/internal/gen"
	"cdagio/internal/wavefront"
)

// TheoremBound is an executable, per-iteration form of the min-cut bounds of
// Theorems 8 and 9: instead of quoting the closed form, it decomposes the
// generated CDAG iteration by iteration (the non-disjoint decomposition of
// Theorem 4), computes the min-cut wavefront at the designated scalar vertex
// of each piece, and sums the Lemma 2 contributions.
type TheoremBound struct {
	// PerIteration lists the wavefront sizes found at the designated vertices
	// of each outer iteration (two entries per iteration: the alpha/h dot and
	// the gamma/norm reduction).
	PerIteration [][2]int
	// Total is the summed Lemma 2 bound Σ 2·(w − S), never negative.
	Total int64
	// ClosedForm is the paper's closed-form value for the same parameters,
	// for comparison.
	ClosedForm float64
}

// iterationPiece induces the sub-CDAG of one outer iteration together with
// the boundary vertices feeding it (the live vectors of the previous
// iteration), which is the piece the Theorem 4 decomposition analyzes.
func iterationPiece(g *cdag.Graph, iter *cdag.VertexSet) (*cdag.Graph, *cdag.SubgraphMapping) {
	piece := iter.Clone()
	piece.Union(cdag.In(g, iter))
	return cdag.InducedSubgraph(g, piece, "iteration-piece")
}

// wavefrontInPiece returns the min-cut wavefront of vertex x computed within
// its iteration piece.
func wavefrontInPiece(g *cdag.Graph, iter *cdag.VertexSet, x cdag.VertexID) int {
	sub, m := iterationPiece(g, iter)
	sx := m.FromParent[x]
	if sx == cdag.InvalidVertex {
		return 0
	}
	return wavefront.MinWavefrontAt(sub, sx)
}

// CGMinCutBound executes the Theorem 8 recipe on a generated CG CDAG: for
// every outer iteration it measures the wavefronts at the alpha and gamma
// scalars within that iteration's piece and sums 2·(w − S) over all pieces.
// The result is a data-movement lower bound for the whole CDAG under the RBW
// game with fast memory s (divide by P for the parallel per-processor form of
// Theorem 5).
func CGMinCutBound(cg *gen.CGResult, s int) TheoremBound {
	g := cg.Graph
	tb := TheoremBound{}
	points := float64(cg.Grid.Points())
	for t := 0; t < cg.Iterations; t++ {
		wa := wavefrontInPiece(g, cg.IterationVertices[t], cg.AlphaVertex[t])
		wg := wavefrontInPiece(g, cg.IterationVertices[t], cg.GammaVertex[t])
		tb.PerIteration = append(tb.PerIteration, [2]int{wa, wg})
		tb.Total += wavefront.Lemma2Bound(wa, s) + wavefront.Lemma2Bound(wg, s)
	}
	perIter := 2 * (3*points - 2*float64(s))
	if perIter < 0 {
		perIter = 0
	}
	tb.ClosedForm = perIter * float64(cg.Iterations)
	return tb
}

// GMRESMinCutBound executes the Theorem 9 recipe on a generated GMRES CDAG,
// measuring the wavefronts at the last Gram–Schmidt dot product and at the
// norm reduction of every outer iteration.
func GMRESMinCutBound(gm *gen.GMRESResult, s int) TheoremBound {
	g := gm.Graph
	tb := TheoremBound{}
	points := float64(gm.Grid.Points())
	for t := 0; t < gm.Iterations; t++ {
		wa := wavefrontInPiece(g, gm.IterationVertices[t], gm.LastDotVertex[t])
		wg := wavefrontInPiece(g, gm.IterationVertices[t], gm.NormVertex[t])
		tb.PerIteration = append(tb.PerIteration, [2]int{wa, wg})
		tb.Total += wavefront.Lemma2Bound(wa, s) + wavefront.Lemma2Bound(wg, s)
	}
	perIter := 2 * (3*points - float64(s))
	if perIter < 0 {
		perIter = 0
	}
	tb.ClosedForm = perIter * float64(gm.Iterations)
	return tb
}

// AsBound converts the executable theorem bound into a bounds.Bound.
func (tb TheoremBound) AsBound(technique string) bounds.Bound {
	return bounds.Bound{
		Value:     float64(tb.Total),
		Kind:      bounds.Lower,
		Technique: technique,
	}
}
