package core

import (
	"testing"

	"cdagio/internal/bounds"
	"cdagio/internal/gen"
	"cdagio/internal/pebble"
	"cdagio/internal/sched"
)

func TestCGMinCutBoundStructure(t *testing.T) {
	dim, n, iters, s := 1, 12, 3, 4
	cg := gen.CG(dim, n, iters)
	tb := CGMinCutBound(cg, s)
	if len(tb.PerIteration) != iters {
		t.Fatalf("per-iteration entries = %d, want %d", len(tb.PerIteration), iters)
	}
	// Theorem 8's wavefronts: >= 2·n^d at alpha and >= n^d at gamma.
	for i, w := range tb.PerIteration {
		if w[0] < 2*n {
			t.Errorf("iteration %d: alpha wavefront %d < %d", i, w[0], 2*n)
		}
		if w[1] < n {
			t.Errorf("iteration %d: gamma wavefront %d < %d", i, w[1], n)
		}
	}
	// The executable bound matches or exceeds the closed form (which uses the
	// minimum wavefront sizes 2n^d and n^d).
	if float64(tb.Total) < tb.ClosedForm {
		t.Errorf("executable bound %d below closed form %v", tb.Total, tb.ClosedForm)
	}
	if tb.AsBound("CG Theorem 8 (executable)").Kind != bounds.Lower {
		t.Errorf("AsBound kind wrong")
	}
}

func TestGMRESMinCutBoundStructure(t *testing.T) {
	dim, n, iters, s := 1, 10, 3, 4
	gm := gen.GMRES(dim, n, iters)
	tb := GMRESMinCutBound(gm, s)
	if len(tb.PerIteration) != iters {
		t.Fatalf("per-iteration entries = %d", len(tb.PerIteration))
	}
	for i, w := range tb.PerIteration {
		if w[0] < 2*n {
			t.Errorf("iteration %d: dot wavefront %d < %d", i, w[0], 2*n)
		}
		if w[1] < n {
			t.Errorf("iteration %d: norm wavefront %d < %d", i, w[1], n)
		}
	}
	// The executable recipe yields at least m·2·(3n^d − 2S) — the sum of the
	// two per-iteration Lemma 2 terms.  (The paper states the slightly larger
	// 2·(3n^d − S); the difference is the paper folding the two −S terms into
	// one and vanishes asymptotically.)
	consistent := float64(iters) * 2 * (3*float64(n) - 2*float64(s))
	if float64(tb.Total) < consistent {
		t.Errorf("executable bound %d below per-iteration sum %v", tb.Total, consistent)
	}
	if tb.ClosedForm <= 0 {
		t.Errorf("closed form not positive")
	}
}

func TestMinCutBoundBelowMeasuredIO(t *testing.T) {
	// The executable Theorem 8/9 bounds are lower bounds: an actual legal
	// game's I/O must never fall below them.
	s := 6
	cg := gen.CG(1, 8, 2)
	tbCG := CGMinCutBound(cg, s)
	resCG, err := pebble.PlaySchedule(cg.Graph, pebble.RBW, s, sched.Topological(cg.Graph), pebble.Belady, false)
	if err != nil {
		t.Fatalf("CG play: %v", err)
	}
	if int64(resCG.IO()) < tbCG.Total {
		t.Errorf("CG measured I/O %d below Theorem 8 bound %d", resCG.IO(), tbCG.Total)
	}

	gm := gen.GMRES(1, 8, 2)
	tbGM := GMRESMinCutBound(gm, s)
	resGM, err := pebble.PlaySchedule(gm.Graph, pebble.RBW, s, sched.Topological(gm.Graph), pebble.Belady, false)
	if err != nil {
		t.Fatalf("GMRES play: %v", err)
	}
	if int64(resGM.IO()) < tbGM.Total {
		t.Errorf("GMRES measured I/O %d below Theorem 9 bound %d", resGM.IO(), tbGM.Total)
	}
}

func TestMinCutBoundLargeSClamps(t *testing.T) {
	cg := gen.CG(1, 4, 1)
	tb := CGMinCutBound(cg, 10_000)
	if tb.Total != 0 || tb.ClosedForm != 0 {
		t.Errorf("huge S should clamp the bound to zero, got %d / %v", tb.Total, tb.ClosedForm)
	}
}
