package core

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"runtime"
	"testing"
	"time"

	"cdagio/internal/gen"
	"cdagio/internal/memsim"
	"cdagio/internal/wavefront"
)

// TestCancellationRaceLeavesNoGoroutinesAndNoPoison hammers one shared
// Workspace with concurrent WMax scans and SimulateSweep runs whose contexts
// are cancelled at random points, then verifies (a) every call returns — a
// cancelled engine never wedges a caller, (b) the worker goroutines drain
// back to the baseline count — cancellation leaks nothing, and (c) the
// Workspace still produces bit-identical results afterwards — a cancelled
// run never poisons the pooled solvers or memoized schedules.  Run it under
// -race: the interesting failures here are ordering bugs, not logic bugs.
func TestCancellationRaceLeavesNoGoroutinesAndNoPoison(t *testing.T) {
	g := gen.Jacobi(1, 64, 24, gen.StencilStar).Graph
	ws := NewWorkspace(g)
	cands := wavefront.TopCandidates(g, 24)

	// Uncancelled baselines, taken before the storm.
	baseW, baseAt, err := ws.WMax(context.Background(), cands, wavefront.WMaxOptions{Concurrency: 4})
	if err != nil {
		t.Fatalf("baseline wmax: %v", err)
	}
	jobs := []memsim.Job{
		{Cfg: memsim.Config{Nodes: 1, FastWords: 8, Policy: memsim.Belady}},
		{Cfg: memsim.Config{Nodes: 2, FastWords: 16, Policy: memsim.LRU}},
	}
	baseStats, err := ws.SimulateSweep(context.Background(), jobs, 2)
	if err != nil {
		t.Fatalf("baseline sweep: %v", err)
	}

	before := runtime.NumGoroutine()

	const callers = 8
	const rounds = 6
	done := make(chan error, callers)
	for c := 0; c < callers; c++ {
		go func(seed int64) {
			rng := rand.New(rand.NewSource(seed))
			for r := 0; r < rounds; r++ {
				ctx, cancel := context.WithCancel(context.Background())
				// Cancel at a random point: sometimes before the call,
				// sometimes mid-flight, sometimes not at all.
				delay := time.Duration(rng.Intn(2000)) * time.Microsecond
				timer := time.AfterFunc(delay, cancel)
				var err error
				if rng.Intn(2) == 0 {
					_, _, err = ws.WMax(ctx, cands, wavefront.WMaxOptions{Concurrency: 4})
				} else {
					_, err = ws.SimulateSweep(ctx, jobs, 2)
				}
				timer.Stop()
				cancel()
				if err != nil && !errors.Is(err, context.Canceled) {
					done <- err
					return
				}
			}
			done <- nil
		}(int64(c) * 7919)
	}
	for c := 0; c < callers; c++ {
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("caller returned unexpected error: %v", err)
			}
		case <-time.After(2 * time.Minute):
			t.Fatal("a caller never returned after cancellation")
		}
	}

	// Worker goroutines must drain back to (about) the baseline.  The runtime
	// keeps a few service goroutines around, so allow a small margin rather
	// than an exact match.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before+2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before the storm, %d after drain", before, runtime.NumGoroutine())
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}

	// The Workspace must be unpoisoned: fresh uncancelled runs reproduce the
	// baselines bit for bit.
	w, at, err := ws.WMax(context.Background(), cands, wavefront.WMaxOptions{Concurrency: 4})
	if err != nil {
		t.Fatalf("post-storm wmax: %v", err)
	}
	if w != baseW || at != baseAt {
		t.Fatalf("post-storm wmax = (%d, %d), baseline (%d, %d)", w, at, baseW, baseAt)
	}
	stats, err := ws.SimulateSweep(context.Background(), jobs, 2)
	if err != nil {
		t.Fatalf("post-storm sweep: %v", err)
	}
	if !reflect.DeepEqual(stats, baseStats) {
		t.Fatal("post-storm sweep stats differ from baseline")
	}
}
