package core

import (
	"context"
	"fmt"
	"sync"

	"cdagio/internal/bounds"
	"cdagio/internal/cdag"
	"cdagio/internal/graphalg"
	"cdagio/internal/memsim"
	"cdagio/internal/partition"
	"cdagio/internal/pebble"
	"cdagio/internal/prbw"
	"cdagio/internal/sched"
	"cdagio/internal/wavefront"
)

// Workspace is a reusable per-graph analysis handle: it owns every piece of
// derived state the engines need — the graph's compiled CSR rows, a pool of
// cut solvers carrying the cached static vertex-split network and the
// strip-local scratch, the memoized topological schedule and candidate
// samples — so repeated analyses of one CDAG amortize all of it, and it
// threads a context.Context through every long-running engine so callers can
// cancel or deadline them.
//
// Obtain one with NewWorkspace (cdagio.Open at the facade), hand it the
// context of the request being served, and reuse it for every analysis of the
// same graph.  The graph's structure and its input tagging must stay fixed
// while a Workspace is bound to it — the memoized schedules are filtered on
// IsInput, so an input-tag flip would leave them stale; output-tag flips
// remain legal (nothing memoized depends on them).  All methods are safe for
// concurrent use.
//
// Every engine method is deterministic under a never-cancelled context: the
// results are bit-identical to the package-level free functions at every
// worker count.  Once the context is cancelled, engines return ctx.Err()
// promptly — candidate scans stop at pruning-tier boundaries, sweeps between
// jobs, the exact search between state settlements, the P-RBW player between
// steps — while individual Dinic solves and game moves stay atomic.
type Workspace struct {
	g    *cdag.Graph
	pool *graphalg.SolverPool

	mu       sync.Mutex
	topo     []cdag.VertexID // memoized topological schedule (non-inputs)
	allVerts []cdag.VertexID // memoized full candidate list
	defCands []cdag.VertexID // memoized default degree-ranked candidate sample
}

// defaultCandidates is the size of the degree-ranked candidate sample the
// analyzer uses when Options.WavefrontCandidates is zero.
const defaultCandidates = 32

// NewWorkspace returns a Workspace bound to g.  It compiles g's CSR rows up
// front, so the handle (and every solver it pools) never races on the graph's
// lazy materialization.
func NewWorkspace(g *cdag.Graph) *Workspace {
	g.Materialize()
	return &Workspace{g: g, pool: graphalg.NewSolverPool(g)}
}

// Graph returns the graph the workspace is bound to.
func (w *Workspace) Graph() *cdag.Graph { return w.g }

// SetSolverLimit caps the number of cut solvers the workspace's pool hands
// out concurrently (see graphalg.SolverPool.SetLimit): engine workers beyond
// the cap wait for a solver instead of allocating more.  This is the serving
// layer's in-flight solver cap; n <= 0 removes it.  Set it before the
// workspace serves concurrent requests.
func (w *Workspace) SetSolverLimit(n int) { w.pool.SetLimit(n) }

// FootprintBytes estimates the heap bytes the workspace pins while serving:
// the graph itself plus up to maxSolvers pooled cut solvers with their cached
// static networks and scratch (maxSolvers <= 0 estimates one solver).  The
// serving layer admits a Workspace into its byte-budgeted cache on this
// number, so an oversized graph is rejected before it is ever opened.
func (w *Workspace) FootprintBytes(maxSolvers int) int64 {
	if maxSolvers < 1 {
		maxSolvers = 1
	}
	return w.g.FootprintBytes() + int64(maxSolvers)*graphalg.EstimateSolverFootprint(w.g)
}

// Pool returns the workspace-owned cut-solver pool, for callers that want to
// run their own graphalg queries on the workspace's cached networks.
func (w *Workspace) Pool() *graphalg.SolverPool { return w.pool }

// topoSchedule returns the memoized baseline schedule (the non-input vertices
// in topological order).
func (w *Workspace) topoSchedule() []cdag.VertexID {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.topo == nil {
		w.topo = sched.Topological(w.g)
	}
	return w.topo
}

// vertices returns the memoized full vertex list.
func (w *Workspace) vertices() []cdag.VertexID {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.allVerts == nil {
		w.allVerts = w.g.Vertices()
	}
	return w.allVerts
}

// candidates returns the degree-ranked top-k candidate sample.  Only the
// default sample is memoized: a long-lived handle serving requests with
// caller-chosen k must not grow with the number of distinct k values seen.
func (w *Workspace) candidates(k int) []cdag.VertexID {
	if k != defaultCandidates {
		return wavefront.TopCandidates(w.g, k)
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.defCands == nil {
		w.defCands = wavefront.TopCandidates(w.g, defaultCandidates)
	}
	return w.defCands
}

// WMax returns the min-cut wavefront lower bound w^max over the candidates
// (all vertices when candidates is nil) and a vertex attaining it, computed
// by the parallel pruned search on the workspace's solver pool.  The result
// is bit-identical to the free-function search at every worker count; a
// cancelled context yields (0, InvalidVertex, ctx.Err()).
func (w *Workspace) WMax(ctx context.Context, candidates []cdag.VertexID, opts wavefront.WMaxOptions) (int, cdag.VertexID, error) {
	if candidates == nil {
		if err := ctx.Err(); err != nil {
			return 0, cdag.InvalidVertex, err
		}
		candidates = w.vertices()
	}
	opts.Pool = w.pool
	// Hand the engine's two-phase pass the workspace's memoized degree-ranked
	// sample as its seed set, so repeated analyses never re-rank the vertices.
	// The engine drops seeds outside the candidate list, so this is safe for
	// candidate subsets too.
	if !opts.DisablePruning && !opts.DisableTwoPhase && opts.Seeds == nil && opts.SeedSample >= 0 {
		k := opts.SeedSample
		if k == 0 {
			k = defaultCandidates
		}
		opts.Seeds = w.candidates(k)
	}
	return wavefront.WMaxCtx(ctx, w.g, candidates, opts)
}

// WavefrontAt returns the min-cut wavefront lower bound induced by x,
// computed strip-locally on a pooled solver.  The single Dinic solve is
// atomic; a context cancelled on entry returns ctx.Err() without solving.
func (w *Workspace) WavefrontAt(ctx context.Context, x cdag.VertexID) (int, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	return w.pool.MinWavefrontAt(x), nil
}

// MinDominatorSize returns the size of a minimum dominator of the target set
// and one witness, computed strip-locally on a pooled solver (the input cone
// is contracted into the flow source).  The solve is atomic; a context
// cancelled on entry returns ctx.Err() without solving.
func (w *Workspace) MinDominatorSize(ctx context.Context, target *cdag.VertexSet) (int, []cdag.VertexID, error) {
	if err := ctx.Err(); err != nil {
		return 0, nil, err
	}
	k, dom := w.pool.MinDominatorSize(target)
	return k, dom, nil
}

// OptimalIO computes the exact minimum I/O of the workspace's CDAG by
// state-space search; ctx bounds the search (checked every 1024 settled
// states).
func (w *Workspace) OptimalIO(ctx context.Context, variant pebble.Variant, s int, opts pebble.OptimalOptions) (int, error) {
	return pebble.OptimalIOCtx(ctx, w.g, variant, s, opts)
}

// Play executes a vertex schedule as a complete sequential pebble game; a nil
// order selects the workspace's memoized topological schedule.  Play never
// cancels; callers serving request traffic should use PlayCtx so deadlines
// and forced drains reach long plays on large graphs.
func (w *Workspace) Play(variant pebble.Variant, s int, order []cdag.VertexID,
	policy pebble.EvictionPolicy, record bool) (pebble.Result, error) {
	//cdaglint:allow ctxflow Play's documented contract is an uncancellable run; PlayCtx is the ctx path
	return w.PlayCtx(context.Background(), variant, s, order, policy, record)
}

// PlayCtx is Play bounded by ctx (checked every 4096 schedule steps).
func (w *Workspace) PlayCtx(ctx context.Context, variant pebble.Variant, s int, order []cdag.VertexID,
	policy pebble.EvictionPolicy, record bool) (pebble.Result, error) {
	if order == nil {
		order = w.topoSchedule()
	}
	return pebble.PlayScheduleCtx(ctx, w.g, variant, s, order, policy, record)
}

// PlayParallel executes an assignment as a complete P-RBW game on the given
// storage hierarchy; ctx bounds the game (checked every 4096 compute steps).
func (w *Workspace) PlayParallel(ctx context.Context, topo prbw.Topology, asg prbw.Assignment) (*prbw.Stats, error) {
	return prbw.PlayCtx(ctx, w.g, topo, asg)
}

// Simulate runs the lightweight distributed cache simulator on one
// configuration; ctx bounds the simulation (checked every 4096 schedule
// steps).  A nil order selects the workspace's memoized topological schedule.
func (w *Workspace) Simulate(ctx context.Context, cfg memsim.Config, order []cdag.VertexID, owner []int) (*memsim.Stats, error) {
	if order == nil {
		order = w.topoSchedule()
	}
	return memsim.RunCtx(ctx, w.g, cfg, order, owner)
}

// SimulateSweep runs the jobs over a bounded worker pool (workers ≤ 0 selects
// GOMAXPROCS); ctx bounds the sweep (checked before every job).  Jobs with a
// nil Order select the workspace's memoized topological schedule.  Results
// are deterministically identical to serial Simulate calls at every worker
// count.
func (w *Workspace) SimulateSweep(ctx context.Context, jobs []memsim.Job, workers int) ([]*memsim.Stats, error) {
	var filled []memsim.Job
	for i := range jobs {
		if jobs[i].Order == nil {
			if filled == nil {
				filled = append([]memsim.Job(nil), jobs...)
			}
			filled[i].Order = w.topoSchedule()
		}
	}
	if filled != nil {
		jobs = filled
	}
	return memsim.SweepCtx(ctx, w.g, jobs, workers)
}

// Analyze computes lower bounds with every applicable technique and a
// measured upper bound for the workspace's CDAG, exactly as the package-level
// Analyze does, but on the workspace's memoized schedules, candidate samples
// and solver pool, under ctx: each stage — candidate scan, partition search,
// exact search, schedule playback — starts only while ctx is live, and the
// scan itself stops at pruning-tier boundaries once ctx is cancelled.
func (w *Workspace) Analyze(ctx context.Context, opts Options) (*Analysis, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if opts.FastMemory < 1 {
		return nil, fmt.Errorf("core: fast memory must be at least 1 word")
	}
	s := opts.FastMemory
	g := w.g
	a := &Analysis{Graph: g, FastMemory: s}

	// Trivial compulsory bound: every input is loaded and every output stored
	// at least once in the RBW game.
	a.LowerBounds = append(a.LowerBounds, bounds.Bound{
		Value:     float64(g.NumInputs() + g.NumOutputs()),
		Kind:      bounds.Lower,
		Technique: "compulsory |I| + |O|",
	})

	// Min-cut wavefront bound (Lemma 2).
	candidates := opts.WavefrontCandidates
	var candidateSet []cdag.VertexID
	switch {
	case candidates < 0:
		candidateSet = nil // all vertices
	case candidates == 0:
		candidateSet = w.candidates(defaultCandidates)
	default:
		candidateSet = w.candidates(candidates)
	}
	var err error
	a.WMax, a.WMaxAt, err = w.WMax(ctx, candidateSet, wavefront.WMaxOptions{
		Concurrency:     opts.Concurrency,
		DisableTwoPhase: opts.DisableTwoPhase,
		SeedSample:      opts.SeedSample,
	})
	if err != nil {
		return nil, err
	}
	a.LowerBounds = append(a.LowerBounds, bounds.Bound{
		Value:       float64(wavefront.Lemma2Bound(a.WMax, s)),
		Kind:        bounds.Lower,
		Technique:   "min-cut wavefront (Lemma 2)",
		Assumptions: fmt.Sprintf("wmax >= %d at vertex %d", a.WMax, a.WMaxAt),
	})

	// 2S-partition bound (Corollary 1) via the exact U(2S) search on small
	// CDAGs.
	exactLimit := opts.ExactPartitionLimit
	if exactLimit == 0 {
		exactLimit = 20
	}
	if g.NumOperations() <= exactLimit {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if u, err := partition.MaxVertexSetSizeExact(g, 2*s, exactLimit); err == nil && u > 0 {
			a.LowerBounds = append(a.LowerBounds, bounds.Bound{
				Value:       float64(partition.Corollary1Bound(s, g.NumOperations(), u)),
				Kind:        bounds.Lower,
				Technique:   "2S-partition (Corollary 1)",
				Assumptions: fmt.Sprintf("exact U(2S) = %d", u),
			})
		}
	}

	// Exact optimal search on very small CDAGs.
	if opts.ExactOptimalLimit > 0 && g.NumVertices() <= opts.ExactOptimalLimit {
		opt, err := pebble.OptimalIOCtx(ctx, g, pebble.RBW, s, pebble.OptimalOptions{})
		switch {
		case err == nil:
			b := bounds.Bound{
				Value:     float64(opt),
				Kind:      bounds.Lower,
				Technique: "exact optimal game (Dijkstra search)",
			}
			a.ExactOptimal = &b
			a.LowerBounds = append(a.LowerBounds, b)
		case ctx.Err() != nil:
			return nil, ctx.Err()
			// Non-context errors (budget exhausted, graph too large) are
			// non-fatal: the exact bound is simply omitted, as before.
		}
	}

	// Measured upper bound.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	order := opts.Schedule
	scheduleName := "topological"
	if order == nil {
		order = w.topoSchedule()
	} else {
		scheduleName = "caller-supplied"
	}
	res, err := pebble.PlayScheduleCtx(ctx, g, pebble.RBW, s, order, pebble.Belady, false)
	if err != nil {
		return nil, fmt.Errorf("core: schedule playback failed: %w", err)
	}
	a.MeasuredIO = int64(res.IO())
	a.ScheduleUsed = scheduleName
	a.Upper = bounds.Bound{
		Value:       float64(res.IO()),
		Kind:        bounds.Upper,
		Technique:   fmt.Sprintf("RBW schedule player (%s order, Belady eviction)", scheduleName),
		Assumptions: fmt.Sprintf("S=%d", s),
	}
	return a, nil
}
