package core

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"cdagio/internal/cdag"
	"cdagio/internal/gen"
	"cdagio/internal/memsim"
	"cdagio/internal/pebble"
	"cdagio/internal/prbw"
	"cdagio/internal/sched"
	"cdagio/internal/wavefront"
)

// TestWorkspacePreCancelled drives every context-taking Workspace method with
// an already-cancelled context: each must return ctx.Err() without running
// its engine.
func TestWorkspacePreCancelled(t *testing.T) {
	g := gen.FFT(8)
	ws := NewWorkspace(g)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	if a, err := ws.Analyze(ctx, Options{FastMemory: 4}); !errors.Is(err, context.Canceled) || a != nil {
		t.Fatalf("Analyze: (%v, %v), want (nil, context.Canceled)", a, err)
	}
	if w, at, err := ws.WMax(ctx, nil, wavefront.WMaxOptions{}); !errors.Is(err, context.Canceled) || w != 0 || at != cdag.InvalidVertex {
		t.Fatalf("WMax: (%d, %d, %v), want (0, InvalidVertex, context.Canceled)", w, at, err)
	}
	if w, err := ws.WavefrontAt(ctx, 0); !errors.Is(err, context.Canceled) || w != 0 {
		t.Fatalf("WavefrontAt: (%d, %v), want (0, context.Canceled)", w, err)
	}
	outs := cdag.NewVertexSet(g.NumVertices())
	outs.AddAll(g.Outputs())
	if k, dom, err := ws.MinDominatorSize(ctx, outs); !errors.Is(err, context.Canceled) || k != 0 || dom != nil {
		t.Fatalf("MinDominatorSize: (%d, %v, %v), want (0, nil, context.Canceled)", k, dom, err)
	}
	if io, err := ws.OptimalIO(ctx, pebble.RBW, 3, pebble.OptimalOptions{}); !errors.Is(err, context.Canceled) || io != 0 {
		t.Fatalf("OptimalIO: (%d, %v), want (0, context.Canceled)", io, err)
	}
	if st, err := ws.Simulate(ctx, memsim.Config{Nodes: 1, FastWords: 8, Policy: memsim.Belady}, sched.Topological(g), nil); !errors.Is(err, context.Canceled) || st != nil {
		t.Fatalf("Simulate: (%v, %v), want (nil, context.Canceled)", st, err)
	}
	jobs := []memsim.Job{{Cfg: memsim.Config{Nodes: 1, FastWords: 8, Policy: memsim.Belady}, Order: sched.Topological(g)}}
	if st, err := ws.SimulateSweep(ctx, jobs, 2); !errors.Is(err, context.Canceled) || st != nil {
		t.Fatalf("SimulateSweep: (%v, %v), want (nil, context.Canceled)", st, err)
	}
	if st, err := ws.PlayParallel(ctx, prbw.TwoLevel(2, 8, 1<<20), prbw.SingleProcessor(g)); !errors.Is(err, context.Canceled) || st != nil {
		t.Fatalf("PlayParallel: (%v, %v), want (nil, context.Canceled)", st, err)
	}
	if res, err := ws.PlayCtx(ctx, pebble.RBW, 4, nil, pebble.Belady, false); !errors.Is(err, context.Canceled) {
		t.Fatalf("PlayCtx: (%v, %v), want context.Canceled", res, err)
	}
	// A cancelled PlayCtx leaves the workspace serving bit-identically.
	want, err := ws.Play(pebble.RBW, 4, nil, pebble.Belady, false)
	if err != nil {
		t.Fatalf("Play after cancelled PlayCtx: %v", err)
	}
	got, err := ws.PlayCtx(context.Background(), pebble.RBW, 4, nil, pebble.Belady, false)
	if err != nil || !reflect.DeepEqual(got, want) {
		t.Fatalf("PlayCtx diverges from Play: (%+v, %v) vs %+v", got, err, want)
	}
}

// TestWorkspaceAnalyzeEquivalence proves the context-first path bit-identical
// to the free-function facade under context.Background(): the same Analysis —
// bounds, witnesses, measured I/O, report — from a reused handle (twice, so
// memoized state is exercised) and from the deprecated per-call path, at
// several worker counts.
func TestWorkspaceAnalyzeEquivalence(t *testing.T) {
	ctx := context.Background()
	for _, tc := range []struct {
		name string
		g    *cdag.Graph
		opts Options
	}{
		{"fft16-exact", gen.FFT(16), Options{FastMemory: 4, ExactOptimalLimit: 80, WavefrontCandidates: -1}},
		{"jacobi", gen.Jacobi(2, 8, 3, gen.StencilBox).Graph, Options{FastMemory: 16}},
		{"cg-allcands", gen.CG(2, 6, 2).Graph, Options{FastMemory: 32, WavefrontCandidates: -1}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			want, err := Analyze(tc.g, tc.opts)
			if err != nil {
				t.Fatalf("free-function Analyze: %v", err)
			}
			ws := NewWorkspace(tc.g)
			for _, conc := range []int{0, 1, 2, 7} {
				opts := tc.opts
				opts.Concurrency = conc
				for round := 0; round < 2; round++ {
					got, err := ws.Analyze(ctx, opts)
					if err != nil {
						t.Fatalf("ws.Analyze (conc=%d round=%d): %v", conc, round, err)
					}
					// Concurrency only steers the worker pool; the analysis is
					// deterministic, so the whole struct must match.
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("ws.Analyze (conc=%d round=%d) diverges:\n got %+v\nwant %+v",
							conc, round, got, want)
					}
					if got.Report() != want.Report() {
						t.Fatalf("report text diverges (conc=%d round=%d)", conc, round)
					}
				}
			}
		})
	}
}

// TestWorkspaceEnginesMatchFreeFunctions pins the remaining Workspace engine
// methods against their pre-Workspace free-function counterparts under
// context.Background().
func TestWorkspaceEnginesMatchFreeFunctions(t *testing.T) {
	ctx := context.Background()
	g := gen.CG(2, 8, 2).Graph
	ws := NewWorkspace(g)

	// WMax vs the PR-4 engine entry point, across worker counts.
	wantW, wantAt := wavefront.WMaxOpts(g, nil, wavefront.WMaxOptions{})
	for _, conc := range []int{0, 1, 3} {
		w, at, err := ws.WMax(ctx, nil, wavefront.WMaxOptions{Concurrency: conc})
		if err != nil || w != wantW || at != wantAt {
			t.Fatalf("WMax conc=%d: (%d, %d, %v), want (%d, %d, nil)", conc, w, at, err, wantW, wantAt)
		}
	}

	// WavefrontAt vs the free function on a sample of vertices.
	for x := 0; x < g.NumVertices(); x += 97 {
		want := wavefront.MinWavefrontAt(g, cdag.VertexID(x))
		got, err := ws.WavefrontAt(ctx, cdag.VertexID(x))
		if err != nil || got != want {
			t.Fatalf("WavefrontAt(%d): (%d, %v), want (%d, nil)", x, got, want, err)
		}
	}

	// OptimalIO vs the free function, on the success path and on the budget
	// error path.
	small := gen.FFT(4)
	wsSmall := NewWorkspace(small)
	wantIO, wantErr := pebble.OptimalIO(small, pebble.RBW, 3, pebble.OptimalOptions{})
	gotIO, gotErr := wsSmall.OptimalIO(ctx, pebble.RBW, 3, pebble.OptimalOptions{})
	if gotIO != wantIO || !errors.Is(gotErr, wantErr) {
		t.Fatalf("OptimalIO: (%d, %v), want (%d, %v)", gotIO, gotErr, wantIO, wantErr)
	}
	if _, err := wsSmall.OptimalIO(ctx, pebble.RBW, 3, pebble.OptimalOptions{MaxStates: 5}); !errors.Is(err, pebble.ErrSearchBudget) {
		t.Fatalf("OptimalIO budget error = %v, want ErrSearchBudget", err)
	}

	// Play (nil order = memoized topological) vs the free-standing player.
	wantRes, err := pebble.PlayTopological(g, pebble.RBW, 48, pebble.Belady)
	if err != nil {
		t.Fatalf("PlayTopological: %v", err)
	}
	gotRes, err := ws.Play(pebble.RBW, 48, nil, pebble.Belady, false)
	if err != nil || !reflect.DeepEqual(gotRes, wantRes) {
		t.Fatalf("Play: (%+v, %v), want (%+v, nil)", gotRes, err, wantRes)
	}

	// PlayParallel vs prbw.Play.
	topo := prbw.TwoLevel(4, 64, 1<<20)
	asg := prbw.SingleProcessor(g)
	wantStats, err := prbw.Play(g, topo, asg)
	if err != nil {
		t.Fatalf("prbw.Play: %v", err)
	}
	gotStats, err := ws.PlayParallel(ctx, topo, asg)
	if err != nil || !reflect.DeepEqual(gotStats, wantStats) {
		t.Fatalf("PlayParallel diverges: %v", err)
	}

	// Simulate / SimulateSweep vs serial memsim.Run, at several worker counts.
	order := sched.Topological(g)
	cfgs := []memsim.Config{
		{Nodes: 1, FastWords: 32, Policy: memsim.Belady},
		{Nodes: 1, FastWords: 64, Policy: memsim.Belady},
		{Nodes: 1, FastWords: 32, Policy: memsim.LRU},
	}
	var jobs []memsim.Job
	var wantSweep []*memsim.Stats
	for _, cfg := range cfgs {
		st, err := memsim.Run(g, cfg, order, nil)
		if err != nil {
			t.Fatalf("memsim.Run: %v", err)
		}
		wantSweep = append(wantSweep, st)
		jobs = append(jobs, memsim.Job{Cfg: cfg, Order: order})
	}
	gotOne, err := ws.Simulate(ctx, cfgs[0], order, nil)
	if err != nil || !reflect.DeepEqual(gotOne, wantSweep[0]) {
		t.Fatalf("Simulate diverges: %v", err)
	}
	for _, workers := range []int{0, 1, 2, 5} {
		got, err := ws.SimulateSweep(ctx, jobs, workers)
		if err != nil || !reflect.DeepEqual(got, wantSweep) {
			t.Fatalf("SimulateSweep workers=%d diverges: %v", workers, err)
		}
	}

	// MinDominatorSize vs the free-function route.
	outs := cdag.NewVertexSet(g.NumVertices())
	outs.AddAll(g.Outputs())
	wantK, wantDom := DominatorLowerBound(g)
	gotK, gotDom, err := ws.MinDominatorSize(ctx, outs)
	if err != nil || gotK != wantK || !reflect.DeepEqual(gotDom, wantDom) {
		t.Fatalf("MinDominatorSize: (%d, %v, %v), want (%d, %v, nil)", gotK, gotDom, err, wantK, wantDom)
	}
}
