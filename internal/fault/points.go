package fault

import "fmt"

// The registered fault points.  Every Inject/Capture/InjectErr call site in
// the repository must name its point through one of these constants — never
// a loose string literal — so a typo'd point is a compile error (or a
// cdaglint faultpoint diagnostic) instead of a chaos test that silently
// never fires.  The cdaglint faultpoint analyzer enforces the call-site
// rule, checks these values are pairwise distinct, and checks Points lists
// each exactly once; the registry test in points_test.go checks every point
// is actually referenced by at least one test in the module.
const (
	// PointWMaxWorker wraps each w^max candidate-scan worker job
	// (internal/graphalg).
	PointWMaxWorker = "graphalg.wmax.worker"
	// PointMemsimSweepWorker wraps each memory-simulation sweep worker job
	// (internal/memsim).
	PointMemsimSweepWorker = "memsim.sweep.worker"
	// PointPRBWPlay fires inside the P-RBW player's step loop
	// (internal/prbw).
	PointPRBWPlay = "prbw.play"
	// PointStoreAppendTorn forces a short write of the frame being appended,
	// simulating a crash between two write(2) calls (internal/store).
	PointStoreAppendTorn = "store.append.torn"
	// PointStoreAppendFsync forces the group-commit fsync to fail
	// (internal/store).
	PointStoreAppendFsync = "store.append.fsync"
	// PointStoreCompactRename crashes compaction after the temp log is
	// written but before the atomic rename (internal/store).
	PointStoreCompactRename = "store.compact.rename"
	// PointStoreRecover fires at the start of journal recovery
	// (internal/store).
	PointStoreRecover = "store.recover"
)

// Points is the registry: every fault point in the repository, exactly once.
// Tests iterate it to assert coverage; the cdaglint faultpoint analyzer
// checks it stays in sync with the constants above.
var Points = []string{
	PointWMaxWorker,
	PointMemsimSweepWorker,
	PointPRBWPlay,
	PointStoreAppendTorn,
	PointStoreAppendFsync,
	PointStoreCompactRename,
	PointStoreRecover,
}

// InjectErr fires the named fault point and converts an injected panic into
// an error, so a test hook can force an I/O failure (not just a goroutine
// crash) at seams that must degrade gracefully rather than crash — the
// store's write/fsync/rename paths are the canonical users.
func InjectErr(point string) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("fault: injected at %s: %v", point, r)
		}
	}()
	Inject(point)
	return nil
}
