package fault

import (
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

func TestCaptureConvertsPanic(t *testing.T) {
	err := Capture("test.region", func() { panic("boom") })
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("Capture returned %v, want *PanicError", err)
	}
	if pe.Label != "test.region" || pe.Value != "boom" {
		t.Fatalf("unexpected PanicError %+v", pe)
	}
	if len(pe.Stack) == 0 {
		t.Fatalf("PanicError has no stack")
	}
	if !strings.Contains(pe.Error(), "test.region") || !strings.Contains(pe.Error(), "boom") {
		t.Fatalf("unexpected Error() %q", pe.Error())
	}
}

func TestCapturePassesThroughSuccess(t *testing.T) {
	ran := false
	if err := Capture("ok", func() { ran = true }); err != nil {
		t.Fatalf("Capture returned %v for a clean fn", err)
	}
	if !ran {
		t.Fatalf("fn did not run")
	}
}

func TestInjectCallsHookAndRestores(t *testing.T) {
	var got []string
	restore := SetHook(func(point string) { got = append(got, point) })
	Inject("a")
	Inject("b")
	restore()
	Inject("c") // no hook installed: must be a no-op
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("hook observed %v, want [a b]", got)
	}
}

// TestSetHookNesting: hooks stack LIFO, and an out-of-order restore retires
// its own frame without reinstating a hook that was torn down above it.
func TestSetHookNesting(t *testing.T) {
	var calls []string
	r1 := SetHook(func(point string) { calls = append(calls, "a:"+point) })
	r2 := SetHook(func(point string) { calls = append(calls, "b:"+point) })
	Inject("x") // innermost hook wins
	r1()        // out of order: b stays active, a is retired in place
	Inject("y")
	r2() // pops b, then the already-retired a
	Inject("z")
	if len(calls) != 2 || calls[0] != "b:x" || calls[1] != "b:y" {
		t.Fatalf("hooks observed %v, want [b:x b:y]", calls)
	}
}

// TestSetHookParallelRestore hammers SetHook/Inject/restore from many
// goroutines at once.  Under -race this proves the CAS-based frame stack is
// data-race free, and the final probe proves every goroutine's hook was fully
// torn down regardless of restore interleaving.
func TestSetHookParallelRestore(t *testing.T) {
	var leaked atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				restore := SetHook(func(point string) { leaked.Add(1) })
				Inject("spin")
				restore()
			}
		}()
	}
	wg.Wait()
	during := leaked.Load()
	if during == 0 {
		t.Fatal("no hook ever fired during the parallel phase")
	}
	Inject("after") // every frame is restored: must reach no hook
	if leaked.Load() != during {
		t.Fatalf("a hook survived its restore: %d fires after teardown", leaked.Load()-during)
	}
}

func TestInjectedPanicIsCaptured(t *testing.T) {
	restore := SetHook(func(point string) {
		if point == "worker" {
			panic("injected")
		}
	})
	defer restore()
	err := Capture("worker.region", func() { Inject("worker") })
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("injected panic not captured: %v", err)
	}
}
