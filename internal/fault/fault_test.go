package fault

import (
	"errors"
	"strings"
	"testing"
)

func TestCaptureConvertsPanic(t *testing.T) {
	err := Capture("test.region", func() { panic("boom") })
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("Capture returned %v, want *PanicError", err)
	}
	if pe.Label != "test.region" || pe.Value != "boom" {
		t.Fatalf("unexpected PanicError %+v", pe)
	}
	if len(pe.Stack) == 0 {
		t.Fatalf("PanicError has no stack")
	}
	if !strings.Contains(pe.Error(), "test.region") || !strings.Contains(pe.Error(), "boom") {
		t.Fatalf("unexpected Error() %q", pe.Error())
	}
}

func TestCapturePassesThroughSuccess(t *testing.T) {
	ran := false
	if err := Capture("ok", func() { ran = true }); err != nil {
		t.Fatalf("Capture returned %v for a clean fn", err)
	}
	if !ran {
		t.Fatalf("fn did not run")
	}
}

func TestInjectCallsHookAndRestores(t *testing.T) {
	var got []string
	restore := SetHook(func(point string) { got = append(got, point) })
	Inject("a")
	Inject("b")
	restore()
	Inject("c") // no hook installed: must be a no-op
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("hook observed %v, want [a b]", got)
	}
}

func TestInjectedPanicIsCaptured(t *testing.T) {
	restore := SetHook(func(point string) {
		if point == "worker" {
			panic("injected")
		}
	})
	defer restore()
	err := Capture("worker.region", func() { Inject("worker") })
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("injected panic not captured: %v", err)
	}
}
