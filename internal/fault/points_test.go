package fault

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestPointsRegistry pins the registry's internal invariants: every point is
// non-empty, dotted ("pkg.site" at minimum), and pairwise distinct.  The
// cdaglint faultpoint analyzer enforces the same properties statically; this
// test keeps them under plain `go test` too.
func TestPointsRegistry(t *testing.T) {
	seen := map[string]bool{}
	for _, p := range Points {
		if p == "" {
			t.Fatal("empty fault point in registry")
		}
		if !strings.Contains(p, ".") {
			t.Fatalf("fault point %q is not dotted (want pkg.site)", p)
		}
		if seen[p] {
			t.Fatalf("fault point %q registered twice", p)
		}
		seen[p] = true
	}
}

// TestEveryPointIsExercisedByATest is the anti-rot check behind the
// faultpoint analyzer: a registered point that no test references is a chaos
// hook that never fires — exactly the silent-typo failure mode the registry
// exists to prevent.  The test walks every _test.go file in the module
// (excluding this one, vendored code and lint fixtures) and requires each
// registered point to be referenced either through its constant name
// (fault.PointX) or by its literal string value.
func TestEveryPointIsExercisedByATest(t *testing.T) {
	root := moduleRoot(t)
	names := map[string]string{ // const name -> value
		"PointWMaxWorker":         PointWMaxWorker,
		"PointMemsimSweepWorker":  PointMemsimSweepWorker,
		"PointPRBWPlay":           PointPRBWPlay,
		"PointStoreAppendTorn":    PointStoreAppendTorn,
		"PointStoreAppendFsync":   PointStoreAppendFsync,
		"PointStoreCompactRename": PointStoreCompactRename,
		"PointStoreRecover":       PointStoreRecover,
	}
	if len(names) != len(Points) {
		t.Fatalf("test name map lists %d points, registry has %d — update both together",
			len(names), len(Points))
	}

	referenced := map[string]bool{} // point value -> seen in some test
	fset := token.NewFileSet()
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			switch d.Name() {
			case "vendor", "testdata", ".git":
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, "_test.go") || strings.HasSuffix(path, "points_test.go") {
			return nil
		}
		f, perr := parser.ParseFile(fset, path, nil, 0)
		if perr != nil {
			return perr
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BasicLit:
				if n.Kind == token.STRING {
					v := strings.Trim(n.Value, "`\"")
					if _, ok := referenced[v]; false || ok || containsValue(names, v) {
						referenced[v] = true
					}
				}
			case *ast.SelectorExpr:
				if val, ok := names[n.Sel.Name]; ok {
					referenced[val] = true
				}
			}
			return true
		})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range Points {
		if !referenced[p] {
			t.Errorf("fault point %q is registered but no _test.go file references it — "+
				"a chaos test must exercise every registered point", p)
		}
	}
}

func containsValue(m map[string]string, v string) bool {
	for _, mv := range m {
		if mv == v {
			return true
		}
	}
	return false
}

// moduleRoot walks up from the working directory to the directory holding
// go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above working directory")
		}
		dir = parent
	}
}
