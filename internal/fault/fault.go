// Package fault provides the process-wide fault-injection hook and the panic
// capture machinery behind the daemon's crash isolation.
//
// Every worker-pool goroutine in the analysis engines (the w^max candidate
// scan, the memsim sweep, the P-RBW player) and every request handler of the
// serving layer runs its work under Capture, which converts a panic into a
// *PanicError carrying the panic value and stack instead of killing the
// process.  Named fault points (Inject) are sprinkled at the same seams so
// tests can force a panic or a stall inside any worker and assert that
// exactly one request fails, with the process — and every cached Workspace —
// intact.  The durable store adds its own points (store.append.fsync,
// store.append.torn, store.compact.rename) so persistence tests can force
// short writes, fsync failures and mid-compaction crashes.
//
// The hook is process-global and nil by default; Inject compiles to one
// atomic load and a branch, so leaving the points in production code is free.
package fault

import (
	"fmt"
	"runtime/debug"
	"sync/atomic"
)

// Hook observes a named fault point.  A test hook may panic (to simulate a
// crashed worker), block (to simulate a stall), or return normally.
type Hook func(point string)

// frame is one installed hook: the function, its installation generation, the
// frame it shadowed, and a retirement flag.  Frames form an immutable stack
// (top points at the newest), so SetHook/restore pairs can nest — including
// across goroutines — without a stale restore ever clobbering a newer hook.
type frame struct {
	h    Hook
	gen  uint64
	prev *frame
	dead atomic.Bool
}

var (
	top     atomic.Pointer[frame]
	hookGen atomic.Uint64
)

// SetHook installs h as the innermost process-wide fault hook and returns a
// function restoring the state it shadowed.  Passing nil masks injection (an
// installed nil hook makes Inject a no-op for outer hooks too).  Intended for
// tests.
//
// SetHook and its restores are race-safe: each call stamps a fresh generation
// and pushes a frame with CAS; restore retires exactly the frame this call
// installed and then pops every retired frame reachable from the top, again
// with CAS.  Concurrent tests may therefore nest hooks freely — LIFO restore
// order behaves like a stack, and an out-of-order restore retires its frame
// in place (a deeper, still-active hook keeps winning) instead of reinstating
// a hook that was already torn down.
func SetHook(h Hook) (restore func()) {
	f := &frame{h: h, gen: hookGen.Add(1)}
	for {
		old := top.Load()
		f.prev = old
		if top.CompareAndSwap(old, f) {
			break
		}
	}
	return func() {
		f.dead.Store(true)
		for {
			t := top.Load()
			if t == nil || !t.dead.Load() {
				return
			}
			top.CompareAndSwap(t, t.prev)
		}
	}
}

// Inject triggers the named fault point: it calls the innermost live hook, if
// any.  Call it at the top of worker loops and handler bodies — anywhere a
// test should be able to force a failure.
func Inject(point string) {
	for f := top.Load(); f != nil; f = f.prev {
		if f.dead.Load() {
			continue
		}
		if f.h != nil {
			f.h(point)
		}
		return
	}
}

// PanicError is a recovered panic, preserved as an error: the panic value,
// the stack at the point of the panic, and the label of the Capture region
// that recovered it.  The serving layer maps it to its internal-error class;
// library callers can errors.As for it to distinguish a crashed engine from
// an ordinary analysis error.
type PanicError struct {
	// Label names the Capture region (e.g. "graphalg.wmax.worker").
	Label string
	// Value is the value passed to panic.
	Value any
	// Stack is the formatted goroutine stack captured at recovery.
	Stack []byte
}

// Error renders the panic value and label; the stack is kept out of the
// one-line form (callers that want it read the field).
func (e *PanicError) Error() string {
	return fmt.Sprintf("panic in %s: %v", e.Label, e.Value)
}

// Capture runs fn and converts a panic inside it into a *PanicError.  It is
// the recover wrapper every engine worker goroutine runs under: a poisoned
// job fails with an error, the goroutine (and the process) survives.
func Capture(label string, fn func()) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Label: label, Value: r, Stack: debug.Stack()}
		}
	}()
	fn()
	return nil
}
