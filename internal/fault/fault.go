// Package fault provides the process-wide fault-injection hook and the panic
// capture machinery behind the daemon's crash isolation.
//
// Every worker-pool goroutine in the analysis engines (the w^max candidate
// scan, the memsim sweep, the P-RBW player) and every request handler of the
// serving layer runs its work under Capture, which converts a panic into a
// *PanicError carrying the panic value and stack instead of killing the
// process.  Named fault points (Inject) are sprinkled at the same seams so
// tests can force a panic or a stall inside any worker and assert that
// exactly one request fails, with the process — and every cached Workspace —
// intact.
//
// The hook is process-global and nil by default; Inject compiles to one
// atomic load and a branch, so leaving the points in production code is free.
package fault

import (
	"fmt"
	"runtime/debug"
	"sync/atomic"
)

// Hook observes a named fault point.  A test hook may panic (to simulate a
// crashed worker), block (to simulate a stall), or return normally.
type Hook func(point string)

// hook holds the installed Hook; the extra struct layer gives atomic.Value a
// single consistent concrete type even when different func values are stored.
var hook atomic.Value // holds hookBox

type hookBox struct{ h Hook }

// SetHook installs h as the process-wide fault hook and returns a function
// restoring the previous hook.  Passing nil disables injection.  Intended for
// tests; concurrent SetHook calls race on the restore order, so serialize
// them (package tests naturally do).
func SetHook(h Hook) (restore func()) {
	prev, _ := hook.Load().(hookBox)
	hook.Store(hookBox{h})
	return func() { hook.Store(prev) }
}

// Inject triggers the named fault point: it calls the installed hook, if any.
// Call it at the top of worker loops and handler bodies — anywhere a test
// should be able to force a failure.
func Inject(point string) {
	if b, _ := hook.Load().(hookBox); b.h != nil {
		b.h(point)
	}
}

// PanicError is a recovered panic, preserved as an error: the panic value,
// the stack at the point of the panic, and the label of the Capture region
// that recovered it.  The serving layer maps it to its internal-error class;
// library callers can errors.As for it to distinguish a crashed engine from
// an ordinary analysis error.
type PanicError struct {
	// Label names the Capture region (e.g. "graphalg.wmax.worker").
	Label string
	// Value is the value passed to panic.
	Value any
	// Stack is the formatted goroutine stack captured at recovery.
	Stack []byte
}

// Error renders the panic value and label; the stack is kept out of the
// one-line form (callers that want it read the field).
func (e *PanicError) Error() string {
	return fmt.Sprintf("panic in %s: %v", e.Label, e.Value)
}

// Capture runs fn and converts a panic inside it into a *PanicError.  It is
// the recover wrapper every engine worker goroutine runs under: a poisoned
// job fails with an error, the goroutine (and the process) survives.
func Capture(label string, fn func()) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Label: label, Value: r, Stack: debug.Stack()}
		}
	}()
	fn()
	return nil
}
