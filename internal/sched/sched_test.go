package sched

import (
	"testing"

	"cdagio/internal/cdag"
	"cdagio/internal/gen"
)

func TestTopologicalValid(t *testing.T) {
	for _, g := range []*cdag.Graph{
		gen.Chain(10),
		gen.MatMul(4).Graph,
		gen.Jacobi(2, 5, 3, gen.StencilBox).Graph,
		gen.CG(2, 3, 2).Graph,
	} {
		order := Topological(g)
		if err := Validate(g, order); err != nil {
			t.Errorf("%s: %v", g.Name(), err)
		}
		if len(order) != g.NumOperations() {
			t.Errorf("%s: schedule length %d != %d operations", g.Name(), len(order), g.NumOperations())
		}
	}
}

func TestMatMulBlockedValid(t *testing.T) {
	r := gen.MatMul(6)
	for _, block := range []int{1, 2, 3, 4, 6, 10} {
		order := MatMulBlocked(r, block)
		if err := Validate(r.Graph, order); err != nil {
			t.Errorf("block=%d: %v", block, err)
		}
	}
}

func TestMatMulBlockedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic for block=0")
		}
	}()
	MatMulBlocked(gen.MatMul(2), 0)
}

func TestStencilSkewedValid(t *testing.T) {
	cases := []struct {
		dim, n, steps, tile int
		kind                gen.StencilKind
	}{
		{1, 16, 5, 4, gen.StencilStar},
		{1, 16, 20, 4, gen.StencilStar}, // more steps than cells per tile
		{1, 7, 3, 3, gen.StencilBox},
		{2, 6, 4, 2, gen.StencilBox},
		{2, 5, 3, 8, gen.StencilStar}, // tile larger than the grid
		{3, 4, 2, 2, gen.StencilBox},
	}
	for _, c := range cases {
		jr := gen.Jacobi(c.dim, c.n, c.steps, c.kind)
		order := StencilSkewed(jr, c.tile)
		if err := Validate(jr.Graph, order); err != nil {
			t.Errorf("dim=%d n=%d T=%d tile=%d %s: %v", c.dim, c.n, c.steps, c.tile, c.kind, err)
		}
		if len(order) != jr.Graph.NumOperations() {
			t.Errorf("dim=%d: schedule length %d != %d", c.dim, len(order), jr.Graph.NumOperations())
		}
	}
}

func TestStencilSkewedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic for tile=0")
		}
	}()
	StencilSkewed(gen.Jacobi(1, 8, 2, gen.StencilStar), 0)
}

func TestBlockPartitionGrid(t *testing.T) {
	jr := gen.Jacobi(2, 8, 3, gen.StencilStar)
	owner := BlockPartitionGrid(jr, 4)
	if len(owner) != jr.Graph.NumVertices() {
		t.Fatalf("owner length %d != |V| %d", len(owner), jr.Graph.NumVertices())
	}
	counts := make([]int, 4)
	for _, o := range owner {
		if o < 0 || o >= 4 {
			t.Fatalf("owner %d out of range", o)
		}
		counts[o]++
	}
	for n, c := range counts {
		if c == 0 {
			t.Errorf("node %d owns nothing", n)
		}
	}
	// Owner-compute: a cell keeps its owner across time steps.
	for c := 0; c < jr.Grid.Points(); c++ {
		o0 := owner[jr.Layer[0][c]]
		for tt := 1; tt <= jr.Steps; tt++ {
			if owner[jr.Layer[tt][c]] != o0 {
				t.Fatalf("cell %d changes owner over time", c)
			}
		}
	}
}

func TestBlockPartitionGridPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic for zero nodes")
		}
	}()
	BlockPartitionGrid(gen.Jacobi(1, 8, 2, gen.StencilStar), 0)
}

func TestBlockPartitionVectorAndLabels(t *testing.T) {
	cg := gen.CG(1, 16, 2)
	g := cg.Graph
	indexOf := GridIndexFromLabel(g)
	// Vector-element vertices parse; scalar vertices do not.
	if idx, ok := indexOf(cg.Graph.Inputs()[0]); !ok || idx != 0 {
		t.Errorf("input index = %d, %v", idx, ok)
	}
	if _, ok := indexOf(cg.AlphaVertex[0]); ok {
		t.Errorf("alpha vertex should not parse as a vector element")
	}
	owner := BlockPartitionVector(g, 16, 4, indexOf)
	if len(owner) != g.NumVertices() {
		t.Fatalf("owner length wrong")
	}
	counts := make([]int, 4)
	for _, o := range owner {
		counts[o]++
	}
	for n, c := range counts {
		if c == 0 {
			t.Errorf("node %d owns nothing", n)
		}
	}
	// Scalars live on node 0.
	if owner[cg.AlphaVertex[0]] != 0 {
		t.Errorf("alpha should live on node 0")
	}
}

func TestBlockPartitionVectorPanics(t *testing.T) {
	g := gen.Chain(3)
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic for zero nodes")
		}
	}()
	BlockPartitionVector(g, 3, 0, GridIndexFromLabel(g))
}

func TestValidateErrors(t *testing.T) {
	g := gen.Chain(4) // 0(in) 1 2 3(out)
	if err := Validate(g, []cdag.VertexID{1, 2, 3}); err != nil {
		t.Fatalf("valid schedule rejected: %v", err)
	}
	bad := [][]cdag.VertexID{
		{0, 1, 2, 3},  // input scheduled
		{1, 1, 2, 3},  // duplicate
		{1, 2},        // missing
		{2, 1, 3},     // out of order
		{1, 2, 99},    // out of range
		{1, 2, 3, 99}, // extra out of range
	}
	for i, order := range bad {
		if err := Validate(g, order); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}
