// Package sched builds execution schedules and processor/node assignments for
// the CDAGs produced by package gen: plain topological orders, cache-oblivious
// blocked orders for matrix multiplication, skewed (parallelogram) time tiles
// for Jacobi stencils, and block partitions of grid computations across the
// nodes of a distributed machine.
//
// Schedules are consumed by the schedule players in packages pebble, prbw and
// memsim; the measured data movement of a good schedule is the empirical
// upper bound that the benchmark harness compares against the paper's lower
// bounds.
package sched

import (
	"fmt"

	"cdagio/internal/cdag"
	"cdagio/internal/gen"
)

// Topological returns the non-input vertices of g in topological order — the
// baseline schedule.
func Topological(g *cdag.Graph) []cdag.VertexID {
	order := make([]cdag.VertexID, 0, g.NumOperations())
	for _, v := range g.MustTopoOrder() {
		if !g.IsInput(v) {
			order = append(order, v)
		}
	}
	return order
}

// MatMulBlocked returns a blocked schedule of the matmul CDAG: the iteration
// space (i, j, k) is traversed in tiles of the given block size, with the k
// blocks outermost so each C tile's accumulation chain stays in fast memory
// while a block of A and B is reused.  For block ≥ n the schedule degenerates
// to the naive i, j, k order.
func MatMulBlocked(r *gen.MatMulResult, block int) []cdag.VertexID {
	if block < 1 {
		panic("sched: block size must be >= 1")
	}
	n := r.N
	g := r.Graph
	order := make([]cdag.VertexID, 0, g.NumOperations())
	for ib := 0; ib < n; ib += block {
		for jb := 0; jb < n; jb += block {
			for kb := 0; kb < n; kb += block {
				for i := ib; i < min(ib+block, n); i++ {
					for j := jb; j < min(jb+block, n); j++ {
						for k := kb; k < min(kb+block, n); k++ {
							order = append(order, r.Mul[i][j][k])
							if add := r.Add[i][j][k]; add != cdag.InvalidVertex {
								order = append(order, add)
							}
						}
					}
				}
			}
		}
	}
	return order
}

// StencilSkewed returns a skewed (parallelogram) tiled schedule for a Jacobi
// CDAG: spatial tiles of the given width are shifted by one cell per time
// step, which makes tile-major, time-minor execution legal for radius-1
// stencils and gives each tile a working set of Θ(tile^d) values.  With
// tile ≈ S^(1/d) the measured I/O matches the lower bound of Theorem 10 up to
// a constant factor, which is how the paper's tightness remark is reproduced.
func StencilSkewed(r *gen.JacobiResult, tile int) []cdag.VertexID {
	if tile < 1 {
		panic("sched: tile size must be >= 1")
	}
	grid := r.Grid
	dim := grid.Dim
	// The skew shifts tiles left by one cell per time step, so covering the
	// whole space-time domain needs tiles for indices up to
	// (N-1 + Steps-1)/tile.
	nTiles := (grid.N-1+r.Steps-1)/tile + 1
	totalTiles := 1
	for d := 0; d < dim; d++ {
		totalTiles *= nTiles
	}
	order := make([]cdag.VertexID, 0, grid.Points()*r.Steps)
	tileCoord := make([]int, dim)
	for ti := 0; ti < totalTiles; ti++ {
		// Decode the tile index into per-dimension tile coordinates
		// (lexicographic order).
		rem := ti
		for d := dim - 1; d >= 0; d-- {
			tileCoord[d] = rem % nTiles
			rem /= nTiles
		}
		for t := 1; t <= r.Steps; t++ {
			// The tile's cell range in each dimension shifts left by (t-1).
			appendTileCells(&order, r, tileCoord, tile, t)
		}
	}
	return order
}

// appendTileCells appends the vertices of time step t whose cell coordinates
// fall inside the skewed tile.
func appendTileCells(order *[]cdag.VertexID, r *gen.JacobiResult, tileCoord []int, tile, t int) {
	grid := r.Grid
	dim := grid.Dim
	lo := make([]int, dim)
	hi := make([]int, dim)
	for d := 0; d < dim; d++ {
		lo[d] = tileCoord[d]*tile - (t - 1)
		hi[d] = lo[d] + tile
		if lo[d] < 0 {
			lo[d] = 0
		}
		if hi[d] > grid.N {
			hi[d] = grid.N
		}
		if lo[d] >= hi[d] {
			return
		}
	}
	coords := make([]int, dim)
	copy(coords, lo)
	for {
		*order = append(*order, r.Layer[t][grid.Index(coords)])
		d := dim - 1
		for d >= 0 {
			coords[d]++
			if coords[d] < hi[d] {
				break
			}
			coords[d] = lo[d]
			d--
		}
		if d < 0 {
			return
		}
	}
}

// BlockPartitionGrid assigns the vertices of a Jacobi CDAG to nodes by
// splitting the spatial grid into equal slabs along the first dimension
// (owner-compute: every time step of a cell stays on the cell's owner).
// It returns the per-vertex owner array used by prbw.OwnerCompute and
// memsim.Run.
func BlockPartitionGrid(r *gen.JacobiResult, nodes int) []int {
	if nodes < 1 {
		panic("sched: need at least one node")
	}
	owner := make([]int, r.Graph.NumVertices())
	grid := r.Grid
	for t := 0; t <= r.Steps; t++ {
		for c, v := range r.Layer[t] {
			slab := grid.Coords(c)[0] * nodes / grid.N
			if slab >= nodes {
				slab = nodes - 1
			}
			owner[v] = slab
		}
	}
	return owner
}

// BlockPartitionVector assigns vertices of a vector-structured CDAG (CG,
// GMRES) to nodes: every vertex whose label carries a grid-point index is
// owned by the block that index falls into, and scalar vertices (reductions,
// alpha/gamma) are owned by node 0.  ownerOfIndex maps a linear grid index to
// its node.
func BlockPartitionVector(g *cdag.Graph, points, nodes int, indexOf func(v cdag.VertexID) (int, bool)) []int {
	if nodes < 1 {
		panic("sched: need at least one node")
	}
	owner := make([]int, g.NumVertices())
	for _, v := range g.Vertices() {
		if idx, ok := indexOf(v); ok {
			o := idx * nodes / points
			if o >= nodes {
				o = nodes - 1
			}
			owner[v] = o
		} else {
			owner[v] = 0
		}
	}
	return owner
}

// GridIndexFromLabel builds an indexOf function for the CDAGs generated by
// package gen, whose vector-element vertices carry labels of the form
// "name[idx]".  Scalar vertices (no bracket) report ok = false.
func GridIndexFromLabel(g *cdag.Graph) func(cdag.VertexID) (int, bool) {
	return func(v cdag.VertexID) (int, bool) {
		label := g.Label(v)
		open := -1
		for i := 0; i < len(label); i++ {
			if label[i] == '[' {
				open = i
				break
			}
		}
		if open < 0 || label[len(label)-1] != ']' {
			return 0, false
		}
		idx := 0
		for i := open + 1; i < len(label)-1; i++ {
			c := label[i]
			if c < '0' || c > '9' {
				return 0, false
			}
			idx = idx*10 + int(c-'0')
		}
		return idx, true
	}
}

// Validate checks that the schedule covers exactly the non-input vertices of
// g in dependence order; it returns nil when the schedule is executable.  The
// dependence sweep visits every predecessor row, so it reads the hoisted CSR
// arrays directly.
func Validate(g *cdag.Graph, order []cdag.VertexID) error {
	n := g.NumVertices()
	predOff, predVal := g.PredecessorCSR()
	pos := make([]int, n)
	for i := range pos {
		pos[i] = -1
	}
	for i, v := range order {
		if !g.ValidVertex(v) {
			return fmt.Errorf("sched: vertex %d out of range", v)
		}
		if g.IsInput(v) {
			return fmt.Errorf("sched: input vertex %d scheduled", v)
		}
		if pos[v] >= 0 {
			return fmt.Errorf("sched: vertex %d scheduled twice", v)
		}
		pos[v] = i
	}
	for v := 0; v < n; v++ {
		if g.IsInput(cdag.VertexID(v)) {
			continue
		}
		if pos[v] < 0 {
			return fmt.Errorf("sched: vertex %d missing from schedule", v)
		}
		for _, p := range predVal[predOff[v]:predOff[v+1]] {
			if !g.IsInput(p) && pos[p] > pos[v] {
				return fmt.Errorf("sched: vertex %d scheduled before predecessor %d", v, p)
			}
		}
	}
	return nil
}
