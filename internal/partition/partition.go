// Package partition implements the S-partitioning machinery of Hong & Kung
// as adapted to the Red-Blue-White pebble game (Definition 5 of the paper):
// validation of S-partitions, construction of the 2S-partition associated
// with a pebble game (the Theorem 1 construction), exact computation of the
// largest admissible vertex set U(2S) on small CDAGs, and the resulting I/O
// lower bounds of Lemma 1 and Corollary 1.
package partition

import (
	"fmt"
	"math/bits"

	"cdagio/internal/cdag"
	"cdagio/internal/pebble"
)

// SPartition is a candidate S-partition of the non-input vertices of a CDAG.
type SPartition struct {
	S     int
	Parts []*cdag.VertexSet
}

// Validate checks properties P1–P4 of Definition 5 against g:
// the parts disjointly cover V − I, no two parts have edges in both
// directions between them, and every part has |In| ≤ S and |Out| ≤ S.
func (p SPartition) Validate(g *cdag.Graph) error {
	if p.S < 1 {
		return fmt.Errorf("partition: S must be positive, got %d", p.S)
	}
	n := g.NumVertices()
	partOf := make([]int, n)
	for i := range partOf {
		partOf[i] = -1
	}
	covered := 0
	for i, part := range p.Parts {
		for _, v := range part.Elements() {
			if g.IsInput(v) {
				return fmt.Errorf("partition: part %d contains input vertex %d (P1)", i, v)
			}
			if partOf[v] >= 0 {
				return fmt.Errorf("partition: vertex %d appears in parts %d and %d (P1)", v, partOf[v], i)
			}
			partOf[v] = i
			covered++
		}
	}
	if covered != g.NumVertices()-g.NumInputs() {
		return fmt.Errorf("partition: parts cover %d vertices, want |V|-|I| = %d (P1)",
			covered, g.NumVertices()-g.NumInputs())
	}
	// P2: no circuit (edges in both directions) between any two parts.
	forward := make(map[[2]int]bool)
	for v := 0; v < n; v++ {
		if partOf[v] < 0 {
			continue
		}
		for _, w := range g.Succ(cdag.VertexID(v)) {
			if partOf[w] < 0 || partOf[w] == partOf[v] {
				continue
			}
			key := [2]int{partOf[v], partOf[w]}
			forward[key] = true
			if forward[[2]int{key[1], key[0]}] {
				return fmt.Errorf("partition: circuit between parts %d and %d (P2)", key[0], key[1])
			}
		}
	}
	// P3 and P4.
	for i, part := range p.Parts {
		if in := cdag.In(g, part); in.Len() > p.S {
			return fmt.Errorf("partition: part %d has |In| = %d > S = %d (P3)", i, in.Len(), p.S)
		}
		if out := cdag.Out(g, part); out.Len() > p.S {
			return fmt.Errorf("partition: part %d has |Out| = %d > S = %d (P4)", i, out.Len(), p.S)
		}
	}
	return nil
}

// NumParts returns h, the number of parts.
func (p SPartition) NumParts() int { return len(p.Parts) }

// MaxPartSize returns the size of the largest part.
func (p SPartition) MaxPartSize() int {
	max := 0
	for _, part := range p.Parts {
		if part.Len() > max {
			max = part.Len()
		}
	}
	return max
}

// FromGameTrace builds the 2S-partition associated with a complete RBW game
// (the construction in the proof of Theorem 1): the move sequence is split
// into consecutive segments containing exactly S I/O moves each (the last
// segment may have fewer), and part i collects the vertices fired during
// segment i.  The resulting partition is a valid 2S-partition of the CDAG,
// which FromGameTrace verifies before returning it.
func FromGameTrace(g *cdag.Graph, res pebble.Result) (SPartition, error) {
	if res.Trace == nil {
		return SPartition{}, fmt.Errorf("partition: game result carries no trace (rerun with recording enabled)")
	}
	s := res.S
	parts := []*cdag.VertexSet{}
	current := cdag.NewVertexSet(g.NumVertices())
	ioInSegment := 0
	movesInSegment := 0
	flush := func() {
		// Empty parts (segments that performed only I/O) are kept so that the
		// number of parts equals ceil(q/S), preserving the Theorem 1 relation
		// S·h ≥ q ≥ S·(h−1).
		parts = append(parts, current)
		current = cdag.NewVertexSet(g.NumVertices())
		movesInSegment = 0
	}
	for _, m := range res.Trace {
		movesInSegment++
		switch m.Kind {
		case pebble.Load, pebble.Store:
			ioInSegment++
			if ioInSegment == s {
				flush()
				ioInSegment = 0
			}
		case pebble.Compute:
			current.Add(m.V)
		}
	}
	if movesInSegment > 0 {
		flush()
	}
	p := SPartition{S: 2 * s, Parts: parts}
	if err := p.Validate(g); err != nil {
		return SPartition{}, fmt.Errorf("partition: game trace did not induce a valid 2S-partition: %w", err)
	}
	return p, nil
}

// Lemma1Bound returns the I/O lower bound of Lemma 1: S × (H(2S) − 1), where
// h2S is the minimum number of parts of any valid 2S-partition.
func Lemma1Bound(s, h2S int) int64 {
	if h2S < 1 {
		return 0
	}
	return int64(s) * int64(h2S-1)
}

// Corollary1Bound returns the I/O lower bound of Corollary 1:
// S × (|V − I| / U(2S) − 1), where u2S bounds the size of the largest vertex
// set of any valid 2S-partition from above.
func Corollary1Bound(s, numOperations, u2S int) int64 {
	if u2S < 1 || numOperations < 1 {
		return 0
	}
	parts := numOperations / u2S
	if parts < 1 {
		return 0
	}
	v := int64(s) * int64(parts-1)
	if v < 0 {
		return 0
	}
	return v
}

// MaxVertexSetSizeExact computes, by exhaustive enumeration, the size of the
// largest subset W of the non-input vertices of g with |In(W)| ≤ limit and
// |Out(W)| ≤ limit.  This quantity upper-bounds U(limit) — any vertex set of
// a valid limit-partition satisfies both constraints — so feeding it to
// Corollary1Bound yields a sound lower bound.
//
// The enumeration is exponential; graphs with more than maxVertices
// (default 22) non-input vertices are rejected.
func MaxVertexSetSizeExact(g *cdag.Graph, limit int, maxVertices int) (int, error) {
	if maxVertices <= 0 {
		maxVertices = 22
	}
	ops := []cdag.VertexID{}
	for _, v := range g.Vertices() {
		if !g.IsInput(v) {
			ops = append(ops, v)
		}
	}
	k := len(ops)
	if k > maxVertices {
		return 0, fmt.Errorf("partition: %d non-input vertices exceed the exact-search limit %d", k, maxVertices)
	}
	if k == 0 {
		return 0, nil
	}
	best := 0
	set := cdag.NewVertexSet(g.NumVertices())
	for mask := uint64(1); mask < uint64(1)<<uint(k); mask++ {
		size := bits.OnesCount64(mask)
		if size <= best {
			continue
		}
		set.Clear()
		for i := 0; i < k; i++ {
			if mask&(1<<uint(i)) != 0 {
				set.Add(ops[i])
			}
		}
		if cdag.In(g, set).Len() <= limit && cdag.Out(g, set).Len() <= limit {
			best = size
		}
	}
	return best, nil
}

// GreedyPartition builds a valid S-partition by slicing a topological order
// of the non-input vertices greedily: each part grows until adding the next
// vertex would violate the |In| ≤ S or |Out| ≤ S constraint.  Because the
// parts follow a topological order there is never a circuit between them.
// The resulting partition witnesses an upper bound on H(S) (the minimum
// number of parts), which brackets the Lemma 1 bound from above in tests and
// reports.
func GreedyPartition(g *cdag.Graph, s int) (SPartition, error) {
	if s < 1 {
		return SPartition{}, fmt.Errorf("partition: S must be positive")
	}
	parts := []*cdag.VertexSet{}
	current := cdag.NewVertexSet(g.NumVertices())
	for _, v := range g.MustTopoOrder() {
		if g.IsInput(v) {
			continue
		}
		current.Add(v)
		if cdag.In(g, current).Len() > s || cdag.Out(g, current).Len() > s {
			current.Remove(v)
			if current.Len() == 0 {
				return SPartition{}, fmt.Errorf("partition: vertex %d alone violates the S=%d constraints", v, s)
			}
			parts = append(parts, current)
			current = cdag.NewVertexSet(g.NumVertices())
			current.Add(v)
			if cdag.In(g, current).Len() > s || cdag.Out(g, current).Len() > s {
				return SPartition{}, fmt.Errorf("partition: vertex %d alone violates the S=%d constraints", v, s)
			}
		}
	}
	if current.Len() > 0 {
		parts = append(parts, current)
	}
	p := SPartition{S: s, Parts: parts}
	if err := p.Validate(g); err != nil {
		return SPartition{}, err
	}
	return p, nil
}
