package partition

import (
	"strings"
	"testing"

	"cdagio/internal/cdag"
	"cdagio/internal/gen"
	"cdagio/internal/pebble"
)

func TestSPartitionValidate(t *testing.T) {
	g := gen.Chain(6) // 0(in) 1 2 3 4 5(out)
	good := SPartition{S: 2, Parts: []*cdag.VertexSet{
		cdag.NewVertexSetOf(6, 1, 2),
		cdag.NewVertexSetOf(6, 3, 4, 5),
	}}
	if err := good.Validate(g); err != nil {
		t.Fatalf("valid partition rejected: %v", err)
	}
	if good.NumParts() != 2 || good.MaxPartSize() != 3 {
		t.Errorf("summary wrong: %d parts, max %d", good.NumParts(), good.MaxPartSize())
	}

	cases := map[string]SPartition{
		"zero S": {S: 0, Parts: good.Parts},
		"contains input": {S: 2, Parts: []*cdag.VertexSet{
			cdag.NewVertexSetOf(6, 0, 1, 2), cdag.NewVertexSetOf(6, 3, 4, 5)}},
		"overlap": {S: 2, Parts: []*cdag.VertexSet{
			cdag.NewVertexSetOf(6, 1, 2, 3), cdag.NewVertexSetOf(6, 3, 4, 5)}},
		"not covering": {S: 2, Parts: []*cdag.VertexSet{
			cdag.NewVertexSetOf(6, 1, 2), cdag.NewVertexSetOf(6, 4, 5)}},
	}
	for name, p := range cases {
		if err := p.Validate(g); err == nil {
			t.Errorf("%s: expected validation error", name)
		}
	}
}

func TestSPartitionValidateCircuitAndSizes(t *testing.T) {
	// Two vertices with edges both ways between two parts are impossible in a
	// DAG, so build the circuit across parts via a longer path:
	// 1 -> 2 -> 3 with parts {1,3} and {2}: edges 1->2 (part A to B) and
	// 2->3 (part B to A) form a circuit between the parts.
	g := gen.Chain(4)
	circ := SPartition{S: 3, Parts: []*cdag.VertexSet{
		cdag.NewVertexSetOf(4, 1, 3),
		cdag.NewVertexSetOf(4, 2),
	}}
	if err := circ.Validate(g); err == nil || !strings.Contains(err.Error(), "circuit") {
		t.Errorf("expected circuit violation, got %v", err)
	}

	// In/Out size violations: a dot product's reduction part has many inputs.
	d := gen.DotProduct(6)
	ops := cdag.NewVertexSet(d.NumVertices())
	for _, v := range d.Vertices() {
		if !d.IsInput(v) {
			ops.Add(v)
		}
	}
	tight := SPartition{S: 2, Parts: []*cdag.VertexSet{ops}}
	if err := tight.Validate(d); err == nil || !strings.Contains(err.Error(), "P3") {
		t.Errorf("expected P3 violation, got %v", err)
	}
}

func TestFromGameTrace(t *testing.T) {
	// Play a recorded game and verify the Theorem 1 construction yields a
	// valid 2S-partition whose part count is consistent with the game's I/O:
	// S·h >= q >= S·(h−1).
	for _, tc := range []struct {
		name string
		g    *cdag.Graph
		s    int
	}{
		{"fft16", gen.FFT(16), 6},
		{"pyramid6", gen.Pyramid(6), 4},
		{"matmul3", gen.MatMul(3).Graph, 6},
	} {
		order := make([]cdag.VertexID, 0)
		for _, v := range tc.g.MustTopoOrder() {
			if !tc.g.IsInput(v) {
				order = append(order, v)
			}
		}
		res, err := pebble.PlaySchedule(tc.g, pebble.RBW, tc.s, order, pebble.Belady, true)
		if err != nil {
			t.Fatalf("%s: PlaySchedule: %v", tc.name, err)
		}
		p, err := FromGameTrace(tc.g, res)
		if err != nil {
			t.Fatalf("%s: FromGameTrace: %v", tc.name, err)
		}
		if p.S != 2*tc.s {
			t.Errorf("%s: partition S = %d, want %d", tc.name, p.S, 2*tc.s)
		}
		h := p.NumParts()
		q := res.IO()
		if !(tc.s*h >= q && q >= tc.s*(h-1)) {
			t.Errorf("%s: Theorem 1 relation violated: S=%d h=%d q=%d", tc.name, tc.s, h, q)
		}
	}
}

func TestFromGameTraceNoTrace(t *testing.T) {
	g := gen.Chain(4)
	res, err := pebble.PlayTopological(g, pebble.RBW, 2, pebble.Belady)
	if err != nil {
		t.Fatalf("PlayTopological: %v", err)
	}
	if _, err := FromGameTrace(g, res); err == nil {
		t.Errorf("expected error for missing trace")
	}
}

func TestLemmaBounds(t *testing.T) {
	if got := Lemma1Bound(4, 5); got != 16 {
		t.Errorf("Lemma1Bound = %d, want 16", got)
	}
	if got := Lemma1Bound(4, 0); got != 0 {
		t.Errorf("Lemma1Bound(h=0) = %d, want 0", got)
	}
	if got := Corollary1Bound(4, 100, 10); got != 4*(10-1) {
		t.Errorf("Corollary1Bound = %d, want 36", got)
	}
	if got := Corollary1Bound(4, 5, 10); got != 0 {
		t.Errorf("Corollary1Bound small = %d, want 0", got)
	}
	if got := Corollary1Bound(4, 100, 0); got != 0 {
		t.Errorf("Corollary1Bound u=0 = %d, want 0", got)
	}
}

func TestMaxVertexSetSizeExact(t *testing.T) {
	// On a chain every subset has |In| <= 1 and |Out| <= 1 provided it is a
	// contiguous run; the maximum admissible set is all non-input vertices.
	g := gen.Chain(8)
	u, err := MaxVertexSetSizeExact(g, 2, 0)
	if err != nil {
		t.Fatalf("MaxVertexSetSizeExact: %v", err)
	}
	if u != 7 {
		t.Errorf("chain U(2) = %d, want 7", u)
	}
	// On the FFT(4) butterfly with limit 2 the largest admissible set is
	// small; with limit 8 everything fits.
	f := gen.FFT(4)
	u2, err := MaxVertexSetSizeExact(f, 2, 0)
	if err != nil {
		t.Fatalf("MaxVertexSetSizeExact: %v", err)
	}
	if u2 >= f.NumOperations() {
		t.Errorf("FFT U(2) = %d should be smaller than all %d operations", u2, f.NumOperations())
	}
	u3, err := MaxVertexSetSizeExact(f, 8, 0)
	if err != nil {
		t.Fatalf("MaxVertexSetSizeExact: %v", err)
	}
	if u3 != f.NumOperations() {
		t.Errorf("FFT U(8) = %d, want %d", u3, f.NumOperations())
	}
	// Monotonicity in the limit.
	if u2 > u3 {
		t.Errorf("U not monotone: %d > %d", u2, u3)
	}
	// Too-large graphs are rejected.
	if _, err := MaxVertexSetSizeExact(gen.FFT(16), 4, 0); err == nil {
		t.Errorf("expected size-limit error")
	}
	// Graph with no operations.
	empty := cdag.NewGraph("empty", 1)
	empty.AddInput("x")
	if u4, err := MaxVertexSetSizeExact(empty, 4, 0); err != nil || u4 != 0 {
		t.Errorf("empty graph U = %d (%v)", u4, err)
	}
}

func TestCorollary1AgainstOptimal(t *testing.T) {
	// The Corollary 1 lower bound with the exact U(2S) must never exceed the
	// exact optimal I/O found by exhaustive search.
	cases := []struct {
		name string
		g    *cdag.Graph
		s    int
	}{
		{"fft4", gen.FFT(4), 3},
		{"pyramid4", gen.Pyramid(4), 3},
		{"dot4", gen.DotProduct(4), 3},
	}
	for _, tc := range cases {
		u, err := MaxVertexSetSizeExact(tc.g, 2*tc.s, 0)
		if err != nil {
			t.Fatalf("%s: U: %v", tc.name, err)
		}
		lb := Corollary1Bound(tc.s, tc.g.NumOperations(), u)
		opt, err := pebble.OptimalIO(tc.g, pebble.RBW, tc.s, pebble.OptimalOptions{})
		if err != nil {
			t.Fatalf("%s: OptimalIO: %v", tc.name, err)
		}
		if int64(opt) < lb {
			t.Errorf("%s: optimal I/O %d below Corollary 1 bound %d", tc.name, opt, lb)
		}
	}
}

func TestGreedyPartition(t *testing.T) {
	for _, tc := range []struct {
		name string
		g    *cdag.Graph
		s    int
	}{
		{"chain", gen.Chain(12), 2},
		{"fft8", gen.FFT(8), 4},
		{"matmul3", gen.MatMul(3).Graph, 4},
		{"jacobi", gen.Jacobi(1, 8, 3, gen.StencilStar).Graph, 4},
	} {
		p, err := GreedyPartition(tc.g, tc.s)
		if err != nil {
			t.Fatalf("%s: GreedyPartition: %v", tc.name, err)
		}
		if err := p.Validate(tc.g); err != nil {
			t.Errorf("%s: greedy partition invalid: %v", tc.name, err)
		}
	}
	// Failure when S is too small for a single vertex's in-degree.
	if _, err := GreedyPartition(gen.DotProduct(8), 1); err == nil {
		t.Errorf("expected failure for S=1 on a dot product")
	}
	if _, err := GreedyPartition(gen.Chain(3), 0); err == nil {
		t.Errorf("expected failure for S=0")
	}
}
