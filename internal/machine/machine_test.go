package machine

import (
	"math"
	"strings"
	"testing"
)

func TestTable1Values(t *testing.T) {
	bgq := IBMBGQ()
	xt5 := CrayXT5()

	vb, err := bgq.VerticalBalance()
	if err != nil || math.Abs(vb-0.052) > 1e-12 {
		t.Errorf("BG/Q vertical balance = %v (%v), want 0.052", vb, err)
	}
	hb, err := bgq.HorizontalBalance()
	if err != nil || math.Abs(hb-0.049) > 1e-12 {
		t.Errorf("BG/Q horizontal balance = %v (%v), want 0.049", hb, err)
	}
	vb5, err := xt5.VerticalBalance()
	if err != nil || math.Abs(vb5-0.0256) > 1e-12 {
		t.Errorf("XT5 vertical balance = %v (%v), want 0.0256", vb5, err)
	}
	hb5, err := xt5.HorizontalBalance()
	if err != nil || math.Abs(hb5-0.058) > 1e-12 {
		t.Errorf("XT5 horizontal balance = %v (%v), want 0.058", hb5, err)
	}

	if bgq.Nodes != 2048 || xt5.Nodes != 9408 {
		t.Errorf("node counts wrong: %d, %d", bgq.Nodes, xt5.Nodes)
	}
	// Table 1 reports 16 GB memory and 32 MB / 6 MB caches.
	if bgq.MainMemoryWords != GigaWords(16) || xt5.MainMemoryWords != GigaWords(16) {
		t.Errorf("memory sizes wrong")
	}
	if bgq.CacheCapacityWords() != MegaWords(32) {
		t.Errorf("BG/Q cache = %d words, want %d", bgq.CacheCapacityWords(), MegaWords(32))
	}
	if xt5.CacheCapacityWords() != MegaWords(6) {
		t.Errorf("XT5 cache = %d words, want %d", xt5.CacheCapacityWords(), MegaWords(6))
	}
	// The BG/Q L2 is 4 MWords — the value plugged into the Jacobi analysis
	// (Section 5.4.3 uses S2 = 4 MWords).
	if bgq.CacheCapacityWords() != 4_000_000 {
		t.Errorf("BG/Q cache = %d words, want 4e6", bgq.CacheCapacityWords())
	}

	if len(Table1()) != 2 {
		t.Errorf("Table1 should list 2 machines")
	}
	for _, m := range Table1() {
		if err := m.Validate(); err != nil {
			t.Errorf("Validate(%s): %v", m.Name, err)
		}
	}
}

func TestUnitConversions(t *testing.T) {
	if MegaWords(8) != 1_000_000 {
		t.Errorf("MegaWords(8) = %d", MegaWords(8))
	}
	if GigaWords(8) != 1_000_000_000 {
		t.Errorf("GigaWords(8) = %d", GigaWords(8))
	}
}

func TestDerivedQuantities(t *testing.T) {
	m := Generic("toy", 4, 8, 2e9, 1<<20, 1<<30, 8e9, 1e9)
	if m.TotalCores() != 32 {
		t.Errorf("TotalCores = %d", m.TotalCores())
	}
	if m.NodePeakFlops() != 16e9 {
		t.Errorf("NodePeakFlops = %v", m.NodePeakFlops())
	}
	if m.PeakFlops() != 64e9 {
		t.Errorf("PeakFlops = %v", m.PeakFlops())
	}
	vb, err := m.VerticalBalance()
	if err != nil || math.Abs(vb-0.5) > 1e-12 {
		t.Errorf("vertical balance = %v (%v), want 0.5", vb, err)
	}
	hb, err := m.HorizontalBalance()
	if err != nil || math.Abs(hb-1.0/16.0) > 1e-12 {
		t.Errorf("horizontal balance = %v (%v)", hb, err)
	}
	lb, err := m.LevelBalance(0)
	if err != nil || math.Abs(lb-0.5) > 1e-12 {
		t.Errorf("level balance = %v (%v)", lb, err)
	}
	if err := m.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
	if !strings.Contains(m.String(), "toy") {
		t.Errorf("String = %q", m.String())
	}
}

func TestBalanceErrors(t *testing.T) {
	m := Machine{Name: "incomplete", Nodes: 1, CoresPerNode: 1, FlopsPerCore: 1e9, MainMemoryWords: 1}
	if _, err := m.VerticalBalance(); err == nil {
		t.Errorf("expected vertical balance error without bandwidth")
	}
	if _, err := m.HorizontalBalance(); err == nil {
		t.Errorf("expected horizontal balance error without bandwidth")
	}
	if _, err := m.LevelBalance(0); err == nil {
		t.Errorf("expected level balance error for missing level")
	}
	m.Levels = []Level{{Name: "L1", CountPerNode: 1, CapacityWords: 100}}
	if _, err := m.LevelBalance(0); err == nil {
		t.Errorf("expected level balance error without bandwidth")
	}
}

func TestValidateFailures(t *testing.T) {
	bad := Machine{Name: "bad"}
	if err := bad.Validate(); err == nil {
		t.Errorf("expected error for empty machine")
	}
	// Shrinking capacities up the hierarchy are invalid.
	bad2 := Generic("bad2", 1, 1, 1e9, 100, 1<<20, 1e9, 1e9)
	bad2.Levels = append(bad2.Levels, Level{Name: "L2", CountPerNode: 1, CapacityWords: 10})
	if err := bad2.Validate(); err == nil {
		t.Errorf("expected error for shrinking hierarchy")
	}
	// More units at an outer level than an inner one are invalid.
	bad3 := Generic("bad3", 1, 4, 1e9, 100, 1<<20, 1e9, 1e9)
	bad3.Levels = append(bad3.Levels, Level{Name: "L2", CountPerNode: 2, CapacityWords: 1000})
	if err := bad3.Validate(); err == nil {
		t.Errorf("expected error for increasing unit count")
	}
}

func TestLookup(t *testing.T) {
	if _, err := Lookup("IBM BG/Q"); err != nil {
		t.Errorf("Lookup BG/Q: %v", err)
	}
	if _, err := Lookup("Cray XT5"); err != nil {
		t.Errorf("Lookup XT5: %v", err)
	}
	if _, err := Lookup("nonexistent"); err == nil {
		t.Errorf("expected error for unknown machine")
	}
}

func TestCacheCapacityNoLevels(t *testing.T) {
	m := Machine{Name: "flat", Nodes: 1, CoresPerNode: 1, FlopsPerCore: 1, MainMemoryWords: 42}
	if m.CacheCapacityWords() != 42 {
		t.Errorf("CacheCapacityWords = %d, want main memory 42", m.CacheCapacityWords())
	}
}
