// Package machine models the parallel computer systems whose data-movement
// requirements the library analyzes: multi-node machines connected by an
// interconnection network, each node holding multiple cores that share a
// hierarchy of caches and the node's physical main memory (Figure 1 of
// Elango et al.).
//
// A Machine carries enough information to evaluate the architectural balance
// parameters that Section 5 of the paper compares bounds against:
//
//   - the vertical balance at a level of the memory hierarchy — the ratio of
//     the bandwidth between that level and its children to the aggregate peak
//     floating-point throughput of the cores it serves (words/FLOP), and
//   - the horizontal balance — the per-node interconnect bandwidth divided by
//     the node's peak floating-point throughput (words/FLOP).
//
// The catalog includes the two machines of Table 1 (IBM BG/Q and Cray XT5)
// with the balance values reported in the paper.
package machine

import (
	"fmt"
	"strings"
)

// Level describes one level of the per-node storage hierarchy, counted from
// fast/small to slow/large: level 1 is the innermost storage (registers or L1
// in the paper's model), and the highest level is the node's main memory.
type Level struct {
	// Name is a human-readable label ("L1", "L2", "DRAM", ...).
	Name string
	// CountPerNode is the number of storage units of this level per node
	// (N_l in the paper, expressed per node).
	CountPerNode int
	// CapacityWords is the capacity S_l of one storage unit, in words.
	CapacityWords int64
	// BandwidthWordsPerSec is the total bandwidth B_l between one unit of
	// this level and all its children at level l−1, in words per second.
	// Zero means "not specified"; balance queries on such a level fail.
	BandwidthWordsPerSec float64
}

// Machine describes a distributed-memory parallel machine.
type Machine struct {
	// Name identifies the machine in reports.
	Name string
	// Nodes is the number of nodes N_nodes.
	Nodes int
	// CoresPerNode is the number of cores sharing a node's hierarchy.
	CoresPerNode int
	// FlopsPerCore is the peak floating-point throughput of one core, in
	// FLOP/s.
	FlopsPerCore float64
	// Levels is the per-node storage hierarchy ordered from level 1
	// (innermost) to level L−1; the final, implicit level L is the node main
	// memory described by MainMemoryWords.
	Levels []Level
	// MainMemoryWords is the capacity of one node's main memory, in words.
	MainMemoryWords int64
	// MainMemoryBandwidth is the bandwidth between a node's main memory and
	// the outermost cache level, in words per second.
	MainMemoryBandwidth float64
	// NetworkBandwidthWordsPerSec is the interconnect bandwidth available to
	// one node, in words per second.
	NetworkBandwidthWordsPerSec float64

	// VerticalBalanceOverride and HorizontalBalanceOverride, when positive,
	// take precedence over the values derived from bandwidths.  They allow
	// encoding machines for which the paper reports balance parameters
	// directly (Table 1) without publishing the underlying bandwidths.
	VerticalBalanceOverride   float64
	HorizontalBalanceOverride float64
}

// TotalCores returns the total number of cores P = Nodes × CoresPerNode.
func (m Machine) TotalCores() int { return m.Nodes * m.CoresPerNode }

// NodePeakFlops returns the peak floating-point throughput of one node.
func (m Machine) NodePeakFlops() float64 {
	return float64(m.CoresPerNode) * m.FlopsPerCore
}

// PeakFlops returns the aggregate peak floating-point throughput.
func (m Machine) PeakFlops() float64 {
	return float64(m.Nodes) * m.NodePeakFlops()
}

// VerticalBalance returns the machine-balance parameter for the data movement
// between the node main memory and the outermost cache (words/FLOP):
// B_vert / (N_cores × F).  This is the quantity on the right-hand side of
// Equation (9) in the paper.
func (m Machine) VerticalBalance() (float64, error) {
	if m.VerticalBalanceOverride > 0 {
		return m.VerticalBalanceOverride, nil
	}
	if m.MainMemoryBandwidth <= 0 {
		return 0, fmt.Errorf("machine %q: main-memory bandwidth not specified", m.Name)
	}
	return m.MainMemoryBandwidth / m.NodePeakFlops(), nil
}

// HorizontalBalance returns the machine-balance parameter for inter-node
// communication (words/FLOP): B_horiz / (N_cores × F), the right-hand side of
// Equation (10).
func (m Machine) HorizontalBalance() (float64, error) {
	if m.HorizontalBalanceOverride > 0 {
		return m.HorizontalBalanceOverride, nil
	}
	if m.NetworkBandwidthWordsPerSec <= 0 {
		return 0, fmt.Errorf("machine %q: network bandwidth not specified", m.Name)
	}
	return m.NetworkBandwidthWordsPerSec / m.NodePeakFlops(), nil
}

// LevelBalance returns the balance parameter B_l / (|P_l| × F) for the data
// movement between hierarchy level index l (0-based into Levels) and its
// children, where |P_l| is the number of cores served by one unit of that
// level.
func (m Machine) LevelBalance(l int) (float64, error) {
	if l < 0 || l >= len(m.Levels) {
		return 0, fmt.Errorf("machine %q: level %d out of range [0,%d)", m.Name, l, len(m.Levels))
	}
	lev := m.Levels[l]
	if lev.BandwidthWordsPerSec <= 0 {
		return 0, fmt.Errorf("machine %q: level %q bandwidth not specified", m.Name, lev.Name)
	}
	if lev.CountPerNode <= 0 {
		return 0, fmt.Errorf("machine %q: level %q has no units", m.Name, lev.Name)
	}
	coresPerUnit := float64(m.CoresPerNode) / float64(lev.CountPerNode)
	return lev.BandwidthWordsPerSec / (coresPerUnit * m.FlopsPerCore), nil
}

// Validate checks that the machine description is internally consistent.
func (m Machine) Validate() error {
	var problems []string
	if m.Nodes <= 0 {
		problems = append(problems, "Nodes must be positive")
	}
	if m.CoresPerNode <= 0 {
		problems = append(problems, "CoresPerNode must be positive")
	}
	if m.FlopsPerCore <= 0 {
		problems = append(problems, "FlopsPerCore must be positive")
	}
	if m.MainMemoryWords <= 0 {
		problems = append(problems, "MainMemoryWords must be positive")
	}
	for i, lev := range m.Levels {
		if lev.CapacityWords <= 0 {
			problems = append(problems, fmt.Sprintf("level %d (%s) capacity must be positive", i, lev.Name))
		}
		if lev.CountPerNode <= 0 {
			problems = append(problems, fmt.Sprintf("level %d (%s) count must be positive", i, lev.Name))
		}
		if i > 0 && lev.CapacityWords < m.Levels[i-1].CapacityWords {
			problems = append(problems, fmt.Sprintf("level %d (%s) smaller than level %d", i, lev.Name, i-1))
		}
		if i > 0 && lev.CountPerNode > m.Levels[i-1].CountPerNode {
			problems = append(problems, fmt.Sprintf("level %d (%s) has more units than level %d", i, lev.Name, i-1))
		}
	}
	if len(problems) > 0 {
		return fmt.Errorf("machine %q invalid: %s", m.Name, strings.Join(problems, "; "))
	}
	return nil
}

// CacheCapacityWords returns the capacity of one unit of the outermost cache
// level (the "L2/L3 cache" column of Table 1), or the main memory if there
// are no cache levels.
func (m Machine) CacheCapacityWords() int64 {
	if len(m.Levels) == 0 {
		return m.MainMemoryWords
	}
	return m.Levels[len(m.Levels)-1].CapacityWords
}

// String summarizes the machine.
func (m Machine) String() string {
	vb, _ := m.VerticalBalance()
	hb, _ := m.HorizontalBalance()
	return fmt.Sprintf("%s: %d nodes × %d cores, %.3g GFLOP/s/node, vertical balance %.4g w/F, horizontal balance %.4g w/F",
		m.Name, m.Nodes, m.CoresPerNode, m.NodePeakFlops()/1e9, vb, hb)
}
