package machine

import "fmt"

// Words-per-byte conversion for the 8-byte double-precision words used
// throughout the paper's analysis.
const bytesPerWord = 8

// MegaWords converts a capacity in MBytes to words.
func MegaWords(mbytes float64) int64 { return int64(mbytes * 1e6 / bytesPerWord) }

// GigaWords converts a capacity in GBytes to words.
func GigaWords(gbytes float64) int64 { return int64(gbytes * 1e9 / bytesPerWord) }

// IBMBGQ returns the IBM Blue Gene/Q configuration of Table 1: 2048 nodes,
// 16 GB of memory and 32 MB of L2 cache per node, with a vertical balance of
// 0.052 words/FLOP and a horizontal balance of 0.049 words/FLOP.
//
// Per node, BG/Q has 16 compute cores at 12.8 GFLOP/s each (204.8 GFLOP/s per
// node); the balance overrides carry the exact values the paper tabulates.
func IBMBGQ() Machine {
	return Machine{
		Name:         "IBM BG/Q",
		Nodes:        2048,
		CoresPerNode: 16,
		FlopsPerCore: 12.8e9,
		Levels: []Level{
			{Name: "L1", CountPerNode: 16, CapacityWords: MegaWords(0.016)},
			{Name: "L2", CountPerNode: 1, CapacityWords: MegaWords(32)},
		},
		MainMemoryWords:           GigaWords(16),
		VerticalBalanceOverride:   0.052,
		HorizontalBalanceOverride: 0.049,
	}
}

// CrayXT5 returns the Cray XT5 configuration of Table 1: 9408 nodes, 16 GB of
// memory and 6 MB of L2/L3 cache per node, with a vertical balance of 0.0256
// words/FLOP and a horizontal balance of 0.058 words/FLOP.
func CrayXT5() Machine {
	return Machine{
		Name:         "Cray XT5",
		Nodes:        9408,
		CoresPerNode: 12,
		FlopsPerCore: 10.4e9,
		Levels: []Level{
			{Name: "L1", CountPerNode: 12, CapacityWords: MegaWords(0.064)},
			{Name: "L2/L3", CountPerNode: 1, CapacityWords: MegaWords(6)},
		},
		MainMemoryWords:           GigaWords(16),
		VerticalBalanceOverride:   0.0256,
		HorizontalBalanceOverride: 0.058,
	}
}

// Table1 returns the machines of Table 1 in the order the paper lists them.
func Table1() []Machine {
	return []Machine{IBMBGQ(), CrayXT5()}
}

// Generic returns a parameterized machine useful for what-if analyses and
// tests: nodes × coresPerNode cores at flopsPerCore FLOP/s, one shared cache
// of cacheWords words per node backed by main memory, with the given
// vertical (memory) and horizontal (network) bandwidths in words/s.
func Generic(name string, nodes, coresPerNode int, flopsPerCore float64,
	cacheWords, memWords int64, memBW, netBW float64) Machine {
	return Machine{
		Name:         name,
		Nodes:        nodes,
		CoresPerNode: coresPerNode,
		FlopsPerCore: flopsPerCore,
		Levels: []Level{
			{Name: "cache", CountPerNode: 1, CapacityWords: cacheWords, BandwidthWordsPerSec: memBW},
		},
		MainMemoryWords:             memWords,
		MainMemoryBandwidth:         memBW,
		NetworkBandwidthWordsPerSec: netBW,
	}
}

// Lookup returns a catalog machine by (case-sensitive) name.
func Lookup(name string) (Machine, error) {
	for _, m := range Table1() {
		if m.Name == name {
			return m, nil
		}
	}
	return Machine{}, fmt.Errorf("machine: unknown machine %q (known: %q, %q)", name, IBMBGQ().Name, CrayXT5().Name)
}
