package machine

import (
	"fmt"
	"sort"
	"strings"
)

// Words-per-byte conversion for the 8-byte double-precision words used
// throughout the paper's analysis.
const bytesPerWord = 8

// MegaWords converts a capacity in MBytes to words.
func MegaWords(mbytes float64) int64 { return int64(mbytes * 1e6 / bytesPerWord) }

// GigaWords converts a capacity in GBytes to words.
func GigaWords(gbytes float64) int64 { return int64(gbytes * 1e9 / bytesPerWord) }

// catalog is the machine data table: every machine the library knows by name,
// in the order Table 1 of the paper lists them.  Experiment specs and CLIs
// reference these rows through Lookup, so the balance parameters live in
// exactly one place instead of per-benchmark constants.
var catalog = []Machine{
	{
		// IBM Blue Gene/Q, Table 1 row 1: 2048 nodes, 16 GB of memory and
		// 32 MB of L2 cache per node.  Per node, BG/Q has 16 compute cores at
		// 12.8 GFLOP/s each (204.8 GFLOP/s per node); the balance overrides
		// carry the exact words/FLOP values the paper tabulates.
		Name:         "IBM BG/Q",
		Nodes:        2048,
		CoresPerNode: 16,
		FlopsPerCore: 12.8e9,
		Levels: []Level{
			{Name: "L1", CountPerNode: 16, CapacityWords: MegaWords(0.016)},
			{Name: "L2", CountPerNode: 1, CapacityWords: MegaWords(32)},
		},
		MainMemoryWords:           GigaWords(16),
		VerticalBalanceOverride:   0.052,
		HorizontalBalanceOverride: 0.049,
	},
	{
		// Cray XT5, Table 1 row 2: 9408 nodes, 16 GB of memory and 6 MB of
		// L2/L3 cache per node, 12 cores at 10.4 GFLOP/s each.
		Name:         "Cray XT5",
		Nodes:        9408,
		CoresPerNode: 12,
		FlopsPerCore: 10.4e9,
		Levels: []Level{
			{Name: "L1", CountPerNode: 12, CapacityWords: MegaWords(0.064)},
			{Name: "L2/L3", CountPerNode: 1, CapacityWords: MegaWords(6)},
		},
		MainMemoryWords:           GigaWords(16),
		VerticalBalanceOverride:   0.0256,
		HorizontalBalanceOverride: 0.058,
	},
}

// aliases maps lower-cased shorthand names onto canonical catalog names, so
// specs can say "bgq" instead of "IBM BG/Q".
var aliases = map[string]string{
	"bgq":        "IBM BG/Q",
	"bg/q":       "IBM BG/Q",
	"bluegene/q": "IBM BG/Q",
	"xt5":        "Cray XT5",
}

// clone returns a deep copy of m so catalog rows handed out by accessors
// cannot be mutated through the shared Levels backing array.
func clone(m Machine) Machine {
	m.Levels = append([]Level(nil), m.Levels...)
	return m
}

// Catalog returns a copy of the full machine data table in Table 1 order.
func Catalog() []Machine {
	out := make([]Machine, len(catalog))
	for i, m := range catalog {
		out[i] = clone(m)
	}
	return out
}

// Names returns every name Lookup accepts — canonical catalog names in table
// order followed by the sorted aliases.
func Names() []string {
	out := make([]string, 0, len(catalog)+len(aliases))
	for _, m := range catalog {
		out = append(out, m.Name)
	}
	short := make([]string, 0, len(aliases))
	for a := range aliases {
		short = append(short, a)
	}
	sort.Strings(short)
	return append(out, short...)
}

// Lookup returns a catalog machine by name: exact match first, then
// case-insensitive, then the alias table ("bgq", "xt5", ...).
func Lookup(name string) (Machine, error) {
	for _, m := range catalog {
		if m.Name == name {
			return clone(m), nil
		}
	}
	folded := strings.ToLower(strings.TrimSpace(name))
	for _, m := range catalog {
		if strings.ToLower(m.Name) == folded {
			return clone(m), nil
		}
	}
	if canonical, ok := aliases[folded]; ok {
		return Lookup(canonical)
	}
	return Machine{}, fmt.Errorf("machine: unknown machine %q (known: %s)",
		name, strings.Join(Names(), ", "))
}

// IBMBGQ returns the IBM Blue Gene/Q configuration of Table 1.
func IBMBGQ() Machine { m, _ := Lookup("IBM BG/Q"); return m }

// CrayXT5 returns the Cray XT5 configuration of Table 1.
func CrayXT5() Machine { m, _ := Lookup("Cray XT5"); return m }

// Table1 returns the machines of Table 1 in the order the paper lists them.
func Table1() []Machine { return Catalog() }

// Generic returns a parameterized machine useful for what-if analyses and
// tests: nodes × coresPerNode cores at flopsPerCore FLOP/s, one shared cache
// of cacheWords words per node backed by main memory, with the given
// vertical (memory) and horizontal (network) bandwidths in words/s.
func Generic(name string, nodes, coresPerNode int, flopsPerCore float64,
	cacheWords, memWords int64, memBW, netBW float64) Machine {
	return Machine{
		Name:         name,
		Nodes:        nodes,
		CoresPerNode: coresPerNode,
		FlopsPerCore: flopsPerCore,
		Levels: []Level{
			{Name: "cache", CountPerNode: 1, CapacityWords: cacheWords, BandwidthWordsPerSec: memBW},
		},
		MainMemoryWords:             memWords,
		MainMemoryBandwidth:         memBW,
		NetworkBandwidthWordsPerSec: netBW,
	}
}
