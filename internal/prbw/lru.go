package prbw

import "cdagio/internal/iheap"

// evictHeap is the indexed per-storage-unit victim heap of the schedule
// player.  The implementation lives in the shared package iheap (it is also
// the model for the memsim cache heaps); see iheap.EvictHeap for the victim
// ordering contract: dead values first, then least recently touched, ties by
// smallest vertex ID.
type evictHeap = iheap.EvictHeap
