package prbw

import "cdagio/internal/cdag"

// evictHeap is an indexed min-heap over the values resident in one storage
// unit, ordered by the eviction preference of the schedule player: dead values
// first (values whose loss costs nothing — a copy exists elsewhere, a blue
// pebble backs them, or no later compute step needs them), then the least
// recently touched, with ties broken by smallest vertex ID.  This is exactly
// the victim order the map-based reference player computes by scanning the
// whole unit; the heap delivers it in O(log capacity) per operation.
//
// Deadness is shared state owned by the player (one flag per vertex, the same
// for every unit holding the vertex) and passed into every operation; the
// player re-sifts the affected entries whenever a flag flips.
type evictHeap struct {
	verts []cdag.VertexID
	touch []int64
	// pos[v] is the heap position of v, or -1 when absent.  Allocated lazily
	// on the unit's first placement, so untouched units of large topologies
	// cost nothing.
	pos []int32
	n   int
}

func (h *evictHeap) init(n int) { h.n = n }

func (h *evictHeap) size() int { return len(h.verts) }

func (h *evictHeap) contains(v cdag.VertexID) bool {
	return h.pos != nil && h.pos[v] >= 0
}

func (h *evictHeap) ensurePos() {
	if h.pos == nil {
		h.pos = make([]int32, h.n)
		for i := range h.pos {
			h.pos[i] = -1
		}
	}
}

// less orders entries by (dead first, oldest touch, smallest vertex).
func (h *evictHeap) less(i, j int, dead []bool) bool {
	vi, vj := h.verts[i], h.verts[j]
	if dead[vi] != dead[vj] {
		return dead[vi]
	}
	if h.touch[i] != h.touch[j] {
		return h.touch[i] < h.touch[j]
	}
	return vi < vj
}

func (h *evictHeap) swap(i, j int) {
	h.verts[i], h.verts[j] = h.verts[j], h.verts[i]
	h.touch[i], h.touch[j] = h.touch[j], h.touch[i]
	h.pos[h.verts[i]] = int32(i)
	h.pos[h.verts[j]] = int32(j)
}

func (h *evictHeap) siftUp(i int, dead []bool) int {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent, dead) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
	return i
}

func (h *evictHeap) siftDown(i int, dead []bool) {
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(h.verts) && h.less(l, smallest, dead) {
			smallest = l
		}
		if r < len(h.verts) && h.less(r, smallest, dead) {
			smallest = r
		}
		if smallest == i {
			return
		}
		h.swap(i, smallest)
		i = smallest
	}
}

// update records a touch of v at the given clock, inserting it if absent.
func (h *evictHeap) update(v cdag.VertexID, clock int64, dead []bool) {
	h.ensurePos()
	if i := h.pos[v]; i >= 0 {
		h.touch[i] = clock
		h.siftDown(int(h.siftUp(int(i), dead)), dead)
		return
	}
	h.verts = append(h.verts, v)
	h.touch = append(h.touch, clock)
	h.pos[v] = int32(len(h.verts) - 1)
	h.siftUp(len(h.verts)-1, dead)
}

// remove deletes v from the heap; it is a no-op when v is absent.
func (h *evictHeap) remove(v cdag.VertexID, dead []bool) {
	if h.pos == nil || h.pos[v] < 0 {
		return
	}
	i := int(h.pos[v])
	last := len(h.verts) - 1
	if i != last {
		h.swap(i, last)
	}
	h.verts = h.verts[:last]
	h.touch = h.touch[:last]
	h.pos[v] = -1
	if i < last {
		h.siftDown(h.siftUp(i, dead), dead)
	}
}

// fix restores the heap order around v after its dead flag flipped; it is a
// no-op when v is absent.
func (h *evictHeap) fix(v cdag.VertexID, dead []bool) {
	if h.pos == nil || h.pos[v] < 0 {
		return
	}
	h.siftDown(h.siftUp(int(h.pos[v]), dead), dead)
}

// peekMin returns the current victim-preference minimum without removing it.
func (h *evictHeap) peekMin() (cdag.VertexID, bool) {
	if len(h.verts) == 0 {
		return cdag.InvalidVertex, false
	}
	return h.verts[0], true
}

// popMin removes and returns the minimum entry together with its touch clock.
func (h *evictHeap) popMin(dead []bool) (cdag.VertexID, int64) {
	v, t := h.verts[0], h.touch[0]
	h.remove(v, dead)
	return v, t
}
