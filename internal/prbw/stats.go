package prbw

import (
	"fmt"
	"strings"
)

// Stats summarizes the data movement of a (partial or complete) P-RBW game.
type Stats struct {
	Topology Topology

	// MoveUpsInto[l-1][u] counts R4 placements into unit u of level l: values
	// brought toward the processors across the l/(l+1) boundary.
	MoveUpsInto [][]int64
	// MoveDownsInto[l-1][u] counts R5 placements into unit u of level l:
	// values pushed away from the processors across the (l−1)/l boundary.
	MoveDownsInto [][]int64
	// InputsAt, OutputsAt and RemoteGetsAt are per-node counts of R1, R2 and
	// R3 moves.
	InputsAt     []int64
	OutputsAt    []int64
	RemoteGetsAt []int64
	// ComputesBy is the per-processor count of R6 moves.
	ComputesBy []int64
}

// Snapshot returns a copy of the game's counters.
func (game *Game) Snapshot() *Stats {
	s := &Stats{Topology: game.topo}
	s.MoveUpsInto = copy2D(game.moveUpsInto)
	s.MoveDownsInto = copy2D(game.moveDownsInto)
	s.InputsAt = append([]int64(nil), game.inputsAt...)
	s.OutputsAt = append([]int64(nil), game.outputsAt...)
	s.RemoteGetsAt = append([]int64(nil), game.remoteGetsAt...)
	s.ComputesBy = append([]int64(nil), game.computesBy...)
	return s
}

func copy2D(in [][]int64) [][]int64 {
	out := make([][]int64, len(in))
	for i := range in {
		out[i] = append([]int64(nil), in[i]...)
	}
	return out
}

// VerticalTraffic returns the total number of pebble placements crossing the
// boundary between level l and level l+1 (1 ≤ l < L): R4 moves into level-l
// units plus R5 moves into level-(l+1) units.  This is the quantity the
// vertical lower bounds of Theorems 5 and 6 constrain.
func (s *Stats) VerticalTraffic(l int) int64 {
	if l < 1 || l >= s.Topology.NumLevels() {
		return 0
	}
	var total int64
	for _, c := range s.MoveUpsInto[l-1] {
		total += c
	}
	for _, c := range s.MoveDownsInto[l] {
		total += c
	}
	return total
}

// MaxUnitVerticalTraffic returns the largest per-unit traffic across the
// boundary between level l+1 and its children: for each level-(l+1) unit, the
// R5 moves into it plus the R4 moves into all of its children.
func (s *Stats) MaxUnitVerticalTraffic(l int) int64 {
	if l < 1 || l >= s.Topology.NumLevels() {
		return 0
	}
	upper := l + 1
	perUnit := make([]int64, s.Topology.Units(upper))
	for u, c := range s.MoveDownsInto[upper-1] {
		perUnit[u] += c
	}
	for child, c := range s.MoveUpsInto[l-1] {
		perUnit[s.Topology.Parent(l, child)] += c
	}
	var max int64
	for _, c := range perUnit {
		if c > max {
			max = c
		}
	}
	return max
}

// HorizontalTraffic returns the total number of remote-get (R3) moves.
func (s *Stats) HorizontalTraffic() int64 {
	var total int64
	for _, c := range s.RemoteGetsAt {
		total += c
	}
	return total
}

// MaxNodeHorizontalTraffic returns the largest per-node remote-get count.
func (s *Stats) MaxNodeHorizontalTraffic() int64 {
	var max int64
	for _, c := range s.RemoteGetsAt {
		if c > max {
			max = c
		}
	}
	return max
}

// BlueTraffic returns the total number of R1 and R2 moves (transfers between
// the unbounded backing store and the node memories).
func (s *Stats) BlueTraffic() int64 {
	var total int64
	for _, c := range s.InputsAt {
		total += c
	}
	for _, c := range s.OutputsAt {
		total += c
	}
	return total
}

// TotalComputes returns the total number of R6 moves.
func (s *Stats) TotalComputes() int64 {
	var total int64
	for _, c := range s.ComputesBy {
		total += c
	}
	return total
}

// MaxProcessorComputes returns the largest per-processor compute count (the
// load imbalance indicator used by Theorem 7's "group performing the maximum
// number of computations").
func (s *Stats) MaxProcessorComputes() int64 {
	var max int64
	for _, c := range s.ComputesBy {
		if c > max {
			max = c
		}
	}
	return max
}

// String renders a multi-line summary of the statistics.
func (s *Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "P-RBW data movement (%d levels, %d procs, %d nodes)\n",
		s.Topology.NumLevels(), s.Topology.Processors(), s.Topology.Nodes())
	for l := 1; l < s.Topology.NumLevels(); l++ {
		fmt.Fprintf(&b, "  %s <-> %s traffic: %d (max per %s unit: %d)\n",
			s.Topology.Levels[l-1].Name, s.Topology.Levels[l].Name,
			s.VerticalTraffic(l), s.Topology.Levels[l].Name, s.MaxUnitVerticalTraffic(l))
	}
	fmt.Fprintf(&b, "  inter-node (remote gets): %d (max per node: %d)\n",
		s.HorizontalTraffic(), s.MaxNodeHorizontalTraffic())
	fmt.Fprintf(&b, "  backing-store transfers: %d\n", s.BlueTraffic())
	fmt.Fprintf(&b, "  computes: %d (max per processor: %d)\n",
		s.TotalComputes(), s.MaxProcessorComputes())
	return b.String()
}
