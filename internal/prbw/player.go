package prbw

import (
	"context"
	"fmt"
	"runtime/debug"

	"cdagio/internal/cdag"
	"cdagio/internal/fault"
)

// Assignment describes a parallel execution of a CDAG: a single global
// sequence of compute steps (the pebble game is sequential; parallelism only
// determines which processor, and therefore which storage path, each step
// uses) together with the processor that executes each step.
type Assignment struct {
	Order []cdag.VertexID
	Proc  []int
}

// RoundRobin builds a block-cyclic assignment: the non-input vertices of the
// topological order of g are dealt to the p processors in contiguous blocks
// of the given grain, wrapping around after processor p−1.  Despite the name
// the distribution is only vertex-by-vertex round-robin for grain 1; grain ≤ 0
// selects one contiguous block per processor (an even block distribution).
func RoundRobin(g *cdag.Graph, p, grain int) Assignment {
	order := make([]cdag.VertexID, 0, g.NumOperations())
	for _, v := range g.MustTopoOrder() {
		if !g.IsInput(v) {
			order = append(order, v)
		}
	}
	if grain <= 0 {
		grain = (len(order) + p - 1) / p
		if grain == 0 {
			grain = 1
		}
	}
	procs := make([]int, len(order))
	for i := range order {
		procs[i] = (i / grain) % p
	}
	return Assignment{Order: order, Proc: procs}
}

// SingleProcessor builds an assignment that runs the whole topological order
// on processor 0.
func SingleProcessor(g *cdag.Graph) Assignment {
	return RoundRobin(g, 1, 0)
}

// OwnerCompute builds an assignment from an explicit vertex→processor map and
// the topological order of g.  Vertices mapped to a negative processor are
// assigned to processor 0.
func OwnerCompute(g *cdag.Graph, owner []int) Assignment {
	order := make([]cdag.VertexID, 0, g.NumOperations())
	procs := make([]int, 0, g.NumOperations())
	for _, v := range g.MustTopoOrder() {
		if g.IsInput(v) {
			continue
		}
		order = append(order, v)
		p := 0
		if int(v) < len(owner) && owner[v] >= 0 {
			p = owner[v]
		}
		procs = append(procs, p)
	}
	return Assignment{Order: order, Proc: procs}
}

// PlayError reports why a distributed schedule could not be executed.
type PlayError struct{ Reason string }

func (e *PlayError) Error() string { return "prbw: " + e.Reason }

// validateAssignment checks that the assignment schedules every non-input
// vertex exactly once in dependence order on a valid processor, and that the
// register capacity can hold any vertex together with its predecessors.  It
// sweeps every predecessor row, so it reads the hoisted CSR arrays directly.
func validateAssignment(g *cdag.Graph, topo Topology, asg Assignment) error {
	n := g.NumVertices()
	predOff, predVal := g.PredecessorCSR()
	position := make([]int, n)
	for i := range position {
		position[i] = -1
	}
	for i, v := range asg.Order {
		if !g.ValidVertex(v) {
			return &PlayError{Reason: fmt.Sprintf("vertex %d out of range", v)}
		}
		if g.IsInput(v) {
			return &PlayError{Reason: fmt.Sprintf("input vertex %d scheduled", v)}
		}
		if position[v] >= 0 {
			return &PlayError{Reason: fmt.Sprintf("vertex %d scheduled twice", v)}
		}
		if asg.Proc[i] < 0 || asg.Proc[i] >= topo.Processors() {
			return &PlayError{Reason: fmt.Sprintf("processor %d out of range", asg.Proc[i])}
		}
		position[v] = i
	}
	for v := 0; v < n; v++ {
		id := cdag.VertexID(v)
		if g.IsInput(id) {
			continue
		}
		if position[v] < 0 {
			return &PlayError{Reason: fmt.Sprintf("vertex %d missing from schedule", v)}
		}
		if indeg := int(predOff[v+1] - predOff[v]); indeg+1 > topo.Capacity(1) {
			return &PlayError{Reason: fmt.Sprintf("register capacity %d too small for in-degree %d of vertex %d",
				topo.Capacity(1), indeg, v)}
		}
		for _, p := range predVal[predOff[v]:predOff[v+1]] {
			if !g.IsInput(p) && position[p] > position[v] {
				return &PlayError{Reason: fmt.Sprintf("vertex %d scheduled before predecessor %d", v, p)}
			}
		}
	}
	return nil
}

// pinSet is an allocation-free membership set of vertices protected from
// eviction: an epoch-stamped scratch array shared by all sets of the current
// compute step, plus at most one extra vertex (the value being fetched).  The
// zero value is unusable; build instances with the player helpers.
type pinSet struct {
	stamps []int32
	epoch  int32
	extra  cdag.VertexID
}

func (p pinSet) has(v cdag.VertexID) bool {
	return v == p.extra || (p.stamps != nil && p.stamps[v] == p.epoch)
}

// noPins returns the empty pin set.
func noPins() pinSet { return pinSet{extra: cdag.InvalidVertex} }

// player carries the bookkeeping of one Play run.  Unlike the reference
// player it keeps no per-unit maps and allocates nothing per compute step:
// recency and deadness live in dense per-vertex arrays and per-unit indexed
// heaps, and pinned sets are epoch stamps.
type player struct {
	game *Game
	g    *cdag.Graph
	topo Topology
	asg  Assignment

	pos   int   // current schedule position
	clock int64 // compute steps executed so far; the touch timestamp

	// lastUseAt[v] is the last schedule position consuming v (−1 when none);
	// noMoreUses[v] flips exactly when the schedule passes that position,
	// mirroring the reference player's nextUse(pos) comparison.
	lastUseAt  []int32
	noMoreUses []bool
	// dead[v] caches whether losing one copy of v costs nothing: a copy
	// exists elsewhere, a blue pebble backs it, or no later step needs it.
	// It is the per-vertex predicate the eviction heaps order by, refreshed
	// incrementally after every game move that can flip it.
	dead []bool
	// heapDead[v] is the deadness the eviction heaps are currently ordered
	// by.  Truth (dead) and heap view (heapDead) may diverge between game
	// moves: refreshDead only records flipped vertices in pending, and
	// flushPending re-sifts them — one vertex at a time, so each Fix repairs
	// a single stale key — right before the next victim choice, the only
	// point where heap order is consulted.  Batching the fix-ups this way
	// collapses the repeated flip/unflip churn of multi-eviction steps into
	// at most one Fix per vertex per victim choice without changing any
	// chosen victim: every PeekMin/PopMin still runs with heapDead == dead.
	heapDead    []bool
	pending     []cdag.VertexID
	pendingMark []bool

	units    []evictHeap // per storage unit, indexed unitBase[level-1]+unit
	unitBase []int

	pinStamp []int32
	pinEpoch int32

	stashV []cdag.VertexID // chooseVictim scratch for skipping pinned entries
	stashT []int64
}

// Play executes the assignment on g over the topology and returns the
// resulting data-movement statistics of a complete legal P-RBW game.  The
// assignment must schedule every non-input vertex exactly once in dependence
// order, and the register capacity must exceed the largest in-degree.
//
// Play produces statistics identical to PlayReference — the eviction order is
// the same (dead values first, then least recently touched, ties by vertex
// ID) — but chooses each victim in O(log capacity) instead of scanning the
// unit, and performs no per-step allocations.
func Play(g *cdag.Graph, topo Topology, asg Assignment) (*Stats, error) {
	// context.Background() is never cancelled, so PlayCtx degenerates to the
	// historical behavior.
	//cdaglint:allow ctxflow deprecated no-ctx entry point; documented as a never-cancelled run
	return PlayCtx(context.Background(), g, topo, asg)
}

// PlayCtx is Play under a context: the schedule loop checks ctx every 4096
// compute steps (individual game moves stay atomic) and returns ctx.Err()
// promptly once the context is cancelled.  Under a never-cancelled context
// the game — every move, every statistic — is bit-identical to Play.
//
// The whole play runs under a recover wrapper: a panic inside the player (or
// injected at the fault.PointPRBWPlay point) is returned as a
// *fault.PanicError instead of crashing the caller's process.
func PlayCtx(ctx context.Context, g *cdag.Graph, topo Topology, asg Assignment) (stats *Stats, err error) {
	defer func() {
		if r := recover(); r != nil {
			if pe, ok := r.(*fault.PanicError); ok {
				stats, err = nil, pe
				return
			}
			stats, err = nil, &fault.PanicError{Label: fault.PointPRBWPlay, Value: r, Stack: debug.Stack()}
		}
	}()
	fault.Inject(fault.PointPRBWPlay)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := topo.Validate(); err != nil {
		return nil, err
	}
	if len(asg.Order) != len(asg.Proc) {
		return nil, &PlayError{Reason: "assignment order and processor slices differ in length"}
	}
	if err := validateAssignment(g, topo, asg); err != nil {
		return nil, err
	}

	game, err := NewGame(g, topo)
	if err != nil {
		return nil, err
	}
	n := g.NumVertices()
	// Hoist the predecessor CSR once: the schedule loop below replays each
	// scheduled vertex's row three times per step, and the rows are identical
	// to g.Pred(v) in content and order.
	predOff, predVal := g.PredecessorCSR()
	pl := &player{game: game, g: g, topo: topo, asg: asg}
	pl.lastUseAt = make([]int32, n)
	for v := range pl.lastUseAt {
		pl.lastUseAt[v] = -1
	}
	for i, v := range asg.Order {
		for _, p := range predVal[predOff[v]:predOff[v+1]] {
			pl.lastUseAt[p] = int32(i)
		}
	}
	pl.noMoreUses = make([]bool, n)
	pl.dead = make([]bool, n)
	pl.heapDead = make([]bool, n)
	pl.pendingMark = make([]bool, n)
	for v := 0; v < n; v++ {
		id := cdag.VertexID(v)
		pl.noMoreUses[v] = pl.lastUseAt[v] < 0
		pl.dead[v] = pl.computeDead(id)
		pl.heapDead[v] = pl.dead[v]
	}
	total := 0
	pl.unitBase = make([]int, topo.NumLevels())
	for l := 0; l < topo.NumLevels(); l++ {
		pl.unitBase[l] = total
		total += topo.Units(l + 1)
	}
	pl.units = make([]evictHeap, total)
	for i := range pl.units {
		pl.units[i].Init(n)
	}
	pl.pinStamp = make([]int32, n)

	// Execute the schedule.
	for i, v := range asg.Order {
		if i&4095 == 0 {
			fault.Inject(fault.PointPRBWPlay)
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		pl.pos = i
		proc := asg.Proc[i]
		// One row slice serves every predecessor pass of this step.
		preds := predVal[predOff[v]:predOff[v+1]]
		// Values consumed for the last time by this step stop mattering now
		// (the reference player's nextUse skips uses at the current position).
		for _, p := range preds {
			if pl.lastUseAt[p] == int32(i) && !pl.noMoreUses[p] {
				pl.noMoreUses[p] = true
				pl.refreshDead(p)
			}
		}
		pins := pl.newStepPins(preds)
		for _, p := range preds {
			if err := pl.fetchToRegisters(p, proc, pins); err != nil {
				return nil, err
			}
		}
		regs := Loc{Level: 1, Unit: proc}
		if err := pl.ensureCapacity(regs, pins); err != nil {
			return nil, err
		}
		if err := game.Compute(proc, v); err != nil {
			return nil, err
		}
		pl.touch(regs, v)
		pl.refreshDead(v)
		pl.clock++
		// Free dead values in the register file immediately (no data movement).
		for _, p := range preds {
			pl.dropIfDead(regs, p)
		}
		pl.dropIfDead(regs, v)
	}

	// Make outputs durable (blue) and touch never-used inputs so the RBW
	// completion condition (white everywhere) holds.
	if err := pl.finalize(); err != nil {
		return nil, err
	}
	if !game.IsComplete() {
		return nil, &PlayError{Reason: "game incomplete after schedule: " + game.Incomplete()}
	}
	return game.Snapshot(), nil
}

// newStepPins stamps the predecessors of the current compute step into the
// shared scratch array and returns the pin set over them.
func (pl *player) newStepPins(preds []cdag.VertexID) pinSet {
	pl.pinEpoch++
	for _, p := range preds {
		pl.pinStamp[p] = pl.pinEpoch
	}
	return pinSet{stamps: pl.pinStamp, epoch: pl.pinEpoch, extra: cdag.InvalidVertex}
}

func (pl *player) unit(at Loc) *evictHeap {
	return &pl.units[pl.unitBase[at.Level-1]+at.Unit]
}

func (pl *player) touch(at Loc, v cdag.VertexID) {
	pl.unit(at).Update(v, pl.clock, pl.heapDead)
}

func (pl *player) untouch(at Loc, v cdag.VertexID) {
	pl.unit(at).Remove(v, pl.heapDead)
}

// computeDead evaluates the eviction-deadness predicate from the game state:
// losing one copy of v is free when a blue pebble backs it, another pebble of
// it exists, or no later compute step consumes it and it is not an output
// still awaiting its blue pebble.
func (pl *player) computeDead(v cdag.VertexID) bool {
	if pl.game.HasBlue(v) {
		return true
	}
	if len(pl.game.Locations(v)) > 1 {
		return true
	}
	return pl.noMoreUses[v] && !pl.g.IsOutput(v)
}

// refreshDead re-evaluates the deadness of v and, when it flipped, updates
// the truth array and queues v for a deferred heap fix-up.  It must be called
// after every move that can change the predicate: pebble placements and
// deletions (copy count), blue placements, and last-use transitions.  The
// heaps themselves are repaired lazily by flushPending, so a vertex whose
// deadness flips several times between victim choices (evict chains touch a
// value at every level) costs one queue entry instead of a heap sift per
// flip — and none at all when the flips cancel out.
func (pl *player) refreshDead(v cdag.VertexID) {
	d := pl.computeDead(v)
	if d == pl.dead[v] {
		return
	}
	pl.dead[v] = d
	if !pl.pendingMark[v] {
		pl.pendingMark[v] = true
		pl.pending = append(pl.pending, v)
	}
}

// flushPending reconciles the heaps' deadness view with the truth array,
// re-sifting each flipped vertex in every unit currently holding it.  Flips
// are applied one vertex at a time — heapDead is written immediately before
// the Fix calls for that vertex — so every Fix is a valid single-stale-key
// heap repair and the heaps are exact w.r.t. heapDead throughout.  After the
// flush heapDead equals dead, which is the invariant chooseVictim relies on:
// the (dead, last touch, vertex id) comparator is a strict total order, so
// with equal key arrays the heap minimum is unique and the chosen victims —
// and with them the whole game — are bit-identical to eager fix-ups.
func (pl *player) flushPending() {
	if len(pl.pending) == 0 {
		return
	}
	for _, v := range pl.pending {
		pl.pendingMark[v] = false
		if pl.heapDead[v] == pl.dead[v] {
			continue // flipped an even number of times: nothing to repair
		}
		pl.heapDead[v] = pl.dead[v]
		for _, loc := range pl.game.Locations(v) {
			pl.unit(loc).Fix(v, pl.heapDead)
		}
	}
	pl.pending = pl.pending[:0]
}

// dropIfDead deletes the pebble of v at the unit when its value no longer
// matters or survives elsewhere.
func (pl *player) dropIfDead(at Loc, v cdag.VertexID) {
	if !pl.game.HasPebbleAt(v, at) {
		return
	}
	if !pl.dead[v] {
		return
	}
	if err := pl.game.Delete(at, v); err == nil {
		pl.untouch(at, v)
		pl.refreshDead(v)
	}
}

// ensureCapacity frees pebbles in the unit until a new placement fits,
// evicting least-recently-touched victims and preserving values that would
// otherwise be lost by pushing them one level toward memory (or to the
// backing store at level L).
func (pl *player) ensureCapacity(at Loc, pinned pinSet) error {
	for !pl.game.hasFree(at) {
		victim, err := pl.chooseVictim(at, pinned)
		if err != nil {
			return err
		}
		if err := pl.evict(at, victim, pinned); err != nil {
			return err
		}
	}
	return nil
}

// chooseVictim returns the unit's eviction-preference minimum that is not
// pinned: the heap root in the common case, otherwise the first unpinned
// entry in heap order (pinned entries are popped into a small stash and
// pushed back).
func (pl *player) chooseVictim(at Loc, pinned pinSet) (cdag.VertexID, error) {
	pl.flushPending()
	h := pl.unit(at)
	if v, ok := h.PeekMin(); ok && !pinned.has(v) {
		return v, nil
	}
	stV, stT := pl.stashV[:0], pl.stashT[:0]
	victim := cdag.InvalidVertex
	var victimT int64
	for h.Size() > 0 {
		v, t := h.PopMin(pl.heapDead)
		if pinned.has(v) {
			stV = append(stV, v)
			stT = append(stT, t)
			continue
		}
		victim, victimT = v, t
		break
	}
	if victim != cdag.InvalidVertex {
		h.Update(victim, victimT, pl.heapDead)
	}
	for k := range stV {
		h.Update(stV[k], stT[k], pl.heapDead)
	}
	pl.stashV, pl.stashT = stV, stT
	if victim == cdag.InvalidVertex {
		return cdag.InvalidVertex, &PlayError{
			Reason: fmt.Sprintf("storage unit %v full with pinned values (capacity %d too small)",
				at, pl.topo.Capacity(at.Level))}
	}
	return victim, nil
}

// evict removes v from the unit, first copying it toward memory when it is
// the last live copy of a value that still matters.  The pinned set is
// propagated so that values protected by an in-flight fetch are never
// displaced from the path while making room for the copy.
func (pl *player) evict(at Loc, v cdag.VertexID, pinned pinSet) error {
	if !pl.dead[v] {
		if at.Level == pl.topo.NumLevels() {
			// Push to the backing store.
			if err := pl.game.Output(at.Unit, v); err != nil {
				return err
			}
			pl.refreshDead(v)
		} else {
			parent := Loc{Level: at.Level + 1, Unit: pl.topo.Parent(at.Level, at.Unit)}
			if !pl.game.HasPebbleAt(v, parent) {
				if err := pl.ensureCapacity(parent, pinned); err != nil {
					return err
				}
				if err := pl.game.MoveDown(parent.Level, parent.Unit, v); err != nil {
					return err
				}
				pl.touch(parent, v)
				pl.refreshDead(v)
			}
		}
	}
	if err := pl.game.Delete(at, v); err != nil {
		return err
	}
	pl.untouch(at, v)
	pl.refreshDead(v)
	return nil
}

// fetchToRegisters brings the value of u into the register unit of proc,
// moving it through every level of the processor's storage path and using a
// remote get or backing-store load when no copy exists on the path.  The
// value u itself is protected from eviction while the fetch is in flight, in
// addition to the caller's pinned set (the predecessors already resident in
// the registers).
func (pl *player) fetchToRegisters(u cdag.VertexID, proc int, stepPins pinSet) error {
	L := pl.topo.NumLevels()
	regs := Loc{Level: 1, Unit: proc}
	if pl.game.HasPebbleAt(u, regs) {
		pl.touch(regs, u)
		return nil
	}
	// Protect u along the whole path; at level 1 additionally protect the
	// other already-fetched predecessors.
	protect := pinSet{extra: u}
	level1Pin := pinSet{stamps: stepPins.stamps, epoch: stepPins.epoch, extra: u}

	// Find the lowest level on the path already holding the value.
	found := 0
	for l := 1; l <= L; l++ {
		at := Loc{Level: l, Unit: pl.topo.UnitOnPath(l, proc)}
		if pl.game.HasPebbleAt(u, at) {
			found = l
			break
		}
	}
	if found == 0 {
		node := pl.topo.NodeOf(proc)
		memLoc := Loc{Level: L, Unit: node}
		// Locate (or create) a level-L copy of u somewhere in the machine.
		srcNode := pl.levelLNode(u)
		if srcNode < 0 && !pl.game.HasBlue(u) {
			// The value only lives in caches/registers off the path: push it
			// up to the main memory of the node that holds it.
			if err := pl.raiseToNodeMemory(u, protect); err != nil {
				return err
			}
			srcNode = pl.levelLNode(u)
		}
		if srcNode != node {
			if err := pl.ensureCapacity(memLoc, protect); err != nil {
				return err
			}
			switch {
			case srcNode >= 0:
				if err := pl.game.RemoteGet(node, u); err != nil {
					return err
				}
			case pl.game.HasBlue(u):
				if err := pl.game.Input(node, u); err != nil {
					return err
				}
			default:
				return &PlayError{Reason: fmt.Sprintf("value of vertex %d lost (no pebble, no blue)", u)}
			}
		}
		pl.touch(memLoc, u)
		pl.refreshDead(u)
		found = L
	}
	// Walk the value down the path toward the registers.
	for l := found - 1; l >= 1; l-- {
		at := Loc{Level: l, Unit: pl.topo.UnitOnPath(l, proc)}
		if pl.game.HasPebbleAt(u, at) {
			pl.touch(at, u)
			continue
		}
		pin := protect
		if l == 1 {
			pin = level1Pin
		}
		if err := pl.ensureCapacity(at, pin); err != nil {
			return err
		}
		if err := pl.game.MoveUp(l, at.Unit, u); err != nil {
			return err
		}
		pl.touch(at, u)
		pl.refreshDead(u)
	}
	return nil
}

// levelLNode returns the node whose main memory holds a pebble of u, or −1.
func (pl *player) levelLNode(u cdag.VertexID) int {
	L := pl.topo.NumLevels()
	for _, loc := range pl.game.Locations(u) {
		if loc.Level == L {
			return loc.Unit
		}
	}
	return -1
}

// raiseToNodeMemory pushes some existing pebble of u up to the main memory of
// the node that holds it, so that it can be remote-fetched or walked down the
// requesting processor's path.
func (pl *player) raiseToNodeMemory(u cdag.VertexID, pinned pinSet) error {
	locs := pl.game.Locations(u)
	if len(locs) == 0 {
		return &PlayError{Reason: fmt.Sprintf("value of vertex %d lost (no pebble, no blue)", u)}
	}
	// Pick the highest-level existing pebble to minimize the number of moves.
	best := locs[0]
	for _, l := range locs {
		if l.Level > best.Level {
			best = l
		}
	}
	L := pl.topo.NumLevels()
	cur := best
	for cur.Level < L {
		parent := Loc{Level: cur.Level + 1, Unit: pl.topo.Parent(cur.Level, cur.Unit)}
		if !pl.game.HasPebbleAt(u, parent) {
			if err := pl.ensureCapacity(parent, pinned); err != nil {
				return err
			}
			if err := pl.game.MoveDown(parent.Level, parent.Unit, u); err != nil {
				return err
			}
			pl.touch(parent, u)
			pl.refreshDead(u)
		}
		cur = parent
	}
	return nil
}

// finalize stores outputs to the backing store and touches never-consumed
// inputs so that the completion conditions hold.
func (pl *player) finalize() error {
	pl.pos = len(pl.asg.Order)
	L := pl.topo.NumLevels()
	for _, v := range pl.g.Outputs() {
		if pl.game.HasBlue(v) {
			continue
		}
		if len(pl.game.Locations(v)) == 0 {
			return &PlayError{Reason: fmt.Sprintf("output %d lost before final store", v)}
		}
		if err := pl.raiseToNodeMemory(v, pinSet{extra: v}); err != nil {
			return err
		}
		node := pl.levelLNode(v)
		if node < 0 {
			return &PlayError{Reason: fmt.Sprintf("output %d could not reach node memory", v)}
		}
		if err := pl.game.Output(node, v); err != nil {
			return err
		}
		pl.refreshDead(v)
	}
	for _, v := range pl.g.Inputs() {
		if pl.game.HasWhite(v) {
			continue
		}
		memLoc := Loc{Level: L, Unit: 0}
		if err := pl.ensureCapacity(memLoc, noPins()); err != nil {
			return err
		}
		// The transient load-and-discard never enters the recency heap,
		// mirroring the reference player.
		if err := pl.game.Input(0, v); err != nil {
			return err
		}
		if err := pl.game.Delete(memLoc, v); err != nil {
			return err
		}
	}
	return nil
}
