package prbw

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"cdagio/internal/fault"
	"cdagio/internal/gen"
)

// TestPlayPanicIsIsolated forces a panic inside the P-RBW player and
// requires PlayCtx to return a *fault.PanicError — not crash — and a clean
// re-run to be bit-identical to the uninjected baseline.
func TestPlayPanicIsIsolated(t *testing.T) {
	g := gen.Chain(32)
	topo := TwoLevel(1, 4, 1024)
	asg := SingleProcessor(g)

	want, err := Play(g, topo, asg)
	if err != nil {
		t.Fatalf("baseline play: %v", err)
	}

	restore := fault.SetHook(func(point string) {
		if point == fault.PointPRBWPlay {
			panic("injected play crash")
		}
	})
	_, err = PlayCtx(context.Background(), g, topo, asg)
	restore()
	var pe *fault.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("injected panic surfaced as %v, want *fault.PanicError", err)
	}
	if pe.Label != fault.PointPRBWPlay {
		t.Fatalf("PanicError label %q, want %q", pe.Label, fault.PointPRBWPlay)
	}

	got, err := Play(g, topo, asg)
	if err != nil {
		t.Fatalf("post-crash play: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("post-crash stats differ from baseline")
	}
}
