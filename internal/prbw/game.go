package prbw

import (
	"fmt"

	"cdagio/internal/cdag"
)

// Loc identifies one storage unit: a hierarchy level (1-based, level 1 being
// the registers) and the unit index within that level.
type Loc struct {
	Level int
	Unit  int
}

// String renders the location.
func (l Loc) String() string { return fmt.Sprintf("L%d.%d", l.Level, l.Unit) }

// Game is a rule-checking state machine for the Parallel Red-Blue-White
// pebble game (Definition 6).  All moves are validated; the per-unit counters
// therefore reflect a legal game and can be used directly for data-movement
// accounting.
type Game struct {
	graph *cdag.Graph
	topo  Topology

	// Hoisted predecessor CSR of graph: the R6 rule check runs once per
	// compute step, so it reads the flat row directly instead of calling
	// graph.Pred per move.  Valid because the graph's structure is fixed for
	// the lifetime of a game (NewGame materializes it).
	predOff []int64
	predVal []cdag.VertexID

	// held[v] lists the storage units currently holding a pebble of v.
	held [][]Loc
	// load[level-1][unit] is the number of pebbles currently in that unit.
	load [][]int

	blue  *cdag.VertexSet
	white *cdag.VertexSet

	// Counters, indexed like load.
	moveUpsInto   [][]int64 // R4 placements into a unit (value came from its parent)
	moveDownsInto [][]int64 // R5 placements into a unit (value came from a child)
	inputsAt      []int64   // R1 per node
	outputsAt     []int64   // R2 per node
	remoteGetsAt  []int64   // R3 per destination node
	computesBy    []int64   // R6 per processor
}

// NewGame creates a game on g over the given topology.  Blue pebbles are
// placed on all input-tagged vertices.  The graph's structure must stay
// fixed while the game is played: NewGame compiles and caches its adjacency.
func NewGame(g *cdag.Graph, topo Topology) (*Game, error) {
	if err := topo.Validate(); err != nil {
		return nil, err
	}
	game := &Game{
		graph: g,
		topo:  topo,
		held:  make([][]Loc, g.NumVertices()),
		blue:  cdag.NewVertexSet(g.NumVertices()),
		white: cdag.NewVertexSet(g.NumVertices()),
	}
	game.predOff, game.predVal = g.PredecessorCSR()
	// Carve every vertex's location list out of one backing array: a value
	// rarely holds more than a couple of pebbles at once (its level path is
	// walked with intermediate copies dropped eagerly, plus remote copies on
	// multi-node machines), so this removes the per-vertex allocation on
	// first placement.  Vertices that do exceed the inline capacity fall back
	// to ordinary append growth.
	inline := 2
	if topo.Nodes() > 1 {
		inline = 4
	}
	backing := make([]Loc, inline*g.NumVertices())
	for v := range game.held {
		game.held[v] = backing[inline*v : inline*v : inline*(v+1)]
	}
	game.load = make([][]int, topo.NumLevels())
	game.moveUpsInto = make([][]int64, topo.NumLevels())
	game.moveDownsInto = make([][]int64, topo.NumLevels())
	for l := 0; l < topo.NumLevels(); l++ {
		game.load[l] = make([]int, topo.Levels[l].Units)
		game.moveUpsInto[l] = make([]int64, topo.Levels[l].Units)
		game.moveDownsInto[l] = make([]int64, topo.Levels[l].Units)
	}
	game.inputsAt = make([]int64, topo.Nodes())
	game.outputsAt = make([]int64, topo.Nodes())
	game.remoteGetsAt = make([]int64, topo.Nodes())
	game.computesBy = make([]int64, topo.Processors())
	for _, v := range g.Inputs() {
		game.blue.Add(v)
	}
	return game, nil
}

// Graph returns the CDAG being pebbled.
func (game *Game) Graph() *cdag.Graph { return game.graph }

// Topology returns the storage hierarchy.
func (game *Game) Topology() Topology { return game.topo }

// HasBlue reports whether v holds a blue pebble.
func (game *Game) HasBlue(v cdag.VertexID) bool { return game.blue.Contains(v) }

// HasWhite reports whether v has been fired.
func (game *Game) HasWhite(v cdag.VertexID) bool { return game.white.Contains(v) }

// HasPebbleAt reports whether v holds a pebble in the given unit.
func (game *Game) HasPebbleAt(v cdag.VertexID, at Loc) bool {
	for _, l := range game.held[v] {
		if l == at {
			return true
		}
	}
	return false
}

// Locations returns the storage units currently holding pebbles of v.  The
// slice is owned by the game; callers must not modify it.
func (game *Game) Locations(v cdag.VertexID) []Loc { return game.held[v] }

// UnitLoad returns the number of pebbles currently held by the unit.
func (game *Game) UnitLoad(at Loc) int { return game.load[at.Level-1][at.Unit] }

// RuleError reports a move that violates the P-RBW rules.
type RuleError struct {
	Rule   string
	Reason string
}

func (e *RuleError) Error() string { return fmt.Sprintf("prbw: %s: %s", e.Rule, e.Reason) }

func (game *Game) checkLoc(rule string, at Loc) error {
	if at.Level < 1 || at.Level > game.topo.NumLevels() {
		return &RuleError{Rule: rule, Reason: fmt.Sprintf("level %d out of range", at.Level)}
	}
	if at.Unit < 0 || at.Unit >= game.topo.Units(at.Level) {
		return &RuleError{Rule: rule, Reason: fmt.Sprintf("unit %d out of range at level %d", at.Unit, at.Level)}
	}
	return nil
}

func (game *Game) checkVertex(rule string, v cdag.VertexID) error {
	if !game.graph.ValidVertex(v) {
		return &RuleError{Rule: rule, Reason: fmt.Sprintf("vertex %d out of range", v)}
	}
	return nil
}

func (game *Game) place(v cdag.VertexID, at Loc) {
	game.held[v] = append(game.held[v], at)
	game.load[at.Level-1][at.Unit]++
}

func (game *Game) hasFree(at Loc) bool {
	return game.load[at.Level-1][at.Unit] < game.topo.Capacity(at.Level)
}

// Input applies rule R1: place a level-L pebble of the given node on a vertex
// holding a blue pebble, marking the vertex fired.
func (game *Game) Input(node int, v cdag.VertexID) error {
	at := Loc{Level: game.topo.NumLevels(), Unit: node}
	if err := game.checkVertex("R1 input", v); err != nil {
		return err
	}
	if err := game.checkLoc("R1 input", at); err != nil {
		return err
	}
	if !game.blue.Contains(v) {
		return &RuleError{Rule: "R1 input", Reason: fmt.Sprintf("vertex %d has no blue pebble", v)}
	}
	if game.HasPebbleAt(v, at) {
		return &RuleError{Rule: "R1 input", Reason: fmt.Sprintf("vertex %d already pebbled at %v", v, at)}
	}
	if !game.hasFree(at) {
		return &RuleError{Rule: "R1 input", Reason: fmt.Sprintf("no free pebble in %v", at)}
	}
	game.place(v, at)
	game.white.Add(v)
	game.inputsAt[node]++
	return nil
}

// Output applies rule R2: place a blue pebble on a vertex holding a level-L
// pebble of the given node.
func (game *Game) Output(node int, v cdag.VertexID) error {
	at := Loc{Level: game.topo.NumLevels(), Unit: node}
	if err := game.checkVertex("R2 output", v); err != nil {
		return err
	}
	if err := game.checkLoc("R2 output", at); err != nil {
		return err
	}
	if !game.HasPebbleAt(v, at) {
		return &RuleError{Rule: "R2 output", Reason: fmt.Sprintf("vertex %d has no level-L pebble at node %d", v, node)}
	}
	game.blue.Add(v)
	game.outputsAt[node]++
	return nil
}

// RemoteGet applies rule R3: place a level-L pebble of the destination node
// on a vertex already holding a level-L pebble at some other node.
func (game *Game) RemoteGet(dstNode int, v cdag.VertexID) error {
	L := game.topo.NumLevels()
	at := Loc{Level: L, Unit: dstNode}
	if err := game.checkVertex("R3 remote get", v); err != nil {
		return err
	}
	if err := game.checkLoc("R3 remote get", at); err != nil {
		return err
	}
	if game.HasPebbleAt(v, at) {
		return &RuleError{Rule: "R3 remote get", Reason: fmt.Sprintf("vertex %d already present at node %d", v, dstNode)}
	}
	src := false
	for _, l := range game.held[v] {
		if l.Level == L && l.Unit != dstNode {
			src = true
			break
		}
	}
	if !src {
		return &RuleError{Rule: "R3 remote get", Reason: fmt.Sprintf("vertex %d has no level-L pebble at another node", v)}
	}
	if !game.hasFree(at) {
		return &RuleError{Rule: "R3 remote get", Reason: fmt.Sprintf("no free pebble in %v", at)}
	}
	game.place(v, at)
	game.remoteGetsAt[dstNode]++
	return nil
}

// MoveUp applies rule R4: place a level-l pebble (l < L) of the given unit on
// a vertex that holds a level-(l+1) pebble in the unit's parent.
func (game *Game) MoveUp(level, unit int, v cdag.VertexID) error {
	at := Loc{Level: level, Unit: unit}
	if err := game.checkVertex("R4 move up", v); err != nil {
		return err
	}
	if err := game.checkLoc("R4 move up", at); err != nil {
		return err
	}
	if level >= game.topo.NumLevels() {
		return &RuleError{Rule: "R4 move up", Reason: "cannot move up into the last level"}
	}
	parent := Loc{Level: level + 1, Unit: game.topo.Parent(level, unit)}
	if !game.HasPebbleAt(v, parent) {
		return &RuleError{Rule: "R4 move up", Reason: fmt.Sprintf("vertex %d not present in parent %v", v, parent)}
	}
	if game.HasPebbleAt(v, at) {
		return &RuleError{Rule: "R4 move up", Reason: fmt.Sprintf("vertex %d already present at %v", v, at)}
	}
	if !game.hasFree(at) {
		return &RuleError{Rule: "R4 move up", Reason: fmt.Sprintf("no free pebble in %v", at)}
	}
	game.place(v, at)
	game.moveUpsInto[level-1][unit]++
	return nil
}

// MoveDown applies rule R5: place a level-l pebble (l > 1) of the given unit
// on a vertex that holds a level-(l−1) pebble in one of the unit's children.
func (game *Game) MoveDown(level, unit int, v cdag.VertexID) error {
	at := Loc{Level: level, Unit: unit}
	if err := game.checkVertex("R5 move down", v); err != nil {
		return err
	}
	if err := game.checkLoc("R5 move down", at); err != nil {
		return err
	}
	if level <= 1 {
		return &RuleError{Rule: "R5 move down", Reason: "cannot move down into level 1"}
	}
	childHolds := false
	for _, l := range game.held[v] {
		if l.Level == level-1 && game.topo.Parent(level-1, l.Unit) == unit {
			childHolds = true
			break
		}
	}
	if !childHolds {
		return &RuleError{Rule: "R5 move down", Reason: fmt.Sprintf("vertex %d not present in any child of %v", v, at)}
	}
	if game.HasPebbleAt(v, at) {
		return &RuleError{Rule: "R5 move down", Reason: fmt.Sprintf("vertex %d already present at %v", v, at)}
	}
	if !game.hasFree(at) {
		return &RuleError{Rule: "R5 move down", Reason: fmt.Sprintf("no free pebble in %v", at)}
	}
	game.place(v, at)
	game.moveDownsInto[level-1][unit]++
	return nil
}

// Compute applies rule R6: fire a vertex on processor proc.  Every
// predecessor must hold a level-1 pebble in proc's register unit, the vertex
// must not have fired before, and the register unit needs a free pebble.
func (game *Game) Compute(proc int, v cdag.VertexID) error {
	if err := game.checkVertex("R6 compute", v); err != nil {
		return err
	}
	if proc < 0 || proc >= game.topo.Processors() {
		return &RuleError{Rule: "R6 compute", Reason: fmt.Sprintf("processor %d out of range", proc)}
	}
	at := Loc{Level: 1, Unit: proc}
	if game.graph.IsInput(v) {
		return &RuleError{Rule: "R6 compute", Reason: fmt.Sprintf("vertex %d is an input", v)}
	}
	if game.white.Contains(v) {
		return &RuleError{Rule: "R6 compute", Reason: fmt.Sprintf("vertex %d already fired", v)}
	}
	for _, p := range game.predVal[game.predOff[v]:game.predOff[v+1]] {
		if !game.HasPebbleAt(p, at) {
			return &RuleError{Rule: "R6 compute", Reason: fmt.Sprintf("predecessor %d not in registers of processor %d", p, proc)}
		}
	}
	if game.HasPebbleAt(v, at) {
		return &RuleError{Rule: "R6 compute", Reason: fmt.Sprintf("vertex %d already pebbled at %v", v, at)}
	}
	if !game.hasFree(at) {
		return &RuleError{Rule: "R6 compute", Reason: fmt.Sprintf("no free register on processor %d", proc)}
	}
	game.place(v, at)
	game.white.Add(v)
	game.computesBy[proc]++
	return nil
}

// Delete applies rule R7: remove the pebble of v held by the given unit.
func (game *Game) Delete(at Loc, v cdag.VertexID) error {
	if err := game.checkVertex("R7 delete", v); err != nil {
		return err
	}
	if err := game.checkLoc("R7 delete", at); err != nil {
		return err
	}
	for i, l := range game.held[v] {
		if l == at {
			game.held[v] = append(game.held[v][:i], game.held[v][i+1:]...)
			game.load[at.Level-1][at.Unit]--
			return nil
		}
	}
	return &RuleError{Rule: "R7 delete", Reason: fmt.Sprintf("vertex %d has no pebble at %v", v, at)}
}

// IsComplete reports whether every vertex has fired and every output holds a
// blue pebble.
func (game *Game) IsComplete() bool {
	if game.white.Len() != game.graph.NumVertices() {
		return false
	}
	for _, v := range game.graph.Outputs() {
		if !game.blue.Contains(v) {
			return false
		}
	}
	return true
}

// Incomplete explains why the game is not yet complete ("" when it is).
func (game *Game) Incomplete() string {
	if game.white.Len() != game.graph.NumVertices() {
		return fmt.Sprintf("%d vertices not fired", game.graph.NumVertices()-game.white.Len())
	}
	for _, v := range game.graph.Outputs() {
		if !game.blue.Contains(v) {
			return fmt.Sprintf("output %d has no blue pebble", v)
		}
	}
	return ""
}
