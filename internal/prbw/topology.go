// Package prbw implements the Parallel Red-Blue-White pebble game of
// Definition 6: a pebble game on a machine with multiple nodes connected by a
// network, each node holding processors that share a hierarchy of storage
// levels.  Pebbles come in shades — one shade per storage unit at every level
// — and the game's moves model loads from slow memory (R1), stores to slow
// memory (R2), remote gets between nodes (R3), movement up and down the
// hierarchy (R4/R5), computation in registers (R6) and storage reuse (R7).
//
// The package provides a Topology describing the storage hierarchy, a
// rule-checking Game whose per-unit counters expose vertical and horizontal
// data movement, and a distributed-schedule player that executes a vertex
// schedule with a processor assignment and produces a complete legal game.
package prbw

import (
	"fmt"

	"cdagio/internal/machine"
)

// LevelSpec describes one level of the storage hierarchy.
type LevelSpec struct {
	// Name labels the level in reports ("regs", "L2", "DRAM", ...).
	Name string
	// Units is the total number of storage units N_l at this level across
	// the whole machine.
	Units int
	// Capacity is the number of pebbles S_l each unit can hold.
	Capacity int
}

// Topology is the storage hierarchy of a parallel machine, ordered from
// level 1 (the per-processor registers) to level L (the per-node main
// memories).  Unit counts must not increase with the level, every level's
// unit count must divide the next-lower level's count, and the number of
// units at level L is the number of nodes.
type Topology struct {
	Levels []LevelSpec
}

// Validate checks the structural requirements of the topology.
func (t Topology) Validate() error {
	if len(t.Levels) < 2 {
		return fmt.Errorf("prbw: topology needs at least 2 levels (registers and node memory), got %d", len(t.Levels))
	}
	for i, lev := range t.Levels {
		if lev.Units <= 0 {
			return fmt.Errorf("prbw: level %d (%s) has %d units", i+1, lev.Name, lev.Units)
		}
		if lev.Capacity <= 0 {
			return fmt.Errorf("prbw: level %d (%s) has capacity %d", i+1, lev.Name, lev.Capacity)
		}
		if i > 0 {
			if lev.Units > t.Levels[i-1].Units {
				return fmt.Errorf("prbw: level %d (%s) has more units (%d) than level %d (%d)",
					i+1, lev.Name, lev.Units, i, t.Levels[i-1].Units)
			}
			if t.Levels[i-1].Units%lev.Units != 0 {
				return fmt.Errorf("prbw: level %d unit count %d does not divide level %d unit count %d",
					i+1, lev.Units, i, t.Levels[i-1].Units)
			}
		}
	}
	return nil
}

// NumLevels returns L, the number of storage levels.
func (t Topology) NumLevels() int { return len(t.Levels) }

// Processors returns P, the number of processors (units at level 1).
func (t Topology) Processors() int { return t.Levels[0].Units }

// Nodes returns the number of nodes (units at level L).
func (t Topology) Nodes() int { return t.Levels[len(t.Levels)-1].Units }

// Parent returns the unit index at level l+1 that the given unit of level l
// is attached to.  Levels are 1-based as in the paper; Parent panics on the
// last level.
func (t Topology) Parent(level, unit int) int {
	if level < 1 || level >= t.NumLevels() {
		panic(fmt.Sprintf("prbw: Parent called on level %d of %d", level, t.NumLevels()))
	}
	ratio := t.Levels[level-1].Units / t.Levels[level].Units
	return unit / ratio
}

// UnitOnPath returns the unit index at the given level on the path from
// processor p up to its node: the ancestor storage unit serving p.
func (t Topology) UnitOnPath(level, proc int) int {
	if level < 1 || level > t.NumLevels() {
		panic(fmt.Sprintf("prbw: level %d out of range [1,%d]", level, t.NumLevels()))
	}
	ratio := t.Levels[0].Units / t.Levels[level-1].Units
	return proc / ratio
}

// NodeOf returns the node (level-L unit) a processor belongs to.
func (t Topology) NodeOf(proc int) int { return t.UnitOnPath(t.NumLevels(), proc) }

// Capacity returns S_l for 1-based level l.
func (t Topology) Capacity(level int) int { return t.Levels[level-1].Capacity }

// Units returns N_l for 1-based level l.
func (t Topology) Units(level int) int { return t.Levels[level-1].Units }

// TwoLevel returns the simplest useful topology: P processors with S1
// registers each, all attached to a single node memory of capacity SL.
func TwoLevel(p, s1 int, sL int) Topology {
	return Topology{Levels: []LevelSpec{
		{Name: "regs", Units: p, Capacity: s1},
		{Name: "mem", Units: 1, Capacity: sL},
	}}
}

// Distributed returns a three-level topology with the given number of nodes,
// processors per node, registers per processor, a shared cache per node and a
// main memory per node.
func Distributed(nodes, procsPerNode, regWords, cacheWords, memWords int) Topology {
	return Topology{Levels: []LevelSpec{
		{Name: "regs", Units: nodes * procsPerNode, Capacity: regWords},
		{Name: "cache", Units: nodes, Capacity: cacheWords},
		{Name: "mem", Units: nodes, Capacity: memWords},
	}}
}

// FromMachine derives a topology from a machine description, using
// regWords registers per core, the machine's cache levels, and its node main
// memory.  Capacities larger than maxWords are clamped so that pebble-game
// simulations on modest CDAGs stay meaningful (a 2-GWord memory level would
// otherwise never evict).
func FromMachine(m machine.Machine, regWords int, maxWords int64) Topology {
	clamp := func(w int64) int {
		if maxWords > 0 && w > maxWords {
			w = maxWords
		}
		if w < 1 {
			w = 1
		}
		return int(w)
	}
	levels := []LevelSpec{{
		Name:     "regs",
		Units:    m.Nodes * m.CoresPerNode,
		Capacity: regWords,
	}}
	for _, lev := range m.Levels {
		levels = append(levels, LevelSpec{
			Name:     lev.Name,
			Units:    m.Nodes * lev.CountPerNode,
			Capacity: clamp(lev.CapacityWords),
		})
	}
	levels = append(levels, LevelSpec{
		Name:     "mem",
		Units:    m.Nodes,
		Capacity: clamp(m.MainMemoryWords),
	})
	return Topology{Levels: levels}
}
