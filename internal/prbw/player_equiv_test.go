package prbw

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"cdagio/internal/cdag"
	"cdagio/internal/gen"
)

// equivScenarios builds the scenario matrix the optimized player is checked
// on: every workload family crossed with two-level, three-level shared-cache
// and multi-node topologies, under block, block-cyclic and owner-computes
// assignments.
func equivScenarios() []struct {
	name string
	g    *cdag.Graph
	topo Topology
	asg  Assignment
} {
	jr := gen.Jacobi(1, 48, 6, gen.StencilStar)
	jacobiOwner := make([]int, jr.Graph.NumVertices())
	for v := range jacobiOwner {
		jacobiOwner[v] = v % 4
	}
	mm := gen.MatMul(8).Graph
	cg := gen.CG(2, 6, 2).Graph
	gm := gen.GMRES(2, 5, 3).Graph
	fft := gen.FFT(16)
	j2 := gen.Jacobi(2, 10, 4, gen.StencilBox).Graph
	return []struct {
		name string
		g    *cdag.Graph
		topo Topology
		asg  Assignment
	}{
		{"jacobi1d-dist", jr.Graph, Distributed(2, 2, 8, 96, 1<<18), OwnerCompute(jr.Graph, jacobiOwner)},
		{"matmul8-two", mm, TwoLevel(4, 16, 4096), RoundRobin(mm, 4, 0)},
		{"matmul8-grain3", mm, TwoLevel(4, 16, 4096), RoundRobin(mm, 4, 3)},
		{"cg-two", cg, TwoLevel(2, 12, 1<<16), RoundRobin(cg, 2, 0)},
		{"gmres-two", gm, TwoLevel(2, 12, 1<<16), RoundRobin(gm, 2, 8)},
		{"fft16-dist", fft, Distributed(2, 2, 6, 40, 1<<14), RoundRobin(fft, 4, 4)},
		{"jacobi2d-single", j2, TwoLevel(1, 12, 1<<14), SingleProcessor(j2)},
	}
}

// TestPlayMatchesReference checks that the heap-based player produces stats
// identical to the map-based reference player on every scenario.
func TestPlayMatchesReference(t *testing.T) {
	for _, sc := range equivScenarios() {
		want, errRef := PlayReference(sc.g, sc.topo, sc.asg)
		got, errNew := Play(sc.g, sc.topo, sc.asg)
		if (errRef == nil) != (errNew == nil) {
			t.Fatalf("%s: reference err = %v, optimized err = %v", sc.name, errRef, errNew)
		}
		if errRef != nil {
			if errRef.Error() != errNew.Error() {
				t.Fatalf("%s: reference err %q, optimized err %q", sc.name, errRef, errNew)
			}
			continue
		}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("%s: statistics diverge\nreference: %v\noptimized: %v", sc.name, want, got)
		}
	}
}

// TestPlayMatchesReferenceEvictionChurn pins the batched heap fix-ups (the
// pending/flushPending path) against the eager reference player under heavy
// eviction churn: tight capacities so nearly every step runs eviction chains
// across several levels — the regime where a value's deadness flips several
// times between victim choices and the deferred Fix batching actually
// coalesces work.  Randomized processor assignments (seeded) widen the
// coverage beyond the fixed scenario matrix; stats must stay bit-identical.
func TestPlayMatchesReferenceEvictionChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(1405))
	graphs := map[string]*cdag.Graph{
		"jacobi1d": gen.Jacobi(1, 24, 5, gen.StencilStar).Graph,
		"matmul":   gen.MatMul(6).Graph,
		"fft":      gen.FFT(16),
		"cg":       gen.CG(1, 10, 2).Graph,
	}
	topos := []struct {
		name string
		topo Topology
	}{
		{"tight-two", TwoLevel(2, 6, 64)},
		{"tight-dist", Distributed(2, 2, 6, 24, 1<<12)},
	}
	for gname, g := range graphs {
		for _, tp := range topos {
			procs := tp.topo.Units(1)
			for trial := 0; trial < 3; trial++ {
				asg := RoundRobin(g, procs, 0)
				for i := range asg.Proc {
					asg.Proc[i] = rng.Intn(procs)
				}
				want, errRef := PlayReference(g, tp.topo, asg)
				got, errNew := Play(g, tp.topo, asg)
				if (errRef == nil) != (errNew == nil) {
					t.Fatalf("%s/%s trial %d: reference err = %v, optimized err = %v",
						gname, tp.name, trial, errRef, errNew)
				}
				if errRef != nil {
					if errRef.Error() != errNew.Error() {
						t.Fatalf("%s/%s trial %d: reference err %q, optimized err %q",
							gname, tp.name, trial, errRef, errNew)
					}
					continue
				}
				if !reflect.DeepEqual(want, got) {
					t.Errorf("%s/%s trial %d: statistics diverge\nreference: %v\noptimized: %v",
						gname, tp.name, trial, want, got)
				}
			}
		}
	}
}

// TestPlayErrorMatchesReference checks that even failing schedules fail
// identically: this CG-over-nodes configuration trips the players' shared
// "value lost" edge (a value whose only remaining use is the in-flight step is
// considered evictable at off-path levels) and both implementations must
// reach it at the same vertex.
func TestPlayErrorMatchesReference(t *testing.T) {
	cg := gen.CG(2, 6, 2).Graph
	topo := Distributed(2, 2, 10, 64, 1<<16)
	asg := RoundRobin(cg, 4, 16)
	_, errRef := PlayReference(cg, topo, asg)
	_, errNew := Play(cg, topo, asg)
	if errRef == nil || errNew == nil {
		t.Fatalf("expected both players to fail, got reference=%v optimized=%v", errRef, errNew)
	}
	if errRef.Error() != errNew.Error() {
		t.Fatalf("error divergence: reference %q, optimized %q", errRef, errNew)
	}
	var pe *PlayError
	if !errors.As(errNew, &pe) {
		t.Fatalf("expected *PlayError, got %T", errNew)
	}
}

// TestPlayGoldenSeed pins the traffic statistics of representative scenarios
// to the numbers produced by the original (pre-rewrite) map-based player, so
// the eviction semantics can never drift silently.
func TestPlayGoldenSeed(t *testing.T) {
	type golden struct {
		name    string
		in, out int64
		rget    int64
		ups     []int64
		downs   []int64
	}
	goldens := map[string]golden{
		"jacobi1d-dist":   {in: 48, out: 48, rget: 276, ups: []int64{852, 324, 0}, downs: []int64{0, 288, 278}},
		"matmul8-two":     {in: 128, out: 64, rget: 0, ups: []int64{1920, 0}, downs: []int64{0, 960}},
		"matmul8-grain3":  {in: 128, out: 64, rget: 0, ups: []int64{1920, 0}, downs: []int64{0, 960}},
		"cg-two":          {in: 108, out: 36, rget: 0, ups: []int64{1380, 0}, downs: []int64{0, 599}},
		"gmres-two":       {in: 25, out: 25, rget: 0, ups: []int64{1481, 0}, downs: []int64{0, 548}},
		"fft16-dist":      {in: 16, out: 16, rget: 8, ups: []int64{78, 24, 0}, downs: []int64{0, 39, 30}},
		"jacobi2d-single": {in: 100, out: 100, rget: 0, ups: []int64{3136, 0}, downs: []int64{0, 400}},
	}
	sum := func(xs []int64) int64 {
		var t int64
		for _, x := range xs {
			t += x
		}
		return t
	}
	for _, sc := range equivScenarios() {
		want, ok := goldens[sc.name]
		if !ok {
			continue
		}
		st, err := Play(sc.g, sc.topo, sc.asg)
		if err != nil {
			t.Fatalf("%s: %v", sc.name, err)
		}
		if got := sum(st.InputsAt); got != want.in {
			t.Errorf("%s: inputs = %d, seed produced %d", sc.name, got, want.in)
		}
		if got := sum(st.OutputsAt); got != want.out {
			t.Errorf("%s: outputs = %d, seed produced %d", sc.name, got, want.out)
		}
		if got := st.HorizontalTraffic(); got != want.rget {
			t.Errorf("%s: remote gets = %d, seed produced %d", sc.name, got, want.rget)
		}
		for l := range want.ups {
			if got := sum(st.MoveUpsInto[l]); got != want.ups[l] {
				t.Errorf("%s: level-%d move-ups = %d, seed produced %d", sc.name, l+1, got, want.ups[l])
			}
			if got := sum(st.MoveDownsInto[l]); got != want.downs[l] {
				t.Errorf("%s: level-%d move-downs = %d, seed produced %d", sc.name, l+1, got, want.downs[l])
			}
		}
	}
}

// TestPlayDeterministic replays the same scenario twice and demands
// bit-identical statistics: eviction must not depend on map iteration order
// or any other run-to-run nondeterminism.
func TestPlayDeterministic(t *testing.T) {
	for _, sc := range equivScenarios() {
		first, err1 := Play(sc.g, sc.topo, sc.asg)
		second, err2 := Play(sc.g, sc.topo, sc.asg)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("%s: nondeterministic error: %v vs %v", sc.name, err1, err2)
		}
		if err1 != nil {
			continue
		}
		if !reflect.DeepEqual(first, second) {
			t.Errorf("%s: two runs produced different statistics", sc.name)
		}
	}
}

// TestPlayCapacityExhausted drives the player into a unit whose every
// resident value is pinned by an in-flight fetch: a capacity-1 shared cache
// cannot hold both the value being walked down and the copy eviction wants to
// push down, so the player must fail with the capacity-exhausted error rather
// than loop or corrupt the game.  The optimized and reference players must
// agree on the failure.
func TestPlayCapacityExhausted(t *testing.T) {
	g := gen.DotProduct(8)
	topo := Topology{Levels: []LevelSpec{
		{Name: "regs", Units: 1, Capacity: 3},
		{Name: "cache", Units: 1, Capacity: 1},
		{Name: "mem", Units: 1, Capacity: 1 << 12},
	}}
	asg := SingleProcessor(g)
	_, errNew := Play(g, topo, asg)
	if errNew == nil {
		t.Fatal("expected capacity-exhausted error, got success")
	}
	var pe *PlayError
	if !errors.As(errNew, &pe) {
		t.Fatalf("expected *PlayError, got %T: %v", errNew, errNew)
	}
	const want = "full with pinned values"
	if !contains(pe.Reason, want) {
		t.Fatalf("error %q does not mention %q", pe.Reason, want)
	}
	_, errRef := PlayReference(g, topo, asg)
	if errRef == nil || errRef.Error() != errNew.Error() {
		t.Fatalf("reference error %v diverges from optimized %v", errRef, errNew)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestSingleProcessorAssignment pins the SingleProcessor contract: the whole
// non-input topological order on processor 0.
func TestSingleProcessorAssignment(t *testing.T) {
	g := gen.DotProduct(6)
	asg := SingleProcessor(g)
	if len(asg.Order) != g.NumOperations() {
		t.Fatalf("order has %d steps, want %d", len(asg.Order), g.NumOperations())
	}
	for i, p := range asg.Proc {
		if p != 0 {
			t.Fatalf("step %d on processor %d, want 0", i, p)
		}
	}
}

// TestRoundRobinBlockCyclic pins the documented block-cyclic layout: blocks
// of the given grain dealt to processors in wrapping order.
func TestRoundRobinBlockCyclic(t *testing.T) {
	g := gen.Chain(10) // 1 input, 9 chained operations
	asg := RoundRobin(g, 2, 3)
	want := []int{0, 0, 0, 1, 1, 1, 0, 0, 0}
	if len(asg.Proc) != len(want) {
		t.Fatalf("got %d steps, want %d", len(asg.Proc), len(want))
	}
	for i := range want {
		if asg.Proc[i] != want[i] {
			t.Fatalf("step %d on processor %d, want %d (block-cyclic grain 3)", i, asg.Proc[i], want[i])
		}
	}
}
