package prbw

import (
	"fmt"

	"cdagio/internal/cdag"
)

// PlayReference executes the assignment exactly like Play but with the
// straightforward bookkeeping the optimized player replaced: per-unit
// map[vertex]clock recency tables scanned in full on every eviction, and
// freshly allocated pinned-vertex maps on every compute step and fetch.  It is
// kept as the executable specification of the player's eviction semantics —
// tests assert that Play produces byte-identical statistics, and benchmarks
// measure the win of the dense rewrite against it.
func PlayReference(g *cdag.Graph, topo Topology, asg Assignment) (*Stats, error) {
	if err := topo.Validate(); err != nil {
		return nil, err
	}
	if len(asg.Order) != len(asg.Proc) {
		return nil, &PlayError{Reason: "assignment order and processor slices differ in length"}
	}
	if err := validateAssignment(g, topo, asg); err != nil {
		return nil, err
	}

	game, err := NewGame(g, topo)
	if err != nil {
		return nil, err
	}
	n := g.NumVertices()
	// Even the reference player hoists the predecessor CSR: the rows are
	// identical to g.Pred(v), and reading them directly keeps the measured
	// Play-vs-PlayReference gap about eviction bookkeeping, not facade calls.
	predOff, predVal := g.PredecessorCSR()
	pl := &refPlayer{game: game, g: g, topo: topo, asg: asg,
		uses: make([][]int, n), usePtr: make([]int, n)}
	for i, v := range asg.Order {
		for _, p := range predVal[predOff[v]:predOff[v+1]] {
			pl.uses[p] = append(pl.uses[p], i)
		}
	}
	pl.touched = make([][]map[cdag.VertexID]int64, topo.NumLevels())
	for l := range pl.touched {
		pl.touched[l] = make([]map[cdag.VertexID]int64, topo.Units(l+1))
		for u := range pl.touched[l] {
			pl.touched[l][u] = make(map[cdag.VertexID]int64)
		}
	}

	// Execute the schedule.
	for i, v := range asg.Order {
		pl.pos = i
		proc := asg.Proc[i]
		preds := predVal[predOff[v]:predOff[v+1]]
		pinned := make(map[cdag.VertexID]bool, len(preds)+1)
		for _, p := range preds {
			pinned[p] = true
		}
		for _, p := range preds {
			if err := pl.fetchToRegisters(p, proc, pinned); err != nil {
				return nil, err
			}
		}
		regs := Loc{Level: 1, Unit: proc}
		if err := pl.ensureCapacity(regs, pinned); err != nil {
			return nil, err
		}
		if err := game.Compute(proc, v); err != nil {
			return nil, err
		}
		pl.touch(regs, v)
		pl.clock++
		// Free dead values in the register file immediately (no data movement).
		for _, p := range preds {
			pl.dropIfDead(regs, p)
		}
		pl.dropIfDead(regs, v)
	}

	// Make outputs durable (blue) and touch never-used inputs so the RBW
	// completion condition (white everywhere) holds.
	if err := pl.finalize(); err != nil {
		return nil, err
	}
	if !game.IsComplete() {
		return nil, &PlayError{Reason: "game incomplete after schedule: " + game.Incomplete()}
	}
	return game.Snapshot(), nil
}

// refPlayer carries the bookkeeping of one PlayReference run.
type refPlayer struct {
	game *Game
	g    *cdag.Graph
	topo Topology
	asg  Assignment

	uses    [][]int // schedule positions consuming each vertex
	usePtr  []int
	pos     int // current schedule position
	clock   int64
	touched [][]map[cdag.VertexID]int64 // per level, per unit: last touch time
}

func (pl *refPlayer) touch(at Loc, v cdag.VertexID) {
	pl.touched[at.Level-1][at.Unit][v] = pl.clock
}

func (pl *refPlayer) untouch(at Loc, v cdag.VertexID) {
	delete(pl.touched[at.Level-1][at.Unit], v)
}

// nextUse returns the next schedule position that consumes v after the
// current position, or a large sentinel when there is none.
const never = int(^uint(0) >> 1)

func (pl *refPlayer) nextUse(v cdag.VertexID) int {
	for pl.usePtr[v] < len(pl.uses[v]) && pl.uses[v][pl.usePtr[v]] <= pl.pos {
		pl.usePtr[v]++
	}
	if pl.usePtr[v] < len(pl.uses[v]) {
		return pl.uses[v][pl.usePtr[v]]
	}
	return never
}

// valueMatters reports whether losing the last copy of v would be incorrect:
// v is still needed by a later compute step or must eventually carry a blue
// pebble as an output.
func (pl *refPlayer) valueMatters(v cdag.VertexID) bool {
	if pl.nextUse(v) != never {
		return true
	}
	return pl.g.IsOutput(v) && !pl.game.HasBlue(v)
}

// dropIfDead deletes the pebble of v at the unit when its value no longer
// matters or survives elsewhere.
func (pl *refPlayer) dropIfDead(at Loc, v cdag.VertexID) {
	if !pl.game.HasPebbleAt(v, at) {
		return
	}
	if pl.valueMatters(v) && len(pl.game.Locations(v)) == 1 && !pl.game.HasBlue(v) {
		return
	}
	if err := pl.game.Delete(at, v); err == nil {
		pl.untouch(at, v)
	}
}

// ensureCapacity frees pebbles in the unit until a new placement fits,
// evicting least-recently-touched victims and preserving values that would
// otherwise be lost by pushing them one level toward memory (or to the
// backing store at level L).
func (pl *refPlayer) ensureCapacity(at Loc, pinned map[cdag.VertexID]bool) error {
	for !pl.game.hasFree(at) {
		victim, err := pl.chooseVictim(at, pinned)
		if err != nil {
			return err
		}
		if err := pl.evict(at, victim, pinned); err != nil {
			return err
		}
	}
	return nil
}

func (pl *refPlayer) chooseVictim(at Loc, pinned map[cdag.VertexID]bool) (cdag.VertexID, error) {
	var best cdag.VertexID = cdag.InvalidVertex
	bestDead := false
	var bestTime int64
	for v, t := range pl.touched[at.Level-1][at.Unit] {
		if pinned[v] {
			continue
		}
		dead := !pl.valueMatters(v) || len(pl.game.Locations(v)) > 1 || pl.game.HasBlue(v)
		// Prefer dead values, then the least recently touched, and break the
		// remaining ties by vertex ID so eviction is deterministic despite
		// the map iteration order.
		if best == cdag.InvalidVertex ||
			(dead && !bestDead) ||
			(dead == bestDead && (t < bestTime || (t == bestTime && v < best))) {
			best, bestDead, bestTime = v, dead, t
		}
	}
	if best == cdag.InvalidVertex {
		return cdag.InvalidVertex, &PlayError{
			Reason: fmt.Sprintf("storage unit %v full with pinned values (capacity %d too small)",
				at, pl.topo.Capacity(at.Level))}
	}
	return best, nil
}

// evict removes v from the unit, first copying it toward memory when it is
// the last live copy of a value that still matters.  The pinned set is
// propagated so that values protected by an in-flight fetch are never
// displaced from the path while making room for the copy.
func (pl *refPlayer) evict(at Loc, v cdag.VertexID, pinned map[cdag.VertexID]bool) error {
	needsCopy := pl.valueMatters(v) && len(pl.game.Locations(v)) == 1 && !pl.game.HasBlue(v)
	if needsCopy {
		if at.Level == pl.topo.NumLevels() {
			// Push to the backing store.
			if err := pl.game.Output(at.Unit, v); err != nil {
				return err
			}
		} else {
			parent := Loc{Level: at.Level + 1, Unit: pl.topo.Parent(at.Level, at.Unit)}
			if !pl.game.HasPebbleAt(v, parent) {
				if err := pl.ensureCapacity(parent, pinned); err != nil {
					return err
				}
				if err := pl.game.MoveDown(parent.Level, parent.Unit, v); err != nil {
					return err
				}
				pl.touch(parent, v)
			}
		}
	}
	if err := pl.game.Delete(at, v); err != nil {
		return err
	}
	pl.untouch(at, v)
	return nil
}

// fetchToRegisters brings the value of u into the register unit of proc,
// moving it through every level of the processor's storage path and using a
// remote get or backing-store load when no copy exists on the path.  The
// value u itself is protected from eviction while the fetch is in flight, in
// addition to the caller's pinned set (the predecessors already resident in
// the registers).
func (pl *refPlayer) fetchToRegisters(u cdag.VertexID, proc int, pinned map[cdag.VertexID]bool) error {
	L := pl.topo.NumLevels()
	regs := Loc{Level: 1, Unit: proc}
	if pl.game.HasPebbleAt(u, regs) {
		pl.touch(regs, u)
		return nil
	}
	// Protect u along the whole path; at level 1 additionally protect the
	// other already-fetched predecessors.
	protect := map[cdag.VertexID]bool{u: true}
	level1Pin := make(map[cdag.VertexID]bool, len(pinned)+1)
	for v := range pinned {
		level1Pin[v] = true
	}
	level1Pin[u] = true

	// Find the lowest level on the path already holding the value.
	found := 0
	for l := 1; l <= L; l++ {
		at := Loc{Level: l, Unit: pl.topo.UnitOnPath(l, proc)}
		if pl.game.HasPebbleAt(u, at) {
			found = l
			break
		}
	}
	if found == 0 {
		node := pl.topo.NodeOf(proc)
		memLoc := Loc{Level: L, Unit: node}
		// Locate (or create) a level-L copy of u somewhere in the machine.
		srcNode := -1
		for _, loc := range pl.game.Locations(u) {
			if loc.Level == L {
				srcNode = loc.Unit
				break
			}
		}
		if srcNode < 0 && !pl.game.HasBlue(u) {
			// The value only lives in caches/registers off the path: push it
			// up to the main memory of the node that holds it.
			if err := pl.raiseToNodeMemory(u, protect); err != nil {
				return err
			}
			for _, loc := range pl.game.Locations(u) {
				if loc.Level == L {
					srcNode = loc.Unit
					break
				}
			}
		}
		if srcNode != node {
			if err := pl.ensureCapacity(memLoc, protect); err != nil {
				return err
			}
			switch {
			case srcNode >= 0:
				if err := pl.game.RemoteGet(node, u); err != nil {
					return err
				}
			case pl.game.HasBlue(u):
				if err := pl.game.Input(node, u); err != nil {
					return err
				}
			default:
				return &PlayError{Reason: fmt.Sprintf("value of vertex %d lost (no pebble, no blue)", u)}
			}
		}
		pl.touch(memLoc, u)
		found = L
	}
	// Walk the value down the path toward the registers.
	for l := found - 1; l >= 1; l-- {
		at := Loc{Level: l, Unit: pl.topo.UnitOnPath(l, proc)}
		if pl.game.HasPebbleAt(u, at) {
			pl.touch(at, u)
			continue
		}
		pin := protect
		if l == 1 {
			pin = level1Pin
		}
		if err := pl.ensureCapacity(at, pin); err != nil {
			return err
		}
		if err := pl.game.MoveUp(l, at.Unit, u); err != nil {
			return err
		}
		pl.touch(at, u)
	}
	return nil
}

// raiseToNodeMemory pushes some existing pebble of u up to the main memory of
// the node that holds it, so that it can be remote-fetched or walked down the
// requesting processor's path.
func (pl *refPlayer) raiseToNodeMemory(u cdag.VertexID, pinned map[cdag.VertexID]bool) error {
	locs := pl.game.Locations(u)
	if len(locs) == 0 {
		return &PlayError{Reason: fmt.Sprintf("value of vertex %d lost (no pebble, no blue)", u)}
	}
	// Pick the highest-level existing pebble to minimize the number of moves.
	best := locs[0]
	for _, l := range locs {
		if l.Level > best.Level {
			best = l
		}
	}
	L := pl.topo.NumLevels()
	cur := best
	for cur.Level < L {
		parent := Loc{Level: cur.Level + 1, Unit: pl.topo.Parent(cur.Level, cur.Unit)}
		if !pl.game.HasPebbleAt(u, parent) {
			if err := pl.ensureCapacity(parent, pinned); err != nil {
				return err
			}
			if err := pl.game.MoveDown(parent.Level, parent.Unit, u); err != nil {
				return err
			}
			pl.touch(parent, u)
		}
		cur = parent
	}
	return nil
}

// finalize stores outputs to the backing store and touches never-consumed
// inputs so that the completion conditions hold.
func (pl *refPlayer) finalize() error {
	pl.pos = len(pl.asg.Order)
	L := pl.topo.NumLevels()
	for _, v := range pl.g.Outputs() {
		if pl.game.HasBlue(v) {
			continue
		}
		if len(pl.game.Locations(v)) == 0 {
			return &PlayError{Reason: fmt.Sprintf("output %d lost before final store", v)}
		}
		if err := pl.raiseToNodeMemory(v, map[cdag.VertexID]bool{v: true}); err != nil {
			return err
		}
		var node int = -1
		for _, loc := range pl.game.Locations(v) {
			if loc.Level == L {
				node = loc.Unit
				break
			}
		}
		if node < 0 {
			return &PlayError{Reason: fmt.Sprintf("output %d could not reach node memory", v)}
		}
		if err := pl.game.Output(node, v); err != nil {
			return err
		}
	}
	for _, v := range pl.g.Inputs() {
		if pl.game.HasWhite(v) {
			continue
		}
		memLoc := Loc{Level: L, Unit: 0}
		if err := pl.ensureCapacity(memLoc, nil); err != nil {
			return err
		}
		if err := pl.game.Input(0, v); err != nil {
			return err
		}
		if err := pl.game.Delete(memLoc, v); err != nil {
			return err
		}
	}
	return nil
}
