package prbw

import (
	"testing"

	"cdagio/internal/cdag"
	"cdagio/internal/gen"
)

// benchScenario is an eviction-heavy P-RBW workload: a long 1-D Jacobi sweep
// over two nodes with small registers and caches, so the players spend their
// time in fetch/evict traffic rather than in computes.
func benchScenario() (*cdag.Graph, Topology, Assignment) {
	jr := gen.Jacobi(1, 96, 10, gen.StencilStar)
	owner := make([]int, jr.Graph.NumVertices())
	for v := range owner {
		owner[v] = v % 4
	}
	return jr.Graph, Distributed(2, 2, 8, 48, 1<<18), OwnerCompute(jr.Graph, owner)
}

// BenchmarkPlay measures the optimized player: dense recency heaps,
// epoch-stamped pins, no per-step allocations.
func BenchmarkPlay(b *testing.B) {
	g, topo, asg := benchScenario()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Play(g, topo, asg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlayReference measures the map-based reference player the rewrite
// replaced; the delta against BenchmarkPlay is the tentpole's win.
func BenchmarkPlayReference(b *testing.B) {
	g, topo, asg := benchScenario()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := PlayReference(g, topo, asg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlaySingleProcessor measures the sequential special case on a
// tight two-level hierarchy (the configuration the repo's Analyze upper
// bounds use most).
func BenchmarkPlaySingleProcessor(b *testing.B) {
	g := gen.Jacobi(2, 16, 6, gen.StencilBox).Graph
	topo := TwoLevel(1, 12, 1<<14)
	asg := SingleProcessor(g)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Play(g, topo, asg); err != nil {
			b.Fatal(err)
		}
	}
}
