package prbw

import (
	"strings"
	"testing"

	"cdagio/internal/cdag"
	"cdagio/internal/gen"
	"cdagio/internal/machine"
)

func TestTopologyBasics(t *testing.T) {
	topo := Distributed(2, 4, 8, 64, 1024)
	if err := topo.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if topo.NumLevels() != 3 || topo.Processors() != 8 || topo.Nodes() != 2 {
		t.Fatalf("topology shape wrong: %+v", topo)
	}
	// Processor 5 belongs to node 1 and to cache unit 1.
	if topo.NodeOf(5) != 1 {
		t.Errorf("NodeOf(5) = %d, want 1", topo.NodeOf(5))
	}
	if topo.UnitOnPath(2, 5) != 1 {
		t.Errorf("UnitOnPath(2,5) = %d, want 1", topo.UnitOnPath(2, 5))
	}
	if topo.UnitOnPath(1, 5) != 5 {
		t.Errorf("UnitOnPath(1,5) = %d, want 5", topo.UnitOnPath(1, 5))
	}
	if topo.Parent(1, 5) != 1 || topo.Parent(2, 1) != 1 {
		t.Errorf("Parent wrong: %d %d", topo.Parent(1, 5), topo.Parent(2, 1))
	}
	if topo.Capacity(2) != 64 || topo.Units(3) != 2 {
		t.Errorf("Capacity/Units wrong")
	}
}

func TestTopologyValidateErrors(t *testing.T) {
	cases := []Topology{
		{},
		{Levels: []LevelSpec{{Name: "only", Units: 1, Capacity: 1}}},
		{Levels: []LevelSpec{{Name: "a", Units: 0, Capacity: 1}, {Name: "b", Units: 1, Capacity: 1}}},
		{Levels: []LevelSpec{{Name: "a", Units: 2, Capacity: 0}, {Name: "b", Units: 1, Capacity: 1}}},
		{Levels: []LevelSpec{{Name: "a", Units: 2, Capacity: 4}, {Name: "b", Units: 4, Capacity: 8}}},
		{Levels: []LevelSpec{{Name: "a", Units: 3, Capacity: 4}, {Name: "b", Units: 2, Capacity: 8}}},
	}
	for i, topo := range cases {
		if err := topo.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestTopologyPanics(t *testing.T) {
	topo := TwoLevel(2, 4, 100)
	func() {
		defer func() {
			if recover() == nil {
				t.Errorf("expected Parent panic on last level")
			}
		}()
		topo.Parent(2, 0)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Errorf("expected UnitOnPath panic on bad level")
			}
		}()
		topo.UnitOnPath(5, 0)
	}()
}

func TestFromMachine(t *testing.T) {
	topo := FromMachine(machine.IBMBGQ(), 32, 4096)
	if err := topo.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// regs + L1 + L2 + mem = 4 levels.
	if topo.NumLevels() != 4 {
		t.Fatalf("levels = %d, want 4", topo.NumLevels())
	}
	if topo.Processors() != 2048*16 || topo.Nodes() != 2048 {
		t.Fatalf("processors/nodes wrong: %d / %d", topo.Processors(), topo.Nodes())
	}
	// Clamping applies to the large levels.
	for l := 2; l <= topo.NumLevels(); l++ {
		if topo.Capacity(l) > 4096 {
			t.Errorf("level %d capacity %d not clamped", l, topo.Capacity(l))
		}
	}
}

func TestGameRules(t *testing.T) {
	g := gen.Chain(3) // 0(in) -> 1 -> 2(out)
	topo := TwoLevel(2, 4, 8)
	game, err := NewGame(g, topo)
	if err != nil {
		t.Fatalf("NewGame: %v", err)
	}
	if game.Graph() != g || game.Topology().NumLevels() != 2 {
		t.Fatalf("accessors wrong")
	}
	// Input of a non-blue vertex fails.
	if err := game.Input(0, 1); err == nil {
		t.Errorf("expected input failure for non-blue vertex")
	}
	// Compute without register pebbles fails.
	if err := game.Compute(0, 1); err == nil {
		t.Errorf("expected compute failure without predecessors in registers")
	}
	// Legal sequence: load input into node memory, move up, compute, push
	// result down, store.
	if err := game.Input(0, 0); err != nil {
		t.Fatalf("Input: %v", err)
	}
	if !game.HasWhite(0) {
		t.Errorf("input load should place a white pebble")
	}
	if err := game.MoveUp(1, 0, 0); err != nil {
		t.Fatalf("MoveUp: %v", err)
	}
	if err := game.Compute(0, 1); err != nil {
		t.Fatalf("Compute: %v", err)
	}
	// Recomputation is forbidden.
	if err := game.Compute(1, 1); err == nil {
		t.Errorf("expected recomputation failure")
	}
	if err := game.Compute(0, 2); err != nil {
		t.Fatalf("Compute 2: %v", err)
	}
	if err := game.MoveDown(2, 0, 2); err != nil {
		t.Fatalf("MoveDown: %v", err)
	}
	if err := game.Output(0, 2); err != nil {
		t.Fatalf("Output: %v", err)
	}
	if !game.IsComplete() {
		t.Fatalf("game should be complete: %s", game.Incomplete())
	}
	s := game.Snapshot()
	if s.VerticalTraffic(1) != 2 { // one move up (input 0), one move down (output 2)
		t.Errorf("vertical traffic = %d, want 2", s.VerticalTraffic(1))
	}
	if s.BlueTraffic() != 2 || s.HorizontalTraffic() != 0 || s.TotalComputes() != 2 {
		t.Errorf("traffic summary wrong: %+v", s)
	}
}

func TestGameRuleErrors(t *testing.T) {
	g := gen.Chain(3)
	topo := Distributed(2, 1, 3, 4, 8)
	game, err := NewGame(g, topo)
	if err != nil {
		t.Fatalf("NewGame: %v", err)
	}
	// Remote get needs a level-L pebble at another node.
	if err := game.RemoteGet(1, 0); err == nil {
		t.Errorf("expected remote-get failure")
	}
	// Output needs a level-L pebble.
	if err := game.Output(0, 0); err == nil {
		t.Errorf("expected output failure")
	}
	// Move up needs the parent to hold the value.
	if err := game.MoveUp(1, 0, 0); err == nil {
		t.Errorf("expected move-up failure")
	}
	// Move down needs a child to hold the value.
	if err := game.MoveDown(2, 0, 0); err == nil {
		t.Errorf("expected move-down failure")
	}
	// Move up into the last level and move down into level 1 are illegal.
	if err := game.MoveUp(3, 0, 0); err == nil {
		t.Errorf("expected move-up level failure")
	}
	if err := game.MoveDown(1, 0, 0); err == nil {
		t.Errorf("expected move-down level failure")
	}
	// Delete of an absent pebble fails.
	if err := game.Delete(Loc{Level: 1, Unit: 0}, 0); err == nil {
		t.Errorf("expected delete failure")
	}
	// Bad vertex / location arguments.
	if err := game.Input(0, 99); err == nil {
		t.Errorf("expected bad-vertex failure")
	}
	if err := game.Input(7, 0); err == nil {
		t.Errorf("expected bad-node failure")
	}
	if err := game.Compute(9, 1); err == nil {
		t.Errorf("expected bad-processor failure")
	}
	// Capacity is enforced: fill node 0's memory (capacity 8) with inputs...
	full := cdag.NewGraph("wide", 0)
	for i := 0; i < 10; i++ {
		full.AddInput("in")
	}
	game2, _ := NewGame(full, topo)
	placed := 0
	for i := 0; i < 10; i++ {
		if err := game2.Input(0, cdag.VertexID(i)); err != nil {
			break
		}
		placed++
	}
	if placed != 8 {
		t.Errorf("capacity not enforced: placed %d pebbles in a unit of capacity 8", placed)
	}
	// A remote get after the source node holds the value succeeds.
	if err := game2.Input(1, 9); err != nil {
		t.Fatalf("Input at node 1: %v", err)
	}
	if err := game2.RemoteGet(1, 0); err != nil {
		t.Fatalf("RemoteGet: %v", err)
	}
	s := game2.Snapshot()
	if s.HorizontalTraffic() != 1 || s.MaxNodeHorizontalTraffic() != 1 {
		t.Errorf("horizontal traffic wrong: %d", s.HorizontalTraffic())
	}
	var ruleErr *RuleError
	if err := game2.RemoteGet(1, 0); err == nil || !strings.Contains(err.Error(), "already present") {
		t.Errorf("expected duplicate remote-get failure, got %v", err)
	} else if !errorsAs(err, &ruleErr) {
		t.Errorf("error type = %T, want *RuleError", err)
	}
}

// errorsAs is a tiny local wrapper to avoid importing errors for one call.
func errorsAs(err error, target **RuleError) bool {
	re, ok := err.(*RuleError)
	if ok {
		*target = re
	}
	return ok
}

func TestPlaySingleNode(t *testing.T) {
	g := gen.DotProduct(8)
	topo := TwoLevel(1, 4, 1024)
	stats, err := Play(g, topo, SingleProcessor(g))
	if err != nil {
		t.Fatalf("Play: %v", err)
	}
	// All 16 inputs must travel memory -> registers at least once, and the
	// output must travel back down: vertical traffic >= 17.
	if stats.VerticalTraffic(1) < 17 {
		t.Errorf("vertical traffic = %d, want >= 17", stats.VerticalTraffic(1))
	}
	if stats.HorizontalTraffic() != 0 {
		t.Errorf("single node should need no remote gets, got %d", stats.HorizontalTraffic())
	}
	if stats.BlueTraffic() < 17 {
		t.Errorf("blue traffic = %d, want >= 17 (16 input loads + 1 output store)", stats.BlueTraffic())
	}
	if stats.TotalComputes() != int64(g.NumOperations()) {
		t.Errorf("computes = %d, want %d", stats.TotalComputes(), g.NumOperations())
	}
	if stats.String() == "" {
		t.Errorf("empty stats string")
	}
}

func TestPlayTwoNodesHorizontalTraffic(t *testing.T) {
	// A dot product split across two nodes: the reduction forces values
	// computed on node 1 to be fetched by node 0 (or vice versa), so remote
	// gets must appear.
	g := gen.DotProduct(16)
	topo := Distributed(2, 1, 4, 16, 4096)
	asg := RoundRobin(g, 2, 4)
	stats, err := Play(g, topo, asg)
	if err != nil {
		t.Fatalf("Play: %v", err)
	}
	if stats.HorizontalTraffic() == 0 {
		t.Errorf("expected remote gets when the reduction spans two nodes")
	}
	if stats.TotalComputes() != int64(g.NumOperations()) {
		t.Errorf("computes = %d, want %d", stats.TotalComputes(), g.NumOperations())
	}
	// Both processors did work.
	if stats.ComputesBy[0] == 0 || stats.ComputesBy[1] == 0 {
		t.Errorf("work not distributed: %v", stats.ComputesBy)
	}
}

func TestPlaySmallCacheIncreasesVerticalTraffic(t *testing.T) {
	g := gen.MatMul(4).Graph
	big := Distributed(1, 1, 8, 256, 8192)
	small := Distributed(1, 1, 8, 16, 8192)
	asg := SingleProcessor(g)
	bigStats, err := Play(g, big, asg)
	if err != nil {
		t.Fatalf("Play big: %v", err)
	}
	smallStats, err := Play(g, small, asg)
	if err != nil {
		t.Fatalf("Play small: %v", err)
	}
	// A smaller cache must not reduce cache<->memory traffic.
	if smallStats.VerticalTraffic(2) < bigStats.VerticalTraffic(2) {
		t.Errorf("smaller cache produced less traffic: %d vs %d",
			smallStats.VerticalTraffic(2), bigStats.VerticalTraffic(2))
	}
}

func TestPlayJacobiBlockPartition(t *testing.T) {
	// 1-D Jacobi over 2 nodes with an owner-compute block partition: the
	// ghost-cell exchange at the block boundary shows up as remote gets, and
	// their count stays far below the per-node compute count.
	jr := gen.Jacobi(1, 32, 8, StencilStarForTest())
	g := jr.Graph
	owner := make([]int, g.NumVertices())
	for t1 := 0; t1 <= jr.Steps; t1++ {
		for c, v := range jr.Layer[t1] {
			node := 0
			if c >= 16 {
				node = 1
			}
			owner[v] = node
		}
	}
	topo := Distributed(2, 1, 4, 64, 8192)
	asg := OwnerCompute(g, owner)
	stats, err := Play(g, topo, asg)
	if err != nil {
		t.Fatalf("Play: %v", err)
	}
	if stats.HorizontalTraffic() == 0 {
		t.Errorf("expected ghost-cell remote gets")
	}
	// Ghost exchange is one value per step per boundary: far less than the
	// total work of 32×8 vertices.
	if stats.HorizontalTraffic() > int64(jr.Steps*8) {
		t.Errorf("horizontal traffic %d unexpectedly high", stats.HorizontalTraffic())
	}
}

// StencilStarForTest re-exports the star stencil constant without importing
// gen's identifier into the test names above.
func StencilStarForTest() gen.StencilKind { return gen.StencilStar }

func TestPlayErrors(t *testing.T) {
	g := gen.Chain(4)
	topo := TwoLevel(2, 4, 64)
	// Mismatched order/proc lengths.
	if _, err := Play(g, topo, Assignment{Order: []cdag.VertexID{1}, Proc: []int{0, 1}}); err == nil {
		t.Errorf("expected length mismatch error")
	}
	// Scheduled input.
	if _, err := Play(g, topo, Assignment{Order: []cdag.VertexID{0, 1, 2, 3}, Proc: []int{0, 0, 0, 0}}); err == nil {
		t.Errorf("expected scheduled-input error")
	}
	// Processor out of range.
	if _, err := Play(g, topo, Assignment{Order: []cdag.VertexID{1, 2, 3}, Proc: []int{0, 0, 9}}); err == nil {
		t.Errorf("expected processor range error")
	}
	// Missing vertex.
	if _, err := Play(g, topo, Assignment{Order: []cdag.VertexID{1, 2}, Proc: []int{0, 0}}); err == nil {
		t.Errorf("expected missing-vertex error")
	}
	// Dependence violation.
	if _, err := Play(g, topo, Assignment{Order: []cdag.VertexID{2, 1, 3}, Proc: []int{0, 0, 0}}); err == nil {
		t.Errorf("expected dependence error")
	}
	// Register file too small for the in-degree.
	d := gen.DotProduct(4)
	tiny := TwoLevel(1, 2, 64)
	if _, err := Play(d, tiny, SingleProcessor(d)); err == nil {
		t.Errorf("expected register-capacity error")
	}
	// Invalid topology.
	if _, err := Play(g, Topology{}, SingleProcessor(g)); err == nil {
		t.Errorf("expected topology error")
	}
}

func TestRoundRobinAndOwnerCompute(t *testing.T) {
	g := gen.Chain(10)
	asg := RoundRobin(g, 3, 2)
	if len(asg.Order) != 9 || len(asg.Proc) != 9 {
		t.Fatalf("assignment sizes wrong")
	}
	seen := map[int]bool{}
	for _, p := range asg.Proc {
		seen[p] = true
	}
	if len(seen) != 3 {
		t.Errorf("round robin used %d processors, want 3", len(seen))
	}
	oc := OwnerCompute(g, nil)
	for _, p := range oc.Proc {
		if p != 0 {
			t.Errorf("OwnerCompute default should be processor 0")
		}
	}
}
