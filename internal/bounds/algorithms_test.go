package bounds

import (
	"math"
	"testing"
)

// TestPowInt covers the integer power helper, including the negative
// exponents that used to fall through to 1.
func TestPowInt(t *testing.T) {
	cases := []struct {
		base float64
		exp  int
		want float64
	}{
		{2, 0, 1},
		{2, 1, 2},
		{2, 10, 1024},
		{3, 3, 27},
		{0.5, 2, 0.25},
		{10, -1, 0.1},
		{2, -3, 0.125},
		{4, -2, 0.0625},
		{1, -100, 1},
		{0, 3, 0},
		{-2, 2, 4},
		{-2, 3, -8},
		{-2, -2, 0.25},
	}
	for _, tc := range cases {
		got := powInt(tc.base, tc.exp)
		if math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("powInt(%g, %d) = %g, want %g", tc.base, tc.exp, got, tc.want)
		}
	}
	// Infinity handling follows IEEE division: 0^-1 is +Inf.
	if got := powInt(0, -1); !math.IsInf(got, 1) {
		t.Errorf("powInt(0, -1) = %g, want +Inf", got)
	}
}
