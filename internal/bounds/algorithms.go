package bounds

import (
	"fmt"
	"math"
)

// powInt returns base^exp for small integer exponents.  Negative exponents
// yield the reciprocal power (previously they silently returned 1, corrupting
// any bound evaluated with an inverted parameterization).
func powInt(base float64, exp int) float64 {
	if exp < 0 {
		return 1 / powInt(base, -exp)
	}
	out := 1.0
	for i := 0; i < exp; i++ {
		out *= base
	}
	return out
}

// --- Conjugate Gradient (Section 5.2, Theorem 8) ----------------------------

// CGParams describes a CG workload on a d-dimensional grid with n points per
// dimension, run for T outer iterations on P processors distributed over
// Nodes nodes.
type CGParams struct {
	Dim        int
	N          int
	Iterations int
	Processors int
	Nodes      int
}

// Points returns n^d.
func (p CGParams) Points() float64 { return powInt(float64(p.N), p.Dim) }

// Flops returns the paper's operation count for CG on a 3-D grid, 20·n^d·T,
// generalized to d dimensions as (4d+8)·n^d·T (SpMV 2(2d+1)−1 ≈ 4d+1 plus
// three dot products ≈ 6 and three AXPYs ≈ 6 per point per iteration; for
// d = 3 this is the paper's 20·n³·T).
func (p CGParams) Flops() float64 {
	return float64(4*p.Dim+8) * p.Points() * float64(p.Iterations)
}

// CGVerticalLower returns the min-cut lower bound of Theorem 8 on the data
// movement of CG per processor: exactly T·2·(3n^d − 2S) in words, which tends
// to 6·n^d·T as n ≫ S, divided by P for the parallel case (Theorem 5).
func CGVerticalLower(p CGParams, s int64) Bound {
	perIteration := 2 * (3*p.Points() - 2*float64(s))
	if perIteration < 0 {
		perIteration = 0
	}
	total := perIteration * float64(p.Iterations)
	procs := float64(p.Processors)
	if procs < 1 {
		procs = 1
	}
	return Bound{
		Value:       total / procs,
		Kind:        Lower,
		Technique:   "CG min-cut wavefront (Theorem 8)",
		Assumptions: fmt.Sprintf("d=%d, n=%d, T=%d, S=%d", p.Dim, p.N, p.Iterations, s),
	}
}

// CGVerticalLowerAsymptotic returns the asymptotic form 6·n^d·T / P used in
// the Section 5.2.3 balance analysis.
func CGVerticalLowerAsymptotic(p CGParams) Bound {
	procs := float64(p.Processors)
	if procs < 1 {
		procs = 1
	}
	return Bound{
		Value:       6 * p.Points() * float64(p.Iterations) / procs,
		Kind:        Lower,
		Technique:   "CG min-cut wavefront (Theorem 8)",
		Assumptions: "asymptotic, n >> S",
	}
}

// CGHorizontalUpper returns the ghost-cell communication upper bound of
// Section 5.2.2: ((B+2)^d − B^d)·T words per node, with block size
// B = n / Nodes^{1/d}.
func CGHorizontalUpper(p CGParams) Bound {
	nodes := float64(p.Nodes)
	if nodes < 1 {
		nodes = 1
	}
	b := float64(p.N) / math.Pow(nodes, 1/float64(p.Dim))
	v := (powInt(b+2, p.Dim) - powInt(b, p.Dim)) * float64(p.Iterations)
	return Bound{
		Value:       v,
		Kind:        Upper,
		Technique:   "CG block-partition ghost cells (Section 5.2.2)",
		Assumptions: fmt.Sprintf("block size B=%.4g", b),
	}
}

// CGVerticalPerFlop returns the left-hand side of Equation (9) for CG:
// LB_vert · N_nodes / |V|, which Section 5.2.3 evaluates to 6/20 = 0.3 for
// d = 3.
func CGVerticalPerFlop(p CGParams) float64 {
	lb := CGVerticalLowerAsymptotic(p)
	nodes := float64(p.Nodes)
	if nodes < 1 {
		nodes = 1
	}
	// LB is per processor; per node it is LB · (P/Nodes), so
	// LB_vert,node · Nodes / |V| = LB · P / |V|.
	return lb.Value * float64(p.Processors) / p.Flops()
}

// CGHorizontalPerFlop returns the left-hand side of Equation (10) for CG:
// UB_horiz · N_nodes / |V| = 6·Nodes^{1/d} / ((4d+8)·n) asymptotically, the
// quantity Section 5.2.3 compares against the horizontal machine balance.
func CGHorizontalPerFlop(p CGParams) float64 {
	ub := CGHorizontalUpper(p)
	nodes := float64(p.Nodes)
	if nodes < 1 {
		nodes = 1
	}
	return ub.Value * nodes / p.Flops()
}

// --- GMRES (Section 5.3, Theorem 9) -----------------------------------------

// GMRESParams describes a GMRES workload: m outer (Krylov) iterations on a
// d-dimensional grid of n^d points, on P processors over Nodes nodes.
type GMRESParams struct {
	Dim        int
	N          int
	Iterations int // m
	Processors int
	Nodes      int
}

// Points returns n^d.
func (p GMRESParams) Points() float64 { return powInt(float64(p.N), p.Dim) }

// Flops returns the paper's operation count 20·n^d·m + n^d·m² (Section 5.3.3),
// with the 20 generalized to 4d+8 for d ≠ 3.
func (p GMRESParams) Flops() float64 {
	m := float64(p.Iterations)
	return float64(4*p.Dim+8)*p.Points()*m + p.Points()*m*m
}

// GMRESVerticalLower returns the Theorem 9 lower bound m·2·(3n^d − S) / P,
// tending to 6·n^d·m / P for n ≫ S.  (The paper states 2·(3n^d − S) per
// iteration although its two Lemma-2 terms sum to 2·(3n^d − 2S); the two
// forms coincide asymptotically and we keep the published constant here —
// core.GMRESMinCutBound computes the per-iteration sum executably.)
func GMRESVerticalLower(p GMRESParams, s int64) Bound {
	perIteration := 2 * (3*p.Points() - float64(s))
	if perIteration < 0 {
		perIteration = 0
	}
	procs := float64(p.Processors)
	if procs < 1 {
		procs = 1
	}
	return Bound{
		Value:       perIteration * float64(p.Iterations) / procs,
		Kind:        Lower,
		Technique:   "GMRES min-cut wavefront (Theorem 9)",
		Assumptions: fmt.Sprintf("d=%d, n=%d, m=%d, S=%d", p.Dim, p.N, p.Iterations, s),
	}
}

// GMRESVerticalLowerAsymptotic returns 6·n^d·m / P.
func GMRESVerticalLowerAsymptotic(p GMRESParams) Bound {
	procs := float64(p.Processors)
	if procs < 1 {
		procs = 1
	}
	return Bound{
		Value:       6 * p.Points() * float64(p.Iterations) / procs,
		Kind:        Lower,
		Technique:   "GMRES min-cut wavefront (Theorem 9)",
		Assumptions: "asymptotic, n >> S",
	}
}

// GMRESHorizontalUpper returns the ghost-cell upper bound O(2d·B^{d−1}·m),
// analogous to CG's (Section 5.3.2).
func GMRESHorizontalUpper(p GMRESParams) Bound {
	nodes := float64(p.Nodes)
	if nodes < 1 {
		nodes = 1
	}
	b := float64(p.N) / math.Pow(nodes, 1/float64(p.Dim))
	v := (powInt(b+2, p.Dim) - powInt(b, p.Dim)) * float64(p.Iterations)
	return Bound{
		Value:       v,
		Kind:        Upper,
		Technique:   "GMRES block-partition ghost cells (Section 5.3.2)",
		Assumptions: fmt.Sprintf("block size B=%.4g", b),
	}
}

// GMRESVerticalPerFlop returns LB_vert·Nodes/|V| = 6/(m+20) for d = 3
// (Section 5.3.3), computed from the general formulas.
func GMRESVerticalPerFlop(p GMRESParams) float64 {
	lb := GMRESVerticalLowerAsymptotic(p)
	return lb.Value * float64(p.Processors) / p.Flops()
}

// GMRESHorizontalPerFlop returns UB_horiz·Nodes/|V| ≈ 6·Nodes^{1/d}/(n·m) for
// d = 3 (Section 5.3.3).
func GMRESHorizontalPerFlop(p GMRESParams) float64 {
	ub := GMRESHorizontalUpper(p)
	nodes := float64(p.Nodes)
	if nodes < 1 {
		nodes = 1
	}
	return ub.Value * nodes / p.Flops()
}

// --- Jacobi stencils (Section 5.4, Theorem 10) ------------------------------

// JacobiParams describes a d-dimensional Jacobi stencil sweep: an n^d grid
// advanced for T time steps on P processors over Nodes nodes.
type JacobiParams struct {
	Dim        int
	N          int
	Steps      int
	Processors int
	Nodes      int
}

// Points returns n^d.
func (p JacobiParams) Points() float64 { return powInt(float64(p.N), p.Dim) }

// Flops returns the vertex count n^d·T used as the work term |V| in the
// balance analysis (one weighted-average update per grid point per step).
func (p JacobiParams) Flops() float64 { return p.Points() * float64(p.Steps) }

// JacobiLower returns the Theorem 10 lower bound n^d·T / (4·P·(2S)^{1/d}).
func JacobiLower(p JacobiParams, s int64) Bound {
	procs := float64(p.Processors)
	if procs < 1 {
		procs = 1
	}
	denom := 4 * procs * math.Pow(2*float64(s), 1/float64(p.Dim))
	return Bound{
		Value:       p.Points() * float64(p.Steps) / denom,
		Kind:        Lower,
		Technique:   "Jacobi disjoint-path lines (Theorem 10)",
		Assumptions: fmt.Sprintf("d=%d, n=%d, T=%d, S=%d", p.Dim, p.N, p.Steps, s),
	}
}

// JacobiHorizontalUpper returns the ghost-cell communication of the block
// partition: 2d·B^{d−1}·T words per node with B = n / Nodes^{1/d}
// (the paper's 4BT for d = 2).
func JacobiHorizontalUpper(p JacobiParams) Bound {
	nodes := float64(p.Nodes)
	if nodes < 1 {
		nodes = 1
	}
	b := float64(p.N) / math.Pow(nodes, 1/float64(p.Dim))
	return Bound{
		Value:       float64(2*p.Dim) * powInt(b, p.Dim-1) * float64(p.Steps),
		Kind:        Upper,
		Technique:   "Jacobi block-partition ghost cells (Section 5.4.2)",
		Assumptions: fmt.Sprintf("block size B=%.4g", b),
	}
}

// JacobiVerticalPerFlop returns the left-hand side of the Section 5.4.3
// balance condition: S_{l−1} / U(C, 2S_{l−1}) = 1 / (4·(2S)^{1/d}).
func JacobiVerticalPerFlop(dim int, s int64) float64 {
	return 1 / (4 * math.Pow(2*float64(s), 1/float64(dim)))
}

// JacobiMaxUnboundDimension returns the largest stencil dimensionality d for
// which the computation is NOT vertically bandwidth bound on a machine with
// balance beta and fast memory S at the level under study: the d satisfying
// 1/(4·(2S)^{1/d}) ≤ beta, i.e. d ≤ log(2S) / log2(1/(4·beta))... solving
// 4·(2S)^{1/d} ≥ 1/beta for d.  (Section 5.4.3 obtains d ≤ 4.83 for the
// IBM BG/Q main-memory/L2 boundary with S = 4 MWords.)
func JacobiMaxUnboundDimension(beta float64, s int64) float64 {
	if beta <= 0 || s <= 0 {
		return 0
	}
	threshold := 1 / (4 * beta) // need (2S)^{1/d} >= threshold
	if threshold <= 1 {
		return math.Inf(1) // any dimension satisfies the condition
	}
	return math.Log(2*float64(s)) / math.Log(threshold)
}
