package bounds

import (
	"math"
	"strings"
	"testing"
)

func TestBoundString(t *testing.T) {
	b := Bound{Value: 42, Kind: Lower, Technique: "test", Assumptions: "exact"}
	s := b.String()
	if !strings.Contains(s, "lower") || !strings.Contains(s, "42") || !strings.Contains(s, "exact") {
		t.Errorf("String = %q", s)
	}
	if Upper.String() != "upper" || Lower.String() != "lower" {
		t.Errorf("kind strings wrong")
	}
}

func TestCompositionHelpers(t *testing.T) {
	d := Decomposition([]Bound{
		{Value: 10, Kind: Lower},
		{Value: 5, Kind: Lower},
		{Value: 100, Kind: Upper}, // ignored: not a lower bound
	})
	if d.Value != 15 || d.Kind != Lower {
		t.Errorf("Decomposition = %+v", d)
	}
	io := IODeletion(Bound{Value: 7, Kind: Lower, Technique: "inner"}, 3, 2)
	if io.Value != 12 {
		t.Errorf("IODeletion = %v", io.Value)
	}
	tag := Tagging(Bound{Value: 7, Kind: Lower, Technique: "inner"}, 3, 2)
	if tag.Value != 2 {
		t.Errorf("Tagging = %v", tag.Value)
	}
	if Tagging(Bound{Value: 1, Kind: Lower}, 5, 5).Value != 0 {
		t.Errorf("Tagging should clamp at 0")
	}
}

func TestParallelConversions(t *testing.T) {
	v := VerticalFromSequential(Bound{Value: 1000, Kind: Lower, Technique: "seq"}, 4)
	if v.Value != 250 {
		t.Errorf("VerticalFromSequential = %v", v.Value)
	}
	if VerticalFromSequential(Bound{Value: 100, Kind: Lower}, 0).Value != 100 {
		t.Errorf("nL=0 should behave like 1")
	}

	// Theorem 6: |V|=1000, U=10, S=4, N_{l-1}=8, N_l=2:
	// (1000/(10*2) - 8/2) * 4 = (50-4)*4 = 184.
	p := VerticalFromPartition(1000, 10, 4, 8, 2)
	if p.Value != 184 {
		t.Errorf("VerticalFromPartition = %v, want 184", p.Value)
	}
	if VerticalFromPartition(10, 1000, 4, 8, 2).Value != 0 {
		t.Errorf("negative partition bound should clamp to 0")
	}
	if VerticalFromPartition(10, 0, 4, 8, 2).Value != 0 {
		t.Errorf("u2S=0 should yield 0")
	}

	// Theorem 7: |V|=1000, U=10, S_L=16, P_i=4: (1000/40 - 1)*16 = 384.
	h := HorizontalFromPartition(1000, 10, 16, 4)
	if h.Value != 384 {
		t.Errorf("HorizontalFromPartition = %v, want 384", h.Value)
	}
	if HorizontalFromPartition(10, 10, 16, 4).Value != 0 {
		t.Errorf("small |V| should clamp to 0")
	}
}

func TestKernelClosedForms(t *testing.T) {
	m := MatMulLower(100, 128)
	want := 1e6 / (2 * math.Sqrt(256))
	if math.Abs(m.Value-want) > 1e-9 {
		t.Errorf("MatMulLower = %v, want %v", m.Value, want)
	}
	o := OuterProductIO(10)
	if o.Value != 120 {
		t.Errorf("OuterProductIO = %v, want 120", o.Value)
	}
	c := CompositeUpper(10)
	if c.Value != 41 || c.Kind != Upper {
		t.Errorf("CompositeUpper = %+v", c)
	}
	f := FFTLower(1024, 32)
	wantF := 1024 * 10 / (2 * math.Log2(64))
	if math.Abs(f.Value-wantF) > 1e-9 {
		t.Errorf("FFTLower = %v, want %v", f.Value, wantF)
	}
	if FFTLower(1, 0).Value != 0 {
		t.Errorf("degenerate FFTLower should be 0")
	}
}

func TestCGSection523Numbers(t *testing.T) {
	// The headline number of Section 5.2.3: for d=3, n=1000,
	// LB_vert · N_nodes / |V| = 6/20 = 0.3, independent of T and the machine.
	p := CGParams{Dim: 3, N: 1000, Iterations: 10, Processors: 2048 * 16, Nodes: 2048}
	got := CGVerticalPerFlop(p)
	if math.Abs(got-0.3) > 1e-9 {
		t.Errorf("CG vertical per FLOP = %v, want 0.3", got)
	}
	// Horizontal: 6·Nodes^{1/3} / (20·n).
	want := 6 * math.Cbrt(2048) / (20 * 1000)
	goth := CGHorizontalPerFlop(p)
	if math.Abs(goth-want)/want > 0.25 {
		t.Errorf("CG horizontal per FLOP = %v, want about %v", goth, want)
	}
	// The horizontal value is orders of magnitude below the vertical one.
	if goth > got/10 {
		t.Errorf("horizontal (%v) should be far below vertical (%v)", goth, got)
	}
	// Operation count matches the paper's 20·n³·T for d=3.
	if p.Flops() != 20*1e9*10 {
		t.Errorf("CG flops = %v", p.Flops())
	}
}

func TestCGBoundsShape(t *testing.T) {
	p := CGParams{Dim: 2, N: 100, Iterations: 5, Processors: 16, Nodes: 4}
	exact := CGVerticalLower(p, 64)
	asym := CGVerticalLowerAsymptotic(p)
	if exact.Value <= 0 || asym.Value <= 0 {
		t.Fatalf("CG bounds not positive: %v %v", exact.Value, asym.Value)
	}
	// The exact form is below the asymptotic form (it subtracts the 2S term).
	if exact.Value > asym.Value {
		t.Errorf("exact %v exceeds asymptotic %v", exact.Value, asym.Value)
	}
	// S larger than the grid wipes out the bound.
	if CGVerticalLower(p, 1<<30).Value != 0 {
		t.Errorf("huge S should clamp the bound to 0")
	}
	ub := CGHorizontalUpper(p)
	if ub.Kind != Upper || ub.Value <= 0 {
		t.Errorf("CG horizontal upper = %+v", ub)
	}
}

func TestGMRESSection533Numbers(t *testing.T) {
	// Section 5.3.3: LB_vert·Nodes/|V| = 6/(m+20) for d=3.
	for _, m := range []int{1, 5, 20, 100} {
		p := GMRESParams{Dim: 3, N: 1000, Iterations: m, Processors: 2048 * 16, Nodes: 2048}
		got := GMRESVerticalPerFlop(p)
		want := 6.0 / (float64(m) + 20)
		if math.Abs(got-want)/want > 1e-9 {
			t.Errorf("m=%d: GMRES vertical per FLOP = %v, want %v", m, got, want)
		}
	}
	// Horizontal: ≈ 6·Nodes^{1/3}/(n·m) — must sit far below the vertical value.
	p := GMRESParams{Dim: 3, N: 1000, Iterations: 10, Processors: 2048 * 16, Nodes: 2048}
	h := GMRESHorizontalPerFlop(p)
	if h <= 0 || h > GMRESVerticalPerFlop(p)/10 {
		t.Errorf("GMRES horizontal per FLOP = %v not far below vertical %v", h, GMRESVerticalPerFlop(p))
	}
}

func TestGMRESBoundsShape(t *testing.T) {
	p := GMRESParams{Dim: 2, N: 64, Iterations: 8, Processors: 8, Nodes: 2}
	if GMRESVerticalLower(p, 16).Value <= 0 {
		t.Errorf("GMRES lower bound not positive")
	}
	if GMRESVerticalLower(p, 1<<30).Value != 0 {
		t.Errorf("huge S should clamp to 0")
	}
	if GMRESVerticalLower(p, 16).Value > GMRESVerticalLowerAsymptotic(p).Value {
		t.Errorf("exact exceeds asymptotic")
	}
	if GMRESHorizontalUpper(p).Value <= 0 {
		t.Errorf("GMRES horizontal upper not positive")
	}
}

func TestJacobiTheorem10(t *testing.T) {
	// 2-D: Q >= n²T / (4·P·√(2S)).
	p := JacobiParams{Dim: 2, N: 1000, Steps: 100, Processors: 4, Nodes: 1}
	s := int64(5000)
	got := JacobiLower(p, s).Value
	want := 1e6 * 100 / (4 * 4 * math.Sqrt(2*5000))
	if math.Abs(got-want)/want > 1e-12 {
		t.Errorf("JacobiLower = %v, want %v", got, want)
	}
	// The per-FLOP bound 1/(4·(2S)^{1/d}) grows with the dimension — the
	// mechanism behind Section 5.4.3's conclusion that only high-dimensional
	// stencils become bandwidth bound.
	if JacobiVerticalPerFlop(3, s) <= JacobiVerticalPerFlop(2, s) {
		t.Errorf("per-FLOP bound should increase with dimension: d=3 %v vs d=2 %v",
			JacobiVerticalPerFlop(3, s), JacobiVerticalPerFlop(2, s))
	}
	// Horizontal ghost cells: 2d·B^{d−1}·T.
	h := JacobiHorizontalUpper(JacobiParams{Dim: 2, N: 1000, Steps: 10, Processors: 16, Nodes: 4})
	wantH := 4.0 * (1000 / math.Sqrt(4)) * 10
	if math.Abs(h.Value-wantH)/wantH > 1e-12 {
		t.Errorf("JacobiHorizontalUpper = %v, want %v", h.Value, wantH)
	}
}

func TestJacobiMaxUnboundDimension(t *testing.T) {
	// With the BG/Q main-memory balance 0.052 and S2 = 4 MWords the threshold
	// dimension is finite and at least the practically relevant d = 4; with
	// the much larger L1/L2 balance the threshold is far higher.
	dMem := JacobiMaxUnboundDimension(0.052, 4_000_000)
	if math.IsInf(dMem, 1) || dMem < 4 || dMem > 20 {
		t.Errorf("BG/Q memory threshold dimension = %v, want a finite value in [4,20]", dMem)
	}
	dCache := JacobiMaxUnboundDimension(0.5, 4_000_000)
	if !math.IsInf(dCache, 1) && dCache < dMem {
		t.Errorf("larger balance should not lower the threshold: %v vs %v", dCache, dMem)
	}
	if JacobiMaxUnboundDimension(0, 100) != 0 || JacobiMaxUnboundDimension(0.1, 0) != 0 {
		t.Errorf("degenerate inputs should give 0")
	}
	// A balance above 1/4 admits every dimension.
	if !math.IsInf(JacobiMaxUnboundDimension(0.3, 100), 1) {
		t.Errorf("balance > 1/4 should admit every dimension")
	}
}

func TestFlopsCounts(t *testing.T) {
	cg := CGParams{Dim: 3, N: 10, Iterations: 2}
	if cg.Flops() != 20*1000*2 {
		t.Errorf("CG flops = %v", cg.Flops())
	}
	gm := GMRESParams{Dim: 3, N: 10, Iterations: 4}
	if gm.Flops() != 20*1000*4+1000*16 {
		t.Errorf("GMRES flops = %v", gm.Flops())
	}
	ja := JacobiParams{Dim: 2, N: 10, Steps: 7}
	if ja.Flops() != 700 {
		t.Errorf("Jacobi flops = %v", ja.Flops())
	}
	if cg.Points() != 1000 || gm.Points() != 1000 || ja.Points() != 100 {
		t.Errorf("points wrong")
	}
}
