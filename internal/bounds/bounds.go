// Package bounds collects the data-movement bounds the paper derives:
// generic composition theorems (decomposition, input/output deletion,
// tagging, non-disjoint decomposition), the parallel conversion theorems
// (vertical and horizontal I/O, Theorems 5–7), and the closed-form bounds for
// the algorithms analyzed in Section 5 (matrix multiplication, CG, GMRES,
// Jacobi stencils) plus the classical kernels used as cross-checks.
//
// Every bound is reported as a Bound value carrying the number, its
// direction (lower or upper), the technique that produced it and the
// asymptotic regime it assumes, so reports and benchmarks can print
// meaningful provenance next to each figure.
package bounds

import (
	"fmt"
	"math"
)

// Kind distinguishes lower bounds from upper bounds.
type Kind int

const (
	// Lower marks a lower bound on data movement.
	Lower Kind = iota
	// Upper marks an upper bound (the cost of an explicit schedule).
	Upper
)

// String returns "lower" or "upper".
func (k Kind) String() string {
	if k == Upper {
		return "upper"
	}
	return "lower"
}

// Bound is one data-movement bound together with its provenance.
type Bound struct {
	// Value is the bound in words (values moved).
	Value float64
	// Kind says whether Value bounds the data movement from below or above.
	Kind Kind
	// Technique names the result that produced the bound
	// ("2S-partition / Corollary 1", "min-cut wavefront / Lemma 2", ...).
	Technique string
	// Assumptions states the regime in which the bound holds
	// ("asymptotic, n >> S", "exact", ...).
	Assumptions string
}

// String renders the bound.
func (b Bound) String() string {
	s := fmt.Sprintf("%s bound %.6g words [%s]", b.Kind, b.Value, b.Technique)
	if b.Assumptions != "" {
		s += " (" + b.Assumptions + ")"
	}
	return s
}

// --- Generic composition results -------------------------------------------

// Decomposition composes per-sub-CDAG lower bounds by addition (Theorem 2):
// for any disjoint partitioning of the vertices, the sum of the sub-CDAGs'
// I/O lower bounds is a lower bound for the whole CDAG.
func Decomposition(sub []Bound) Bound {
	var total float64
	for _, b := range sub {
		if b.Kind != Lower {
			continue
		}
		total += b.Value
	}
	return Bound{Value: total, Kind: Lower, Technique: "decomposition (Theorem 2)"}
}

// IODeletion lifts a lower bound on the input/output-stripped CDAG C to the
// original CDAG C′ that additionally contains dI input and dO output vertices
// (Corollary 2): IO(C′) ≥ IO(C) + |dI| + |dO|.
func IODeletion(inner Bound, dI, dO int) Bound {
	return Bound{
		Value:       inner.Value + float64(dI) + float64(dO),
		Kind:        Lower,
		Technique:   "input/output deletion (Corollary 2) over " + inner.Technique,
		Assumptions: inner.Assumptions,
	}
}

// Tagging converts a lower bound proven on a CDAG with extra input/output
// tags (C′) into a lower bound for the original CDAG C (Theorem 3):
// IO(C) ≥ IO(C′) − |dI| − |dO|.
func Tagging(tagged Bound, dI, dO int) Bound {
	v := tagged.Value - float64(dI) - float64(dO)
	if v < 0 {
		v = 0
	}
	return Bound{
		Value:       v,
		Kind:        Lower,
		Technique:   "tagging (Theorem 3) over " + tagged.Technique,
		Assumptions: tagged.Assumptions,
	}
}

// --- Parallel conversion theorems ------------------------------------------

// VerticalFromSequential applies Theorem 5: the busiest level-l storage unit
// moves at least IO1(C, S_{l−1}·N_{l−1}) / N_l words, where seqLower is a
// sequential lower bound computed with fast-memory capacity S_{l−1}·N_{l−1}
// and nL is the number of level-l units.
func VerticalFromSequential(seqLower Bound, nL int) Bound {
	if nL < 1 {
		nL = 1
	}
	return Bound{
		Value:       seqLower.Value / float64(nL),
		Kind:        Lower,
		Technique:   "vertical parallel conversion (Theorem 5) over " + seqLower.Technique,
		Assumptions: seqLower.Assumptions,
	}
}

// VerticalFromPartition applies Theorem 6: the busiest level-l unit moves at
// least (|V| / (U(2S_{l−1})·N_l) − N_{l−1}/N_l) · S_{l−1} words, where u2S
// bounds the largest 2S-partition vertex set.
func VerticalFromPartition(numVertices int64, u2S int64, sLm1, nLm1, nL int) Bound {
	if u2S < 1 || nL < 1 {
		return Bound{Kind: Lower, Technique: "vertical 2S-partition (Theorem 6)"}
	}
	v := (float64(numVertices)/(float64(u2S)*float64(nL)) - float64(nLm1)/float64(nL)) * float64(sLm1)
	if v < 0 {
		v = 0
	}
	return Bound{
		Value:     v,
		Kind:      Lower,
		Technique: "vertical 2S-partition (Theorem 6)",
	}
}

// HorizontalFromPartition applies Theorem 7: the node group performing the
// most computation issues at least (|V| / (U(2S_L)·P_i) − 1) · S_L remote
// gets, where pI is the number of level-L storage units (node groups).
func HorizontalFromPartition(numVertices int64, u2SL int64, sL, pI int) Bound {
	if u2SL < 1 || pI < 1 {
		return Bound{Kind: Lower, Technique: "horizontal 2S-partition (Theorem 7)"}
	}
	v := (float64(numVertices)/(float64(u2SL)*float64(pI)) - 1) * float64(sL)
	if v < 0 {
		v = 0
	}
	return Bound{
		Value:     v,
		Kind:      Lower,
		Technique: "horizontal 2S-partition (Theorem 7)",
	}
}

// --- Closed forms for classical kernels -------------------------------------

// MatMulLower returns the classical sequential I/O lower bound for n×n
// matrix multiplication with fast memory S: n³ / (2·√(2S)).
func MatMulLower(n int, s int) Bound {
	return Bound{
		Value:       float64(n) * float64(n) * float64(n) / (2 * math.Sqrt(2*float64(s))),
		Kind:        Lower,
		Technique:   "matmul 2S-partition (Hong & Kung)",
		Assumptions: "asymptotic, n >> S",
	}
}

// OuterProductIO returns the exact I/O cost of an n×n outer product:
// 2n input loads plus n² result stores, independent of S.
func OuterProductIO(n int) Bound {
	return Bound{
		Value:     float64(2*n) + float64(n)*float64(n),
		Kind:      Lower,
		Technique: "outer product compulsory I/O",
	}
}

// CompositeUpper returns the I/O cost of the Section-3 strategy for the
// composite computation sum((p·qᵀ)(r·sᵀ)): 4n loads plus one store, feasible
// with 4n+4 words of fast memory (recomputation allowed).
func CompositeUpper(n int) Bound {
	return Bound{
		Value:       float64(4*n) + 1,
		Kind:        Upper,
		Technique:   "composite recomputation strategy (Section 3)",
		Assumptions: "S >= 4n+4, Hong-Kung game",
	}
}

// FFTLower returns the classical Ω(n·log n / log S) sequential I/O lower
// bound for the n-point FFT butterfly, in the normalized form
// n·log₂(n) / (2·log₂(2S)).
func FFTLower(n, s int) Bound {
	if n < 2 || s < 1 {
		return Bound{Kind: Lower, Technique: "FFT S-span"}
	}
	return Bound{
		Value:       float64(n) * math.Log2(float64(n)) / (2 * math.Log2(2*float64(s))),
		Kind:        Lower,
		Technique:   "FFT S-span (Hong & Kung / Savage)",
		Assumptions: "asymptotic, n >> S",
	}
}
