package linalg

import (
	"fmt"
	"sort"
)

// CSR is a sparse matrix in compressed sparse row format.
type CSR struct {
	Rows, Cols int
	RowPtr     []int     // length Rows+1
	ColIdx     []int     // length NNZ
	Values     []float64 // length NNZ
}

// NNZ returns the number of stored non-zeros.
func (m *CSR) NNZ() int { return len(m.Values) }

// coord is a triplet used while assembling a CSR matrix.
type coord struct {
	r, c int
	v    float64
}

// CSRBuilder assembles a CSR matrix from (row, col, value) triplets.
// Duplicate coordinates are summed.
type CSRBuilder struct {
	rows, cols int
	entries    []coord
}

// NewCSRBuilder returns a builder for a rows×cols matrix.
func NewCSRBuilder(rows, cols int) *CSRBuilder {
	return &CSRBuilder{rows: rows, cols: cols}
}

// Add records the triplet (r, c, v).
func (b *CSRBuilder) Add(r, c int, v float64) {
	if r < 0 || r >= b.rows || c < 0 || c >= b.cols {
		panic(fmt.Sprintf("linalg: CSR entry (%d,%d) out of %dx%d", r, c, b.rows, b.cols))
	}
	b.entries = append(b.entries, coord{r, c, v})
}

// Build produces the CSR matrix.  Entries are sorted by (row, col) and
// duplicates are summed; explicit zeros are kept (they still represent
// dependences in a traced CDAG).
func (b *CSRBuilder) Build() *CSR {
	sort.Slice(b.entries, func(i, j int) bool {
		if b.entries[i].r != b.entries[j].r {
			return b.entries[i].r < b.entries[j].r
		}
		return b.entries[i].c < b.entries[j].c
	})
	m := &CSR{Rows: b.rows, Cols: b.cols, RowPtr: make([]int, b.rows+1)}
	for i := 0; i < len(b.entries); {
		j := i
		v := 0.0
		for j < len(b.entries) && b.entries[j].r == b.entries[i].r && b.entries[j].c == b.entries[i].c {
			v += b.entries[j].v
			j++
		}
		m.ColIdx = append(m.ColIdx, b.entries[i].c)
		m.Values = append(m.Values, v)
		m.RowPtr[b.entries[i].r+1]++
		i = j
	}
	for r := 0; r < b.rows; r++ {
		m.RowPtr[r+1] += m.RowPtr[r]
	}
	return m
}

// MulVec returns A·x as a new vector.
func (m *CSR) MulVec(x Vector) Vector {
	if len(x) != m.Cols {
		panic(fmt.Sprintf("linalg: CSR MulVec dimension mismatch %dx%d · %d", m.Rows, m.Cols, len(x)))
	}
	y := NewVector(m.Rows)
	for r := 0; r < m.Rows; r++ {
		var s float64
		for k := m.RowPtr[r]; k < m.RowPtr[r+1]; k++ {
			s += m.Values[k] * x[m.ColIdx[k]]
		}
		y[r] = s
	}
	return y
}

// Row returns the column indices and values of row r (views into the CSR
// arrays; do not modify).
func (m *CSR) Row(r int) (cols []int, vals []float64) {
	return m.ColIdx[m.RowPtr[r]:m.RowPtr[r+1]], m.Values[m.RowPtr[r]:m.RowPtr[r+1]]
}

// At returns element (r, c), zero if not stored.
func (m *CSR) At(r, c int) float64 {
	cols, vals := m.Row(r)
	for i, cc := range cols {
		if cc == c {
			return vals[i]
		}
	}
	return 0
}

// ToDense converts the matrix to dense form (for tests on small systems).
func (m *CSR) ToDense() *Dense {
	d := NewDense(m.Rows, m.Cols)
	for r := 0; r < m.Rows; r++ {
		cols, vals := m.Row(r)
		for i, c := range cols {
			d.Add(r, c, vals[i])
		}
	}
	return d
}

// IsSymmetric reports whether the matrix equals its transpose within tol.
func (m *CSR) IsSymmetric(tol float64) bool {
	if m.Rows != m.Cols {
		return false
	}
	for r := 0; r < m.Rows; r++ {
		cols, vals := m.Row(r)
		for i, c := range cols {
			d := m.At(c, r) - vals[i]
			if d > tol || d < -tol {
				return false
			}
		}
	}
	return true
}
