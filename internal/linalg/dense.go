package linalg

import "fmt"

// Dense is a row-major dense matrix.
type Dense struct {
	Rows, Cols int
	Data       []float64
}

// NewDense returns a zero Rows×Cols matrix.
func NewDense(rows, cols int) *Dense {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("linalg: negative dimensions %dx%d", rows, cols))
	}
	return &Dense{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns element (i, j).
func (m *Dense) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Dense) Set(i, j int, x float64) { m.Data[i*m.Cols+j] = x }

// Add accumulates x into element (i, j).
func (m *Dense) Add(i, j int, x float64) { m.Data[i*m.Cols+j] += x }

// Clone returns a deep copy of m.
func (m *Dense) Clone() *Dense {
	return &Dense{Rows: m.Rows, Cols: m.Cols, Data: append([]float64(nil), m.Data...)}
}

// MulVec returns A·x as a new vector.
func (m *Dense) MulVec(x Vector) Vector {
	if len(x) != m.Cols {
		panic(fmt.Sprintf("linalg: MulVec dimension mismatch %dx%d · %d", m.Rows, m.Cols, len(x)))
	}
	y := NewVector(m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		var s float64
		for j, a := range row {
			s += a * x[j]
		}
		y[i] = s
	}
	return y
}

// Mul returns the matrix product A·B.
func (m *Dense) Mul(b *Dense) *Dense {
	if m.Cols != b.Rows {
		panic(fmt.Sprintf("linalg: Mul dimension mismatch %dx%d · %dx%d", m.Rows, m.Cols, b.Rows, b.Cols))
	}
	c := NewDense(m.Rows, b.Cols)
	for i := 0; i < m.Rows; i++ {
		for k := 0; k < m.Cols; k++ {
			a := m.At(i, k)
			if a == 0 {
				continue
			}
			for j := 0; j < b.Cols; j++ {
				c.Add(i, j, a*b.At(k, j))
			}
		}
	}
	return c
}

// OuterProduct returns the rank-1 matrix u·vᵀ.
func OuterProduct(u, v Vector) *Dense {
	m := NewDense(len(u), len(v))
	for i, ui := range u {
		for j, vj := range v {
			m.Set(i, j, ui*vj)
		}
	}
	return m
}

// SumElements returns the sum of all elements of m.
func (m *Dense) SumElements() float64 {
	var s float64
	for _, x := range m.Data {
		s += x
	}
	return s
}

// Transpose returns Aᵀ as a new matrix.
func (m *Dense) Transpose() *Dense {
	t := NewDense(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Dense {
	m := NewDense(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}
