package linalg

import "fmt"

// Grid describes a d-dimensional regular computational grid with n points per
// dimension (the mesh obtained by discretizing a PDE domain, Section 5.1).
type Grid struct {
	Dim int // number of dimensions d
	N   int // points per dimension
}

// NewGrid returns a Grid with the given dimensionality and extent.  It panics
// on non-positive parameters.
func NewGrid(dim, n int) Grid {
	if dim <= 0 || n <= 0 {
		panic(fmt.Sprintf("linalg: invalid grid %d^%d", n, dim))
	}
	return Grid{Dim: dim, N: n}
}

// Points returns the total number of grid points n^d.
func (g Grid) Points() int {
	p := 1
	for i := 0; i < g.Dim; i++ {
		p *= g.N
	}
	return p
}

// Index converts multi-dimensional coordinates to a linear index
// (row-major: the last coordinate varies fastest).
func (g Grid) Index(coords []int) int {
	if len(coords) != g.Dim {
		panic(fmt.Sprintf("linalg: coordinate arity %d does not match grid dim %d", len(coords), g.Dim))
	}
	idx := 0
	for _, c := range coords {
		if c < 0 || c >= g.N {
			panic(fmt.Sprintf("linalg: coordinate %d out of [0,%d)", c, g.N))
		}
		idx = idx*g.N + c
	}
	return idx
}

// Coords converts a linear index back to multi-dimensional coordinates.
func (g Grid) Coords(idx int) []int {
	coords := make([]int, g.Dim)
	for i := g.Dim - 1; i >= 0; i-- {
		coords[i] = idx % g.N
		idx /= g.N
	}
	return coords
}

// Neighbors returns the linear indices of the face neighbors (±1 along each
// dimension) of the point at the given linear index, in a deterministic order.
// Points outside the grid (boundary) are omitted.
func (g Grid) Neighbors(idx int) []int {
	coords := g.Coords(idx)
	var out []int
	for d := 0; d < g.Dim; d++ {
		for _, delta := range []int{-1, +1} {
			c := coords[d] + delta
			if c < 0 || c >= g.N {
				continue
			}
			old := coords[d]
			coords[d] = c
			out = append(out, g.Index(coords))
			coords[d] = old
		}
	}
	return out
}

// Laplacian returns the standard (2d+1)-point finite-difference Laplacian of
// the grid as a CSR matrix: 2d on the diagonal and −1 for each face neighbor.
// With Dirichlet boundaries the matrix is symmetric positive definite, which
// is the setting CG requires.
func (g Grid) Laplacian() *CSR {
	np := g.Points()
	b := NewCSRBuilder(np, np)
	for i := 0; i < np; i++ {
		b.Add(i, i, float64(2*g.Dim))
		for _, j := range g.Neighbors(i) {
			b.Add(i, j, -1)
		}
	}
	return b.Build()
}

// StencilWeights describes a (2r+1)^d box stencil with uniform averaging
// weights used by the Jacobi smoother workloads.
type StencilWeights struct {
	Radius int
	Dim    int
}

// NumPoints returns the number of stencil points (2r+1)^d.
func (s StencilWeights) NumPoints() int {
	p := 1
	for i := 0; i < s.Dim; i++ {
		p *= 2*s.Radius + 1
	}
	return p
}
