// Package linalg provides the small dense/sparse linear-algebra substrate
// used by the numerical solvers (CG, GMRES, Jacobi) whose CDAGs the paper
// analyzes: vectors, dense matrices, CSR sparse matrices, tridiagonal
// systems, and structured grid Laplacians for d-dimensional meshes.
//
// The implementations favour clarity and determinism over raw speed; they are
// the workload generators of the reproduction, not a BLAS replacement.
package linalg
