package linalg

import "fmt"

// Tridiagonal represents the tridiagonal coefficient matrix of the
// discretized 1-D heat equation (Equation 11 of the paper): constant
// sub/super-diagonal value Off and diagonal value Diag.
type Tridiagonal struct {
	N    int
	Diag float64
	Off  float64
}

// HeatEquationMatrix returns the implicit (left-hand side) tridiagonal matrix
// of the Crank–Nicolson discretization used in Section 5.1, with a = k/h².
func HeatEquationMatrix(n int, a float64) Tridiagonal {
	return Tridiagonal{N: n, Diag: 1 + a, Off: -a / 2}
}

// HeatEquationRHSMatrix returns the explicit (right-hand side) tridiagonal
// matrix of the same discretization.
func HeatEquationRHSMatrix(n int, a float64) Tridiagonal {
	return Tridiagonal{N: n, Diag: 1 - a, Off: a / 2}
}

// MulVec returns T·x.
func (t Tridiagonal) MulVec(x Vector) Vector {
	if len(x) != t.N {
		panic(fmt.Sprintf("linalg: tridiagonal MulVec dimension mismatch %d vs %d", t.N, len(x)))
	}
	y := NewVector(t.N)
	for i := 0; i < t.N; i++ {
		s := t.Diag * x[i]
		if i > 0 {
			s += t.Off * x[i-1]
		}
		if i+1 < t.N {
			s += t.Off * x[i+1]
		}
		y[i] = s
	}
	return y
}

// ToCSR converts the tridiagonal matrix to CSR form.
func (t Tridiagonal) ToCSR() *CSR {
	b := NewCSRBuilder(t.N, t.N)
	for i := 0; i < t.N; i++ {
		if i > 0 {
			b.Add(i, i-1, t.Off)
		}
		b.Add(i, i, t.Diag)
		if i+1 < t.N {
			b.Add(i, i+1, t.Off)
		}
	}
	return b.Build()
}

// Solve solves T·x = rhs with the Thomas algorithm and returns x.
func (t Tridiagonal) Solve(rhs Vector) Vector {
	if len(rhs) != t.N {
		panic(fmt.Sprintf("linalg: tridiagonal Solve dimension mismatch %d vs %d", t.N, len(rhs)))
	}
	n := t.N
	cp := NewVector(n) // modified super-diagonal
	dp := NewVector(n) // modified rhs
	cp[0] = t.Off / t.Diag
	dp[0] = rhs[0] / t.Diag
	for i := 1; i < n; i++ {
		denom := t.Diag - t.Off*cp[i-1]
		if i+1 < n {
			cp[i] = t.Off / denom
		}
		dp[i] = (rhs[i] - t.Off*dp[i-1]) / denom
	}
	x := NewVector(n)
	x[n-1] = dp[n-1]
	for i := n - 2; i >= 0; i-- {
		x[i] = dp[i] - cp[i]*x[i+1]
	}
	return x
}
