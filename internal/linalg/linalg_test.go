package linalg

import (
	"math"
	"testing"
	"testing/quick"
)

func TestVectorOps(t *testing.T) {
	v := Vector{1, 2, 3}
	w := Vector{4, 5, 6}
	if got := v.Dot(w); got != 32 {
		t.Errorf("Dot = %v, want 32", got)
	}
	if got := v.Norm2(); math.Abs(got-math.Sqrt(14)) > 1e-12 {
		t.Errorf("Norm2 = %v", got)
	}
	if got := w.NormInf(); got != 6 {
		t.Errorf("NormInf = %v, want 6", got)
	}
	u := v.Clone().Axpy(2, w)
	want := Vector{9, 12, 15}
	if !u.Equalish(want, 0) {
		t.Errorf("Axpy = %v, want %v", u, want)
	}
	if got := v.AddScaled(-1, w); !got.Equalish(Vector{-3, -3, -3}, 0) {
		t.Errorf("AddScaled = %v", got)
	}
	if got := w.Sub(v); !got.Equalish(Vector{3, 3, 3}, 0) {
		t.Errorf("Sub = %v", got)
	}
	s := v.Clone().Scale(10)
	if !s.Equalish(Vector{10, 20, 30}, 0) {
		t.Errorf("Scale = %v", s)
	}
	z := NewVector(3).Fill(7)
	if !z.Equalish(Vector{7, 7, 7}, 0) {
		t.Errorf("Fill = %v", z)
	}
	c := NewVector(3).Copy(v)
	if !c.Equalish(v, 0) {
		t.Errorf("Copy = %v", c)
	}
	if v.Equalish(Vector{1, 2}, 0) {
		t.Errorf("Equalish accepted different lengths")
	}
}

func TestVectorPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"dot":  func() { Vector{1}.Dot(Vector{1, 2}) },
		"axpy": func() { Vector{1}.Axpy(1, Vector{1, 2}) },
		"copy": func() { Vector{1}.Copy(Vector{1, 2}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic on length mismatch", name)
				}
			}()
			f()
		}()
	}
}

func TestDenseOps(t *testing.T) {
	a := NewDense(2, 3)
	a.Set(0, 0, 1)
	a.Set(0, 1, 2)
	a.Set(0, 2, 3)
	a.Set(1, 0, 4)
	a.Set(1, 1, 5)
	a.Set(1, 2, 6)
	x := Vector{1, 1, 1}
	y := a.MulVec(x)
	if !y.Equalish(Vector{6, 15}, 1e-12) {
		t.Errorf("MulVec = %v", y)
	}
	at := a.Transpose()
	if at.Rows != 3 || at.Cols != 2 || at.At(2, 1) != 6 {
		t.Errorf("Transpose wrong: %+v", at)
	}
	prod := a.Mul(at) // 2x2
	if prod.At(0, 0) != 14 || prod.At(0, 1) != 32 || prod.At(1, 1) != 77 {
		t.Errorf("Mul wrong: %+v", prod)
	}
	if got := prod.SumElements(); got != 14+32+32+77 {
		t.Errorf("SumElements = %v", got)
	}
	id := Identity(3)
	if !a.Mul(id).MulVec(x).Equalish(y, 1e-12) {
		t.Errorf("A·I != A")
	}
	c := a.Clone()
	c.Add(0, 0, 10)
	if a.At(0, 0) != 1 || c.At(0, 0) != 11 {
		t.Errorf("Clone not independent")
	}
}

func TestDensePanics(t *testing.T) {
	a := NewDense(2, 2)
	func() {
		defer func() {
			if recover() == nil {
				t.Errorf("expected MulVec dimension panic")
			}
		}()
		a.MulVec(Vector{1})
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Errorf("expected Mul dimension panic")
			}
		}()
		a.Mul(NewDense(3, 3))
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Errorf("expected NewDense negative panic")
			}
		}()
		NewDense(-1, 2)
	}()
}

func TestOuterProduct(t *testing.T) {
	u := Vector{1, 2}
	v := Vector{3, 4, 5}
	m := OuterProduct(u, v)
	if m.Rows != 2 || m.Cols != 3 {
		t.Fatalf("shape %dx%d", m.Rows, m.Cols)
	}
	if m.At(1, 2) != 10 || m.At(0, 0) != 3 {
		t.Errorf("outer product values wrong: %+v", m)
	}
}

func TestCSRBuildAndMulVec(t *testing.T) {
	b := NewCSRBuilder(3, 3)
	b.Add(0, 0, 2)
	b.Add(0, 1, -1)
	b.Add(1, 0, -1)
	b.Add(1, 1, 2)
	b.Add(1, 2, -1)
	b.Add(2, 1, -1)
	b.Add(2, 2, 2)
	b.Add(2, 2, 1) // duplicate: summed to 3
	m := b.Build()
	if m.NNZ() != 7 {
		t.Fatalf("NNZ = %d, want 7", m.NNZ())
	}
	if m.At(2, 2) != 3 || m.At(0, 2) != 0 {
		t.Errorf("At wrong: %v %v", m.At(2, 2), m.At(0, 2))
	}
	y := m.MulVec(Vector{1, 1, 1})
	if !y.Equalish(Vector{1, 0, 2}, 1e-12) {
		t.Errorf("MulVec = %v", y)
	}
	d := m.ToDense()
	if d.At(1, 2) != -1 {
		t.Errorf("ToDense wrong")
	}
	if !m.IsSymmetric(1e-12) {
		t.Errorf("matrix should be symmetric (only diagonal differs from Laplacian)")
	}
	// An off-diagonal perturbation breaks symmetry.
	b2 := NewCSRBuilder(2, 2)
	b2.Add(0, 1, 1)
	if b2.Build().IsSymmetric(1e-12) {
		t.Errorf("asymmetric matrix reported symmetric")
	}
	// Non-square matrices are never symmetric.
	b3 := NewCSRBuilder(2, 3)
	if b3.Build().IsSymmetric(1e-12) {
		t.Errorf("non-square matrix reported symmetric")
	}
	cols, vals := m.Row(1)
	if len(cols) != 3 || len(vals) != 3 {
		t.Errorf("Row(1) wrong: %v %v", cols, vals)
	}
}

func TestCSRBuilderPanics(t *testing.T) {
	b := NewCSRBuilder(2, 2)
	defer func() {
		if recover() == nil {
			t.Errorf("expected out-of-range panic")
		}
	}()
	b.Add(2, 0, 1)
}

func TestTridiagonal(t *testing.T) {
	a := 0.5
	n := 8
	lhs := HeatEquationMatrix(n, a)
	rhsM := HeatEquationRHSMatrix(n, a)
	if lhs.Diag != 1.5 || lhs.Off != -0.25 {
		t.Errorf("heat matrix coefficients wrong: %+v", lhs)
	}
	if rhsM.Diag != 0.5 || rhsM.Off != 0.25 {
		t.Errorf("heat rhs coefficients wrong: %+v", rhsM)
	}
	u := NewVector(n)
	for i := range u {
		u[i] = math.Sin(float64(i+1) / float64(n+1) * math.Pi)
	}
	// Solve lhs·x = rhs and verify the residual.
	rhs := rhsM.MulVec(u)
	x := lhs.Solve(rhs)
	back := lhs.MulVec(x)
	if !back.Equalish(rhs, 1e-10) {
		t.Errorf("Thomas solve residual too large: %v vs %v", back, rhs)
	}
	// CSR conversion must agree with direct MulVec.
	csr := lhs.ToCSR()
	if !csr.MulVec(u).Equalish(lhs.MulVec(u), 1e-12) {
		t.Errorf("CSR and tridiagonal MulVec disagree")
	}
	if !csr.IsSymmetric(1e-12) {
		t.Errorf("heat matrix should be symmetric")
	}
}

func TestTridiagonalPanics(t *testing.T) {
	tr := Tridiagonal{N: 3, Diag: 2, Off: -1}
	func() {
		defer func() {
			if recover() == nil {
				t.Errorf("expected MulVec panic")
			}
		}()
		tr.MulVec(Vector{1})
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Errorf("expected Solve panic")
			}
		}()
		tr.Solve(Vector{1})
	}()
}

func TestGridIndexing(t *testing.T) {
	g := NewGrid(3, 4)
	if g.Points() != 64 {
		t.Fatalf("Points = %d", g.Points())
	}
	for idx := 0; idx < g.Points(); idx++ {
		if got := g.Index(g.Coords(idx)); got != idx {
			t.Fatalf("round trip failed at %d -> %v -> %d", idx, g.Coords(idx), got)
		}
	}
	// Corner has d neighbors; interior has 2d.
	corner := g.Index([]int{0, 0, 0})
	if got := len(g.Neighbors(corner)); got != 3 {
		t.Errorf("corner neighbors = %d, want 3", got)
	}
	interior := g.Index([]int{1, 1, 1})
	if got := len(g.Neighbors(interior)); got != 6 {
		t.Errorf("interior neighbors = %d, want 6", got)
	}
}

func TestGridPanics(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Errorf("expected NewGrid panic")
			}
		}()
		NewGrid(0, 5)
	}()
	g := NewGrid(2, 3)
	func() {
		defer func() {
			if recover() == nil {
				t.Errorf("expected Index arity panic")
			}
		}()
		g.Index([]int{1})
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Errorf("expected Index range panic")
			}
		}()
		g.Index([]int{1, 5})
	}()
}

func TestGridLaplacian(t *testing.T) {
	g := NewGrid(2, 3)
	lap := g.Laplacian()
	if lap.Rows != 9 || lap.Cols != 9 {
		t.Fatalf("Laplacian shape %dx%d", lap.Rows, lap.Cols)
	}
	if !lap.IsSymmetric(1e-12) {
		t.Errorf("Laplacian not symmetric")
	}
	// Diagonal is 2d = 4; the constant vector maps to the boundary defect.
	if lap.At(4, 4) != 4 {
		t.Errorf("diagonal = %v, want 4", lap.At(4, 4))
	}
	// Row sums: interior rows sum to 0, boundary rows are positive.
	y := lap.MulVec(NewVector(9).Fill(1))
	if y[4] != 0 {
		t.Errorf("interior row sum = %v, want 0", y[4])
	}
	if y[0] <= 0 {
		t.Errorf("corner row sum = %v, want > 0", y[0])
	}
}

func TestStencilWeights(t *testing.T) {
	s := StencilWeights{Radius: 1, Dim: 2}
	if s.NumPoints() != 9 {
		t.Errorf("9-point stencil NumPoints = %d", s.NumPoints())
	}
	s3 := StencilWeights{Radius: 1, Dim: 3}
	if s3.NumPoints() != 27 {
		t.Errorf("27-point stencil NumPoints = %d", s3.NumPoints())
	}
}

// Property: dot product is symmetric and norm is non-negative, and
// ‖u+v‖ ≤ ‖u‖+‖v‖ (triangle inequality) for random vectors.
func TestVectorProperties(t *testing.T) {
	f := func(a, b []float64) bool {
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		if n == 0 {
			return true
		}
		u, v := Vector(a[:n]), Vector(b[:n])
		for _, x := range append(u.Clone(), v...) {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e100 {
				return true // skip pathological floats
			}
		}
		if math.Abs(u.Dot(v)-v.Dot(u)) > 1e-6*(1+math.Abs(u.Dot(v))) {
			return false
		}
		if u.Norm2() < 0 {
			return false
		}
		sum := u.AddScaled(1, v)
		return sum.Norm2() <= u.Norm2()+v.Norm2()+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: CSR·x agrees with Dense·x for random sparse matrices.
func TestCSRDenseAgreementProperty(t *testing.T) {
	f := func(entries []uint32, nRaw uint8) bool {
		n := int(nRaw%8) + 1
		b := NewCSRBuilder(n, n)
		d := NewDense(n, n)
		for _, e := range entries {
			r := int(e) % n
			c := int(e>>8) % n
			v := float64(int8(e>>16)) / 16.0
			b.Add(r, c, v)
			d.Add(r, c, v)
		}
		m := b.Build()
		x := NewVector(n)
		for i := range x {
			x[i] = float64(i + 1)
		}
		return m.MulVec(x).Equalish(d.MulVec(x), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
