package linalg

import (
	"fmt"
	"math"
)

// Vector is a dense column vector of float64 values.
type Vector []float64

// NewVector returns a zero vector of length n.
func NewVector(n int) Vector { return make(Vector, n) }

// Clone returns a copy of v.
func (v Vector) Clone() Vector { return append(Vector(nil), v...) }

// Fill sets every element to x and returns v.
func (v Vector) Fill(x float64) Vector {
	for i := range v {
		v[i] = x
	}
	return v
}

// Dot returns the inner product ⟨v, w⟩.  It panics on length mismatch.
func (v Vector) Dot(w Vector) float64 {
	if len(v) != len(w) {
		panic(fmt.Sprintf("linalg: dot length mismatch %d vs %d", len(v), len(w)))
	}
	var s float64
	for i := range v {
		s += v[i] * w[i]
	}
	return s
}

// Norm2 returns the Euclidean norm ‖v‖₂.
func (v Vector) Norm2() float64 { return math.Sqrt(v.Dot(v)) }

// NormInf returns the maximum absolute element.
func (v Vector) NormInf() float64 {
	var m float64
	for _, x := range v {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

// Axpy computes v ← v + alpha·w and returns v.  It panics on length mismatch.
func (v Vector) Axpy(alpha float64, w Vector) Vector {
	if len(v) != len(w) {
		panic(fmt.Sprintf("linalg: axpy length mismatch %d vs %d", len(v), len(w)))
	}
	for i := range v {
		v[i] += alpha * w[i]
	}
	return v
}

// Scale computes v ← alpha·v and returns v.
func (v Vector) Scale(alpha float64) Vector {
	for i := range v {
		v[i] *= alpha
	}
	return v
}

// AddScaled returns a new vector equal to v + alpha·w.
func (v Vector) AddScaled(alpha float64, w Vector) Vector {
	out := v.Clone()
	return out.Axpy(alpha, w)
}

// Sub returns a new vector equal to v − w.
func (v Vector) Sub(w Vector) Vector {
	return v.AddScaled(-1, w)
}

// Copy copies w into v (lengths must match) and returns v.
func (v Vector) Copy(w Vector) Vector {
	if len(v) != len(w) {
		panic(fmt.Sprintf("linalg: copy length mismatch %d vs %d", len(v), len(w)))
	}
	copy(v, w)
	return v
}

// Equalish reports whether v and w agree element-wise within tol.
func (v Vector) Equalish(w Vector, tol float64) bool {
	if len(v) != len(w) {
		return false
	}
	for i := range v {
		if math.Abs(v[i]-w[i]) > tol {
			return false
		}
	}
	return true
}
