package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"
)

// Client talks to a running cdagd over its HTTP/JSON API.  It is the reuse
// seam for batch front ends: cdagx dispatches experiment cells through it in
// -remote mode, and because the daemon's responses are memoized canonical
// JSON, a cell computed remotely is byte-identical to the same cell computed
// in-process through RunEngine.
type Client struct {
	// Base is the daemon's base URL, e.g. "http://127.0.0.1:8080".
	Base string
	// HTTP is the underlying HTTP client; nil means http.DefaultClient.
	HTTP *http.Client
	// MaxRetries bounds how often an overload rejection (429/503 with a
	// Retry-After hint) is retried before giving up.  Zero means 8.
	MaxRetries int
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// remoteError is the daemon's error envelope, re-classified locally so
// callers can errors.Is against the serve taxonomy.
type remoteError struct {
	Error struct {
		Class        string `json:"class"`
		Detail       string `json:"detail"`
		RetryAfterMS int64  `json:"retry_after_ms,omitempty"`
	} `json:"error"`
}

func classFromKey(key string) error {
	switch key {
	case "invalid_input":
		return ErrInvalidInput
	case "resource_limit":
		return ErrResourceLimit
	case "overloaded":
		return ErrOverloaded
	case "not_found":
		return ErrNotFound
	case "deadline":
		return ErrDeadline
	default:
		return ErrInternal
	}
}

// do issues one POST and returns the response body on 2xx.  Non-2xx bodies
// are decoded into a classified *Error; overload rejections carry the
// daemon's retry hint.
func (c *Client) do(ctx context.Context, path string, body []byte) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.Base+path, bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("serve client: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, fmt.Errorf("serve client: POST %s: %w", path, err)
	}
	defer resp.Body.Close()
	buf, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("serve client: read %s response: %w", path, err)
	}
	if resp.StatusCode >= 200 && resp.StatusCode < 300 {
		return buf, nil
	}
	var re remoteError
	if json.Unmarshal(buf, &re) == nil && re.Error.Class != "" {
		return nil, &Error{
			Class:  classFromKey(re.Error.Class),
			Detail: fmt.Sprintf("remote %s: %s", path, re.Error.Detail),
			Retry:  time.Duration(re.Error.RetryAfterMS) * time.Millisecond,
		}
	}
	return nil, fmt.Errorf("serve client: POST %s: HTTP %d: %s", path, resp.StatusCode, bytes.TrimSpace(buf))
}

// doRetry runs do, sleeping out the daemon's Retry-After hint on overload
// rejections up to MaxRetries times.  Anything else fails immediately.
func (c *Client) doRetry(ctx context.Context, path string, body []byte) ([]byte, error) {
	max := c.MaxRetries
	if max <= 0 {
		max = 8
	}
	for attempt := 0; ; attempt++ {
		buf, err := c.do(ctx, path, body)
		se, overloaded := err.(*Error)
		if err == nil || !overloaded || !isOverload(se) || attempt >= max {
			return buf, err
		}
		wait := se.Retry
		if wait <= 0 {
			wait = time.Second
		}
		t := time.NewTimer(wait)
		select {
		case <-ctx.Done():
			t.Stop()
			return nil, ctx.Err()
		case <-t.C:
		}
	}
}

func isOverload(e *Error) bool {
	return e != nil && e.Class == ErrOverloaded
}

// UploadGen uploads a generator spec and returns the daemon's graph ID
// (which equals HashID([]byte(GenKey(spec))) — the client's and daemon's
// content addressing agree by construction).
func (c *Client) UploadGen(ctx context.Context, spec *GenSpec) (string, error) {
	body, err := json.Marshal(map[string]any{"gen": spec})
	if err != nil {
		return "", fmt.Errorf("serve client: marshal gen spec: %w", err)
	}
	buf, err := c.doRetry(ctx, "/v1/graphs", body)
	if err != nil {
		return "", err
	}
	var info struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(buf, &info); err != nil || info.ID == "" {
		return "", fmt.Errorf("serve client: unexpected upload response: %s", bytes.TrimSpace(buf))
	}
	return info.ID, nil
}

// Engine runs one engine request against an uploaded graph and returns the
// daemon's raw response body (canonical JSON, trailing newline trimmed, so
// it compares equal to a locally marshaled RunEngine payload).
func (c *Client) Engine(ctx context.Context, graphID, engine string, body []byte) ([]byte, error) {
	buf, err := c.doRetry(ctx, "/v1/graphs/"+graphID+"/"+engine, body)
	if err != nil {
		return nil, err
	}
	return bytes.TrimRight(buf, "\n"), nil
}
