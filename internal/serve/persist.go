package serve

import (
	"bytes"
	"encoding/json"
	"fmt"

	"cdagio/internal/cdag"
	"cdagio/internal/core"
	"cdagio/internal/store"
)

// This file is the daemon's durability seam: write-through journaling of
// uploads and memoized responses into internal/store, warm-restart recovery
// that replays the log back into the Workspace cache, and background
// compaction that rewrites the log down to what the cache still holds.
//
// The ordering invariant everything here leans on: a record is journaled
// BEFORE its cache entry becomes visible.  The moment a concurrent identical
// request can be answered from the cache, the bytes backing that answer are
// already durable — so "the response was acknowledged" implies "a restart
// replays it bit-identically", with no window in between.

// storeActive reports whether write-through journaling is on: a store was
// configured and has not been demoted to in-memory-only by an unrecoverable
// failure.
func (s *Server) storeActive() bool {
	return s.store != nil && s.storeOK.Load()
}

// persist journals one record, blocking until it is durable.  A nil return
// with no store configured keeps the request path byte-identical to the
// store-less daemon.  On failure the caller must fail its request: the record
// may not survive a crash, so nothing downstream of it may be acknowledged or
// made findable in the cache.
func (s *Server) persist(rec store.Record) *Error {
	if !s.storeActive() {
		return nil
	}
	if err := s.store.Append(rec); err != nil {
		s.appendErrs.Add(1)
		return internalf("journal append: %v", err)
	}
	return nil
}

// Pending-record tracking: between persist returning and the cache insert
// completing, a record is durable but not yet visible — exactly the state a
// concurrent compaction would misread as dead.  notePending marks the key for
// that window; compaction keeps pending records unconditionally.
func pendingGraphKey(id string) string      { return "g\x00" + id }
func pendingMemoKey(id, hash string) string { return "m\x00" + id + "\x00" + hash }

func (s *Server) notePending(key string) (done func()) {
	if !s.storeActive() {
		return func() {}
	}
	s.pendingMu.Lock()
	s.pending[key]++
	s.pendingMu.Unlock()
	return func() {
		s.pendingMu.Lock()
		if s.pending[key]--; s.pending[key] <= 0 {
			delete(s.pending, key)
		}
		s.pendingMu.Unlock()
	}
}

func (s *Server) isPending(key string) bool {
	s.pendingMu.Lock()
	defer s.pendingMu.Unlock()
	return s.pending[key] > 0
}

// recoverStore is the warm-restart path, run on its own goroutine from New:
// replay the journal into the cache, then open the doors.  Until it finishes,
// warming keeps /readyz at 503 and sheds every /v1/ request — a restarted
// daemon never serves from a half-repopulated cache.  Recovery failure is not
// fatal: the daemon demotes itself to in-memory-only and keeps serving, with
// the failure visible on /healthz.
func (s *Server) recoverStore() {
	defer s.warming.Store(false)
	st, err := s.store.Recover(s.applyRecord)
	if err != nil {
		s.storeOK.Store(false)
		s.lastErr.Store(fmt.Sprintf("store recovery failed, serving in-memory only: %v", err))
		return
	}
	s.recovery.records.Store(int64(st.Records))
	s.recovery.corrupt.Store(int64(st.CorruptRecords))
	s.recovery.truncated.Store(st.TruncatedBytes)
}

// applyRecord replays one journaled record into the cache.  Replay runs in
// append order, so eviction under the byte budget behaves exactly as it did
// live: a log holding more graphs than the budget fits ends with the most
// recently uploaded ones resident.  A record the budget or limits refuse is
// skipped with a counter, never a boot failure — the journal is a cache
// warmer, not a source of truth the daemon must die over.
func (s *Server) applyRecord(rec store.Record) {
	switch rec.Kind {
	case store.KindGraphJSON, store.KindGraphSpec:
		if err := s.restoreGraph(rec); err != nil {
			s.recovery.skipped.Add(1)
			return
		}
		s.recovery.graphs.Add(1)
	case store.KindMemo:
		e := s.cache.get(rec.Key)
		if e == nil {
			// The graph this memo belongs to was skipped or already evicted
			// by a later record's admission; the memo is dead weight.
			s.recovery.skipped.Add(1)
			return
		}
		ok := s.cache.memoPut(e, rec.Sub, rec.Value)
		s.cache.release(e)
		if !ok {
			s.recovery.skipped.Add(1)
			return
		}
		s.recovery.memos.Add(1)
	default:
		s.recovery.skipped.Add(1)
	}
}

// restoreGraph rebuilds one graph record into a cached Workspace: inline
// uploads re-parse their canonical JSON under the same adversarial limits as
// a live request, generator specs rebuild through the same admission check
// and constructor.  Validation re-runs too — the log is on disk and disks
// rot, so recovery extends the "no request reaches an engine unvalidated"
// contract to replayed bytes.
func (s *Server) restoreGraph(rec store.Record) error {
	var g *cdag.Graph
	switch rec.Kind {
	case store.KindGraphJSON:
		var err error
		if g, err = cdag.ReadJSONLimits(bytes.NewReader(rec.Value), s.cfg.JSONLimits); err != nil {
			return err
		}
	case store.KindGraphSpec:
		var spec GenSpec
		if err := json.Unmarshal(rec.Value, &spec); err != nil {
			return err
		}
		if err := s.checkGenSpec(&spec); err != nil {
			return err
		}
		var err error
		if g, err = BuildGen(&spec); err != nil {
			return err
		}
	}
	if err := g.Validate(cdag.ValidateRBW); err != nil {
		return err
	}
	ws := core.NewWorkspace(g)
	ws.SetSolverLimit(s.cfg.SolverLimit)
	e, _, err := s.cache.add(rec.Key, ws, ws.FootprintBytes(s.cfg.SolverLimit))
	if err != nil {
		return err
	}
	s.cache.release(e)
	return nil
}

// maybeCompact kicks off a background compaction when the log has outgrown
// the threshold.  Single-flight: one compaction at a time, triggered from the
// request path but never blocking it.
func (s *Server) maybeCompact() {
	if !s.storeActive() || s.warming.Load() {
		return
	}
	if s.store.Size() <= s.cfg.CompactThreshold {
		return
	}
	if !s.compacting.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer s.compacting.Store(false)
		s.compactStore()
	}()
}

// compactStore rewrites the log down to the records the cache still holds.
// Liveness is checked against the cache at filter time (not a snapshot) and
// pending records are kept unconditionally: a record is dropped only if its
// entry is provably gone — evicted, or rejected before ever becoming
// findable.  Appends block for the duration of the rewrite and then land in
// the new log, so nothing journaled during compaction is ever lost.
func (s *Server) compactStore() {
	err := s.store.Compact(func(rec store.Record) bool {
		switch rec.Kind {
		case store.KindGraphJSON, store.KindGraphSpec:
			return s.cache.hasGraph(rec.Key) || s.isPending(pendingGraphKey(rec.Key))
		case store.KindMemo:
			return s.cache.hasMemo(rec.Key, rec.Sub) || s.isPending(pendingMemoKey(rec.Key, rec.Sub))
		}
		return false
	})
	if err != nil {
		// The old log is still authoritative (Compact is atomic); nothing is
		// lost, the log just stays big until the next trigger succeeds.
		s.lastErr.Store(fmt.Sprintf("store compaction failed: %v", err))
		return
	}
	s.compacts.Add(1)
}
