package serve

import (
	"context"
	"time"
)

// gate is the admission controller for one engine class: a bounded in-flight
// slot pool fronted by a bounded wait queue.  A request first tries to take
// an in-flight slot; if none is free it takes a queue slot and waits; if the
// queue is full too, the request is rejected immediately with 429 +
// Retry-After — backpressure instead of unbounded goroutine pile-up.
//
// Both pools are plain buffered channels, so depth and occupancy reads are
// len() on a channel: cheap enough for /healthz to report on every poll.
type gate struct {
	name  string
	slots chan struct{} // in-flight capacity
	queue chan struct{} // waiting capacity
}

func newGate(name string, inFlight, queueDepth int) *gate {
	if inFlight < 1 {
		inFlight = 1
	}
	if queueDepth < 0 {
		queueDepth = 0
	}
	return &gate{
		name:  name,
		slots: make(chan struct{}, inFlight),
		queue: make(chan struct{}, queueDepth),
	}
}

// acquire admits the request or rejects it with an overload error.  On
// success the returned release function MUST be called exactly once when the
// request finishes.  Waiting in the queue respects ctx: a caller whose
// deadline expires while queued gets a deadline error, not a slot.
//
// Admission is queue-first: a newcomer takes the fast path only while the
// queue is empty; otherwise it joins the queue behind the existing waiters.
// Waiters all block sending on g.slots, and the runtime completes blocked
// channel senders in FIFO order on every release, so under sustained load
// slots are handed to the longest-waiting request instead of letting
// brand-new arrivals race past the queue until its deadlines expire.
func (g *gate) acquire(ctx context.Context) (release func(), err error) {
	release = func() { <-g.slots }
	if len(g.queue) == 0 {
		select {
		case g.slots <- struct{}{}:
			return release, nil
		default:
		}
	}
	select {
	case g.queue <- struct{}{}:
	default:
		return nil, overloadedf(g.retryAfter(),
			"%s queue full (%d in flight, %d queued)", g.name, len(g.slots), len(g.queue))
	}
	defer func() { <-g.queue }()
	select {
	case g.slots <- struct{}{}:
		return release, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// retryAfter estimates how long a rejected client should wait: one "service
// time" per queued-or-running request ahead of it, floored at a second.  A
// heuristic, not a promise — its job is to spread the retry storm.
func (g *gate) retryAfter() time.Duration {
	waiting := len(g.slots) + len(g.queue)
	d := time.Duration(1+waiting/cap(g.slots)) * time.Second
	if d > 30*time.Second {
		d = 30 * time.Second
	}
	return d
}

// inFlight returns the number of requests currently executing in this class.
func (g *gate) inFlight() int { return len(g.slots) }

// queued returns the number of requests currently waiting for a slot.
func (g *gate) queued() int { return len(g.queue) }

// saturated reports whether the class is at or beyond the given fraction of
// its total (in-flight + queue) capacity.  The server sheds the expensive
// engine class when the cheap class is saturated, so bound probes keep
// flowing while w^max scans wait out the storm.
func (g *gate) saturated(frac float64) bool {
	capTotal := cap(g.slots) + cap(g.queue)
	used := len(g.slots) + len(g.queue)
	return float64(used) >= frac*float64(capTotal)
}
