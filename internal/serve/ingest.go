package serve

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"cdagio/internal/cdag"
	"cdagio/internal/gen"
	"cdagio/internal/graphalg"
	"cdagio/internal/store"
)

// uploadRequest is the body of POST /v1/graphs: exactly one of Graph (an
// inline CDAG in the cdag JSON schema) or Gen (a generator spec) must be set.
type uploadRequest struct {
	Graph json.RawMessage `json:"graph,omitempty"`
	Gen   *GenSpec        `json:"gen,omitempty"`
}

// GenSpec names one of the paper's CDAG families and its size parameters.
// Unused parameters for a kind must be zero; the canonical hash key includes
// only the parameters the kind consumes, so equivalent specs share an ID.
type GenSpec struct {
	Kind       string `json:"kind"`
	N          int    `json:"n,omitempty"`
	K          int    `json:"k,omitempty"`
	H          int    `json:"h,omitempty"`
	Dim        int    `json:"dim,omitempty"`
	Steps      int    `json:"steps,omitempty"`
	Iterations int    `json:"iterations,omitempty"`
	Stencil    string `json:"stencil,omitempty"` // "star" (default) or "box"
}

// satCap bounds every value in the generator size estimates: large enough
// that no admissible graph is anywhere near it, small enough that the
// downstream footprint arithmetic (per-vertex byte costs times a solver
// count) cannot overflow int64.
const satCap = int64(1) << 40

// satMul and satAdd are the saturating arithmetic of the size estimates:
// negative operands clamp to zero (out-of-domain parameters are the
// generator's 400 to report, not a 413), and anything at or beyond satCap
// stays pinned there.
func satMul(a, b int64) int64 {
	if a < 0 {
		a = 0
	}
	if b < 0 {
		b = 0
	}
	if a > 0 && b > satCap/a {
		return satCap
	}
	return a * b
}

func satAdd(a, b int64) int64 {
	if a < 0 {
		a = 0
	}
	if b < 0 {
		b = 0
	}
	if a+b > satCap {
		return satCap
	}
	return a + b
}

// satPow returns base^exp, saturating.
func satPow(base, exp int64) int64 {
	p := int64(1)
	for i := int64(0); i < exp; i++ {
		p = satMul(p, base)
	}
	return p
}

// genLabelBytesPerVertex approximates the label payload of the generators
// ("u12[3456]"-style names) for the pre-build footprint estimate.
const genLabelBytesPerVertex = 12

// GenEstimate returns saturating upper bounds on the vertex and edge counts
// the spec would materialize, without building anything.  Unknown kinds and
// out-of-domain parameters estimate as zero — BuildGen rejects those with a
// 400 — so the only job here is making sure a syntactically healthy spec
// whose *size* is hostile never reaches an allocation.
func GenEstimate(spec *GenSpec) (v, e int64) {
	n, k, h := int64(spec.N), int64(spec.K), int64(spec.H)
	dim, steps, iter := int64(spec.Dim), int64(spec.Steps), int64(spec.Iterations)
	switch strings.ToLower(spec.Kind) {
	case "chain":
		return n, n
	case "chains":
		return satMul(k, n), satMul(k, n)
	case "tree":
		return satMul(2, n), satMul(2, n)
	case "dot":
		return satMul(4, n), satMul(4, n)
	case "saxpy":
		return satAdd(satMul(4, n), 1), satMul(4, n)
	case "outer":
		return satAdd(satMul(2, n), satMul(n, n)), satMul(2, satMul(n, n))
	case "matmul":
		n3 := satPow(n, 3)
		return satAdd(satMul(2, satMul(n, n)), satMul(2, n3)), satMul(4, n3)
	case "composite":
		n3 := satPow(n, 3)
		v = satAdd(satMul(4, n), satAdd(satMul(3, satMul(n, n)), satMul(2, n3)))
		return v, satAdd(satMul(4, satMul(n, n)), satMul(4, n3))
	case "fft":
		stages := int64(0)
		for s := n; s > 1; s >>= 1 {
			stages++
		}
		return satMul(n, stages+1), satMul(2, satMul(n, stages))
	case "binomial":
		if spec.K < 0 || spec.K > 20 {
			return 0, 0 // generator domain error, reported as 400
		}
		leaves := int64(1) << uint(spec.K)
		return satMul(leaves, k+1), satMul(k, satMul(2, leaves))
	case "pyramid":
		rows := satAdd(h, 1)
		return satMul(rows, satAdd(h, 2)) / 2, satMul(h, rows)
	case "heat":
		return satMul(n, satAdd(satMul(3, steps), 1)), satMul(steps, satMul(7, n))
	case "jacobi":
		np := satPow(n, dim)
		nbr := satAdd(satMul(2, dim), 1) // star stencil
		if strings.EqualFold(spec.Stencil, "box") {
			nbr = satPow(3, dim)
		}
		return satMul(np, satAdd(steps, 1)), satMul(steps, satMul(np, nbr))
	case "cg":
		np := satPow(n, dim)
		v = satAdd(satMul(3, np), satMul(iter, satAdd(satMul(10, np), 2)))
		return v, satMul(iter, satMul(np, satAdd(20, satMul(2, dim))))
	case "gmres":
		np := satPow(n, dim)
		m2 := satMul(iter, iter)
		v = satMul(np, satAdd(satAdd(m2, satMul(6, iter)), 1))
		e = satMul(np, satAdd(satMul(iter, satAdd(8, satMul(2, dim))), satMul(3, satMul(iter, satAdd(iter, 1)))))
		return v, e
	default:
		return 0, 0
	}
}

// AdmitGenSpec rejects a generator spec whose declared size violates the
// upload limits or whose estimated Workspace footprint (with solverLimit
// outstanding cut solvers) cannot fit the byte budget — before a single
// vertex is allocated.  This is the same admission contract inline uploads
// get from ReadJSONLimits plus cache.add: a two-line request body must not
// be able to OOM the daemon by naming a tens-of-gigabytes generator.  The
// post-build cache admission still runs on the exact footprint; this
// pre-check only has to be safely conservative.  Exported so cdagx can fail
// oversized spec cells at compile time under the same ceilings a daemon
// would apply at upload time.
func AdmitGenSpec(spec *GenSpec, lim cdag.JSONLimits, solverLimit int, budget int64) error {
	v, e := GenEstimate(spec)
	if lim.MaxVertices > 0 && v > int64(lim.MaxVertices) {
		return limitf("generator %q: ~%d vertices exceeds limit %d", spec.Kind, v, lim.MaxVertices)
	}
	if lim.MaxEdges > 0 && e > int64(lim.MaxEdges) {
		return limitf("generator %q: ~%d edges exceeds limit %d", spec.Kind, e, lim.MaxEdges)
	}
	fp := cdag.EstimateFootprintBytes(int(v), int(e), satMul(v, genLabelBytesPerVertex)) +
		int64(solverLimit)*graphalg.EstimateSolverFootprintCounts(v, e)
	if budget > 0 && fp > budget {
		return limitf("generator %q: estimated footprint %d bytes exceeds cache budget %d bytes",
			spec.Kind, fp, budget)
	}
	return nil
}

// checkGenSpec applies AdmitGenSpec under the daemon's configured limits.
func (s *Server) checkGenSpec(spec *GenSpec) error {
	return AdmitGenSpec(spec, s.cfg.JSONLimits, s.cfg.SolverLimit, s.cfg.CacheBudget)
}

// genKinds lists the generator kinds BuildGen accepts, sorted.
var genKinds = []string{
	"binomial", "cg", "chain", "chains", "composite", "dot", "fft", "gmres",
	"heat", "jacobi", "matmul", "outer", "pyramid", "saxpy", "tree",
}

// GenKinds returns the generator kinds BuildGen accepts, sorted.
func GenKinds() []string { return append([]string(nil), genKinds...) }

// KnownGenKind reports whether kind (case-insensitively) names a generator
// BuildGen accepts, letting spec compilers reject unknown kinds as boundary
// errors without building anything.
func KnownGenKind(kind string) bool {
	kind = strings.ToLower(kind)
	for _, k := range genKinds {
		if k == kind {
			return true
		}
	}
	return false
}

// BuildGen constructs the named generator graph.  The generators enforce
// their parameter domains by panicking — fine for test code, unacceptable
// for request data — so the whole construction runs under a recover that
// converts the panic message into an invalid-input error.
func BuildGen(spec *GenSpec) (g *cdag.Graph, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = invalidf("generator %q: %v", spec.Kind, r)
		}
	}()
	switch strings.ToLower(spec.Kind) {
	case "chain":
		return gen.Chain(spec.N), nil
	case "chains":
		return gen.IndependentChains(spec.K, spec.N), nil
	case "tree":
		return gen.ReductionTree(spec.N), nil
	case "dot":
		return gen.DotProduct(spec.N), nil
	case "saxpy":
		return gen.Saxpy(spec.N), nil
	case "outer":
		return gen.OuterProduct(spec.N), nil
	case "matmul":
		return gen.MatMul(spec.N).Graph, nil
	case "composite":
		return gen.Composite(spec.N).Graph, nil
	case "fft":
		return gen.FFT(spec.N), nil
	case "binomial":
		return gen.BinomialTree(spec.K), nil
	case "pyramid":
		return gen.Pyramid(spec.H), nil
	case "heat":
		return gen.HeatEquation1D(spec.N, spec.Steps).Graph, nil
	case "jacobi":
		kind := gen.StencilStar
		switch strings.ToLower(spec.Stencil) {
		case "", "star":
		case "box":
			kind = gen.StencilBox
		default:
			return nil, invalidf("generator jacobi: unknown stencil %q (want star or box)", spec.Stencil)
		}
		return gen.Jacobi(spec.Dim, spec.N, spec.Steps, kind).Graph, nil
	case "cg":
		return gen.CG(spec.Dim, spec.N, spec.Iterations).Graph, nil
	case "gmres":
		return gen.GMRES(spec.Dim, spec.N, spec.Iterations).Graph, nil
	default:
		return nil, invalidf("unknown generator kind %q", spec.Kind)
	}
}

// GenKey renders the canonical identity string of a generator spec: the
// lower-cased kind plus exactly the parameters that kind consumes, so
// {"kind":"chain","n":8} and {"kind":"Chain","n":8,"k":0} hash identically.
func GenKey(spec *GenSpec) string {
	kind := strings.ToLower(spec.Kind)
	params := map[string]int{}
	switch kind {
	case "chain", "tree", "dot", "saxpy", "outer", "matmul", "composite", "fft":
		params["n"] = spec.N
	case "chains":
		params["k"], params["n"] = spec.K, spec.N
	case "binomial":
		params["k"] = spec.K
	case "pyramid":
		params["h"] = spec.H
	case "heat":
		params["n"], params["steps"] = spec.N, spec.Steps
	case "jacobi":
		params["dim"], params["n"], params["steps"] = spec.Dim, spec.N, spec.Steps
		st := strings.ToLower(spec.Stencil)
		if st == "" {
			st = "star"
		}
		return fmt.Sprintf("gen/jacobi/dim=%d,n=%d,steps=%d,stencil=%s",
			spec.Dim, spec.N, spec.Steps, st)
	case "cg", "gmres":
		params["dim"], params["n"], params["iter"] = spec.Dim, spec.N, spec.Iterations
	}
	keys := make([]string, 0, len(params))
	for k := range params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	fmt.Fprintf(&b, "gen/%s/", kind)
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%d", k, params[k])
	}
	return b.String()
}

// HashID renders a content identity string as the daemon's graph ID.
func HashID(identity []byte) string {
	sum := sha256.Sum256(identity)
	return "sha256:" + hex.EncodeToString(sum[:])
}

// ingested is one upload after validation: the graph, its content-hash ID,
// and the store record that makes it durable (the canonical graph JSON for
// inline uploads; the canonical spec JSON for generators — rebuilding a
// stencil from its spec on recovery is far cheaper than parsing a
// million-vertex JSON dump).
type ingested struct {
	g   *cdag.Graph
	id  string
	rec store.Record
}

// ingestGraph turns an upload request into a validated graph plus its
// content-hash ID.  Inline graphs decode under the configured adversarial
// limits and are hashed over their canonical re-marshaled form (so
// whitespace and field order in the upload do not split the cache);
// generator graphs are hashed over the canonical spec key, which is far
// cheaper than marshaling a million-vertex stencil.  Every graph — uploaded
// or generated — must pass RBW validation before it reaches an engine: the
// engines' topological-order entry points panic on cycles, and that panic
// must stay unreachable from request data.
func (s *Server) ingestGraph(body []byte) (*ingested, error) {
	var req uploadRequest
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return nil, invalidf("upload body: %v", err)
	}
	switch {
	case req.Graph != nil && req.Gen != nil:
		return nil, invalidf("upload body: graph and gen are mutually exclusive")
	case req.Graph == nil && req.Gen == nil:
		return nil, invalidf("upload body: need a graph or a gen spec")
	}

	var (
		g        *cdag.Graph
		identity []byte
		rec      store.Record
	)
	if req.Gen != nil {
		if err := s.checkGenSpec(req.Gen); err != nil {
			return nil, err
		}
		var err error
		if g, err = BuildGen(req.Gen); err != nil {
			return nil, err
		}
		identity = []byte(GenKey(req.Gen))
		spec, err := json.Marshal(req.Gen)
		if err != nil {
			return nil, internalf("canonicalize gen spec: %v", err)
		}
		rec = store.Record{Kind: store.KindGraphSpec, Value: spec}
	} else {
		var err error
		if g, err = cdag.ReadJSONLimits(bytes.NewReader(req.Graph), s.cfg.JSONLimits); err != nil {
			return nil, classify(err)
		}
		if identity, err = json.Marshal(g); err != nil {
			return nil, internalf("canonicalize graph: %v", err)
		}
		rec = store.Record{Kind: store.KindGraphJSON, Value: identity}
	}
	if err := g.Validate(cdag.ValidateRBW); err != nil {
		return nil, invalidf("graph rejected: %v", err)
	}
	rec.Key = HashID(identity)
	return &ingested{g: g, id: rec.Key, rec: rec}, nil
}

// requestHash is the memoization key of an engine request: engine name plus
// the raw request body.  The engines are deterministic under a live context,
// so one hash maps to exactly one response body.
func requestHash(engine string, body []byte) string {
	h := sha256.New()
	h.Write([]byte(engine))
	h.Write([]byte{0})
	h.Write(body)
	return hex.EncodeToString(h.Sum(nil))
}
