package serve

import (
	"container/list"
	"sync"

	"cdagio/internal/core"
)

// wsEntry is one cached Workspace: the handle itself, its admission-time
// footprint estimate, a pin count (requests currently executing against it),
// and the per-request memo table of finished responses.
type wsEntry struct {
	id        string
	ws        *core.Workspace
	footprint int64 // admission estimate: graph + solver-cap worth of solvers
	refs      int   // in-flight requests pinning the entry against eviction
	elem      *list.Element

	memo      map[string][]byte // request hash -> rendered response body
	memoBytes int64
}

// wsCache is the byte-budgeted LRU of live Workspaces, keyed by content hash.
// Admission is by estimated footprint: a graph whose Workspace would not fit
// in the budget even after evicting every unpinned entry is rejected up front
// (413) instead of being opened and OOM-ing the process.  Entries pinned by
// in-flight requests are never evicted; eviction takes the least recently
// used unpinned entry.
//
// The memo table rides the same budget: a finished response body is cached
// under its request hash so an identical request replays the exact bytes —
// the engines are deterministic, so this is both a performance and a
// bit-stability guarantee across retries.
type wsCache struct {
	mu     sync.Mutex
	budget int64
	used   int64
	lru    *list.List // front = most recently used; values are *wsEntry
	byID   map[string]*wsEntry

	maxMemoEntry int64 // responses larger than this are not memoized
}

func newWSCache(budget int64) *wsCache {
	return &wsCache{
		budget:       budget,
		lru:          list.New(),
		byID:         map[string]*wsEntry{},
		maxMemoEntry: 1 << 20,
	}
}

// get pins and returns the entry for id, or nil if it is not resident.
func (c *wsCache) get(id string) *wsEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.byID[id]
	if e == nil {
		return nil
	}
	e.refs++
	c.lru.MoveToFront(e.elem)
	return e
}

// release unpins an entry obtained from get or add.
func (c *wsCache) release(e *wsEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e.refs--
}

// add admits a freshly opened Workspace under id, evicting unpinned entries
// LRU-first until it fits, and returns the entry pinned.  If another request
// raced us and the id is already resident, the existing entry wins (pinned)
// and the caller's Workspace is dropped.  If the footprint cannot fit in the
// budget even with every unpinned entry evicted, add rejects with a
// resource-limit error and the Workspace is dropped.
func (c *wsCache) add(id string, ws *core.Workspace, footprint int64) (*wsEntry, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e := c.byID[id]; e != nil {
		e.refs++
		c.lru.MoveToFront(e.elem)
		return e, nil
	}
	if footprint > c.budget {
		return nil, limitf("graph footprint %d bytes exceeds cache budget %d bytes", footprint, c.budget)
	}
	if !c.makeRoom(footprint) {
		return nil, limitf("graph footprint %d bytes does not fit: %d of %d budget bytes pinned by in-flight requests",
			footprint, c.used, c.budget)
	}
	e := &wsEntry{id: id, ws: ws, footprint: footprint, refs: 1, memo: map[string][]byte{}}
	e.elem = c.lru.PushFront(e)
	c.byID[id] = e
	c.used += footprint
	return e, nil
}

// makeRoom evicts unpinned entries LRU-first until need bytes fit.  Caller
// holds c.mu.  Returns false if the remaining entries are all pinned and the
// budget still cannot cover need.
func (c *wsCache) makeRoom(need int64) bool {
	for c.used+need > c.budget {
		victim := c.oldestUnpinned()
		if victim == nil {
			return false
		}
		c.evict(victim)
	}
	return true
}

func (c *wsCache) oldestUnpinned() *wsEntry {
	for el := c.lru.Back(); el != nil; el = el.Prev() {
		if e := el.Value.(*wsEntry); e.refs == 0 {
			return e
		}
	}
	return nil
}

// evict removes an entry.  Caller holds c.mu and guarantees refs == 0.
func (c *wsCache) evict(e *wsEntry) {
	c.lru.Remove(e.elem)
	delete(c.byID, e.id)
	c.used -= e.footprint + e.memoBytes
}

// memoGet returns the memoized response body for a request hash, if present.
func (c *wsCache) memoGet(e *wsEntry, reqHash string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	body, ok := e.memo[reqHash]
	return body, ok
}

// memoPut records a finished response body under its request hash, charging
// it to the cache budget.  Memoization is strictly best-effort and never
// evicts: a body that is oversized, or that does not fit in the budget's
// current free space, is simply not memoized — a response replay is never
// worth dropping a live Workspace, and a request that already succeeded
// never fails here.  Memo space frees up again when its entry's Workspace
// is evicted or the budget otherwise drains.
func (c *wsCache) memoPut(e *wsEntry, reqHash string, body []byte) {
	n := int64(len(body))
	if n > c.maxMemoEntry {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := e.memo[reqHash]; dup {
		return
	}
	if c.used+n > c.budget {
		return
	}
	e.memo[reqHash] = body
	e.memoBytes += n
	c.used += n
}

// stats reports occupancy for /healthz.
func (c *wsCache) stats() (graphs int, usedBytes, budgetBytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.byID), c.used, c.budget
}
