package serve

import (
	"container/list"
	"fmt"
	"sync"

	"cdagio/internal/core"
)

// wsEntry is one cached Workspace: the handle itself, its admission-time
// footprint estimate, a pin count (requests currently executing against it),
// and the per-request memo table of finished responses.
type wsEntry struct {
	id        string
	ws        *core.Workspace
	footprint int64 // admission estimate: graph + solver-cap worth of solvers
	refs      int   // in-flight requests pinning the entry against eviction
	elem      *list.Element
	doomed    bool // dropped while pinned: evict at the final release

	memo      map[string][]byte // request hash -> rendered response body
	memoBytes int64
}

// wsCache is the byte-budgeted LRU of live Workspaces, keyed by content hash.
// Admission is by estimated footprint: a graph whose Workspace would not fit
// in the budget even after evicting every unpinned entry is rejected up front
// (413) instead of being opened and OOM-ing the process.  Entries pinned by
// in-flight requests are never evicted; eviction takes the least recently
// used unpinned entry.
//
// The memo table rides the same budget: a finished response body is cached
// under its request hash so an identical request replays the exact bytes —
// the engines are deterministic, so this is both a performance and a
// bit-stability guarantee across retries.
type wsCache struct {
	mu     sync.Mutex
	budget int64
	used   int64
	lru    *list.List // front = most recently used; values are *wsEntry
	byID   map[string]*wsEntry

	maxMemoEntry int64 // responses larger than this are not memoized

	// Counters for /healthz.  memoEntries/memoBytesTotal mirror the per-entry
	// memo accounting so occupancy is one lock away, not a full LRU walk.
	memoHits, memoMisses, evictions int64
	memoEntries                     int
	memoBytesTotal                  int64
}

func newWSCache(budget, maxMemoEntry int64) *wsCache {
	if maxMemoEntry <= 0 {
		maxMemoEntry = 1 << 20
	}
	return &wsCache{
		budget:       budget,
		lru:          list.New(),
		byID:         map[string]*wsEntry{},
		maxMemoEntry: maxMemoEntry,
	}
}

// get pins and returns the entry for id, or nil if it is not resident.
func (c *wsCache) get(id string) *wsEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.byID[id]
	if e == nil {
		return nil
	}
	e.refs++
	c.lru.MoveToFront(e.elem)
	return e
}

// release unpins an entry obtained from get or add.  A doomed entry (dropped
// while pinned) is evicted once its last pin goes away.
func (c *wsCache) release(e *wsEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e.refs--
	if e.doomed && e.refs == 0 && e.elem != nil {
		c.evict(e)
	}
}

// add admits a freshly opened Workspace under id, evicting unpinned entries
// LRU-first until it fits, and returns the entry pinned, with inserted=true
// iff this call put it there.  If another request raced us and the id is
// already resident, the existing entry wins (pinned) and the caller's
// Workspace is dropped.  If the footprint cannot fit in the budget even with
// every unpinned entry evicted, add rejects with a resource-limit error and
// the Workspace is dropped.
func (c *wsCache) add(id string, ws *core.Workspace, footprint int64) (e *wsEntry, inserted bool, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e := c.byID[id]; e != nil {
		e.refs++
		c.lru.MoveToFront(e.elem)
		return e, false, nil
	}
	if footprint > c.budget {
		return nil, false, limitf("graph footprint %d bytes exceeds cache budget %d bytes", footprint, c.budget)
	}
	if !c.makeRoom(footprint) {
		return nil, false, limitf("graph footprint %d bytes does not fit: %d of %d budget bytes pinned by in-flight requests",
			footprint, c.used, c.budget)
	}
	e = &wsEntry{id: id, ws: ws, footprint: footprint, refs: 1, memo: map[string][]byte{}}
	e.elem = c.lru.PushFront(e)
	c.byID[id] = e
	c.used += footprint
	return e, true, nil
}

// drop removes an entry from the cache's key space immediately — new lookups
// miss, new adds insert fresh — deferring the eviction itself to the final
// release while in-flight requests still pin it.  This is the targeted
// invalidation primitive: an entry that must stop being findable dies here
// without yanking its Workspace out from under requests running against it.
func (c *wsCache) drop(e *wsEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.byID[e.id] == e {
		delete(c.byID, e.id)
	}
	e.doomed = true
	if e.refs == 0 && e.elem != nil {
		c.evict(e)
	}
}

// makeRoom evicts unpinned entries LRU-first until need bytes fit.  Caller
// holds c.mu.  Returns false if the remaining entries are all pinned and the
// budget still cannot cover need.
func (c *wsCache) makeRoom(need int64) bool {
	for c.used+need > c.budget {
		victim := c.oldestUnpinned()
		if victim == nil {
			return false
		}
		c.evict(victim)
	}
	return true
}

func (c *wsCache) oldestUnpinned() *wsEntry {
	for el := c.lru.Back(); el != nil; el = el.Prev() {
		if e := el.Value.(*wsEntry); e.refs == 0 {
			return e
		}
	}
	return nil
}

// evict removes an entry.  Caller holds c.mu and guarantees refs == 0.
func (c *wsCache) evict(e *wsEntry) {
	if c.byID[e.id] == e {
		delete(c.byID, e.id)
	}
	c.lru.Remove(e.elem)
	e.elem = nil
	c.used -= e.footprint + e.memoBytes
	c.memoEntries -= len(e.memo)
	c.memoBytesTotal -= e.memoBytes
	c.evictions++
}

// memoGet returns the memoized response body for a request hash, if present.
func (c *wsCache) memoGet(e *wsEntry, reqHash string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	body, ok := e.memo[reqHash]
	if ok {
		c.memoHits++
	} else {
		c.memoMisses++
	}
	return body, ok
}

// memoPut records a finished response body under its request hash, charging
// it to the cache budget, and reports whether the body was actually stored.
// Memoization is strictly best-effort and never evicts: a body that is
// oversized, or that does not fit in the budget's current free space, is
// simply not memoized — a response replay is never worth dropping a live
// Workspace, and a request that already succeeded never fails here.  Memo
// space frees up again when its entry's Workspace is evicted or the budget
// otherwise drains.
func (c *wsCache) memoPut(e *wsEntry, reqHash string, body []byte) bool {
	n := int64(len(body))
	if n > c.maxMemoEntry {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := e.memo[reqHash]; dup {
		return false
	}
	if c.used+n > c.budget {
		return false
	}
	e.memo[reqHash] = body
	e.memoBytes += n
	c.used += n
	c.memoEntries++
	c.memoBytesTotal += n
	return true
}

// cacheStats is the /healthz snapshot of occupancy and traffic.
type cacheStats struct {
	graphs               int
	usedBytes, budget    int64
	memoHits, memoMisses int64
	evictions            int64
	memoEntries          int
	memoBytes            int64
}

// stats reports occupancy and counters for /healthz.
func (c *wsCache) stats() cacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return cacheStats{
		graphs:    len(c.byID),
		usedBytes: c.used, budget: c.budget,
		memoHits: c.memoHits, memoMisses: c.memoMisses,
		evictions:   c.evictions,
		memoEntries: c.memoEntries,
		memoBytes:   c.memoBytesTotal,
	}
}

// hasGraph reports whether id is resident, without pinning it.  Compaction
// uses it as the liveness filter — queried at scan time rather than
// snapshotted, so an entry added mid-compaction is never misread as dead.
func (c *wsCache) hasGraph(id string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.byID[id] != nil
}

// hasMemo reports whether the memoized body for (id, reqHash) is resident.
func (c *wsCache) hasMemo(id, reqHash string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.byID[id]
	if e == nil {
		return false
	}
	_, ok := e.memo[reqHash]
	return ok
}

// verifyAccounting is the invariant-checking hook for tests: under the lock,
// the charged byte total must equal the sum over resident entries of
// footprint + memo bytes, and the memo occupancy mirrors must agree with the
// per-entry tables.  Concurrency tests call it mid-churn under -race.
func (c *wsCache) verifyAccounting() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	var used, memoBytes int64
	var memoEntries int
	for el := c.lru.Front(); el != nil; el = el.Next() {
		e := el.Value.(*wsEntry)
		var entryMemo int64
		for _, body := range e.memo {
			entryMemo += int64(len(body))
		}
		if entryMemo != e.memoBytes {
			return fmt.Errorf("entry %s: memoBytes %d but bodies sum to %d", e.id, e.memoBytes, entryMemo)
		}
		used += e.footprint + e.memoBytes
		memoBytes += e.memoBytes
		memoEntries += len(e.memo)
	}
	if used != c.used {
		return fmt.Errorf("used = %d but entries sum to %d", c.used, used)
	}
	if memoBytes != c.memoBytesTotal || memoEntries != c.memoEntries {
		return fmt.Errorf("memo totals (%d bytes, %d entries) but entries sum to (%d, %d)",
			c.memoBytesTotal, c.memoEntries, memoBytes, memoEntries)
	}
	if c.used > c.budget {
		return fmt.Errorf("used %d exceeds budget %d", c.used, c.budget)
	}
	return nil
}
