package serve

import (
	"errors"
	"testing"
)

// TestGenEstimateIsUpperBound builds a small instance of every generator kind
// and checks the pre-build size estimate dominates the real counts: the
// estimate's only job is to be safely conservative, so it must never be
// smaller than what the generator actually materializes (or admission would
// wrongly 413 graphs that fit).
func TestGenEstimateIsUpperBound(t *testing.T) {
	specs := []GenSpec{
		{Kind: "chain", N: 9},
		{Kind: "chains", K: 3, N: 4},
		{Kind: "tree", N: 9},
		{Kind: "dot", N: 9},
		{Kind: "saxpy", N: 9},
		{Kind: "outer", N: 5},
		{Kind: "matmul", N: 4},
		{Kind: "composite", N: 3},
		{Kind: "fft", N: 16},
		{Kind: "binomial", K: 4},
		{Kind: "pyramid", H: 5},
		{Kind: "heat", N: 5, Steps: 3},
		{Kind: "jacobi", Dim: 2, N: 4, Steps: 2},
		{Kind: "jacobi", Dim: 2, N: 4, Steps: 2, Stencil: "box"},
		{Kind: "cg", Dim: 2, N: 3, Iterations: 2},
		{Kind: "gmres", Dim: 2, N: 3, Iterations: 2},
	}
	for i := range specs {
		spec := &specs[i]
		g, err := BuildGen(spec)
		if err != nil {
			t.Fatalf("%s: BuildGen: %v", GenKey(spec), err)
		}
		v, e := GenEstimate(spec)
		if int64(g.NumVertices()) > v || int64(g.NumEdges()) > e {
			t.Errorf("%s: built %d vertices / %d edges but estimated only %d / %d — the estimate must be an upper bound",
				GenKey(spec), g.NumVertices(), g.NumEdges(), v, e)
		}
	}
}

// TestGenSpecRejectedBeforeBuild feeds tiny request bodies naming enormous
// generators through ingestGraph under the default limits: each must be
// rejected as a resource limit by the declared-size pre-check, before a
// single vertex is allocated (if the check were missing, several of these
// would allocate tens of gigabytes and OOM the test).
func TestGenSpecRejectedBeforeBuild(t *testing.T) {
	s, err := New(Config{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for _, body := range []string{
		`{"gen":{"kind":"chain","n":2000000000}}`,
		`{"gen":{"kind":"chains","k":2000000000,"n":2000000000}}`,
		`{"gen":{"kind":"matmul","n":2000000}}`,
		`{"gen":{"kind":"composite","n":2000000}}`,
		`{"gen":{"kind":"outer","n":2000000000}}`,
		`{"gen":{"kind":"fft","n":1073741824}}`,
		`{"gen":{"kind":"jacobi","dim":3,"n":4000,"steps":100}}`,
		`{"gen":{"kind":"jacobi","dim":9,"n":30,"steps":5,"stencil":"box"}}`,
		`{"gen":{"kind":"heat","n":2000000000,"steps":2000000000}}`,
		`{"gen":{"kind":"cg","dim":3,"n":1000,"iterations":1000}}`,
		`{"gen":{"kind":"gmres","dim":3,"n":500,"iterations":1000}}`,
	} {
		_, err := s.ingestGraph([]byte(body))
		var se *Error
		if !errors.As(err, &se) || !errors.Is(se.Class, ErrResourceLimit) {
			t.Errorf("%s: err %v, want ErrResourceLimit", body, err)
		}
	}
}

// TestGenSpecFootprintRejection: a spec within the vertex/edge limits but
// whose estimated Workspace footprint exceeds the cache budget is rejected
// up front, mirroring the post-build cache admission.
func TestGenSpecFootprintRejection(t *testing.T) {
	s, nerr := New(Config{CacheBudget: 64 << 10, SolverLimit: 1})
	if nerr != nil {
		t.Fatalf("New: %v", nerr)
	}
	_, err := s.ingestGraph([]byte(`{"gen":{"kind":"jacobi","dim":2,"n":64,"steps":16}}`))
	var se *Error
	if !errors.As(err, &se) || !errors.Is(se.Class, ErrResourceLimit) {
		t.Fatalf("footprint over budget: err %v, want ErrResourceLimit", err)
	}
	// A small spec under the same budget still ingests.
	if _, err := s.ingestGraph([]byte(`{"gen":{"kind":"chain","n":64}}`)); err != nil {
		t.Fatalf("small spec under tight budget: %v", err)
	}
}
